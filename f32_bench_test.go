package tfrec

// BenchmarkTopKF32* measure the two-stage compact-slab pipeline (f32
// sweep into an over-fetched candidate heap, exact f64 rescore) against
// the f64 sweeps of the same shapes. The pairs:
//
//	BenchmarkShardedTopKSerial      vs BenchmarkTopKF32Sharded    (single core)
//	BenchmarkShardedTopKSaturated   vs BenchmarkTopKF32Saturated  (all cores)
//	BenchmarkShardedBatchSweep      vs BenchmarkTopKF32BatchSweep (coalesced)
//	BenchmarkTopKIndexStreaming     vs BenchmarkTopKF32Streaming  (small world)
//
// The 50k x 32 world's f64 item slab is ~12.8 MB — memory-bound on any
// recent core — while the f32 slab is half that, so the sweep's ceiling
// doubles. tfrec-benchgate gates the ≥1.5x single-core win and keeps the
// parallel floor (see BENCH_baseline.json). All single-query paths must
// stay allocation-free; the benches report allocs to keep that visible.

import (
	"fmt"
	"testing"

	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// benchWideWorld is the bandwidth-bound regime the compact slabs target:
// 50k items x 64 dims puts the f64 item slab at ~25.6 MB — past any
// private cache, streaming from LLC/DRAM — while the f32 slab is half
// that. The gated BenchmarkTopKF64Wide/BenchmarkTopKF32Wide pair measures
// exactly the sweep-bandwidth halving; the K=32 world of the Sharded
// benches stays untouched so its parallel-scaling floors keep their
// meaning.
func benchWideWorld(b *testing.B) (*model.Composed, []float64) {
	b.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{8, 64, 512},
		Items:          50000,
		Skew:           0.4,
	}, vecmath.NewRNG(7))
	m, err := model.New(tree, 10, model.Params{K: 64, TaxonomyLevels: 4, Alpha: 1, InitStd: 0.1, UseBias: true}, vecmath.NewRNG(8))
	if err != nil {
		b.Fatal(err)
	}
	c := m.Compose()
	q := make([]float64, 64)
	for i := range q {
		q[i] = float64(i%7) - 3
	}
	return c, q
}

// BenchmarkTopKF64Wide is the pure f64 sweep on the wide world — the
// "slow" side of the gated ≥1.5x single-core pair.
func BenchmarkTopKF64Wide(b *testing.B) {
	c, q := benchWideWorld(b)
	st := vecmath.NewTopKStream(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset(10)
		infer.NaiveInto(c, q, st)
		_ = st.Ranked()
	}
}

// BenchmarkTopKF32Wide is the two-stage pipeline on the wide world,
// gated ≥1.5x over BenchmarkTopKF64Wide with 0 allocs/op.
func BenchmarkTopKF32Wide(b *testing.B) {
	c, q := benchWideWorld(b)
	st := vecmath.NewTopKStream(10)
	infer.NaiveF32Into(c, q, st)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset(10)
		infer.NaiveF32Into(c, q, st)
		_ = st.Ranked()
	}
}

func BenchmarkTopKF32Streaming(b *testing.B) {
	c, q := benchComposedForTopK(b)
	st := vecmath.NewTopKStream(10)
	infer.NaiveF32Into(c, q, st) // warm the scratch pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset(10)
		infer.NaiveF32Into(c, q, st)
		_ = st.Ranked()
	}
}

// BenchmarkTopKF32Sharded is the single-core two-stage sweep on the large
// catalog — the bandwidth-win headline, gated ≥1.5x over
// BenchmarkShardedTopKSerial.
func BenchmarkTopKF32Sharded(b *testing.B) {
	c, q := benchShardedWorld(b)
	st := vecmath.NewTopKStream(10)
	infer.NaiveF32Into(c, q, st)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset(10)
		infer.NaiveF32Into(c, q, st)
		_ = st.Ranked()
	}
}

func BenchmarkTopKF32Pool(b *testing.B) {
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c, q := benchShardedWorld(b)
			pool := infer.NewPool(workers)
			defer pool.Close()
			st := vecmath.NewTopKStream(10)
			pool.NaiveF32Into(c, q, st, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Reset(10)
				pool.NaiveF32Into(c, q, st, 0)
				_ = st.Ranked()
			}
		})
	}
}

// BenchmarkTopKF32Saturated drives the pooled two-stage pipeline from all
// benchmark goroutines at once — the heavy-traffic regime; the baseline
// keeps the ≥2x-over-serial-f64 floor on this path.
func BenchmarkTopKF32Saturated(b *testing.B) {
	c, q := benchShardedWorld(b)
	pool := infer.NewPool(0)
	defer pool.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		st := vecmath.NewTopKStream(10)
		for pb.Next() {
			st.Reset(10)
			pool.NaiveF32Into(c, q, st, 0)
			_ = st.Ranked()
		}
	})
}

// BenchmarkTopKF32BatchSweep is the coalesced multi-query sweep over the
// compact slab; compare with BenchmarkShardedBatchSweep (f64) and
// BenchmarkShardedBatchLoop (per-request f64).
func BenchmarkTopKF32BatchSweep(b *testing.B) {
	for _, batch := range []int{4, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			c, qs := benchBatchQueries(b, batch)
			outs := make([]*vecmath.TopKStream, batch)
			for i := range outs {
				outs[i] = vecmath.NewTopKStream(10)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range outs {
					outs[j].Reset(10)
				}
				infer.MultiNaiveF32Into(c, qs, outs)
			}
		})
	}
}
