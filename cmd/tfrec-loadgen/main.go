// Command tfrec-loadgen drives a running tfrec-serve or tfrec-router
// with an open-loop arrival process and reports the latency
// distribution and error breakdown — the soak driver behind the CI
// loadtest and topology jobs and the local tool for sizing
// -workers/-max-inflight/-cache-size.
//
// Open-loop means arrivals fire on a fixed schedule (the target RPS)
// regardless of how many requests are still in flight, the way real
// traffic behaves: a slow server faces a growing backlog instead of the
// flattering closed-loop regime where slow responses throttle the load.
// That is exactly what makes it an honest probe of the admission layer —
// overdrive the server and the shed responses (429/503) show up here as
// a separate class, distinguished from real errors and timeouts. Every
// non-2xx body is parsed as the structured error envelope and the run
// reports a per-code breakdown, so "queue_full" pressure reads
// differently from "shard_unavailable" outages.
//
// The request mix comes from a scenario file (-scenario, JSON) weighting
// strategies, precisions, pruned retrieval, filters and pagination;
// without one a built-in mix of naive/pruned/cascade/diversified/filtered
// traffic runs. Model shape (user count, item count, Markov order) is
// discovered from /v1/stats — a router answers the same probe, so the
// same invocation drives either.
//
// Usage:
//
//	tfrec-loadgen -addr http://127.0.0.1:8080 -rps 200 -duration 20s
//	tfrec-loadgen -rps 2000 -duration 5s -shed-ok -require-shed   # overload probe
//	tfrec-loadgen -addr http://router:8080 -mirror http://single:8090 \
//	    -rps 100 -duration 10s -fail-on-error                     # byte-identity gate
//
// -addr takes a comma-separated list and round-robins across it.
// -mirror sends every request to a control server too and fails the run
// unless each response pair is byte-identical — the CI proof that a
// router over N shards answers exactly like one full-catalog node.
//
// CI gates: -fail-on-error (any non-2xx that is not an allowed shed, or
// any transport error, fails), -max-p99 (latency budget over successful
// requests), -require-shed (the overload run must actually shed),
// -max-goroutines (post-run leak check against /v1/stats), -mirror
// (any response divergence fails).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
)

// scenario is one weighted request template of the mix.
type scenario struct {
	Name   string `json:"name"`
	Weight int    `json:"weight"`
	K      int    `json:"k"`
	Offset int    `json:"offset"`
	// Strategy: "", "naive", "cascade", "diversified" (unified endpoint).
	Strategy         string  `json:"strategy"`
	Keep             float64 `json:"keep"`             // cascade keep fraction
	MaxPerCategory   int     `json:"max_per_category"` // diversified quota
	CatDepth         int     `json:"cat_depth"`
	Precision        string  `json:"precision"` // "", "f32", "f64", "int8" (query param)
	Pruned           bool    `json:"pruned"`    // branch-and-bound taxonomy descent (query param)
	Session          bool    `json:"session"`   // user = -1 (needs markov_order > 0)
	ExcludePurchased bool    `json:"exclude_purchased"`
	// Categories/ExcludeCategories name taxonomy node ids; ids are taken
	// modulo the live model's node count so one scenario file works across
	// world sizes.
	Categories        []int32 `json:"categories"`
	ExcludeCategories []int32 `json:"exclude_categories"`
	// RecentBaskets attaches this many random single-item baskets (drives
	// the Markov term; ignored when the model has markov_order = 0).
	RecentBaskets int `json:"recent_baskets"`
}

type scenarioFile struct {
	Scenarios []scenario `json:"scenarios"`
}

// defaultScenarios is the built-in mix: mostly naive full-catalog
// traffic with strategy, filter, pagination and precision variety.
func defaultScenarios() []scenario {
	return []scenario{
		{Name: "naive", Weight: 6},
		{Name: "naive-f64", Weight: 1, Precision: "f64"},
		{Name: "naive-int8", Weight: 1, Precision: "int8"},
		{Name: "naive-pruned", Weight: 1, Pruned: true},
		{Name: "paged", Weight: 1, Offset: 5},
		{Name: "cascade", Weight: 1, Strategy: "cascade", Keep: 0.4},
		{Name: "diversified", Weight: 1, Strategy: "diversified", MaxPerCategory: 2},
		{Name: "filtered", Weight: 1, ExcludeCategories: []int32{1}},
		{Name: "session", Weight: 1, Session: true, RecentBaskets: 2},
	}
}

// modelInfo is the slice of /v1/stats loadgen needs to synthesize
// requests and run the post-load leak check. api.Stats and
// api.RouterStats share the model and goroutines sections, so one probe
// shape covers a single node and a router alike.
type modelInfo = api.Stats

func fetchStats(client *http.Client, addr string) (modelInfo, error) {
	var info modelInfo
	resp, err := client.Get(addr + "/v1/stats")
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("/v1/stats: status %d", resp.StatusCode)
	}
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

// buildRequest renders one scenario instance against the live model
// shape. It returns the request path (precision rides as a query
// parameter) and the JSON body.
func buildRequest(rng *rand.Rand, sc scenario, info modelInfo, defaultK int) (string, []byte) {
	k := sc.K
	if k <= 0 {
		k = defaultK
	}
	body := api.RecommendRequest{
		User:             rng.Intn(max(info.Model.Users, 1)),
		K:                k,
		Offset:           sc.Offset,
		Strategy:         sc.Strategy,
		Keep:             sc.Keep,
		MaxPerCategory:   sc.MaxPerCategory,
		CatDepth:         sc.CatDepth,
		ExcludePurchased: sc.ExcludePurchased,
	}
	if sc.Session {
		body.User = -1
	}
	clampNodes := func(ids []int32) []int32 {
		if len(ids) == 0 || info.Model.Nodes == 0 {
			return nil
		}
		out := make([]int32, len(ids))
		for i, id := range ids {
			out[i] = id % int32(info.Model.Nodes)
		}
		return out
	}
	body.Categories = clampNodes(sc.Categories)
	body.ExcludeCategories = clampNodes(sc.ExcludeCategories)
	if sc.RecentBaskets > 0 && info.Model.MarkovOrder > 0 && info.Model.Items > 0 {
		for i := 0; i < sc.RecentBaskets; i++ {
			body.Recent = append(body.Recent, []int32{int32(rng.Intn(info.Model.Items))})
		}
	}
	raw, _ := json.Marshal(body)
	path := api.EndpointUnified.Path()
	sep := "?"
	if sc.Precision != "" {
		path += sep + "precision=" + sc.Precision
		sep = "&"
	}
	if sc.Pruned {
		path += sep + "pruned=true"
	}
	return path, raw
}

// pickScenario samples the mix by weight.
func pickScenario(rng *rand.Rand, scs []scenario, totalWeight int) scenario {
	n := rng.Intn(totalWeight)
	for _, sc := range scs {
		n -= weightOf(sc)
		if n < 0 {
			return sc
		}
	}
	return scs[len(scs)-1]
}

func weightOf(sc scenario) int {
	if sc.Weight <= 0 {
		return 1
	}
	return sc.Weight
}

// shot is one completed arrival.
type shot struct {
	status  int // 0 = transport error
	latency time.Duration
	err     error
	// code is the typed envelope code parsed from a non-2xx body
	// ("unparsed" when the body is not the structured envelope).
	code string
	// degraded marks a 2xx whose ranking covered only part of the catalog
	// (router in -degraded partial with a shard down).
	degraded bool
	// compared/mismatch track the -mirror byte-identity check for this
	// arrival; mismatch carries the first-line description of a divergence.
	compared bool
	mismatch string
}

// shedStatus reports whether a status is load-dependent (shed or
// transport failure) and therefore outside the -mirror identity contract.
func shedStatus(status int) bool {
	return status == 0 || status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// percentile returns the p-quantile (0..100) of sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted)-1) * p / 100)
	return sorted[idx]
}

// histogram renders a coarse log-spaced latency histogram.
func histogram(w io.Writer, sorted []time.Duration) {
	if len(sorted) == 0 {
		return
	}
	bounds := []time.Duration{
		100 * time.Microsecond, 300 * time.Microsecond,
		time.Millisecond, 3 * time.Millisecond, 10 * time.Millisecond,
		30 * time.Millisecond, 100 * time.Millisecond, 300 * time.Millisecond,
		time.Second,
	}
	counts := make([]int, len(bounds)+1)
	for _, l := range sorted {
		i := sort.Search(len(bounds), func(i int) bool { return l < bounds[i] })
		counts[i]++
	}
	fmt.Fprintf(w, "  histogram:")
	prev := time.Duration(0)
	for i, c := range counts {
		if c == 0 {
			if i < len(bounds) {
				prev = bounds[i]
			}
			continue
		}
		if i < len(bounds) {
			fmt.Fprintf(w, "  [%v..%v) %d", prev, bounds[i], c)
			prev = bounds[i]
		} else {
			fmt.Fprintf(w, "  [>=%v] %d", prev, c)
		}
	}
	fmt.Fprintln(w)
}

// report is the machine-readable summary (-json).
type report struct {
	Requests     int            `json:"requests"`
	TargetRPS    float64        `json:"target_rps"`
	AchievedRPS  float64        `json:"achieved_rps"`
	StatusCounts map[string]int `json:"status_counts"`
	// ErrorCodes breaks every non-2xx down by its typed envelope code
	// ("unparsed" = the body was not the structured envelope).
	ErrorCodes map[string]int `json:"error_codes,omitempty"`
	Transport  int            `json:"transport_errors"`
	Shed       int            `json:"shed"`
	Success    int            `json:"success_2xx"`
	// Degraded counts 2xx responses flagged "degraded":true (partial
	// catalog coverage from a router with a shard down).
	Degraded int `json:"degraded_responses"`
	// MirrorCompared/MirrorMismatches summarize the -mirror byte-identity
	// check; any mismatch fails the run.
	MirrorCompared   int     `json:"mirror_compared,omitempty"`
	MirrorMismatches int     `json:"mirror_mismatches,omitempty"`
	P50MS            float64 `json:"p50_ms"`
	P95MS            float64 `json:"p95_ms"`
	P99MS            float64 `json:"p99_ms"`
	MaxMS            float64 `json:"max_ms"`
	Goroutines       int     `json:"server_goroutines_after"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tfrec-loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8080", "comma-separated base URLs (tfrec-serve or tfrec-router); arrivals round-robin across them")
	mirror := fs.String("mirror", "", "control base URL: every request is sent here too and any non-shed response pair that is not byte-identical fails the run")
	rps := fs.Float64("rps", 100, "open-loop arrival rate (requests per second)")
	duration := fs.Duration("duration", 20*time.Second, "how long to generate load")
	scenarioPath := fs.String("scenario", "", "JSON scenario file weighting the request mix (empty = built-in mix)")
	k := fs.Int("k", 10, "default result size for scenarios that don't set k")
	seed := fs.Int64("seed", 1, "random seed (users, mix sampling)")
	reqTimeout := fs.Duration("request-timeout", 5*time.Second, "client-side per-request timeout (expiries count as transport errors)")
	maxP99 := fs.Duration("max-p99", 0, "fail if the 2xx p99 latency exceeds this (0 = no gate)")
	failOnError := fs.Bool("fail-on-error", false, "fail on any transport error or any non-2xx that is not an allowed shed")
	shedOK := fs.Bool("shed-ok", false, "treat 429/503 as intentional shedding, not errors")
	requireShed := fs.Bool("require-shed", false, "fail unless at least one request was shed (429/503); implies -shed-ok")
	maxGoroutines := fs.Int("max-goroutines", 0, "fail if the server reports more goroutines than this after the run settles (0 = no gate)")
	jsonOut := fs.String("json", "", "also write the report as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *requireShed {
		*shedOK = true
	}
	if *rps <= 0 || *duration <= 0 {
		fmt.Fprintln(stderr, "tfrec-loadgen: -rps and -duration must be positive")
		return 2
	}

	scenarios := defaultScenarios()
	if *scenarioPath != "" {
		raw, err := os.ReadFile(*scenarioPath)
		if err != nil {
			fmt.Fprintf(stderr, "tfrec-loadgen: %v\n", err)
			return 2
		}
		var sf scenarioFile
		if err := json.Unmarshal(raw, &sf); err != nil || len(sf.Scenarios) == 0 {
			fmt.Fprintf(stderr, "tfrec-loadgen: bad scenario file %s: %v\n", *scenarioPath, err)
			return 2
		}
		scenarios = sf.Scenarios
	}

	var targets []string
	for _, t := range strings.Split(*addr, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, strings.TrimRight(t, "/"))
		}
	}
	if len(targets) == 0 {
		fmt.Fprintln(stderr, "tfrec-loadgen: -addr must name at least one base URL")
		return 2
	}
	*mirror = strings.TrimRight(strings.TrimSpace(*mirror), "/")

	client := &http.Client{
		Timeout: *reqTimeout,
		Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 512,
		},
	}
	info, err := fetchStats(client, targets[0])
	if err != nil {
		fmt.Fprintf(stderr, "tfrec-loadgen: cannot reach server: %v\n", err)
		return 2
	}
	// drop scenarios the live model cannot serve (session needs a Markov
	// term) instead of generating guaranteed 400s
	kept := scenarios[:0]
	for _, sc := range scenarios {
		if sc.Session && info.Model.MarkovOrder == 0 {
			fmt.Fprintf(stdout, "tfrec-loadgen: dropping scenario %q (model has markov_order=0)\n", sc.Name)
			continue
		}
		kept = append(kept, sc)
	}
	scenarios = kept
	if len(scenarios) == 0 {
		fmt.Fprintln(stderr, "tfrec-loadgen: no runnable scenarios")
		return 2
	}
	totalWeight := 0
	for _, sc := range scenarios {
		totalWeight += weightOf(sc)
	}

	interval := time.Duration(float64(time.Second) / *rps)
	n := int(*duration / interval)
	if n < 1 {
		n = 1
	}
	shots := make([]shot, n)
	rng := rand.New(rand.NewSource(*seed))

	// pre-render every request so the hot loop only sends: open-loop
	// pacing must not jitter on JSON marshalling
	paths := make([]string, n)
	bodies := make([][]byte, n)
	for i := range paths {
		sc := pickScenario(rng, scenarios, totalWeight)
		paths[i], bodies[i] = buildRequest(rng, sc, info, *k)
	}

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		// open loop: fire at the scheduled instant no matter how many
		// requests are still outstanding
		time.Sleep(time.Until(start.Add(time.Duration(i) * interval)))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			target := targets[i%len(targets)]
			t0 := time.Now()
			resp, err := client.Post(target+paths[i], "application/json", bytes.NewReader(bodies[i]))
			lat := time.Since(t0)
			if err != nil {
				shots[i] = shot{status: 0, latency: lat, err: err}
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			s := shot{status: resp.StatusCode, latency: lat}
			if resp.StatusCode/100 != 2 {
				var eb api.ErrorBody
				if json.Unmarshal(body, &eb) == nil && eb.Err.Code != "" {
					s.code = string(eb.Err.Code)
				} else {
					s.code = "unparsed"
				}
			} else if bytes.Contains(body, []byte(`"degraded":true`)) {
				s.degraded = true
			}
			if *mirror != "" {
				mresp, merr := client.Post(*mirror+paths[i], "application/json", bytes.NewReader(bodies[i]))
				if merr != nil {
					s.mismatch = fmt.Sprintf("%s: mirror transport error: %v", paths[i], merr)
				} else {
					mbody, _ := io.ReadAll(mresp.Body)
					mresp.Body.Close()
					// shed responses (and transport drops) are load-dependent;
					// everything else — rankings and deterministic 4xx envelopes
					// alike — must match the control byte for byte
					if !shedStatus(resp.StatusCode) && !shedStatus(mresp.StatusCode) {
						s.compared = true
						switch {
						case resp.StatusCode != mresp.StatusCode:
							s.mismatch = fmt.Sprintf("%s %s: status %d vs mirror %d",
								paths[i], bodies[i], resp.StatusCode, mresp.StatusCode)
						case !bytes.Equal(body, mbody):
							s.mismatch = fmt.Sprintf("%s %s: bodies diverge (%d vs %d bytes)",
								paths[i], bodies[i], len(body), len(mbody))
						}
					}
				}
			}
			shots[i] = s
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	client.CloseIdleConnections()

	rep := report{
		Requests:     n,
		TargetRPS:    *rps,
		AchievedRPS:  float64(n) / elapsed.Seconds(),
		StatusCounts: map[string]int{},
	}
	var okLats []time.Duration
	var firstErr error
	firstMismatch := ""
	hardErrors := 0
	for _, s := range shots {
		switch {
		case s.status == 0:
			rep.Transport++
			hardErrors++
			if firstErr == nil {
				firstErr = s.err
			}
		case s.status/100 == 2:
			rep.Success++
			okLats = append(okLats, s.latency)
			if s.degraded {
				rep.Degraded++
			}
		case (s.status == http.StatusTooManyRequests || s.status == http.StatusServiceUnavailable) && *shedOK:
			rep.Shed++
		default:
			hardErrors++
		}
		if s.status != 0 {
			rep.StatusCounts[fmt.Sprint(s.status)]++
		}
		if s.code != "" {
			if rep.ErrorCodes == nil {
				rep.ErrorCodes = map[string]int{}
			}
			rep.ErrorCodes[s.code]++
		}
		if s.compared {
			rep.MirrorCompared++
		}
		if s.mismatch != "" {
			rep.MirrorMismatches++
			if firstMismatch == "" {
				firstMismatch = s.mismatch
			}
		}
	}
	sort.Slice(okLats, func(i, j int) bool { return okLats[i] < okLats[j] })
	p50, p95, p99 := percentile(okLats, 50), percentile(okLats, 95), percentile(okLats, 99)
	rep.P50MS = float64(p50) / float64(time.Millisecond)
	rep.P95MS = float64(p95) / float64(time.Millisecond)
	rep.P99MS = float64(p99) / float64(time.Millisecond)
	if len(okLats) > 0 {
		rep.MaxMS = float64(okLats[len(okLats)-1]) / float64(time.Millisecond)
	}

	fmt.Fprintf(stdout, "tfrec-loadgen: %d requests in %.1fs (target %.1f rps, achieved %.1f)\n",
		n, elapsed.Seconds(), *rps, rep.AchievedRPS)
	fmt.Fprintf(stdout, "  status:")
	codes := make([]string, 0, len(rep.StatusCounts))
	for code := range rep.StatusCounts {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		fmt.Fprintf(stdout, " %sx%d", code, rep.StatusCounts[code])
	}
	if rep.Transport > 0 {
		fmt.Fprintf(stdout, " transport-errors x%d (first: %v)", rep.Transport, firstErr)
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "  latency (2xx): p50=%v p95=%v p99=%v max=%.1fms\n", p50, p95, p99, rep.MaxMS)
	histogram(stdout, okLats)
	if len(rep.ErrorCodes) > 0 {
		names := make([]string, 0, len(rep.ErrorCodes))
		for name := range rep.ErrorCodes {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(stdout, "  error codes:")
		for _, name := range names {
			fmt.Fprintf(stdout, " %s x%d", name, rep.ErrorCodes[name])
		}
		fmt.Fprintln(stdout)
	}
	if rep.Shed > 0 {
		fmt.Fprintf(stdout, "  shed (429/503): %d\n", rep.Shed)
	}
	if rep.Degraded > 0 {
		fmt.Fprintf(stdout, "  degraded responses: %d\n", rep.Degraded)
	}
	if *mirror != "" {
		fmt.Fprintf(stdout, "  mirror: %d response pairs compared, %d mismatches\n",
			rep.MirrorCompared, rep.MirrorMismatches)
	}

	// settle, then read the server's goroutine count for the leak gate
	if *maxGoroutines > 0 {
		time.Sleep(time.Second)
		after, err := fetchStats(client, *addr)
		if err != nil {
			fmt.Fprintf(stderr, "tfrec-loadgen: post-run stats: %v\n", err)
			return 1
		}
		rep.Goroutines = after.Goroutines
		fmt.Fprintf(stdout, "  server goroutines after settle: %d (limit %d)\n", after.Goroutines, *maxGoroutines)
	}

	if *jsonOut != "" {
		raw, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*jsonOut, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "tfrec-loadgen: %v\n", err)
			return 2
		}
	}

	failed := false
	if *failOnError && hardErrors > 0 {
		fmt.Fprintf(stdout, "FAIL: %d hard errors (non-2xx beyond allowed sheds, or transport failures)\n", hardErrors)
		failed = true
	}
	if *maxP99 > 0 {
		if len(okLats) == 0 {
			fmt.Fprintln(stdout, "FAIL: no successful requests to measure p99 over")
			failed = true
		} else if p99 > *maxP99 {
			fmt.Fprintf(stdout, "FAIL: p99 %v exceeds budget %v\n", p99, *maxP99)
			failed = true
		}
	}
	if *requireShed && rep.Shed == 0 {
		fmt.Fprintln(stdout, "FAIL: overload run shed nothing — admission control not engaging")
		failed = true
	}
	if *mirror != "" {
		if rep.MirrorMismatches > 0 {
			fmt.Fprintf(stdout, "FAIL: %d mirror mismatches (first: %s)\n", rep.MirrorMismatches, firstMismatch)
			failed = true
		} else if rep.MirrorCompared == 0 {
			fmt.Fprintln(stdout, "FAIL: -mirror compared nothing — every pair was shed or dropped")
			failed = true
		}
	}
	if *maxGoroutines > 0 && rep.Goroutines > *maxGoroutines {
		fmt.Fprintf(stdout, "FAIL: server reports %d goroutines after settle (limit %d) — possible leak\n", rep.Goroutines, *maxGoroutines)
		failed = true
	}
	if failed {
		return 1
	}
	fmt.Fprintln(stdout, "tfrec-loadgen: ok")
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
