package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/taxonomy"
	"repro/internal/train"
	"repro/internal/vecmath"
)

func TestPercentile(t *testing.T) {
	var lats []time.Duration
	for i := 1; i <= 100; i++ {
		lats = append(lats, time.Duration(i)*time.Millisecond)
	}
	if got := percentile(lats, 50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(lats, 99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := percentile(nil, 99); got != 0 {
		t.Fatalf("empty p99 = %v", got)
	}
}

func TestPickScenarioRespectsWeights(t *testing.T) {
	scs := []scenario{{Name: "a", Weight: 9}, {Name: "b", Weight: 1}}
	rng := rand.New(rand.NewSource(42))
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[pickScenario(rng, scs, 10).Name]++
	}
	if counts["a"] < 8500 || counts["b"] < 500 {
		t.Fatalf("weighted sampling off: %v", counts)
	}
}

func TestBuildRequestShapes(t *testing.T) {
	var info modelInfo
	info.Model.Users = 100
	info.Model.Items = 50
	info.Model.Nodes = 10
	info.Model.MarkovOrder = 1
	rng := rand.New(rand.NewSource(7))
	path, raw := buildRequest(rng, scenario{Session: true, RecentBaskets: 2, Precision: "f64"}, info, 10)
	if !strings.Contains(path, "precision=f64") {
		t.Fatalf("precision not on path: %s", path)
	}
	var body api.RecommendRequest
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.User != -1 || len(body.Recent) != 2 || body.K != 10 {
		t.Fatalf("session body wrong: %+v", body)
	}
	// pruned rides as a query parameter, composing with precision
	path, _ = buildRequest(rng, scenario{Pruned: true}, info, 5)
	if path != "/v1/recommend?pruned=true" {
		t.Fatalf("pruned not on path: %s", path)
	}
	path, _ = buildRequest(rng, scenario{Precision: "int8", Pruned: true}, info, 5)
	if !strings.Contains(path, "precision=int8") || !strings.Contains(path, "&pruned=true") {
		t.Fatalf("pruned+precision path wrong: %s", path)
	}
	_, raw = buildRequest(rng, scenario{Categories: []int32{25}}, info, 5)
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Categories) != 1 || body.Categories[0] != 25%10 {
		t.Fatalf("category not clamped to node count: %+v", body.Categories)
	}
}

func testServer(t *testing.T) *serve.HTTP {
	t.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{3, 9, 27},
		Items:          270,
		Skew:           0.4,
	}, vecmath.NewRNG(61))
	cfg := synth.DefaultConfig()
	cfg.Users = 200
	data, _, err := synth.Generate(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := model.Params{K: 8, TaxonomyLevels: 4, MarkovOrder: 1, Alpha: 1, InitStd: 0.01}
	m, err := model.New(tree, data.NumUsers(), p, vecmath.NewRNG(62))
	if err != nil {
		t.Fatal(err)
	}
	tc := train.DefaultConfig()
	tc.Epochs = 2
	if _, err := train.Train(m, data, tc); err != nil {
		t.Fatal(err)
	}
	return serve.NewHTTP(serve.New(m, serve.WithCache(256)), nil)
}

// End to end: the default mix against a live handler must sustain its
// schedule with zero hard errors and pass its own gates.
func TestLoadgenEndToEnd(t *testing.T) {
	h := testServer(t)
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()
	var out, errOut bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-rps", "300", "-duration", "400ms",
		"-fail-on-error", "-max-p99", "5s", "-max-goroutines", "200",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("loadgen exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "latency (2xx)") {
		t.Fatalf("no latency report:\n%s", out.String())
	}
}

// shedStub answers like a saturated tfrec-serve: /v1/stats works, and
// every other recommend request is shed with 429. It pins down loadgen's
// shed accounting deterministically — on a single-core test box the real
// admission layer sheds only when arrivals genuinely overlap, which a
// microsecond-fast tiny model can't guarantee (the CI loadtest job
// exercises the real thing under sustained load).
func shedStub() http.Handler {
	mux := http.NewServeMux()
	var n atomic.Int64
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"model":{"users":10,"items":20,"nodes":5,"markov_order":0},"goroutines":3}`))
	})
	mux.HandleFunc("POST /v1/recommend", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		if n.Add(1)%2 == 0 {
			api.WriteError(w, api.ErrorDetail{Code: api.CodeQueueFull, Message: "overloaded, retry later", RetryAfter: 1})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"items":[{"item":1,"score":0.5}]}`))
	})
	return mux
}

// Sheds must be counted as sheds (not errors), satisfy -require-shed,
// and still fail -fail-on-error runs when shed-ok is off.
func TestLoadgenRequireShed(t *testing.T) {
	ts := httptest.NewServer(shedStub())
	defer ts.Close()
	var out, errOut bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-rps", "500", "-duration", "200ms",
		"-require-shed", "-fail-on-error",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("overload probe exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "shed (429/503)") {
		t.Fatalf("no sheds reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "queue_full") {
		t.Fatalf("typed error code breakdown missing:\n%s", out.String())
	}
	// without -shed-ok the same traffic is a hard failure
	out.Reset()
	code = run([]string{
		"-addr", ts.URL, "-rps", "500", "-duration", "200ms", "-fail-on-error",
	}, &out, &errOut)
	if code != 1 {
		t.Fatalf("429s without -shed-ok should fail: exit %d\n%s", code, out.String())
	}
}

// A server that sheds nothing must fail a -require-shed run.
func TestLoadgenRequireShedUnmet(t *testing.T) {
	h := testServer(t)
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()
	var out, errOut bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-rps", "100", "-duration", "200ms", "-require-shed",
	}, &out, &errOut)
	if code != 1 {
		t.Fatalf("unshed overload probe should fail: exit %d\n%s", code, out.String())
	}
}

// -mirror against a control trained identically must compare pairs and
// pass; a control that answers differently must fail the run.
func TestLoadgenMirror(t *testing.T) {
	primary := httptest.NewServer(testServer(t).Handler())
	defer primary.Close()
	control := httptest.NewServer(testServer(t).Handler())
	defer control.Close()
	var out, errOut bytes.Buffer
	code := run([]string{
		"-addr", primary.URL, "-mirror", control.URL,
		"-rps", "100", "-duration", "300ms", "-fail-on-error",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("identical mirror exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "mirror:") || strings.Contains(out.String(), "mirror: 0 response pairs") {
		t.Fatalf("mirror summary missing:\n%s", out.String())
	}

	// a control that always answers with a fixed body must diverge
	liar := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"items":[{"item":0,"score":1}],"epoch":0}` + "\n"))
	}))
	defer liar.Close()
	out.Reset()
	code = run([]string{
		"-addr", primary.URL, "-mirror", liar.URL,
		"-rps", "100", "-duration", "200ms",
	}, &out, &errOut)
	if code != 1 {
		t.Fatalf("diverging mirror should fail: exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "mirror mismatches") {
		t.Fatalf("mismatch not reported:\n%s", out.String())
	}
}

// A scenario file overrides the mix, and a broken one is rejected.
func TestLoadgenScenarioFile(t *testing.T) {
	h := testServer(t)
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()
	dir := t.TempDir()
	good := filepath.Join(dir, "mix.json")
	os.WriteFile(good, []byte(`{"scenarios":[{"name":"only-cascade","strategy":"cascade","keep":0.5,"weight":1}]}`), 0o644)
	var out, errOut bytes.Buffer
	if code := run([]string{"-addr", ts.URL, "-rps", "100", "-duration", "200ms",
		"-scenario", good, "-fail-on-error"}, &out, &errOut); code != 0 {
		t.Fatalf("scenario run exit %d\n%s\n%s", code, out.String(), errOut.String())
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"scenarios":[]}`), 0o644)
	if code := run([]string{"-addr", ts.URL, "-scenario", bad}, &out, &errOut); code != 2 {
		t.Fatalf("empty scenario file: exit %d, want 2", code)
	}
}
