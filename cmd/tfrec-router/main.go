// Command tfrec-router is the scatter-gather front of a sharded serving
// topology. Point it at N tfrec-serve backends started in shard mode
// (-item-range), each owning a contiguous slice of the item catalog; the
// router fans every recommend request out to all of them and merges the
// per-shard rankings into a response byte-identical to a single
// full-catalog node's — same items, same scores, same tie-breaks, same
// JSON bytes.
//
// Usage:
//
//	tfrec-serve -model model.tfrec -item-range 0:400   -addr :9001 &
//	tfrec-serve -model model.tfrec -item-range 400:800 -addr :9002 &
//	tfrec-serve -model model.tfrec -item-range 800:1200 -addr :9003 &
//	tfrec-router -shards http://localhost:9001,http://localhost:9002,http://localhost:9003 -addr :8080
//	curl -d '{"user":17,"k":10}' localhost:8080/v1/recommend
//
// The router serves the full endpoint surface of a node — the unified
// plan route, the deprecated per-shape adapters (with the same
// Deprecation headers), /v1/stats and /healthz — plus the edge stack:
// admission control, per-request deadlines, hedged shard requests
// (-hedge), and a merged-result cache versioned by the minimum snapshot
// epoch across the shard set. Per-request model fingerprint checks keep
// a mid-SIGHUP topology from ever mixing snapshots; -degraded picks
// between shedding and serving the reachable part of the catalog when a
// shard is down. SIGHUP re-reads the shard topology.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tfrec-router: ")

	shards := flag.String("shards", "", "comma-separated shard base URLs (each a tfrec-serve started with -item-range); ranges must tile the catalog")
	addr := flag.String("addr", ":8080", "listen address")
	hedge := flag.Duration("hedge", 0, "re-send a shard request not answered within this delay and take the first response (0 = hedging off)")
	degraded := flag.String("degraded", "shed", "policy when a shard is unreachable: shed (503 shard_unavailable) or partial (serve reachable shards, mark the response degraded)")
	cacheSize := flag.Int("cache-size", 0, "merged-result LRU cache capacity in entries, versioned by the minimum shard epoch (0 = off)")
	maxInflight := flag.Int("max-inflight", 0, "admission control: max concurrently routed requests (0 = unlimited)")
	queueWait := flag.Duration("queue-wait", 10*time.Millisecond, "admission control: max wait for a routing slot before shedding")
	timeout := flag.Duration("timeout", 0, "per-request budget covering queue wait and the whole fan-out (0 = unbounded)")
	maxBody := flag.Int64("max-body", 0, "request body size limit in bytes (0 = 1MiB default)")
	bootstrap := flag.Duration("bootstrap-timeout", 30*time.Second, "how long to retry the initial topology probe while shards come up")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		log.Fatal("-shards is required (comma-separated backend URLs)")
	}
	var partial bool
	switch *degraded {
	case "shed":
	case "partial":
		partial = true
	default:
		log.Fatalf("-degraded must be shed or partial, got %q", *degraded)
	}

	cfg := router.Config{
		Shards:          urls,
		HedgeDelay:      *hedge,
		Timeout:         *timeout,
		DegradedPartial: partial,
		CacheSize:       *cacheSize,
		MaxInflight:     *maxInflight,
		QueueWait:       *queueWait,
		MaxBody:         *maxBody,
	}
	// shards typically start alongside the router; retry the bootstrap
	// probe until the whole topology answers or the budget runs out
	var rt *router.Router
	var err error
	deadline := time.Now().Add(*bootstrap)
	for {
		rt, err = router.New(cfg)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("topology bootstrap: %v", err)
		}
		log.Printf("topology not ready (%v), retrying", err)
		time.Sleep(250 * time.Millisecond)
	}
	log.Printf("routing %d shards, degraded=%s, hedge=%s, cache=%d, max-inflight=%d, timeout=%s on %s",
		len(urls), *degraded, *hedge, *cacheSize, *maxInflight, *timeout, *addr)

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := rt.Refresh(context.Background()); err != nil {
				log.Printf("topology refresh failed, keeping current topology: %v", err)
				continue
			}
			log.Print("topology refreshed")
		}
	}()

	h := router.NewHTTP(rt)
	httpSrv := &http.Server{Addr: *addr, Handler: h.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, os.Interrupt, syscall.SIGTERM)
		<-quit
		log.Print("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}
