// Command tfrec-eval scores a trained model against the paper's protocol
// (§7.1/§7.3): it splits the purchase log with the µ-split, evaluates AUC,
// meanRank, the category-level variants, cold-start AUC and the top-k cut
// metrics, and optionally cross-validates λ.
//
// Usage:
//
//	tfrec-eval -model model.gob -data data/ -mu 0.5
//	tfrec-eval -model model.gob -data data/ -topk 10 -workers 8
//
// Note: the model must have been trained on the TRAIN side of the same
// split (same -mu and -split-seed), otherwise test data leaks; tfrec-train
// trains on the full log, so for honest held-out numbers train on a file
// produced from the train split, or use tfrec-exp which does the split
// internally.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/infer"
	"repro/internal/model"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tfrec-eval: ")

	modelPath := flag.String("model", "model.tfrec", "model file from tfrec-train")
	dataDir := flag.String("data", "data", "directory with purchases.tsv")
	mu := flag.Float64("mu", 0.5, "train fraction of the mu-split")
	splitSeed := flag.Uint64("split-seed", 1, "split seed (must match training)")
	topk := flag.Int("topk", 10, "cut for precision/recall/NDCG")
	catDepth := flag.Int("cat-depth", 1, "taxonomy depth for category metrics")
	workers := flag.Int("workers", 0, "evaluation goroutines (0 = GOMAXPROCS)")
	precision := flag.String("precision", "", "top-k scoring precision: f32 (two-stage compact-slab pipeline), f64, int8 (two-stage quantized pipeline), or empty to follow the model file (default f32)")
	pruned := flag.Bool("pruned", false, "score top-k via the branch-and-bound taxonomy descent (identical metrics; throughput knob)")
	flag.Parse()

	prec, err := model.ParsePrecision(*precision)
	if err != nil {
		log.Fatal(err)
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	m, err := model.Load(mf)
	mf.Close()
	if err != nil {
		log.Fatalf("load model: %v", err)
	}

	pf, err := os.Open(filepath.Join(*dataDir, "purchases.tsv"))
	if err != nil {
		log.Fatal(err)
	}
	data, err := dataset.ReadTSV(pf)
	pf.Close()
	if err != nil {
		log.Fatalf("purchases: %v", err)
	}
	if data.NumItems != m.NumItems() {
		log.Fatalf("item count mismatch: log %d vs model %d", data.NumItems, m.NumItems())
	}

	splitCfg := dataset.DefaultSplitConfig()
	splitCfg.Mu = *mu
	splitCfg.Seed = *splitSeed
	split := data.Split(splitCfg)
	history := dataset.Concat(split.Train, split.Validation)

	c := m.Compose()
	cfg := eval.Config{T: 1, CategoryDepth: *catDepth, Workers: *workers}
	res := eval.Evaluate(c, history, split.Test, cfg)

	fmt.Printf("evaluated %d users (%d positives, %d cold)\n", res.Users, res.Positives, res.ColdCount)
	fmt.Printf("  AUC          %.4f\n", res.AUC)
	fmt.Printf("  meanRank     %.1f of %d items\n", res.MeanRank, data.NumItems)
	fmt.Printf("  catAUC       %.4f (depth %d)\n", res.CatAUC, *catDepth)
	fmt.Printf("  catMeanRank  %.2f\n", res.CatMeanRank)
	if res.ColdCount > 0 {
		fmt.Printf("  coldAUC      %.4f over %d new-item purchases\n", res.ColdAUC, res.ColdCount)
	}

	// flag > model-file preference > f32, mirroring serve's resolution
	if prec == model.PrecisionDefault {
		prec = c.Precision.Resolve()
	}
	tk, err := eval.EvaluateTopKPlan(c, history, split.Test, *workers,
		infer.Plan{K: *topk, Precision: prec.Resolve(), MaxWorkers: 1, Pruned: *pruned})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at k=%d: precision %.4f, recall %.4f, hit-rate %.4f, NDCG %.4f\n",
		tk.K, tk.Precision, tk.Recall, tk.HitRate, tk.NDCG)
}
