// Command tfrec-serve exposes a model trained by tfrec-train as an
// HTTP/JSON recommendation service: user, session, cascaded and
// diversified endpoints plus snapshot stats (see serve.HTTP for the wire
// format). SIGHUP re-reads the model file and hot-swaps the serving
// snapshot without dropping in-flight requests; SIGINT/SIGTERM shut down
// gracefully.
//
// Usage:
//
//	tfrec-serve -model model.gob -addr :8080
//	curl -d '{"user":17,"k":10}' localhost:8080/v1/recommend/user
//	kill -HUP $(pidof tfrec-serve)   # after tfrec-train rewrites model.gob
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/model"
	"repro/internal/serve"
)

func loadModel(path string) (*model.TF, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return model.Load(f)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tfrec-serve: ")

	modelPath := flag.String("model", "model.gob", "model file from tfrec-train")
	addr := flag.String("addr", ":8080", "listen address")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	workers := flag.Int("workers", 0, "inference pool parallelism (0 = GOMAXPROCS, 1 = serial sweeps)")
	batchMax := flag.Int("batch-max", 0, "coalesce up to this many concurrent full-scan requests per sweep (0 = batching off)")
	batchWindow := flag.Duration("batch-window", 500*time.Microsecond, "max wait to fill a request batch")
	flag.Parse()

	m, err := loadModel(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.New(m, serve.WithWorkers(*workers))
	h := serve.NewHTTP(srv, func() (*model.TF, error) { return loadModel(*modelPath) })
	if *batchMax > 0 {
		h.EnableBatching(*batchMax, *batchWindow)
	}
	log.Printf("serving %d users x %d items (K=%d) on %s, %d sweep workers, batching max=%d window=%s",
		m.NumUsers(), m.NumItems(), m.K(), *addr, srv.Pool().Workers(), *batchMax, *batchWindow)

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := h.Reload(); err != nil {
				log.Printf("reload failed, keeping current snapshot: %v", err)
				continue
			}
			log.Printf("reloaded %s", *modelPath)
		}
	}()

	httpSrv := &http.Server{Addr: *addr, Handler: h.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, os.Interrupt, syscall.SIGTERM)
		<-quit
		log.Print("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}
