// Command tfrec-serve exposes a model trained by tfrec-train as an
// HTTP/JSON recommendation service: user, session, cascaded and
// diversified endpoints plus snapshot stats (see serve.HTTP for the wire
// format). SIGHUP re-reads the model file and hot-swaps the serving
// snapshot without dropping in-flight requests; SIGINT/SIGTERM shut down
// gracefully.
//
// Usage:
//
//	tfrec-serve -model model.tfrec -addr :8080
//	curl -d '{"user":17,"k":10}' localhost:8080/v1/recommend/user
//	kill -HUP $(pidof tfrec-serve)   # after tfrec-train rewrites model.tfrec
//
// A v4 (TFRECMDL flat) model file is memory-mapped and served zero-copy:
// startup does no Compose pass and no quantization pass, so load time is
// O(1) in catalog size and resident memory stays flat until request
// traffic faults slabs in. v1-v3 gob files still load via the legacy
// decode+compose path. Every load — startup and SIGHUP — logs its
// duration, the file's format version, whether it is mapped, and the
// snapshot epoch.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/serve"
)

// loadSnapshot opens the model file for serving (memory-mapping v4
// files) and reports how long the load took — the number the flat format
// exists to shrink.
func loadSnapshot(path string) (*model.Snapshot, time.Duration, error) {
	start := time.Now()
	sn, err := model.LoadFile(path)
	return sn, time.Since(start), err
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tfrec-serve: ")

	modelPath := flag.String("model", "model.tfrec", "model file from tfrec-train (v4 flat files are memory-mapped; gob files load via the legacy path)")
	dataDir := flag.String("data", "", "directory with purchases.tsv backing ?exclude_purchased= filtering (empty = requests exclude only their own recent baskets)")
	addr := flag.String("addr", ":8080", "listen address")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	workers := flag.Int("workers", 0, "inference pool parallelism (0 = GOMAXPROCS, 1 = serial sweeps)")
	batchMax := flag.Int("batch-max", 0, "coalesce up to this many concurrent full-scan requests per sweep (0 = batching off)")
	batchWindow := flag.Duration("batch-window", 500*time.Microsecond, "max wait to fill a request batch")
	precision := flag.String("precision", "", "scoring precision: f32 (compact-slab sweep + exact rescore, the default), f64, int8 (quantized-slab sweep + exact rescore), or empty to follow the model file")
	maxBody := flag.Int64("max-body", 0, "request body size limit in bytes (0 = 1MiB default); oversize bodies get 413")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	cacheSize := flag.Int("cache-size", 0, "versioned LRU result cache capacity in entries (0 = caching off); SIGHUP reload invalidates all entries atomically")
	maxInflight := flag.Int("max-inflight", 0, "admission control: max concurrently executing recommend requests (0 = unlimited); excess waits briefly, then sheds 429/503 with Retry-After")
	queueWait := flag.Duration("queue-wait", 10*time.Millisecond, "admission control: how long a request may wait for an execution slot before shedding 503 (queue depth is 2x -max-inflight)")
	timeout := flag.Duration("timeout", 0, "per-request budget covering queue wait, batch window and sweep (0 = unbounded); a deadline firing mid-sweep sheds 503, never a partial ranking")
	pruned := flag.Bool("pruned", false, "default naive sweeps to taxonomy-guided branch-and-bound retrieval (rankings stay byte-identical; pruned requests bypass batch coalescing)")
	itemRange := flag.String("item-range", "", "shard mode: serve only catalog items in the half-open range lo:hi (empty = full catalog); a tfrec-router merges shard rankings")
	flag.Parse()

	prec, err := model.ParsePrecision(*precision)
	if err != nil {
		log.Fatal(err)
	}
	sn, loadDur, err := loadSnapshot(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	opts := []serve.Option{serve.WithWorkers(*workers), serve.WithPrecision(prec), serve.WithCache(*cacheSize), serve.WithPruned(*pruned)}
	if *itemRange != "" {
		rng, err := api.ParseItemRange(*itemRange)
		if err != nil {
			log.Fatalf("-item-range: %v", err)
		}
		if n := sn.Composed.NumItems(); rng.Hi > n {
			log.Fatalf("-item-range %s exceeds the catalog size %d", rng, n)
		}
		opts = append(opts, serve.WithItemRange(rng.Lo, rng.Hi))
		log.Printf("shard mode: serving items [%d,%d) of the catalog", rng.Lo, rng.Hi)
	}
	if *dataDir != "" {
		pf, err := os.Open(filepath.Join(*dataDir, "purchases.tsv"))
		if err != nil {
			log.Fatalf("-data: %v", err)
		}
		data, err := dataset.ReadTSV(pf)
		pf.Close()
		if err != nil {
			log.Fatalf("-data purchases: %v", err)
		}
		opts = append(opts, serve.WithHistory(data))
		log.Printf("purchase filtering armed from %s (%d users)", *dataDir, data.NumUsers())
	}
	srv := serve.NewSnapshot(sn, opts...)
	h := serve.NewHTTP(srv, nil)
	var lastLoad atomic.Int64 // nanoseconds of the most recent reload
	h.SetSnapshotReload(func() (*model.Snapshot, error) {
		sn, dur, err := loadSnapshot(*modelPath)
		lastLoad.Store(int64(dur))
		return sn, err
	})
	if *batchMax > 0 {
		h.EnableBatching(*batchMax, *batchWindow)
	}
	h.SetMaxBodyBytes(*maxBody)
	if *maxInflight > 0 {
		h.SetAdmission(*maxInflight, 2*(*maxInflight), *queueWait)
	}
	h.SetTimeout(*timeout)
	if *debugAddr != "" {
		// pprof lives on its own listener so profiling stays reachable
		// (and firewallable) independently of the serving port
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
		log.Printf("pprof on %s/debug/pprof/", *debugAddr)
	}
	c := sn.Composed
	log.Printf("loaded %s in %s: format v%d, mapped=%v, epoch %d", *modelPath, loadDur, sn.Format, sn.Mapped, srv.Epoch())
	log.Printf("serving %d users x %d items (K=%d) on %s, %d sweep workers, precision %s, pruned=%v, batching max=%d window=%s, cache=%d, max-inflight=%d, timeout=%s",
		c.User.Rows(), c.NumItems(), c.K(), *addr, srv.Pool().Workers(), srv.Precision(), *pruned, *batchMax, *batchWindow, *cacheSize, *maxInflight, *timeout)

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := h.Reload(); err != nil {
				log.Printf("reload failed, keeping current snapshot: %v", err)
				continue
			}
			format, mapped := srv.SnapshotInfo()
			log.Printf("reloaded %s in %s: format v%d, mapped=%v, epoch %d",
				*modelPath, time.Duration(lastLoad.Load()), format, mapped, srv.Epoch())
		}
	}()

	httpSrv := &http.Server{Addr: *addr, Handler: h.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, os.Interrupt, syscall.SIGTERM)
		<-quit
		log.Print("shutting down")
		// flush the batcher first so callers parked on a coalescing window
		// finish promptly instead of eating into the drain budget
		h.Close()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}
