// Command tfrec-serve exposes a model trained by tfrec-train as an
// HTTP/JSON recommendation service: user, session, cascaded and
// diversified endpoints plus snapshot stats (see serve.HTTP for the wire
// format). SIGHUP re-reads the model file and hot-swaps the serving
// snapshot without dropping in-flight requests; SIGINT/SIGTERM shut down
// gracefully.
//
// Usage:
//
//	tfrec-serve -model model.gob -addr :8080
//	curl -d '{"user":17,"k":10}' localhost:8080/v1/recommend/user
//	kill -HUP $(pidof tfrec-serve)   # after tfrec-train rewrites model.gob
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/serve"
)

func loadModel(path string) (*model.TF, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return model.Load(f)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tfrec-serve: ")

	modelPath := flag.String("model", "model.gob", "model file from tfrec-train")
	dataDir := flag.String("data", "", "directory with purchases.tsv backing ?exclude_purchased= filtering (empty = requests exclude only their own recent baskets)")
	addr := flag.String("addr", ":8080", "listen address")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	workers := flag.Int("workers", 0, "inference pool parallelism (0 = GOMAXPROCS, 1 = serial sweeps)")
	batchMax := flag.Int("batch-max", 0, "coalesce up to this many concurrent full-scan requests per sweep (0 = batching off)")
	batchWindow := flag.Duration("batch-window", 500*time.Microsecond, "max wait to fill a request batch")
	precision := flag.String("precision", "", "scoring precision: f32 (compact-slab sweep + exact rescore, the default), f64, int8 (quantized-slab sweep + exact rescore), or empty to follow the model file")
	maxBody := flag.Int64("max-body", 0, "request body size limit in bytes (0 = 1MiB default); oversize bodies get 413")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	cacheSize := flag.Int("cache-size", 0, "versioned LRU result cache capacity in entries (0 = caching off); SIGHUP reload invalidates all entries atomically")
	maxInflight := flag.Int("max-inflight", 0, "admission control: max concurrently executing recommend requests (0 = unlimited); excess waits briefly, then sheds 429/503 with Retry-After")
	queueWait := flag.Duration("queue-wait", 10*time.Millisecond, "admission control: how long a request may wait for an execution slot before shedding 503 (queue depth is 2x -max-inflight)")
	timeout := flag.Duration("timeout", 0, "per-request budget covering queue wait, batch window and sweep (0 = unbounded); a deadline firing mid-sweep sheds 503, never a partial ranking")
	pruned := flag.Bool("pruned", false, "default naive sweeps to taxonomy-guided branch-and-bound retrieval (rankings stay byte-identical; pruned requests bypass batch coalescing)")
	flag.Parse()

	prec, err := model.ParsePrecision(*precision)
	if err != nil {
		log.Fatal(err)
	}
	m, err := loadModel(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	opts := []serve.Option{serve.WithWorkers(*workers), serve.WithPrecision(prec), serve.WithCache(*cacheSize), serve.WithPruned(*pruned)}
	if *dataDir != "" {
		pf, err := os.Open(filepath.Join(*dataDir, "purchases.tsv"))
		if err != nil {
			log.Fatalf("-data: %v", err)
		}
		data, err := dataset.ReadTSV(pf)
		pf.Close()
		if err != nil {
			log.Fatalf("-data purchases: %v", err)
		}
		opts = append(opts, serve.WithHistory(data))
		log.Printf("purchase filtering armed from %s (%d users)", *dataDir, data.NumUsers())
	}
	srv := serve.New(m, opts...)
	h := serve.NewHTTP(srv, func() (*model.TF, error) { return loadModel(*modelPath) })
	if *batchMax > 0 {
		h.EnableBatching(*batchMax, *batchWindow)
	}
	h.SetMaxBodyBytes(*maxBody)
	if *maxInflight > 0 {
		h.SetAdmission(*maxInflight, 2*(*maxInflight), *queueWait)
	}
	h.SetTimeout(*timeout)
	if *debugAddr != "" {
		// pprof lives on its own listener so profiling stays reachable
		// (and firewallable) independently of the serving port
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
		log.Printf("pprof on %s/debug/pprof/", *debugAddr)
	}
	log.Printf("serving %d users x %d items (K=%d) on %s, %d sweep workers, precision %s, pruned=%v, batching max=%d window=%s, cache=%d, max-inflight=%d, timeout=%s",
		m.NumUsers(), m.NumItems(), m.K(), *addr, srv.Pool().Workers(), srv.Precision(), *pruned, *batchMax, *batchWindow, *cacheSize, *maxInflight, *timeout)

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := h.Reload(); err != nil {
				log.Printf("reload failed, keeping current snapshot: %v", err)
				continue
			}
			log.Printf("reloaded %s", *modelPath)
		}
	}()

	httpSrv := &http.Server{Addr: *addr, Handler: h.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, os.Interrupt, syscall.SIGTERM)
		<-quit
		log.Print("shutting down")
		// flush the batcher first so callers parked on a coalescing window
		// finish promptly instead of eating into the drain budget
		h.Close()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}
