// Command tfrec-gen generates a synthetic taxonomy and purchase log to
// disk in the text formats read by tfrec-train and tfrec-recommend.
//
// Usage:
//
//	tfrec-gen -out data/ -users 2000 -items 2400 -levels 6,24,96 -seed 42
//
// It writes <out>/taxonomy.txt and <out>/purchases.tsv plus a summary of
// the Figure-5 dataset statistics to stdout. With -model it additionally
// writes a randomly initialized (untrained) model over the generated
// taxonomy in the legacy gob layout — a seed for tfrec-convert and for
// load-path benchmarks that need a model file of a given catalog size
// without paying for training.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/synth"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tfrec-gen: ")

	out := flag.String("out", "data", "output directory")
	users := flag.Int("users", 2000, "number of users")
	items := flag.Int("items", 2400, "number of items (taxonomy leaves)")
	levels := flag.String("levels", "6,24,96", "comma-separated category level sizes, top first")
	meanTxns := flag.Float64("mean-txns", 6, "mean transactions per user")
	coldFrac := flag.Float64("cold-frac", 0.08, "fraction of items released late (cold start)")
	skew := flag.Float64("skew", 0.5, "taxonomy fan-out skew (Zipf exponent)")
	seed := flag.Uint64("seed", 42, "random seed")
	modelPath := flag.String("model", "", "also write a random-init model over the generated taxonomy in the legacy gob layout (empty = skip)")
	modelK := flag.Int("model-k", 8, "factor dimensionality of the -model file")
	flag.Parse()

	levelSizes, err := parseLevels(*levels)
	if err != nil {
		log.Fatalf("bad -levels: %v", err)
	}

	tree, err := taxonomy.Generate(taxonomy.GenConfig{
		CategoryLevels: levelSizes,
		Items:          *items,
		Skew:           *skew,
	}, vecmath.NewRNG(*seed))
	if err != nil {
		log.Fatalf("taxonomy: %v", err)
	}

	cfg := synth.DefaultConfig()
	cfg.Users = *users
	cfg.MeanTxns = *meanTxns
	cfg.ColdFrac = *coldFrac
	cfg.Seed = *seed + 1
	logData, _, err := synth.Generate(tree, cfg)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := writeFile(filepath.Join(*out, "taxonomy.txt"), tree.WriteText); err != nil {
		log.Fatalf("write taxonomy: %v", err)
	}
	if err := writeFile(filepath.Join(*out, "purchases.tsv"), logData.WriteTSV); err != nil {
		log.Fatalf("write purchases: %v", err)
	}

	if *modelPath != "" {
		m, err := model.New(tree, *users, model.Params{
			K: *modelK, TaxonomyLevels: tree.Depth(), MarkovOrder: 1,
			Alpha: 1, InitStd: 0.1, UseBias: true,
		}, vecmath.NewRNG(*seed+2))
		if err != nil {
			log.Fatalf("model: %v", err)
		}
		if err := writeFile(*modelPath, m.SaveGob); err != nil {
			log.Fatalf("write model: %v", err)
		}
		fmt.Printf("wrote %s (random-init, %d users x %d items, K=%d, legacy gob layout)\n",
			*modelPath, *users, tree.NumItems(), *modelK)
	}

	split := logData.Split(dataset.DefaultSplitConfig())
	stats := dataset.ComputeStats(split, 50)
	fmt.Printf("wrote %s (levels %v, %d items) and %s (%d users, %d purchases)\n",
		filepath.Join(*out, "taxonomy.txt"), tree.LevelSizes(), tree.NumItems(),
		filepath.Join(*out, "purchases.tsv"), logData.NumUsers(), logData.NumPurchases())
	fmt.Printf("avg purchases/user (train side of a mu=0.5 split): %.2f\n", stats.AvgPurchasesPerUser)
}

func parseLevels(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("%q is not an integer", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
