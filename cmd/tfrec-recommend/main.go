// Command tfrec-recommend loads a model trained by tfrec-train and prints
// recommendations for a user by building one infer.Plan and executing it
// — the same query-plan path the HTTP server runs — so every serving
// capability (strategy, precision, parallel sweep, request-time filters,
// pagination) is a flag.
//
// Usage:
//
//	tfrec-recommend -model model.gob -data data/ -user 17 -k 10
//	tfrec-recommend -model model.gob -data data/ -user 17 -strategy cascade -cascade 0.2
//	tfrec-recommend -model model.gob -data data/ -user 17 -exclude-purchased -offset 10
//	tfrec-recommend -model model.gob -data data/ -user 17 -category 3,17 -workers 4 -precision f64
//	tfrec-recommend -model model.gob -data data/ -user 17 -structured
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/vecmath"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tfrec-recommend: ")

	modelPath := flag.String("model", "model.tfrec", "model file from tfrec-train")
	dataDir := flag.String("data", "data", "directory with purchases.tsv (Markov context and purchase filtering)")
	user := flag.Int("user", 0, "user id to recommend for")
	k := flag.Int("k", 10, "number of items to recommend")
	offset := flag.Int("offset", 0, "skip the first offset ranked items (pagination)")
	strategy := flag.String("strategy", "", "ranking strategy: naive (default), cascade, diversified")
	cascade := flag.Float64("cascade", 0, "cascaded inference keep fraction; setting it > 0 implies -strategy cascade")
	maxPerCat := flag.Int("max-per-category", 2, "category quota (with -strategy diversified)")
	catDepth := flag.Int("cat-depth", 0, "quota category depth (0 = lowest category level)")
	workers := flag.Int("workers", 1, "parallel sweep workers (0 = GOMAXPROCS, 1 = serial)")
	precision := flag.String("precision", "", "scoring precision: f32, f64, int8, or empty to follow the model file")
	excludePurchased := flag.Bool("exclude-purchased", false, "drop items the user already bought")
	category := flag.String("category", "", "comma-separated taxonomy node ids to restrict results to")
	excludeCategory := flag.String("exclude-category", "", "comma-separated taxonomy node ids to remove")
	structured := flag.Bool("structured", false, "print the per-category structured ranking")
	jsonOut := flag.Bool("json", false, "print the ranking as the wire-format recommend response body (diffable against a tfrec-serve answer for the same model); ignored with -structured")
	pruned := flag.Bool("pruned", false, "use taxonomy-guided branch-and-bound retrieval for the naive sweep (byte-identical ranking; reports how much of the catalog the bounds skipped)")
	flag.Parse()

	prec, err := model.ParsePrecision(*precision)
	if err != nil {
		log.Fatal(err)
	}
	strat, err := infer.ParseStrategy(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	// pre-plan invocations selected the cascade by the keep fraction
	// alone; keep that spelling working — but never override an explicit
	// -strategy choice
	if *cascade > 0 && *strategy == "" {
		strat = infer.StrategyCascade
	}
	if strat == infer.StrategyCascade && *cascade <= 0 {
		log.Fatalf("-strategy cascade needs -cascade > 0")
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	m, err := model.Load(mf)
	mf.Close()
	if err != nil {
		log.Fatalf("load model: %v", err)
	}
	c := m.Compose()
	if *user < 0 || *user >= m.NumUsers() {
		log.Fatalf("user %d out of range [0,%d)", *user, m.NumUsers())
	}

	// the user's history drives the short-term Markov term and the
	// exclude-purchased filter; both degrade gracefully without -data
	var history []dataset.Basket
	if m.P.MarkovOrder > 0 || *excludePurchased {
		pf, err := os.Open(filepath.Join(*dataDir, "purchases.tsv"))
		if err != nil {
			if m.P.MarkovOrder > 0 {
				log.Fatalf("need -data for Markov context: %v", err)
			}
			log.Printf("no purchase log (%v): -exclude-purchased covers nothing", err)
		} else {
			data, err := dataset.ReadTSV(pf)
			pf.Close()
			if err != nil {
				log.Fatalf("purchases: %v", err)
			}
			if *user < len(data.Users) {
				history = data.Users[*user].Baskets
			}
		}
	}
	var recent []dataset.Basket
	if m.P.MarkovOrder > 0 {
		recent = c.PrevBaskets(history, len(history))
	}

	q := make([]float64, m.K())
	c.BuildQueryInto(*user, recent, q)

	if *structured {
		sr := infer.Structured(c, q, *k)
		for d, level := range sr.Levels {
			fmt.Printf("level %d categories (best first):", d+1)
			for i, s := range level {
				if i >= 5 {
					break
				}
				fmt.Printf(" node%d(%.3f)", s.ID, s.Score)
			}
			fmt.Println()
		}
		fmt.Println("top items:")
		printItems(sr.Items, 0)
		return
	}

	pl := infer.Plan{
		Strategy:   strat,
		Precision:  prec,
		K:          *k,
		Offset:     *offset,
		MaxWorkers: 0,
		Filter:     buildFilter(*excludePurchased, history, *category, *excludeCategory),
	}
	switch strat {
	case infer.StrategyCascade:
		cfg := infer.UniformCascade(m.Tree.Depth(), *cascade)
		pl.Cascade = &cfg
	case infer.StrategyDiversified:
		pl.Diversify = &infer.Diversify{MaxPerCategory: *maxPerCat, CatDepth: *catDepth}
	default:
		pl.Pruned = *pruned
	}
	if *pruned && strat != infer.StrategyNaive {
		log.Printf("-pruned applies to the naive sweep only; ignored for -strategy %v", strat)
	}
	pruneBefore := infer.PruneCounters()

	var pool *infer.Pool
	if *workers != 1 {
		pool = infer.NewPool(*workers)
		defer pool.Close()
	}
	res, err := pool.Execute(context.Background(), c, q, pl)
	if err != nil {
		log.Fatalf("execute: %v", err)
	}
	if *jsonOut {
		// the same wire shape a tfrec-serve node answers with — including
		// the diversified category annotation and the model fingerprint —
		// so a CLI run is diffable against a server response
		out := api.RecommendResponse{
			Items:   make([]api.Item, len(res.Items)),
			ModelID: c.Fingerprint(),
		}
		qDepth := -1
		if strat == infer.StrategyDiversified {
			qDepth = infer.DiversifyDepth(c, *catDepth)
		}
		for i, s := range res.Items {
			out.Items[i] = api.Item{Item: s.ID, Score: s.Score}
			if qDepth >= 0 {
				out.Items[i].Category = int32(c.Index.ItemCategory(s.ID, qDepth))
			}
		}
		if err := json.NewEncoder(os.Stdout).Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	if res.Eligible < c.NumItems() {
		fmt.Printf("filtered catalog: %d/%d items eligible\n", res.Eligible, c.NumItems())
	}
	if res.Stats != nil {
		fmt.Printf("cascaded inference: scored %d/%d nodes (%d leaves)\n",
			res.Stats.NodesScored, m.Tree.NumNodes(), res.Stats.LeavesScored)
	}
	if pl.Pruned {
		ps := infer.PruneCounters()
		fmt.Printf("pruned retrieval: skipped %d items in %d subtrees (%d bound evals, %d fallbacks)\n",
			ps.ItemsPruned-pruneBefore.ItemsPruned, ps.SubtreesPruned-pruneBefore.SubtreesPruned,
			ps.BoundEvals-pruneBefore.BoundEvals, ps.Fallbacks-pruneBefore.Fallbacks)
	}
	printItems(res.Items, *offset)
}

// buildFilter assembles the plan filter from the CLI flags; it returns
// nil when nothing filters.
func buildFilter(excludePurchased bool, history []dataset.Basket, category, excludeCategory string) *infer.Filter {
	f := &infer.Filter{}
	if excludePurchased {
		for _, b := range history {
			f.ExcludeItems = append(f.ExcludeItems, b...)
		}
	}
	f.AllowNodes = parseNodeList(category)
	f.DenyNodes = parseNodeList(excludeCategory)
	if f.Empty() {
		return nil
	}
	return f
}

func parseNodeList(s string) []int32 {
	if s == "" {
		return nil
	}
	nodes, err := infer.ParseIDList(s)
	if err != nil {
		log.Fatalf("bad taxonomy node list %q: %v", s, err)
	}
	return nodes
}

func printItems(items []vecmath.Scored, offset int) {
	for rank, s := range items {
		fmt.Printf("%2d. item %-8d score %.4f\n", offset+rank+1, s.ID, s.Score)
	}
}
