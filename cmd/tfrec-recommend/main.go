// Command tfrec-recommend loads a model trained by tfrec-train and prints
// recommendations for one or more users, optionally using cascaded
// inference and the structured per-category ranking.
//
// Usage:
//
//	tfrec-recommend -model model.gob -data data/ -user 17 -k 10
//	tfrec-recommend -model model.gob -data data/ -user 17 -cascade 0.2
//	tfrec-recommend -model model.gob -data data/ -user 17 -structured
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/vecmath"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tfrec-recommend: ")

	modelPath := flag.String("model", "model.gob", "model file from tfrec-train")
	dataDir := flag.String("data", "data", "directory with purchases.tsv (for Markov context)")
	user := flag.Int("user", 0, "user id to recommend for")
	k := flag.Int("k", 10, "number of items to recommend")
	cascade := flag.Float64("cascade", 0, "cascaded inference keep fraction (0 = naive full scan)")
	structured := flag.Bool("structured", false, "print the per-category structured ranking")
	flag.Parse()

	mf, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	m, err := model.Load(mf)
	mf.Close()
	if err != nil {
		log.Fatalf("load model: %v", err)
	}
	c := m.Compose()

	// context baskets for the short-term term
	var recent []dataset.Basket
	if m.P.MarkovOrder > 0 {
		pf, err := os.Open(filepath.Join(*dataDir, "purchases.tsv"))
		if err != nil {
			log.Fatalf("need -data for Markov context: %v", err)
		}
		data, err := dataset.ReadTSV(pf)
		pf.Close()
		if err != nil {
			log.Fatalf("purchases: %v", err)
		}
		if *user < len(data.Users) {
			h := data.Users[*user].Baskets
			recent = c.PrevBaskets(h, len(h))
		}
	}
	if *user < 0 || *user >= m.NumUsers() {
		log.Fatalf("user %d out of range [0,%d)", *user, m.NumUsers())
	}

	q := make([]float64, m.K())
	c.BuildQueryInto(*user, recent, q)

	switch {
	case *structured:
		sr := infer.Structured(c, q, *k)
		for d, level := range sr.Levels {
			fmt.Printf("level %d categories (best first):", d+1)
			for i, s := range level {
				if i >= 5 {
					break
				}
				fmt.Printf(" node%d(%.3f)", s.ID, s.Score)
			}
			fmt.Println()
		}
		fmt.Println("top items:")
		printItems(sr.Items)
	case *cascade > 0:
		cfg := infer.UniformCascade(m.Tree.Depth(), *cascade)
		top, stats, err := infer.Cascade(c, q, cfg, *k)
		if err != nil {
			log.Fatalf("cascade: %v", err)
		}
		fmt.Printf("cascaded inference: scored %d/%d nodes (%d leaves)\n",
			stats.NodesScored, m.Tree.NumNodes(), stats.LeavesScored)
		printItems(top)
	default:
		printItems(infer.Naive(c, q, *k))
	}
}

func printItems(items []vecmath.Scored) {
	for rank, s := range items {
		fmt.Printf("%2d. item %-8d score %.4f\n", rank+1, s.ID, s.Score)
	}
}
