// Command tfrec-benchgate is the CI benchmark-regression gate: it parses
// `go test -bench` output, reduces repeated runs (-count=N) to per-bench
// medians, and compares them against the committed BENCH_baseline.json,
// failing (exit 1) when any gated bench regressed beyond the threshold.
//
// Raw ns/op is not comparable across machines, so the gate normalizes
// both sides by a canary bench recorded in the baseline (the serial
// streaming top-k): what is compared is each bench's slowdown factor
// relative to the canary on the same machine. A >10% regression in that
// ratio means the bench got slower relative to the hardware it ran on —
// a real regression, not a slower runner.
//
// Canary normalization factors out machine *speed* but not machine
// *shape*: the vecmath kernel dispatch (AVX2, NEON or generic — see
// `tfrec-inspect -cpu`) changes the relative cost of the int8, f32 and
// canary sweeps, so normalized ratios measured under one kernel set are
// meaningless against a baseline recorded under another. The baseline
// therefore records its kernel set ("kernels"); when the gating run's
// set differs, every per-bench ns comparison and the raw canary bound
// are reported as skips, and only the within-run speedup floors — which
// compare two benches of the same run — remain armed. Speedup entries
// may themselves carry a "kernels" condition ("the AVX2 int8 dot must
// stay ≥3x the generic reference") and are skipped on other arms, where
// the SIMD micro-benches self-skip and produce no samples at all.
//
// Usage:
//
//	go test -run '^$' -bench 'TopK|Sharded' -count=6 . | tfrec-benchgate -baseline BENCH_baseline.json
//	tfrec-benchgate -baseline BENCH_baseline.json -input bench.txt -update   # refresh the baseline
//	tfrec-benchgate -baseline BENCH_baseline.json -emit-text                 # baseline as bench lines (for benchstat)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/vecmath"
)

// baseline is the committed reference: per-bench median ns/op from a
// known-good run, the regression threshold, and the canary bench used to
// factor out machine speed.
type baseline struct {
	// Note documents how to refresh the file.
	Note string `json:"note"`
	// Threshold is the allowed relative regression (0.10 = 10%).
	Threshold float64 `json:"threshold"`
	// Canary names the bench used to normalize machine speed; empty
	// disables normalization and compares raw ns/op.
	Canary string `json:"canary,omitempty"`
	// CanaryRawLimit is the allowed raw (un-normalized) slowdown of the
	// canary itself. The canary's normalized ratio is 1.0 by construction,
	// so a regression in the canary's own code path would silently rescale
	// every other comparison; this looser raw bound (default 0.5 = 50%,
	// wide enough for runner-to-runner variance) catches that. Raw ns/op
	// is only meaningful on like hardware, so the check applies only when
	// the run's processor count matches Procs and is skipped otherwise.
	CanaryRawLimit float64 `json:"canary_raw_limit,omitempty"`
	// Procs records the GOMAXPROCS of the run the baseline came from — a
	// machine-class proxy guarding the raw canary check.
	Procs int `json:"procs,omitempty"`
	// Kernels records the vecmath kernel dispatch the baseline was
	// measured under (vecmath.KernelsID(), e.g. "amd64/avx2"). A gating
	// run under a different dispatch skips every per-bench comparison:
	// the kernel set changes the relative cost of the sweeps, which is
	// exactly what canary normalization cannot correct for. Empty (a
	// pre-SIMD baseline) disables the check.
	Kernels string `json:"kernels,omitempty"`
	// Speedups are cross-bench ratio floors, checked only when the run
	// used at least MinProcs CPUs (read from the bench name's -N suffix).
	// They gate parallel *scaling* — e.g. "the sharded sweep must stay
	// ≥2x the serial sweep on ≥4 cores" — which per-bench normalization
	// cannot see when the committed baseline came from a small machine.
	Speedups []speedupGate `json:"speedups,omitempty"`
	// NsPerOp maps bench name (GOMAXPROCS suffix stripped) to median ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// speedupGate requires meas[Slow]/meas[Fast] >= Min when the run had at
// least MinProcs processors and — when Kernels is non-empty — the run's
// kernel dispatch matches Kernels exactly.
type speedupGate struct {
	Slow     string  `json:"slow"`
	Fast     string  `json:"fast"`
	Min      float64 `json:"min"`
	MinProcs int     `json:"min_procs"`
	Kernels  string  `json:"kernels,omitempty"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
// "BenchmarkShardedTopK/workers=4-8   231   1046510 ns/op   0 B/op";
// the trailing -8 is GOMAXPROCS, stripped from the name but kept as the
// run's processor count for the speedup gates.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+([0-9.]+(?:[eE][+-]?\d+)?) ns/op`)

// parseBench collects every ns/op sample per bench name from go test
// -bench output and reports the GOMAXPROCS the run used (1 when no
// suffix was present).
func parseBench(r io.Reader) (map[string][]float64, int, error) {
	samples := make(map[string][]float64)
	procs := 1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, 0, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		if m[2] != "" {
			if p, err := strconv.Atoi(m[2]); err == nil && p > procs {
				procs = p
			}
		}
		samples[m[1]] = append(samples[m[1]], ns)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return samples, procs, nil
}

// median reduces repeated -count runs to a robust central value.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func medians(samples map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for name, xs := range samples {
		out[name] = median(xs)
	}
	return out
}

// gateResult is one check's verdict.
type gateResult struct {
	name      string
	oldNs     float64
	newNs     float64
	ratio     float64 // normalized new/old; > 1 means slower
	regressed bool
	missing   bool
	skipped   string // non-empty: check not applicable, with reason
	speedup   bool   // ratio is an achieved speedup, not a cost ratio
}

// gate compares measured medians against the baseline. Every baseline
// bench must be present in the input — a silently skipped bench would
// make the gate pass vacuously. procs is the GOMAXPROCS of the measured
// run; speedup gates below their MinProcs are reported as skipped.
// kernels is the run's vecmath dispatch id: when it differs from the
// baseline's, per-bench and raw-canary comparisons are skipped (the
// missing-bench failure included — SIMD micro-benches legitimately
// self-skip on other arms), and kernel-conditioned speedup gates apply
// only on their own arm.
func gate(base baseline, meas map[string]float64, procs int, kernels string) ([]gateResult, bool) {
	kernelMismatch := base.Kernels != "" && kernels != base.Kernels
	kernelSkip := fmt.Sprintf("baseline kernels %s, run has %s; refresh the baseline from this dispatch arm to arm per-bench comparisons", base.Kernels, kernels)
	norm := 1.0
	if base.Canary != "" {
		oldC, okOld := base.NsPerOp[base.Canary]
		newC, okNew := meas[base.Canary]
		if okOld && okNew && oldC > 0 && newC > 0 {
			norm = oldC / newC // machine-speed factor baseline/now
		}
	}
	names := make([]string, 0, len(base.NsPerOp))
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	var results []gateResult
	failed := false
	for _, name := range names {
		oldNs := base.NsPerOp[name]
		if kernelMismatch {
			results = append(results, gateResult{name: name, oldNs: oldNs, skipped: kernelSkip})
			continue
		}
		newNs, ok := meas[name]
		if !ok {
			results = append(results, gateResult{name: name, oldNs: oldNs, missing: true})
			failed = true
			continue
		}
		r := gateResult{name: name, oldNs: oldNs, newNs: newNs}
		r.ratio = (newNs * norm) / oldNs
		r.regressed = r.ratio > 1+base.Threshold
		if r.regressed {
			failed = true
		}
		results = append(results, r)
	}
	// the canary's normalized ratio is 1.0 by construction, so a slowdown
	// in the canary's own code path would rescale (and hide) every other
	// comparison; bound its raw ratio with the looser machine-variance
	// limit — but only against a baseline from the same machine class
	// (matching proc count), since raw ns/op means nothing across classes
	if base.Canary != "" {
		limit := base.CanaryRawLimit
		if limit <= 0 {
			limit = 0.5
		}
		oldC, okOld := base.NsPerOp[base.Canary]
		if newC, ok := meas[base.Canary]; ok && okOld && oldC > 0 {
			r := gateResult{name: base.Canary + " (raw)", oldNs: oldC, newNs: newC, ratio: newC / oldC}
			if kernelMismatch {
				r.skipped = kernelSkip
			} else if base.Procs != 0 && base.Procs != procs {
				r.skipped = fmt.Sprintf("baseline from %d-proc machine, run had %d; refresh the baseline from this hardware to arm the raw canary bound", base.Procs, procs)
			} else {
				r.regressed = r.ratio > 1+limit
				if r.regressed {
					failed = true
				}
			}
			results = append(results, r)
		}
	}
	for _, s := range base.Speedups {
		r := gateResult{name: fmt.Sprintf("%s >= %.1fx %s", s.Fast, s.Min, s.Slow), speedup: true}
		slow, okSlow := meas[s.Slow]
		fast, okFast := meas[s.Fast]
		switch {
		case s.Kernels != "" && s.Kernels != kernels:
			r.skipped = fmt.Sprintf("needs %s kernels, run has %s", s.Kernels, kernels)
		case procs < s.MinProcs:
			r.skipped = fmt.Sprintf("needs >=%d procs, run had %d", s.MinProcs, procs)
		case !okSlow || !okFast:
			r.missing = true
			failed = true
		default:
			r.oldNs, r.newNs = slow, fast
			r.ratio = slow / fast // achieved speedup
			r.regressed = r.ratio < s.Min
			if r.regressed {
				failed = true
			}
		}
		results = append(results, r)
	}
	return results, failed
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tfrec-benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "committed baseline file")
	inputPath := fs.String("input", "-", "bench output file ('-' = stdin)")
	update := fs.Bool("update", false, "rewrite the baseline from the input instead of gating")
	emitText := fs.Bool("emit-text", false, "print the baseline as go-bench lines (benchstat input) and exit")
	threshold := fs.Float64("threshold", -1, "override the baseline's regression threshold")
	kernels := fs.String("kernels", vecmath.KernelsID(), "kernel dispatch id of the machine that produced the input (defaults to this host's)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	base := baseline{Threshold: 0.10}
	raw, err := os.ReadFile(*baselinePath)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(stderr, "tfrec-benchgate: bad baseline %s: %v\n", *baselinePath, err)
			return 2
		}
	case os.IsNotExist(err) && *update:
		// first -update creates the file
	default:
		fmt.Fprintf(stderr, "tfrec-benchgate: %v\n", err)
		return 2
	}
	if *threshold >= 0 {
		base.Threshold = *threshold
	}

	if *emitText {
		names := make([]string, 0, len(base.NsPerOp))
		for name := range base.NsPerOp {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(stdout, "%s 1 %v ns/op\n", name, base.NsPerOp[name])
		}
		return 0
	}

	in := stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fmt.Fprintf(stderr, "tfrec-benchgate: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	samples, procs, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(stderr, "tfrec-benchgate: %v\n", err)
		return 2
	}
	if len(samples) == 0 {
		fmt.Fprintln(stderr, "tfrec-benchgate: no benchmark lines in input")
		return 2
	}
	meas := medians(samples)

	if *update {
		base.Note = "Median ns/op from `go test -run '^$' -bench '^(BenchmarkTopK|BenchmarkSharded|BenchmarkServe|BenchmarkExecuteDeadline|BenchmarkQuantize|BenchmarkLoad|BenchmarkKernel)' -count=6 .`; refresh with tfrec-benchgate -update after intentional perf changes. Per-bench comparisons are normalized by the canary bench (its own raw time is bounded by canary_raw_limit), so the file need not come from CI-identical hardware — but it must come from the same kernel dispatch arm (the kernels field; runs under a different arm skip per-bench comparisons entirely); the speedups entries additionally gate parallel scaling itself on machines with enough cores, and kernel-conditioned entries gate the SIMD kernels' own floors on their arm. The BenchmarkLoad pair is speedup-gated only (no absolute ns/op entry): its world is sized by TFREC_LOADBENCH_ITEMS, so raw times are not comparable across runs."
		if base.Canary == "" {
			base.Canary = "BenchmarkTopKIndexStreaming"
		}
		if base.CanaryRawLimit == 0 {
			base.CanaryRawLimit = 0.5
		}
		base.Procs = procs
		base.Kernels = *kernels
		if base.Speedups == nil {
			// the acceptance floors: sustained sharded throughput >=2x
			// serial on >=4 cores, the coalesced batch sweep beating the
			// request-at-a-time loop on any machine, the two-stage f32
			// pipeline's bandwidth win — >=1.5x the f64 sweep on the wide
			// (out-of-cache) world single-core, with the saturated f32 path
			// keeping the parallel floor — plus the query-plan executor's
			// two promises: the unfiltered plan path stays within ~10% of
			// the direct sweep it wraps (a >=0.9x "speedup" floor on the
			// direct/plan ratio), and a 95%-exclusion filter actually
			// skips work (>=2.5x over the unfiltered sweep of the same
			// world); the quantized int8 tier's two promises: the blocked
			// multi-query batch sweep beats per-query serial execution
			// ≥1.3x on any machine (the widened kernel amortizes the
			// per-block code widening across the query group), and under
			// full-core saturation — where concurrent f32 sweeps contend
			// for bandwidth on 4x the slab bytes — the int8 pipeline stays
			// ≥1.3x the f32 one (≥4 cores; on a lone core the L3 feeds the
			// f32 sweep for free and the ratio says nothing); only pairs
			// actually measured in this input are installed, so a partial
			// bench run cannot plant a vacuously-failing floor
			for _, s := range []speedupGate{
				{Slow: "BenchmarkShardedTopKSerial", Fast: "BenchmarkShardedTopKSaturated", Min: 2.0, MinProcs: 4},
				{Slow: "BenchmarkShardedTopKSerial", Fast: "BenchmarkShardedTopK/workers=4", Min: 1.5, MinProcs: 4},
				{Slow: "BenchmarkShardedBatchLoop/batch=16", Fast: "BenchmarkShardedBatchSweep/batch=16", Min: 1.2, MinProcs: 1},
				{Slow: "BenchmarkTopKF64Wide", Fast: "BenchmarkTopKF32Wide", Min: 1.5, MinProcs: 1},
				{Slow: "BenchmarkShardedTopKSerial", Fast: "BenchmarkTopKF32Saturated", Min: 2.0, MinProcs: 4},
				{Slow: "BenchmarkTopKIndexStreaming", Fast: "BenchmarkTopKPlanStreaming", Min: 0.9, MinProcs: 1},
				{Slow: "BenchmarkTopKFiltered/excl=0", Fast: "BenchmarkTopKFiltered/excl=95", Min: 2.5, MinProcs: 1},
				// serving resilience: a result-cache hit must skip the sweep
				// (>=10x the uncached request; measured ~6000x), and an armed
				// deadline must not measurably slow the uncontended sweep —
				// none/far >= 0.95 bounds the armed sweep at ~1.05x the
				// unarmed one, comfortably above bench noise yet far below
				// the +30%-style regressions a misplaced per-item check
				// would cause
				{Slow: "BenchmarkServeUncached", Fast: "BenchmarkServeCachedHit", Min: 10.0, MinProcs: 1},
				{Slow: "BenchmarkExecuteDeadlineNone", Fast: "BenchmarkExecuteDeadlineFar", Min: 0.95, MinProcs: 1},
				// the blocked int8 batch sweep's win is compute-level (the
				// widened group kernel amortizes code widening and slab
				// loads across the query group; ~1.35x on a quiet single
				// core) but single-proc VMs see host-noise swings of the
				// same magnitude, so the floor is enforced from 2 procs up
				// where the shared-bandwidth advantage widens the gap
				{Slow: "BenchmarkTopKI8BatchLoop/batch=8", Fast: "BenchmarkTopKI8BatchSweep/batch=8", Min: 1.3, MinProcs: 2},
				{Slow: "BenchmarkTopKF32Saturated", Fast: "BenchmarkTopKI8Saturated", Min: 1.3, MinProcs: 4},
				// branch-and-bound pruning floors: a skewed world must
				// prune ≥2x over the dense sweep, and a uniform
				// (prune-hostile) world must not pay more than ~5% for
				// carrying the envelope checks
				{Slow: "BenchmarkTopKSkewedDense", Fast: "BenchmarkTopKSkewedPruned", Min: 2.0, MinProcs: 1},
				{Slow: "BenchmarkTopKUniformDense", Fast: "BenchmarkTopKUniformPruned", Min: 0.95, MinProcs: 1},
				// the SIMD kernels' own floors, conditioned on the AVX2
				// dispatch arm (on other arms the SIMD micro-benches
				// self-skip and the pairs are reported as skipped): the
				// assembly int8 dot must stay ≥3x the pure-Go reference
				// (measured ~16x) and the f32 dot ≥2x (measured ~3.5x),
				// and — the headline this work exists for — the int8
				// wide-world pipeline must beat the f32 one single-core
				// (≥1.0x; pre-SIMD it sat at 0.83x, measured ~2x after)
				{Slow: "BenchmarkKernelDotI8Generic", Fast: "BenchmarkKernelDotI8SIMD", Min: 3.0, MinProcs: 1, Kernels: "amd64/avx2"},
				{Slow: "BenchmarkKernelDotBias32Generic", Fast: "BenchmarkKernelDotBias32SIMD", Min: 2.0, MinProcs: 1, Kernels: "amd64/avx2"},
				{Slow: "BenchmarkTopKF32Wide", Fast: "BenchmarkTopKI8Wide", Min: 1.0, MinProcs: 1, Kernels: "amd64/avx2"},
				// the v4 flat format's whole point: memory-mapped startup
				// must beat the gob decode+Compose path >=20x on the CI
				// bench job's million-item world (measured ~77x; the gob
				// path scales with the catalog, the mmap path only with
				// file checksumming)
				{Slow: "BenchmarkLoadGob", Fast: "BenchmarkLoadMmap", Min: 20.0, MinProcs: 1},
			} {
				if _, okSlow := meas[s.Slow]; !okSlow {
					continue
				}
				if _, okFast := meas[s.Fast]; !okFast {
					continue
				}
				base.Speedups = append(base.Speedups, s)
			}
		}
		// the load pair's world is sized by TFREC_LOADBENCH_ITEMS, so its
		// raw times mean nothing across runs — it is speedup-gated only
		// and must never get an absolute ns/op entry
		for name := range meas {
			if strings.HasPrefix(name, "BenchmarkLoad") {
				delete(meas, name)
			}
		}
		base.NsPerOp = meas
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "tfrec-benchgate: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "tfrec-benchgate: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s with %d benches\n", *baselinePath, len(meas))
		return 0
	}

	results, failed := gate(base, meas, procs, *kernels)
	fmt.Fprintf(stdout, "bench gate: threshold %+.0f%%, canary %s, run procs %d, kernels %s (baseline %s)\n",
		base.Threshold*100, orNone(base.Canary), procs, *kernels, orNone(base.Kernels))
	for _, r := range results {
		switch {
		case r.skipped != "":
			fmt.Fprintf(stdout, "  skip    %-50s %s\n", r.name, r.skipped)
		case r.missing:
			fmt.Fprintf(stdout, "  MISSING %-50s bench(es) not in input\n", r.name)
		case r.speedup:
			verdict := "ok     "
			if r.regressed {
				verdict = "FAIL   "
			}
			fmt.Fprintf(stdout, "  %s %-50s achieved %.2fx\n", verdict, r.name, r.ratio)
		case r.regressed:
			fmt.Fprintf(stdout, "  FAIL    %-50s %12.0f -> %12.0f ns/op (%+.1f%%)\n", r.name, r.oldNs, r.newNs, (r.ratio-1)*100)
		default:
			fmt.Fprintf(stdout, "  ok      %-50s %12.0f -> %12.0f ns/op (%+.1f%%)\n", r.name, r.oldNs, r.newNs, (r.ratio-1)*100)
		}
	}
	if failed {
		fmt.Fprintln(stdout, "bench gate: REGRESSION detected")
		return 1
	}
	fmt.Fprintln(stdout, "bench gate: ok")
	return 0
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
