package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTopKIndexStreaming-8        	  10000	    100000 ns/op	       0 B/op	       0 allocs/op
BenchmarkTopKIndexStreaming-8        	  10000	    102000 ns/op	       0 B/op	       0 allocs/op
BenchmarkTopKIndexStreaming-8        	  10000	     98000 ns/op	       0 B/op	       0 allocs/op
BenchmarkShardedTopK/workers=4-8     	  20000	     50000 ns/op	       0 B/op	       0 allocs/op
BenchmarkShardedTopK/workers=4-8     	  20000	     52000 ns/op	       0 B/op	       0 allocs/op
BenchmarkShardedTopK/workers=4-8     	  20000	     48000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	5.459s
`

func TestParseBenchMediansStripProcsSuffix(t *testing.T) {
	samples, procs, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	med := medians(samples)
	if procs != 8 {
		t.Fatalf("procs = %d, want 8", procs)
	}
	if got := med["BenchmarkTopKIndexStreaming"]; got != 100000 {
		t.Fatalf("canary median = %v, want 100000", got)
	}
	if got := med["BenchmarkShardedTopK/workers=4"]; got != 50000 {
		t.Fatalf("sharded median = %v, want 50000", got)
	}
}

func baseFixture() baseline {
	return baseline{
		Threshold: 0.10,
		Canary:    "BenchmarkTopKIndexStreaming",
		NsPerOp: map[string]float64{
			"BenchmarkTopKIndexStreaming":    100000,
			"BenchmarkShardedTopK/workers=4": 50000,
		},
	}
}

func TestGatePassesUnchangedAndFasterRuns(t *testing.T) {
	for _, scale := range []float64{1.0, 0.5, 1.4} {
		// scale models a uniformly faster/slower machine: the canary moves
		// with every bench, so normalized ratios stay at 1 and the gate
		// passes across hardware — up to the raw canary bound (+50%),
		// beyond which a refreshed baseline is required by design
		meas := map[string]float64{
			"BenchmarkTopKIndexStreaming":    100000 * scale,
			"BenchmarkShardedTopK/workers=4": 50000 * scale,
		}
		results, failed := gate(baseFixture(), meas, 8, "")
		if failed {
			t.Fatalf("scale %v: gate failed: %+v", scale, results)
		}
	}
}

// The acceptance criterion: a synthetic slowdown of one gated bench —
// here 30% on the sharded sweep while the canary is unchanged — must
// fail the gate.
func TestGateFailsOnSyntheticSlowdown(t *testing.T) {
	meas := map[string]float64{
		"BenchmarkTopKIndexStreaming":    100000,
		"BenchmarkShardedTopK/workers=4": 65000,
	}
	results, failed := gate(baseFixture(), meas, 8, "")
	if !failed {
		t.Fatalf("30%% slowdown passed the gate: %+v", results)
	}
	var hit bool
	for _, r := range results {
		if r.name == "BenchmarkShardedTopK/workers=4" && r.regressed {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("slowdown not attributed to the right bench: %+v", results)
	}
}

func TestGateFailsOnMissingBench(t *testing.T) {
	meas := map[string]float64{"BenchmarkTopKIndexStreaming": 100000}
	_, failed := gate(baseFixture(), meas, 8, "")
	if !failed {
		t.Fatal("baseline bench absent from input must fail the gate")
	}
}

func TestGateToleratesJitterWithinThreshold(t *testing.T) {
	meas := map[string]float64{
		"BenchmarkTopKIndexStreaming":    101000,
		"BenchmarkShardedTopK/workers=4": 52500, // +5% raw, well under 10%
	}
	if _, failed := gate(baseFixture(), meas, 8, ""); failed {
		t.Fatal("5% jitter must pass a 10% gate")
	}
}

// End-to-end through run(): -update writes a baseline, a clean re-gate
// passes (exit 0), and the same input with a 1.3x synthetic slowdown on a
// non-canary bench exits 1.
func TestRunUpdateGateAndSlowdown(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "BENCH_baseline.json")

	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", basePath, "-update"}, strings.NewReader(sampleBench), &out, &errOut); code != 0 {
		t.Fatalf("update: exit %d, stderr %s", code, errOut.String())
	}
	raw, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.Canary != "BenchmarkTopKIndexStreaming" || len(base.NsPerOp) != 2 {
		t.Fatalf("unexpected baseline: %+v", base)
	}

	out.Reset()
	if code := run([]string{"-baseline", basePath}, strings.NewReader(sampleBench), &out, &errOut); code != 0 {
		t.Fatalf("clean gate: exit %d\n%s", code, out.String())
	}

	slow := strings.ReplaceAll(sampleBench, "50000 ns/op", "65000 ns/op")
	slow = strings.ReplaceAll(slow, "52000 ns/op", "67000 ns/op")
	slow = strings.ReplaceAll(slow, "48000 ns/op", "63000 ns/op")
	out.Reset()
	if code := run([]string{"-baseline", basePath}, strings.NewReader(slow), &out, &errOut); code != 1 {
		t.Fatalf("synthetic slowdown: exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("no FAIL line in gate output:\n%s", out.String())
	}

	// -emit-text produces benchstat-consumable lines
	out.Reset()
	if code := run([]string{"-baseline", basePath, "-emit-text"}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("emit-text: exit %d", code)
	}
	if !strings.Contains(out.String(), "BenchmarkShardedTopK/workers=4 1 50000 ns/op") {
		t.Fatalf("emit-text output unexpected:\n%s", out.String())
	}
}

// A regression in the canary's own code path rescales every normalized
// comparison to 1.0 — the raw canary bound must catch it.
func TestGateCatchesCanarySelfRegression(t *testing.T) {
	meas := map[string]float64{
		"BenchmarkTopKIndexStreaming":    180000, // +80% across the board
		"BenchmarkShardedTopK/workers=4": 90000,
	}
	results, failed := gate(baseFixture(), meas, 8, "")
	if !failed {
		t.Fatalf("across-the-board slowdown passed the gate: %+v", results)
	}
	var hit bool
	for _, r := range results {
		if strings.HasSuffix(r.name, "(raw)") && r.regressed {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("raw canary check did not fire: %+v", results)
	}
}

func speedupFixture() baseline {
	base := baseFixture()
	base.NsPerOp["BenchmarkShardedTopKSerial"] = 100000
	base.Speedups = []speedupGate{
		{Slow: "BenchmarkShardedTopKSerial", Fast: "BenchmarkShardedTopK/workers=4", Min: 2.0, MinProcs: 4},
	}
	return base
}

// Losing parallel scaling (workers=4 as slow as serial) must fail on a
// multi-core run even though per-bench normalization cannot see it when
// the baseline came from a small machine.
func TestGateSpeedupFloorCatchesScalingLoss(t *testing.T) {
	meas := map[string]float64{
		"BenchmarkTopKIndexStreaming":    100000,
		"BenchmarkShardedTopKSerial":     100000,
		"BenchmarkShardedTopK/workers=4": 95000, // ~1x: scaling destroyed
	}
	if _, failed := gate(speedupFixture(), meas, 8, ""); !failed {
		t.Fatal("1x 'parallel' sweep passed a 2x speedup floor on 8 procs")
	}
	// healthy scaling passes
	meas["BenchmarkShardedTopK/workers=4"] = 30000
	if results, failed := gate(speedupFixture(), meas, 8, ""); failed {
		t.Fatalf("3.3x speedup failed a 2x floor: %+v", results)
	}
	// on a small machine the floor is skipped, not failed
	results, failed := gate(speedupFixture(), meas, 1, "")
	if failed {
		t.Fatalf("speedup floor fired on a 1-proc run: %+v", results)
	}
	var skipped bool
	for _, r := range results {
		if r.speedup && r.skipped != "" {
			skipped = true
		}
	}
	if !skipped {
		t.Fatalf("speedup floor not reported as skipped on 1 proc: %+v", results)
	}
}

// The raw canary bound compares un-normalized times, which only means
// something on like hardware: against a baseline recorded with a
// different proc count it must be skipped, not failed.
func TestGateRawCanarySkippedAcrossMachineClasses(t *testing.T) {
	base := baseFixture()
	base.Procs = 1 // baseline recorded on a single-core box
	meas := map[string]float64{
		"BenchmarkTopKIndexStreaming":    400000, // 4x slower machine
		"BenchmarkShardedTopK/workers=4": 200000,
	}
	results, failed := gate(base, meas, 8, "")
	if failed {
		t.Fatalf("cross-machine raw canary fired: %+v", results)
	}
	var skipped bool
	for _, r := range results {
		if strings.HasSuffix(r.name, "(raw)") && r.skipped != "" {
			skipped = true
		}
	}
	if !skipped {
		t.Fatalf("raw canary not reported as skipped: %+v", results)
	}
	// same machine class: the bound arms and fires
	base.Procs = 8
	if _, failed := gate(base, meas, 8, ""); !failed {
		t.Fatal("4x raw canary slowdown on like hardware passed")
	}
}

// A baseline recorded under one kernel dispatch must never produce
// per-bench verdicts against a run from another: every ns comparison,
// the missing-bench failure (SIMD micro-benches legitimately self-skip
// on other arms) and the raw canary bound all become skips.
func TestGateSkipsAcrossKernelSets(t *testing.T) {
	base := baseFixture()
	base.Kernels = "amd64/avx2"
	base.NsPerOp["BenchmarkKernelDotI8SIMD"] = 1000 // absent from a generic run
	meas := map[string]float64{
		"BenchmarkTopKIndexStreaming":    500000, // 5x "regression" — noise across arms
		"BenchmarkShardedTopK/workers=4": 250000,
	}
	results, failed := gate(base, meas, 8, "arm64/generic")
	if failed {
		t.Fatalf("cross-kernel-set gate fired: %+v", results)
	}
	var skips int
	for _, r := range results {
		if r.skipped == "" {
			t.Fatalf("cross-kernel-set comparison not skipped: %+v", r)
		}
		skips++
	}
	if skips != 4 { // 3 ns entries + raw canary
		t.Fatalf("got %d skips, want 4: %+v", skips, results)
	}
	// matching kernel set with the SIMD bench present: fully armed again
	meas["BenchmarkTopKIndexStreaming"] = 100000
	meas["BenchmarkShardedTopK/workers=4"] = 50000
	meas["BenchmarkKernelDotI8SIMD"] = 1000
	if results, failed := gate(base, meas, 8, "amd64/avx2"); failed {
		t.Fatalf("matching kernel set failed a clean run: %+v", results)
	}
}

// Kernel-conditioned speedup floors gate only on their own dispatch arm:
// skipped elsewhere (where the SIMD benches produce no samples at all),
// enforced — and failing — on the arm they name.
func TestGateKernelConditionedSpeedupFloor(t *testing.T) {
	base := baseFixture()
	base.Speedups = []speedupGate{
		{Slow: "BenchmarkKernelDotI8Generic", Fast: "BenchmarkKernelDotI8SIMD", Min: 3.0, MinProcs: 1, Kernels: "amd64/avx2"},
	}
	meas := map[string]float64{
		"BenchmarkTopKIndexStreaming":    100000,
		"BenchmarkShardedTopK/workers=4": 50000,
	}
	// generic arm: no SIMD samples, and the floor must skip, not fail
	results, failed := gate(base, meas, 1, "amd64/generic")
	if failed {
		t.Fatalf("kernel-conditioned floor fired off its arm: %+v", results)
	}
	var skipped bool
	for _, r := range results {
		if r.speedup && r.skipped != "" {
			skipped = true
		}
	}
	if !skipped {
		t.Fatalf("kernel-conditioned floor not reported as skipped: %+v", results)
	}
	// on the named arm with a degraded kernel (2x < the 3x floor): fail
	meas["BenchmarkKernelDotI8Generic"] = 6000
	meas["BenchmarkKernelDotI8SIMD"] = 3000
	if _, failed := gate(base, meas, 1, "amd64/avx2"); !failed {
		t.Fatal("2x SIMD kernel passed a 3x floor on its own arm")
	}
	// healthy kernel passes
	meas["BenchmarkKernelDotI8SIMD"] = 1000
	if results, failed := gate(base, meas, 1, "amd64/avx2"); failed {
		t.Fatalf("6x SIMD kernel failed a 3x floor: %+v", results)
	}
}
