package main

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/vecmath"
)

// cpuReport prints the active vecmath kernel dispatch — the same table
// /v1/stats serves as inference.kernels — so an operator can check what
// a host will run without starting a server or loading a model.
func cpuReport(w io.Writer) {
	ks := vecmath.Kernels()
	fmt.Fprintf(w, "kernel dispatch: %s\n", vecmath.KernelsID())
	fmt.Fprintf(w, "  arch:     %s\n", ks.Arch)
	features := "none detected"
	if len(ks.Features) > 0 {
		features = ""
		for i, f := range ks.Features {
			if i > 0 {
				features += " "
			}
			features += f
		}
	}
	fmt.Fprintf(w, "  features: %s\n", features)
	if ks.Disabled != "" {
		fmt.Fprintf(w, "  simd off: %s\n", ks.Disabled)
	}
	ops := make([]string, 0, len(ks.Ops))
	for op := range ks.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	fmt.Fprintln(w, "  ops:")
	for _, op := range ops {
		fmt.Fprintf(w, "    %-18s %s\n", op, ks.Ops[op])
	}
}
