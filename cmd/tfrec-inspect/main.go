// Command tfrec-inspect examines a trained model: the on-disk format
// (version, and for v4 flat files the per-section sizes, alignment and
// checksums plus whether the serving snapshot is memory-mapped or
// heap-backed and how many mapped pages are resident), per-level factor
// statistics (how much signal each taxonomy level carries), the hierarchy
// clustering ratio of Figure 7(e), an optional 2-D embedding export for
// plotting, and (-bounds) a tightness audit of the branch-and-bound
// subtree envelopes.
//
// Usage:
//
//	tfrec-inspect -model model.tfrec
//	tfrec-inspect -model model.tfrec -embed coords.tsv -method tsne
//	tfrec-inspect -model model.tfrec -bounds 20
//	tfrec-inspect -cpu
//
// -cpu prints the host's CPU features and the scoring-kernel dispatch
// table (which implementation — avx2, neon or generic — serves each
// kernel op), exactly as /v1/stats reports it under inference.kernels,
// then exits without loading a model.
//
// The embedding TSV has columns: node, depth, parent, x, y — one row per
// taxonomy node of the upper three levels, ready for any plotting tool.
//
// -bounds N probes the Compose()-time subtree score envelopes with N
// seeded random queries and prints, per taxonomy depth, a histogram of
// slack = SubtreeBound(node, q) − max exact score in the subtree. Tight
// envelopes (slack concentrated near zero) are what let the pruned
// engine (-pruned on tfrec-serve/recommend/eval) skip subtrees; a model
// whose slack is large at every depth will see the descent fall back to
// the dense sweep. Negative slack would mean a broken envelope and is
// reported as a hard error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/model"
	"repro/internal/tsne"
	"repro/internal/vecmath"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tfrec-inspect: ")

	modelPath := flag.String("model", "model.tfrec", "model file from tfrec-train")
	embedPath := flag.String("embed", "", "write a 2-D embedding TSV of the upper-level factors")
	method := flag.String("method", "auto", "embedding method: tsne|pca|auto")
	seed := flag.Uint64("seed", 7, "random seed for PCA/t-SNE and -bounds probes")
	bounds := flag.Int("bounds", 0, "audit branch-and-bound envelope tightness over this many random queries (0 = skip)")
	cpu := flag.Bool("cpu", false, "print CPU features and the scoring-kernel dispatch table, then exit")
	flag.Parse()

	if *cpu {
		cpuReport(os.Stdout)
		return
	}

	info, err := model.InspectFile(*modelPath)
	if err != nil {
		log.Fatalf("inspect %s: %v", *modelPath, err)
	}
	formatReport(os.Stdout, info)
	sn, err := model.LoadFile(*modelPath)
	if err != nil {
		log.Fatalf("load model: %v", err)
	}
	residencyReport(os.Stdout, sn)
	sn.Close()

	mf, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	m, err := model.Load(mf)
	mf.Close()
	if err != nil {
		log.Fatalf("load model: %v", err)
	}
	tree := m.Tree
	c := m.Compose()
	fmt.Println()

	fmt.Printf("model: K=%d taxonomyUpdateLevels=%d markovOrder=%d bias=%v precision=%s\n",
		m.P.K, m.P.TaxonomyLevels, m.P.MarkovOrder, m.P.UseBias, m.Precision.Resolve())
	fmt.Printf("taxonomy: %v nodes per level, %d items, depth %d\n",
		tree.LevelSizes(), tree.NumItems(), tree.Depth())

	// per-level offset statistics: the paper observes that offset
	// magnitude shrinks as we move down the tree (§5.1)
	fmt.Println("\nper-level offset norms (mean ± max):")
	for d := 0; d <= tree.Depth(); d++ {
		var sum, max float64
		level := tree.Level(d)
		for _, node := range level {
			n := vecmath.Norm2(m.Node.Row(int(node)))
			sum += n
			if n > max {
				max = n
			}
		}
		fmt.Printf("  depth %d (%7d nodes): mean %.4f  max %.4f\n", d, len(level), sum/float64(len(level)), max)
	}

	if *bounds > 0 {
		depths := boundTightness(c, *bounds, *seed)
		printBoundTightness(os.Stdout, *bounds, depths)
		for i := range depths {
			if depths[i].Samples > 0 && depths[i].Min < 0 {
				log.Fatalf("depth %d: negative slack %g — a subtree envelope failed to dominate its own scores", depths[i].Depth, depths[i].Min)
			}
		}
	}

	maxDepth := 3
	if maxDepth > tree.Depth()-1 {
		maxDepth = tree.Depth() - 1
	}
	stats, err := tsne.HierarchyClustering(tree, c.EffNode, 1, maxDepth, vecmath.NewRNG(*seed))
	if err == nil {
		fmt.Printf("\nhierarchy clustering (depths 1..%d): child-parent %.4f / random %.4f = ratio %.3f\n",
			maxDepth, stats.ChildParentDist, stats.RandomPairDist, stats.Ratio())
	}

	if *embedPath == "" {
		return
	}
	var nodes []int32
	for d := 1; d <= maxDepth; d++ {
		nodes = append(nodes, tree.Level(d)...)
	}
	gathered := tsne.GatherRows(c.EffNode, nodes)
	var coords *vecmath.Matrix
	switch {
	case *method == "pca" || (*method == "auto" && len(nodes) > 2500):
		coords = tsne.PCA(gathered, vecmath.NewRNG(*seed))
	case *method == "tsne" || *method == "auto":
		cfg := tsne.DefaultConfig()
		cfg.Seed = *seed
		if p := float64(len(nodes)) / 4; p < cfg.Perplexity {
			cfg.Perplexity = p
		}
		coords, err = tsne.TSNE(gathered, cfg)
		if err != nil {
			log.Fatalf("tsne: %v", err)
		}
	default:
		log.Fatalf("unknown method %q", *method)
	}

	f, err := os.Create(*embedPath)
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "node\tdepth\tparent\tx\ty")
	for i, node := range nodes {
		fmt.Fprintf(w, "%d\t%d\t%d\t%.6f\t%.6f\n",
			node, tree.DepthOf(int(node)), tree.Parent(int(node)),
			coords.Row(i)[0], coords.Row(i)[1])
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d embedding rows to %s\n", len(nodes), *embedPath)
}
