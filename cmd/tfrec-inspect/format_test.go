package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

func formatWorld(t *testing.T) *model.TF {
	t.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{3, 9},
		Items:          60,
		Skew:           0.3,
	}, vecmath.NewRNG(21))
	m, err := model.New(tree, 4, model.Params{
		K: 5, TaxonomyLevels: 3, Alpha: 1, InitStd: 0.3, UseBias: true,
	}, vecmath.NewRNG(22))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// A v4 flat file's report must show the format version, every section
// with its 64-byte alignment, and the residency of the mapped snapshot.
func TestFormatReportV4(t *testing.T) {
	m := formatWorld(t)
	path := filepath.Join(t.TempDir(), "m.tfrec")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := model.InspectFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	formatReport(&buf, info)
	out := buf.String()
	for _, want := range []string{
		"format v4 (TFRECMDL flat, memory-mappable)",
		"sections (" /* count varies with the section set */, ")",
		"meta", "index.itemFactors", "index.nodeI8", "tree.itemNode",
		"64B-aligned",
		"payload",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "MISALIGNED") {
		t.Fatalf("Save produced a misaligned section:\n%s", out)
	}

	sn, err := model.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	buf.Reset()
	residencyReport(&buf, sn)
	out = buf.String()
	if sn.Mapped {
		if !strings.Contains(out, "memory-mapped") {
			t.Fatalf("mapped snapshot not reported as mapped:\n%s", out)
		}
	} else if !strings.Contains(out, "heap-backed") {
		t.Fatalf("unmapped snapshot not reported as heap-backed:\n%s", out)
	}
}

// Legacy gob files must still be reported honestly: their format version
// (no section table exists to print) and a heap-backed snapshot.
func TestFormatReportGobFallback(t *testing.T) {
	m := formatWorld(t)
	path := filepath.Join(t.TempDir(), "m.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SaveGob(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := model.InspectFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	formatReport(&buf, info)
	if !strings.Contains(buf.String(), "(gob)") {
		t.Fatalf("gob file not reported as gob:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "sections") {
		t.Fatalf("gob file reported with a section table:\n%s", buf.String())
	}

	sn, err := model.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	buf.Reset()
	residencyReport(&buf, sn)
	if !strings.Contains(buf.String(), "heap-backed") {
		t.Fatalf("gob snapshot must be heap-backed:\n%s", buf.String())
	}
	if sn.Mapped {
		t.Fatal("gob snapshot claims to be memory-mapped")
	}
}
