package main

import (
	"strings"
	"testing"

	"repro/internal/vecmath"
)

// TestCPUReport pins the -cpu output to the live dispatch: the report
// must carry the same dispatch id and every (op, impl) row that
// vecmath.Kernels() — and therefore /v1/stats — exposes.
func TestCPUReport(t *testing.T) {
	var sb strings.Builder
	cpuReport(&sb)
	out := sb.String()

	if !strings.Contains(out, "kernel dispatch: "+vecmath.KernelsID()) {
		t.Fatalf("report missing dispatch id %q:\n%s", vecmath.KernelsID(), out)
	}
	ks := vecmath.Kernels()
	if !strings.Contains(out, "arch:     "+ks.Arch) {
		t.Fatalf("report missing arch %q:\n%s", ks.Arch, out)
	}
	for op, impl := range ks.Ops {
		found := false
		for _, line := range strings.Split(out, "\n") {
			fields := strings.Fields(line)
			if len(fields) == 2 && fields[0] == op && fields[1] == impl {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("report missing op row %s -> %s:\n%s", op, impl, out)
		}
	}
	if ks.Disabled != "" && !strings.Contains(out, "simd off: "+ks.Disabled) {
		t.Fatalf("report missing disabled reason %q:\n%s", ks.Disabled, out)
	}
}
