package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

func boundsWorld(t *testing.T) *model.Composed {
	t.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{4, 16},
		Items:          200,
		Skew:           0.3,
	}, vecmath.NewRNG(11))
	m, err := model.New(tree, 3, model.Params{
		K: 6, TaxonomyLevels: 3, Alpha: 1, InitStd: 0.3, UseBias: true,
	}, vecmath.NewRNG(12))
	if err != nil {
		t.Fatal(err)
	}
	return m.Compose()
}

// The audit must uphold the envelope invariant (slack >= 0 everywhere),
// account for every node × query sample, and be seed-deterministic.
func TestBoundTightness(t *testing.T) {
	c := boundsWorld(t)
	const queries = 5
	depths := boundTightness(c, queries, 99)
	if len(depths) != c.Tree.Depth()+1 {
		t.Fatalf("%d depth rows, want %d", len(depths), c.Tree.Depth()+1)
	}
	for i := range depths {
		dt := &depths[i]
		if dt.Samples != dt.Nodes*queries {
			t.Fatalf("depth %d: %d samples from %d nodes × %d queries", dt.Depth, dt.Samples, dt.Nodes, queries)
		}
		total := 0
		for _, n := range dt.Hist {
			total += n
		}
		if total != dt.Samples {
			t.Fatalf("depth %d: histogram holds %d of %d samples", dt.Depth, total, dt.Samples)
		}
		if dt.Samples > 0 && dt.Min < 0 {
			t.Fatalf("depth %d: negative slack %g — envelope does not dominate", dt.Depth, dt.Min)
		}
		if dt.Samples > 0 && (dt.Min > dt.Mean() || dt.Mean() > dt.Max) {
			t.Fatalf("depth %d: min/mean/max out of order: %g %g %g", dt.Depth, dt.Min, dt.Mean(), dt.Max)
		}
	}
	// the root is one node spanning the whole catalog
	if depths[0].Nodes != 1 || depths[0].Samples != queries {
		t.Fatalf("root row wrong: %+v", depths[0])
	}
	// a leaf node's envelope IS its single item's factor, so leaf slack
	// collapses to float roundoff
	leaf := depths[len(depths)-1]
	if leaf.Max > 1e-6 {
		t.Fatalf("leaf slack %g should be roundoff-sized", leaf.Max)
	}
	again := boundTightness(c, queries, 99)
	for i := range depths {
		if depths[i].Min != again[i].Min || depths[i].Max != again[i].Max || depths[i].sum != again[i].sum {
			t.Fatalf("depth %d: same seed diverged", i)
		}
	}
}

// Interior slack must dominate leaf slack on average: a depth-d envelope
// maxes each coordinate over its whole subtree, so it is never tighter
// than its children's.
func TestBoundTightnessGrowsUpward(t *testing.T) {
	c := boundsWorld(t)
	depths := boundTightness(c, 3, 7)
	leafMean := depths[len(depths)-1].Mean()
	rootMean := depths[0].Mean()
	if rootMean < leafMean {
		t.Fatalf("root mean slack %g below leaf mean %g", rootMean, leafMean)
	}
}

func TestPrintBoundTightness(t *testing.T) {
	c := boundsWorld(t)
	var buf bytes.Buffer
	printBoundTightness(&buf, 2, boundTightness(c, 2, 5))
	out := buf.String()
	for _, want := range []string{"subtree bound tightness over 2 random queries", "depth 0", "slack histogram:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
