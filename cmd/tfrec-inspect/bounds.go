package main

import (
	"fmt"
	"io"
	"math"

	"repro/internal/model"
	"repro/internal/vecmath"
)

// slackBuckets are the histogram edges for bound slack, log-spaced: a
// sample lands in the first bucket whose upper edge exceeds its slack
// (one extra bucket catches everything >= the last edge). Slack is
// measured in score units, so the buckets read directly against typical
// top-k score gaps.
var slackBuckets = []float64{1e-9, 1e-6, 1e-3, 1e-1, 1, 10}

// depthTightness aggregates, for one taxonomy depth, how tight the
// Compose()-time subtree score envelopes are: for each node and each
// probe query, slack = SubtreeBound(node, q) + ItemPruneBound(q) − the
// max exact score inside the node's subtree — the exact quantity the
// pruned engine compares against its running threshold (the epsilon
// absorbs dot-product accumulation-order roundoff). Near-zero slack
// means the envelope touches the best item; large slack means the
// branch-and-bound descent must open the node even when its best item is
// far below the current threshold. A negative slack would mean a broken
// envelope (the padded bound failed to dominate a score it promises to
// dominate) — the invariant the pruned engine's exactness rests on.
type depthTightness struct {
	Depth   int
	Nodes   int // nodes with a non-empty subtree at this depth
	Samples int // node × query measurements
	Min     float64
	Max     float64
	sum     float64
	Hist    []int // len(slackBuckets)+1 counts
}

// Mean is the average slack over all samples at this depth.
func (dt *depthTightness) Mean() float64 {
	if dt.Samples == 0 {
		return 0
	}
	return dt.sum / float64(dt.Samples)
}

func (dt *depthTightness) add(slack float64) {
	if dt.Samples == 0 || slack < dt.Min {
		dt.Min = slack
	}
	if dt.Samples == 0 || slack > dt.Max {
		dt.Max = slack
	}
	dt.sum += slack
	dt.Samples++
	b := 0
	for b < len(slackBuckets) && slack >= slackBuckets[b] {
		b++
	}
	dt.Hist[b]++
}

// boundTightness probes the subtree envelopes with seeded standard-normal
// queries and returns one tightness aggregate per taxonomy depth (root =
// depth 0, leaf nodes = the deepest). Each probe scores the whole catalog
// exactly once, then walks every node's DFS span for the subtree max, so
// cost is O(queries × (numItems·K + numItems·depth)). Nodes with empty
// subtrees (childless interior nodes) carry no items and are skipped,
// mirroring the pruned descent, which never evaluates their bounds.
func boundTightness(c *model.Composed, queries int, seed uint64) []depthTightness {
	ix := c.Index
	tree := c.Tree
	rng := vecmath.NewRNG(seed)
	q := make([]float64, c.K())
	scores := make([]float64, c.NumItems())
	dfs := ix.DFSItems()
	out := make([]depthTightness, tree.Depth()+1)
	for d := range out {
		out[d].Depth = d
		out[d].Hist = make([]int, len(slackBuckets)+1)
		for _, node := range tree.Level(d) {
			if lo, hi := ix.DFSSpan(int(node)); lo != hi {
				out[d].Nodes++
			}
		}
	}
	for qi := 0; qi < queries; qi++ {
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		ix.ItemScoresInto(q, scores)
		eps := ix.ItemPruneBound(q)
		for d := range out {
			for _, node := range tree.Level(d) {
				lo, hi := ix.DFSSpan(int(node))
				if lo == hi {
					continue
				}
				best := math.Inf(-1)
				for _, item := range dfs[lo:hi] {
					if s := scores[item]; s > best {
						best = s
					}
				}
				out[d].add(ix.SubtreeBound(int(node), q) + eps - best)
			}
		}
	}
	return out
}

// printBoundTightness renders the per-depth aggregates as a table plus a
// compact histogram line per depth.
func printBoundTightness(w io.Writer, queries int, depths []depthTightness) {
	fmt.Fprintf(w, "\nsubtree bound tightness over %d random queries (slack = padded bound − subtree max score):\n", queries)
	for i := range depths {
		dt := &depths[i]
		if dt.Samples == 0 {
			continue
		}
		fmt.Fprintf(w, "  depth %d (%7d nodes): min %.3g  mean %.3g  max %.3g\n",
			dt.Depth, dt.Nodes, dt.Min, dt.Mean(), dt.Max)
		fmt.Fprintf(w, "    slack histogram:")
		prev := 0.0
		for b, count := range dt.Hist {
			if count == 0 {
				if b < len(slackBuckets) {
					prev = slackBuckets[b]
				}
				continue
			}
			if b < len(slackBuckets) {
				fmt.Fprintf(w, "  [%.3g..%.3g) %d", prev, slackBuckets[b], count)
				prev = slackBuckets[b]
			} else {
				fmt.Fprintf(w, "  [>=%.3g] %d", prev, count)
			}
		}
		fmt.Fprintln(w)
	}
}
