package main

import (
	"fmt"
	"io"

	"repro/internal/model"
)

// formatReport renders a model file's on-disk layout: format version and,
// for v4 flat files, the section table with per-section sizes and
// alignment — the first thing to look at when a model file misbehaves.
func formatReport(w io.Writer, info *model.FileInfo) {
	switch {
	case info.Legacy:
		fmt.Fprintf(w, "file: %s (%d bytes), legacy headerless gob format\n", info.Path, info.Size)
	case info.Version != 4:
		fmt.Fprintf(w, "file: %s (%d bytes), format v%d (gob)\n", info.Path, info.Size, info.Version)
	default:
		fmt.Fprintf(w, "file: %s (%d bytes), format v%d (TFRECMDL flat, memory-mappable)\n",
			info.Path, info.Size, info.Version)
		fmt.Fprintf(w, "sections (%d):\n", len(info.Sections))
		var total uint64
		for _, s := range info.Sections {
			align := "64B-aligned"
			if !s.Aligned {
				align = "MISALIGNED"
			}
			fmt.Fprintf(w, "  %-20s off %10d  len %10d  crc %08x  %s\n",
				s.Name, s.Offset, s.Len, s.CRC, align)
			total += s.Len
		}
		fmt.Fprintf(w, "  %-20s payload %d bytes, %.1f%% of file (rest is header + alignment padding)\n",
			"total", total, 100*float64(total)/float64(info.Size))
	}
}

// residencyReport renders how a loaded snapshot is backed: heap or
// memory mapping, and for a mapping how many of its pages are currently
// resident — freshly after LoadFile that is near zero, the visible proof
// that checksum validation did not fault the model in.
func residencyReport(w io.Writer, sn *model.Snapshot) {
	if !sn.Mapped {
		fmt.Fprintf(w, "residency: heap-backed snapshot (format v%d; slabs decoded into process memory)\n", sn.Format)
		return
	}
	resident, total, err := sn.Residency()
	if err != nil {
		fmt.Fprintf(w, "residency: memory-mapped (page accounting unavailable: %v)\n", err)
		return
	}
	fmt.Fprintf(w, "residency: memory-mapped, %d/%d pages resident (%.1f%%)\n",
		resident, total, 100*float64(resident)/float64(total))
}
