// Command tfrec-train fits a TF (or MF) model on a purchase log produced
// by tfrec-gen and persists it for tfrec-recommend.
//
// Usage:
//
//	tfrec-train -data data/ -out model.gob -k 20 -levels 4 -markov 1 \
//	            -epochs 30 -workers 8 -cache 0.1
//
// -levels is the paper's taxonomyUpdateLevels (1 = plain MF); -markov is
// maxPrevtransactions (0 = no short-term term; 1 = FPMC when -levels 1).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/train"
	"repro/internal/vecmath"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tfrec-train: ")

	dataDir := flag.String("data", "data", "directory with taxonomy.txt and purchases.tsv")
	out := flag.String("out", "model.tfrec", "output model file (written in the v4 memory-mappable flat layout)")
	k := flag.Int("k", 20, "factor dimensionality K")
	levels := flag.Int("levels", 4, "taxonomyUpdateLevels U (1 = plain MF)")
	markov := flag.Int("markov", 0, "maxPrevtransactions B (Markov order)")
	epochs := flag.Int("epochs", 30, "training epochs")
	learnRate := flag.Float64("lr", 0.05, "SGD learning rate epsilon")
	lambda := flag.Float64("lambda", 0.01, "regularization lambda")
	sibling := flag.Float64("sibling", 0.5, "sibling-training mix probability (0 disables)")
	workers := flag.Int("workers", 1, "training goroutines")
	cache := flag.Float64("cache", 0, "hot-row cache threshold (0 disables; paper uses 0.1)")
	seed := flag.Uint64("seed", 1, "random seed")
	cv := flag.String("cv", "", "comma-separated lambda candidates; cross-validate on a mu=0.5 split (§2.2) and train the winner")
	flag.Parse()

	tree, data := loadWorld(*dataDir)

	p := model.Params{K: *k, TaxonomyLevels: *levels, MarkovOrder: *markov, Alpha: 1.0, InitStd: 0.01}
	cfg := train.Config{
		Epochs:         *epochs,
		LearnRate:      *learnRate,
		Lambda:         *lambda,
		SiblingMix:     *sibling,
		Workers:        *workers,
		CacheThreshold: *cache,
		Seed:           *seed,
	}
	if *levels <= 1 {
		cfg.SiblingMix = 0 // plain MF has no taxonomy to exploit
	}

	if *cv != "" {
		best, err := crossValidate(tree, data, p, cfg, *cv, *seed)
		if err != nil {
			log.Fatalf("cross-validation: %v", err)
		}
		fmt.Printf("cross-validation picked lambda=%v\n", best)
		cfg.Lambda = best
	}

	m, err := model.New(tree, data.NumUsers(), p, vecmath.NewRNG(*seed))
	if err != nil {
		log.Fatalf("model: %v", err)
	}
	stats, err := train.Train(m, data, cfg)
	if err != nil {
		log.Fatalf("train: %v", err)
	}

	// Write to a temp file and rename into place: tfrec-serve mmaps the
	// model it serves, and truncating a live mapping in place (os.Create
	// on the served path) would SIGBUS the server mid-request. The rename
	// gives the retrain-then-SIGHUP loop a fresh inode instead.
	f, err := os.CreateTemp(filepath.Dir(*out), "."+filepath.Base(*out)+".tmp-*")
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		log.Fatalf("save: %v", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		log.Fatal(err)
	}
	if err := os.Rename(f.Name(), *out); err != nil {
		os.Remove(f.Name())
		log.Fatal(err)
	}
	last := len(stats.AvgLogLik) - 1
	fmt.Printf("trained %s on %d events: %d epochs, mean epoch time %v, ln-sigma %.4f -> %.4f\n",
		systemName(*levels, *markov), data.NumPurchases(), *epochs,
		stats.MeanEpochTime().Round(1000), stats.AvgLogLik[0], stats.AvgLogLik[last])
	fmt.Printf("model written to %s\n", *out)
}

// crossValidate performs the §2.2 exhaustive lambda search: train one
// model per candidate on the train side of a mu=0.5 split and score it on
// the validation carve-out by AUC.
func crossValidate(tree *taxonomy.Tree, data *dataset.Dataset, p model.Params, cfg train.Config, spec string, seed uint64) (float64, error) {
	var lambdas []float64
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return 0, fmt.Errorf("bad lambda %q", part)
		}
		lambdas = append(lambdas, v)
	}
	splitCfg := dataset.DefaultSplitConfig()
	splitCfg.Seed = seed
	split := data.Split(splitCfg)
	build := func() (*model.TF, error) {
		return model.New(tree, data.NumUsers(), p, vecmath.NewRNG(seed))
	}
	score := func(m *model.TF) float64 {
		res := eval.Evaluate(m.Compose(), split.Train, split.Validation, eval.DefaultConfig())
		return res.AUC
	}
	cvCfg := cfg
	if cvCfg.Epochs > 10 {
		cvCfg.Epochs = 10 // cheaper inner loops, as is standard
	}
	best, scores, err := train.SearchLambda(lambdas, build, split.Train, cvCfg, score)
	if err != nil {
		return 0, err
	}
	for i, lam := range lambdas {
		fmt.Printf("  lambda=%-8v validation AUC %.4f\n", lam, scores[i])
	}
	return best, nil
}

func systemName(levels, markov int) string {
	if levels <= 1 {
		return fmt.Sprintf("MF(%d)", markov)
	}
	return fmt.Sprintf("TF(%d,%d)", levels, markov)
}

func loadWorld(dir string) (*taxonomy.Tree, *dataset.Dataset) {
	tf, err := os.Open(filepath.Join(dir, "taxonomy.txt"))
	if err != nil {
		log.Fatal(err)
	}
	defer tf.Close()
	tree, err := taxonomy.ReadText(tf)
	if err != nil {
		log.Fatalf("taxonomy: %v", err)
	}
	pf, err := os.Open(filepath.Join(dir, "purchases.tsv"))
	if err != nil {
		log.Fatal(err)
	}
	defer pf.Close()
	data, err := dataset.ReadTSV(pf)
	if err != nil {
		log.Fatalf("purchases: %v", err)
	}
	if data.NumItems != tree.NumItems() {
		log.Fatalf("item count mismatch: log has %d, taxonomy %d", data.NumItems, tree.NumItems())
	}
	return tree, data
}
