// Command tfrec-exp regenerates the figures of the paper's evaluation
// section (§7) at a chosen scale.
//
// Usage:
//
//	tfrec-exp -fig all -scale small
//	tfrec-exp -fig 6ad -scale medium
//	tfrec-exp -list
//
// Figure ids: 5, 6ad, 6e, 7a, 7b, 7c, 7d, 7e, 7f, 8ab, 8c, 8d. Results
// print as aligned text tables; EXPERIMENTS.md records a reference run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tfrec-exp: ")

	fig := flag.String("fig", "all", "figure id or 'all'")
	scale := flag.String("scale", "small", "scale preset: tiny|small|medium|paper")
	list := flag.Bool("list", false, "list figure ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.FigureIDs() {
			fmt.Println(id)
		}
		return
	}

	sc, err := experiments.ByName(*scale)
	if err != nil {
		log.Fatal(err)
	}
	if sc.Name == "paper" {
		fmt.Fprintln(os.Stderr, "warning: paper scale needs several GB of RAM and hours of CPU")
	}

	if *fig == "all" {
		if err := experiments.RunAll(os.Stdout, sc); err != nil {
			log.Fatal(err)
		}
		return
	}
	runner, ok := experiments.Registry()[*fig]
	if !ok {
		log.Fatalf("unknown figure %q; known: %v", *fig, experiments.FigureIDs())
	}
	if err := runner(os.Stdout, sc); err != nil {
		log.Fatal(err)
	}
}
