// Command tfrec-convert rewrites a model file into the current TFRECMDL
// v4 flat layout: the memory-mappable format that tfrec-serve loads in
// O(1) time regardless of catalog size. Input may be any loadable model
// file — the legacy headerless gob, the headered v1-v3 gob generations,
// or an existing v4 file (useful to re-fold biases after a manual edit).
//
// Usage:
//
//	tfrec-convert -in model.gob -out model.tfrec
//
// Conversion is verified by default: the written file is loaded back and
// every raw factor matrix must match the source bitwise, then the file is
// memory-mapped the way tfrec-serve would map it (checksums validated,
// sections wrapped zero-copy). -verify=false skips both checks.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/model"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tfrec-convert: ")

	in := flag.String("in", "", "source model file (legacy gob, v1-v3 gob, or v4 flat)")
	out := flag.String("out", "model.tfrec", "destination v4 flat file")
	verify := flag.Bool("verify", true, "load the written file back and check it matches the source bitwise, then mmap it")
	flag.Parse()
	if *in == "" {
		log.Fatal("-in is required")
	}
	if err := convert(*in, *out, *verify, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// convert loads in, writes it as a v4 flat file at out, and (with verify)
// proves the written file both round-trips bitwise and loads on the
// serving path.
func convert(in, out string, verify bool, w io.Writer) error {
	inf, err := os.Open(in)
	if err != nil {
		return err
	}
	inStat, err := inf.Stat()
	if err != nil {
		inf.Close()
		return err
	}
	start := time.Now()
	m, err := model.Load(inf)
	inf.Close()
	if err != nil {
		return fmt.Errorf("load %s: %w", in, err)
	}
	loadDur := time.Since(start)

	// Temp-file-and-rename, not os.Create: out may be a model that
	// tfrec-serve currently mmaps (or equal to in), and truncating either
	// in place would SIGBUS the server / destroy the source mid-read.
	outf, err := os.CreateTemp(filepath.Dir(out), "."+filepath.Base(out)+".tmp-*")
	if err != nil {
		return err
	}
	start = time.Now()
	if err := m.Save(outf); err != nil {
		outf.Close()
		os.Remove(outf.Name())
		return fmt.Errorf("save %s: %w", out, err)
	}
	if err := outf.Close(); err != nil {
		os.Remove(outf.Name())
		return err
	}
	if err := os.Rename(outf.Name(), out); err != nil {
		os.Remove(outf.Name())
		return err
	}
	saveDur := time.Since(start)
	outStat, err := os.Stat(out)
	if err != nil {
		return err
	}

	info, err := model.InspectFile(in)
	if err != nil {
		return err
	}
	srcFormat := fmt.Sprintf("v%d gob", info.Version)
	if info.Legacy {
		srcFormat = "legacy headerless gob"
	} else if info.Version == 4 {
		srcFormat = "v4 flat"
	}
	fmt.Fprintf(w, "%s (%s, %d bytes, loaded in %s) -> %s (v4 flat, %d bytes, written in %s)\n",
		in, srcFormat, inStat.Size(), loadDur, out, outStat.Size(), saveDur)

	if !verify {
		return nil
	}
	vf, err := os.Open(out)
	if err != nil {
		return err
	}
	back, err := model.Load(vf)
	vf.Close()
	if err != nil {
		return fmt.Errorf("verify: reload %s: %w", out, err)
	}
	if back.User.MaxAbsDiff(m.User) != 0 || back.Node.MaxAbsDiff(m.Node) != 0 ||
		back.Next.MaxAbsDiff(m.Next) != 0 || back.Bias.MaxAbsDiff(m.Bias) != 0 {
		return fmt.Errorf("verify: %s does not match %s bitwise", out, in)
	}
	sn, err := model.LoadFile(out)
	if err != nil {
		return fmt.Errorf("verify: mmap %s: %w", out, err)
	}
	mapped := sn.Mapped
	sn.Close()
	fmt.Fprintf(w, "verified: bitwise round trip ok, serving load ok (mapped=%v)\n", mapped)
	return nil
}
