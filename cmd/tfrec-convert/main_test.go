package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

func convertWorld(t *testing.T) *model.TF {
	t.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{3, 8},
		Items:          70,
		Skew:           0.3,
	}, vecmath.NewRNG(31))
	m, err := model.New(tree, 5, model.Params{
		K: 5, TaxonomyLevels: 3, MarkovOrder: 1, Alpha: 1, InitStd: 0.2, UseBias: true,
	}, vecmath.NewRNG(32))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// A legacy gob converts into a v4 file that the serving loader accepts,
// and the verify pass proves the round trip bitwise.
func TestConvertGobToV4(t *testing.T) {
	m := convertWorld(t)
	dir := t.TempDir()
	in := filepath.Join(dir, "m.gob")
	out := filepath.Join(dir, "m.tfrec")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SaveGob(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := convert(in, out, true, &buf); err != nil {
		t.Fatal(err)
	}
	outStr := buf.String()
	for _, want := range []string{"gob", "v4 flat", "verified: bitwise round trip ok"} {
		if !strings.Contains(outStr, want) {
			t.Fatalf("missing %q in:\n%s", want, outStr)
		}
	}

	info, err := model.InspectFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 4 || info.Legacy {
		t.Fatalf("converted file is not v4: %+v", info)
	}
	sn, err := model.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	if sn.Format != 4 {
		t.Fatalf("serving load sees format %d, want 4", sn.Format)
	}
}

// The verify pass must fail loudly when the written file is damaged
// after conversion (simulating a bad disk or a partial copy).
func TestConvertErrors(t *testing.T) {
	if err := convert(filepath.Join(t.TempDir(), "missing.gob"), "", true, new(bytes.Buffer)); err == nil {
		t.Fatal("converting a missing file succeeded")
	}

	m := convertWorld(t)
	dir := t.TempDir()
	in := filepath.Join(dir, "m.tfrec")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// a corrupt v4 input must be rejected at load, not converted
	raw, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	bad := filepath.Join(dir, "bad.tfrec")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := convert(bad, filepath.Join(dir, "out.tfrec"), true, new(bytes.Buffer)); err == nil {
		t.Fatal("converting a corrupt file succeeded")
	}
}
