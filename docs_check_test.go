package tfrec

// The documentation suite: README.md and DESIGN.md are load-bearing —
// they are the map other people navigate the serving stack by — so CI
// treats them like code (the `docs` job). Two things are enforced:
//
//  1. every Go code fence must parse as Go (a whole file, a set of
//     declarations, or a statement snippet), so examples cannot rot
//     into pseudo-code;
//  2. every intra-repo link and backtick file reference must point at a
//     file that exists, so renames and deletions cannot strand readers.
//
// References to runtime artifacts the repo intentionally does not carry
// (generated data, model files) are excluded by extension.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the documents under contract.
var docFiles = []string{"README.md", "DESIGN.md", "docs/API.md"}

// goFences extracts the body of every ```go fence. Fences open and
// close on lines whose trimmed content starts with ``` — the documents
// keep fence markers at line starts, which docsFenceDiscipline pins.
func goFences(t *testing.T, text string) []string {
	t.Helper()
	var out []string
	var cur []string
	inGo, inFence := false, false
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			if inFence {
				if inGo {
					out = append(out, strings.Join(cur, "\n"))
					cur = cur[:0]
				}
				inFence, inGo = false, false
			} else {
				inFence = true
				inGo = trimmed == "```go"
			}
			continue
		}
		if inGo {
			cur = append(cur, line)
		}
	}
	if inFence {
		t.Error("unclosed code fence")
	}
	return out
}

// parseAsGo accepts a fence if it parses as a full file, as a set of
// top-level declarations, or as statements inside a function body —
// the three shapes prose examples take.
func parseAsGo(src string) error {
	try := func(wrapped string) error {
		_, err := parser.ParseFile(token.NewFileSet(), "fence.go", wrapped, parser.SkipObjectResolution)
		return err
	}
	if try(src) == nil {
		return nil
	}
	if try("package p\n"+src) == nil {
		return nil
	}
	return try("package p\nfunc _() {\n" + src + "\n}")
}

func TestDocsGoFencesCompile(t *testing.T) {
	for _, doc := range docFiles {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for i, fence := range goFences(t, string(raw)) {
			if err := parseAsGo(fence); err != nil {
				t.Errorf("%s: go fence #%d does not parse: %v\n%s", doc, i+1, err, fence)
			}
		}
	}
}

// docRefPattern matches backtick-quoted repo file references and the
// targets of markdown links. Runtime artifacts (generated data, model
// files, scratch names) are excluded by extension below.
var (
	backtickRef = regexp.MustCompile("`([A-Za-z0-9_./-]+\\.(?:go|md|json|yml|conf))`")
	mdLink      = regexp.MustCompile(`\]\(([^)#][^)]*)\)`)
)

// resolveRef reports whether a referenced path exists in the repo. Docs
// refer to internal packages Go-style without the internal/ prefix
// (`infer/exec.go`), so that root is tried too; bare filenames that sit
// in a package directory resolve via glob.
func resolveRef(ref string) bool {
	if _, err := os.Stat(ref); err == nil {
		return true
	}
	if _, err := os.Stat(filepath.Join("internal", ref)); err == nil {
		return true
	}
	if !strings.Contains(ref, "/") {
		for _, pat := range []string{"internal/*/" + ref, "cmd/*/" + ref} {
			if m, _ := filepath.Glob(pat); len(m) > 0 {
				return true
			}
		}
	}
	return false
}

func TestDocsIntraRepoRefs(t *testing.T) {
	for _, doc := range docFiles {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		text := string(raw)
		seen := map[string]bool{}
		for _, m := range backtickRef.FindAllStringSubmatch(text, -1) {
			ref := m[1]
			if seen[ref] {
				continue
			}
			seen[ref] = true
			if !resolveRef(ref) {
				t.Errorf("%s: reference `%s` points at nothing in the repo", doc, ref)
			}
		}
		for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target != "" && !resolveRef(target) {
				t.Errorf("%s: link target %q points at nothing in the repo", doc, target)
			}
		}
	}
}

// docsFenceDiscipline: the fence extractor above assumes fence markers
// start their (trimmed) line. An inline triple-backtick span mid-prose
// would desynchronize it, so require any line containing ``` to start
// with it.
func TestDocsFenceDiscipline(t *testing.T) {
	for _, doc := range docFiles {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for n, line := range strings.Split(string(raw), "\n") {
			if i := strings.Index(line, "```"); i >= 0 && !strings.HasPrefix(strings.TrimSpace(line), "```") {
				t.Errorf("%s:%d: inline ``` would desynchronize fence scanning: %q", doc, n+1, line)
			}
		}
	}
}
