package tfrec

// TestGodocCoverage enforces the documentation contract CI's staticcheck
// job checks via ST1000/ST1020, but without needing staticcheck on the
// developer's machine: every package under the audited roots must carry a
// package comment, and every exported top-level declaration must carry a
// doc comment mentioning it. The audited roots are the two packages whose
// exported surface is the serving API other layers build against.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// godocRoots are the packages whose exported surface must be fully
// documented. Grow this list as other packages' docs are brought up to
// the same bar.
var godocRoots = []string{"internal/infer", "internal/model"}

func TestGodocCoverage(t *testing.T) {
	for _, root := range godocRoots {
		t.Run(root, func(t *testing.T) {
			fset := token.NewFileSet()
			entries, err := os.ReadDir(root)
			if err != nil {
				t.Fatal(err)
			}
			sawPkgDoc := false
			for _, e := range entries {
				name := e.Name()
				if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
					continue
				}
				path := filepath.Join(root, name)
				f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
				if err != nil {
					t.Fatal(err)
				}
				if f.Doc != nil {
					sawPkgDoc = true
				}
				checkFileGodoc(t, fset, path, f)
			}
			if !sawPkgDoc {
				t.Errorf("%s: no file carries a package comment (ST1000)", root)
			}
		})
	}
}

func checkFileGodoc(t *testing.T, fset *token.FileSet, path string, f *ast.File) {
	t.Helper()
	missing := func(pos token.Pos, kind, name string) {
		t.Errorf("%s:%d: exported %s %s has no doc comment (ST1020)",
			path, fset.Position(pos).Line, kind, name)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedRecv(d) {
				continue
			}
			if d.Doc == nil {
				missing(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						missing(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						// a doc comment on the grouped decl covers the
						// whole block, matching staticcheck's rule
						if n.IsExported() && d.Doc == nil && s.Doc == nil && d.Lparen == token.NoPos {
							missing(n.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
}

// exportedRecv reports whether a method's receiver type is itself
// exported — methods on unexported types are not part of the godoc
// surface.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
