package tfrec

// The benchmark harness regenerates every figure of the paper's
// evaluation (§7) at the tiny scale and reports the figure's headline
// quantity via b.ReportMetric, so `go test -bench=. -benchmem` doubles as
// the reproduction run. DESIGN.md §4 maps figures to benches; run
// `tfrec-exp -fig all -scale small` (or medium) for the fuller tables
// recorded in EXPERIMENTS.md.
//
// Micro-benchmarks for the hot paths (SGD step, sibling pass, composed
// scoring, cascaded vs naive inference) follow the figure benches.

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/bpr"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/synth"
	"repro/internal/taxonomy"
	"repro/internal/train"
	"repro/internal/vecmath"
)

func BenchmarkFig5_DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(io.Discard, experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Stats.AvgPurchasesPerUser, "purchases/user")
	}
}

func BenchmarkFig6a_TFvsMF_AUC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(io.Discard, experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		mfAUC, _, tfAUC, _ := res.BestAUC()
		b.ReportMetric(tfAUC, "tf-auc")
		b.ReportMetric(mfAUC, "mf-auc")
		if tfAUC <= mfAUC {
			b.Fatalf("Figure 6(a) shape violated: TF %.4f <= MF %.4f", tfAUC, mfAUC)
		}
	}
}

func BenchmarkFig6b_TFvsMF_MeanRank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(io.Discard, experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TF[0].MeanRank, "tf-meanrank")
		b.ReportMetric(res.MF[0].MeanRank, "mf-meanrank")
	}
}

func BenchmarkFig6c_CategoryAUC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(io.Discard, experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TF[0].CatAUC, "tf-cat-auc")
	}
}

func BenchmarkFig6d_CategoryMeanRank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(io.Discard, experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TF[0].CatMeanRank, "tf-cat-meanrank")
	}
}

func BenchmarkFig6e_TFvsFPMC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6e(io.Discard, experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		fpmcAUC, _, tfAUC, _ := res.BestAUC()
		b.ReportMetric(tfAUC, "tf-auc")
		b.ReportMetric(fpmcAUC, "fpmc-auc")
	}
}

func BenchmarkFig7a_TaxonomyLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7a(io.Discard, experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AUC[len(res.AUC)-1]-res.AUC[0], "tf4-minus-mf-auc")
	}
}

func BenchmarkFig7b_Sparsity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7b(io.Discard, experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		gaps := res.Gap()
		b.ReportMetric(gaps[0], "sparse-gap")
		b.ReportMetric(gaps[len(gaps)-1], "dense-gap")
	}
}

func BenchmarkFig7c_ColdStart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7c(io.Discard, experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TFCold[0], "tf-cold-auc")
		b.ReportMetric(res.MFCold[0], "mf-cold-auc")
	}
}

func BenchmarkFig7d_SiblingTraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7d(io.Discard, experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		var gain float64
		for i := range res.Factors {
			gain += res.WithSib[i] - res.WithoutSib[i]
		}
		b.ReportMetric(gain/float64(len(res.Factors)), "sibling-auc-gain")
	}
}

func BenchmarkFig7e_FactorClustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7e(io.Discard, experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RawStats.Ratio(), "cluster-ratio")
	}
}

func BenchmarkFig7f_MarkovOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7f(io.Discard, experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AUC[1]-res.AUC[0], "order1-gain")
		b.ReportMetric(res.AUC[3]-res.AUC[1], "order3-extra-gain")
	}
}

func BenchmarkFig8a_EpochTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8ab(io.Discard, experiments.Tiny(), []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		// system 1 = TF no caching; report its single-thread epoch time
		b.ReportMetric(float64(res.EpochTime[1][0].Microseconds()), "tf-epoch-us")
		b.ReportMetric(float64(res.EpochTime[0][0].Microseconds()), "mf-epoch-us")
	}
}

func BenchmarkFig8b_Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8ab(io.Discard, experiments.Tiny(), []int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup[1][1], "tf-speedup@8")
		b.ReportMetric(res.Speedup[2][1], "tf-cached-speedup@8")
	}
}

func BenchmarkFig8c_CascadedSweepAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8c(io.Discard, experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		// the paper's headline: ~80% of accuracy at ~50% of the time
		mid := len(res.KeepPct) / 2
		b.ReportMetric(res.AccRatio[mid], "acc-ratio@50pct")
		b.ReportMetric(res.TimeRatio[mid], "time-ratio@50pct")
	}
}

func BenchmarkFig8d_CascadedSweepLeaf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8d(io.Discard, experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AccRatio[0], "acc-ratio@5pct")
		b.ReportMetric(res.AccRatio[len(res.AccRatio)-1], "acc-ratio@100pct")
	}
}

// ---- micro-benchmarks on the hot paths ----------------------------------

// benchWorld builds a fixed small world shared by the micro-benches.
func benchWorld(b *testing.B) (*taxonomy.Tree, *dataset.Dataset) {
	b.Helper()
	tree, err := taxonomy.Generate(taxonomy.GenConfig{
		CategoryLevels: []int{6, 24, 96},
		Items:          2400,
		Skew:           0.5,
	}, vecmath.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := synth.DefaultConfig()
	cfg.Users = 1000
	data, _, err := synth.Generate(tree, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return tree, data
}

func benchModel(b *testing.B, tree *taxonomy.Tree, users int, p model.Params) *model.TF {
	b.Helper()
	m, err := model.New(tree, users, p, vecmath.NewRNG(2))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkSGDStepTF(b *testing.B) {
	tree, data := benchWorld(b)
	m := benchModel(b, tree, data.NumUsers(), model.Params{K: 20, TaxonomyLevels: 4, MarkovOrder: 1, Alpha: 1, InitStd: 0.01})
	st := bpr.NewStepper(m, bpr.PlainStores(m), bpr.StepConfig{LearnRate: 0.05, Lambda: 0.01}, vecmath.NewRNG(3))
	events := data.Events()
	rng := vecmath.NewRNG(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[rng.Intn(len(events))]
		h := data.Users[ev.User].Baskets
		prev := m.PrevBaskets(h, int(ev.Txn))
		j := st.SampleNegative(h[ev.Txn])
		st.Step(int(ev.User), int(ev.Item), j, prev)
	}
}

func BenchmarkSGDStepMF(b *testing.B) {
	tree, data := benchWorld(b)
	m := benchModel(b, tree, data.NumUsers(), model.Params{K: 20, TaxonomyLevels: 1, MarkovOrder: 0, Alpha: 1, InitStd: 0.01})
	st := bpr.NewStepper(m, bpr.PlainStores(m), bpr.StepConfig{LearnRate: 0.05, Lambda: 0.01}, vecmath.NewRNG(3))
	events := data.Events()
	rng := vecmath.NewRNG(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[rng.Intn(len(events))]
		h := data.Users[ev.User].Baskets
		j := st.SampleNegative(h[ev.Txn])
		st.Step(int(ev.User), int(ev.Item), j, nil)
	}
}

func BenchmarkSiblingPass(b *testing.B) {
	tree, data := benchWorld(b)
	m := benchModel(b, tree, data.NumUsers(), model.Params{K: 20, TaxonomyLevels: 4, MarkovOrder: 0, Alpha: 1, InitStd: 0.01})
	st := bpr.NewStepper(m, bpr.PlainStores(m), bpr.StepConfig{LearnRate: 0.05, Lambda: 0.01}, vecmath.NewRNG(3))
	rng := vecmath.NewRNG(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.SiblingPass(rng.Intn(m.NumUsers()), rng.Intn(m.NumItems()), nil)
	}
}

func BenchmarkCompose(b *testing.B) {
	tree, data := benchWorld(b)
	m := benchModel(b, tree, data.NumUsers(), model.Params{K: 20, TaxonomyLevels: 4, MarkovOrder: 1, Alpha: 1, InitStd: 0.01})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Compose()
	}
}

func BenchmarkNaiveInference(b *testing.B) {
	tree, data := benchWorld(b)
	m := benchModel(b, tree, data.NumUsers(), model.Params{K: 20, TaxonomyLevels: 4, MarkovOrder: 0, Alpha: 1, InitStd: 0.01})
	c := m.Compose()
	q := make([]float64, 20)
	vecmath.NewRNG(5).NormFloat64()
	for k := range q {
		q[k] = float64(k%5) - 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		infer.Naive(c, q, 10)
	}
}

// legacyNaiveTopK reproduces the pre-index serving path — materialize a
// catalog-sized []Scored via per-item tree-indirected Row lookups, then
// rank it — as the baseline the streaming ScoringIndex sweep is measured
// against.
func legacyNaiveTopK(c *model.Composed, q []float64, k int) []vecmath.Scored {
	scores := make([]vecmath.Scored, c.NumItems())
	for item := 0; item < c.NumItems(); item++ {
		node := c.Tree.ItemNode(item)
		s := vecmath.Dot(q, c.EffNode.Row(node))
		if c.P.UseBias {
			s += c.EffBias.Row(node)[0]
		}
		scores[item] = vecmath.Scored{ID: item, Score: s}
	}
	return vecmath.TopK(scores, k)
}

func benchComposedForTopK(b *testing.B) (*model.Composed, []float64) {
	tree, data := benchWorld(b)
	m := benchModel(b, tree, data.NumUsers(), model.Params{K: 20, TaxonomyLevels: 4, MarkovOrder: 0, Alpha: 1, InitStd: 0.01})
	q := make([]float64, 20)
	for k := range q {
		q[k] = float64(k%5) - 2
	}
	return m.Compose(), q
}

func BenchmarkTopKLegacyFullScan(b *testing.B) {
	c, q := benchComposedForTopK(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		legacyNaiveTopK(c, q, 10)
	}
}

func BenchmarkTopKIndexStreaming(b *testing.B) {
	c, q := benchComposedForTopK(b)
	st := vecmath.NewTopKStream(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset(10)
		infer.NaiveInto(c, q, st)
		_ = st.Ranked()
	}
}

// The parallel pair measures serving throughput with all cores busy — the
// regime the ROADMAP's heavy-traffic target cares about — where the legacy
// path's 41KB/query of garbage also costs GC time across the fleet.
func BenchmarkTopKLegacyFullScanParallel(b *testing.B) {
	c, q := benchComposedForTopK(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			legacyNaiveTopK(c, q, 10)
		}
	})
}

func BenchmarkTopKIndexStreamingParallel(b *testing.B) {
	c, q := benchComposedForTopK(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		st := vecmath.NewTopKStream(10)
		for pb.Next() {
			st.Reset(10)
			infer.NaiveInto(c, q, st)
			_ = st.Ranked()
		}
	})
}

func BenchmarkDiversifiedInference(b *testing.B) {
	c, q := benchComposedForTopK(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infer.Diversified(c, q, 10, 2, c.Tree.Depth()-1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCascadedInference(b *testing.B) {
	tree, data := benchWorld(b)
	m := benchModel(b, tree, data.NumUsers(), model.Params{K: 20, TaxonomyLevels: 4, MarkovOrder: 0, Alpha: 1, InitStd: 0.01})
	c := m.Compose()
	q := make([]float64, 20)
	for k := range q {
		q[k] = float64(k%5) - 2
	}
	cfg := infer.UniformCascade(tree.Depth(), 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := infer.Cascade(c, q, cfg, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelEvaluation measures the §6.2 user-partitioned
// evaluation (the paper used Hadoop; we shard users over goroutines).
func BenchmarkParallelEvaluation(b *testing.B) {
	tree, data := benchWorld(b)
	m := benchModel(b, tree, data.NumUsers(), model.Params{K: 20, TaxonomyLevels: 4, MarkovOrder: 0, Alpha: 1, InitStd: 0.01})
	c := m.Compose()
	split := data.Split(dataset.DefaultSplitConfig())
	history := dataset.Concat(split.Train, split.Validation)
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := eval.Config{T: 1, CategoryDepth: 1, Workers: workers}
			for i := 0; i < b.N; i++ {
				res := eval.Evaluate(c, history, split.Test, cfg)
				if res.Users == 0 {
					b.Fatal("nothing evaluated")
				}
			}
		})
	}
}

func BenchmarkTrainEpochSerial(b *testing.B) {
	tree, data := benchWorld(b)
	m := benchModel(b, tree, data.NumUsers(), model.Params{K: 20, TaxonomyLevels: 4, MarkovOrder: 0, Alpha: 1, InitStd: 0.01})
	cfg := train.DefaultConfig()
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := train.Train(m, data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpochParallel8(b *testing.B) {
	tree, data := benchWorld(b)
	m := benchModel(b, tree, data.NumUsers(), model.Params{K: 20, TaxonomyLevels: 4, MarkovOrder: 0, Alpha: 1, InitStd: 0.01})
	cfg := train.DefaultConfig()
	cfg.Epochs = 1
	cfg.Workers = 8
	cfg.CacheThreshold = 0.1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := train.Train(m, data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
