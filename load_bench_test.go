package tfrec

// Model load-path benches, gated by tfrec-benchgate:
//
//	BenchmarkLoadGob vs BenchmarkLoadMmap  (mmap >= 20x)
//
// The pair prices serving startup. The gob path is what tfrec-serve did
// before the v4 flat format: decode the raw factor gob, then run the
// Compose pass — O(catalog) float work and allocation before the first
// request can be answered. The mmap path is model.LoadFile on a v4 flat
// file: validate header, table and section checksums (hardware CRC-32C
// streamed through the page cache), mmap, and wrap the slabs zero-copy —
// no decode, no Compose, no quantization. The benchgate floor pins the
// mmap load at >=20x the gob load; on the CI bench job the world is
// sized to a million-item catalog via TFREC_LOADBENCH_ITEMS, where the
// gap is widest because the gob path scales with the catalog and the
// mmap path only with file checksumming.

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// loadBench holds the one benchmark world, built once per process:
// TFREC_LOADBENCH_ITEMS items (default 20000), K=8, int8-serving
// preference so every precision tier's slab is exercised. Both layouts
// are kept as bytes; each benchmark materializes what it measures.
var loadBench struct {
	once sync.Once
	err  error
	gob  []byte
	v4   []byte
}

func loadBenchWorld(b *testing.B) (gobBytes, v4Bytes []byte) {
	b.Helper()
	loadBench.once.Do(func() {
		items := 20000
		if s := os.Getenv("TFREC_LOADBENCH_ITEMS"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 100 {
				loadBench.err = errInvalidLoadBenchItems(s)
				return
			}
			items = v
		}
		mid := items / 100
		if mid < 8 {
			mid = 8
		}
		top := mid / 50
		if top < 4 {
			top = 4
		}
		tree, err := taxonomy.Generate(taxonomy.GenConfig{
			CategoryLevels: []int{top, mid},
			Items:          items,
			Skew:           0.3,
		}, vecmath.NewRNG(41))
		if err != nil {
			loadBench.err = err
			return
		}
		m, err := model.New(tree, 100, model.Params{
			K: 8, TaxonomyLevels: 3, MarkovOrder: 1, Alpha: 1, InitStd: 0.1, UseBias: true,
		}, vecmath.NewRNG(42))
		if err != nil {
			loadBench.err = err
			return
		}
		m.Precision = model.PrecisionInt8
		var gb, vb bytes.Buffer
		if err := m.SaveGob(&gb); err != nil {
			loadBench.err = err
			return
		}
		if err := m.Save(&vb); err != nil {
			loadBench.err = err
			return
		}
		loadBench.gob = gb.Bytes()
		loadBench.v4 = vb.Bytes()
	})
	if loadBench.err != nil {
		b.Fatal(loadBench.err)
	}
	return loadBench.gob, loadBench.v4
}

type errInvalidLoadBenchItems string

func (e errInvalidLoadBenchItems) Error() string {
	return "TFREC_LOADBENCH_ITEMS must be an integer >= 100, got " + strconv.Quote(string(e))
}

// BenchmarkLoadGob is the legacy startup path: gob decode plus the full
// Compose pass, per load.
func BenchmarkLoadGob(b *testing.B) {
	gobBytes, _ := loadBenchWorld(b)
	b.SetBytes(int64(len(gobBytes)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := model.Load(bytes.NewReader(gobBytes))
		if err != nil {
			b.Fatal(err)
		}
		runtime.KeepAlive(m.Compose())
	}
}

// BenchmarkLoadMmap is the v4 startup path: checksum-validate and mmap
// the flat file, wrap slabs zero-copy — the snapshot is serving-ready
// when LoadFile returns.
func BenchmarkLoadMmap(b *testing.B) {
	_, v4Bytes := loadBenchWorld(b)
	path := filepath.Join(b.TempDir(), "bench.tfrec")
	if err := os.WriteFile(path, v4Bytes, 0o644); err != nil {
		b.Fatal(err)
	}
	sn, err := model.LoadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	mapped := sn.Mapped
	sn.Close()
	if !mapped {
		b.Log("mmap unavailable on this platform; measuring the heap fallback")
	}
	b.SetBytes(int64(len(v4Bytes)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn, err := model.LoadFile(path)
		if err != nil {
			b.Fatal(err)
		}
		sn.Close()
	}
}
