// Coldstart demonstrates the paper's §1/§7.4.2 claim: a brand-new item —
// never purchased by anyone — is ranked sensibly by TF through its
// category's factors, while plain matrix factorization places it at
// random.
//
//	go run ./examples/coldstart
package main

import (
	"fmt"
	"log"

	tfrec "repro"
)

func main() {
	log.SetFlags(0)

	tree, err := tfrec.GenerateTaxonomy(tfrec.TaxonomyConfig{
		CategoryLevels: []int{3, 9, 27},
		Items:          540,
		Skew:           0.5,
	}, 11)
	if err != nil {
		log.Fatal(err)
	}
	cfg := tfrec.DefaultSynthConfig()
	cfg.Users = 800
	purchases, _, err := tfrec.GenerateLog(tree, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Pick a user and find a "new" item: one in the user's favourite leaf
	// category that nobody has ever bought.
	user := 3
	favCat := favouriteCategory(tree, purchases, user)
	newItem := unseenItemIn(tree, purchases, favCat)
	if newItem < 0 {
		log.Fatal("no unseen item available in the favourite category; rerun with more items")
	}
	fmt.Printf("user %d's favourite leaf category is node %d; item %d there was never bought by anyone\n",
		user, favCat, newItem)

	rank := func(levels int) int {
		p := tfrec.DefaultParams()
		p.K = 16
		p.TaxonomyLevels = levels
		tc := tfrec.DefaultTrainConfig()
		tc.Epochs = 20
		rec, _, err := tfrec.Train(tree, purchases, p, tc)
		if err != nil {
			log.Fatal(err)
		}
		all, err := rec.Recommend(user, nil, tree.NumItems())
		if err != nil {
			log.Fatal(err)
		}
		for i, s := range all {
			if s.ID == newItem {
				return i + 1
			}
		}
		return -1
	}

	mfRank := rank(1)            // MF(0): flat factors, the new item is noise
	tfRank := rank(tree.Depth()) // TF(4,0): category factors carry it

	fmt.Printf("\nrank of the never-seen item among %d items:\n", tree.NumItems())
	fmt.Printf("  MF(0)  : %4d  (random placement — untrained factor)\n", mfRank)
	fmt.Printf("  TF(%d,0): %4d  (carried by its category's factors)\n", tree.Depth(), tfRank)
	if tfRank < mfRank {
		fmt.Println("\nTF rescues the cold-start item, as in Figure 7(c) of the paper.")
	} else {
		fmt.Println("\nunexpected: rerun with another seed — at tiny scales the MF rank is a coin flip")
	}
}

// favouriteCategory returns the leaf-category node the user bought from
// most often.
func favouriteCategory(tree *tfrec.Taxonomy, purchases *tfrec.Dataset, user int) int {
	counts := map[int]int{}
	catDepth := tree.Depth() - 1
	for _, b := range purchases.Users[user].Baskets {
		for _, it := range b {
			cat := tree.AncestorAtDepth(tree.ItemNode(int(it)), catDepth)
			counts[cat]++
		}
	}
	best, bestN := -1, -1
	for cat, n := range counts {
		if n > bestN {
			best, bestN = cat, n
		}
	}
	return best
}

// unseenItemIn returns an item under cat that no user ever purchased, or
// -1 if none exists.
func unseenItemIn(tree *tfrec.Taxonomy, purchases *tfrec.Dataset, cat int) int {
	seen := purchases.GlobalItemSet()
	for _, leaf := range tree.Children(cat) {
		item := tree.NodeItem(int(leaf))
		if _, ok := seen[int32(item)]; !ok {
			return item
		}
	}
	return -1
}
