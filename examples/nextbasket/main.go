// Nextbasket demonstrates the short-term (Markov) term of the TF model
// (§3.2): after a user buys from one category, the next-item factors lift
// items of the follow-on category — the paper's camera → flash-memory
// pattern — while a time-blind model's ranking does not move at all.
//
//	go run ./examples/nextbasket
package main

import (
	"fmt"
	"log"

	tfrec "repro"
)

func main() {
	log.SetFlags(0)

	tree, err := tfrec.GenerateTaxonomy(tfrec.TaxonomyConfig{
		CategoryLevels: []int{3, 9, 27},
		Items:          540,
		Skew:           0.5,
	}, 23)
	if err != nil {
		log.Fatal(err)
	}
	cfg := tfrec.DefaultSynthConfig()
	cfg.Users = 1000
	cfg.PFollow = 0.55 // strong "accessory follows device" dynamics
	purchases, truth, err := tfrec.GenerateLog(tree, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Train the temporal model TF(4,1) and the time-blind TF(4,0).
	trainOne := func(markov int) *tfrec.Recommender {
		p := tfrec.DefaultParams()
		p.K = 16
		p.TaxonomyLevels = tree.Depth()
		p.MarkovOrder = markov
		tc := tfrec.DefaultTrainConfig()
		tc.Epochs = 20
		rec, _, err := tfrec.Train(tree, purchases, p, tc)
		if err != nil {
			log.Fatal(err)
		}
		return rec
	}
	temporal := trainOne(1)
	static := trainOne(0)

	// Simulate: the user just bought an item of a "device" category. The
	// generator's ground truth says which "accessory" category typically
	// follows it. We measure the mean rank (lower = recommended sooner)
	// of the accessory category's items before and after the purchase,
	// averaged over several device categories and users.
	catDepth := tree.Depth() - 1
	cats := tree.Level(catDepth)

	meanRank := func(rec *tfrec.Recommender, user int, recent []tfrec.Basket, wantCat int) float64 {
		all, err := rec.Recommend(user, recent, tree.NumItems())
		if err != nil {
			log.Fatal(err)
		}
		var sum float64
		count := 0
		for i, s := range all {
			if tree.AncestorAtDepth(tree.ItemNode(s.ID), catDepth) == wantCat {
				sum += float64(i + 1)
				count++
			}
		}
		return sum / float64(count)
	}

	var beforeT, afterT, afterS float64
	trials := 0
	for ci := 0; ci < 8; ci++ {
		boughtCat := int(cats[ci])
		successor := int(cats[truth.Successor[truth.CatIndex[cats[ci]]]])
		justBought := []tfrec.Basket{{int32(tree.NodeItem(int(tree.Children(boughtCat)[0])))}}
		for user := 0; user < 15; user++ {
			beforeT += meanRank(temporal, user, nil, successor)
			afterT += meanRank(temporal, user, justBought, successor)
			afterS += meanRank(static, user, justBought, successor)
			trials++
		}
	}
	n := float64(trials)
	fmt.Printf("mean rank of the follow-on (accessory) category's items, out of %d:\n", tree.NumItems())
	fmt.Printf("  TF(4,0) time-blind, after the device purchase:  %6.1f (no reaction)\n", afterS/n)
	fmt.Printf("  TF(4,1) temporal,   before the purchase:        %6.1f\n", beforeT/n)
	fmt.Printf("  TF(4,1) temporal,   after the purchase:         %6.1f\n", afterT/n)
	fmt.Println("\nthe temporal model pulls the accessories up the moment the device is bought —")
	fmt.Println("the paper's camera → flash-memory dynamic (§3.2, Figure 2a)")
}
