// Categorytargeting demonstrates the structured ranking of §1: instead of
// a flat list over (possibly duplicate-looking) products, the taxonomy-
// aware model ranks whole categories at every level — the form advertisers
// need for campaign targeting — and drills down only where the user's
// affinity is high.
//
//	go run ./examples/categorytargeting
package main

import (
	"fmt"
	"log"

	tfrec "repro"
)

func main() {
	log.SetFlags(0)

	tree, err := tfrec.GenerateTaxonomy(tfrec.TaxonomyConfig{
		CategoryLevels: []int{3, 9, 27},
		Items:          540,
		Skew:           0.5,
	}, 31)
	if err != nil {
		log.Fatal(err)
	}
	cfg := tfrec.DefaultSynthConfig()
	cfg.Users = 800
	purchases, _, err := tfrec.GenerateLog(tree, cfg)
	if err != nil {
		log.Fatal(err)
	}

	p := tfrec.DefaultParams()
	p.K = 16
	p.TaxonomyLevels = tree.Depth()
	tc := tfrec.DefaultTrainConfig()
	tc.Epochs = 20
	rec, _, err := tfrec.Train(tree, purchases, p, tc)
	if err != nil {
		log.Fatal(err)
	}

	user := 11
	sr, err := rec.RecommendStructured(user, nil, 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("structured ranking for user %d (campaign targeting view)\n\n", user)
	names := []string{"departments", "subcategories", "leaf categories"}
	for d, level := range sr.Levels {
		name := "level"
		if d < len(names) {
			name = names[d]
		}
		fmt.Printf("%-16s:", name)
		for i, s := range level {
			if i >= 4 {
				fmt.Printf("  … (%d more)", len(level)-4)
				break
			}
			fmt.Printf("  node %d (%.2f)", s.ID, s.Score)
		}
		fmt.Println()
	}

	fmt.Println("\ntop products inside the winning categories:")
	for i, s := range sr.Items {
		cat := tree.AncestorAtDepth(tree.ItemNode(s.ID), tree.Depth()-1)
		fmt.Printf("  %d. item %d (score %.2f, leaf category node %d)\n", i+1, s.ID, s.Score, cat)
	}

	// The targeting use case: all users whose top department is node X.
	dept := sr.Levels[0][0].ID
	audience := 0
	for u := 0; u < purchases.NumUsers(); u++ {
		s, err := rec.RecommendStructured(u, nil, 1)
		if err != nil {
			log.Fatal(err)
		}
		if s.Levels[0][0].ID == dept {
			audience++
		}
	}
	fmt.Printf("\ncampaign audience for department node %d: %d of %d users\n", dept, audience, purchases.NumUsers())
}
