// Session demonstrates serving recommendations to anonymous visitors: no
// user factor exists, so the ranking is driven purely by the short-term
// Markov term over the items in the live session basket — the TF model's
// next-item factors composed over the taxonomy (§3.2). The same mechanism
// also powers the hot-swap serving layer shown at the end.
//
//	go run ./examples/session
package main

import (
	"fmt"
	"log"

	tfrec "repro"
)

func main() {
	log.SetFlags(0)

	tree, err := tfrec.GenerateTaxonomy(tfrec.TaxonomyConfig{
		CategoryLevels: []int{3, 9, 27},
		Items:          540,
		Skew:           0.5,
	}, 47)
	if err != nil {
		log.Fatal(err)
	}
	cfg := tfrec.DefaultSynthConfig()
	cfg.Users = 1000
	cfg.PFollow = 0.55
	purchases, truth, err := tfrec.GenerateLog(tree, cfg)
	if err != nil {
		log.Fatal(err)
	}

	p := tfrec.DefaultParams()
	p.K = 16
	p.TaxonomyLevels = tree.Depth()
	p.MarkovOrder = 2
	tc := tfrec.DefaultTrainConfig()
	tc.Epochs = 20
	rec, _, err := tfrec.Train(tree, purchases, p, tc)
	if err != nil {
		log.Fatal(err)
	}

	// An anonymous visitor puts one item in the basket. Ground truth tells
	// us which category the generator considers its follow-on.
	catDepth := tree.Depth() - 1
	cats := tree.Level(catDepth)
	deviceCat := int(cats[2])
	successor := int(cats[truth.Successor[truth.CatIndex[cats[2]]]])
	deviceItem := tree.NodeItem(int(tree.Children(deviceCat)[0]))

	session := []tfrec.Basket{{int32(deviceItem)}}
	top, err := rec.RecommendSession(session, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anonymous visitor just added item %d (category node %d) to the basket\n", deviceItem, deviceCat)
	fmt.Printf("expected follow-on category: node %d\n\n", successor)
	fmt.Println("session-based top-10:")
	fromSuccessor := 0
	for i, s := range top {
		cat := tree.AncestorAtDepth(tree.ItemNode(s.ID), catDepth)
		marker := ""
		if cat == successor {
			marker = "  <- follow-on category"
			fromSuccessor++
		}
		fmt.Printf("  %2d. item %-4d (category node %d, score %.3f)%s\n", i+1, s.ID, cat, s.Score, marker)
	}
	fmt.Printf("\n%d of 10 session recommendations come from the follow-on category —\n", fromSuccessor)
	fmt.Println("no user history was needed, only the live basket and the taxonomy-shared")
	fmt.Println("next-item factors (the cold-session analogue of the paper's cold-start story)")
}
