// Quickstart: generate a synthetic shopping world, train the taxonomy-
// aware factor model, and print recommendations — the 60-second tour of
// the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	tfrec "repro"
)

func main() {
	log.SetFlags(0)

	// 1. A product taxonomy: 3 departments, 9 subcategories, 27 leaf
	// categories, 540 products (same shape as Yahoo! Shopping's tree,
	// scaled down).
	tree, err := tfrec.GenerateTaxonomy(tfrec.TaxonomyConfig{
		CategoryLevels: []int{3, 9, 27},
		Items:          540,
		Skew:           0.5,
	}, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A purchase log: 800 users with hierarchical preferences, Zipf
	// popularity and camera→accessory style purchase chains.
	synthCfg := tfrec.DefaultSynthConfig()
	synthCfg.Users = 800
	purchases, _, err := tfrec.GenerateLog(tree, synthCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d items in a depth-%d taxonomy, %d users, %d purchases\n",
		tree.NumItems(), tree.Depth(), purchases.NumUsers(), purchases.NumPurchases())

	// 3. Train TF(4,1): full taxonomy, first-order Markov dynamics.
	params := tfrec.DefaultParams()
	params.K = 16
	params.TaxonomyLevels = tree.Depth() // "4" in the paper's TF(4,1)
	params.MarkovOrder = 1

	trainCfg := tfrec.DefaultTrainConfig()
	trainCfg.Epochs = 20
	rec, stats, err := tfrec.Train(tree, purchases, params, trainCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained TF(%d,%d) in %d epochs (mean %v/epoch)\n",
		params.TaxonomyLevels, params.MarkovOrder, trainCfg.Epochs, stats.MeanEpochTime())

	// 4. Recommend: full scan and the paper's cascaded inference.
	user := 7
	history := purchases.Users[user].Baskets
	top, err := rec.Recommend(user, recentFirst(history), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuser %d bought %d baskets; top-5 recommendations:\n", user, len(history))
	for i, s := range top {
		fmt.Printf("  %d. item %d (score %.3f)\n", i+1, s.ID, s.Score)
	}

	cascTop, err := rec.RecommendCascaded(user, recentFirst(history), rec.UniformCascade(0.25), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cascaded inference (keep 25% per level) agrees on the head:")
	for i, s := range cascTop {
		fmt.Printf("  %d. item %d (score %.3f)\n", i+1, s.ID, s.Score)
	}
}

// recentFirst reverses a basket history into the most-recent-first order
// the Markov term expects.
func recentFirst(history []tfrec.Basket) []tfrec.Basket {
	out := make([]tfrec.Basket, len(history))
	for i, b := range history {
		out[len(history)-1-i] = b
	}
	return out
}
