package tfrec

// BenchmarkKernel* are micro-floors on the hand-written SIMD scoring
// kernels themselves, isolated from heaps, filters and rescoring: the
// dispatched vecmath entry points against their exported pure-Go
// references on the same vectors. The gated pair (see
// BENCH_baseline.json, conditioned on the "amd64/avx2" kernel set):
//
//	BenchmarkKernelDotI8Generic vs BenchmarkKernelDotI8SIMD (≥3x)
//
// The SIMD variants self-skip when the assembly kernels are not active
// (non-AVX2 amd64, purego builds, TFREC_NOSIMD=1), so a generic-dispatch
// machine produces no SIMD samples — which is exactly why the baseline
// records its kernel set and tfrec-benchgate skips kernel-conditioned
// comparisons when the sets differ. Vectors are 1024 elements — long
// enough that the loop body, not call overhead, dominates, and far past
// the 8/16/32-element unroll widths so every code path (wide loop,
// half-width block, scalar tail) is exercised by the odd length below.

import (
	"testing"

	"repro/internal/vecmath"
)

// kernelBenchLen is deliberately NOT a multiple of 32: 1000 = 31 full
// 32-byte int8 blocks + 8 + scalar tail, so the benches time the real
// mixed head+tail shape the sweeps see, not just the aligned fast path.
const kernelBenchLen = 1000

var (
	sinkI32 int32
	sinkF32 float32
)

func kernelVecsI8() (a, b []int8) {
	a = make([]int8, kernelBenchLen)
	b = make([]int8, kernelBenchLen)
	rng := vecmath.NewRNG(42)
	for i := range a {
		a[i] = int8(rng.Intn(255) - 127)
		b[i] = int8(rng.Intn(255) - 127)
	}
	return a, b
}

func kernelVecsF32() (a, b []float32) {
	a = make([]float32, kernelBenchLen)
	b = make([]float32, kernelBenchLen)
	rng := vecmath.NewRNG(43)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
		b[i] = float32(rng.NormFloat64())
	}
	return a, b
}

func BenchmarkKernelDotI8SIMD(b *testing.B) {
	if !vecmath.SIMDEnabled() {
		b.Skip("SIMD kernels not active on this host/build")
	}
	x, y := kernelVecsI8()
	b.SetBytes(2 * kernelBenchLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkI32 = vecmath.DotI8(x, y)
	}
}

func BenchmarkKernelDotI8Generic(b *testing.B) {
	x, y := kernelVecsI8()
	b.SetBytes(2 * kernelBenchLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkI32 = vecmath.DotI8Ref(x, y)
	}
}

func BenchmarkKernelDotBias32SIMD(b *testing.B) {
	if !vecmath.SIMDEnabled() {
		b.Skip("SIMD kernels not active on this host/build")
	}
	x, y := kernelVecsF32()
	b.SetBytes(8 * kernelBenchLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF32 = vecmath.DotBias32(x, y, 0.5)
	}
}

func BenchmarkKernelDotBias32Generic(b *testing.B) {
	x, y := kernelVecsF32()
	b.SetBytes(8 * kernelBenchLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF32 = vecmath.DotBias32Ref(x, y, 0.5)
	}
}
