package tfrec

// BenchmarkTopKPlan* and BenchmarkTopKFiltered* measure the query-plan
// executor: the unfiltered plan path against the direct NaiveInto call it
// wraps (gated within the benchgate regression bound — the refactor must
// stay free), and request-time candidate filtering at 50% scattered
// exclusion (an exclude-purchased-shaped mask: no block locality, the
// sweep pays full bandwidth and filters at push time) and 95% exclusion
// via taxonomy allow-lists (category-page-shaped: contiguous item ranges,
// whole score blocks are skipped without touching their factor rows).
// All are subjects of the CI bench gate (cmd/tfrec-benchgate,
// BENCH_baseline.json).

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/vecmath"
)

// BenchmarkTopKPlanStreaming is the plan-executor twin of
// BenchmarkTopKIndexStreaming: the identical serial f64 top-10 sweep,
// reached through Plan validation and ExecuteInto instead of the direct
// call. The benchgate speedup floor pins the pair together, bounding the
// executor's dispatch overhead.
func BenchmarkTopKPlanStreaming(b *testing.B) {
	c, q := benchComposedForTopK(b)
	pl := infer.Plan{K: 10, Precision: model.PrecisionF64}
	st := vecmath.NewTopKStream(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infer.ExecuteInto(context.Background(), c, q, pl, st); err != nil {
			b.Fatal(err)
		}
	}
}

// filteredPlans builds the exclusion filters on the wide world: excl=0
// (unfiltered reference), excl=50 (every other item excluded — scattered,
// no blocks can be skipped), excl=95 (allow-list of level-2 taxonomy
// subtrees covering ~5% of the catalog — contiguous ranges).
func filteredPlans(c *model.Composed) map[string]*infer.Filter {
	n := c.NumItems()
	scattered := &infer.Filter{}
	for item := 0; item < n; item += 2 {
		scattered.ExcludeItems = append(scattered.ExcludeItems, int32(item))
	}
	allow := &infer.Filter{}
	eligible := 0
	for _, node := range c.Tree.Level(2) {
		lo, hi, _ := c.Index.ItemRange(int(node))
		allow.AllowNodes = append(allow.AllowNodes, node)
		eligible += hi - lo
		if eligible >= n/20 {
			break
		}
	}
	return map[string]*infer.Filter{"excl=0": nil, "excl=50": scattered, "excl=95": allow}
}

func BenchmarkTopKFiltered(b *testing.B) {
	c, q := benchShardedWorld(b)
	filters := filteredPlans(c)
	for _, name := range []string{"excl=0", "excl=50", "excl=95"} {
		b.Run(name, func(b *testing.B) {
			// f64 pins the comparison to pure sweep bandwidth: the three
			// cases differ only in the filter mask
			pl := infer.Plan{K: 10, Precision: model.PrecisionF64, Filter: filters[name]}
			st := vecmath.NewTopKStream(10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := infer.ExecuteInto(context.Background(), c, q, pl, st)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Items) != 10 {
					b.Fatalf("filtered page has %d items", len(res.Items))
				}
			}
		})
	}
}

// BenchmarkTopKFilteredF32 is the excl=95 case through the default
// two-stage f32 pipeline — the shape a filtered production request
// actually runs.
func BenchmarkTopKFilteredF32(b *testing.B) {
	c, q := benchShardedWorld(b)
	flt := filteredPlans(c)["excl=95"]
	pl := infer.Plan{K: 10, Precision: model.PrecisionF32, Filter: flt}
	st := vecmath.NewTopKStream(10)
	// warm the compact slabs and scratch pools outside the timer
	if _, err := infer.ExecuteInto(context.Background(), c, q, pl, st); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infer.ExecuteInto(context.Background(), c, q, pl, st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopKFilteredSharded fans the 95%-exclusion sweep across the
// pool — filter masks are read-only and shard claiming is unchanged, so
// filtered requests scale like unfiltered ones.
func BenchmarkTopKFilteredSharded(b *testing.B) {
	c, q := benchShardedWorld(b)
	flt := filteredPlans(c)["excl=95"]
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := infer.NewPool(workers)
			defer pool.Close()
			pl := infer.Plan{K: 10, Precision: model.PrecisionF64, Filter: flt}
			st := vecmath.NewTopKStream(10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pool.ExecuteInto(context.Background(), c, q, pl, st); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
