package tfrec

// Ablation benchmarks for the design choices DESIGN.md §6 calls out. Each
// reports the quality (or cost) consequence of one knob via
// b.ReportMetric; run with `go test -bench=Ablation`.

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/train"
	"repro/internal/vecmath"
)

// ablationWorld builds one deterministic tiny workload reused across the
// ablations in a single bench invocation.
func ablationWorld(b *testing.B) *experiments.Workload {
	b.Helper()
	w, err := experiments.BuildWorkload(experiments.Tiny(), 0.5)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// ablationTrain fits TF(4,0)-style params with the given tweaks and
// returns the product-level AUC.
func ablationTrain(b *testing.B, w *experiments.Workload, p model.Params, cfg train.Config) float64 {
	b.Helper()
	m, err := model.New(w.Tree, w.Log.NumUsers(), p, vecmath.NewRNG(71))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := train.Train(m, w.History, cfg); err != nil {
		b.Fatal(err)
	}
	res := eval.Evaluate(m.Compose(), w.History, w.Split.Test, eval.DefaultConfig())
	return res.AUC
}

func tinyParams(w *experiments.Workload) model.Params {
	return model.Params{K: 8, TaxonomyLevels: w.MaxU(), MarkovOrder: 0, Alpha: 1, InitStd: 0.01}
}

func tinyTrainCfg() train.Config {
	sc := experiments.Tiny()
	return sc.TrainConfig()
}

// BenchmarkAblationSiblingMix sweeps the random/sibling mixing ratio;
// Figure 7(d) is the {0, 0.5} endpoints.
func BenchmarkAblationSiblingMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := ablationWorld(b)
		for _, mix := range []float64{0, 0.25, 0.5, 1.0} {
			cfg := tinyTrainCfg()
			cfg.SiblingMix = mix
			auc := ablationTrain(b, w, tinyParams(w), cfg)
			b.ReportMetric(auc, "auc@mix="+fmtFloat(mix))
		}
	}
}

// BenchmarkAblationCacheThreshold sweeps the §6.1 reconciliation threshold
// at a fixed worker count, reporting epoch time and quality: 0 is
// write-through (pure locking), large thresholds trade staleness for
// speed.
func BenchmarkAblationCacheThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := ablationWorld(b)
		for _, th := range []float64{0, 0.01, 0.1, 1.0} {
			cfg := tinyTrainCfg()
			cfg.Workers = 8
			cfg.CacheThreshold = th
			cfg.SamplesPerEpoch = 50000
			m, err := model.New(w.Tree, w.Log.NumUsers(), tinyParams(w), vecmath.NewRNG(71))
			if err != nil {
				b.Fatal(err)
			}
			stats, err := train.Train(m, w.History, cfg)
			if err != nil {
				b.Fatal(err)
			}
			res := eval.Evaluate(m.Compose(), w.History, w.Split.Test, eval.DefaultConfig())
			b.ReportMetric(float64(stats.MeanEpochTime().Microseconds()), "epoch-us@th="+fmtFloat(th))
			b.ReportMetric(res.AUC, "auc@th="+fmtFloat(th))
		}
	}
}

// BenchmarkAblationDecay compares the paper's exponential α_n decay with a
// uniform window at Markov order 3.
func BenchmarkAblationDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := ablationWorld(b)
		for _, uniform := range []bool{false, true} {
			p := tinyParams(w)
			p.MarkovOrder = 3
			p.UniformDecay = uniform
			auc := ablationTrain(b, w, p, tinyTrainCfg())
			name := "auc-expdecay"
			if uniform {
				name = "auc-uniformdecay"
			}
			b.ReportMetric(auc, name)
		}
	}
}

// BenchmarkAblationRegularization compares the offset-wise Gaussian prior
// (default) with the paper's literal Eq. 6 effective-factor shrinkage.
func BenchmarkAblationRegularization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := ablationWorld(b)
		for _, eff := range []bool{false, true} {
			cfg := tinyTrainCfg()
			cfg.RegularizeEffective = eff
			auc := ablationTrain(b, w, tinyParams(w), cfg)
			name := "auc-offset-reg"
			if eff {
				name = "auc-effective-reg"
			}
			b.ReportMetric(auc, name)
		}
	}
}

// BenchmarkAblationBias measures the §2.1 popularity-bias extension.
func BenchmarkAblationBias(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := ablationWorld(b)
		for _, bias := range []bool{false, true} {
			p := tinyParams(w)
			p.UseBias = bias
			auc := ablationTrain(b, w, p, tinyTrainCfg())
			name := "auc-nobias"
			if bias {
				name = "auc-bias"
			}
			b.ReportMetric(auc, name)
		}
	}
}

// BenchmarkAblationQueryPrecompute measures the win from the composed-
// snapshot scoring path (one dot per item) against per-item path
// composition — the "query-vector precomputation" row of DESIGN.md §6.
func BenchmarkAblationQueryPrecompute(b *testing.B) {
	w := ablationWorld(b)
	m, err := model.New(w.Tree, w.Log.NumUsers(), tinyParams(w), vecmath.NewRNG(71))
	if err != nil {
		b.Fatal(err)
	}
	c := m.Compose()
	q := make([]float64, m.K())
	m.BuildQueryInto(0, nil, q)
	scores := make([]float64, m.NumItems())
	b.Run("composed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.ItemScoresInto(q, scores)
		}
	})
	b.Run("pathwalk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for item := 0; item < m.NumItems(); item++ {
				scores[item] = m.Score(q, item)
			}
		}
	})
}

// fmtFloat renders a float compactly for metric labels.
func fmtFloat(f float64) string {
	switch f {
	case 0:
		return "0"
	case 0.01:
		return "0.01"
	case 0.1:
		return "0.1"
	case 0.25:
		return "0.25"
	case 0.5:
		return "0.5"
	case 1.0:
		return "1"
	}
	return "x"
}
