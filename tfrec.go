// Package tfrec is a Go implementation of the taxonomy-aware temporal
// latent factor model (TF) of Kanagal, Ahmed, Pandey, Josifovski, Yuan and
// Garcia-Pueyo, "Supercharging Recommender Systems using Taxonomies for
// Learning User Purchase Behavior", PVLDB 5(10), 2012.
//
// TF augments Bayesian-Personalized-Ranking matrix factorization with two
// structural priors: a product taxonomy, whose every node carries a latent
// offset so an item's factor is the sum of the offsets on its path to the
// root, and an order-N Markov chain over a user's previous transactions
// for short-term purchase dynamics. The combination addresses the sparsity
// and cold-start failures of flat factor models and admits a cascaded
// top-down inference that prunes the item space by taxonomy level.
//
// This package is the high-level facade: build or load a taxonomy and a
// purchase log, train a Recommender, and query it. The building blocks
// live in internal/ (model, bpr, train, infer, eval, taxonomy, dataset,
// synth, factors, tsne, experiments) and are exercised directly by the
// benchmark harness that regenerates every figure of the paper's
// evaluation; see DESIGN.md for the map.
package tfrec

import (
	"context"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/synth"
	"repro/internal/taxonomy"
	"repro/internal/train"
	"repro/internal/vecmath"
)

// Re-exported core types. The facade aliases the internal types rather
// than wrapping them, so advanced callers lose nothing.
type (
	// Taxonomy is the immutable product tree; leaves are items.
	Taxonomy = taxonomy.Tree
	// TaxonomyConfig shapes a generated taxonomy.
	TaxonomyConfig = taxonomy.GenConfig
	// Dataset is a purchase log: per-user ordered baskets.
	Dataset = dataset.Dataset
	// Basket is the set of items bought in one transaction.
	Basket = dataset.Basket
	// Split is a train/validation/test partition of a Dataset.
	Split = dataset.Split
	// SplitConfig parameterizes the paper's µ-split protocol.
	SplitConfig = dataset.SplitConfig
	// Params are the TF hyper-parameters (K, taxonomyUpdateLevels,
	// maxPrevtransactions, ...).
	Params = model.Params
	// TrainConfig are the SGD settings (epochs, ε, λ, sibling mix,
	// workers, cache threshold).
	TrainConfig = train.Config
	// TrainStats reports per-epoch timings and likelihoods.
	TrainStats = train.Stats
	// EvalConfig controls evaluation (T, category depth, workers).
	EvalConfig = eval.Config
	// EvalResult carries AUC, meanRank, category and cold-start metrics.
	EvalResult = eval.Result
	// CascadeConfig sets the per-level keep fractions of cascaded
	// inference.
	CascadeConfig = infer.CascadeConfig
	// Plan is one fully specified recommendation query: strategy,
	// precision, result page, worker cap and item filter.
	Plan = infer.Plan
	// Filter restricts a plan's eligible items (taxonomy allow/deny
	// lists, explicit exclusions such as already-purchased items).
	Filter = infer.Filter
	// PlanResult is an executed plan's output page plus work stats.
	PlanResult = infer.Result
	// Scored is a ranked (id, score) pair.
	Scored = vecmath.Scored
	// StructuredRanking is a per-taxonomy-level ranking plus top items.
	StructuredRanking = infer.StructuredRanking
	// SynthConfig controls the synthetic purchase-log generator.
	SynthConfig = synth.Config
	// GroundTruth exposes the generator's hidden state for diagnostics.
	GroundTruth = synth.GroundTruth
)

// DefaultParams returns K=20 flat-MF parameters; set TaxonomyLevels to the
// taxonomy depth and MarkovOrder > 0 to enable the TF features.
func DefaultParams() Params { return model.DefaultParams() }

// DefaultTrainConfig returns the harness defaults (30 epochs, ε=0.05,
// λ=0.01, sibling mix 0.5, single worker).
func DefaultTrainConfig() TrainConfig { return train.DefaultConfig() }

// DefaultSplitConfig mirrors the paper's protocol (µ=0.5, σ=0.05, T=1,
// repeat purchases removed from test).
func DefaultSplitConfig() SplitConfig { return dataset.DefaultSplitConfig() }

// DefaultEvalConfig mirrors the paper (first test transaction, top-level
// categories).
func DefaultEvalConfig() EvalConfig { return eval.DefaultConfig() }

// DefaultSynthConfig returns the generator settings used by the examples.
func DefaultSynthConfig() SynthConfig { return synth.DefaultConfig() }

// GenerateTaxonomy builds a random taxonomy with the given shape; use
// taxonomy shapes like {CategoryLevels: []int{23, 270, 1500}, Items: N}
// for the paper's tree.
func GenerateTaxonomy(cfg TaxonomyConfig, seed uint64) (*Taxonomy, error) {
	return taxonomy.Generate(cfg, vecmath.NewRNG(seed))
}

// PaperTaxonomyConfig returns the Yahoo!-shopping-shaped taxonomy scaled
// down by the given factor (1 = the full 1.5M-item tree).
func PaperTaxonomyConfig(scale int) TaxonomyConfig { return taxonomy.PaperShape(scale) }

// GenerateLog simulates a purchase log over the taxonomy (see
// internal/synth for the generative model and DESIGN.md for why it stands
// in for the paper's proprietary dataset).
func GenerateLog(tree *Taxonomy, cfg SynthConfig) (*Dataset, *GroundTruth, error) {
	return synth.Generate(tree, cfg)
}

// Recommender is a trained TF model ready for querying. Obtain one with
// Train or LoadRecommender.
type Recommender struct {
	model    *model.TF
	composed *model.Composed
}

// Train fits a TF model on the training dataset and returns a ready
// Recommender along with training statistics.
func Train(tree *Taxonomy, data *Dataset, p Params, cfg TrainConfig) (*Recommender, *TrainStats, error) {
	m, err := model.New(tree, data.NumUsers(), p, vecmath.NewRNG(cfg.Seed))
	if err != nil {
		return nil, nil, err
	}
	stats, err := train.Train(m, data, cfg)
	if err != nil {
		return nil, nil, err
	}
	return &Recommender{model: m, composed: m.Compose()}, stats, nil
}

// Params returns the model's hyper-parameters.
func (r *Recommender) Params() Params { return r.model.P }

// Taxonomy returns the tree the model was trained over.
func (r *Recommender) Taxonomy() *Taxonomy { return r.model.Tree }

// query builds the affinity query vector for a user with the given recent
// baskets (most recent first).
func (r *Recommender) query(user int, recent []Basket) ([]float64, error) {
	if user < 0 || user >= r.model.NumUsers() {
		return nil, fmt.Errorf("tfrec: user %d out of range [0,%d)", user, r.model.NumUsers())
	}
	q := make([]float64, r.model.K())
	r.composed.BuildQueryInto(user, recent, q)
	return q, nil
}

// Recommend returns the top-k items for a user by full scan. recent is
// the user's latest baskets, most recent first; it feeds the short-term
// (Markov) term and may be nil.
func (r *Recommender) Recommend(user int, recent []Basket, k int) ([]Scored, error) {
	res, err := r.RecommendPlan(user, recent, Plan{K: k})
	if err != nil {
		return nil, err
	}
	return res.Items, nil
}

// RecommendSession returns top-k items for an anonymous session: no user
// factor is available, so the ranking is driven entirely by the short-term
// Markov term over the session's recent baskets (most recent first). The
// model must have MarkovOrder > 0 for this to be meaningful.
func (r *Recommender) RecommendSession(recent []Basket, k int) ([]Scored, error) {
	if r.model.P.MarkovOrder == 0 {
		return nil, fmt.Errorf("tfrec: session recommendations need MarkovOrder > 0 (model has 0)")
	}
	q := make([]float64, r.model.K())
	r.composed.BuildSessionQueryInto(recent, q)
	res, err := infer.Execute(context.Background(), r.composed, q, Plan{K: k})
	if err != nil {
		return nil, err
	}
	return res.Items, nil
}

// RecommendPlan executes one query plan for a user — the full serving
// surface (strategy, precision, filters, pagination) through a single
// call. The zero-valued plan fields default sensibly: strategy naive,
// precision f32 two-stage, whole catalog, first page.
func (r *Recommender) RecommendPlan(user int, recent []Basket, pl Plan) (PlanResult, error) {
	q, err := r.query(user, recent)
	if err != nil {
		return PlanResult{}, err
	}
	return infer.Execute(context.Background(), r.composed, q, pl)
}

// RecommendDiversified returns a top-k list with at most maxPerCategory
// items from any single category at taxonomy depth catDepth (0 = the
// lowest category level) — the §1 "reduce duplication of items of
// similar type" use of the taxonomy.
func (r *Recommender) RecommendDiversified(user int, recent []Basket, k, maxPerCategory, catDepth int) ([]Scored, error) {
	res, err := r.RecommendPlan(user, recent, Plan{
		Strategy:  infer.StrategyDiversified,
		K:         k,
		Diversify: &infer.Diversify{MaxPerCategory: maxPerCategory, CatDepth: catDepth},
	})
	if err != nil {
		return nil, err
	}
	return res.Items, nil
}

// EvaluateTopK computes precision/recall/hit-rate/NDCG at cut k.
func (r *Recommender) EvaluateTopK(history, test *Dataset, k int) (eval.TopKResult, error) {
	return eval.EvaluateTopK(r.composed, history, test, k)
}

// RecommendCascaded returns the top-k items using §5.1 cascaded inference
// with the given per-level keep fractions (see UniformCascade).
func (r *Recommender) RecommendCascaded(user int, recent []Basket, cfg CascadeConfig, k int) ([]Scored, error) {
	res, err := r.RecommendPlan(user, recent, Plan{Strategy: infer.StrategyCascade, K: k, Cascade: &cfg})
	if err != nil {
		return nil, err
	}
	return res.Items, nil
}

// RecommendStructured returns a complete per-level category ranking plus
// the top-k items — the "structured ranking" of §1 used for category
// targeting.
func (r *Recommender) RecommendStructured(user int, recent []Basket, k int) (*StructuredRanking, error) {
	q, err := r.query(user, recent)
	if err != nil {
		return nil, err
	}
	return infer.Structured(r.composed, q, k), nil
}

// UniformCascade keeps the fraction f of nodes at every category level of
// this recommender's taxonomy.
func (r *Recommender) UniformCascade(f float64) CascadeConfig {
	return infer.UniformCascade(r.model.Tree.Depth(), f)
}

// Evaluate runs the paper's protocol: history is the observed context
// (train + validation), test supplies the held-out transactions.
func (r *Recommender) Evaluate(history, test *Dataset, cfg EvalConfig) EvalResult {
	return eval.Evaluate(r.composed, history, test, cfg)
}

// Save persists the model (with its taxonomy) to w.
func (r *Recommender) Save(w io.Writer) error { return r.model.Save(w) }

// LoadRecommender restores a model written by Save.
func LoadRecommender(rd io.Reader) (*Recommender, error) {
	m, err := model.Load(rd)
	if err != nil {
		return nil, err
	}
	return &Recommender{model: m, composed: m.Compose()}, nil
}

// Refresh recomposes the inference snapshot after direct mutation of the
// underlying model (advanced use, e.g. continued training).
func (r *Recommender) Refresh() { r.composed = r.model.Compose() }

// WarmStart continues training the existing model on data — typically a
// log extended with new users and new transactions — growing the user
// factor table if needed, and refreshes the inference snapshot. This is
// the incremental-update path: items cold-start through their taxonomy
// ancestors automatically; users cold-start here.
func (r *Recommender) WarmStart(data *Dataset, cfg TrainConfig) (*TrainStats, error) {
	if data.NumUsers() > r.model.NumUsers() {
		if err := r.model.GrowUsers(data.NumUsers(), vecmath.NewRNG(cfg.Seed^0xabcd)); err != nil {
			return nil, err
		}
	}
	stats, err := train.Train(r.model, data, cfg)
	if err != nil {
		return nil, err
	}
	r.Refresh()
	return stats, nil
}

// Model exposes the underlying TF model for advanced use (continued
// training, factor inspection). Call Refresh after mutating it.
func (r *Recommender) Model() *model.TF { return r.model }

// Concat merges two datasets user-by-user (a's baskets then b's);
// evaluation contexts are built this way from train and validation.
func Concat(a, b *Dataset) *Dataset { return dataset.Concat(a, b) }
