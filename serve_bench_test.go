package tfrec

// Serving-resilience benches, gated by tfrec-benchgate:
//
//	BenchmarkServeUncached      vs BenchmarkServeCachedHit    (hit >= 10x)
//	BenchmarkExecuteDeadlineNone vs BenchmarkExecuteDeadlineFar (checks ~free)
//
// The cached pair measures the versioned result cache end to end through
// serve.Server.Recommend on the wide out-of-cache world: a hit is a key
// build plus an LRU lookup, no sweep. The deadline pair prices the
// cooperative cancellation checks the executor now runs at every shard
// claim — an armed-but-distant deadline must cost under 2% of the
// uncontended f64 sweep, which is what lets every serving request carry
// a real deadline by default.

import (
	"context"
	"testing"
	"time"

	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// benchServeModel is the TF model behind the serve-layer benches — the
// same 50k x 64 bandwidth-bound world as benchWideWorld, kept as a model
// so serve.New can snapshot it.
func benchServeModel(b *testing.B) *model.TF {
	b.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{8, 64, 512},
		Items:          50000,
		Skew:           0.4,
	}, vecmath.NewRNG(7))
	m, err := model.New(tree, 10, model.Params{K: 64, TaxonomyLevels: 4, Alpha: 1, InitStd: 0.1, UseBias: true}, vecmath.NewRNG(8))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkServeUncached(b *testing.B) {
	srv := serve.New(benchServeModel(b))
	req := serve.Request{User: 1, K: 10}
	if _, err := srv.Recommend(req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Recommend(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeCachedHit(b *testing.B) {
	srv := serve.New(benchServeModel(b), serve.WithCache(16))
	req := serve.Request{User: 1, K: 10}
	if _, err := srv.Recommend(req); err != nil { // fill
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Recommend(req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if cs, _ := srv.CacheStats(); cs.Hits < int64(b.N) {
		b.Fatalf("bench did not hit the cache: %+v", cs)
	}
}

// benchExecuteDeadline shares one plan execution loop between the
// deadline pair; only the context differs. It runs on the small
// streaming world — per-op times there are stable to ~1-2%, which is
// what lets the Far/None ratio floor stay tight; the true per-shard
// poll cost is far below either world's noise floor.
func benchExecuteDeadline(b *testing.B, ctx context.Context) {
	c, q := benchComposedForTopK(b)
	pl := infer.Plan{K: 10, Precision: model.PrecisionF64}
	st := vecmath.NewTopKStream(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infer.ExecuteInto(ctx, c, q, pl, st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteDeadlineNone is the f64 plan sweep with no deadline
// armed (nil done channel) — the pre-PR cost of the sweep.
func BenchmarkExecuteDeadlineNone(b *testing.B) {
	benchExecuteDeadline(b, context.Background())
}

// BenchmarkExecuteDeadlineFar runs the same sweep with a live deadline
// far in the future, so every shard claim polls a real done channel —
// the steady-state cost every deadline-carrying serving request pays.
func BenchmarkExecuteDeadlineFar(b *testing.B) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	benchExecuteDeadline(b, ctx)
}
