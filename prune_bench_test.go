package tfrec

// BenchmarkTopKSkewed*/BenchmarkTopKUniform* bracket the branch-and-bound
// descent (Plan.Pruned) against the dense sweep it certifies against:
//
//	BenchmarkTopKSkewedDense   vs BenchmarkTopKSkewedPruned   (≥2x floor)
//	BenchmarkTopKUniformDense  vs BenchmarkTopKUniformPruned  (≥0.95 floor)
//
// The skewed world concentrates all signal in one of 16 level-1 subtrees
// (its bias offset is +5, the rest sit at −5), so the subtree envelopes
// price the 15 cold subtrees — ~94% of the catalog — below the top-k
// threshold and the descent never reads their factors; tfrec-benchgate
// keeps the ≥2x win. The uniform world is benchWideWorld, whose random
// factors make every envelope loose: the descent burns its bound budget,
// falls back to deferred dense ranges, and must cost at most ~5% over the
// plain sweep (the ≥0.95 floor). Both pruned plans return pages
// byte-identical to their dense partners — the property suites in
// internal/infer pin that; these benches pin what the exactness costs.

import (
	"context"
	"testing"

	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// benchSkewedWorld builds the pruning-friendly regime: 50k items under
// {16, 128} category levels, with one level-1 subtree's bias offset
// raised far above the rest so the top-k lives entirely inside it.
func benchSkewedWorld(b *testing.B) (*model.Composed, []float64) {
	b.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{16, 128},
		Items:          50000,
		Skew:           0.3,
	}, vecmath.NewRNG(4242))
	m, err := model.New(tree, 10, model.Params{K: 32, TaxonomyLevels: 3, Alpha: 1, InitStd: 0.05, UseBias: true}, vecmath.NewRNG(4243))
	if err != nil {
		b.Fatal(err)
	}
	level1 := tree.Level(1)
	for i, node := range level1 {
		off := -5.0
		if i == 0 {
			off = 5.0
		}
		m.Bias.Row(int(node))[0] = off
	}
	c := m.Compose()
	rng := vecmath.NewRNG(4244)
	q := make([]float64, c.K())
	for i := range q {
		q[i] = 0.1 * rng.NormFloat64()
	}
	return c, q
}

func benchExecPlan(b *testing.B, c *model.Composed, q []float64, pl infer.Plan) {
	b.Helper()
	st := vecmath.NewTopKStream(pl.K)
	if _, err := infer.ExecuteInto(context.Background(), c, q, pl, st); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infer.ExecuteInto(context.Background(), c, q, pl, st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopKSkewedDense is the full dense sweep of the skewed world —
// the "slow" side of the gated ≥2x pruning pair.
func BenchmarkTopKSkewedDense(b *testing.B) {
	c, q := benchSkewedWorld(b)
	benchExecPlan(b, c, q, infer.Plan{K: 10, MaxWorkers: 1})
}

// BenchmarkTopKSkewedPruned is the branch-and-bound descent on the same
// world and query; byte-identical page, ~94% of the catalog unread.
func BenchmarkTopKSkewedPruned(b *testing.B) {
	c, q := benchSkewedWorld(b)
	benchExecPlan(b, c, q, infer.Plan{K: 10, MaxWorkers: 1, Pruned: true})
}

// BenchmarkTopKUniformDense is the dense sweep of the loose-envelope wide
// world — the reference the fallback overhead is measured against.
func BenchmarkTopKUniformDense(b *testing.B) {
	c, q := benchWideWorld(b)
	benchExecPlan(b, c, q, infer.Plan{K: 10, MaxWorkers: 1})
}

// BenchmarkTopKUniformPruned is the descent on a world where pruning
// never pays: it must degrade into the dense sweep within the ≥0.95
// ratio floor (≤ ~5% overhead for bounds, the seed pass and the queue).
func BenchmarkTopKUniformPruned(b *testing.B) {
	c, q := benchWideWorld(b)
	benchExecPlan(b, c, q, infer.Plan{K: 10, MaxWorkers: 1, Pruned: true})
}
