package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"time"

	"repro/internal/api"
	"repro/internal/infer"
	"repro/internal/serve"
)

// cachedResult is one merged ranking in the router's result cache: the
// paged items plus the model content they were computed against.
// Degraded responses are never cached — a shard coming back must not
// leave stale partial pages behind.
type cachedResult struct {
	items   []api.Item
	modelID string
}

// HTTP is the router's serving layer. It exposes exactly the endpoint
// surface of a single tfrec-serve node — the unified plan route, the
// four deprecated per-shape adapters (same Deprecation/Link headers,
// same legacy counter), /v1/stats and /healthz — so clients, load
// generators and dashboards cannot tell a router from a node without
// reading the stats body.
type HTTP struct {
	r       *Router
	adm     *serve.Admission
	cache   *serve.VersionedCache[cachedResult]
	maxBody int64
}

// NewHTTP wraps a Router in its HTTP serving layer, arming the edge
// stack the Config asked for.
func NewHTTP(r *Router) *HTTP {
	h := &HTTP{r: r, maxBody: serve.DefaultMaxBodyBytes}
	if r.cfg.MaxBody > 0 {
		h.maxBody = r.cfg.MaxBody
	}
	if r.cfg.MaxInflight > 0 {
		h.adm = serve.NewAdmission(r.cfg.MaxInflight, 2*r.cfg.MaxInflight, r.cfg.QueueWait)
	}
	if r.cfg.CacheSize > 0 {
		h.cache = serve.NewVersionedCache[cachedResult](r.cfg.CacheSize, nil)
	}
	return h
}

// Handler returns the route table.
func (h *HTTP) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, ep := range []api.Endpoint{
		api.EndpointUnified, api.EndpointUser, api.EndpointSession,
		api.EndpointCascade, api.EndpointDiversified,
	} {
		mux.HandleFunc("POST "+ep.Path(), h.recommend(ep))
	}
	mux.HandleFunc("GET /v1/stats", h.stats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.Handle("/", api.NotFoundHandler())
	return mux
}

// foldQuery applies the result-affecting query parameters into the wire
// request — the same override semantics, spellings and error messages
// as a single node's queryParams — and returns the remaining parameters
// re-encoded for pass-through to the shards. Folding matters for two
// reasons: the folded fields join the cache key (a ?category= filter
// must not share an entry with the unfiltered request), and the offset
// must be absorbed before the scatter rewrite zeroes it (a forwarded
// ?offset= would re-paginate every shard). Execution knobs (workers,
// precision, pruned) pass through untouched — they are result-neutral
// and each shard applies its own.
func foldQuery(q url.Values, wr *api.RecommendRequest) (string, error) {
	if es := q.Get("exclude_purchased"); es != "" {
		v, err := strconv.ParseBool(es)
		if err != nil {
			return "", fmt.Errorf("bad exclude_purchased parameter %q", es)
		}
		wr.ExcludePurchased = v
	}
	if cs := q.Get("category"); cs != "" {
		nodes, err := infer.ParseIDList(cs)
		if err != nil {
			return "", fmt.Errorf("bad category parameter %q", cs)
		}
		wr.Categories = nodes
	}
	if cs := q.Get("exclude_category"); cs != "" {
		nodes, err := infer.ParseIDList(cs)
		if err != nil {
			return "", fmt.Errorf("bad exclude_category parameter %q", cs)
		}
		wr.ExcludeCategories = nodes
	}
	if os := q.Get("offset"); os != "" {
		n, err := strconv.Atoi(os)
		if err != nil || n < 0 {
			return "", fmt.Errorf("bad offset parameter %q", os)
		}
		wr.Offset = n
	}
	for _, folded := range []string{"exclude_purchased", "category", "exclude_category", "offset"} {
		q.Del(folded)
	}
	return q.Encode(), nil
}

func (h *HTTP) recommend(ep api.Endpoint) http.HandlerFunc {
	legacy := ep != api.EndpointUnified
	return func(w http.ResponseWriter, r *http.Request) {
		if legacy {
			h.r.legacy.Add(1)
			w.Header().Set("Deprecation", serve.DeprecationDate)
			w.Header().Set("Link", serve.SuccessorLink)
		}
		ctx := r.Context()
		if h.r.cfg.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, h.r.cfg.Timeout)
			defer cancel()
		}
		if h.adm != nil {
			release, code := h.adm.Acquire(ctx)
			if release == nil {
				h.r.shed.Add(1)
				api.WriteError(w, api.ErrorDetail{Code: code, Message: "router overloaded, retry later", RetryAfter: 1})
				return
			}
			defer release()
		}
		r.Body = http.MaxBytesReader(w, r.Body, h.maxBody)
		var wr api.RecommendRequest
		if err := json.NewDecoder(r.Body).Decode(&wr); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				h.fail(w, api.CodeBodyTooLarge, fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
				return
			}
			h.fail(w, api.CodeBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		wr.RewriteLegacy(ep)
		passQuery, err := foldQuery(r.URL.Query(), &wr)
		if err != nil {
			h.fail(w, api.CodeBadRequest, err)
			return
		}
		t := h.r.topo.Load()
		// reject what every shard would reject before paying the fan-out —
		// wording identical to a single node's validation, because error
		// envelopes are part of the byte-identity contract too; anything
		// subtler (unknown user, bad strategy, bad keep_frac) the shards
		// validate and the router propagates verbatim. The K/Offset bounds
		// must run here regardless: the scatter rewrite clamps k' to the
		// catalog, so the shards would never see the oversized original.
		if wr.K <= 0 {
			h.fail(w, api.CodeBadRequest, fmt.Errorf("serve: K must be positive, got %d", wr.K))
			return
		}
		if wr.K > t.model.Items {
			h.fail(w, api.CodeBadRequest, fmt.Errorf("serve: K %d exceeds the catalog size %d", wr.K, t.model.Items))
			return
		}
		if wr.Offset < 0 {
			h.fail(w, api.CodeBadRequest, fmt.Errorf("serve: offset must be non-negative, got %d", wr.Offset))
			return
		}
		if wr.Offset > t.model.Items {
			h.fail(w, api.CodeBadRequest, fmt.Errorf("serve: offset %d beyond the catalog size %d", wr.Offset, t.model.Items))
			return
		}

		var key string
		cacheEpoch, cacheID, cacheable := t.cacheVersion()
		cacheable = cacheable && h.cache != nil
		if cacheable {
			key = cacheKey(wr)
			// the cache version is the minimum epoch across the shard set:
			// the instant the router sees a response (or a Refresh) from a
			// reloaded shard, the minimum rises and every merged entry
			// stamped under the old one reads as stale. The model-id gate
			// covers the rolling-reload windows the scalar cannot: while
			// the tracked fingerprints disagree the cache is bypassed, and
			// an entry whose fingerprint is not the agreed one is a miss.
			if v, ok := h.cache.Get(cacheEpoch, key); ok && v.modelID == cacheID {
				h.r.cacheHits.Add(1)
				h.r.requests.Add(1)
				h.writeJSON(w, api.RecommendResponse{Items: v.items, Epoch: cacheEpoch, ModelID: v.modelID})
				return
			}
		}
		resp, errDetail := h.r.route(ctx, t, wr, passQuery)
		if errDetail != nil {
			h.r.errors.Add(1)
			api.WriteError(w, *errDetail)
			return
		}
		if cacheable && !resp.Degraded {
			h.cache.Put(resp.Epoch, key, cachedResult{items: resp.Items, modelID: resp.ModelID})
		}
		h.r.requests.Add(1)
		h.writeJSON(w, resp)
	}
}

func (h *HTTP) fail(w http.ResponseWriter, code api.Code, err error) {
	h.r.errors.Add(1)
	api.WriteError(w, api.ErrorDetail{Code: code, Message: err.Error()})
}

func (h *HTTP) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		h.r.errors.Add(1)
	}
}

func (h *HTTP) stats(w http.ResponseWriter, r *http.Request) {
	t := h.r.topo.Load()
	out := api.RouterStats{
		Model:            t.model,
		Shards:           make([]api.ShardStats, len(t.shards)),
		DeadlineExceeded: h.r.deadlines.Load(),
		TimeoutMS:        h.r.cfg.Timeout.Milliseconds(),
		Goroutines:       runtime.NumGoroutine(),
		UptimeSeconds:    time.Since(h.r.start).Seconds(),
	}
	out.Model.Epoch = t.minEpoch()
	out.Model.ModelID = t.shards[0].getModelID()
	for i, sh := range t.shards {
		out.Shards[i] = api.ShardStats{
			URL:       sh.url,
			ItemRange: sh.rng,
			Epoch:     sh.epoch.Load(),
			ModelID:   sh.getModelID(),
			Healthy:   sh.healthy.Load(),
			Requests:  sh.requests.Load(),
			Errors:    sh.errors.Load(),
			Hedges:    sh.hedges.Load(),
			HedgeWins: sh.hedgeWins.Load(),
		}
	}
	mode := "shed"
	if h.r.cfg.DegradedPartial {
		mode = "partial"
	}
	out.Router = api.RouterCounters{
		Requests:      h.r.requests.Load(),
		Errors:        h.r.errors.Load(),
		Degraded:      h.r.degraded.Load(),
		Shed:          h.r.shed.Load(),
		Hedges:        h.r.hedges.Load(),
		HedgeWins:     h.r.hedgeWins.Load(),
		EpochMismatch: h.r.epochMismatch.Load(),
		Legacy:        h.r.legacy.Load(),
		CacheHits:     h.r.cacheHits.Load(),
		HedgeDelayMS:  h.r.cfg.HedgeDelay.Milliseconds(),
		DegradedMode:  mode,
	}
	if h.cache != nil {
		cs := h.cache.Stats()
		// the version that matters is the shard-set minimum, not the
		// cache's unused internal counter
		cs.Epoch = t.minEpoch()
		out.Cache = &cs
	}
	if h.adm != nil {
		as := h.adm.Stats()
		out.Admission = &as
	}
	h.writeJSON(w, out)
}
