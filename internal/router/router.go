// Package router implements the scatter-gather front of a sharded
// serving topology: one tfrec-router process fans each recommend
// request out to N tfrec-serve backends, each running in shard mode
// (-item-range) over a contiguous slice of the item catalog, and merges
// the per-shard rankings into a response that is byte-identical to what
// a single full-catalog node would have served.
//
// The byte-identity rests on three properties the rest of the stack
// already pins:
//
//   - a shard's top-k' over its range is exactly the restriction of the
//     global ranking to that range (the range mask is an eligibility
//     filter; filters never reorder survivors);
//   - vecmath.TopKStream's merge of bounded heaps equals one serial
//     stream over the union (the same lemma the in-process parallel
//     sweep relies on), so re-merging shard heaps under the identical
//     score-then-lower-ID order reproduces the global heap; and
//   - scores travel as JSON float64 and Go's encoder writes the shortest
//     round-tripping decimal, so parse→merge→re-encode preserves bytes.
//
// Diversified rankings need more than the plain heap merge — a
// per-category quota is not preserved by restriction — so shards
// annotate each item with its quota category and the router re-applies
// the exact per-category bounded-heap selection of
// infer.executeDiversified over the returned union (see merge.go for
// the argument that shard pages of size K+Offset suffice).
//
// On top of the merge the router runs the same edge stack as a single
// node — admission control, per-request deadlines, and a versioned
// result cache keyed on the MINIMUM epoch across the shard set — plus
// topology-specific concerns: hedged shard requests, per-request model
// identity checks (a mid-reload topology never mixes snapshots), and a
// configurable degraded mode when a shard is down (shed 503s, or serve
// the reachable part of the catalog marked "degraded").
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
)

// Config carries a Router's construction parameters.
type Config struct {
	// Shards lists the backend base URLs (for example
	// "http://127.0.0.1:9001"). Order is irrelevant; the topology is
	// ordered by each shard's reported item range.
	Shards []string
	// HedgeDelay, when positive, re-sends a shard request that has not
	// answered within the delay and takes whichever copy responds first.
	HedgeDelay time.Duration
	// Timeout bounds each router request end to end (0 = unbounded).
	Timeout time.Duration
	// DegradedPartial picks the policy when a shard is unreachable:
	// false sheds the request with 503 shard_unavailable; true serves
	// the reachable shards' merge with "degraded":true.
	DegradedPartial bool
	// CacheSize is the merged-result cache capacity in entries (0 = off).
	CacheSize int
	// MaxInflight arms admission control (0 = unlimited); QueueWait is
	// how long an excess request may wait for a slot.
	MaxInflight int
	QueueWait   time.Duration
	// MaxBody bounds request bodies in bytes (0 = 1MiB default).
	MaxBody int64
	// Client is the HTTP client for shard traffic (nil = a pooled
	// default sized for the fan-out).
	Client *http.Client
}

// shard is one backend in the topology: its address, the catalog range
// it owns, and live state the router learns from its responses.
type shard struct {
	url string
	rng api.ItemRange

	// epoch is the shard's last reported snapshot generation; the
	// minimum across shards versions the router's result cache. modelID
	// is its last reported content fingerprint.
	epoch   atomic.Uint64
	modelID atomic.Pointer[string]
	healthy atomic.Bool

	requests  atomic.Int64
	errors    atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
}

func (s *shard) setModelID(id string) { s.modelID.Store(&id) }

func (s *shard) getModelID() string {
	if p := s.modelID.Load(); p != nil {
		return *p
	}
	return ""
}

// topology is an immutable view of the shard set: the shards ordered by
// range plus the catalog shape they agreed on at refresh time. Requests
// load it once and work against that snapshot, so a concurrent Refresh
// can never hand one request two different shard sets.
type topology struct {
	shards []*shard
	model  api.StatsModel // sample shape: users/items/nodes/depth/k/...
}

// Router is the scatter-gather core; NewHTTP wraps it in the HTTP
// serving layer.
type Router struct {
	cfg    Config
	client *http.Client
	topo   atomic.Pointer[topology]

	requests      atomic.Int64
	errors        atomic.Int64
	degraded      atomic.Int64
	shed          atomic.Int64
	hedges        atomic.Int64
	hedgeWins     atomic.Int64
	epochMismatch atomic.Int64
	legacy        atomic.Int64
	cacheHits     atomic.Int64
	deadlines     atomic.Int64

	start time.Time
}

// New builds a Router and performs the initial topology bootstrap: every
// shard must be reachable, report an item range, and the ranges must
// tile the catalog exactly. Construction fails otherwise — a router that
// cannot cover the catalog has nothing correct to serve.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("router: no shards configured")
	}
	client := cfg.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 64
		client = &http.Client{Transport: tr}
	}
	r := &Router{cfg: cfg, client: client, start: time.Now()}
	if err := r.Refresh(context.Background()); err != nil {
		return nil, err
	}
	return r, nil
}

// Refresh re-reads every shard's /v1/stats and installs a fresh
// topology. It validates the invariants the merge depends on: every
// shard runs in shard mode, all shards serve the same model content,
// and the ranges tile [0, items) contiguously with no gap or overlap.
// On error the previous topology (if any) stays installed.
func (r *Router) Refresh(ctx context.Context) error {
	type probe struct {
		url   string
		stats api.Stats
		err   error
	}
	probes := make([]probe, len(r.cfg.Shards))
	var wg sync.WaitGroup
	for i, u := range r.cfg.Shards {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			probes[i] = probe{url: u}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, u+"/v1/stats", nil)
			if err != nil {
				probes[i].err = err
				return
			}
			resp, err := r.client.Do(req)
			if err != nil {
				probes[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				probes[i].err = fmt.Errorf("stats returned %s", resp.Status)
				return
			}
			probes[i].err = json.NewDecoder(resp.Body).Decode(&probes[i].stats)
		}(i, u)
	}
	wg.Wait()

	shards := make([]*shard, 0, len(probes))
	var model api.StatsModel
	for i, p := range probes {
		if p.err != nil {
			return fmt.Errorf("router: shard %s: %w", p.url, p.err)
		}
		m := p.stats.Model
		if m.ItemRange == nil {
			return fmt.Errorf("router: shard %s is not in shard mode (no item_range in /v1/stats; start it with -item-range)", p.url)
		}
		if i == 0 {
			model = m
		} else if m.ModelID != model.ModelID {
			return fmt.Errorf("router: shard %s serves model %s but %s serves %s; topology must agree before routing",
				p.url, m.ModelID, probes[0].url, model.ModelID)
		} else if m.Items != model.Items {
			return fmt.Errorf("router: shard %s reports %d catalog items, %s reports %d",
				p.url, m.Items, probes[0].url, model.Items)
		}
		sh := &shard{url: p.url, rng: *m.ItemRange}
		sh.epoch.Store(m.Epoch)
		sh.setModelID(m.ModelID)
		sh.healthy.Store(true)
		shards = append(shards, sh)
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i].rng.Lo < shards[j].rng.Lo })
	at := 0
	for _, sh := range shards {
		if sh.rng.Lo != at {
			return fmt.Errorf("router: shard ranges do not tile the catalog: gap or overlap at item %d (shard %s owns %s)", at, sh.url, sh.rng)
		}
		at = sh.rng.Hi
	}
	if at != model.Items {
		return fmt.Errorf("router: shard ranges cover [0,%d) but the catalog has %d items", at, model.Items)
	}
	model.ItemRange = nil // the router serves the whole catalog
	r.topo.Store(&topology{shards: shards, model: model})
	return nil
}

// minEpoch is the epoch the whole merged catalog is guaranteed current
// at: the minimum last-seen snapshot generation across the shard set.
// Any shard reload raises it, invalidating every cached merged result
// stamped under the old minimum.
func (t *topology) minEpoch() uint64 {
	min := t.shards[0].epoch.Load()
	for _, sh := range t.shards[1:] {
		if e := sh.epoch.Load(); e < min {
			min = e
		}
	}
	return min
}

// cacheVersion is the result cache's validity check: the minimum
// last-seen epoch plus the model fingerprint the shard set agrees on.
// ok is false while the tracked fingerprints disagree — a rolling
// reload observed in progress — during which cached merges may not be
// served at all: the epoch scalar alone cannot tell "nothing changed"
// from "one shard changed and the others' reloads are still unseen".
func (t *topology) cacheVersion() (epoch uint64, modelID string, ok bool) {
	modelID = t.shards[0].getModelID()
	epoch = t.shards[0].epoch.Load()
	for _, sh := range t.shards[1:] {
		if sh.getModelID() != modelID {
			return 0, "", false
		}
		if e := sh.epoch.Load(); e < epoch {
			epoch = e
		}
	}
	return epoch, modelID, true
}

// shardResult is one backend's answer to a scattered request. Exactly
// one of ok/clientErr/err describes the outcome: a merged 2xx body, a
// 4xx the router propagates verbatim (the request is bad on every
// shard), or an availability failure (transport error or 5xx) that
// triggers the degraded policy.
type shardResult struct {
	sh        *shard
	ok        *api.RecommendResponse
	clientErr *api.ErrorDetail
	err       error
	hedged    bool // answered by the hedge copy, not the primary
}

// scatter fans body out to every shard of the topology concurrently and
// waits for all outcomes. rawQuery is appended to each shard URL — the
// pass-through knobs (workers, precision, pruned) ride it; the
// result-affecting parameters were already folded into body.
func (r *Router) scatter(ctx context.Context, t *topology, body []byte, rawQuery string) []shardResult {
	results := make([]shardResult, len(t.shards))
	var wg sync.WaitGroup
	for i, sh := range t.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			results[i] = r.askShard(ctx, sh, body, rawQuery)
		}(i, sh)
	}
	wg.Wait()
	return results
}

// askShard sends one shard its copy of the request, hedging with a
// second identical copy if the first has not answered within the
// configured delay. First response wins — but a failed first response
// waits for the outstanding copy rather than failing the shard, which
// is the point of hedging: one slow or dying connection must not take
// the whole catalog slice with it.
func (r *Router) askShard(ctx context.Context, sh *shard, body []byte, rawQuery string) shardResult {
	sh.requests.Add(1)
	if r.cfg.HedgeDelay <= 0 {
		res := r.post(ctx, sh, body, rawQuery)
		r.account(&res)
		return res
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // reels in whichever copy lost
	ch := make(chan shardResult, 2)
	send := func(hedged bool) {
		res := r.post(ctx, sh, body, rawQuery)
		res.hedged = hedged
		ch <- res
	}
	go send(false)
	timer := time.NewTimer(r.cfg.HedgeDelay)
	defer timer.Stop()
	var res shardResult
	select {
	case res = <-ch:
	case <-timer.C:
		sh.hedges.Add(1)
		r.hedges.Add(1)
		go send(true)
		res = <-ch
		if res.err != nil {
			// the first finisher failed; the other copy is still in
			// flight and may yet save the shard
			if second := <-ch; second.err == nil {
				res = second
			}
		}
		if res.err == nil && res.hedged {
			sh.hedgeWins.Add(1)
			r.hedgeWins.Add(1)
		}
	}
	r.account(&res)
	return res
}

// account folds one outcome into the shard's health and error state. A
// 4xx leaves the shard healthy — the request was bad, not the backend.
func (r *Router) account(res *shardResult) {
	if res.err != nil {
		res.sh.errors.Add(1)
		res.sh.healthy.Store(false)
		return
	}
	res.sh.healthy.Store(true)
	if res.ok != nil {
		res.sh.epoch.Store(res.ok.Epoch)
		res.sh.setModelID(res.ok.ModelID)
	}
}

// post performs one HTTP exchange with a shard and classifies the
// outcome. 2xx parses as a ranking, 4xx as a propagatable client error,
// and everything else — transport failure or a 5xx (including a shard's
// own load shedding) — as shard unavailability.
func (r *Router) post(ctx context.Context, sh *shard, body []byte, rawQuery string) shardResult {
	res := shardResult{sh: sh}
	u := sh.url + api.EndpointUnified.Path()
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		res.err = err
		return res
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		res.err = err
		return res
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode < 300:
		var out api.RecommendResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			res.err = fmt.Errorf("shard %s: bad response body: %w", sh.url, err)
			return res
		}
		res.ok = &out
	case resp.StatusCode < 500:
		var eb api.ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Err.Code == "" {
			res.clientErr = &api.ErrorDetail{Code: api.CodeBadRequest, Message: fmt.Sprintf("shard rejected the request with %s", resp.Status)}
		} else {
			res.clientErr = &eb.Err
		}
	default:
		res.err = fmt.Errorf("shard %s answered %s", sh.url, resp.Status)
	}
	return res
}
