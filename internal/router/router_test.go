package router

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/taxonomy"
	"repro/internal/train"
	"repro/internal/vecmath"
)

// trainedModel trains one small model for the whole test binary: every
// topology in these tests serves the same content, which is exactly the
// invariant a real sharded deployment holds.
var trainedModel = sync.OnceValues(func() (*model.TF, *dataset.Dataset) {
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{3, 9, 27},
		Items:          270,
		Skew:           0.4,
	}, vecmath.NewRNG(61))
	cfg := synth.DefaultConfig()
	cfg.Users = 300
	data, _, err := synth.Generate(tree, cfg)
	if err != nil {
		panic(err)
	}
	p := model.Params{K: 8, TaxonomyLevels: 4, MarkovOrder: 1, Alpha: 1, InitStd: 0.01}
	m, err := model.New(tree, data.NumUsers(), p, vecmath.NewRNG(62))
	if err != nil {
		panic(err)
	}
	tc := train.DefaultConfig()
	tc.Epochs = 8
	if _, err := train.Train(m, data, tc); err != nil {
		panic(err)
	}
	return m, data
})

// altModel is a second, differently-initialized model — same shapes,
// different content — for the snapshot-mixing tests.
var altModel = sync.OnceValue(func() *model.TF {
	_, data := trainedModel()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{3, 9, 27},
		Items:          270,
		Skew:           0.4,
	}, vecmath.NewRNG(61))
	p := model.Params{K: 8, TaxonomyLevels: 4, MarkovOrder: 1, Alpha: 1, InitStd: 0.01}
	m, err := model.New(tree, data.NumUsers(), p, vecmath.NewRNG(99))
	if err != nil {
		panic(err)
	}
	tc := train.DefaultConfig()
	tc.Epochs = 2
	if _, err := train.Train(m, data, tc); err != nil {
		panic(err)
	}
	return m
})

// topologyUnderTest is one router in front of len(splits) shard servers,
// plus a single full-catalog control node serving the same model.
type topologyUnderTest struct {
	control *httptest.Server
	shards  []*httptest.Server
	// setModel[i] hot-swaps shard i's snapshot to a new model — the
	// SIGHUP path, for the snapshot-mixing tests.
	setModel []func(*model.TF) error
	router   *Router
	front    *httptest.Server
}

func (tp *topologyUnderTest) close() {
	tp.front.Close()
	tp.control.Close()
	for _, s := range tp.shards {
		s.Close()
	}
}

func newTopology(t *testing.T, splits []api.ItemRange, cfg Config) *topologyUnderTest {
	t.Helper()
	m, _ := trainedModel()
	tp := &topologyUnderTest{}
	tp.control = httptest.NewServer(serve.NewHTTP(serve.New(m), nil).Handler())
	for _, rng := range splits {
		var next atomic.Pointer[model.TF]
		h := serve.NewHTTP(serve.New(m, serve.WithItemRange(rng.Lo, rng.Hi)),
			func() (*model.TF, error) { return next.Load(), nil })
		tp.setModel = append(tp.setModel, func(m2 *model.TF) error {
			next.Store(m2)
			return h.Reload()
		})
		tp.shards = append(tp.shards, httptest.NewServer(h.Handler()))
		cfg.Shards = append(cfg.Shards, tp.shards[len(tp.shards)-1].URL)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tp.router = rt
	tp.front = httptest.NewServer(NewHTTP(rt).Handler())
	return tp
}

// randomSplits cuts [0, items) into 1-4 contiguous shard ranges at
// random boundaries.
func randomSplits(rng *rand.Rand, items int) []api.ItemRange {
	n := 1 + rng.Intn(4)
	cuts := map[int]bool{}
	for len(cuts) < n-1 {
		cuts[1+rng.Intn(items-1)] = true
	}
	bounds := []int{0}
	for c := range cuts {
		bounds = append(bounds, c)
	}
	bounds = append(bounds, items)
	// map iteration order is random; sort the boundaries
	for i := range bounds {
		for j := i + 1; j < len(bounds); j++ {
			if bounds[j] < bounds[i] {
				bounds[i], bounds[j] = bounds[j], bounds[i]
			}
		}
	}
	out := make([]api.ItemRange, n)
	for i := 0; i < n; i++ {
		out[i] = api.ItemRange{Lo: bounds[i], Hi: bounds[i+1]}
	}
	return out
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// The tentpole property: a router over ANY contiguous sharding of the
// catalog answers every request with the byte-identical response of a
// single full-catalog node — status, items, scores, tie-breaks, epoch,
// fingerprint, every JSON byte — across strategies, filters, precision
// overrides, pagination and the branch-and-bound engine.
func TestRouterByteIdenticalToSingleNode(t *testing.T) {
	requests := []struct {
		path, query, body string
	}{
		{"/v1/recommend", "", `{"user":3,"k":10}`},
		{"/v1/recommend", "", `{"user":7,"k":25,"offset":13}`},
		{"/v1/recommend", "", `{"user":-1,"k":10,"recent":[[5,9],[12]]}`},
		{"/v1/recommend", "", `{"user":11,"k":500}`}, // K past the catalog
		{"/v1/recommend", "", `{"user":4,"k":12,"strategy":"cascade","keep":3}`},
		{"/v1/recommend", "", `{"user":4,"k":12,"strategy":"cascade","keep_frac":[1,0.5,0.3,0.2]}`},
		{"/v1/recommend", "", `{"user":5,"k":15,"strategy":"diversified","max_per_category":2}`},
		{"/v1/recommend", "", `{"user":5,"k":30,"strategy":"diversified","max_per_category":1,"cat_depth":1,"offset":4}`},
		{"/v1/recommend", "", `{"user":6,"k":10,"categories":[1],"recent":[[3,4]]}`},
		{"/v1/recommend", "", `{"user":6,"k":10,"exclude_categories":[2]}`},
		{"/v1/recommend", "?precision=int8", `{"user":8,"k":9}`},
		{"/v1/recommend", "?pruned=true", `{"user":9,"k":9}`},
		{"/v1/recommend", "?offset=6&category=1,3", `{"user":10,"k":8}`},
		{"/v1/recommend", "", `{"user":99999,"k":5}`}, // shard 400, propagated verbatim
		{"/v1/recommend/user", "", `{"user":13,"k":7}`},
		{"/v1/recommend/session", "", `{"k":7,"recent":[[20,21,22]]}`},
		{"/v1/recommend/cascade", "", `{"user":14,"k":7,"keep":4}`},
		{"/v1/recommend/diversified", "", `{"user":15,"k":14,"max_per_category":3}`},
	}
	const items = 270 // the trainedModel taxonomy's catalog size
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		splits := randomSplits(rng, items)
		t.Run(fmt.Sprintf("split=%v", splits), func(t *testing.T) {
			tp := newTopology(t, splits, Config{})
			defer tp.close()
			for _, rq := range requests {
				wantCode, want := post(t, tp.control.URL+rq.path+rq.query, rq.body)
				gotCode, got := post(t, tp.front.URL+rq.path+rq.query, rq.body)
				if gotCode != wantCode || got != want {
					t.Errorf("%s%s %s:\nrouter (%d): %s\nsingle (%d): %s",
						rq.path, rq.query, rq.body, gotCode, got, wantCode, want)
				}
			}
		})
	}
}

// The legacy per-shape routes must answer through the router with the
// same deprecation headers a single node sends.
func TestRouterLegacyHeaders(t *testing.T) {
	tp := newTopology(t, []api.ItemRange{{Lo: 0, Hi: 100}, {Lo: 100, Hi: 270}}, Config{})
	defer tp.close()
	resp, err := http.Post(tp.front.URL+"/v1/recommend/user", "application/json",
		strings.NewReader(`{"user":3,"k":5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Deprecation"); got != serve.DeprecationDate {
		t.Fatalf("Deprecation header %q, want %q", got, serve.DeprecationDate)
	}
	if got := resp.Header.Get("Link"); got != serve.SuccessorLink {
		t.Fatalf("Link header %q, want %q", got, serve.SuccessorLink)
	}
	var rs api.RouterStats
	statsResp, err := http.Get(tp.front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	if err := json.NewDecoder(statsResp.Body).Decode(&rs); err != nil {
		t.Fatal(err)
	}
	if rs.Router.Legacy != 1 {
		t.Fatalf("legacy_requests = %d, want 1", rs.Router.Legacy)
	}
	if rs.Model.Items != 270 || len(rs.Shards) != 2 {
		t.Fatalf("stats model/shards wrong: %+v", rs)
	}
}

// A dead shard must degrade per policy: shed everything with a typed
// 503, or serve the reachable ranges marked degraded — never a hard
// error, never a silently wrong full ranking.
func TestRouterDegradedModes(t *testing.T) {
	splits := []api.ItemRange{{Lo: 0, Hi: 90}, {Lo: 90, Hi: 180}, {Lo: 180, Hi: 270}}
	for _, mode := range []string{"shed", "partial"} {
		t.Run(mode, func(t *testing.T) {
			tp := newTopology(t, splits, Config{DegradedPartial: mode == "partial"})
			defer tp.close()
			_, healthy := post(t, tp.front.URL+"/v1/recommend", `{"user":3,"k":270}`)
			tp.shards[1].Close() // kill the middle range

			code, body := post(t, tp.front.URL+"/v1/recommend", `{"user":3,"k":270}`)
			if mode == "shed" {
				if code != http.StatusServiceUnavailable {
					t.Fatalf("status %d, want 503", code)
				}
				var eb api.ErrorBody
				if err := json.Unmarshal([]byte(body), &eb); err != nil {
					t.Fatal(err)
				}
				if eb.Err.Code != api.CodeShardUnavailable {
					t.Fatalf("code %q, want shard_unavailable", eb.Err.Code)
				}
				return
			}
			if code != http.StatusOK {
				t.Fatalf("status %d, want 200: %s", code, body)
			}
			var full, part api.RecommendResponse
			if err := json.Unmarshal([]byte(healthy), &full); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal([]byte(body), &part); err != nil {
				t.Fatal(err)
			}
			if !part.Degraded {
				t.Fatal("partial response not marked degraded")
			}
			if len(part.Items) != 180 {
				t.Fatalf("partial ranking has %d items, want the 180 reachable", len(part.Items))
			}
			for _, it := range part.Items {
				if it.Item >= 90 && it.Item < 180 {
					t.Fatalf("item %d from the dead shard's range in a degraded ranking", it.Item)
				}
			}
			// the degraded ranking must be the full ranking minus the dead
			// range — relative order preserved
			kept := full.Items[:0:0]
			for _, it := range full.Items {
				if it.Item < 90 || it.Item >= 180 {
					kept = append(kept, it)
				}
			}
			for i := range kept {
				if kept[i] != part.Items[i] {
					t.Fatalf("degraded ranking diverged at %d: %+v vs %+v", i, part.Items[i], kept[i])
				}
			}
		})
	}
}

// Mid-reload, shards briefly serve different snapshots; the router must
// refuse to merge them (typed 503), then recover — and drop its cache —
// once the topology converges on the new content.
func TestRouterSnapshotMixing(t *testing.T) {
	splits := []api.ItemRange{{Lo: 0, Hi: 135}, {Lo: 135, Hi: 270}}
	tp := newTopology(t, splits, Config{CacheSize: 64})
	defer tp.close()
	m2 := altModel()

	body := `{"user":3,"k":10}`
	_, first := post(t, tp.front.URL+"/v1/recommend", body)
	code, cached := post(t, tp.front.URL+"/v1/recommend", body)
	if code != http.StatusOK || cached != first {
		t.Fatalf("cache replay diverged: %s vs %s", cached, first)
	}
	var rs api.RouterStats
	decodeStats(t, tp.front.URL, &rs)
	if rs.Router.CacheHits != 1 {
		t.Fatalf("cache_hits = %d, want 1", rs.Router.CacheHits)
	}

	// reload only shard 0 with different content: merges must refuse
	if err := tp.setModel[0](m2); err != nil {
		t.Fatal(err)
	}
	code, body503 := post(t, tp.front.URL+"/v1/recommend", `{"user":4,"k":10}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("mixed-snapshot merge answered %d: %s", code, body503)
	}
	var eb api.ErrorBody
	if err := json.Unmarshal([]byte(body503), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Err.Code != api.CodeEpochMismatch {
		t.Fatalf("code %q, want epoch_mismatch", eb.Err.Code)
	}

	// converge shard 1 too: serving resumes on the new model, and the
	// old cache entry must NOT replay (its stamp is below the new min)
	if err := tp.setModel[1](m2); err != nil {
		t.Fatal(err)
	}
	code, after := post(t, tp.front.URL+"/v1/recommend", body)
	if code != http.StatusOK {
		t.Fatalf("converged topology answered %d: %s", code, after)
	}
	if after == first {
		t.Fatal("stale cached ranking replayed after both shards reloaded")
	}
	decodeStats(t, tp.front.URL, &rs)
	if rs.Router.EpochMismatch != 1 {
		t.Fatalf("epoch_mismatch = %d, want 1", rs.Router.EpochMismatch)
	}
	if rs.Model.Epoch != 1 {
		t.Fatalf("model epoch %d, want min across shards = 1 after one swap each", rs.Model.Epoch)
	}
}

func decodeStats(t *testing.T, frontURL string, rs *api.RouterStats) {
	t.Helper()
	resp, err := http.Get(frontURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(rs); err != nil {
		t.Fatal(err)
	}
}

// stubShard is a canned backend for the hedging tests: full control
// over latency without a real model.
func stubShard(rng api.ItemRange, items []api.Item, slowFirst time.Duration) *httptest.Server {
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.Stats{Model: api.StatsModel{
			Items: 270, Epoch: 1, ModelID: "stub", ItemRange: &rng,
		}})
	})
	mux.HandleFunc("POST /v1/recommend", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 && slowFirst > 0 {
			time.Sleep(slowFirst)
		}
		json.NewEncoder(w).Encode(api.RecommendResponse{Items: items, Epoch: 1, ModelID: "stub"})
	})
	return httptest.NewServer(mux)
}

// A shard sitting on a request past the hedge delay gets a second copy,
// and the first answer wins — the slow primary must not set the
// request's latency floor.
func TestRouterHedging(t *testing.T) {
	a := stubShard(api.ItemRange{Lo: 0, Hi: 135},
		[]api.Item{{Item: 1, Score: 5}}, 2*time.Second)
	defer a.Close()
	b := stubShard(api.ItemRange{Lo: 135, Hi: 270},
		[]api.Item{{Item: 200, Score: 7}}, 0)
	defer b.Close()
	rt, err := New(Config{Shards: []string{a.URL, b.URL}, HedgeDelay: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(NewHTTP(rt).Handler())
	defer front.Close()

	start := time.Now()
	code, body := post(t, front.URL+"/v1/recommend", `{"user":1,"k":2}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("hedge did not mask the slow primary: %s", d)
	}
	var out api.RecommendResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 2 || out.Items[0].Item != 200 || out.Items[1].Item != 1 {
		t.Fatalf("merged ranking wrong: %+v", out.Items)
	}
	if rt.hedges.Load() < 1 || rt.hedgeWins.Load() < 1 {
		t.Fatalf("hedge counters: %d fired / %d won, want >= 1 each",
			rt.hedges.Load(), rt.hedgeWins.Load())
	}
}

// Router-level client errors: typed envelope, no fan-out for what every
// shard would reject anyway, structured 404s.
func TestRouterErrorPaths(t *testing.T) {
	tp := newTopology(t, []api.ItemRange{{Lo: 0, Hi: 270}}, Config{})
	defer tp.close()
	check := func(code int, wantCode api.Code, gotBody string) {
		t.Helper()
		var eb api.ErrorBody
		if err := json.Unmarshal([]byte(gotBody), &eb); err != nil {
			t.Fatalf("not an error envelope: %s", gotBody)
		}
		if eb.Err.Code != wantCode || eb.Err.Code.Status() != code {
			t.Fatalf("got %d/%s, want %d/%s", code, eb.Err.Code, wantCode.Status(), wantCode)
		}
	}
	code, body := post(t, tp.front.URL+"/v1/recommend", `{"user":3,"k":0}`)
	check(code, api.CodeBadRequest, body)
	code, body = post(t, tp.front.URL+"/v1/recommend?offset=-2", `{"user":3,"k":5}`)
	check(code, api.CodeBadRequest, body)
	code, body = post(t, tp.front.URL+"/v1/recommend", `{"user":3,"k"`)
	check(code, api.CodeBadRequest, body)
	code, body = post(t, tp.front.URL+"/v1/nope", `{}`)
	check(code, api.CodeNotFound, body)
}

// Topology bootstrap must reject a shard set that cannot serve
// correctly: gaps, overlaps, or a backend not running in shard mode.
func TestRouterBootstrapValidation(t *testing.T) {
	m, _ := trainedModel()
	full := httptest.NewServer(serve.NewHTTP(serve.New(m), nil).Handler())
	defer full.Close()
	if _, err := New(Config{Shards: []string{full.URL}}); err == nil ||
		!strings.Contains(err.Error(), "not in shard mode") {
		t.Fatalf("full-catalog backend accepted as shard: %v", err)
	}

	gapA := httptest.NewServer(serve.NewHTTP(serve.New(m, serve.WithItemRange(0, 100)), nil).Handler())
	defer gapA.Close()
	gapB := httptest.NewServer(serve.NewHTTP(serve.New(m, serve.WithItemRange(120, 270)), nil).Handler())
	defer gapB.Close()
	if _, err := New(Config{Shards: []string{gapA.URL, gapB.URL}}); err == nil ||
		!strings.Contains(err.Error(), "tile") {
		t.Fatalf("gapped topology accepted: %v", err)
	}

	short := httptest.NewServer(serve.NewHTTP(serve.New(m, serve.WithItemRange(0, 200)), nil).Handler())
	defer short.Close()
	if _, err := New(Config{Shards: []string{short.URL}}); err == nil ||
		!strings.Contains(err.Error(), "catalog") {
		t.Fatalf("undersized topology accepted: %v", err)
	}
}
