package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/api"
	"repro/internal/vecmath"
)

// route runs one already-validated, already-folded request through the
// topology: rewrite for the shards, scatter, classify the outcomes,
// merge, and cut the requested page. It returns either the merged
// response or the typed error to answer with.
//
// The rewrite is what makes the merge exact: every shard is asked for
// the full pre-pagination heap (k' = min(K+Offset, items), offset' = 0)
// and the router applies the Offset cut after merging — a shard cannot
// know which of its items the global page starts at. The clamp to the
// catalog size mirrors infer.Plan.heapSize, so an absurd K costs the
// wire no more than the catalog.
func (r *Router) route(ctx context.Context, t *topology, wr api.RecommendRequest, passQuery string) (api.RecommendResponse, *api.ErrorDetail) {
	heapSize := wr.K + wr.Offset
	if heapSize > t.model.Items {
		heapSize = t.model.Items
	}
	shardReq := wr
	shardReq.K, shardReq.Offset = heapSize, 0
	body, err := json.Marshal(shardReq)
	if err != nil {
		return api.RecommendResponse{}, &api.ErrorDetail{Code: api.CodeInternal, Message: err.Error()}
	}

	results := r.scatter(ctx, t, body, passQuery)
	oks := make([]*api.RecommendResponse, 0, len(results))
	failed := 0
	for _, res := range results {
		switch {
		case res.clientErr != nil:
			// the request is malformed on every shard alike; hand the
			// shard's own typed envelope through verbatim
			return api.RecommendResponse{}, res.clientErr
		case res.err != nil:
			failed++
		default:
			oks = append(oks, res.ok)
		}
	}
	if failed > 0 {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			r.deadlines.Add(1)
			return api.RecommendResponse{}, &api.ErrorDetail{Code: api.CodeDeadlineExceeded, Message: "request deadline exceeded, retry later", RetryAfter: 1}
		}
		if !r.cfg.DegradedPartial || len(oks) == 0 {
			return api.RecommendResponse{}, &api.ErrorDetail{
				Code:       api.CodeShardUnavailable,
				Message:    fmt.Sprintf("%d of %d shards unavailable", failed, len(results)),
				RetryAfter: 1,
			}
		}
	}
	// one model, one ranking: responses from different snapshot contents
	// must never be merged, however briefly a rolling SIGHUP mixes them
	modelID := oks[0].ModelID
	for _, ok := range oks[1:] {
		if ok.ModelID != modelID {
			r.epochMismatch.Add(1)
			return api.RecommendResponse{}, &api.ErrorDetail{
				Code:       api.CodeEpochMismatch,
				Message:    "shards answered from different model snapshots mid-reload, retry shortly",
				RetryAfter: 1,
			}
		}
	}

	ranked, cats := mergeShards(wr, oks, heapSize)
	if wr.Offset >= len(ranked) {
		ranked = ranked[:0]
	} else {
		ranked = ranked[wr.Offset:]
	}
	resp := api.RecommendResponse{
		Items:    make([]api.Item, len(ranked)),
		Epoch:    minResponseEpoch(oks),
		ModelID:  modelID,
		Degraded: failed > 0,
	}
	for i, s := range ranked {
		resp.Items[i] = api.Item{Item: s.ID, Score: s.Score, Category: cats[s.ID]}
	}
	if resp.Degraded {
		r.degraded.Add(1)
	}
	return resp, nil
}

// mergeShards folds the per-shard rankings into the global
// pre-pagination ranking, byte-identical to a single node's.
//
// Naive and cascade rankings merge through one vecmath.TopKStream: the
// shard pages are the per-range bounded heaps of a partitioned sweep,
// and merging bounded heaps under the score-then-lower-ID total order
// equals one serial stream over the union (the TopKStream.Merge lemma).
//
// Diversified rankings re-apply the per-category quota exactly as
// infer.executeDiversified does — per-category bounded heaps of
// capacity min(MaxPerCategory, heapSize) fed from the returned items,
// merged into one final heap — keyed by the category annotation the
// shards attach to each item. Shard pages of size heapSize suffice: if
// a shard's final heap dropped an item x that survived its local quota,
// then heapSize quota-surviving items beat x on that shard, and each of
// them either survives the global quota too or is displaced in its
// category's global top-perCat by still-better items — either way
// heapSize globally-surviving items beat x, so x was never in the
// global page.
//
// The returned category map carries each merged item's quota category
// for re-annotation (empty for non-diversified requests).
func mergeShards(wr api.RecommendRequest, oks []*api.RecommendResponse, heapSize int) ([]vecmath.Scored, map[int]int32) {
	if wr.Strategy == "diversified" && wr.MaxPerCategory > 0 {
		perCat := wr.MaxPerCategory
		if perCat > heapSize {
			perCat = heapSize
		}
		cats := make(map[int]int32)
		quota := make(map[int32]*vecmath.TopKStream)
		for _, ok := range oks {
			for _, it := range ok.Items {
				cats[it.Item] = it.Category
				h := quota[it.Category]
				if h == nil {
					h = vecmath.NewTopKStream(perCat)
					quota[it.Category] = h
				}
				h.Push(it.Item, it.Score)
			}
		}
		final := vecmath.NewTopKStream(heapSize)
		for _, h := range quota {
			// merge order over the map is irrelevant: a bounded heap's
			// retained set depends only on the pushed multiset, and the
			// score-then-lower-ID order is strict
			final.Merge(h)
		}
		return final.Ranked(), cats
	}
	final := vecmath.NewTopKStream(heapSize)
	for _, ok := range oks {
		for _, it := range ok.Items {
			final.Push(it.Item, it.Score)
		}
	}
	return final.Ranked(), nil
}

// minResponseEpoch is the epoch the merged result is current at: the
// minimum snapshot generation across the responses that fed the merge —
// the same value the router's cache stamps entries with.
func minResponseEpoch(oks []*api.RecommendResponse) uint64 {
	min := oks[0].Epoch
	for _, ok := range oks[1:] {
		if ok.Epoch < min {
			min = ok.Epoch
		}
	}
	return min
}

// cacheKey canonicalizes a folded request into its cache identity.
// Pruned is result-neutral (the branch-and-bound rankings are
// byte-identical) and the pass-through query knobs (workers, precision)
// never reach the key, so requests differing only in execution knobs
// share an entry — exactly the policy of the single-node cache.
func cacheKey(wr api.RecommendRequest) string {
	wr.Pruned = false
	b, _ := json.Marshal(wr)
	return string(b)
}
