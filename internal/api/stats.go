package api

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/vecmath"
)

// ItemRange is a half-open contiguous slice [Lo, Hi) of the item catalog
// — the unit of catalog sharding. A shard-scoped server owns one range;
// a router's shard set must tile [0, items) exactly.
type ItemRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Contains reports whether item falls inside the range.
func (r ItemRange) Contains(item int) bool { return item >= r.Lo && item < r.Hi }

// Len returns the number of items in the range.
func (r ItemRange) Len() int { return r.Hi - r.Lo }

// String renders the range in the "lo:hi" flag form.
func (r ItemRange) String() string { return fmt.Sprintf("%d:%d", r.Lo, r.Hi) }

// ParseItemRange parses the "lo:hi" form of a catalog range (half-open,
// hi exclusive) used by the -item-range flag.
func ParseItemRange(s string) (ItemRange, error) {
	los, his, ok := strings.Cut(s, ":")
	if !ok {
		return ItemRange{}, fmt.Errorf("api: item range %q is not lo:hi", s)
	}
	lo, err := strconv.Atoi(los)
	if err != nil {
		return ItemRange{}, fmt.Errorf("api: item range %q: bad lo: %v", s, err)
	}
	hi, err := strconv.Atoi(his)
	if err != nil {
		return ItemRange{}, fmt.Errorf("api: item range %q: bad hi: %v", s, err)
	}
	if lo < 0 || hi <= lo {
		return ItemRange{}, fmt.Errorf("api: item range %q must satisfy 0 <= lo < hi", s)
	}
	return ItemRange{Lo: lo, Hi: hi}, nil
}

// StatsModel is the model section of /v1/stats: the shape of the serving
// snapshot plus its identity (epoch, content fingerprint, shard range).
type StatsModel struct {
	Users       int  `json:"users"`
	Items       int  `json:"items"`
	Nodes       int  `json:"nodes"`
	Depth       int  `json:"depth"`
	K           int  `json:"k"`
	MarkovOrder int  `json:"markov_order"`
	UseBias     bool `json:"use_bias"`
	// Epoch counts hot swaps; FormatVersion is the model file format the
	// snapshot came from (-1 = composed in-process) and Mapped whether
	// its slabs are served from a memory mapping.
	Epoch         uint64 `json:"epoch"`
	FormatVersion int    `json:"format_version"`
	Mapped        bool   `json:"mapped"`
	// ModelID fingerprints the snapshot's content — identical bytes on
	// every replica serving the same model file, unlike Epoch, which is a
	// per-process swap counter. Routers compare ModelIDs, not Epochs, to
	// detect a mid-reload topology mixing snapshots.
	ModelID string `json:"model_id"`
	// ItemRange is present on shard-scoped servers (-item-range): the
	// contiguous catalog slice this process answers for. Absent on a
	// full-catalog server.
	ItemRange *ItemRange `json:"item_range,omitempty"`
}

// StatsServed counts requests served per endpoint.
type StatsServed struct {
	User        int64 `json:"user"`
	Session     int64 `json:"session"`
	Cascade     int64 `json:"cascade"`
	Diversified int64 `json:"diversified"`
	Plan        int64 `json:"plan"`
	Errors      int64 `json:"errors"`
	// Legacy counts hits on the deprecated per-shape endpoints (the sum
	// of user/session/cascade/diversified, kept as one counter so their
	// removal can be data-driven).
	Legacy int64 `json:"legacy_requests"`
}

// StatsFilters counts how many served requests used each request-time
// filtering capability.
type StatsFilters struct {
	ExcludePurchased int64 `json:"exclude_purchased"`
	Category         int64 `json:"category"`
	Paged            int64 `json:"paged"`
}

// StatsPruning mirrors infer.PruneCounters: how much dense-sweep work the
// branch-and-bound descents saved (items_pruned versus the catalog size),
// what they spent (bound_evals), and how often a pruned plan degraded to
// the dense sweep (fallbacks). All zero until a request (or the server
// default) asks for pruning.
type StatsPruning struct {
	SubtreesPruned int64 `json:"subtrees_pruned"`
	ItemsPruned    int64 `json:"items_pruned"`
	BoundEvals     int64 `json:"bound_evals"`
	Fallbacks      int64 `json:"fallbacks"`
	Default        bool  `json:"default"`
}

// StatsInference describes the parallel sweep, precision and batching
// configuration. F32Escalations and I8Escalations count process-wide
// two-stage margin escalations per tier — a steady climb means scores are
// tighter than that tier's resolution and a higher-precision sweep may
// serve cheaper.
type StatsInference struct {
	PoolWorkers    int          `json:"pool_workers"`
	Precision      string       `json:"precision"`
	F32Escalations int64        `json:"f32_escalations"`
	I8Escalations  int64        `json:"i8_escalations"`
	Batching       bool         `json:"batching"`
	Batches        int64        `json:"batches"`
	BatchedReqs    int64        `json:"batched_requests"`
	Filters        StatsFilters `json:"filters"`
	// Kernels is the active vecmath dispatch table — which scoring kernel
	// implementation (avx2, neon, generic) serves each op on this
	// process, plus why SIMD is off when it is.
	Kernels vecmath.KernelSet `json:"kernels"`
	Pruning StatsPruning      `json:"pruning"`
}

// CacheStats is the cache section of /v1/stats.
type CacheStats struct {
	Capacity  int    `json:"capacity"`
	Size      int    `json:"size"`
	Epoch     uint64 `json:"epoch"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Stale     int64  `json:"stale"`
	Evictions int64  `json:"evictions"`
}

// StatsCache is CacheStats plus HTTPHits, the hits served by the HTTP
// handler itself (including batch-bypass probes).
type StatsCache struct {
	CacheStats
	HTTPHits int64 `json:"http_hits"`
}

// AdmissionStats is the admission section of /v1/stats.
type AdmissionStats struct {
	MaxInflight   int   `json:"max_inflight"`
	MaxQueue      int   `json:"max_queue"`
	QueueWaitMS   int64 `json:"queue_wait_ms"`
	Inflight      int64 `json:"inflight"`
	Queued        int64 `json:"queued"`
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedWait      int64 `json:"shed_wait_timeout"`
	QueueAborted  int64 `json:"queue_abandoned"`
}

// Stats is the GET /v1/stats body of a tfrec-serve node.
type Stats struct {
	Model     StatsModel     `json:"model"`
	Served    StatsServed    `json:"served"`
	Inference StatsInference `json:"inference"`
	// Cache is present when the server was built with a result cache.
	Cache *StatsCache `json:"cache,omitempty"`
	// Admission is present when the load shedder is armed.
	Admission *AdmissionStats `json:"admission,omitempty"`
	// DeadlineExceeded counts requests whose per-request timeout fired
	// mid-sweep (answered 503, never a partial ranking).
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	// TimeoutMS is the configured per-request budget (0 = unbounded).
	TimeoutMS int64 `json:"timeout_ms"`
	// Goroutines is runtime.NumGoroutine() — the loadtest gate watches it
	// to catch handler or batcher leaks under sustained load.
	Goroutines    int     `json:"goroutines"`
	Reloads       int64   `json:"reloads"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// ShardStats is one backend's row in a router's /v1/stats.
type ShardStats struct {
	URL       string    `json:"url"`
	ItemRange ItemRange `json:"item_range"`
	Epoch     uint64    `json:"epoch"`
	ModelID   string    `json:"model_id"`
	Healthy   bool      `json:"healthy"`
	Requests  int64     `json:"requests"`
	Errors    int64     `json:"errors"`
	Hedges    int64     `json:"hedges"`
	HedgeWins int64     `json:"hedge_wins"`
}

// RouterCounters is the router section of a router's /v1/stats.
type RouterCounters struct {
	Requests      int64 `json:"requests"`
	Errors        int64 `json:"errors"`
	Degraded      int64 `json:"degraded"`
	Shed          int64 `json:"shed"`
	Hedges        int64 `json:"hedges"`
	HedgeWins     int64 `json:"hedge_wins"`
	EpochMismatch int64 `json:"epoch_mismatch"`
	Legacy        int64 `json:"legacy_requests"`
	CacheHits     int64 `json:"cache_hits"`
	// HedgeDelayMS and DegradedMode echo the router's configuration.
	HedgeDelayMS int64  `json:"hedge_delay_ms"`
	DegradedMode string `json:"degraded_mode"`
}

// RouterStats is the GET /v1/stats body of a tfrec-router. Model carries
// the aggregate catalog shape (summed users/items from the shard set)
// in the same section a tfrec-serve node uses, so load generators drive
// a router and a single node with the same probe.
type RouterStats struct {
	Model     StatsModel      `json:"model"`
	Shards    []ShardStats    `json:"shards"`
	Router    RouterCounters  `json:"router"`
	Cache     *CacheStats     `json:"cache,omitempty"`
	Admission *AdmissionStats `json:"admission,omitempty"`
	// DeadlineExceeded counts router requests whose budget expired before
	// enough shards answered.
	DeadlineExceeded int64   `json:"deadline_exceeded"`
	TimeoutMS        int64   `json:"timeout_ms"`
	Goroutines       int     `json:"goroutines"`
	UptimeSeconds    float64 `json:"uptime_seconds"`
}
