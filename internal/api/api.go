// Package api holds the canonical wire types of the serving stack: the
// JSON request, response, error and stats shapes spoken on the HTTP
// boundary. Exactly one definition of each shape exists — internal/serve
// renders and parses them, internal/router forwards, merges and
// re-emits them, and the CLIs (tfrec-loadgen, tfrec-recommend) build and
// decode them — so a field added here is the wire contract everywhere at
// once, and docs/API.md is checked against these declarations by
// internal/api/doc_test.go.
//
// The package is deliberately a leaf: wire shapes only, no serving
// logic, no model types. Scores travel as JSON float64 and Go's encoder
// writes the shortest round-tripping decimal form, so a ranking that is
// byte-identical in memory is byte-identical on the wire — the property
// the scatter-gather router's merge depends on.
package api

// Endpoint names one of the recommend routes. The unified plan endpoint
// is the canonical one; the four legacy per-shape routes are served as
// thin adapters that rewrite their request into the unified form (see
// RecommendRequest.RewriteLegacy) and answer with Deprecation headers.
type Endpoint int

const (
	// EndpointUnified is POST /v1/recommend — the plan path every request
	// ultimately executes through.
	EndpointUnified Endpoint = iota
	// EndpointUser is the deprecated POST /v1/recommend/user.
	EndpointUser
	// EndpointSession is the deprecated POST /v1/recommend/session.
	EndpointSession
	// EndpointCascade is the deprecated POST /v1/recommend/cascade.
	EndpointCascade
	// EndpointDiversified is the deprecated POST /v1/recommend/diversified.
	EndpointDiversified
)

// Path returns the endpoint's route.
func (e Endpoint) Path() string {
	switch e {
	case EndpointUser:
		return "/v1/recommend/user"
	case EndpointSession:
		return "/v1/recommend/session"
	case EndpointCascade:
		return "/v1/recommend/cascade"
	case EndpointDiversified:
		return "/v1/recommend/diversified"
	default:
		return "/v1/recommend"
	}
}

// RecommendRequest is the JSON body of every recommend endpoint. On the
// unified endpoint Strategy picks the ranking shape; the legacy
// endpoints imply it (RewriteLegacy).
type RecommendRequest struct {
	// User is the subject's id; -1 marks a session request (no known
	// user; the ranking runs on the Recent baskets alone).
	User int `json:"user"`
	// Recent lists the subject's latest baskets most-recent first; it
	// drives the short-term Markov term.
	Recent [][]int32 `json:"recent,omitempty"`
	// K is the number of items returned (after filters and Offset).
	K int `json:"k"`
	// Strategy picks the ranking shape on the unified endpoint: "" or
	// "naive", "cascade", "diversified".
	Strategy string `json:"strategy,omitempty"`
	// KeepFrac lists per-level cascade keep fractions; Keep is the
	// uniform shorthand. One of them is required for cascade requests.
	KeepFrac []float64 `json:"keep_frac,omitempty"`
	Keep     float64   `json:"keep,omitempty"`
	// MaxPerCategory caps how many items one category may place in a
	// diversified result; CatDepth picks the quota level (0 = the lowest
	// category level).
	MaxPerCategory int `json:"max_per_category,omitempty"`
	CatDepth       int `json:"cat_depth,omitempty"`
	// ExcludePurchased drops items the user is known to have bought.
	ExcludePurchased bool `json:"exclude_purchased,omitempty"`
	// Categories restricts results to items under these taxonomy nodes
	// (union); ExcludeCategories removes items under its nodes.
	Categories        []int32 `json:"categories,omitempty"`
	ExcludeCategories []int32 `json:"exclude_categories,omitempty"`
	// Offset skips the first Offset ranked items (pagination).
	Offset int `json:"offset,omitempty"`
	// Pruned turns on taxonomy-guided branch-and-bound retrieval for
	// naive sweeps; rankings are byte-identical either way.
	Pruned bool `json:"pruned,omitempty"`
}

// RewriteLegacy rewrites a legacy per-shape request into its unified
// equivalent — the adapter step the deprecated endpoints run before
// entering the plan path. The endpoint wins over whatever Strategy the
// body carried (the legacy routes never read it), and the session route
// forces User to -1 exactly as it always did.
func (r *RecommendRequest) RewriteLegacy(ep Endpoint) {
	switch ep {
	case EndpointUser:
		r.Strategy = ""
	case EndpointSession:
		r.Strategy = ""
		r.User = -1
	case EndpointCascade:
		r.Strategy = "cascade"
	case EndpointDiversified:
		r.Strategy = "diversified"
	}
}

// Item is one ranked entry of a recommend response. Category is present
// only on diversified rankings: the taxonomy node the item's quota was
// charged to, which the scatter-gather router needs to re-apply the
// per-category quota merge across shards (node 0 is the taxonomy root
// and never a quota category, so omitempty is unambiguous).
type Item struct {
	Item     int     `json:"item"`
	Score    float64 `json:"score"`
	Category int32   `json:"category,omitempty"`
}

// RecommendResponse is the success body of every recommend endpoint.
type RecommendResponse struct {
	// Items is the ranked page, best first.
	Items []Item `json:"items"`
	// Epoch is the serving snapshot generation the ranking was computed
	// on (a router reports the minimum across the shards it merged).
	Epoch uint64 `json:"epoch"`
	// ModelID fingerprints the model content behind the ranking; a
	// router refuses to merge shard responses whose ModelIDs differ, so
	// a mid-reload topology never mixes snapshots.
	ModelID string `json:"model_id,omitempty"`
	// Degraded reports that one or more shards were unavailable and the
	// ranking covers only the reachable part of the catalog (routers
	// running -degraded partial; a single node never sets it).
	Degraded bool `json:"degraded,omitempty"`
}
