package api

// docs/API.md is the human-facing rendering of this package. This test
// keeps it honest the same way docs_check_test.go keeps README/DESIGN
// honest: every JSON field tag declared on a wire struct here, every
// typed error code, and every endpoint path must appear in the
// document, so a field added to the contract cannot ship undocumented.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"reflect"
	"strings"
	"testing"
)

// wireJSONTags parses this package's source and collects the JSON field
// names of every struct, plus the string values of every Code constant.
func wireJSONTags(t *testing.T) (tags, codes []string) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	seenTag := map[string]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.StructType:
					for _, f := range n.Fields.List {
						if f.Tag == nil {
							continue
						}
						raw := strings.Trim(f.Tag.Value, "`")
						name, _, _ := strings.Cut(reflect.StructTag(raw).Get("json"), ",")
						if name != "" && name != "-" && !seenTag[name] {
							seenTag[name] = true
							tags = append(tags, name)
						}
					}
				case *ast.ValueSpec:
					if id, ok := n.Type.(*ast.Ident); ok && id.Name == "Code" {
						for _, v := range n.Values {
							if lit, ok := v.(*ast.BasicLit); ok && lit.Kind == token.STRING {
								codes = append(codes, strings.Trim(lit.Value, `"`))
							}
						}
					}
				}
				return true
			})
		}
	}
	if len(tags) == 0 || len(codes) == 0 {
		t.Fatalf("declaration scan found %d tags, %d codes — parser drifted from the source layout", len(tags), len(codes))
	}
	return tags, codes
}

func TestDocsAPICoversWireContract(t *testing.T) {
	raw, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)
	mentions := func(name string) bool {
		// a field is documented if it appears backtick-quoted in prose or
		// quoted inside a JSON example
		return strings.Contains(doc, "`"+name+"`") || strings.Contains(doc, `"`+name+`"`)
	}
	tags, codes := wireJSONTags(t)
	for _, tag := range tags {
		if !mentions(tag) {
			t.Errorf("docs/API.md does not document wire field %q", tag)
		}
	}
	for _, code := range codes {
		if !mentions(code) {
			t.Errorf("docs/API.md does not document error code %q", code)
		}
	}
	for _, ep := range []Endpoint{EndpointUnified, EndpointUser, EndpointSession, EndpointCascade, EndpointDiversified} {
		if !strings.Contains(doc, "`"+ep.Path()+"`") {
			t.Errorf("docs/API.md does not document endpoint %s", ep.Path())
		}
	}
}
