package api

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Code is a typed, machine-parseable error code. Clients branch on the
// code — the message is for humans and may change wording freely.
type Code string

const (
	// CodeBadRequest (400): the request body or query parameters failed
	// validation.
	CodeBadRequest Code = "bad_request"
	// CodeNotFound (404): no such route.
	CodeNotFound Code = "not_found"
	// CodeBodyTooLarge (413): the request body exceeded the configured
	// size limit.
	CodeBodyTooLarge Code = "body_too_large"
	// CodeQueueFull (429): the admission wait queue is full; back off.
	CodeQueueFull Code = "queue_full"
	// CodeOverloaded (503): an admission slot did not free up within the
	// queue wait.
	CodeOverloaded Code = "overloaded"
	// CodeDeadlineExceeded (503): the per-request budget expired before
	// the ranking finished (never a partial ranking).
	CodeDeadlineExceeded Code = "deadline_exceeded"
	// CodeShardUnavailable (503): a router could not reach enough shards
	// to cover the catalog and its degraded policy is to shed.
	CodeShardUnavailable Code = "shard_unavailable"
	// CodeEpochMismatch (503): shards answered from different model
	// contents mid-reload; retry after the topology converges.
	CodeEpochMismatch Code = "epoch_mismatch"
	// CodeInternal (500): a server fault escaped the executor.
	CodeInternal Code = "internal"
)

// Status returns the HTTP status an error code is served with.
func (c Code) Status() int {
	switch c {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeBodyTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeQueueFull:
		return http.StatusTooManyRequests
	case CodeOverloaded, CodeDeadlineExceeded, CodeShardUnavailable, CodeEpochMismatch:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// ErrorDetail is the inner error object: a typed code, a human-readable
// message, and an optional client back-off hint in seconds (mirrored in
// the Retry-After header when served over HTTP).
type ErrorDetail struct {
	Code       Code   `json:"code"`
	Message    string `json:"message"`
	RetryAfter int    `json:"retry_after,omitempty"`
}

// Error makes ErrorDetail a Go error so server layers can thread a typed
// wire error through ordinary error returns.
func (e ErrorDetail) Error() string {
	return string(e.Code) + ": " + e.Message
}

// ErrorBody is the JSON envelope every non-2xx response carries:
// {"error":{"code":"...","message":"...","retry_after":2}}.
type ErrorBody struct {
	Err ErrorDetail `json:"error"`
}

// WriteError serves d as an HTTP error response: status from the code,
// Retry-After header when the detail carries a back-off hint, and the
// ErrorBody envelope as the JSON body.
func WriteError(w http.ResponseWriter, d ErrorDetail) {
	if d.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(d.RetryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(d.Code.Status())
	json.NewEncoder(w).Encode(ErrorBody{Err: d})
}

// NotFoundHandler answers unknown routes with the structured envelope
// instead of net/http's plain-text default, so every error a client sees
// — 404s included — parses the same way.
func NotFoundHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, ErrorDetail{Code: CodeNotFound, Message: "no such route: " + r.URL.Path})
	})
}
