package taxonomy

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteText serializes the tree in a line-oriented text format readable by
// ReadText: a header line "taxonomy <numNodes>" followed by one
// "<node> <parent>" line per node (parent is -1 for the root). The format
// is stable and diff-friendly so generated taxonomies can live in test
// fixtures.
func (t *Tree) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "taxonomy %d\n", t.NumNodes()); err != nil {
		return err
	}
	for node := 0; node < t.NumNodes(); node++ {
		if _, err := fmt.Fprintf(bw, "%d %d\n", node, t.Parent(node)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the format produced by WriteText and validates the tree.
func ReadText(r io.Reader) (*Tree, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("taxonomy: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 2 || header[0] != "taxonomy" {
		return nil, fmt.Errorf("taxonomy: bad header %q", sc.Text())
	}
	n, err := strconv.Atoi(header[1])
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("taxonomy: bad node count %q", header[1])
	}
	parents := make([]int, n)
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("taxonomy: expected %d node lines, got %d", n, i)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			return nil, fmt.Errorf("taxonomy: bad node line %q", sc.Text())
		}
		node, err1 := strconv.Atoi(fields[0])
		parent, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || node < 0 || node >= n {
			return nil, fmt.Errorf("taxonomy: bad node line %q", sc.Text())
		}
		if seen[node] {
			return nil, fmt.Errorf("taxonomy: duplicate node %d", node)
		}
		seen[node] = true
		parents[node] = parent
	}
	return NewFromParents(parents)
}
