package taxonomy

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/vecmath"
)

// fixture builds the Figure-3 tree from the paper:
//
//	R(0) -> S(1), T(2)
//	S -> M(3), N(4), O(5)    T -> P(6), Q(7)
//	M -> A(8), B(9), C(10), D(11)
//	N -> E(12)  O -> F(13)... simplified: each of N,O,P,Q gets 2 leaves
func fixture(t *testing.T) *Tree {
	t.Helper()
	parents := []int{
		NoParent, // 0 R
		0, 0,     // 1 S, 2 T
		1, 1, 1, // 3 M, 4 N, 5 O
		2, 2, // 6 P, 7 Q
		3, 3, 3, 3, // 8..11 A B C D under M
		4, 4, // 12,13 under N
		5, 5, // 14,15 under O
		6, 6, // 16,17 under P
		7, 7, // 18,19 under Q
	}
	tree, err := NewFromParents(parents)
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return tree
}

func TestFixtureShape(t *testing.T) {
	tree := fixture(t)
	if tree.NumNodes() != 20 {
		t.Fatalf("NumNodes = %d, want 20", tree.NumNodes())
	}
	if tree.NumItems() != 12 {
		t.Fatalf("NumItems = %d, want 12", tree.NumItems())
	}
	if tree.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", tree.Depth())
	}
	if tree.Root() != 0 {
		t.Fatalf("Root = %d, want 0", tree.Root())
	}
	want := []int{1, 2, 5, 12}
	got := tree.LevelSizes()
	for d, w := range want {
		if got[d] != w {
			t.Fatalf("LevelSizes = %v, want %v", got, want)
		}
	}
	if !tree.IsUniformDepth() {
		t.Fatal("fixture should be uniform depth")
	}
}

func TestPathToRoot(t *testing.T) {
	tree := fixture(t)
	path := tree.PathToRoot(8, nil) // A -> M -> S -> R
	want := []int32{8, 3, 1, 0}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	// buffer reuse appends
	buf := make([]int32, 0, 8)
	path2 := tree.PathToRoot(8, buf)
	if len(path2) != 4 || &path2[0] != &buf[:1][0] {
		t.Fatal("PathToRoot should append into the provided buffer")
	}
}

func TestAncestor(t *testing.T) {
	tree := fixture(t)
	cases := []struct{ node, m, want int }{
		{8, 0, 8}, {8, 1, 3}, {8, 2, 1}, {8, 3, 0},
		{8, 99, 0}, // clamps at root
		{0, 0, 0}, {0, 5, 0},
	}
	for _, c := range cases {
		if got := tree.Ancestor(c.node, c.m); got != c.want {
			t.Fatalf("Ancestor(%d,%d) = %d, want %d", c.node, c.m, got, c.want)
		}
	}
}

func TestAncestorAtDepth(t *testing.T) {
	tree := fixture(t)
	if got := tree.AncestorAtDepth(8, 1); got != 1 {
		t.Fatalf("AncestorAtDepth(8,1) = %d, want 1 (S)", got)
	}
	if got := tree.AncestorAtDepth(8, 3); got != 8 {
		t.Fatalf("AncestorAtDepth(8,3) = %d, want 8", got)
	}
	if got := tree.AncestorAtDepth(8, 9); got != 8 {
		t.Fatalf("AncestorAtDepth beyond own depth should return node, got %d", got)
	}
}

func TestItemNodeRoundTrip(t *testing.T) {
	tree := fixture(t)
	for item := 0; item < tree.NumItems(); item++ {
		node := tree.ItemNode(item)
		if !tree.IsLeaf(node) {
			t.Fatalf("item %d maps to non-leaf node %d", item, node)
		}
		if back := tree.NodeItem(node); back != item {
			t.Fatalf("NodeItem(ItemNode(%d)) = %d", item, back)
		}
	}
	if tree.NodeItem(0) != -1 {
		t.Fatal("root should have no item id")
	}
}

func TestNumSiblings(t *testing.T) {
	tree := fixture(t)
	if got := tree.NumSiblings(8); got != 3 {
		t.Fatalf("NumSiblings(A) = %d, want 3", got)
	}
	if got := tree.NumSiblings(1); got != 1 {
		t.Fatalf("NumSiblings(S) = %d, want 1", got)
	}
	if got := tree.NumSiblings(0); got != 0 {
		t.Fatalf("NumSiblings(root) = %d, want 0", got)
	}
}

func TestNewFromParentsRejectsBadInput(t *testing.T) {
	cases := map[string][]int{
		"empty":          {},
		"no root":        {1, 0}, // 0->1->0 cycle, no NoParent
		"two roots":      {NoParent, NoParent},
		"self parent":    {NoParent, 1},
		"out of range":   {NoParent, 5},
		"cycle detached": {NoParent, 2, 1}, // 1<->2 cycle unreachable from root
	}
	for name, parents := range cases {
		if _, err := NewFromParents(parents); err == nil {
			t.Errorf("%s: expected error for %v", name, parents)
		}
	}
}

func TestSingleNodeTreeIsLeafOnly(t *testing.T) {
	tree, err := NewFromParents([]int{NoParent})
	if err != nil {
		t.Fatalf("single node: %v", err)
	}
	if tree.NumItems() != 1 || tree.Depth() != 0 {
		t.Fatalf("single node tree: items=%d depth=%d", tree.NumItems(), tree.Depth())
	}
}

func TestGenerateShape(t *testing.T) {
	rng := vecmath.NewRNG(1)
	cfg := GenConfig{CategoryLevels: []int{3, 9, 27}, Items: 200, Skew: 0.5}
	tree := MustGenerate(cfg, rng)
	sizes := tree.LevelSizes()
	want := []int{1, 3, 9, 27, 200}
	for d, w := range want {
		if sizes[d] != w {
			t.Fatalf("LevelSizes = %v, want %v", sizes, want)
		}
	}
	if !tree.IsUniformDepth() {
		t.Fatal("generated tree must have uniform leaf depth")
	}
	if tree.NumItems() != 200 {
		t.Fatalf("NumItems = %d, want 200", tree.NumItems())
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGenerateEveryParentHasAChild(t *testing.T) {
	rng := vecmath.NewRNG(2)
	tree := MustGenerate(GenConfig{CategoryLevels: []int{4, 16}, Items: 40, Skew: 1.2}, rng)
	for d := 0; d < tree.Depth(); d++ {
		for _, node := range tree.Level(d) {
			if len(tree.Children(int(node))) == 0 {
				t.Fatalf("interior node %d at depth %d has no children", node, d)
			}
		}
	}
}

func TestGenerateInteriorNodesAreLowIDs(t *testing.T) {
	rng := vecmath.NewRNG(3)
	tree := MustGenerate(GenConfig{CategoryLevels: []int{2, 4}, Items: 30}, rng)
	nInterior := 1 + 2 + 4
	for node := 0; node < nInterior; node++ {
		if tree.IsLeaf(node) {
			t.Fatalf("node %d should be interior", node)
		}
	}
	for node := nInterior; node < tree.NumNodes(); node++ {
		if !tree.IsLeaf(node) {
			t.Fatalf("node %d should be a leaf", node)
		}
	}
}

func TestGenerateSkewConcentratesChildren(t *testing.T) {
	rng := vecmath.NewRNG(4)
	skewed := MustGenerate(GenConfig{CategoryLevels: []int{10}, Items: 5000, Skew: 1.2}, rng)
	even := MustGenerate(GenConfig{CategoryLevels: []int{10}, Items: 5000, Skew: 0}, vecmath.NewRNG(4))
	maxChildren := func(tr *Tree) int {
		max := 0
		for _, node := range tr.Level(1) {
			if n := len(tr.Children(int(node))); n > max {
				max = n
			}
		}
		return max
	}
	if maxChildren(skewed) <= maxChildren(even) {
		t.Fatalf("skewed max fan-out %d should exceed even %d", maxChildren(skewed), maxChildren(even))
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	rng := vecmath.NewRNG(5)
	if _, err := Generate(GenConfig{CategoryLevels: []int{3}, Items: 0}, rng); err == nil {
		t.Fatal("expected error for Items=0")
	}
	if _, err := Generate(GenConfig{CategoryLevels: []int{0}, Items: 5}, rng); err == nil {
		t.Fatal("expected error for zero-size level")
	}
}

func TestPaperShapeScales(t *testing.T) {
	full := PaperShape(1)
	if full.Items != 1500000 || full.CategoryLevels[0] != 23 || full.CategoryLevels[2] != 1500 {
		t.Fatalf("PaperShape(1) = %+v", full)
	}
	small := PaperShape(1000)
	if small.Items != 1500 {
		t.Fatalf("PaperShape(1000).Items = %d, want 1500", small.Items)
	}
	if small.CategoryLevels[0] < 2 || small.CategoryLevels[1] < small.CategoryLevels[0] {
		t.Fatalf("PaperShape(1000) levels malformed: %v", small.CategoryLevels)
	}
	// must actually generate
	tree := MustGenerate(small, vecmath.NewRNG(6))
	if tree.Depth() != 4 {
		t.Fatalf("paper-shaped tree depth = %d, want 4", tree.Depth())
	}
}

func TestTextRoundTrip(t *testing.T) {
	tree := fixture(t)
	var buf bytes.Buffer
	if err := tree.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if back.NumNodes() != tree.NumNodes() || back.NumItems() != tree.NumItems() || back.Depth() != tree.Depth() {
		t.Fatal("round trip changed the tree shape")
	}
	for node := 0; node < tree.NumNodes(); node++ {
		if back.Parent(node) != tree.Parent(node) {
			t.Fatalf("parent of %d changed: %d vs %d", node, back.Parent(node), tree.Parent(node))
		}
	}
}

func TestReadTextRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"nonsense 5\n",
		"taxonomy x\n",
		"taxonomy 2\n0 -1\n",          // missing line
		"taxonomy 2\n0 -1\n0 0\n",     // duplicate node
		"taxonomy 2\n0 -1\n1 7\n",     // parent out of range
		"taxonomy 1\nbad line here\n", // malformed
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestPathPropertyRandomTrees(t *testing.T) {
	rng := vecmath.NewRNG(7)
	for trial := 0; trial < 20; trial++ {
		top := 1 + rng.Intn(4)
		cfg := GenConfig{
			CategoryLevels: []int{top, top + rng.Intn(8)},
			Items:          20 + rng.Intn(100),
			Skew:           rng.Float64(),
		}
		tree := MustGenerate(cfg, rng)
		// property: for every item, path length == depth+1, strictly
		// decreasing depth, ends at root
		for item := 0; item < tree.NumItems(); item++ {
			node := tree.ItemNode(item)
			path := tree.PathToRoot(node, nil)
			if len(path) != tree.Depth()+1 {
				t.Fatalf("path length %d, want %d", len(path), tree.Depth()+1)
			}
			for i, n := range path {
				if tree.DepthOf(int(n)) != tree.Depth()-i {
					t.Fatalf("path depth broken at %d: %v", i, path)
				}
			}
			if int(path[len(path)-1]) != tree.Root() {
				t.Fatal("path must end at root")
			}
		}
	}
}
