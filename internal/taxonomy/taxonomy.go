// Package taxonomy implements the immutable product taxonomy tree that the
// TF model (Kanagal et al., VLDB 2012) attaches latent offsets to. Nodes
// are dense integer ids; leaves are the purchasable items and interior
// nodes are categories. The package provides construction from parent
// arrays, a configurable random generator mirroring the Yahoo! shopping
// taxonomy shape (23 / 270 / 1500 categories over 1.5M products), path and
// sibling queries used by training, and a text serialization.
package taxonomy

import (
	"errors"
	"fmt"
)

// NoParent marks the root's parent entry.
const NoParent = -1

// Tree is an immutable rooted tree over nodes 0..NumNodes()-1. Leaves are
// items; interior nodes are categories. All accessors are safe for
// concurrent use once the tree is built.
type Tree struct {
	parent   []int32
	depth    []int32
	children [][]int32
	levels   [][]int32 // levels[d] = nodes at depth d (root is depth 0)
	root     int32

	// item <-> node mapping: items are the leaves, numbered 0..NumItems()-1
	// in increasing node-id order.
	itemNode []int32 // item id -> node id
	nodeItem []int32 // node id -> item id, or -1 for interior nodes
}

// NewFromParents builds a tree from a parent array: parents[n] is the node
// id of n's parent, or NoParent for the single root. It validates that the
// structure is a connected acyclic rooted tree.
func NewFromParents(parents []int) (*Tree, error) {
	n := len(parents)
	if n == 0 {
		return nil, errors.New("taxonomy: empty parent array")
	}
	t := &Tree{
		parent:   make([]int32, n),
		depth:    make([]int32, n),
		children: make([][]int32, n),
		root:     -1,
	}
	for node, p := range parents {
		if p == NoParent {
			if t.root >= 0 {
				return nil, fmt.Errorf("taxonomy: multiple roots (%d and %d)", t.root, node)
			}
			t.root = int32(node)
			t.parent[node] = NoParent
			continue
		}
		if p < 0 || p >= n {
			return nil, fmt.Errorf("taxonomy: node %d has out-of-range parent %d", node, p)
		}
		if p == node {
			return nil, fmt.Errorf("taxonomy: node %d is its own parent", node)
		}
		t.parent[node] = int32(p)
		t.children[p] = append(t.children[p], int32(node))
	}
	if t.root < 0 {
		return nil, errors.New("taxonomy: no root node")
	}
	// BFS from the root assigns depths and detects disconnected nodes
	// (which, given n-1 edges, also rules out cycles).
	visited := make([]bool, n)
	queue := []int32{t.root}
	visited[t.root] = true
	t.depth[t.root] = 0
	maxDepth := int32(0)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range t.children[cur] {
			if visited[c] {
				return nil, fmt.Errorf("taxonomy: node %d reached twice (cycle)", c)
			}
			visited[c] = true
			t.depth[c] = t.depth[cur] + 1
			if t.depth[c] > maxDepth {
				maxDepth = t.depth[c]
			}
			queue = append(queue, c)
		}
	}
	for node, v := range visited {
		if !v {
			return nil, fmt.Errorf("taxonomy: node %d unreachable from root", node)
		}
	}
	t.levels = make([][]int32, maxDepth+1)
	for node := 0; node < n; node++ {
		d := t.depth[node]
		t.levels[d] = append(t.levels[d], int32(node))
	}
	// Items are the leaves, in increasing node-id order.
	t.nodeItem = make([]int32, n)
	for node := 0; node < n; node++ {
		if len(t.children[node]) == 0 {
			t.nodeItem[node] = int32(len(t.itemNode))
			t.itemNode = append(t.itemNode, int32(node))
		} else {
			t.nodeItem[node] = -1
		}
	}
	if len(t.itemNode) == 0 {
		return nil, errors.New("taxonomy: tree has no leaves")
	}
	return t, nil
}

// NumNodes returns the total node count (categories + items + root).
func (t *Tree) NumNodes() int { return len(t.parent) }

// NumItems returns the number of leaf items.
func (t *Tree) NumItems() int { return len(t.itemNode) }

// Root returns the root node id.
func (t *Tree) Root() int { return int(t.root) }

// Depth returns the maximum node depth (the root has depth 0).
func (t *Tree) Depth() int { return len(t.levels) - 1 }

// Parent returns node's parent id, or NoParent for the root.
func (t *Tree) Parent(node int) int { return int(t.parent[node]) }

// Children returns node's children. The returned slice must not be
// modified.
func (t *Tree) Children(node int) []int32 { return t.children[node] }

// IsLeaf reports whether node is a leaf (an item).
func (t *Tree) IsLeaf(node int) bool { return len(t.children[node]) == 0 }

// DepthOf returns the depth of node (root = 0).
func (t *Tree) DepthOf(node int) int { return int(t.depth[node]) }

// Level returns all nodes at depth d. The returned slice must not be
// modified.
func (t *Tree) Level(d int) []int32 { return t.levels[d] }

// ItemNode maps an item id to its leaf node id.
func (t *Tree) ItemNode(item int) int { return int(t.itemNode[item]) }

// NodeItem maps a leaf node id to its item id, or -1 for interior nodes.
func (t *Tree) NodeItem(node int) int { return int(t.nodeItem[node]) }

// PathToRoot appends the path p0(node)=node, p1=parent(node), ..., root to
// buf and returns it. Passing a reused buf avoids allocation in the SGD
// inner loop.
func (t *Tree) PathToRoot(node int, buf []int32) []int32 {
	cur := int32(node)
	for {
		buf = append(buf, cur)
		if cur == t.root {
			return buf
		}
		cur = t.parent[cur]
	}
}

// Ancestor returns the m-th node on the path from node to the root:
// Ancestor(node, 0) == node, Ancestor(node, 1) == Parent(node), etc.
// It returns the root if m exceeds the path length.
func (t *Tree) Ancestor(node, m int) int {
	cur := int32(node)
	for i := 0; i < m && cur != t.root; i++ {
		cur = t.parent[cur]
	}
	return int(cur)
}

// AncestorAtDepth returns node's ancestor at depth d, or the node itself
// if d >= DepthOf(node).
func (t *Tree) AncestorAtDepth(node, d int) int {
	cur := int32(node)
	for int(t.depth[cur]) > d {
		cur = t.parent[cur]
	}
	return int(cur)
}

// NumSiblings returns the number of siblings of node (children of its
// parent excluding node itself). The root has none.
func (t *Tree) NumSiblings(node int) int {
	if int32(node) == t.root {
		return 0
	}
	return len(t.children[t.parent[node]]) - 1
}

// IsUniformDepth reports whether every leaf sits at the maximum depth; the
// TF model's additive composition (Eq. 1) assumes this, and the built-in
// generator guarantees it.
func (t *Tree) IsUniformDepth() bool {
	d := int32(t.Depth())
	for _, leaf := range t.itemNode {
		if t.depth[leaf] != d {
			return false
		}
	}
	return true
}

// InteriorPrefixLen returns n when nodes 0..n−1 are exactly the interior
// (category) nodes and every node >= n is a leaf, and 0 when the ids are
// interleaved. Trees built by Generate always have this layout; the
// trainer's hot-row caches (§6.1) rely on it to identify the frequently
// updated rows by a single comparison.
func (t *Tree) InteriorPrefixLen() int {
	n := t.NumNodes() - t.NumItems()
	for node := 0; node < n; node++ {
		if t.IsLeaf(node) {
			return 0
		}
	}
	return n
}

// LevelSizes returns the node count per depth, root first. For the paper's
// taxonomy this is [1, 23, 270, ~1500, 1.5M].
func (t *Tree) LevelSizes() []int {
	out := make([]int, len(t.levels))
	for d, nodes := range t.levels {
		out[d] = len(nodes)
	}
	return out
}

// Validate re-checks internal invariants; it is used by tests and after
// deserialization.
func (t *Tree) Validate() error {
	rebuilt, err := NewFromParents(t.ParentArray())
	if err != nil {
		return err
	}
	if rebuilt.NumItems() != t.NumItems() || rebuilt.Depth() != t.Depth() {
		return errors.New("taxonomy: inconsistent derived state")
	}
	return nil
}

// ParentArray returns a copy of the parent array (NoParent for the root),
// the canonical serializable form of the tree.
func (t *Tree) ParentArray() []int {
	out := make([]int, len(t.parent))
	for i, p := range t.parent {
		out[i] = int(p)
	}
	return out
}
