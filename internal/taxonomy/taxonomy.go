// Package taxonomy implements the immutable product taxonomy tree that the
// TF model (Kanagal et al., VLDB 2012) attaches latent offsets to. Nodes
// are dense integer ids; leaves are the purchasable items and interior
// nodes are categories. The package provides construction from parent
// arrays, a configurable random generator mirroring the Yahoo! shopping
// taxonomy shape (23 / 270 / 1500 categories over 1.5M products), path and
// sibling queries used by training, and a text serialization.
package taxonomy

import (
	"errors"
	"fmt"
)

// NoParent marks the root's parent entry.
const NoParent = -1

// Tree is an immutable rooted tree over nodes 0..NumNodes()-1. Leaves are
// items; interior nodes are categories. All accessors are safe for
// concurrent use once the tree is built.
//
// The adjacency is stored flat (CSR-style): node n's children are
// childList[childOff[n]:childOff[n+1]] in ascending node-id order, and the
// nodes at depth d are levelList[levelOff[d]:levelOff[d+1]], also
// ascending. The flat form is what the TFRECMDL v4 model file persists, so
// a memory-mapped model can wrap these arrays zero-copy (NewFromLayout)
// instead of rebuilding per-node slices at load time.
type Tree struct {
	parent    []int32
	depth     []int32
	childOff  []int32 // len NumNodes+1; exclusive prefix sum of child counts
	childList []int32 // len NumNodes-1; children grouped by parent, ascending
	levelOff  []int32 // len Depth+2; exclusive prefix sum of level sizes
	levelList []int32 // len NumNodes; nodes grouped by depth, ascending
	root      int32

	// item <-> node mapping: items are the leaves, numbered 0..NumItems()-1
	// in increasing node-id order.
	itemNode []int32 // item id -> node id
	nodeItem []int32 // node id -> item id, or -1 for interior nodes
}

// NewFromParents builds a tree from a parent array: parents[n] is the node
// id of n's parent, or NoParent for the single root. It validates that the
// structure is a connected acyclic rooted tree.
func NewFromParents(parents []int) (*Tree, error) {
	n := len(parents)
	if n == 0 {
		return nil, errors.New("taxonomy: empty parent array")
	}
	t := &Tree{
		parent: make([]int32, n),
		depth:  make([]int32, n),
		root:   -1,
	}
	counts := make([]int32, n)
	for node, p := range parents {
		if p == NoParent {
			if t.root >= 0 {
				return nil, fmt.Errorf("taxonomy: multiple roots (%d and %d)", t.root, node)
			}
			t.root = int32(node)
			t.parent[node] = NoParent
			continue
		}
		if p < 0 || p >= n {
			return nil, fmt.Errorf("taxonomy: node %d has out-of-range parent %d", node, p)
		}
		if p == node {
			return nil, fmt.Errorf("taxonomy: node %d is its own parent", node)
		}
		t.parent[node] = int32(p)
		counts[p]++
	}
	if t.root < 0 {
		return nil, errors.New("taxonomy: no root node")
	}
	// Counting sort flattens the adjacency: childOff is the exclusive
	// prefix sum of per-parent child counts, and filling slots in ascending
	// node order keeps every child list ascending.
	t.childOff = make([]int32, n+1)
	var total int32
	for node := 0; node < n; node++ {
		t.childOff[node] = total
		total += counts[node]
	}
	t.childOff[n] = total
	t.childList = make([]int32, total)
	next := make([]int32, n)
	copy(next, t.childOff[:n])
	for node, p := range parents {
		if p == NoParent {
			continue
		}
		t.childList[next[p]] = int32(node)
		next[p]++
	}
	// BFS from the root assigns depths and detects disconnected nodes
	// (which, given n-1 edges, also rules out cycles).
	visited := make([]bool, n)
	queue := []int32{t.root}
	visited[t.root] = true
	t.depth[t.root] = 0
	maxDepth := int32(0)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range t.Children(int(cur)) {
			if visited[c] {
				return nil, fmt.Errorf("taxonomy: node %d reached twice (cycle)", c)
			}
			visited[c] = true
			t.depth[c] = t.depth[cur] + 1
			if t.depth[c] > maxDepth {
				maxDepth = t.depth[c]
			}
			queue = append(queue, c)
		}
	}
	for node, v := range visited {
		if !v {
			return nil, fmt.Errorf("taxonomy: node %d unreachable from root", node)
		}
	}
	// Same counting sort for the levels: nodes grouped by depth, ascending
	// within each level.
	t.levelOff = make([]int32, maxDepth+2)
	for node := 0; node < n; node++ {
		t.levelOff[t.depth[node]+1]++
	}
	for d := int32(0); d <= maxDepth; d++ {
		t.levelOff[d+1] += t.levelOff[d]
	}
	t.levelList = make([]int32, n)
	nextL := make([]int32, maxDepth+1)
	copy(nextL, t.levelOff[:maxDepth+1])
	for node := 0; node < n; node++ {
		d := t.depth[node]
		t.levelList[nextL[d]] = int32(node)
		nextL[d]++
	}
	// Items are the leaves, in increasing node-id order.
	t.nodeItem = make([]int32, n)
	for node := 0; node < n; node++ {
		if t.IsLeaf(node) {
			t.nodeItem[node] = int32(len(t.itemNode))
			t.itemNode = append(t.itemNode, int32(node))
		} else {
			t.nodeItem[node] = -1
		}
	}
	if len(t.itemNode) == 0 {
		return nil, errors.New("taxonomy: tree has no leaves")
	}
	return t, nil
}

// NewFromLayout constructs a tree directly from the flat arrays a TFRECMDL
// v4 file persists, without copying: the tree's accessors serve slices of
// the caller's (possibly memory-mapped) arrays, which must stay immutable
// and alive for the tree's lifetime. Every structural invariant
// NewFromParents establishes is re-verified here with O(n) integer passes
// — a corrupt or hostile file yields an error, never a tree that panics
// later — but no per-node allocation happens, which is what makes mmap
// loading O(1) in the catalog size for heap work.
func NewFromLayout(parent, depth, childOff, childList, levelOff, levelList, itemNode, nodeItem []int32, root int32) (*Tree, error) {
	n := len(parent)
	if n == 0 {
		return nil, errors.New("taxonomy: layout: empty parent array")
	}
	if len(depth) != n || len(nodeItem) != n || len(levelList) != n {
		return nil, fmt.Errorf("taxonomy: layout: array lengths %d/%d/%d do not match %d nodes", len(depth), len(nodeItem), len(levelList), n)
	}
	if len(childOff) != n+1 {
		return nil, fmt.Errorf("taxonomy: layout: childOff length %d, want %d", len(childOff), n+1)
	}
	if len(childList) != n-1 {
		return nil, fmt.Errorf("taxonomy: layout: childList length %d, want %d", len(childList), n-1)
	}
	if len(levelOff) < 2 || len(levelOff) > n+1 {
		return nil, fmt.Errorf("taxonomy: layout: levelOff length %d out of range", len(levelOff))
	}
	if root < 0 || int(root) >= n {
		return nil, fmt.Errorf("taxonomy: layout: root %d out of range", root)
	}
	if parent[root] != NoParent || depth[root] != 0 {
		return nil, fmt.Errorf("taxonomy: layout: root %d has parent %d depth %d", root, parent[root], depth[root])
	}
	maxDepth := int32(len(levelOff)) - 2

	// Parent function and depth recurrence. depth[c] == depth[parent(c)]+1
	// with a single NoParent entry at depth 0 proves the parent graph is a
	// connected acyclic tree: following parents strictly decreases depth,
	// and only the root sits at depth 0.
	counts := make([]int32, n)
	for node := 0; node < n; node++ {
		p := parent[node]
		if int32(node) == root {
			continue
		}
		if p == NoParent {
			return nil, fmt.Errorf("taxonomy: layout: multiple roots (%d and %d)", root, node)
		}
		if p < 0 || int(p) >= n {
			return nil, fmt.Errorf("taxonomy: layout: node %d has out-of-range parent %d", node, p)
		}
		if int(p) == node {
			return nil, fmt.Errorf("taxonomy: layout: node %d is its own parent", node)
		}
		if depth[node] < 1 || depth[node] > maxDepth {
			return nil, fmt.Errorf("taxonomy: layout: node %d depth %d out of range [1,%d]", node, depth[node], maxDepth)
		}
		if depth[node] != depth[p]+1 {
			return nil, fmt.Errorf("taxonomy: layout: node %d depth %d != parent %d depth %d + 1", node, depth[node], p, depth[p])
		}
		counts[p]++
	}

	// Child adjacency: offsets must be the exact prefix sums of the parent
	// counts, and each child span must list that parent's children in
	// strictly ascending order (count + membership + ascending ⇒ the span
	// is exactly the child set).
	if childOff[0] != 0 || childOff[n] != int32(n-1) {
		return nil, fmt.Errorf("taxonomy: layout: childOff spans [%d,%d], want [0,%d]", childOff[0], childOff[n], n-1)
	}
	for node := 0; node < n; node++ {
		lo, hi := childOff[node], childOff[node+1]
		if lo > hi || hi > int32(n-1) {
			return nil, fmt.Errorf("taxonomy: layout: childOff not monotone at node %d (%d > %d)", node, lo, hi)
		}
		if hi-lo != counts[node] {
			return nil, fmt.Errorf("taxonomy: layout: node %d lists %d children, parent array says %d", node, hi-lo, counts[node])
		}
		prev := int32(-1)
		for i := lo; i < hi; i++ {
			c := childList[i]
			if c < 0 || int(c) >= n {
				return nil, fmt.Errorf("taxonomy: layout: child %d of node %d out of range", c, node)
			}
			if parent[c] != int32(node) {
				return nil, fmt.Errorf("taxonomy: layout: node %d listed as child of %d but has parent %d", c, node, parent[c])
			}
			if c <= prev {
				return nil, fmt.Errorf("taxonomy: layout: children of node %d not ascending", node)
			}
			prev = c
		}
	}

	// Level partition: offsets are the exact prefix sums of per-depth
	// counts, each level lists its nodes ascending, and level 0 is the root
	// alone.
	levelCounts := make([]int32, maxDepth+1)
	for node := 0; node < n; node++ {
		levelCounts[depth[node]]++
	}
	if levelOff[0] != 0 || levelOff[maxDepth+1] != int32(n) {
		return nil, fmt.Errorf("taxonomy: layout: levelOff spans [%d,%d], want [0,%d]", levelOff[0], levelOff[maxDepth+1], n)
	}
	for d := int32(0); d <= maxDepth; d++ {
		lo, hi := levelOff[d], levelOff[d+1]
		if lo > hi || hi > int32(n) {
			return nil, fmt.Errorf("taxonomy: layout: levelOff not monotone at depth %d", d)
		}
		if hi-lo != levelCounts[d] {
			return nil, fmt.Errorf("taxonomy: layout: level %d lists %d nodes, depth array says %d", d, hi-lo, levelCounts[d])
		}
		if hi == lo {
			return nil, fmt.Errorf("taxonomy: layout: empty level %d", d)
		}
		prev := int32(-1)
		for i := lo; i < hi; i++ {
			c := levelList[i]
			if c < 0 || int(c) >= n {
				return nil, fmt.Errorf("taxonomy: layout: level %d entry %d out of range", d, c)
			}
			if depth[c] != d {
				return nil, fmt.Errorf("taxonomy: layout: node %d at depth %d listed in level %d", c, depth[c], d)
			}
			if c <= prev {
				return nil, fmt.Errorf("taxonomy: layout: level %d not ascending", d)
			}
			prev = c
		}
	}
	if levelOff[1] != 1 || levelList[0] != root {
		return nil, fmt.Errorf("taxonomy: layout: level 0 is not exactly the root")
	}

	// Item numbering: leaves get consecutive item ids in ascending node
	// order; interior nodes map to -1.
	nextItem := int32(0)
	for node := 0; node < n; node++ {
		if childOff[node] == childOff[node+1] {
			if nodeItem[node] != nextItem {
				return nil, fmt.Errorf("taxonomy: layout: leaf %d has item id %d, want %d", node, nodeItem[node], nextItem)
			}
			if int(nextItem) >= len(itemNode) || itemNode[nextItem] != int32(node) {
				return nil, fmt.Errorf("taxonomy: layout: item %d does not map back to leaf %d", nextItem, node)
			}
			nextItem++
		} else if nodeItem[node] != -1 {
			return nil, fmt.Errorf("taxonomy: layout: interior node %d has item id %d", node, nodeItem[node])
		}
	}
	if int(nextItem) != len(itemNode) {
		return nil, fmt.Errorf("taxonomy: layout: itemNode length %d, want %d leaves", len(itemNode), nextItem)
	}
	if nextItem == 0 {
		return nil, errors.New("taxonomy: layout: tree has no leaves")
	}

	return &Tree{
		parent:    parent,
		depth:     depth,
		childOff:  childOff,
		childList: childList,
		levelOff:  levelOff,
		levelList: levelList,
		root:      root,
		itemNode:  itemNode,
		nodeItem:  nodeItem,
	}, nil
}

// Layout returns the flat arrays backing the tree, in NewFromLayout's
// parameter order. The slices are the tree's own storage and must not be
// modified; model serialization writes them verbatim.
func (t *Tree) Layout() (parent, depth, childOff, childList, levelOff, levelList, itemNode, nodeItem []int32, root int32) {
	return t.parent, t.depth, t.childOff, t.childList, t.levelOff, t.levelList, t.itemNode, t.nodeItem, t.root
}

// NumNodes returns the total node count (categories + items + root).
func (t *Tree) NumNodes() int { return len(t.parent) }

// NumItems returns the number of leaf items.
func (t *Tree) NumItems() int { return len(t.itemNode) }

// Root returns the root node id.
func (t *Tree) Root() int { return int(t.root) }

// Depth returns the maximum node depth (the root has depth 0).
func (t *Tree) Depth() int { return len(t.levelOff) - 2 }

// Parent returns node's parent id, or NoParent for the root.
func (t *Tree) Parent(node int) int { return int(t.parent[node]) }

// Children returns node's children. The returned slice must not be
// modified.
func (t *Tree) Children(node int) []int32 {
	lo, hi := t.childOff[node], t.childOff[node+1]
	return t.childList[lo:hi:hi]
}

// IsLeaf reports whether node is a leaf (an item).
func (t *Tree) IsLeaf(node int) bool { return t.childOff[node] == t.childOff[node+1] }

// DepthOf returns the depth of node (root = 0).
func (t *Tree) DepthOf(node int) int { return int(t.depth[node]) }

// Level returns all nodes at depth d. The returned slice must not be
// modified.
func (t *Tree) Level(d int) []int32 {
	lo, hi := t.levelOff[d], t.levelOff[d+1]
	return t.levelList[lo:hi:hi]
}

// ItemNode maps an item id to its leaf node id.
func (t *Tree) ItemNode(item int) int { return int(t.itemNode[item]) }

// NodeItem maps a leaf node id to its item id, or -1 for interior nodes.
func (t *Tree) NodeItem(node int) int { return int(t.nodeItem[node]) }

// PathToRoot appends the path p0(node)=node, p1=parent(node), ..., root to
// buf and returns it. Passing a reused buf avoids allocation in the SGD
// inner loop.
func (t *Tree) PathToRoot(node int, buf []int32) []int32 {
	cur := int32(node)
	for {
		buf = append(buf, cur)
		if cur == t.root {
			return buf
		}
		cur = t.parent[cur]
	}
}

// Ancestor returns the m-th node on the path from node to the root:
// Ancestor(node, 0) == node, Ancestor(node, 1) == Parent(node), etc.
// It returns the root if m exceeds the path length.
func (t *Tree) Ancestor(node, m int) int {
	cur := int32(node)
	for i := 0; i < m && cur != t.root; i++ {
		cur = t.parent[cur]
	}
	return int(cur)
}

// AncestorAtDepth returns node's ancestor at depth d, or the node itself
// if d >= DepthOf(node).
func (t *Tree) AncestorAtDepth(node, d int) int {
	cur := int32(node)
	for int(t.depth[cur]) > d {
		cur = t.parent[cur]
	}
	return int(cur)
}

// NumSiblings returns the number of siblings of node (children of its
// parent excluding node itself). The root has none.
func (t *Tree) NumSiblings(node int) int {
	if int32(node) == t.root {
		return 0
	}
	p := t.parent[node]
	return int(t.childOff[p+1]-t.childOff[p]) - 1
}

// IsUniformDepth reports whether every leaf sits at the maximum depth; the
// TF model's additive composition (Eq. 1) assumes this, and the built-in
// generator guarantees it.
func (t *Tree) IsUniformDepth() bool {
	d := int32(t.Depth())
	for _, leaf := range t.itemNode {
		if t.depth[leaf] != d {
			return false
		}
	}
	return true
}

// InteriorPrefixLen returns n when nodes 0..n−1 are exactly the interior
// (category) nodes and every node >= n is a leaf, and 0 when the ids are
// interleaved. Trees built by Generate always have this layout; the
// trainer's hot-row caches (§6.1) rely on it to identify the frequently
// updated rows by a single comparison.
func (t *Tree) InteriorPrefixLen() int {
	n := t.NumNodes() - t.NumItems()
	for node := 0; node < n; node++ {
		if t.IsLeaf(node) {
			return 0
		}
	}
	return n
}

// LevelSizes returns the node count per depth, root first. For the paper's
// taxonomy this is [1, 23, 270, ~1500, 1.5M].
func (t *Tree) LevelSizes() []int {
	out := make([]int, t.Depth()+1)
	for d := range out {
		out[d] = int(t.levelOff[d+1] - t.levelOff[d])
	}
	return out
}

// Validate re-checks internal invariants; it is used by tests and after
// deserialization.
func (t *Tree) Validate() error {
	rebuilt, err := NewFromParents(t.ParentArray())
	if err != nil {
		return err
	}
	if rebuilt.NumItems() != t.NumItems() || rebuilt.Depth() != t.Depth() {
		return errors.New("taxonomy: inconsistent derived state")
	}
	return nil
}

// ParentArray returns a copy of the parent array (NoParent for the root),
// the canonical serializable form of the tree.
func (t *Tree) ParentArray() []int {
	out := make([]int, len(t.parent))
	for i, p := range t.parent {
		out[i] = int(p)
	}
	return out
}
