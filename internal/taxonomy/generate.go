package taxonomy

import (
	"fmt"

	"repro/internal/vecmath"
)

// GenConfig describes a synthetic taxonomy to generate. CategoryLevels are
// the interior level sizes from the top down (excluding the root); Items is
// the number of leaves attached under the lowest category level. The Yahoo!
// shopping taxonomy in the paper is CategoryLevels: {23, 270, 1500},
// Items: 1.5e6.
type GenConfig struct {
	// CategoryLevels[d] is the number of categories at interior level d+1
	// (level 0 is the root). Sizes must be non-decreasing from top to
	// bottom and Items must be at least the lowest category count,
	// otherwise some category would have no children and the leaves would
	// not share a uniform depth.
	CategoryLevels []int
	// Items is the number of leaf products.
	Items int
	// Skew is the Zipf exponent controlling how unevenly children are
	// spread over parents; 0 means round-robin (perfectly even). The real
	// taxonomy is skewed: a few categories hold most products.
	Skew float64
}

// PaperShape returns the shape of the taxonomy used in the paper's
// evaluation — three category levels of 23, 270 and 1500 nodes over 1.5M
// products — with every level divided by scale (floored at 1, minimum 2 for
// category levels so sibling sampling stays meaningful). scale=1 is the
// full tree; scale=1000 is a CI-sized tree with the same depth and relative
// fan-out.
func PaperShape(scale int) GenConfig {
	if scale < 1 {
		scale = 1
	}
	atLeast := func(x, lo int) int {
		if x < lo {
			return lo
		}
		return x
	}
	// Category levels shrink with the cube root of scale so the fan-out
	// ratios between adjacent levels (23:270:1500 ~ 1:12:65) survive
	// aggressive item scaling.
	catScale := 1
	for catScale*catScale*catScale < scale {
		catScale++
	}
	return GenConfig{
		CategoryLevels: []int{
			atLeast(23/catScale, 2),
			atLeast(270/catScale, 4),
			atLeast(1500/catScale, 8),
		},
		Items: atLeast(1500000/scale, 16),
		Skew:  0.6,
	}
}

// Generate builds a random taxonomy with the given shape. Every leaf ends
// up at the same depth (len(CategoryLevels)+1), which the TF model
// requires. Node ids are assigned level by level: root = 0, then level 1,
// and so on, so interior nodes occupy a contiguous low range — the layout
// the factor-cache heuristics in the trainer rely on.
func Generate(cfg GenConfig, rng *vecmath.RNG) (*Tree, error) {
	if cfg.Items <= 0 {
		return nil, fmt.Errorf("taxonomy: Items must be positive, got %d", cfg.Items)
	}
	for i, c := range cfg.CategoryLevels {
		if c <= 0 {
			return nil, fmt.Errorf("taxonomy: CategoryLevels[%d] must be positive, got %d", i, c)
		}
	}
	levelSizes := append([]int{1}, cfg.CategoryLevels...)
	levelSizes = append(levelSizes, cfg.Items)
	for d := 1; d < len(levelSizes); d++ {
		if levelSizes[d] < levelSizes[d-1] {
			return nil, fmt.Errorf("taxonomy: level %d (%d nodes) smaller than its parent level (%d); every category needs a child",
				d, levelSizes[d], levelSizes[d-1])
		}
	}

	total := 0
	for _, s := range levelSizes {
		total += s
	}
	parents := make([]int, total)
	parents[0] = NoParent

	// levelStart[d] = first node id at depth d
	levelStart := make([]int, len(levelSizes))
	for d := 1; d < len(levelSizes); d++ {
		levelStart[d] = levelStart[d-1] + levelSizes[d-1]
	}

	for d := 1; d < len(levelSizes); d++ {
		nParents := levelSizes[d-1]
		var zipf *vecmath.Zipf
		if cfg.Skew > 0 && nParents > 1 {
			zipf = vecmath.NewZipf(rng, nParents, cfg.Skew)
		}
		for i := 0; i < levelSizes[d]; i++ {
			node := levelStart[d] + i
			var pIdx int
			if i < nParents {
				// guarantee every parent gets at least one child so no
				// interior node is mistaken for a leaf
				pIdx = i
			} else if zipf != nil {
				pIdx = zipf.Draw()
			} else {
				pIdx = i % nParents
			}
			parents[node] = levelStart[d-1] + pIdx
		}
	}
	return NewFromParents(parents)
}

// MustGenerate is Generate for tests and examples with known-good configs;
// it panics on error.
func MustGenerate(cfg GenConfig, rng *vecmath.RNG) *Tree {
	t, err := Generate(cfg, rng)
	if err != nil {
		panic(err)
	}
	return t
}
