package infer

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// Property: the sharded parallel sweep reproduces the serial TopKStream
// ranking byte-for-byte — order and tie-breaks included — across random
// shard sizes, worker counts, k, catalog sizes and tie regimes. This is
// the contract the parallel serving path stands on.
func TestQuickShardedMergeMatchesSerial(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	f := func(seed uint16, shardRaw, kRaw, sizeRaw, tieRaw uint8) bool {
		rng := vecmath.NewRNG(uint64(seed) + 11)
		top := 2 + int(sizeRaw)%4
		tree, err := taxonomy.Generate(taxonomy.GenConfig{
			CategoryLevels: []int{top, top * 3},
			Items:          top*3 + 20 + int(sizeRaw)*7,
			Skew:           0.3,
		}, rng)
		if err != nil {
			return false
		}
		p := model.Params{
			K:              1 + int(kRaw)%8,
			TaxonomyLevels: 1 + int(sizeRaw)%4,
			MarkovOrder:    0,
			Alpha:          1,
			InitStd:        0.2,
			UseBias:        tieRaw%2 == 0,
		}
		// tieRaw picks a tie regime: dense random scores, all-tied (zero
		// factors, so every item's score is exactly equal), or grouped ties
		// (zero factors + per-node biases shared through common ancestors).
		switch tieRaw % 3 {
		case 1:
			p.InitStd = 0
		case 2:
			p.InitStd = 0
			p.UseBias = true
		}
		m, err := model.New(tree, 3, p, rng)
		if err != nil {
			return false
		}
		if p.UseBias {
			for n := 0; n < tree.NumNodes(); n++ {
				if m.TrainedNode(n) {
					// quantized biases so distinct categories still collide
					m.Bias.Row(n)[0] = float64(rng.Intn(3)) * 0.5
				}
			}
		}
		c := m.Compose()
		c.Index.SetShardItems(1 + int(shardRaw)%97)
		q := make([]float64, p.K)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		if tieRaw%4 == 3 {
			vecmath.Zero(q) // zero query: every score collapses to the bias
		}
		for _, k := range []int{1, 1 + int(kRaw)%10, tree.NumItems(), tree.NumItems() + 5} {
			want := Naive(c, q, k)
			for _, workers := range []int{2, 3, 4} {
				st := vecmath.NewTopKStream(k)
				pool.NaiveInto(c, q, st, workers)
				if !reflect.DeepEqual(want, st.Ranked()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the batched multi-query sweep gives every query of the batch
// exactly its single-query serial ranking.
func TestQuickMultiQuerySweepMatchesSerial(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	f := func(seed uint16, shardRaw, kRaw, batchRaw uint8) bool {
		rng := vecmath.NewRNG(uint64(seed) + 23)
		tree, err := taxonomy.Generate(taxonomy.GenConfig{
			CategoryLevels: []int{3, 9},
			Items:          40 + int(shardRaw),
			Skew:           0.3,
		}, rng)
		if err != nil {
			return false
		}
		p := model.Params{K: 1 + int(kRaw)%6, TaxonomyLevels: 2, Alpha: 1, InitStd: 0.3}
		m, err := model.New(tree, 3, p, rng)
		if err != nil {
			return false
		}
		c := m.Compose()
		c.Index.SetShardItems(1 + int(shardRaw)%31)
		batch := 1 + int(batchRaw)%6
		qs := make([][]float64, batch)
		outs := make([]*vecmath.TopKStream, batch)
		ks := make([]int, batch)
		for i := range qs {
			qs[i] = make([]float64, p.K)
			for j := range qs[i] {
				qs[i][j] = rng.NormFloat64()
			}
			ks[i] = 1 + (int(kRaw)+i)%12
			outs[i] = vecmath.NewTopKStream(ks[i])
		}
		check := func() bool {
			for i := range qs {
				if !reflect.DeepEqual(Naive(c, qs[i], ks[i]), outs[i].Ranked()) {
					return false
				}
			}
			return true
		}
		MultiNaiveInto(c, qs, outs)
		if !check() {
			return false
		}
		for i := range outs {
			outs[i].Reset(ks[i])
		}
		pool.MultiNaiveInto(c, qs, outs, 0)
		return check()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: parallel Cascade and Diversified match their serial
// counterparts exactly, stats included, for random shard sizes and
// beam/quota settings.
func TestQuickParallelCascadeDiversifiedMatchSerial(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	f := func(seed uint16, shardRaw, kRaw, cfgRaw uint8) bool {
		rng := vecmath.NewRNG(uint64(seed) + 31)
		tree, err := taxonomy.Generate(taxonomy.GenConfig{
			CategoryLevels: []int{3, 8, 20},
			Items:          80 + int(shardRaw),
			Skew:           0.4,
		}, rng)
		if err != nil {
			return false
		}
		p := model.Params{K: 1 + int(kRaw)%6, TaxonomyLevels: 3, Alpha: 1, InitStd: 0.25}
		m, err := model.New(tree, 3, p, rng)
		if err != nil {
			return false
		}
		c := m.Compose()
		c.Index.SetShardItems(1 + int(shardRaw)%53)
		q := make([]float64, p.K)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		k := 1 + int(kRaw)%15

		keep := 0.2 + float64(cfgRaw%8)/10
		cfg := UniformCascade(tree.Depth(), keep)
		wantItems, wantStats, err := Cascade(c, q, cfg, k)
		if err != nil {
			return false
		}
		// override leaf chunking implicitly via small frontiers: parallel
		// path must agree whether or not it actually fanned out
		gotItems, gotStats, err := pool.Cascade(c, q, cfg, k, 0)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(wantItems, gotItems) || !reflect.DeepEqual(wantStats, gotStats) {
			return false
		}

		maxPer := 1 + int(cfgRaw)%4
		catDepth := 1 + int(cfgRaw)%(tree.Depth()-1)
		wantDiv, err := Diversified(c, q, k, maxPer, catDepth)
		if err != nil {
			return false
		}
		for _, workers := range []int{2, 4} {
			gotDiv, err := pool.Diversified(c, q, k, maxPer, catDepth, workers)
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(wantDiv, gotDiv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
