package infer

import (
	"context"
	"reflect"
	"runtime/debug"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// execI8 runs a naive int8 plan and returns the ranked page, failing the
// property on executor errors.
func execI8(t *testing.T, p *Pool, c *model.Composed, q []float64, k, workers int) []vecmath.Scored {
	t.Helper()
	res, err := p.Execute(context.Background(), c, q, Plan{Precision: model.PrecisionInt8, K: k, MaxWorkers: workers})
	if err != nil {
		t.Logf("int8 execute (k=%d workers=%d): %v", k, workers, err)
		return nil
	}
	return res.Items
}

// Property: the two-stage int8 pipeline returns rankings byte-identical
// to the f64 path — order and tie-breaks included — serial and
// pool-sharded, across shard sizes, worker counts, k (including k at and
// past the catalog, where the candidate heap covers every item and the
// quantized sweep is skipped entirely) and all tie regimes. The near-tie
// regime (gaps ~1e-12, far below any quantization error bound) cannot be
// separated by the int8 sweep and must come back exact through
// escalation into the plain f64 sweep.
func TestQuickI8MatchesF64(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	f := func(seed uint16, shardRaw, kRaw, sizeRaw, tieRaw uint8) bool {
		c, q := f32World(t, uint64(seed)+601, shardRaw, kRaw, sizeRaw, tieRaw)
		for _, k := range []int{1, 1 + int(kRaw)%10, c.NumItems(), c.NumItems() + 5} {
			want := Naive(c, q, k)
			if got := execI8(t, nil, c, q, k, 0); !reflect.DeepEqual(want, got) {
				t.Logf("serial int8 naive diverged (k=%d):\nwant %v\ngot  %v", k, want, got)
				return false
			}
			for _, workers := range []int{2, 4} {
				if got := execI8(t, pool, c, q, k, workers); !reflect.DeepEqual(want, got) {
					t.Logf("pooled int8 naive diverged (k=%d workers=%d)", k, workers)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the blocked multi-query int8 batch sweep gives every query of
// the batch exactly its serial f64 ranking, serial and pooled — the
// bounded candidate heaps, the widened group kernel, and the per-query
// rescore/escalation finish must compose without breaking a single
// tie-break.
func TestQuickMultiI8MatchesF64(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	f := func(seed uint16, shardRaw, kRaw, batchRaw, tieRaw uint8) bool {
		c, base := f32World(t, uint64(seed)+701, shardRaw, kRaw, batchRaw, tieRaw)
		batch := 1 + int(batchRaw)%6
		qs := make([][]float64, batch)
		pls := make([]Plan, batch)
		rng := vecmath.NewRNG(uint64(seed) + 877)
		for i := range qs {
			qs[i] = append([]float64(nil), base...)
			for j := range qs[i] {
				qs[i][j] += rng.NormFloat64() * 1e-3
			}
			k := 1 + (int(kRaw)+i)%12
			if i == 0 {
				// force one query whose candidate budget covers the catalog:
				// it must skip the int8 sweep and still come back exact
				// through the f64 finish path
				k = c.NumItems() + 2
			}
			pls[i] = Plan{Precision: model.PrecisionInt8, K: k}
		}
		for _, p := range []*Pool{nil, pool} {
			results, err := p.ExecuteBatch(context.Background(), c, qs, pls)
			if err != nil {
				t.Logf("int8 batch (pool=%v): %v", p != nil, err)
				return false
			}
			for i := range results {
				if want := Naive(c, qs[i], pls[i].K); !reflect.DeepEqual(want, results[i].Items) {
					t.Logf("int8 batch query %d diverged (pool=%v)", i, p != nil)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// A catalog whose factor-driven score gaps (~1e-9) sit far below the
// quantization error bound (~1e-2, set by the per-row code step of the
// irregular factor values) must force the int8 margin-escalation path
// and still come back exact, counting the escalation. The near-ties
// have to live in the factors: biases pass through the int8 combine in
// full f64 precision, so bias-only ties are separated exactly without
// ever escalating.
func TestI8EscalationNearTiesStaysExact(t *testing.T) {
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{CategoryLevels: []int{4, 16}, Items: 600, Skew: 0}, vecmath.NewRNG(3))
	p := model.Params{K: 4, TaxonomyLevels: 3, Alpha: 1, InitStd: 0}
	m, err := model.New(tree, 2, p, vecmath.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < tree.NumNodes(); n++ {
		if m.TrainedNode(n) {
			row := m.Node.Row(n)
			// irregular values that don't land on the int8 code grid, with
			// a per-node perturbation far smaller than the code step
			row[0] = 0.9 + float64(n)*1e-9
			row[1] = 0.37
			row[2] = -0.21
			row[3] = 0.53
		}
	}
	c := m.Compose()
	c.Index.SetShardItems(37)
	q := []float64{0.8, -0.5, 0.9, 0.33}
	before := I8Escalations()
	want := Naive(c, q, 10)
	got := execI8(t, nil, c, q, 10, 0)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("escalated int8 ranking diverged:\nwant %v\ngot  %v", want, got)
	}
	if I8Escalations() == before {
		t.Fatal("near-tie catalog did not trigger an int8 margin escalation")
	}
	pool := NewPool(4)
	defer pool.Close()
	if got := execI8(t, pool, c, q, 10, 0); !reflect.DeepEqual(want, got) {
		t.Fatal("pooled escalated int8 ranking diverged")
	}
}

// The serial int8 pipeline must not allocate on the steady-state serving
// path (given a warm scratch pool and materialized quantized slabs).
func TestExecuteI8ZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts at random under the race detector")
	}
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{CategoryLevels: []int{4, 16}, Items: 2000, Skew: 0.3}, vecmath.NewRNG(5))
	m, err := model.New(tree, 2, model.Params{K: 16, TaxonomyLevels: 3, Alpha: 1, InitStd: 0.2}, vecmath.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	c := m.Compose()
	q := make([]float64, 16)
	rng := vecmath.NewRNG(7)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	pl := Plan{Precision: model.PrecisionInt8, K: 10}
	st := vecmath.NewTopKStream(10)
	ctx := context.Background()
	if _, err := ExecuteInto(ctx, c, q, pl, st); err != nil { // warm scratch + slabs
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ExecuteInto(ctx, c, q, pl, st); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("int8 ExecuteInto allocated %.1f objects per query, want 0", allocs)
	}
}
