package infer

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

func composed(t *testing.T) *model.Composed {
	t.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{4, 12, 36},
		Items:          400,
		Skew:           0.4,
	}, vecmath.NewRNG(3))
	m, err := model.New(tree, 10, model.Params{K: 8, TaxonomyLevels: 4, InitStd: 0.3, Alpha: 1}, vecmath.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	return m.Compose()
}

func query(k int) []float64 {
	q := make([]float64, k)
	rng := vecmath.NewRNG(11)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	return q
}

func TestNaiveTopKOrdering(t *testing.T) {
	c := composed(t)
	q := query(c.K())
	top := Naive(c, q, 10)
	if len(top) != 10 {
		t.Fatalf("len = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("not sorted descending")
		}
	}
	// the best item must truly be the argmax
	best := top[0]
	for item := 0; item < c.NumItems(); item++ {
		if s := vecmath.Dot(q, c.ItemFactor(item)); s > best.Score {
			t.Fatalf("item %d scores %v above reported best %v", item, s, best.Score)
		}
	}
}

func TestCascadeFullKeepMatchesNaive(t *testing.T) {
	c := composed(t)
	q := query(c.K())
	cfg := UniformCascade(c.Tree.Depth(), 1.0)
	cascTop, stats, err := Cascade(c, q, cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	naiveTop := Naive(c, q, 20)
	if len(cascTop) != len(naiveTop) {
		t.Fatalf("lengths differ: %d vs %d", len(cascTop), len(naiveTop))
	}
	for i := range naiveTop {
		if cascTop[i].ID != naiveTop[i].ID {
			t.Fatalf("rank %d: cascade %v vs naive %v", i, cascTop[i], naiveTop[i])
		}
		if math.Abs(cascTop[i].Score-naiveTop[i].Score) > 1e-12 {
			t.Fatalf("rank %d scores differ", i)
		}
	}
	if stats.LeavesScored != c.NumItems() {
		t.Fatalf("full keep should score all leaves, got %d", stats.LeavesScored)
	}
}

func TestCascadePrunesWork(t *testing.T) {
	c := composed(t)
	q := query(c.K())
	full, _, err := CascadeScores(c, q, UniformCascade(c.Tree.Depth(), 1.0))
	if err != nil {
		t.Fatal(err)
	}
	_, statsFull, _ := Cascade(c, q, UniformCascade(c.Tree.Depth(), 1.0), 10)
	_, statsSmall, err := Cascade(c, q, UniformCascade(c.Tree.Depth(), 0.2), 10)
	if err != nil {
		t.Fatal(err)
	}
	if statsSmall.NodesScored >= statsFull.NodesScored {
		t.Fatalf("k=20%% should do less work: %d vs %d", statsSmall.NodesScored, statsFull.NodesScored)
	}
	if statsSmall.LeavesScored >= statsFull.LeavesScored {
		t.Fatal("k=20% should score fewer leaves")
	}
	_ = full
}

func TestCascadeScoresMatchNaiveOnReachedItems(t *testing.T) {
	c := composed(t)
	q := query(c.K())
	scores, stats, err := CascadeScores(c, q, UniformCascade(c.Tree.Depth(), 0.5))
	if err != nil {
		t.Fatal(err)
	}
	reached := 0
	for item, s := range scores {
		if math.IsInf(s, -1) {
			continue
		}
		reached++
		want := vecmath.Dot(q, c.ItemFactor(item))
		if math.Abs(s-want) > 1e-12 {
			t.Fatalf("item %d: cascade score %v vs direct %v", item, s, want)
		}
	}
	if reached != stats.LeavesScored {
		t.Fatalf("reached %d != LeavesScored %d", reached, stats.LeavesScored)
	}
}

func TestCascadeMonotoneCandidates(t *testing.T) {
	// growing the leaf-level keep (holding upper levels at 100%) must only
	// add candidates — the Figure 8(d) monotonicity argument.
	c := composed(t)
	q := query(c.K())
	depth := c.Tree.Depth()
	prevReached := -1
	for _, k3 := range []float64{0.1, 0.3, 0.6, 1.0} {
		cfg := UniformCascade(depth, 1.0)
		cfg.KeepFrac[depth-2] = k3
		_, stats, err := Cascade(c, q, cfg, 10)
		if err != nil {
			t.Fatal(err)
		}
		if stats.LeavesScored < prevReached {
			t.Fatalf("candidate set shrank as k3 grew: %d -> %d", prevReached, stats.LeavesScored)
		}
		prevReached = stats.LeavesScored
	}
}

func TestCascadeBeamContainsTopCategoriesChildren(t *testing.T) {
	c := composed(t)
	q := query(c.K())
	cfg := UniformCascade(c.Tree.Depth(), 0.5)
	scores, _, err := CascadeScores(c, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// the best top-level category's best leaf item must be reachable
	best := c.LevelScores(q, 1)
	top := vecmath.TopK(best, 1)[0]
	found := false
	for item := 0; item < c.NumItems(); item++ {
		if c.Tree.AncestorAtDepth(c.Tree.ItemNode(item), 1) == top.ID && !math.IsInf(scores[item], -1) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no leaf under the best top-level category was scored")
	}
}

func TestCascadeConfigValidation(t *testing.T) {
	c := composed(t)
	q := query(c.K())
	if _, _, err := Cascade(c, q, CascadeConfig{KeepFrac: []float64{0.5}}, 5); err == nil {
		t.Fatal("expected length error")
	}
	if _, _, err := Cascade(c, q, CascadeConfig{KeepFrac: []float64{0.5, 0, 0.5}}, 5); err == nil {
		t.Fatal("expected range error for 0")
	}
	if _, _, err := Cascade(c, q, CascadeConfig{KeepFrac: []float64{0.5, 1.5, 0.5}}, 5); err == nil {
		t.Fatal("expected range error for > 1")
	}
}

func TestCascadeKeepsAtLeastOneNodePerLevel(t *testing.T) {
	c := composed(t)
	q := query(c.K())
	_, stats, err := Cascade(c, q, UniformCascade(c.Tree.Depth(), 0.001), 5)
	if err != nil {
		t.Fatal(err)
	}
	for lvl, kept := range stats.KeptPerLevel {
		if kept < 1 {
			t.Fatalf("level %d kept %d nodes", lvl, kept)
		}
	}
	if stats.LeavesScored == 0 {
		t.Fatal("tiny keep fractions must still reach some leaves")
	}
}

func TestStructuredRanking(t *testing.T) {
	c := composed(t)
	q := query(c.K())
	sr := Structured(c, q, 15)
	if len(sr.Levels) != c.Tree.Depth()-1 {
		t.Fatalf("Levels = %d, want %d", len(sr.Levels), c.Tree.Depth()-1)
	}
	for d, level := range sr.Levels {
		if len(level) != len(c.Tree.Level(d+1)) {
			t.Fatalf("level %d incomplete", d)
		}
		for i := 1; i < len(level); i++ {
			if level[i].Score > level[i-1].Score {
				t.Fatalf("level %d not sorted", d)
			}
		}
	}
	if len(sr.Items) != 15 {
		t.Fatalf("Items = %d", len(sr.Items))
	}
	// structured item list must equal naive
	naive := Naive(c, q, 15)
	for i := range naive {
		if sr.Items[i].ID != naive[i].ID {
			t.Fatal("structured items differ from naive")
		}
	}
}

func TestUniformCascadeShape(t *testing.T) {
	cfg := UniformCascade(4, 0.3)
	if len(cfg.KeepFrac) != 3 {
		t.Fatalf("KeepFrac len = %d, want 3", len(cfg.KeepFrac))
	}
	for _, f := range cfg.KeepFrac {
		if f != 0.3 {
			t.Fatal("wrong fraction")
		}
	}
}
