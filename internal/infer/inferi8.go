package infer

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/vecmath"
)

// The two-stage int8 scoring pipeline — the tier below f32. Stage one
// sweeps the index's quantized int8 slabs (a quarter of the f32 sweep's
// bytes per row) into an over-fetched candidate heap; stage two rescores
// the candidates with the exact float64 factors into the caller's k-heap.
//
// The exactness argument is the f32 pipeline's verbatim (see infer32.go)
// with one substitution: the certified bound ε comes from
// model.ScoringIndex.ItemErrBoundI8, which charges the measured per-row
// quantization error, the query's own quantization error against the row
// scales, and the float64 rounding of the short combine. ε_i8 is orders
// of magnitude larger than ε_f32, so the initial over-fetch is larger too
// (i8OverFetch) — a prune that keeps too few candidates costs an
// escalation re-sweep, never correctness. Because the integer dot is
// exact, a blocked/sharded/multi-query int8 sweep is trivially bitwise
// identical to the serial one; only the heap-merge argument of
// TopKStream.Merge is needed on top, exactly as for f32.
//
// The candidate heap is a float64 TopKStream (the combine produces
// float64 scores), so the rescore and certificate live here rather than
// sharing infer32.go's f32-typed ones; the logic is line for line the
// same.

// i8Escalations counts boundary-separation failures across all int8
// pipelines (naive, cascade, batched; serial and pooled).
var i8Escalations atomic.Int64

// I8Escalations returns the process-wide count of int8 margin escalations
// — each one a re-sweep with a doubled candidate budget. A climbing count
// means the score distribution is tighter than the quantization error and
// the f32 (or f64) tier may be cheaper.
func I8Escalations() int64 { return i8Escalations.Load() }

// i8OverFetch is the initial candidate budget k' for a final ranking of
// k. The int8 error bound dwarfs the f32 one, so the margin is a full
// doubling plus a larger floor: order statistics of a 50k-item catalog
// put the k-th/2k-th score gap near the quantization error, and a margin
// that usually certifies in one pass beats a smaller sweep that
// routinely escalates.
func i8OverFetch(k int) int { return 2*k + 64 }

// i8Scratch is the reusable per-query state of an int8 pipeline: the
// quantized query, its code parameters, and the candidate heap. Pooled so
// the steady-state serving path allocates nothing.
type i8Scratch struct {
	u         []int8
	qscale    float64
	sumQ      float64
	sumAbsErr float64
	cand      vecmath.TopKStream
}

var i8Scratches = sync.Pool{New: func() any { return new(i8Scratch) }}

// getI8Scratch returns a scratch with the query quantized once — every
// sweep, escalation and shard of the request reuses the same codes.
func getI8Scratch(q []float64) *i8Scratch {
	sc := i8Scratches.Get().(*i8Scratch)
	if cap(sc.u) < len(q) {
		sc.u = make([]int8, len(q))
	}
	sc.u = sc.u[:len(q)]
	sc.qscale, sc.sumQ, sc.sumAbsErr = vecmath.QuantizeQuery(sc.u, q)
	return sc
}

// sweepRangeI8Into is sweepRangeInto over the quantized slab: it scores
// the item range [rangeLo, rangeHi) in block-sized steps into an armed
// collector with the same inlined threshold rejection.
func sweepRangeI8Into(ix *model.ScoringIndex, u []int8, qscale, sumQ float64, rangeLo, rangeHi int, block []float64, st *vecmath.TopKStream) {
	th, full := st.Threshold()
	for lo := rangeLo; lo < rangeHi; lo += len(block) {
		hi := lo + len(block)
		if hi > rangeHi {
			hi = rangeHi
		}
		buf := block[:hi-lo]
		ix.ItemScoresRangeI8Into(u, qscale, sumQ, lo, hi, buf)
		for i, s := range buf {
			if full && s < th {
				continue
			}
			st.Push(lo+i, s)
			th, full = st.Threshold()
		}
	}
}

// sweepRangeI8MaskedInto is the quantized-slab twin of
// sweepRangeMaskedInto, with the same per-block adaptive visitation.
func sweepRangeI8MaskedInto(ix *model.ScoringIndex, u []int8, qscale, sumQ float64, rangeLo, rangeHi int, block []float64, mask *vecmath.Bitset, st *vecmath.TopKStream) {
	th, full := st.Threshold()
	for lo := rangeLo; lo < rangeHi; lo += len(block) {
		hi := lo + len(block)
		if hi > rangeHi {
			hi = rangeHi
		}
		eligible := mask.CountRange(lo, hi)
		switch {
		case eligible == 0:
			continue
		case eligible == hi-lo:
			buf := block[:hi-lo]
			ix.ItemScoresRangeI8Into(u, qscale, sumQ, lo, hi, buf)
			for i, s := range buf {
				if full && s < th {
					continue
				}
				st.Push(lo+i, s)
				th, full = st.Threshold()
			}
		case eligible*4 >= (hi-lo)*3:
			buf := block[:hi-lo]
			ix.ItemScoresRangeI8Into(u, qscale, sumQ, lo, hi, buf)
			for i, s := range buf {
				if !mask.Get(lo + i) {
					continue
				}
				if full && s < th {
					continue
				}
				st.Push(lo+i, s)
				th, full = st.Threshold()
			}
		default:
			mask.ForEachInRange(lo, hi, func(item int) {
				s := ix.ScoreItemI8(item, u, qscale, sumQ)
				if full && s < th {
					return
				}
				st.Push(item, s)
				th, full = st.Threshold()
			})
		}
	}
}

// rescoreEntries pushes the exact float64 score of every retained int8
// candidate into st and reports whether the boundary is certified
// separated — rescoreItems with a float64-typed candidate heap. A
// cancelled rescore reports false; the partial heap must never certify.
func rescoreEntries(done <-chan struct{}, ix *model.ScoringIndex, q []float64, cand *vecmath.TopKStream, st *vecmath.TopKStream, eps float64) bool {
	entries := cand.Entries()
	for lo := 0; lo < len(entries); lo += rescoreChunk {
		if canceled(done) {
			return false
		}
		hi := lo + rescoreChunk
		if hi > len(entries) {
			hi = len(entries)
		}
		for _, e := range entries[lo:hi] {
			st.Push(e.ID, ix.ScoreItem(e.ID, q))
		}
	}
	return separatedI8(st, cand, eps)
}

// separatedI8 is separated() for a float64 candidate heap: the exact k-th
// boundary must strictly clear the int8 retention threshold τ by more
// than the certified bound. An unfull candidate heap retained everything;
// a non-finite τ or ε never certifies (the bound covers quantization and
// rounding, not overflow or NaN poisoning).
func separatedI8(st, cand *vecmath.TopKStream, eps float64) bool {
	tau, candFull := cand.Threshold()
	if !candFull {
		return true
	}
	if math.IsInf(tau, 0) || math.IsNaN(tau) || math.IsInf(eps, 0) || math.IsNaN(eps) {
		return false
	}
	boundary, full := st.Threshold()
	return full && boundary > tau+eps
}

// naiveI8 runs the two-stage int8 pipeline from an explicit starting
// candidate budget — the int8 twin of naiveF32, same escalation loop,
// same degeneration to the plain f64 sweep once the budget covers every
// eligible item. A bound that cannot certify at all (+Inf: non-finite
// query, or a factor dimensionality past the exact int32 dot range) goes
// straight to the exact sweep instead of escalating through useless
// quantized passes. Steady-state calls allocate nothing.
func (p *Pool) naiveI8(done <-chan struct{}, c *model.Composed, q []float64, maxWorkers int, mask *vecmath.Bitset, eligible int, st *vecmath.TopKStream, kp0 int) {
	ix := c.Index
	k := st.K()
	if k <= 0 {
		return
	}
	sc := getI8Scratch(q)
	defer i8Scratches.Put(sc)
	eps := ix.ItemErrBoundI8(q, sc.sumAbsErr)
	if math.IsInf(eps, 0) || math.IsNaN(eps) {
		st.Reset(k)
		p.runSweep(done, ix, q, mask, maxWorkers, st)
		return
	}
	for kp := kp0; ; kp *= 2 {
		if canceled(done) {
			return
		}
		if kp >= eligible {
			// the candidate budget covers every eligible item: nothing to
			// prune, run the exact sweep directly
			st.Reset(k)
			p.runSweep(done, ix, q, mask, maxWorkers, st)
			return
		}
		sc.cand.Reset(kp)
		p.runSweepI8(done, ix, sc.u, sc.qscale, sc.sumQ, mask, maxWorkers, kp, &sc.cand)
		if canceled(done) {
			// a cancelled sweep left a truncated candidate set; rescoring it
			// could "certify" a wrong ranking, so bail before stage two
			return
		}
		st.Reset(k)
		if rescoreEntries(done, ix, q, &sc.cand, st, eps) {
			return
		}
		i8Escalations.Add(1)
	}
}

// runSweepI8 is runSweep over the quantized slab into a candidate heap of
// budget kp. The serial claim loop repeats the documented runSweep
// pattern (a shared closure would heap-escape the block buffer).
func (p *Pool) runSweepI8(done <-chan struct{}, ix *model.ScoringIndex, u []int8, qscale, sumQ float64, mask *vecmath.Bitset, maxWorkers, kp int, cand *vecmath.TopKStream) {
	fan := p.fanout(maxWorkers, ix.NumShards())
	if fan <= 1 {
		var block [blockItems]float64
		for s, n := 0, ix.NumShards(); s < n; s++ {
			if canceled(done) {
				return
			}
			lo, hi := ix.Shard(s)
			if mask == nil {
				sweepRangeI8Into(ix, u, qscale, sumQ, lo, hi, block[:], cand)
			} else {
				sweepRangeI8MaskedInto(ix, u, qscale, sumQ, lo, hi, block[:], mask, cand)
			}
		}
		return
	}
	t := p.getSweepTask()
	t.ix, t.qi8, t.qscale, t.sumQ, t.k, t.out, t.mask, t.done = ix, u, qscale, sumQ, kp, cand, mask, done
	t.numShards = int32(ix.NumShards())
	t.next.Store(0)
	p.dispatch(t, fan)
	t.ix, t.qi8, t.out, t.mask, t.done = nil, nil, nil, nil, nil
	p.sweeps.Put(t)
}

// ---- batched multi-query int8 sweep -------------------------------------

// multiI8Scratch is the reusable state of a batched int8 sweep: per-query
// candidate heaps, their pointer view, the quantized queries sliced from
// one flat backing array with their code parameters, and the active-query
// index list the blocked sweep groups over. Pooled like multiF32Scratch.
type multiI8Scratch struct {
	cands      []vecmath.TopKStream
	ptrs       []*vecmath.TopKStream
	ubuf       []int8
	us         [][]int8
	qscales    []float64
	sumQs      []float64
	sumAbsErrs []float64
	active     []int
}

var multiI8Scratches = sync.Pool{New: func() any { return new(multiI8Scratch) }}

// getMultiI8Scratch arms a scratch for the batch: candidate heaps reset
// to each query's over-fetch budget and every query quantized once.
func getMultiI8Scratch(qs [][]float64, outs []*vecmath.TopKStream) *multiI8Scratch {
	sc := multiI8Scratches.Get().(*multiI8Scratch)
	b := len(qs)
	if cap(sc.cands) < b {
		sc.cands = make([]vecmath.TopKStream, b)
		sc.ptrs = make([]*vecmath.TopKStream, b)
		sc.us = make([][]int8, b)
		sc.qscales = make([]float64, b)
		sc.sumQs = make([]float64, b)
		sc.sumAbsErrs = make([]float64, b)
	}
	sc.cands, sc.ptrs, sc.us = sc.cands[:b], sc.ptrs[:b], sc.us[:b]
	sc.qscales, sc.sumQs, sc.sumAbsErrs = sc.qscales[:b], sc.sumQs[:b], sc.sumAbsErrs[:b]
	need := 0
	for _, q := range qs {
		need += len(q)
	}
	if cap(sc.ubuf) < need {
		sc.ubuf = make([]int8, need)
	}
	sc.ubuf = sc.ubuf[:need]
	off := 0
	for i, q := range qs {
		sc.cands[i].Reset(i8OverFetch(outs[i].K()))
		sc.ptrs[i] = &sc.cands[i]
		u := sc.ubuf[off : off+len(q) : off+len(q)]
		sc.qscales[i], sc.sumQs[i], sc.sumAbsErrs[i] = vecmath.QuantizeQuery(u, q)
		sc.us[i] = u
		off += len(q)
	}
	return sc
}

// activeInto fills dst with the indices of queries whose candidate budget
// does not already cover the catalog — the queries the shared quantized
// sweep actually runs for; the rest go straight to the f64 finish path.
func activeI8Into(dst []int, cands []vecmath.TopKStream, items int) []int {
	dst = dst[:0]
	for i := range cands {
		if cands[i].K() < items {
			dst = append(dst, i)
		}
	}
	return dst
}

// sweepShardI8Multi sweeps one shard for the active queries in groups of
// qBlock through the blocked multi-query kernel: each group reads the
// shard's quantized rows once.
func sweepShardI8Multi(ix *model.ScoringIndex, us [][]int8, qscales, sumQs []float64, sts []*vecmath.TopKStream, active []int, lo, hi int) {
	for g := 0; g < len(active); g += qBlock {
		ge := g + qBlock
		if ge > len(active) {
			ge = len(active)
		}
		var gu [qBlock][]int8
		var gqs, gsum [qBlock]float64
		var gst [qBlock]*vecmath.TopKStream
		n := ge - g
		for j := 0; j < n; j++ {
			qi := active[g+j]
			gu[j], gqs[j], gsum[j], gst[j] = us[qi], qscales[qi], sumQs[qi], sts[qi]
		}
		sweepRangeI8MultiInto(ix, gu[:n], gqs[:n], gsum[:n], lo, hi, gst[:n])
	}
}

// sweepRangeI8MultiInto sweeps [rangeLo, rangeHi) once for a group of at
// most qBlock queries: every 4-row block is scored against the whole
// group (ItemScoresRangeI8MultiInto) before the sweep advances. Each
// query's pushes arrive in the same (block-ascending, item-ascending)
// order as its single-query sweep, so each candidate heap retains the
// identical set.
func sweepRangeI8MultiInto(ix *model.ScoringIndex, us [][]int8, qscales, sumQs []float64, rangeLo, rangeHi int, sts []*vecmath.TopKStream) {
	var bufs [qBlock][blockItems]float64
	var dsts [qBlock][]float64
	var th [qBlock]float64
	var full [qBlock]bool
	for qi := range us {
		th[qi], full[qi] = sts[qi].Threshold()
	}
	for lo := rangeLo; lo < rangeHi; lo += blockItems {
		hi := lo + blockItems
		if hi > rangeHi {
			hi = rangeHi
		}
		for qi := range us {
			dsts[qi] = bufs[qi][:hi-lo]
		}
		ix.ItemScoresRangeI8MultiInto(us, qscales, sumQs, lo, hi, dsts[:len(us)])
		for qi := range us {
			st := sts[qi]
			for i, s := range dsts[qi] {
				if full[qi] && s < th[qi] {
					continue
				}
				st.Push(lo+i, s)
				th[qi], full[qi] = st.Threshold()
			}
		}
	}
}

// finishMultiI8 runs the per-query rescore stage of a batched int8 sweep;
// a query whose margin fails to separate escalates alone through the
// serial pipeline at the next budget doubling.
func finishMultiI8(done <-chan struct{}, c *model.Composed, qs [][]float64, outs []*vecmath.TopKStream, sc *multiI8Scratch) {
	ix := c.Index
	n := ix.NumItems()
	for i, q := range qs {
		if canceled(done) {
			return
		}
		k := outs[i].K()
		if k <= 0 {
			continue
		}
		if sc.cands[i].K() >= n {
			// the candidate heap saw every item; rescore is the whole input
			outs[i].Reset(k)
			NaiveInto(c, q, outs[i])
			continue
		}
		eps := ix.ItemErrBoundI8(q, sc.sumAbsErrs[i])
		outs[i].Reset(k)
		if rescoreEntries(done, ix, q, &sc.cands[i], outs[i], eps) {
			continue
		}
		i8Escalations.Add(1)
		(*Pool)(nil).naiveI8(done, c, q, 1, nil, n, outs[i], sc.cands[i].K()*2)
	}
}
