// Package infer implements recommendation over trained TF models: the
// naive full-scan top-k and the paper's cascaded inference (§5.1), which
// walks the taxonomy top-down keeping only the best k_i percent of each
// category level and scores leaves only under the surviving categories —
// the accuracy/efficiency dial of Figure 8(c,d).
//
// All ranking paths run off the snapshot's model.ScoringIndex: scores are
// produced by blocked sweeps over contiguous factor slabs and consumed by
// streaming bounded-heap collectors, so a query never materializes a
// catalog-sized score array.
//
// Queries are described by a Plan — strategy, precision, result page,
// worker cap, and an optional item Filter — validated once and run by the
// single Execute path (plan.go), which composes the engines of exec.go.
// The strategy-specific functions in this file and its siblings predate
// the plan executor and remain as thin deprecated wrappers so existing
// callers and the byte-identity pinning suites keep compiling unchanged.
package infer

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/vecmath"
)

// blockItems is the number of contiguous items scored per sweep step; the
// block buffer lives on the stack and one block of float64 fits in L1.
const blockItems = 256

// qBlock is how many queries a batched sweep scores per slab pass: each
// item block's factor rows are loaded once and dotted against up to
// qBlock queries before the sweep advances. Eight queries keep the
// group's score buffers within a few KB of stack while amortizing both
// the slab read that dominates wide-catalog sweeps and, on the int8
// tier, the per-block code widening of the quantized kernel (which the
// vecmath fast path supports up to groups of eight).
const qBlock = 8

// NaiveInto streams every item's score through the scoring index into an
// armed TopKStream. It performs no heap allocation, making it the
// zero-garbage serving core; pair it with a pooled collector and read the
// ranking with Ranked.
//
// Deprecated: build a Plan and call ExecuteInto.
func NaiveInto(c *model.Composed, q []float64, st *vecmath.TopKStream) {
	var block [blockItems]float64
	sweepRangeInto(c.Index, q, 0, c.Index.NumItems(), block[:], st)
}

// sweepRangeInto scores the item range [rangeLo, rangeHi) in block-sized
// steps into an armed TopKStream, sharing the caller's block buffer so
// the whole sweep is allocation-free. It is the per-shard unit of work of
// the parallel pool and the whole-catalog body of NaiveInto.
func sweepRangeInto(ix *model.ScoringIndex, q []float64, rangeLo, rangeHi int, block []float64, st *vecmath.TopKStream) {
	th, full := st.Threshold()
	for lo := rangeLo; lo < rangeHi; lo += len(block) {
		hi := lo + len(block)
		if hi > rangeHi {
			hi = rangeHi
		}
		buf := block[:hi-lo]
		ix.ItemScoresRangeInto(q, lo, hi, buf)
		for i, s := range buf {
			// once the heap is full, items strictly below the k-th score
			// can be rejected with this one inlined comparison; ties must
			// go through Push so the lower-ID tie-break still applies
			if full && s < th {
				continue
			}
			st.Push(lo+i, s)
			th, full = st.Threshold()
		}
	}
}

// Naive scores every item and returns the top-k, the baseline the paper's
// cascaded inference is measured against.
//
// Deprecated: build a Plan and call Execute.
func Naive(c *model.Composed, q []float64, k int) []vecmath.Scored {
	st := vecmath.NewTopKStream(k)
	NaiveInto(c, q, st)
	return st.Ranked()
}

// CascadeConfig sets the per-level keep fractions k_i of §5.1:
// KeepFrac[d-1] applies to taxonomy depth d (the category levels between
// the root and the items). n_i = ceil(k_i · size(level i)) nodes survive
// at each level; all leaves under surviving lowest categories are scored.
type CascadeConfig struct {
	KeepFrac []float64
}

// UniformCascade returns a config keeping fraction f at every category
// level of a depth-deep taxonomy (depth = tree.Depth()).
func UniformCascade(depth int, f float64) CascadeConfig {
	kf := make([]float64, depth-1)
	for i := range kf {
		kf[i] = f
	}
	return CascadeConfig{KeepFrac: kf}
}

// Validate checks the fractions against a taxonomy of the given depth.
func (cfg CascadeConfig) Validate(depth int) error {
	if len(cfg.KeepFrac) != depth-1 {
		return fmt.Errorf("infer: need %d keep fractions for depth %d, got %d", depth-1, depth, len(cfg.KeepFrac))
	}
	for i, f := range cfg.KeepFrac {
		if f <= 0 || f > 1 {
			return fmt.Errorf("infer: KeepFrac[%d] = %v outside (0,1]", i, f)
		}
	}
	return nil
}

// Stats reports the work a cascade performed; NodesScored is the number
// of query–factor dot products (the paper's inference cost unit).
type Stats struct {
	// NodesScored counts scored taxonomy nodes, including leaves.
	NodesScored int
	// LeavesScored counts scored items (candidates for the final ranking).
	LeavesScored int
	// KeptPerLevel records how many nodes survived each category level.
	KeptPerLevel []int
}

// walk performs the top-down beam of §5.1 over the index's node-major slab
// and returns the surviving leaf frontier; leaves are not yet scored
// (stats count only the interior work so far). Each level's survivors are
// selected with a streaming bounded heap instead of materializing and
// fully ranking the level.
func walk(c *model.Composed, q []float64, cfg CascadeConfig) ([]int32, *Stats, error) {
	tree := c.Tree
	ix := c.Index
	if err := cfg.Validate(tree.Depth()); err != nil {
		return nil, nil, err
	}
	stats := &Stats{}
	frontier := append([]int32(nil), tree.Level(1)...)
	st := vecmath.NewTopKStream(0)
	for d := 1; d < tree.Depth(); d++ {
		levelSize := len(tree.Level(d))
		keep := int(math.Ceil(cfg.KeepFrac[d-1] * float64(levelSize)))
		if keep < 1 {
			keep = 1
		}
		st.Reset(keep)
		for _, node := range frontier {
			st.Push(int(node), ix.ScoreNode(int(node), q))
		}
		stats.NodesScored += len(frontier)
		top := st.Ranked()
		stats.KeptPerLevel = append(stats.KeptPerLevel, len(top))

		frontier = frontier[:0]
		for _, s := range top {
			frontier = append(frontier, tree.Children(s.ID)...)
		}
	}
	return frontier, stats, nil
}

// Cascade runs §5.1 top-down inference and returns the top-k items among
// the reached leaves together with work statistics. This is the production
// serving path: it touches only the beam's nodes, never the full catalog,
// and streams the reached leaves straight into a bounded heap.
//
// Deprecated: build a Plan with StrategyCascade and call Execute.
func Cascade(c *model.Composed, q []float64, cfg CascadeConfig, k int) ([]vecmath.Scored, *Stats, error) {
	return (*Pool)(nil).Cascade(c, q, cfg, k, 1)
}

// CascadeScores runs the cascade and returns a full score array: reached
// items carry their affinity, unreached items are −Inf. Evaluation uses
// this to compute the Figure 8(c,d) accuracy ratio (eval.PrunedAUC); the
// serving path is Cascade, which never materializes the full array.
func CascadeScores(c *model.Composed, q []float64, cfg CascadeConfig) ([]float64, *Stats, error) {
	frontier, stats, err := walk(c, q, cfg)
	if err != nil {
		return nil, nil, err
	}
	ix := c.Index
	scores := make([]float64, c.Tree.NumItems())
	for i := range scores {
		scores[i] = math.Inf(-1)
	}
	for _, leaf := range frontier {
		scores[c.Tree.NodeItem(int(leaf))] = ix.ScoreNode(int(leaf), q)
	}
	stats.NodesScored += len(frontier)
	stats.LeavesScored = len(frontier)
	return scores, stats, nil
}

// Diversified returns a top-k ranking with at most maxPerCategory items
// from any single category at taxonomy depth catDepth. Section 1 of the
// paper motivates exactly this use of the taxonomy: "reduce duplication of
// items of similar type" in the recommendation list.
//
// The selection streams over the index once, keeping a bounded min-heap of
// the best min(maxPerCategory, k) items per touched category: an item
// outside its category's per-quota top can never be chosen by the greedy
// score-ordered scan, so the global top-k of the retained union is exactly
// the ranking the old full-catalog sort-then-scan produced — without ever
// sorting the catalog.
//
// Deprecated: build a Plan with StrategyDiversified and call Execute.
func Diversified(c *model.Composed, q []float64, k, maxPerCategory, catDepth int) ([]vecmath.Scored, error) {
	return (*Pool)(nil).Diversified(c, q, k, maxPerCategory, catDepth, 1)
}

func errMaxPerCategory(got int) error {
	return fmt.Errorf("infer: maxPerCategory must be positive, got %d", got)
}

func errCatDepth(got, depth int) error {
	return fmt.Errorf("infer: catDepth %d outside (0,%d)", got, depth)
}

// StructuredRanking is the per-level output the paper motivates in §1:
// a ranking of categories at every level of the taxonomy plus the top
// items, so advertisers can target categories rather than single products.
type StructuredRanking struct {
	// Levels[d] holds the ranked nodes of taxonomy depth d+1 (descending
	// affinity).
	Levels [][]vecmath.Scored
	// Items is the final ranked item list.
	Items []vecmath.Scored
}

// Structured produces a full structured ranking: every category level
// ranked completely, and the top-k items from a naive scan. It is meant
// for presentation, not the hot serving path.
func Structured(c *model.Composed, q []float64, k int) *StructuredRanking {
	tree := c.Tree
	out := &StructuredRanking{}
	for d := 1; d < tree.Depth(); d++ {
		level := c.LevelScores(q, d)
		out.Levels = append(out.Levels, vecmath.TopK(level, len(level)))
	}
	out.Items = Naive(c, q, k)
	return out
}
