// Package infer implements recommendation over trained TF models: the
// naive full-scan top-k and the paper's cascaded inference (§5.1), which
// walks the taxonomy top-down keeping only the best k_i percent of each
// category level and scores leaves only under the surviving categories —
// the accuracy/efficiency dial of Figure 8(c,d).
package infer

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/vecmath"
)

// Naive scores every item and returns the top-k, the baseline the paper's
// cascaded inference is measured against.
func Naive(c *model.Composed, q []float64, k int) []vecmath.Scored {
	scores := make([]vecmath.Scored, c.NumItems())
	for item := 0; item < c.NumItems(); item++ {
		scores[item] = vecmath.Scored{ID: item, Score: c.NodeScore(q, c.Tree.ItemNode(item))}
	}
	return vecmath.TopK(scores, k)
}

// CascadeConfig sets the per-level keep fractions k_i of §5.1:
// KeepFrac[d-1] applies to taxonomy depth d (the category levels between
// the root and the items). n_i = ceil(k_i · size(level i)) nodes survive
// at each level; all leaves under surviving lowest categories are scored.
type CascadeConfig struct {
	KeepFrac []float64
}

// UniformCascade returns a config keeping fraction f at every category
// level of a depth-deep taxonomy (depth = tree.Depth()).
func UniformCascade(depth int, f float64) CascadeConfig {
	kf := make([]float64, depth-1)
	for i := range kf {
		kf[i] = f
	}
	return CascadeConfig{KeepFrac: kf}
}

// Validate checks the fractions against a taxonomy of the given depth.
func (cfg CascadeConfig) Validate(depth int) error {
	if len(cfg.KeepFrac) != depth-1 {
		return fmt.Errorf("infer: need %d keep fractions for depth %d, got %d", depth-1, depth, len(cfg.KeepFrac))
	}
	for i, f := range cfg.KeepFrac {
		if f <= 0 || f > 1 {
			return fmt.Errorf("infer: KeepFrac[%d] = %v outside (0,1]", i, f)
		}
	}
	return nil
}

// Stats reports the work a cascade performed; NodesScored is the number
// of query–factor dot products (the paper's inference cost unit).
type Stats struct {
	// NodesScored counts scored taxonomy nodes, including leaves.
	NodesScored int
	// LeavesScored counts scored items (candidates for the final ranking).
	LeavesScored int
	// KeptPerLevel records how many nodes survived each category level.
	KeptPerLevel []int
}

// walk performs the top-down beam of §5.1 and returns the surviving leaf
// frontier; leaves are not yet scored (stats count only the interior
// work so far).
func walk(c *model.Composed, q []float64, cfg CascadeConfig) ([]int32, *Stats, error) {
	tree := c.Tree
	if err := cfg.Validate(tree.Depth()); err != nil {
		return nil, nil, err
	}
	stats := &Stats{}
	frontier := append([]int32(nil), tree.Level(1)...)
	for d := 1; d < tree.Depth(); d++ {
		scored := make([]vecmath.Scored, len(frontier))
		for i, node := range frontier {
			scored[i] = vecmath.Scored{ID: int(node), Score: c.NodeScore(q, int(node))}
		}
		stats.NodesScored += len(scored)

		levelSize := len(tree.Level(d))
		keep := int(math.Ceil(cfg.KeepFrac[d-1] * float64(levelSize)))
		if keep < 1 {
			keep = 1
		}
		top := vecmath.TopK(scored, keep)
		stats.KeptPerLevel = append(stats.KeptPerLevel, len(top))

		frontier = frontier[:0]
		for _, s := range top {
			frontier = append(frontier, tree.Children(s.ID)...)
		}
	}
	return frontier, stats, nil
}

// Cascade runs §5.1 top-down inference and returns the top-k items among
// the reached leaves together with work statistics. This is the production
// serving path: it touches only the beam's nodes, never the full catalog.
func Cascade(c *model.Composed, q []float64, cfg CascadeConfig, k int) ([]vecmath.Scored, *Stats, error) {
	frontier, stats, err := walk(c, q, cfg)
	if err != nil {
		return nil, nil, err
	}
	candidates := make([]vecmath.Scored, len(frontier))
	for i, leaf := range frontier {
		candidates[i] = vecmath.Scored{
			ID:    c.Tree.NodeItem(int(leaf)),
			Score: c.NodeScore(q, int(leaf)),
		}
	}
	stats.NodesScored += len(frontier)
	stats.LeavesScored = len(frontier)
	return vecmath.TopK(candidates, k), stats, nil
}

// CascadeScores runs the cascade and returns a full score array: reached
// items carry their affinity, unreached items are −Inf. Evaluation uses
// this to compute the Figure 8(c,d) accuracy ratio (eval.PrunedAUC); the
// serving path is Cascade, which never materializes the full array.
func CascadeScores(c *model.Composed, q []float64, cfg CascadeConfig) ([]float64, *Stats, error) {
	frontier, stats, err := walk(c, q, cfg)
	if err != nil {
		return nil, nil, err
	}
	scores := make([]float64, c.Tree.NumItems())
	for i := range scores {
		scores[i] = math.Inf(-1)
	}
	for _, leaf := range frontier {
		scores[c.Tree.NodeItem(int(leaf))] = c.NodeScore(q, int(leaf))
	}
	stats.NodesScored += len(frontier)
	stats.LeavesScored = len(frontier)
	return scores, stats, nil
}

// Diversified returns a top-k ranking with at most maxPerCategory items
// from any single category at taxonomy depth catDepth. Section 1 of the
// paper motivates exactly this use of the taxonomy: "reduce duplication of
// items of similar type" in the recommendation list. The ranking is the
// greedy score-ordered scan that skips items whose category quota is
// exhausted.
func Diversified(c *model.Composed, q []float64, k, maxPerCategory, catDepth int) ([]vecmath.Scored, error) {
	if maxPerCategory <= 0 {
		return nil, fmt.Errorf("infer: maxPerCategory must be positive, got %d", maxPerCategory)
	}
	if catDepth < 1 || catDepth >= c.Tree.Depth() {
		return nil, fmt.Errorf("infer: catDepth %d outside (0,%d)", catDepth, c.Tree.Depth())
	}
	// rank everything, then fill greedily under the quota
	all := Naive(c, q, c.NumItems())
	quota := make(map[int]int)
	out := make([]vecmath.Scored, 0, k)
	for _, s := range all {
		if len(out) == k {
			break
		}
		cat := c.Tree.AncestorAtDepth(c.Tree.ItemNode(s.ID), catDepth)
		if quota[cat] >= maxPerCategory {
			continue
		}
		quota[cat]++
		out = append(out, s)
	}
	return out, nil
}

// StructuredRanking is the per-level output the paper motivates in §1:
// a ranking of categories at every level of the taxonomy plus the top
// items, so advertisers can target categories rather than single products.
type StructuredRanking struct {
	// Levels[d] holds the ranked nodes of taxonomy depth d+1 (descending
	// affinity).
	Levels [][]vecmath.Scored
	// Items is the final ranked item list.
	Items []vecmath.Scored
}

// Structured produces a full structured ranking: every category level
// ranked completely, and the top-k items from a naive scan. It is meant
// for presentation, not the hot serving path.
func Structured(c *model.Composed, q []float64, k int) *StructuredRanking {
	tree := c.Tree
	out := &StructuredRanking{}
	for d := 1; d < tree.Depth(); d++ {
		level := c.LevelScores(q, d)
		out.Levels = append(out.Levels, vecmath.TopK(level, len(level)))
	}
	out.Items = Naive(c, q, k)
	return out
}
