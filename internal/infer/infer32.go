package infer

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/vecmath"
)

// The two-stage float32 scoring pipeline. Stage one sweeps the index's
// compact float32 slabs — half the memory bandwidth of the float64 sweep —
// into an over-fetched bounded candidate heap of k' = k + margin entries.
// Stage two rescores the candidates with the exact float64 factors into
// the caller's k-heap.
//
// The result is byte-identical to the float64 path, ties included, by the
// following argument. Let τ be the f32 heap's threshold after the sweep:
// every item NOT retained has f32 score ≤ τ under the (score desc, lower
// ID) total order. The index certifies ε = ErrBound32(q) with
// |f32 − f64 score| ≤ ε for every item, so every excluded item's exact
// score is ≤ τ + ε. If the exact k-th best score among the candidates
// strictly exceeds τ + ε, no excluded item can reach — or tie — the
// boundary, and the candidates' exact top-k IS the global exact top-k,
// tie-breaks included (all surviving comparisons are between exact f64
// scores under the same total order the f64 path uses). When the margin
// cannot separate the boundary — adversarial near-tie score regimes —
// the pipeline escalates: k' doubles and the sweep repeats, degenerating
// to the plain f64 sweep once k' reaches the eligible input size.
// Escalations are counted in F32Escalations for observability; they cost
// a re-sweep but can never cost correctness.
//
// The argument is untouched by plan filters: a filtered sweep never
// pushes an ineligible item, so both the candidate set and the "excluded
// items" it is certified against range over eligible items only.
//
// The pipeline itself lives in exec.go (naiveF32, executeCascade,
// executeDiversified, executeMulti); this file keeps the shared f32
// plumbing — scratch pools, the rescore stage, the separation
// certificates — and the legacy serial F32 entry points as deprecated
// wrappers.

// f32Escalations counts boundary-separation failures across all f32
// pipelines (naive, cascade, diversified, batched; serial and pooled).
var f32Escalations atomic.Int64

// F32Escalations returns the process-wide count of f32 margin escalations
// — each one a re-sweep with a doubled candidate budget. A steadily
// climbing count under production traffic means the score distribution is
// tighter than float32 resolution and the f64 path may be cheaper.
func F32Escalations() int64 { return f32Escalations.Load() }

// f32OverFetch is the initial candidate budget k' for a final ranking of
// k: a quarter again plus a fixed floor, so tiny k still over-fetches
// enough to clear garden-variety round-off ties in one pass.
func f32OverFetch(k int) int { return k + k/4 + 16 }

// f32Scratch is the reusable per-query state of an f32 pipeline: the
// rounded query and the candidate heap. Pooled so the steady-state
// serving path allocates nothing.
type f32Scratch struct {
	q32  []float32
	cand vecmath.TopKStream32
}

var f32Scratches = sync.Pool{New: func() any { return new(f32Scratch) }}

// getF32Scratch returns a scratch with q32 sized and filled from q.
func getF32Scratch(q []float64) *f32Scratch {
	sc := f32Scratches.Get().(*f32Scratch)
	if cap(sc.q32) < len(q) {
		sc.q32 = make([]float32, len(q))
	}
	sc.q32 = sc.q32[:len(q)]
	vecmath.Downconvert32(sc.q32, q)
	return sc
}

// sweepRange32Into is sweepRangeInto over the compact f32 slab: it scores
// the item range [rangeLo, rangeHi) in block-sized steps into an armed
// TopKStream32 with the same inlined threshold rejection.
func sweepRange32Into(ix *model.ScoringIndex, q32 []float32, rangeLo, rangeHi int, block []float32, st *vecmath.TopKStream32) {
	th, full := st.Threshold()
	for lo := rangeLo; lo < rangeHi; lo += len(block) {
		hi := lo + len(block)
		if hi > rangeHi {
			hi = rangeHi
		}
		buf := block[:hi-lo]
		ix.ItemScoresRange32Into(q32, lo, hi, buf)
		for i, s := range buf {
			if full && s < th {
				continue
			}
			st.Push(lo+i, s)
			th, full = st.Threshold()
		}
	}
}

// activeF32Into fills dst with the indices of queries whose candidate
// budget does not already cover the catalog — the queries the shared f32
// sweep actually runs for; the rest go straight to the f64 finish path.
func activeF32Into(dst []int, cands []vecmath.TopKStream32, items int) []int {
	dst = dst[:0]
	for i := range cands {
		if cands[i].K() < items {
			dst = append(dst, i)
		}
	}
	return dst
}

// sweepShard32Multi sweeps one shard for the active queries in groups of
// qBlock through the blocked multi-query f32 kernel: each group reads the
// shard's compact rows once.
func sweepShard32Multi(ix *model.ScoringIndex, qs32 [][]float32, sts []*vecmath.TopKStream32, active []int, lo, hi int) {
	for g := 0; g < len(active); g += qBlock {
		ge := g + qBlock
		if ge > len(active) {
			ge = len(active)
		}
		var gq [qBlock][]float32
		var gst [qBlock]*vecmath.TopKStream32
		n := ge - g
		for j := 0; j < n; j++ {
			qi := active[g+j]
			gq[j], gst[j] = qs32[qi], sts[qi]
		}
		sweepRange32MultiInto(ix, gq[:n], lo, hi, gst[:n])
	}
}

// sweepRange32MultiInto sweeps [rangeLo, rangeHi) once for a group of at
// most qBlock queries: every 4-row block of the compact slab is scored
// against the whole group (ItemScoresRange32MultiInto, whose inner loops
// repeat MatVecBias32's accumulation statement for statement) before the
// sweep advances. Each query's pushes arrive in the same (block-ascending,
// item-ascending) order as its single-query sweep, so each candidate heap
// retains the identical set.
func sweepRange32MultiInto(ix *model.ScoringIndex, qs32 [][]float32, rangeLo, rangeHi int, sts []*vecmath.TopKStream32) {
	var bufs [qBlock][blockItems]float32
	var dsts [qBlock][]float32
	var th [qBlock]float32
	var full [qBlock]bool
	for qi := range qs32 {
		th[qi], full[qi] = sts[qi].Threshold()
	}
	for lo := rangeLo; lo < rangeHi; lo += blockItems {
		hi := lo + blockItems
		if hi > rangeHi {
			hi = rangeHi
		}
		for qi := range qs32 {
			dsts[qi] = bufs[qi][:hi-lo]
		}
		ix.ItemScoresRange32MultiInto(qs32, lo, hi, dsts[:len(qs32)])
		for qi := range qs32 {
			st := sts[qi]
			for i, s := range dsts[qi] {
				if full[qi] && s < th[qi] {
					continue
				}
				st.Push(lo+i, s)
				th[qi], full[qi] = st.Threshold()
			}
		}
	}
}

// rescoreChunk is how many candidates the rescore stages score between
// cancellation polls. Escalated candidate sets can approach catalog
// size, so stage two polls like the sweeps do — without it a deadline
// firing at the start of a rescore could not abandon the query until a
// catalog-scale scoring pass finished.
const rescoreChunk = 1024

// rescoreItems pushes the exact float64 score of every retained candidate
// into st and reports whether the boundary is certified separated (see
// the package comment above): true means st now holds exactly the global
// f64 top-k of the swept items. A cancelled rescore reports false — the
// partial heap must never be certified; the caller's escalation loop
// observes the cancellation before re-sweeping.
func rescoreItems(done <-chan struct{}, ix *model.ScoringIndex, q []float64, cand *vecmath.TopKStream32, st *vecmath.TopKStream, eps float64) bool {
	entries := cand.Entries()
	for lo := 0; lo < len(entries); lo += rescoreChunk {
		if canceled(done) {
			return false
		}
		hi := lo + rescoreChunk
		if hi > len(entries) {
			hi = len(entries)
		}
		for _, e := range entries[lo:hi] {
			st.Push(e.ID, ix.ScoreItem(e.ID, q))
		}
	}
	return separated(st, cand, eps)
}

// separated reports whether the exact k-th boundary in st strictly clears
// the f32 retention threshold by more than the certified error bound. An
// unfull candidate heap retained everything, so the rescore saw the whole
// input and the result is trivially exact. A non-finite τ never
// certifies: ErrBound32 bounds rounding error, not overflow, and a heap
// whose threshold sits at −Inf dropped its excluded items by ID
// tie-break rather than score — escalating (ultimately to the f64 sweep)
// is the only sound answer there.
func separated(st *vecmath.TopKStream, cand *vecmath.TopKStream32, eps float64) bool {
	tau, candFull := cand.Threshold()
	if !candFull {
		return true
	}
	tau64 := float64(tau)
	if math.IsInf(tau64, 0) || math.IsNaN(tau64) {
		return false
	}
	boundary, full := st.Threshold()
	return full && boundary > tau64+eps
}

// NaiveF32Into is the two-stage counterpart of NaiveInto: it fills the
// armed collector with the exact f64 top-K ranking via an f32 slab sweep
// plus rescore. The collector is Reset internally (it must arrive
// dedicated to this query, as every current caller's does). Steady-state
// calls perform no heap allocation.
//
// Deprecated: build a Plan with model.PrecisionF32 and call
// Execute/ExecuteInto.
func NaiveF32Into(c *model.Composed, q []float64, st *vecmath.TopKStream) {
	(*Pool)(nil).executeNaive(nil, c, q, model.PrecisionF32, 1, nil, c.Index.NumItems(), st, false)
}

// NaiveF32 scores every item through the two-stage pipeline and returns
// the exact top-k — same ranking as Naive, roughly half the sweep
// bandwidth.
//
// Deprecated: build a Plan with model.PrecisionF32 and call Execute.
func NaiveF32(c *model.Composed, q []float64, k int) []vecmath.Scored {
	st := vecmath.NewTopKStream(k)
	NaiveF32Into(c, q, st)
	return st.Ranked()
}

// CascadeF32 is Cascade with the surviving leaf frontier ranked through
// the two-stage pipeline. The beam walk itself stays on the f64 node
// slab — category levels are tiny and the walk decides WHICH leaves are
// reached, which must match the f64 cascade exactly — so items, order and
// Stats are all identical to Cascade's.
//
// Deprecated: build a Plan with StrategyCascade and model.PrecisionF32
// and call Execute.
func CascadeF32(c *model.Composed, q []float64, cfg CascadeConfig, k int) ([]vecmath.Scored, *Stats, error) {
	return (*Pool)(nil).CascadeF32(c, q, cfg, k, 1)
}

// DiversifiedF32 is Diversified through the two-stage pipeline: the f32
// sweep keeps an over-fetched candidate heap per touched category, the
// candidates are rescored exactly into per-category quota heaps, and the
// final top-k is selected from those. Exactness needs a per-category
// certificate: for every category whose f32 heap filled, the excluded
// items of that category score at most τ_cat + ε exactly — if that stays
// strictly below the final k-th score, an excluded item can neither enter
// the final ranking nor displace a quota entry that the final ranking
// uses (any quota entry it would displace also scores below the boundary
// and so was not selected anyway). Any category failing the certificate
// escalates the whole sweep with a doubled per-category budget.
//
// Deprecated: build a Plan with StrategyDiversified and
// model.PrecisionF32 and call Execute.
func DiversifiedF32(c *model.Composed, q []float64, k, maxPerCategory, catDepth int) ([]vecmath.Scored, error) {
	return (*Pool)(nil).DiversifiedF32(c, q, k, maxPerCategory, catDepth, 1)
}

// rescoreDiversified rescores every retained candidate exactly into
// per-category quota heaps, selects the final top-k into final (which is
// Reset to k), and checks the per-category separation certificate of
// DiversifiedF32. It reports whether the result is certified exact.
func rescoreDiversified(done <-chan struct{}, ix *model.ScoringIndex, q []float64, cats32 []vecmath.TopKStream32, cats []vecmath.TopKStream, armed []bool, perCat, k int, eps float64, final *vecmath.TopKStream) bool {
	for pos := range cats32 {
		if !armed[pos] {
			continue
		}
		// per-category poll: the union of escalated per-category budgets
		// can approach catalog size, and a cancelled rescore must never
		// certify (false sends the caller back to its cancellation check)
		if canceled(done) {
			return false
		}
		cats[pos].Reset(perCat)
		for _, e := range cats32[pos].Entries() {
			cats[pos].Push(e.ID, ix.ScoreItem(e.ID, q))
		}
	}
	final.Reset(k)
	for pos := range cats {
		if !armed[pos] {
			continue
		}
		final.Merge(&cats[pos])
	}
	boundary, full := final.Threshold()
	for pos := range cats32 {
		if !armed[pos] {
			continue
		}
		tau, catFull := cats32[pos].Threshold()
		if !catFull {
			continue // category fully retained: nothing excluded
		}
		// as in separated(): a non-finite τ (f32 overflow) can never
		// certify, since the error bound covers rounding only
		tau64 := float64(tau)
		if !full || math.IsInf(tau64, 0) || math.IsNaN(tau64) || tau64+eps >= boundary {
			return false
		}
	}
	return true
}

// multiF32Scratch is the reusable state of a batched f32 sweep: the
// per-query candidate heaps, their pointer view (the task wire format),
// and the rounded queries sliced from one flat backing array. Pooled so
// steady-state batched serving — the default pipeline under load —
// allocates nothing, matching the f64 batch path.
type multiF32Scratch struct {
	cands  []vecmath.TopKStream32
	ptrs   []*vecmath.TopKStream32
	qbuf   []float32
	qs32   [][]float32
	active []int
}

var multiF32Scratches = sync.Pool{New: func() any { return new(multiF32Scratch) }}

// getMultiF32Scratch arms a scratch for the batch: candidate heaps reset
// to each query's over-fetch budget and queries rounded to float32.
func getMultiF32Scratch(qs [][]float64, outs []*vecmath.TopKStream) *multiF32Scratch {
	sc := multiF32Scratches.Get().(*multiF32Scratch)
	b := len(qs)
	if cap(sc.cands) < b {
		sc.cands = make([]vecmath.TopKStream32, b)
		sc.ptrs = make([]*vecmath.TopKStream32, b)
		sc.qs32 = make([][]float32, b)
	}
	sc.cands, sc.ptrs, sc.qs32 = sc.cands[:b], sc.ptrs[:b], sc.qs32[:b]
	need := 0
	for _, q := range qs {
		need += len(q)
	}
	if cap(sc.qbuf) < need {
		sc.qbuf = make([]float32, need)
	}
	sc.qbuf = sc.qbuf[:need]
	off := 0
	for i, q := range qs {
		sc.cands[i].Reset(f32OverFetch(outs[i].K()))
		sc.ptrs[i] = &sc.cands[i]
		q32 := sc.qbuf[off : off+len(q) : off+len(q)]
		vecmath.Downconvert32(q32, q)
		sc.qs32[i] = q32
		off += len(q)
	}
	return sc
}

// MultiNaiveF32Into is the two-stage counterpart of MultiNaiveInto: one
// query-major pass over each cache-resident f32 shard collects every
// query's candidate heap, then each query rescores independently. A query
// whose margin fails to separate escalates alone through the serial
// pipeline at the next budget doubling — the shared sweep is not
// repeated for the batch.
//
// Deprecated: use ExecuteBatch with model.PrecisionF32 plans.
func MultiNaiveF32Into(c *model.Composed, qs [][]float64, outs []*vecmath.TopKStream) {
	(*Pool)(nil).executeMulti(nil, c, qs, model.PrecisionF32, 1, outs)
}

// finishMultiF32 runs the per-query rescore stage of a batched f32 sweep.
// The done channel gates the per-query escalation re-sweeps; a fired
// deadline abandons the remaining queries (the caller discards the batch).
func finishMultiF32(done <-chan struct{}, c *model.Composed, qs [][]float64, outs []*vecmath.TopKStream, cands []vecmath.TopKStream32) {
	ix := c.Index
	n := ix.NumItems()
	for i, q := range qs {
		if canceled(done) {
			return
		}
		k := outs[i].K()
		if k <= 0 {
			continue
		}
		if cands[i].K() >= n {
			// the candidate heap saw every item; rescore is the whole input
			outs[i].Reset(k)
			NaiveInto(c, q, outs[i])
			continue
		}
		eps := ix.ItemErrBound32(q)
		outs[i].Reset(k)
		if rescoreItems(done, ix, q, &cands[i], outs[i], eps) {
			continue
		}
		f32Escalations.Add(1)
		(*Pool)(nil).naiveF32(done, c, q, 1, nil, n, outs[i], cands[i].K()*2)
	}
}
