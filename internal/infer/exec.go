package infer

import (
	"math"

	"repro/internal/model"
	"repro/internal/vecmath"
)

// This file is the engine layer of the query-plan executor: one function
// per ranking shape (naive sweep, cascade, diversified, multi-query
// batch), each taking the full parameterization — precision, worker cap,
// eligibility mask — as arguments. Every public entry point, the Plan
// executor and the legacy strategy×precision×parallelism wrappers alike,
// funnels into these engines, so a new serving capability is one
// parameter threaded through four functions instead of sixteen new
// variants. All engines are methods on *Pool with a nil receiver meaning
// "serial".

// ---- masked sweeps ------------------------------------------------------

// sweepRangeMaskedInto is sweepRangeInto restricted to items whose mask
// bit is set. Each block adapts to its eligible count: empty blocks are
// skipped without touching their factor rows, fully eligible blocks run
// the original branch-free blocked kernel, mostly eligible blocks are
// scored whole and filtered at push time (the shared-q blocked kernel
// beats per-row gathers while most rows are needed anyway), and sparse
// blocks gather only their eligible rows through the per-row kernel —
// which accumulates in the exact pairwise order of a blocked row, so the
// scores (and therefore the ranking, ties included) are bitwise identical
// whichever path a block takes. Sparse gathers are what keep a
// 95%-excluded scattered mask from paying the whole catalog's bandwidth.
func sweepRangeMaskedInto(ix *model.ScoringIndex, q []float64, rangeLo, rangeHi int, block []float64, mask *vecmath.Bitset, st *vecmath.TopKStream) {
	th, full := st.Threshold()
	for lo := rangeLo; lo < rangeHi; lo += len(block) {
		hi := lo + len(block)
		if hi > rangeHi {
			hi = rangeHi
		}
		eligible := mask.CountRange(lo, hi)
		switch {
		case eligible == 0:
			continue
		case eligible == hi-lo:
			buf := block[:hi-lo]
			ix.ItemScoresRangeInto(q, lo, hi, buf)
			for i, s := range buf {
				if full && s < th {
					continue
				}
				st.Push(lo+i, s)
				th, full = st.Threshold()
			}
		case eligible*4 >= (hi-lo)*3:
			buf := block[:hi-lo]
			ix.ItemScoresRangeInto(q, lo, hi, buf)
			for i, s := range buf {
				if !mask.Get(lo + i) {
					continue
				}
				if full && s < th {
					continue
				}
				st.Push(lo+i, s)
				th, full = st.Threshold()
			}
		default:
			mask.ForEachInRange(lo, hi, func(item int) {
				s := ix.ScoreItem(item, q)
				if full && s < th {
					return
				}
				st.Push(item, s)
				th, full = st.Threshold()
			})
		}
	}
}

// sweepRange32MaskedInto is the compact-slab twin of sweepRangeMaskedInto.
func sweepRange32MaskedInto(ix *model.ScoringIndex, q32 []float32, rangeLo, rangeHi int, block []float32, mask *vecmath.Bitset, st *vecmath.TopKStream32) {
	th, full := st.Threshold()
	for lo := rangeLo; lo < rangeHi; lo += len(block) {
		hi := lo + len(block)
		if hi > rangeHi {
			hi = rangeHi
		}
		eligible := mask.CountRange(lo, hi)
		switch {
		case eligible == 0:
			continue
		case eligible == hi-lo:
			buf := block[:hi-lo]
			ix.ItemScoresRange32Into(q32, lo, hi, buf)
			for i, s := range buf {
				if full && s < th {
					continue
				}
				st.Push(lo+i, s)
				th, full = st.Threshold()
			}
		case eligible*4 >= (hi-lo)*3:
			buf := block[:hi-lo]
			ix.ItemScoresRange32Into(q32, lo, hi, buf)
			for i, s := range buf {
				if !mask.Get(lo + i) {
					continue
				}
				if full && s < th {
					continue
				}
				st.Push(lo+i, s)
				th, full = st.Threshold()
			}
		default:
			mask.ForEachInRange(lo, hi, func(item int) {
				s := ix.ScoreItem32(item, q32)
				if full && s < th {
					return
				}
				st.Push(item, s)
				th, full = st.Threshold()
			})
		}
	}
}

// ---- fan-out-aware sweep drivers ----------------------------------------

// runSweep streams the f64 score of every eligible item into the armed
// collector, fanning the shard claims across the pool when it pays. The
// done channel is polled at every shard boundary — serial and fanned
// alike — so a fired deadline abandons the sweep within one shard's work;
// the caller decides what to do with the (possibly partial) collector.
//
// The serial claim loop below recurs, with only its per-shard body
// differing, in runSweep32, both executeMulti serial arms and both
// executeDiversified serial arms. The duplication is deliberate: a
// forEachShard(done, ix, func(lo, hi)) helper would capture each
// caller's stack block buffer in a closure, heap-escaping it and
// breaking the zero-alloc-per-query guarantee the serving benches gate.
// A change to the poll policy must be applied at all six sites.
func (p *Pool) runSweep(done <-chan struct{}, ix *model.ScoringIndex, q []float64, mask *vecmath.Bitset, maxWorkers int, st *vecmath.TopKStream) {
	fan := p.fanout(maxWorkers, ix.NumShards())
	if fan <= 1 {
		var block [blockItems]float64
		for s, n := 0, ix.NumShards(); s < n; s++ {
			if canceled(done) {
				return
			}
			lo, hi := ix.Shard(s)
			if mask == nil {
				sweepRangeInto(ix, q, lo, hi, block[:], st)
			} else {
				sweepRangeMaskedInto(ix, q, lo, hi, block[:], mask, st)
			}
		}
		return
	}
	t := p.getSweepTask()
	t.ix, t.q, t.k, t.out, t.mask, t.done = ix, q, st.K(), st, mask, done
	t.numShards = int32(ix.NumShards())
	t.next.Store(0)
	p.dispatch(t, fan)
	t.ix, t.q, t.out, t.mask, t.done = nil, nil, nil, nil, nil
	p.sweeps.Put(t)
}

// runSweep32 is runSweep over the compact f32 slab into a candidate heap
// of budget kp (per participant, merged under the f32 total order).
func (p *Pool) runSweep32(done <-chan struct{}, ix *model.ScoringIndex, q32 []float32, mask *vecmath.Bitset, maxWorkers, kp int, cand *vecmath.TopKStream32) {
	fan := p.fanout(maxWorkers, ix.NumShards())
	if fan <= 1 {
		var block [blockItems]float32
		for s, n := 0, ix.NumShards(); s < n; s++ {
			if canceled(done) {
				return
			}
			lo, hi := ix.Shard(s)
			if mask == nil {
				sweepRange32Into(ix, q32, lo, hi, block[:], cand)
			} else {
				sweepRange32MaskedInto(ix, q32, lo, hi, block[:], mask, cand)
			}
		}
		return
	}
	t := p.getSweepTask()
	t.ix, t.q32, t.k, t.out32, t.mask, t.done = ix, q32, kp, cand, mask, done
	t.numShards = int32(ix.NumShards())
	t.next.Store(0)
	p.dispatch(t, fan)
	t.ix, t.q32, t.out32, t.mask, t.done = nil, nil, nil, nil, nil
	p.sweeps.Put(t)
}

// ---- naive --------------------------------------------------------------

// executeNaive fills the armed collector with the exact f64 top-K of the
// eligible items, at either precision and any fan-out. eligible is the
// mask's surviving item count (NumItems when mask is nil); the f32
// escalation loop stops pruning once its candidate budget covers it.
// pruned routes each precision tier through its branch-and-bound variant
// (prune.go) — same ranking, sublinear work when the bounds bite.
func (p *Pool) executeNaive(done <-chan struct{}, c *model.Composed, q []float64, prec model.Precision, maxWorkers int, mask *vecmath.Bitset, eligible int, st *vecmath.TopKStream, pruned bool) {
	switch prec.Resolve() {
	case model.PrecisionF32:
		if pruned {
			p.prunedF32(done, c, q, maxWorkers, mask, eligible, st, f32OverFetch(st.K()))
			return
		}
		p.naiveF32(done, c, q, maxWorkers, mask, eligible, st, f32OverFetch(st.K()))
	case model.PrecisionInt8:
		if pruned {
			p.prunedI8(done, c, q, maxWorkers, mask, eligible, st, i8OverFetch(st.K()))
			return
		}
		p.naiveI8(done, c, q, maxWorkers, mask, eligible, st, i8OverFetch(st.K()))
	default:
		if pruned {
			p.prunedF64(done, c, q, maxWorkers, mask, eligible, st)
			return
		}
		p.runSweep(done, c.Index, q, mask, maxWorkers, st)
	}
}

// naiveF32 runs the two-stage pipeline from an explicit starting
// candidate budget (a failed shared-batch pass resumes at the next
// doubling instead of repeating work). Steady-state calls allocate
// nothing: query rounding and the candidate heap live in pooled scratch.
func (p *Pool) naiveF32(done <-chan struct{}, c *model.Composed, q []float64, maxWorkers int, mask *vecmath.Bitset, eligible int, st *vecmath.TopKStream, kp0 int) {
	ix := c.Index
	k := st.K()
	if k <= 0 {
		return
	}
	sc := getF32Scratch(q)
	defer f32Scratches.Put(sc)
	eps := ix.ItemErrBound32(q)
	for kp := kp0; ; kp *= 2 {
		if canceled(done) {
			return
		}
		if kp >= eligible {
			// the candidate budget covers every eligible item: nothing to
			// prune, run the exact sweep directly
			st.Reset(k)
			p.runSweep(done, ix, q, mask, maxWorkers, st)
			return
		}
		sc.cand.Reset(kp)
		p.runSweep32(done, ix, sc.q32, mask, maxWorkers, kp, &sc.cand)
		if canceled(done) {
			// a cancelled sweep left a truncated candidate set; rescoring it
			// could "certify" a wrong ranking, so bail before stage two
			return
		}
		st.Reset(k)
		if rescoreItems(done, ix, q, &sc.cand, st, eps) {
			return
		}
		f32Escalations.Add(1)
	}
}

// ---- multi-query batch --------------------------------------------------

// executeMulti scores a batch of queries in one pass over the shared item
// slab — each cache-sized shard is loaded once and dotted against every
// query — at either precision and any fan-out. Each collector ends up
// byte-identical to its serial single-query f64 ranking. Filtered plans
// do not batch: the shared sweep is one pass at one visitation pattern,
// so callers route filtered queries through executeNaive instead.
func (p *Pool) executeMulti(done <-chan struct{}, c *model.Composed, qs [][]float64, prec model.Precision, maxWorkers int, outs []*vecmath.TopKStream) {
	if len(qs) == 0 {
		return
	}
	ix := c.Index
	fan := p.fanout(maxWorkers, ix.NumShards())
	if prec.Resolve() == model.PrecisionInt8 {
		sc := getMultiI8Scratch(qs, outs)
		defer multiI8Scratches.Put(sc)
		if fan <= 1 {
			// queries whose budget covers the catalog skip the quantized
			// sweep; the finish stage runs them through the f64 path directly
			sc.active = activeI8Into(sc.active, sc.cands, ix.NumItems())
			for s, n := 0, ix.NumShards(); s < n; s++ {
				if canceled(done) {
					return
				}
				lo, hi := ix.Shard(s)
				sweepShardI8Multi(ix, sc.us, sc.qscales, sc.sumQs, sc.ptrs, sc.active, lo, hi)
			}
		} else {
			t := p.getMultiTask()
			t.ix, t.usI8, t.qscalesI8, t.sumQsI8, t.outs, t.done = ix, sc.us, sc.qscales, sc.sumQs, sc.ptrs, done
			t.numShards = int32(ix.NumShards())
			t.next.Store(0)
			p.dispatch(t, fan)
			t.ix, t.usI8, t.qscalesI8, t.sumQsI8, t.outs, t.done = nil, nil, nil, nil, nil, nil
			p.multis.Put(t)
		}
		if canceled(done) {
			// truncated candidate sets must not reach the rescore stage
			return
		}
		finishMultiI8(done, c, qs, outs, sc)
		return
	}
	if prec.Resolve() == model.PrecisionF32 {
		sc := getMultiF32Scratch(qs, outs)
		defer multiF32Scratches.Put(sc)
		if fan <= 1 {
			// a budget covering the catalog means that query goes straight to
			// the f64 sweep in the finish stage; don't pay the f32 sweep for it
			sc.active = activeF32Into(sc.active, sc.cands, ix.NumItems())
			for s, n := 0, ix.NumShards(); s < n; s++ {
				if canceled(done) {
					return
				}
				lo, hi := ix.Shard(s)
				sweepShard32Multi(ix, sc.qs32, sc.ptrs, sc.active, lo, hi)
			}
		} else {
			t := p.getMultiTask()
			t.ix, t.qs32, t.outs32, t.done = ix, sc.qs32, sc.ptrs, done
			t.numShards = int32(ix.NumShards())
			t.next.Store(0)
			p.dispatch(t, fan)
			t.ix, t.qs32, t.outs32, t.done = nil, nil, nil, nil
			p.multis.Put(t)
		}
		if canceled(done) {
			// truncated candidate sets must not reach the rescore stage
			return
		}
		finishMultiF32(done, c, qs, outs, sc.cands)
		return
	}
	if fan <= 1 {
		var block [blockItems]float64
		for s, n := 0, ix.NumShards(); s < n; s++ {
			if canceled(done) {
				return
			}
			lo, hi := ix.Shard(s)
			// query-major within one cache-resident shard: the shard's
			// factor rows are loaded once and scored against every query
			for i, q := range qs {
				sweepRangeInto(ix, q, lo, hi, block[:], outs[i])
			}
		}
		return
	}
	t := p.getMultiTask()
	t.ix, t.qs, t.outs, t.done = ix, qs, outs, done
	t.numShards = int32(ix.NumShards())
	t.next.Store(0)
	p.dispatch(t, fan)
	t.ix, t.qs, t.outs, t.done = nil, nil, nil, nil
	p.multis.Put(t)
}

// ---- cascade ------------------------------------------------------------

// executeCascade runs the §5.1 beam walk and ranks the surviving leaf
// frontier into the armed collector at either precision and any fan-out.
// The walk itself always runs serial f64 — category levels are tiny and
// the walk decides WHICH leaves are reached, which must not depend on the
// precision knob. A filter drops ineligible leaves from the frontier
// before any leaf is scored (filters apply before the heap), so Stats
// count only eligible leaves.
func (p *Pool) executeCascade(done <-chan struct{}, c *model.Composed, q []float64, cfg CascadeConfig, prec model.Precision, maxWorkers int, cf *compiledFilter, st *vecmath.TopKStream) (*Stats, error) {
	frontier, stats, err := walk(c, q, cfg)
	if err != nil {
		return nil, err
	}
	if cf != nil {
		kept := frontier[:0]
		for _, leaf := range frontier {
			if cf.mask.Get(c.Tree.NodeItem(int(leaf))) {
				kept = append(kept, leaf)
			}
		}
		frontier = kept
	}
	ix := c.Index
	k := st.K()
	chunks := (len(frontier) + leafChunk - 1) / leafChunk
	fan := p.fanout(maxWorkers, chunks)
	switch {
	case prec.Resolve() == model.PrecisionInt8 && k > 0:
		sc := getI8Scratch(q)
		eps := ix.NodeErrBoundI8(q, sc.sumAbsErr)
		for kp := i8OverFetch(k); ; kp *= 2 {
			if canceled(done) {
				break
			}
			if kp >= len(frontier) || math.IsInf(eps, 0) || math.IsNaN(eps) {
				// budget covers the frontier — or the bound cannot certify at
				// all (non-finite query, k past the exact int32 dot range):
				// exact f64 frontier scoring
				st.Reset(k)
				p.scoreFrontier(done, c, q, nil, frontier, fan, st, nil)
				break
			}
			sc.cand.Reset(kp)
			// the quantized frontier pass stays serial: a beam-surviving
			// frontier is far below catalog size, and the sweep polls per
			// leaf chunk like scoreFrontier's serial mode
			stopped := false
			for lo := 0; lo < len(frontier); lo += leafChunk {
				if canceled(done) {
					stopped = true
					break
				}
				hi := lo + leafChunk
				if hi > len(frontier) {
					hi = len(frontier)
				}
				for _, leaf := range frontier[lo:hi] {
					sc.cand.Push(c.Tree.NodeItem(int(leaf)), ix.ScoreNodeI8(int(leaf), sc.u, sc.qscale, sc.sumQ))
				}
			}
			if stopped {
				break
			}
			st.Reset(k)
			if rescoreEntries(done, ix, q, &sc.cand, st, eps) {
				break
			}
			i8Escalations.Add(1)
		}
		i8Scratches.Put(sc)
	case prec.Resolve() == model.PrecisionF32 && k > 0:
		sc := getF32Scratch(q)
		eps := ix.NodeErrBound32(q)
		for kp := f32OverFetch(k); ; kp *= 2 {
			if canceled(done) {
				break
			}
			if kp >= len(frontier) {
				// budget covers the frontier: exact f64 frontier scoring
				st.Reset(k)
				p.scoreFrontier(done, c, q, nil, frontier, fan, st, nil)
				break
			}
			sc.cand.Reset(kp)
			p.scoreFrontier(done, c, nil, sc.q32, frontier, fan, nil, &sc.cand)
			if canceled(done) {
				break
			}
			st.Reset(k)
			if rescoreItems(done, ix, q, &sc.cand, st, eps) {
				break
			}
			f32Escalations.Add(1)
		}
		f32Scratches.Put(sc)
	case fan > 1:
		p.scoreFrontier(done, c, q, nil, frontier, fan, st, nil)
	default:
		for lo := 0; lo < len(frontier); lo += leafChunk {
			if canceled(done) {
				break
			}
			hi := lo + leafChunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			for _, leaf := range frontier[lo:hi] {
				st.Push(c.Tree.NodeItem(int(leaf)), ix.ScoreNode(int(leaf), q))
			}
		}
	}
	stats.NodesScored += len(frontier)
	stats.LeavesScored = len(frontier)
	return stats, nil
}

// scoreFrontier scores a leaf frontier into exactly one of st (f64 mode,
// q set) or cand (f32 mode, q32 set), chunked across the pool when fan
// allows.
func (p *Pool) scoreFrontier(done <-chan struct{}, c *model.Composed, q []float64, q32 []float32, frontier []int32, fan int, st *vecmath.TopKStream, cand *vecmath.TopKStream32) {
	ix := c.Index
	if fan <= 1 {
		// the frontier can approach catalog size at high keep fractions,
		// so the serial pass polls per leaf chunk like the pooled one
		for lo := 0; lo < len(frontier); lo += leafChunk {
			if canceled(done) {
				return
			}
			hi := lo + leafChunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			if cand != nil {
				for _, leaf := range frontier[lo:hi] {
					cand.Push(c.Tree.NodeItem(int(leaf)), ix.ScoreNode32(int(leaf), q32))
				}
			} else {
				for _, leaf := range frontier[lo:hi] {
					st.Push(c.Tree.NodeItem(int(leaf)), ix.ScoreNode(int(leaf), q))
				}
			}
		}
		return
	}
	t := p.getLeafTask()
	if cand != nil {
		t.tree, t.ix, t.q32, t.k, t.leaves, t.out32 = c.Tree, ix, q32, cand.K(), frontier, cand
	} else {
		t.tree, t.ix, t.q, t.k, t.leaves, t.out = c.Tree, ix, q, st.K(), frontier, st
	}
	t.done = done
	t.next.Store(0)
	p.dispatch(t, fan)
	t.tree, t.ix, t.q, t.q32, t.leaves, t.out, t.out32, t.done = nil, nil, nil, nil, nil, nil, nil, nil
	p.leaves.Put(t)
}

// ---- diversified --------------------------------------------------------

// executeDiversified fills the armed final collector with the top-K under
// a per-category quota at catDepth, at either precision and any fan-out,
// over the eligible items only. The per-category bounded heaps make the
// greedy score-ordered selection exact without sorting the catalog; the
// f32 mode additionally needs the per-category separation certificate of
// rescoreDiversified before its pruning is trusted.
func (p *Pool) executeDiversified(done <-chan struct{}, c *model.Composed, q []float64, maxPerCategory, catDepth int, prec model.Precision, maxWorkers int, cf *compiledFilter, final *vecmath.TopKStream) error {
	if maxPerCategory <= 0 {
		return errMaxPerCategory(maxPerCategory)
	}
	if catDepth < 1 || catDepth >= c.Tree.Depth() {
		return errCatDepth(catDepth, c.Tree.Depth())
	}
	ix := c.Index
	k := final.K()
	perCat := maxPerCategory
	if perCat > k {
		perCat = k
	}
	var mask *vecmath.Bitset
	eligible := ix.NumItems()
	if cf != nil {
		mask, eligible = &cf.mask, cf.eligible
	}
	width := len(c.Tree.Level(catDepth))
	fan := p.fanout(maxWorkers, ix.NumShards())

	// The diversified sweep keeps per-category quota heaps, whose
	// escalation unit is the whole per-category budget; at int8 error
	// magnitude nearly every tight category would escalate, so the int8
	// knob rides the f32 tier here. Still byte-identical — every precision
	// of every strategy is — just without the quantized first pass.
	if prec.Resolve() == model.PrecisionInt8 {
		prec = model.PrecisionF32
	}

	if prec.Resolve() != model.PrecisionF32 {
		// re-arm the collector: the f32 mode's escalation fallback arrives
		// here with the failed attempt's entries still in it
		final.Reset(k)
		if fan <= 1 {
			// one streaming pass, a lazily armed quota heap per touched
			// category, final selection from the retained union
			cats := make([]vecmath.TopKStream, width)
			armed := make([]bool, width)
			for s, n := 0, ix.NumShards(); s < n; s++ {
				if canceled(done) {
					return nil
				}
				shardLo, shardHi := ix.Shard(s)
				diversifiedSweepRange(ix, q, mask, shardLo, shardHi, perCat, catDepth, cats, armed)
			}
			for pos := range cats {
				if armed[pos] {
					final.Merge(&cats[pos])
				}
			}
			return nil
		}
		t := p.getDivTask()
		t.armDiv(width, perCat)
		t.ix, t.q, t.catDepth, t.mask, t.done = ix, q, catDepth, mask, done
		t.numShards = int32(ix.NumShards())
		t.next.Store(0)
		p.dispatch(t, fan)
		for pos := range t.gcats {
			if t.garmed[pos] {
				final.Merge(&t.gcats[pos])
			}
		}
		t.ix, t.q, t.mask, t.done = nil, nil, nil, nil
		p.divs.Put(t)
		return nil
	}

	sc := getF32Scratch(q)
	defer f32Scratches.Put(sc)
	eps := ix.ItemErrBound32(q)
	cats := make([]vecmath.TopKStream, width)
	var cats32 []vecmath.TopKStream32
	var armed []bool
	if fan <= 1 {
		cats32 = make([]vecmath.TopKStream32, width)
		armed = make([]bool, width)
	}
	for perp := f32OverFetch(perCat); ; perp *= 2 {
		if canceled(done) {
			return nil
		}
		if perp >= eligible {
			// every category retains all its eligible items: no pruning left
			return p.executeDiversified(done, c, q, maxPerCategory, catDepth, model.PrecisionF64, maxWorkers, cf, final)
		}
		var ok bool
		if fan <= 1 {
			for i := range armed {
				armed[i] = false
			}
			for s, n := 0, ix.NumShards(); s < n; s++ {
				if canceled(done) {
					return nil
				}
				shardLo, shardHi := ix.Shard(s)
				diversifiedSweepRange32(ix, sc.q32, mask, shardLo, shardHi, perp, catDepth, cats32, armed)
			}
			ok = rescoreDiversified(done, ix, q, cats32, cats, armed, perCat, k, eps, final)
		} else {
			t := p.getDivTask()
			t.armDiv32(width, perp)
			t.ix, t.q32, t.catDepth, t.mask, t.done = ix, sc.q32, catDepth, mask, done
			t.numShards = int32(ix.NumShards())
			t.next.Store(0)
			p.dispatch(t, fan)
			if canceled(done) {
				// the dispatched sweep stopped early; its truncated category
				// heaps must not reach the certificate
				t.ix, t.q32, t.mask, t.done = nil, nil, nil, nil
				p.divs.Put(t)
				return nil
			}
			ok = rescoreDiversified(done, ix, q, t.gcats32, cats, t.garmed, perCat, k, eps, final)
			t.ix, t.q32, t.mask, t.done = nil, nil, nil, nil
			p.divs.Put(t)
		}
		if ok {
			return nil
		}
		f32Escalations.Add(1)
	}
}

// diversifiedSweepRange streams the eligible items of [rangeLo, rangeHi)
// into their categories' lazily armed quota heaps — the shared loop body
// of the serial whole-catalog diversified sweep and each shard claim of
// the pooled one, so filter visitation changes land in exactly one place
// per precision.
func diversifiedSweepRange(ix *model.ScoringIndex, q []float64, mask *vecmath.Bitset, rangeLo, rangeHi, perCat, catDepth int, cats []vecmath.TopKStream, armed []bool) {
	var block [blockItems]float64
	for lo := rangeLo; lo < rangeHi; lo += blockItems {
		hi := lo + blockItems
		if hi > rangeHi {
			hi = rangeHi
		}
		if mask != nil && !mask.AnyInRange(lo, hi) {
			continue
		}
		buf := block[:hi-lo]
		ix.ItemScoresRangeInto(q, lo, hi, buf)
		for i, s := range buf {
			item := lo + i
			if mask != nil && !mask.Get(item) {
				continue
			}
			pos := ix.LevelPos(ix.ItemCategory(item, catDepth))
			if !armed[pos] {
				cats[pos].Reset(perCat)
				armed[pos] = true
			}
			cats[pos].Push(item, s)
		}
	}
}

// diversifiedSweepRange32 is diversifiedSweepRange over the compact f32
// slab with per-category candidate heaps of the over-fetched budget.
func diversifiedSweepRange32(ix *model.ScoringIndex, q32 []float32, mask *vecmath.Bitset, rangeLo, rangeHi, perCat, catDepth int, cats []vecmath.TopKStream32, armed []bool) {
	var block [blockItems]float32
	for lo := rangeLo; lo < rangeHi; lo += blockItems {
		hi := lo + blockItems
		if hi > rangeHi {
			hi = rangeHi
		}
		if mask != nil && !mask.AnyInRange(lo, hi) {
			continue
		}
		buf := block[:hi-lo]
		ix.ItemScoresRange32Into(q32, lo, hi, buf)
		for i, s := range buf {
			item := lo + i
			if mask != nil && !mask.Get(item) {
				continue
			}
			pos := ix.LevelPos(ix.ItemCategory(item, catDepth))
			if !armed[pos] {
				cats[pos].Reset(perCat)
				armed[pos] = true
			}
			cats[pos].Push(item, s)
		}
	}
}
