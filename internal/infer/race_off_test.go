//go:build !race

package infer

const raceEnabled = false
