package infer

import (
	"reflect"
	"runtime/debug"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// f32World builds a random world in one of several score regimes. tieRaw
// selects the adversarial surface: dense random scores, exact ties
// (zero factors), grouped bias ties, and — the regime the two-stage
// pipeline exists to survive — near-ties spaced below float32 resolution,
// where the f32 sweep cannot separate the boundary and must escalate.
func f32World(t *testing.T, seed uint64, shardRaw, kRaw, sizeRaw, tieRaw uint8) (*model.Composed, []float64) {
	t.Helper()
	rng := vecmath.NewRNG(seed)
	top := 2 + int(sizeRaw)%4
	tree, err := taxonomy.Generate(taxonomy.GenConfig{
		CategoryLevels: []int{top, top * 3},
		Items:          top*3 + 20 + int(sizeRaw)*5,
		Skew:           0.3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := model.Params{
		K:              1 + int(kRaw)%8,
		TaxonomyLevels: 1 + int(sizeRaw)%4,
		Alpha:          1,
		InitStd:        0.2,
		UseBias:        tieRaw%2 == 0,
	}
	switch tieRaw % 4 {
	case 1:
		p.InitStd = 0 // every score identical: pure tie-break ranking
	case 2:
		p.InitStd = 0
		p.UseBias = true // grouped ties through shared ancestor biases
	case 3:
		p.InitStd = 0
		p.UseBias = true // near-ties below f32 resolution (set below)
	}
	m, err := model.New(tree, 3, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p.UseBias {
		for n := 0; n < tree.NumNodes(); n++ {
			if !m.TrainedNode(n) {
				continue
			}
			if tieRaw%4 == 3 {
				// adversarial: scores differ by ~1e-12, far below what a
				// float32 sweep can distinguish at magnitude ~1
				m.Bias.Row(n)[0] = 1 + float64(n)*1e-12
			} else {
				m.Bias.Row(n)[0] = float64(rng.Intn(3)) * 0.5
			}
		}
	}
	c := m.Compose()
	c.Index.SetShardItems(1 + int(shardRaw)%97)
	q := make([]float64, p.K)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	if tieRaw%4 != 0 {
		vecmath.Zero(q) // collapse scores onto the bias surface
	}
	return c, q
}

// Property: the two-stage f32 pipeline returns rankings byte-identical to
// the f64 path — order and tie-breaks included — for naive, cascaded,
// diversified and batched sweeps, serial and pool-sharded, across shard
// sizes, worker counts, k and all tie regimes.
func TestQuickF32MatchesF64(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	f := func(seed uint16, shardRaw, kRaw, sizeRaw, tieRaw uint8) bool {
		c, q := f32World(t, uint64(seed)+101, shardRaw, kRaw, sizeRaw, tieRaw)
		for _, k := range []int{1, 1 + int(kRaw)%10, c.NumItems(), c.NumItems() + 5} {
			want := Naive(c, q, k)
			if !reflect.DeepEqual(want, NaiveF32(c, q, k)) {
				t.Logf("serial f32 naive diverged (k=%d)", k)
				return false
			}
			for _, workers := range []int{2, 4} {
				st := vecmath.NewTopKStream(k)
				pool.NaiveF32Into(c, q, st, workers)
				if !reflect.DeepEqual(want, st.Ranked()) {
					t.Logf("pooled f32 naive diverged (k=%d workers=%d)", k, workers)
					return false
				}
			}
		}
		k := 1 + int(kRaw)%15
		cfg := UniformCascade(c.Tree.Depth(), 0.2+float64(tieRaw%8)/10)
		wantItems, wantStats, err := Cascade(c, q, cfg, k)
		if err != nil {
			return false
		}
		gotItems, gotStats, err := CascadeF32(c, q, cfg, k)
		if err != nil || !reflect.DeepEqual(wantItems, gotItems) || !reflect.DeepEqual(wantStats, gotStats) {
			t.Log("serial f32 cascade diverged")
			return false
		}
		gotItems, gotStats, err = pool.CascadeF32(c, q, cfg, k, 0)
		if err != nil || !reflect.DeepEqual(wantItems, gotItems) || !reflect.DeepEqual(wantStats, gotStats) {
			t.Log("pooled f32 cascade diverged")
			return false
		}
		maxPer := 1 + int(tieRaw)%4
		catDepth := 1 + int(tieRaw)%(c.Tree.Depth()-1)
		wantDiv, err := Diversified(c, q, k, maxPer, catDepth)
		if err != nil {
			return false
		}
		gotDiv, err := DiversifiedF32(c, q, k, maxPer, catDepth)
		if err != nil || !reflect.DeepEqual(wantDiv, gotDiv) {
			t.Log("serial f32 diversified diverged")
			return false
		}
		gotDiv, err = pool.DiversifiedF32(c, q, k, maxPer, catDepth, 0)
		if err != nil || !reflect.DeepEqual(wantDiv, gotDiv) {
			t.Log("pooled f32 diversified diverged")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the batched f32 sweep gives every query of the batch exactly
// its serial f64 ranking, serial and pooled.
func TestQuickMultiF32MatchesF64(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	f := func(seed uint16, shardRaw, kRaw, batchRaw, tieRaw uint8) bool {
		c, base := f32World(t, uint64(seed)+211, shardRaw, kRaw, batchRaw, tieRaw)
		batch := 1 + int(batchRaw)%6
		qs := make([][]float64, batch)
		outs := make([]*vecmath.TopKStream, batch)
		ks := make([]int, batch)
		rng := vecmath.NewRNG(uint64(seed) + 977)
		for i := range qs {
			qs[i] = append([]float64(nil), base...)
			for j := range qs[i] {
				qs[i][j] += rng.NormFloat64() * 1e-3
			}
			ks[i] = 1 + (int(kRaw)+i)%12
			if i == 0 {
				// force one query whose over-fetch budget covers the
				// catalog: it must skip the f32 sweep and still come back
				// exact through the f64 finish path
				ks[i] = c.NumItems() + 2
			}
			outs[i] = vecmath.NewTopKStream(ks[i])
		}
		check := func(label string) bool {
			for i := range qs {
				if !reflect.DeepEqual(Naive(c, qs[i], ks[i]), outs[i].Ranked()) {
					t.Logf("%s diverged for query %d", label, i)
					return false
				}
			}
			return true
		}
		MultiNaiveF32Into(c, qs, outs)
		if !check("serial multi f32") {
			return false
		}
		for i := range outs {
			outs[i].Reset(ks[i])
		}
		pool.MultiNaiveF32Into(c, qs, outs, 0)
		return check("pooled multi f32")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// A catalog whose scores differ by less than float32 resolution must
// force the margin-escalation path — and still come back exact.
func TestF32EscalationNearTiesStaysExact(t *testing.T) {
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{CategoryLevels: []int{4, 16}, Items: 600, Skew: 0}, vecmath.NewRNG(3))
	p := model.Params{K: 4, TaxonomyLevels: 3, Alpha: 1, InitStd: 0, UseBias: true}
	m, err := model.New(tree, 2, p, vecmath.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	// leaf biases 1 + node·1e-13: every pairwise gap is below f32 ulp at
	// magnitude 1 (~6e-8), so no finite margin short of the catalog can
	// certify the boundary
	for n := 0; n < tree.NumNodes(); n++ {
		if m.TrainedNode(n) {
			m.Bias.Row(n)[0] = 1 + float64(n)*1e-13
		}
	}
	c := m.Compose()
	c.Index.SetShardItems(37)
	q := make([]float64, p.K) // zero query: scores collapse onto biases
	before := F32Escalations()
	want := Naive(c, q, 10)
	got := NaiveF32(c, q, 10)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("escalated ranking diverged:\nwant %v\ngot  %v", want, got)
	}
	if F32Escalations() == before {
		t.Fatal("near-tie catalog did not trigger a margin escalation")
	}
	pool := NewPool(4)
	defer pool.Close()
	st := vecmath.NewTopKStream(10)
	pool.NaiveF32Into(c, q, st, 0)
	if !reflect.DeepEqual(want, st.Ranked()) {
		t.Fatal("pooled escalated ranking diverged")
	}
}

// The serial two-stage pipeline must not allocate on the steady-state
// serving path.
func TestNaiveF32IntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts at random under the race detector")
	}
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{CategoryLevels: []int{4, 16}, Items: 2000, Skew: 0.3}, vecmath.NewRNG(5))
	m, err := model.New(tree, 2, model.Params{K: 16, TaxonomyLevels: 3, Alpha: 1, InitStd: 0.2}, vecmath.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	c := m.Compose()
	q := make([]float64, 16)
	rng := vecmath.NewRNG(7)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	// a GC empties sync.Pools, which would show up as a spurious scratch
	// refill; the serving claim is "no allocation given a warm pool"
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	st := vecmath.NewTopKStream(10)
	NaiveF32Into(c, q, st) // warm the scratch pool
	allocs := testing.AllocsPerRun(20, func() {
		st.Reset(10)
		NaiveF32Into(c, q, st)
		_ = st.Ranked()
	})
	if allocs > 0 {
		t.Fatalf("NaiveF32Into allocated %.1f objects per query, want 0", allocs)
	}
}
