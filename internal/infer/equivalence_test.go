package infer

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// The reference implementations below are the pre-index full-scan paths
// (materialize a catalog-sized []Scored, rank it, then select). The
// streaming index-backed rewrites must reproduce their rankings exactly,
// including tie-breaks.

func legacyNaive(c *model.Composed, q []float64, k int) []vecmath.Scored {
	scores := make([]vecmath.Scored, c.NumItems())
	for item := 0; item < c.NumItems(); item++ {
		scores[item] = vecmath.Scored{ID: item, Score: legacyNodeScore(c, q, c.Tree.ItemNode(item))}
	}
	return vecmath.TopK(scores, k)
}

func legacyNodeScore(c *model.Composed, q []float64, node int) float64 {
	s := vecmath.Dot(q, c.EffNode.Row(node))
	if c.P.UseBias {
		s += c.EffBias.Row(node)[0]
	}
	return s
}

func legacyCascade(c *model.Composed, q []float64, cfg CascadeConfig, k int) ([]vecmath.Scored, *Stats, error) {
	tree := c.Tree
	if err := cfg.Validate(tree.Depth()); err != nil {
		return nil, nil, err
	}
	stats := &Stats{}
	frontier := append([]int32(nil), tree.Level(1)...)
	for d := 1; d < tree.Depth(); d++ {
		scored := make([]vecmath.Scored, len(frontier))
		for i, node := range frontier {
			scored[i] = vecmath.Scored{ID: int(node), Score: legacyNodeScore(c, q, int(node))}
		}
		stats.NodesScored += len(scored)
		levelSize := len(tree.Level(d))
		keep := int(math.Ceil(cfg.KeepFrac[d-1] * float64(levelSize)))
		if keep < 1 {
			keep = 1
		}
		top := vecmath.TopK(scored, keep)
		stats.KeptPerLevel = append(stats.KeptPerLevel, len(top))
		frontier = frontier[:0]
		for _, s := range top {
			frontier = append(frontier, tree.Children(s.ID)...)
		}
	}
	candidates := make([]vecmath.Scored, len(frontier))
	for i, leaf := range frontier {
		candidates[i] = vecmath.Scored{ID: tree.NodeItem(int(leaf)), Score: legacyNodeScore(c, q, int(leaf))}
	}
	stats.NodesScored += len(frontier)
	stats.LeavesScored = len(frontier)
	return vecmath.TopK(candidates, k), stats, nil
}

func legacyDiversified(c *model.Composed, q []float64, k, maxPerCategory, catDepth int) []vecmath.Scored {
	all := legacyNaive(c, q, c.NumItems())
	quota := make(map[int]int)
	out := make([]vecmath.Scored, 0, k)
	for _, s := range all {
		if len(out) == k {
			break
		}
		cat := c.Tree.AncestorAtDepth(c.Tree.ItemNode(s.ID), catDepth)
		if quota[cat] >= maxPerCategory {
			continue
		}
		quota[cat]++
		out = append(out, s)
	}
	return out
}

func assertSameRanking(t *testing.T, name string, got, want []vecmath.Scored) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d vs %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s rank %d: id %d vs %d", name, i, got[i].ID, want[i].ID)
		}
		if math.Abs(got[i].Score-want[i].Score) > 1e-12 {
			t.Fatalf("%s rank %d: score %v vs %v", name, i, got[i].Score, want[i].Score)
		}
	}
}

// tiedComposed builds a snapshot whose items produce many exactly equal
// scores (quantized factors), exercising deterministic tie-breaking.
func tiedComposed(t *testing.T, useBias bool) *model.Composed {
	t.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{4, 12, 36},
		Items:          400,
		Skew:           0.4,
	}, vecmath.NewRNG(3))
	m, err := model.New(tree, 10, model.Params{K: 8, TaxonomyLevels: 4, InitStd: 0.3, Alpha: 1, UseBias: useBias}, vecmath.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	// quantize every offset so distinct items collide on scores
	for _, mat := range []*vecmath.Matrix{m.Node, m.Bias} {
		data := mat.Data()
		for i, v := range data {
			data[i] = math.Round(v*2) / 2
		}
	}
	return m.Compose()
}

func TestNaiveMatchesLegacyFullScan(t *testing.T) {
	for _, useBias := range []bool{false, true} {
		c := tiedComposed(t, useBias)
		q := query(c.K())
		for _, k := range []int{1, 10, 137, c.NumItems(), c.NumItems() + 5} {
			assertSameRanking(t, "naive", Naive(c, q, k), legacyNaive(c, q, k))
		}
	}
}

func TestCascadeMatchesLegacy(t *testing.T) {
	for _, useBias := range []bool{false, true} {
		c := tiedComposed(t, useBias)
		q := query(c.K())
		for _, f := range []float64{0.1, 0.3, 0.5, 1.0} {
			cfg := UniformCascade(c.Tree.Depth(), f)
			got, gotStats, err := Cascade(c, q, cfg, 25)
			if err != nil {
				t.Fatal(err)
			}
			want, wantStats, err := legacyCascade(c, q, cfg, 25)
			if err != nil {
				t.Fatal(err)
			}
			assertSameRanking(t, "cascade", got, want)
			if gotStats.NodesScored != wantStats.NodesScored ||
				gotStats.LeavesScored != wantStats.LeavesScored {
				t.Fatalf("f=%v stats differ: %+v vs %+v", f, gotStats, wantStats)
			}
			for i := range wantStats.KeptPerLevel {
				if gotStats.KeptPerLevel[i] != wantStats.KeptPerLevel[i] {
					t.Fatalf("f=%v kept[%d] %d vs %d", f, i, gotStats.KeptPerLevel[i], wantStats.KeptPerLevel[i])
				}
			}
		}
	}
}

func TestCascadeScoresMatchesLegacyReachability(t *testing.T) {
	c := tiedComposed(t, false)
	q := query(c.K())
	cfg := UniformCascade(c.Tree.Depth(), 0.4)
	scores, _, err := CascadeScores(c, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// reached set and scores must agree with the legacy walk's frontier
	_, wantStats, err := legacyCascade(c, q, cfg, c.NumItems())
	if err != nil {
		t.Fatal(err)
	}
	reached := 0
	for item, s := range scores {
		if math.IsInf(s, -1) {
			continue
		}
		reached++
		want := legacyNodeScore(c, q, c.Tree.ItemNode(item))
		if math.Abs(s-want) > 1e-12 {
			t.Fatalf("item %d: %v vs %v", item, s, want)
		}
	}
	if reached != wantStats.LeavesScored {
		t.Fatalf("reached %d vs legacy %d", reached, wantStats.LeavesScored)
	}
}

func TestDiversifiedMatchesLegacyGreedy(t *testing.T) {
	for _, useBias := range []bool{false, true} {
		c := tiedComposed(t, useBias)
		q := query(c.K())
		for _, maxPer := range []int{1, 2, 5, 1 << 30} {
			for _, depth := range []int{1, 2, c.Tree.Depth() - 1} {
				for _, k := range []int{1, 8, 30} {
					got, err := Diversified(c, q, k, maxPer, depth)
					if err != nil {
						t.Fatal(err)
					}
					want := legacyDiversified(c, q, k, maxPer, depth)
					assertSameRanking(t, "diversified", got, want)
				}
			}
		}
	}
}

func TestZeroKMatchesLegacyEmptyResult(t *testing.T) {
	c := tiedComposed(t, false)
	q := query(c.K())
	if got := Naive(c, q, 0); len(got) != 0 {
		t.Fatalf("Naive k=0 returned %d items", len(got))
	}
	got, _, err := Cascade(c, q, UniformCascade(c.Tree.Depth(), 0.5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("Cascade k=0 returned %d items", len(got))
	}
}

func TestNaiveIntoReusesCollector(t *testing.T) {
	c := tiedComposed(t, false)
	q := query(c.K())
	st := vecmath.NewTopKStream(12)
	NaiveInto(c, q, st)
	first := append([]vecmath.Scored(nil), st.Ranked()...)
	st.Reset(12)
	NaiveInto(c, q, st)
	assertSameRanking(t, "naiveinto-reuse", st.Ranked(), first)
	assertSameRanking(t, "naiveinto-vs-naive", first, Naive(c, q, 12))
}
