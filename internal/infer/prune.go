package infer

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// Taxonomy-guided branch-and-bound retrieval: instead of sweeping every
// eligible item, descend the category tree best-first and skip whole
// subtrees that provably cannot place an item in the result.
//
// The machinery rests on the per-subtree score envelopes ScoringIndex
// builds at Compose() time: SubtreeBound(node, q) dominates the exact f64
// score of every item under node, up to the certified rounding allowance
// ItemPruneBound(q). The descent keeps a max-priority queue of subtrees
// ordered by bound. Each pop either (a) prunes — the collector is full and
// the subtree's bound plus the serving tier's total ε is strictly below
// the current k-th heap score, so no item inside could have been retained;
// (b) expands — the subtree is large and the bound-evaluation budget has
// room; or (c) sweeps its items. Subtrees whose raw item ids happen to be
// contiguous sweep through the exact same blocked kernels the dense sweep
// uses; interleaved subtrees gather-score their contiguous span of the
// index's depth-first item order (ScoringIndex.DFSItems) one item at a
// time — the per-item scorers are documented bitwise-identical to the
// blocked kernels, so which path visits an item never changes its score.
//
// Byte-identity with the dense f64 path follows from two facts. First, a
// bounded TopKStream retains exactly the top-k of its pushed items under
// the (score desc, lower ID) total order, independent of push order — the
// same invariant the parallel shard merge relies on. Second, a pruned
// subtree's items all score strictly below the heap threshold at prune
// time, which never decreases afterwards, so pushing them could not have
// changed the retained set. Every item is visited exactly once: the queue
// starts at the root (whose DFS span is the whole catalog) and a node is
// only ever replaced by all of its children, whose DFS spans partition its
// own by construction. The reduced-precision tiers run the identical
// descent over their own slabs into the stage-one candidate heap, with
// the tier's scoring error (ItemErrBound32 / ItemErrBoundI8) added to the
// prune ε so a pruned item's tier score also sits strictly below the
// stage-one threshold; the unchanged rescore certificates of §5.7/§5.10
// (separated / separatedI8) then decide exactness and escalate on
// failure, so certify-or-escalate discipline is preserved end to end.
//
// When pruning cannot pay, the descent gets out of the way instead of
// limping through the catalog in gather order. Plans whose collector
// covers the eligible set, or whose ε is non-finite, never start the
// walk. A walk that does start re-examines itself once, at the moment
// the collector first fills: if nothing has been pruned and the queue's
// already-prunable mass (entries whose bound sits below the fresh
// threshold) covers less than a quarter of the items still queued, the
// bounds are too loose for this query — the descent bails, the caller
// discards the partial collector and runs the plain dense sweep. The
// checkpoint fires before any range can be deferred, so a bail costs
// only the items swept up to the first heap fill plus the bound
// evaluations spent — the price of the ≤1.05x dense-fallback guarantee —
// while a genuinely skewed world passes the checkpoint untouched.

// pruneSubtrees counts subtrees discarded by the branch-and-bound descent
// across all pruned plans; pruneItems counts the catalog items inside
// them (the work the dense sweep would have done), pruneBoundEvals the
// SubtreeBound evaluations spent, and pruneFallbacks the pruned plans
// that ran the dense sweep instead (collector covered the eligible set,
// a non-certifiable ε, or a loose-bounds bail at the first-fill
// checkpoint).
var (
	pruneSubtrees   atomic.Int64
	pruneItems      atomic.Int64
	pruneBoundEvals atomic.Int64
	pruneFallbacks  atomic.Int64
)

// PruneStats is a snapshot of the process-wide branch-and-bound counters,
// the observability mirror of F32Escalations/I8Escalations for the pruned
// path. ItemsPruned versus the catalog size is the fraction of dense
// sweep work the taxonomy bounds saved; a high Fallbacks count means
// requests ask for pruning that the plan shape (huge K, tiny filters) or
// the score distribution cannot deliver.
type PruneStats struct {
	// SubtreesPruned counts subtrees discarded with a bound certificate.
	SubtreesPruned int64
	// ItemsPruned counts the catalog items inside pruned subtrees.
	ItemsPruned int64
	// BoundEvals counts SubtreeBound evaluations (two dot products each).
	BoundEvals int64
	// Fallbacks counts pruned plans that ran the dense sweep instead —
	// the collector covered the eligible set, the ε was non-certifiable,
	// or the first-fill checkpoint found the bounds too loose to pay.
	Fallbacks int64
}

// PruneCounters returns the process-wide branch-and-bound counters.
func PruneCounters() PruneStats {
	return PruneStats{
		SubtreesPruned: pruneSubtrees.Load(),
		ItemsPruned:    pruneItems.Load(),
		BoundEvals:     pruneBoundEvals.Load(),
		Fallbacks:      pruneFallbacks.Load(),
	}
}

const (
	// prunedLeafCutoff is the subtree size at or below which the descent
	// sweeps instead of expanding: one block's worth of items costs about
	// as much to score as a handful of child bound evaluations, so finer
	// descent cannot pay.
	prunedLeafCutoff = blockItems

	// prunedSeedItems is how many items the descent sweeps inline before
	// deferring surviving ranges to the pool: the seed raises the heap
	// threshold serially (pruning decisions compound best-first), then the
	// leftover ranges — the bulk of an unprunable catalog — fan out.
	prunedSeedItems = 2048
)

// prunedBudget caps SubtreeBound evaluations per descent. Each evaluation
// costs roughly two dot products, so a budget of numItems/64 bounds the
// descent overhead near 3% of a dense sweep. Until the loose-bounds
// checkpoint has passed, expansion runs under the far smaller
// probeBudget — what a bailing descent wastes is probe-sized, not
// budget-sized, which is how the ≤1.05x dense-fallback guarantee holds.
func prunedBudget(numItems int) int { return numItems/64 + 64 }

// probeBudget is the expansion allowance before the loose-bounds
// checkpoint: enough to differentiate the queue a couple of levels down
// (so prunableMass sees real per-subtree bounds, not just the root's),
// small enough that a bail wastes well under 1% of a dense sweep.
func probeBudget(numItems int) int64 { return int64(prunedBudget(numItems))/8 + 32 }

// boundedSubtree is one priority-queue entry: a contiguous subtree and
// its query-specific score upper bound.
type boundedSubtree struct {
	bound float64
	node  int32
}

// itemRange is one span deferred for pooled sweeping: a contiguous raw
// item range [lo, hi) when gather is false, a span of the depth-first item
// order (to gather-score item by item) when gather is true.
type itemRange struct {
	lo, hi int32
	gather bool
}

// pruneState is the reusable per-descent state: the subtree priority
// queue, the deferred range list, the tier wiring (exactly one of st/st32
// receives pushes; q is always the exact f64 query the bounds are
// evaluated against), locally batched counters, and the block buffers the
// range sweeps score into. Pooled so steady-state pruned serving
// allocates nothing.
type pruneState struct {
	pq     []boundedSubtree
	ranges []itemRange

	ix           *model.ScoringIndex
	mask         *vecmath.Bitset
	q            []float64
	st           *vecmath.TopKStream
	q32          []float32
	st32         *vecmath.TopKStream32
	u            []int8
	qscale, sumQ float64

	statSubtrees, statItems, statBoundEvals int64

	block   [blockItems]float64
	block32 [blockItems]float32
}

var pruneStates = sync.Pool{New: func() any { return new(pruneState) }}

func getPruneState() *pruneState { return pruneStates.Get().(*pruneState) }

func putPruneState(ps *pruneState) {
	ps.ix, ps.mask, ps.q, ps.st, ps.q32, ps.st32, ps.u = nil, nil, nil, nil, nil, nil, nil
	pruneStates.Put(ps)
}

// flushStats adds the locally batched counters to the process-wide
// atomics once per descent, keeping atomic traffic off the hot loop.
func (ps *pruneState) flushStats() {
	if ps.statSubtrees != 0 {
		pruneSubtrees.Add(ps.statSubtrees)
		ps.statSubtrees = 0
	}
	if ps.statItems != 0 {
		pruneItems.Add(ps.statItems)
		ps.statItems = 0
	}
	if ps.statBoundEvals != 0 {
		pruneBoundEvals.Add(ps.statBoundEvals)
		ps.statBoundEvals = 0
	}
}

// threshold returns the active collector's k-th score in float64 (the
// space SubtreeBound lives in; widening a float32 threshold is exact).
func (ps *pruneState) threshold() (float64, bool) {
	if ps.st32 != nil {
		th, full := ps.st32.Threshold()
		return float64(th), full
	}
	return ps.st.Threshold()
}

// sweepRange scores the contiguous item span [lo, hi) into the active
// collector through the tier's blocked kernel — the same kernels the
// dense sweep uses, so scores are bitwise identical whichever path
// visits an item.
func (ps *pruneState) sweepRange(lo, hi int) {
	switch {
	case ps.st32 != nil:
		if ps.mask == nil {
			sweepRange32Into(ps.ix, ps.q32, lo, hi, ps.block32[:], ps.st32)
		} else {
			sweepRange32MaskedInto(ps.ix, ps.q32, lo, hi, ps.block32[:], ps.mask, ps.st32)
		}
	case ps.u != nil:
		if ps.mask == nil {
			sweepRangeI8Into(ps.ix, ps.u, ps.qscale, ps.sumQ, lo, hi, ps.block[:], ps.st)
		} else {
			sweepRangeI8MaskedInto(ps.ix, ps.u, ps.qscale, ps.sumQ, lo, hi, ps.block[:], ps.mask, ps.st)
		}
	default:
		if ps.mask == nil {
			sweepRangeInto(ps.ix, ps.q, lo, hi, ps.block[:], ps.st)
		} else {
			sweepRangeMaskedInto(ps.ix, ps.q, lo, hi, ps.block[:], ps.mask, ps.st)
		}
	}
}

// gatherRange scores the depth-first span [lo, hi) of ix.DFSItems() one
// item at a time through the tier's per-item scorer — bitwise identical to
// the blocked kernels by the scorers' documented contract — for subtrees
// whose raw item ids interleave with their siblings'.
func (ps *pruneState) gatherRange(lo, hi int) {
	gatherSpan(ps.ix, ps.ix.DFSItems()[lo:hi], ps.mask, ps.q, ps.st, ps.q32, ps.st32, ps.u, ps.qscale, ps.sumQ)
}

// gatherSpan is the tier dispatch shared by the serial descent and the
// pooled range workers: exactly one of st32 (f32 tier) / u+st (int8 tier)
// / st alone (f64 tier) is active, mirroring pruneState's wiring.
func gatherSpan(ix *model.ScoringIndex, span []int32, mask *vecmath.Bitset, q []float64, st *vecmath.TopKStream, q32 []float32, st32 *vecmath.TopKStream32, u []int8, qscale, sumQ float64) {
	switch {
	case st32 != nil:
		for _, it := range span {
			item := int(it)
			if mask != nil && !mask.Get(item) {
				continue
			}
			st32.Push(item, ix.ScoreItem32(item, q32))
		}
	case u != nil:
		for _, it := range span {
			item := int(it)
			if mask != nil && !mask.Get(item) {
				continue
			}
			st.Push(item, ix.ScoreItemI8(item, u, qscale, sumQ))
		}
	default:
		for _, it := range span {
			item := int(it)
			if mask != nil && !mask.Get(item) {
				continue
			}
			st.Push(item, ix.ScoreItem(item, q))
		}
	}
}

// sweepProbe gather-scores the depth-first span [dlo, dhi) one item at a
// time, stopping as soon as the collector fills, and returns the index it
// stopped at (dhi if the collector never filled). Only the pre-checkpoint
// phase of a descent uses it, so the per-item fullness polling is paid on
// at most the first k pushes of the walk.
func (ps *pruneState) sweepProbe(dlo, dhi int) int {
	dfs := ps.ix.DFSItems()
	for p := dlo; p < dhi; p++ {
		gatherSpan(ps.ix, dfs[p:p+1], ps.mask, ps.q, ps.st, ps.q32, ps.st32, ps.u, ps.qscale, ps.sumQ)
		if _, full := ps.threshold(); full {
			return p + 1
		}
	}
	return dhi
}

// sweepNode scores every item in node's subtree into the active collector,
// through the blocked kernels when the node's raw item range is contiguous
// and through the depth-first gather otherwise.
func (ps *pruneState) sweepNode(node, dlo, dhi int) {
	if lo, hi, contiguous := ps.ix.ItemRange(node); contiguous {
		ps.sweepRange(lo, hi)
		return
	}
	ps.gatherRange(dlo, dhi)
}

// pqPush inserts into the bound-ordered max-heap. NaN bounds (possible
// only with non-finite factor slabs) sift arbitrarily; correctness never
// depends on heap order — every popped node is re-checked against the
// prune condition individually.
func (ps *pruneState) pqPush(e boundedSubtree) {
	pq := append(ps.pq, e)
	i := len(pq) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(pq[parent].bound < pq[i].bound) {
			break
		}
		pq[parent], pq[i] = pq[i], pq[parent]
		i = parent
	}
	ps.pq = pq
}

// pqPop removes and returns the max-bound entry.
func (ps *pruneState) pqPop() boundedSubtree {
	pq := ps.pq
	top := pq[0]
	n := len(pq) - 1
	pq[0] = pq[n]
	pq = pq[:n]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && pq[l].bound > pq[m].bound {
			m = l
		}
		if r < n && pq[r].bound > pq[m].bound {
			m = r
		}
		if m == i {
			break
		}
		pq[i], pq[m] = pq[m], pq[i]
		i = m
	}
	ps.pq = pq
	return top
}

// descend outcomes: the walk ran to completion (the collector holds the
// exact retained set over every visited item), was canceled mid-walk, or
// bailed at the loose-bounds checkpoint — in the latter two cases the
// collector holds partial state the caller must discard.
const (
	descendDone = iota
	descendCanceled
	descendBailed
)

// prunableMass reports whether the subtrees already prunable at
// threshold th — queued entries whose bound plus ε sits strictly below
// it — cover at least a quarter of the items still in the queue. Below
// that, finishing the walk mostly gather-sweeps unprunable spans, which
// costs more than the dense blocked sweep it would replace.
func (ps *pruneState) prunableMass(eps, th float64) bool {
	var prunable, total int64
	for _, e := range ps.pq {
		lo, hi := ps.ix.DFSSpan(int(e.node))
		w := int64(hi - lo)
		total += w
		if e.bound+eps < th {
			prunable += w
		}
	}
	return prunable*4 >= total
}

// descend runs the best-first branch-and-bound walk. eps is the tier's
// total prune allowance: ItemPruneBound(q) for the f64 tier, plus the
// tier scoring error (ItemErrBound32/ItemErrBoundI8) for a
// reduced-precision stage-one heap, so a pruned item's tier score is
// strictly below the stage-one threshold too. When wantDefer is set and
// the heap has filled over a seed's worth of inline sweeping, surviving
// ranges are appended to ps.ranges for the caller to fan out instead of
// swept inline.
func (ps *pruneState) descend(done <-chan struct{}, tree *taxonomy.Tree, eps float64, wantDefer bool) int {
	ix := ps.ix
	budget := int64(prunedBudget(ix.NumItems()))
	// expansion runs under the probe allowance until the loose-bounds
	// checkpoint passes; a bailing walk never spends the full budget
	expand := probeBudget(ix.NumItems())
	if expand > budget {
		expand = budget
	}
	ps.pq = ps.pq[:0]
	ps.ranges = ps.ranges[:0]
	root := tree.Root()
	ps.statBoundEvals++
	ps.pqPush(boundedSubtree{bound: ix.SubtreeBound(root, ps.q), node: int32(root)})
	swept := 0
	deferring := false
	bailChecked := false
	for len(ps.pq) > 0 {
		if canceled(done) {
			return descendCanceled
		}
		top := ps.pqPop()
		node := int(top.node)
		dlo, dhi := ix.DFSSpan(node)
		// prune: the collector is full and no item under node can beat (or
		// tie, by the strict inequality) its k-th score. The threshold only
		// rises, so the certificate holds against the final ranking too.
		if th, full := ps.threshold(); full && top.bound+eps < th {
			ps.statSubtrees++
			ps.statItems += int64(dhi - dlo)
			continue
		}
		if dhi-dlo > prunedLeafCutoff && ps.statBoundEvals < expand {
			children := tree.Children(node)
			// expansion must shrink the work meaningfully: each child bound
			// costs ~two dot products. Empty subtrees are skipped — their
			// spans hold nothing and their identity envelopes must not be
			// evaluated — so the pushed spans still partition the parent's.
			if len(children)*4 <= dhi-dlo {
				for _, ch := range children {
					if clo, chi := ix.DFSSpan(int(ch)); clo == chi {
						continue
					}
					ps.statBoundEvals++
					ps.pqPush(boundedSubtree{bound: ix.SubtreeBound(int(ch), ps.q), node: ch})
				}
				continue
			}
		}
		if deferring {
			if lo, hi, contiguous := ix.ItemRange(node); contiguous {
				ps.ranges = append(ps.ranges, itemRange{int32(lo), int32(hi), false})
			} else {
				ps.ranges = append(ps.ranges, itemRange{int32(dlo), int32(dhi), true})
			}
			continue
		}
		if !bailChecked {
			// the one loose-bounds checkpoint: sweep just far enough to
			// fill the collector — the threshold is then live, so the
			// queue's bounds finally mean something. Nothing pruned yet
			// and almost nothing prunable means the envelopes cannot beat
			// this query's score range; bail before sinking real work.
			p := ps.sweepProbe(dlo, dhi)
			if th, full := ps.threshold(); full {
				bailChecked = true
				if ps.statItems == 0 && !ps.prunableMass(eps, th) {
					return descendBailed
				}
				expand = budget
			}
			if p < dhi {
				ps.gatherRange(p, dhi)
			}
		} else {
			ps.sweepNode(node, dlo, dhi)
		}
		swept += dhi - dlo
		if wantDefer && !deferring && swept >= prunedSeedItems {
			if _, full := ps.threshold(); full {
				deferring = true
			}
		}
	}
	return descendDone
}

// pruneTask is the fan-out state of the pooled pruned sweep: the descent's
// surviving ranges become the claimable work units (mirroring sweepTask's
// shard claiming), each participant sweeps its claims into a per-worker
// heap through the tier picked by the set fields, and partials merge into
// out/out32 — byte-identical to sweeping the ranges serially, by the
// bounded-heap merge invariant.
type pruneTask struct {
	taskBase
	ix     *model.ScoringIndex
	ranges []itemRange
	dfs    []int32
	q      []float64
	k      int
	q32    []float32
	out32  *vecmath.TopKStream32
	qi8    []int8
	qscale float64
	sumQ   float64
	mask   *vecmath.Bitset
	done   <-chan struct{}
	next   atomic.Int32
	mu     sync.Mutex
	out    *vecmath.TopKStream
}

func (t *pruneTask) run(sc *scratch) {
	if t.qi8 != nil {
		st := &sc.st
		st.Reset(t.k)
		var block [blockItems]float64
		for {
			if canceled(t.done) {
				break
			}
			r := int(t.next.Add(1)) - 1
			if r >= len(t.ranges) {
				break
			}
			lo, hi := int(t.ranges[r].lo), int(t.ranges[r].hi)
			if t.ranges[r].gather {
				gatherSpan(t.ix, t.dfs[lo:hi], t.mask, nil, st, nil, nil, t.qi8, t.qscale, t.sumQ)
			} else if t.mask == nil {
				sweepRangeI8Into(t.ix, t.qi8, t.qscale, t.sumQ, lo, hi, block[:], st)
			} else {
				sweepRangeI8MaskedInto(t.ix, t.qi8, t.qscale, t.sumQ, lo, hi, block[:], t.mask, st)
			}
		}
		if st.Len() > 0 {
			t.mu.Lock()
			t.out.Merge(st)
			t.mu.Unlock()
		}
		return
	}
	if t.out32 != nil {
		st := &sc.st32
		st.Reset(t.k)
		var block [blockItems]float32
		for {
			if canceled(t.done) {
				break
			}
			r := int(t.next.Add(1)) - 1
			if r >= len(t.ranges) {
				break
			}
			lo, hi := int(t.ranges[r].lo), int(t.ranges[r].hi)
			if t.ranges[r].gather {
				gatherSpan(t.ix, t.dfs[lo:hi], t.mask, nil, nil, t.q32, st, nil, 0, 0)
			} else if t.mask == nil {
				sweepRange32Into(t.ix, t.q32, lo, hi, block[:], st)
			} else {
				sweepRange32MaskedInto(t.ix, t.q32, lo, hi, block[:], t.mask, st)
			}
		}
		if st.Len() > 0 {
			t.mu.Lock()
			t.out32.Merge(st)
			t.mu.Unlock()
		}
		return
	}
	st := &sc.st
	st.Reset(t.k)
	var block [blockItems]float64
	for {
		if canceled(t.done) {
			break
		}
		r := int(t.next.Add(1)) - 1
		if r >= len(t.ranges) {
			break
		}
		lo, hi := int(t.ranges[r].lo), int(t.ranges[r].hi)
		if t.ranges[r].gather {
			gatherSpan(t.ix, t.dfs[lo:hi], t.mask, t.q, st, nil, nil, nil, 0, 0)
		} else if t.mask == nil {
			sweepRangeInto(t.ix, t.q, lo, hi, block[:], st)
		} else {
			sweepRangeMaskedInto(t.ix, t.q, lo, hi, block[:], t.mask, st)
		}
	}
	if st.Len() > 0 {
		t.mu.Lock()
		t.out.Merge(st)
		t.mu.Unlock()
	}
}

func (p *Pool) getPruneTask() *pruneTask {
	t, _ := p.prunes.Get().(*pruneTask)
	if t == nil {
		t = new(pruneTask)
	}
	return t
}

// dispatchRanges sweeps the descent's deferred ranges, fanning them across
// the pool when it pays; the serial path simply drains them inline.
func (p *Pool) dispatchRanges(done <-chan struct{}, ps *pruneState, maxWorkers int) {
	if len(ps.ranges) == 0 {
		return
	}
	fan := p.fanout(maxWorkers, len(ps.ranges))
	if fan <= 1 {
		for _, r := range ps.ranges {
			if canceled(done) {
				return
			}
			if r.gather {
				ps.gatherRange(int(r.lo), int(r.hi))
			} else {
				ps.sweepRange(int(r.lo), int(r.hi))
			}
		}
		return
	}
	t := p.getPruneTask()
	t.ix, t.ranges, t.dfs, t.mask, t.done = ps.ix, ps.ranges, ps.ix.DFSItems(), ps.mask, done
	switch {
	case ps.st32 != nil:
		t.q32, t.k, t.out32 = ps.q32, ps.st32.K(), ps.st32
	case ps.u != nil:
		t.qi8, t.qscale, t.sumQ, t.k, t.out = ps.u, ps.qscale, ps.sumQ, ps.st.K(), ps.st
	default:
		t.q, t.k, t.out = ps.q, ps.st.K(), ps.st
	}
	t.next.Store(0)
	p.dispatch(t, fan)
	t.ix, t.ranges, t.dfs, t.q, t.q32, t.qi8, t.out, t.out32, t.mask, t.done = nil, nil, nil, nil, nil, nil, nil, nil, nil, nil
	p.prunes.Put(t)
}

// wantDefer decides whether a descent should hand surviving ranges to the
// pool instead of sweeping everything inline, using the same fan-out
// arithmetic as the dense sweep.
func (p *Pool) wantDefer(maxWorkers int, ix *model.ScoringIndex) bool {
	return p.fanout(maxWorkers, ix.NumShards()) > 1
}

// prunedF64 is the exact-tier branch-and-bound sweep: descend, sweep the
// survivors, done — the collector ends byte-identical to runSweep's. Plans
// whose collector covers the eligible set (the heap could never fill below
// the catalog, so nothing can prune) and non-certifiable ε fall back to
// the dense sweep, counted in PruneStats.Fallbacks.
func (p *Pool) prunedF64(done <-chan struct{}, c *model.Composed, q []float64, maxWorkers int, mask *vecmath.Bitset, eligible int, st *vecmath.TopKStream) {
	ix := c.Index
	if st.K() <= 0 || ix.NumItems() == 0 {
		return
	}
	eps := ix.ItemPruneBound(q)
	if st.K() >= eligible || math.IsInf(eps, 0) || math.IsNaN(eps) {
		pruneFallbacks.Add(1)
		p.runSweep(done, ix, q, mask, maxWorkers, st)
		return
	}
	ps := getPruneState()
	ps.ix, ps.mask, ps.q, ps.st = ix, mask, q, st
	res := ps.descend(done, c.Tree, eps, p.wantDefer(maxWorkers, ix))
	if res == descendDone {
		p.dispatchRanges(done, ps, maxWorkers)
	}
	ps.flushStats()
	putPruneState(ps)
	if res == descendBailed {
		// loose bounds: discard the partial collector and run the blocked
		// dense sweep the descent would otherwise have gather-mimicked
		pruneFallbacks.Add(1)
		st.Reset(st.K())
		p.runSweep(done, ix, q, mask, maxWorkers, st)
	}
}

// prunedF32 is naiveF32 with the stage-one candidate sweep replaced by the
// branch-and-bound descent over the compact slab. The prune ε adds the f32
// scoring error to the f64 allowance, so every pruned item's f32 score is
// strictly below the candidate threshold — the retained candidate set is
// exactly the dense f32 sweep's, and the unchanged separation certificate
// (rescoreItems/separated) decides exactness, escalating the budget on
// failure just like the dense pipeline.
func (p *Pool) prunedF32(done <-chan struct{}, c *model.Composed, q []float64, maxWorkers int, mask *vecmath.Bitset, eligible int, st *vecmath.TopKStream, kp0 int) {
	ix := c.Index
	k := st.K()
	if k <= 0 {
		return
	}
	if ix.NumItems() == 0 {
		return
	}
	epsPrune := ix.ItemPruneBound(q)
	if math.IsInf(epsPrune, 0) || math.IsNaN(epsPrune) {
		// the bound cannot certify for this query; the dense two-stage
		// pipeline handles the non-finite regime via its own escalation
		pruneFallbacks.Add(1)
		p.naiveF32(done, c, q, maxWorkers, mask, eligible, st, kp0)
		return
	}
	sc := getF32Scratch(q)
	defer f32Scratches.Put(sc)
	eps32 := ix.ItemErrBound32(q)
	ps := getPruneState()
	defer putPruneState(ps)
	ps.ix, ps.mask, ps.q, ps.q32 = ix, mask, q, sc.q32
	for kp := kp0; ; kp *= 2 {
		if canceled(done) {
			ps.flushStats()
			return
		}
		if kp >= eligible {
			// the candidate budget covers every eligible item: stage one
			// cannot prune candidates, so run the exact pruned f64 path
			st.Reset(k)
			p.prunedF64(done, c, q, maxWorkers, mask, eligible, st)
			return
		}
		sc.cand.Reset(kp)
		ps.st32 = &sc.cand
		switch ps.descend(done, c.Tree, epsPrune+eps32, p.wantDefer(maxWorkers, ix)) {
		case descendCanceled:
			ps.flushStats()
			return
		case descendBailed:
			// loose bounds: hand this query to the dense two-stage pipeline
			// at the current candidate budget, discarding the partial heap
			ps.flushStats()
			pruneFallbacks.Add(1)
			st.Reset(k)
			p.naiveF32(done, c, q, maxWorkers, mask, eligible, st, kp)
			return
		}
		p.dispatchRanges(done, ps, maxWorkers)
		ps.flushStats()
		if canceled(done) {
			// a cancelled sweep left a truncated candidate set; rescoring it
			// could "certify" a wrong ranking, so bail before stage two
			return
		}
		st.Reset(k)
		if rescoreItems(done, ix, q, &sc.cand, st, eps32) {
			return
		}
		f32Escalations.Add(1)
	}
}

// prunedI8 is naiveI8 with the quantized stage-one sweep replaced by the
// branch-and-bound descent, mirroring prunedF32 with the int8 error bound
// folded into the prune ε and the int8 certificate (rescoreEntries/
// separatedI8) unchanged. A non-certifiable int8 bound goes to the exact
// pruned f64 path — the bounds still prune there even when quantization
// cannot certify.
func (p *Pool) prunedI8(done <-chan struct{}, c *model.Composed, q []float64, maxWorkers int, mask *vecmath.Bitset, eligible int, st *vecmath.TopKStream, kp0 int) {
	ix := c.Index
	k := st.K()
	if k <= 0 || ix.NumItems() == 0 {
		return
	}
	sc := getI8Scratch(q)
	defer i8Scratches.Put(sc)
	epsI8 := ix.ItemErrBoundI8(q, sc.sumAbsErr)
	epsPrune := ix.ItemPruneBound(q)
	if math.IsInf(epsI8, 0) || math.IsNaN(epsI8) || math.IsInf(epsPrune, 0) || math.IsNaN(epsPrune) {
		st.Reset(k)
		p.prunedF64(done, c, q, maxWorkers, mask, eligible, st)
		return
	}
	ps := getPruneState()
	defer putPruneState(ps)
	ps.ix, ps.mask, ps.q = ix, mask, q
	ps.u, ps.qscale, ps.sumQ = sc.u, sc.qscale, sc.sumQ
	for kp := kp0; ; kp *= 2 {
		if canceled(done) {
			ps.flushStats()
			return
		}
		if kp >= eligible {
			st.Reset(k)
			// ps.st still points at the candidate heap; the f64 fallback
			// builds its own state, so clear the tier wiring first
			ps.u = nil
			p.prunedF64(done, c, q, maxWorkers, mask, eligible, st)
			return
		}
		sc.cand.Reset(kp)
		ps.st = &sc.cand
		switch ps.descend(done, c.Tree, epsPrune+epsI8, p.wantDefer(maxWorkers, ix)) {
		case descendCanceled:
			ps.flushStats()
			return
		case descendBailed:
			ps.flushStats()
			pruneFallbacks.Add(1)
			st.Reset(k)
			p.naiveI8(done, c, q, maxWorkers, mask, eligible, st, kp)
			return
		}
		p.dispatchRanges(done, ps, maxWorkers)
		ps.flushStats()
		if canceled(done) {
			return
		}
		st.Reset(k)
		if rescoreEntries(done, ix, q, &sc.cand, st, epsI8) {
			return
		}
		i8Escalations.Add(1)
	}
}
