package infer

import (
	"testing"
)

func TestDiversifiedRespectsQuota(t *testing.T) {
	c := composed(t)
	q := query(c.K())
	catDepth := c.Tree.Depth() - 1
	out, err := Diversified(c, q, 20, 2, catDepth)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Fatalf("got %d items", len(out))
	}
	counts := map[int]int{}
	for _, s := range out {
		cat := c.Tree.AncestorAtDepth(c.Tree.ItemNode(s.ID), catDepth)
		counts[cat]++
		if counts[cat] > 2 {
			t.Fatalf("category %d exceeded quota", cat)
		}
	}
	// scores still descending
	for i := 1; i < len(out); i++ {
		if out[i].Score > out[i-1].Score {
			t.Fatal("diversified list must stay score-ordered")
		}
	}
}

func TestDiversifiedUnlimitedQuotaEqualsNaive(t *testing.T) {
	c := composed(t)
	q := query(c.K())
	out, err := Diversified(c, q, 15, 1<<30, 1)
	if err != nil {
		t.Fatal(err)
	}
	naive := Naive(c, q, 15)
	for i := range naive {
		if out[i].ID != naive[i].ID {
			t.Fatal("huge quota must reduce to the plain ranking")
		}
	}
}

func TestDiversifiedCoversMoreCategories(t *testing.T) {
	c := composed(t)
	q := query(c.K())
	catDepth := c.Tree.Depth() - 1
	countCats := func(ids []int) int {
		set := map[int]bool{}
		for _, id := range ids {
			set[c.Tree.AncestorAtDepth(c.Tree.ItemNode(id), catDepth)] = true
		}
		return len(set)
	}
	naive := Naive(c, q, 20)
	div, err := Diversified(c, q, 20, 1, catDepth)
	if err != nil {
		t.Fatal(err)
	}
	var naiveIDs, divIDs []int
	for _, s := range naive {
		naiveIDs = append(naiveIDs, s.ID)
	}
	for _, s := range div {
		divIDs = append(divIDs, s.ID)
	}
	if countCats(divIDs) < countCats(naiveIDs) {
		t.Fatalf("diversified list covers %d categories, naive %d", countCats(divIDs), countCats(naiveIDs))
	}
	if countCats(divIDs) != len(divIDs) {
		t.Fatalf("quota 1 must give all-distinct categories, got %d of %d", countCats(divIDs), len(divIDs))
	}
}

func TestDiversifiedValidation(t *testing.T) {
	c := composed(t)
	q := query(c.K())
	if _, err := Diversified(c, q, 5, 0, 1); err == nil {
		t.Fatal("expected error for quota 0")
	}
	if _, err := Diversified(c, q, 5, 1, 0); err == nil {
		t.Fatal("expected error for catDepth 0")
	}
	if _, err := Diversified(c, q, 5, 1, c.Tree.Depth()); err == nil {
		t.Fatal("expected error for catDepth == leaf depth")
	}
}
