//go:build race

package infer

// raceEnabled reports whether the race detector is active. sync.Pool
// intentionally drops puts at random under the detector, so
// allocation-freeness of pool-backed paths cannot be asserted there.
const raceEnabled = true
