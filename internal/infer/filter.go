package infer

import (
	"fmt"
	"sync"

	"repro/internal/model"
	"repro/internal/vecmath"
)

// Filter restricts which catalog items a plan may return. Semantically it
// applies BEFORE the ranking heap: excluded items are never scored into a
// collector, so a plan's K means "K returned items", not "K scanned minus
// whatever the filter ate". The three capabilities compose by
// intersection:
//
//   - AllowNodes, when non-empty, restricts candidates to the union of the
//     leaf items under the listed taxonomy nodes (category-constrained
//     pages);
//   - DenyNodes removes the leaves under the listed nodes;
//   - ExcludeItems removes individual item ids (the exclude-already-
//     purchased path builds this from the user's history).
//
// The zero value / nil filter passes everything.
type Filter struct {
	// AllowNodes lists taxonomy node ids whose subtrees are eligible
	// (union). Empty means the whole catalog.
	AllowNodes []int32
	// DenyNodes lists taxonomy node ids whose subtrees are removed.
	DenyNodes []int32
	// ExcludeItems lists individual item ids to remove; duplicates are
	// harmless.
	ExcludeItems []int32
	// RangeLo/RangeHi, when RangeHi > RangeLo, restrict candidates to the
	// half-open catalog slice [RangeLo, RangeHi) — the shard-scoped
	// serving mode, where one process answers for a contiguous piece of
	// the catalog and a router merges per-shard rankings. Like the other
	// capabilities it composes by intersection, so category filters and
	// exclusions apply within the range. RangeHi <= RangeLo (the zero
	// value) means the whole catalog.
	RangeLo int
	RangeHi int
}

// Ranged reports whether the filter carries a catalog range restriction.
func (f *Filter) Ranged() bool {
	return f != nil && f.RangeHi > f.RangeLo
}

// Empty reports whether the filter passes every item.
func (f *Filter) Empty() bool {
	return f == nil || (len(f.AllowNodes) == 0 && len(f.DenyNodes) == 0 &&
		len(f.ExcludeItems) == 0 && !f.Ranged())
}

// validate checks every referenced id against the snapshot.
func (f *Filter) validate(c *model.Composed) error {
	if f == nil {
		return nil
	}
	numNodes := c.Tree.NumNodes()
	for _, lists := range []struct {
		name  string
		nodes []int32
	}{{"allow", f.AllowNodes}, {"deny", f.DenyNodes}} {
		for _, n := range lists.nodes {
			if n < 0 || int(n) >= numNodes {
				return fmt.Errorf("infer: filter %s node %d outside [0,%d)", lists.name, n, numNodes)
			}
		}
	}
	numItems := c.Tree.NumItems()
	for _, it := range f.ExcludeItems {
		if it < 0 || int(it) >= numItems {
			return fmt.Errorf("infer: filter excluded item %d outside [0,%d)", it, numItems)
		}
	}
	if f.Ranged() {
		if f.RangeLo < 0 || f.RangeHi > numItems {
			return fmt.Errorf("infer: filter item range [%d,%d) outside [0,%d)", f.RangeLo, f.RangeHi, numItems)
		}
	}
	return nil
}

// compiledFilter is a filter rendered against one snapshot: an item
// eligibility bitset plus the surviving item count (which bounds the f32
// escalation budget — once the candidate heap covers every eligible item
// there is nothing left to prune). Compiled filters are pooled so the
// steady-state filtered serving path reuses the mask words.
type compiledFilter struct {
	mask     vecmath.Bitset
	eligible int
}

var filterPool = sync.Pool{New: func() any { return new(compiledFilter) }}

// compileFilter renders f as an eligibility mask over the index's
// item-major layout. It returns nil for an empty filter (the unfiltered
// sweeps then run their original mask-free code paths). The caller must
// releaseFilter the result when the query completes.
func compileFilter(ix *model.ScoringIndex, f *Filter) *compiledFilter {
	if f.Empty() {
		return nil
	}
	cf := filterPool.Get().(*compiledFilter)
	cf.mask.Resize(ix.NumItems())
	if len(f.AllowNodes) == 0 {
		cf.mask.Fill()
	} else {
		for _, n := range f.AllowNodes {
			ix.MarkSubtree(&cf.mask, int(n), true)
		}
	}
	for _, n := range f.DenyNodes {
		ix.MarkSubtree(&cf.mask, int(n), false)
	}
	for _, it := range f.ExcludeItems {
		cf.mask.Unset(int(it))
	}
	if f.Ranged() {
		cf.mask.UnsetRange(0, f.RangeLo)
		cf.mask.UnsetRange(f.RangeHi, ix.NumItems())
	}
	cf.eligible = cf.mask.Count()
	return cf
}

// releaseFilter recycles a compiled filter; nil is a no-op.
func releaseFilter(cf *compiledFilter) {
	if cf != nil {
		filterPool.Put(cf)
	}
}
