package infer

import (
	"context"
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/vecmath"
)

// randomFilter derives a filter from the raw quick-check bytes: allow and
// deny nodes drawn from random taxonomy levels plus a pseudo-random item
// exclusion set. Roughly a quarter of draws produce an empty filter so the
// unfiltered path stays covered.
func randomFilter(c *model.Composed, fltRaw uint16) *Filter {
	if fltRaw%4 == 0 {
		return nil
	}
	tree := c.Tree
	f := &Filter{}
	pick := func(seed uint32) int32 {
		d := 1 + int(seed)%(tree.Depth()) // any depth below the root, leaves included
		level := tree.Level(d)
		return level[int(seed>>3)%len(level)]
	}
	if fltRaw%3 != 0 {
		f.AllowNodes = append(f.AllowNodes, pick(uint32(fltRaw)*2654435761))
		if fltRaw%5 == 0 {
			f.AllowNodes = append(f.AllowNodes, pick(uint32(fltRaw)*40503+7))
		}
	}
	if fltRaw%2 == 0 {
		f.DenyNodes = append(f.DenyNodes, pick(uint32(fltRaw)*97+13))
	}
	step := 1 + int(fltRaw)%7
	for item := int(fltRaw) % step; item < tree.NumItems(); item += step * 3 {
		f.ExcludeItems = append(f.ExcludeItems, int32(item))
	}
	return f
}

// eligibleSet replays the filter semantics the slow way: ancestor-path
// membership checks per item, no index machinery.
func eligibleSet(c *model.Composed, f *Filter) map[int]bool {
	tree := c.Tree
	underAny := func(item int, nodes []int32) bool {
		for cur := tree.ItemNode(item); ; cur = tree.Parent(cur) {
			for _, n := range nodes {
				if int(n) == cur {
					return true
				}
			}
			if cur == tree.Root() {
				return false
			}
		}
	}
	out := make(map[int]bool)
	for item := 0; item < tree.NumItems(); item++ {
		ok := true
		if f != nil {
			if len(f.AllowNodes) > 0 && !underAny(item, f.AllowNodes) {
				ok = false
			}
			if ok && len(f.DenyNodes) > 0 && underAny(item, f.DenyNodes) {
				ok = false
			}
		}
		out[item] = ok
	}
	if f != nil {
		for _, it := range f.ExcludeItems {
			out[int(it)] = false
		}
	}
	return out
}

// rankEligible sorts the given (item, score) universe under the executor's
// total order and returns the [offset, offset+k) page.
func rankEligible(scores map[int]float64, k, offset int) []vecmath.Scored {
	all := make([]vecmath.Scored, 0, len(scores))
	for item, s := range scores {
		all = append(all, vecmath.Scored{ID: item, Score: s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	if offset >= len(all) {
		return []vecmath.Scored{}
	}
	all = all[offset:]
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// samePage compares a brute-force page with an executed one, treating
// nil/empty interchangeably.
func samePage(want, got []vecmath.Scored) bool {
	if len(want) != len(got) {
		return false
	}
	for i := range want {
		if want[i] != got[i] {
			return false
		}
	}
	return true
}

// executeAll runs one plan across {serial, Pool} × {f64, f32, int8} and
// reports whether every combination produced the identical page.
func executeAll(t *testing.T, pool *Pool, c *model.Composed, q []float64, pl Plan, want []vecmath.Scored) bool {
	t.Helper()
	for _, prec := range []model.Precision{model.PrecisionF64, model.PrecisionF32, model.PrecisionInt8} {
		for _, p := range []*Pool{nil, pool} {
			pl.Precision = prec
			res, err := p.Execute(context.Background(), c, q, pl)
			if err != nil {
				t.Logf("execute (%v, pool=%v): %v", prec, p != nil, err)
				return false
			}
			if !samePage(want, res.Items) {
				t.Logf("plan diverged (%v, pool=%v, strategy=%v):\nwant %v\ngot  %v",
					prec, p != nil, pl.Strategy, want, res.Items)
				return false
			}
		}
	}
	return true
}

// Property: a filtered naive plan equals the brute-force filter-then-rank
// oracle, byte-identically, across {serial, Pool} × {f64, f32}, shard
// sizes, offsets and every tie regime.
func TestQuickFilteredNaivePlanMatchesOracle(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	f := func(seed uint16, shardRaw, kRaw, sizeRaw, tieRaw uint8, fltRaw uint16) bool {
		c, q := f32World(t, uint64(seed)+307, shardRaw, kRaw, sizeRaw, tieRaw)
		flt := randomFilter(c, fltRaw)
		eligible := eligibleSet(c, flt)
		scores := make(map[int]float64)
		for item, ok := range eligible {
			if ok {
				scores[item] = c.Index.ScoreItem(item, q)
			}
		}
		k := 1 + int(kRaw)%12
		offset := int(fltRaw>>9) % 5
		want := rankEligible(scores, k, offset)
		pl := Plan{K: k, Offset: offset, Filter: flt}
		if !executeAll(t, pool, c, q, pl, want) {
			return false
		}
		// the executor must also report the oracle's eligible count
		res, err := pool.Execute(context.Background(), c, q, pl)
		if err != nil || res.Eligible != len(scores) {
			t.Logf("eligible count %d, oracle %d (err %v)", res.Eligible, len(scores), err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: a filtered diversified plan equals the greedy score-ordered
// quota oracle across all four execution modes.
func TestQuickFilteredDiversifiedPlanMatchesOracle(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	f := func(seed uint16, shardRaw, kRaw, sizeRaw, tieRaw uint8, fltRaw uint16) bool {
		c, q := f32World(t, uint64(seed)+409, shardRaw, kRaw, sizeRaw, tieRaw)
		flt := randomFilter(c, fltRaw)
		eligible := eligibleSet(c, flt)
		k := 1 + int(kRaw)%10
		offset := int(fltRaw>>10) % 4
		maxPer := 1 + int(tieRaw)%4
		catDepth := 1 + int(fltRaw)%(c.Tree.Depth()-1)
		// greedy oracle: walk eligible items in rank order, honoring the
		// per-category quota, collect k+offset picks, drop the first offset
		all := []vecmath.Scored{}
		for item, ok := range eligible {
			if ok {
				all = append(all, vecmath.Scored{ID: item, Score: c.Index.ScoreItem(item, q)})
			}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Score != all[j].Score {
				return all[i].Score > all[j].Score
			}
			return all[i].ID < all[j].ID
		})
		taken := map[int]int{}
		var picks []vecmath.Scored
		for _, s := range all {
			if len(picks) == k+offset {
				break
			}
			cat := c.Index.ItemCategory(s.ID, catDepth)
			if taken[cat] >= maxPer {
				continue
			}
			taken[cat]++
			picks = append(picks, s)
		}
		if offset >= len(picks) {
			picks = []vecmath.Scored{}
		} else {
			picks = picks[offset:]
		}
		pl := Plan{
			Strategy:  StrategyDiversified,
			K:         k,
			Offset:    offset,
			Diversify: &Diversify{MaxPerCategory: maxPer, CatDepth: catDepth},
			Filter:    flt,
		}
		return executeAll(t, pool, c, q, pl, picks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: a filtered cascade plan ranks exactly the eligible reached
// leaves — CascadeScores' reachability filtered then ranked — across all
// four execution modes, with Stats counting only eligible leaves.
func TestQuickFilteredCascadePlanMatchesOracle(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	f := func(seed uint16, shardRaw, kRaw, sizeRaw, tieRaw uint8, fltRaw uint16) bool {
		c, q := f32World(t, uint64(seed)+511, shardRaw, kRaw, sizeRaw, tieRaw)
		flt := randomFilter(c, fltRaw)
		eligible := eligibleSet(c, flt)
		cfg := UniformCascade(c.Tree.Depth(), 0.2+float64(tieRaw%8)/10)
		full, _, err := CascadeScores(c, q, cfg)
		if err != nil {
			return false
		}
		scores := make(map[int]float64)
		for item, s := range full {
			if eligible[item] && !math.IsInf(s, -1) {
				scores[item] = s
			}
		}
		k := 1 + int(kRaw)%12
		offset := int(fltRaw>>9) % 4
		want := rankEligible(scores, k, offset)
		pl := Plan{Strategy: StrategyCascade, K: k, Offset: offset, Cascade: &cfg, Filter: flt}
		if !executeAll(t, pool, c, q, pl, want) {
			return false
		}
		res, err := pool.Execute(context.Background(), c, q, pl)
		if err != nil || res.Stats == nil || res.Stats.LeavesScored != len(scores) {
			t.Logf("cascade stats %+v, want %d eligible leaves (err %v)", res.Stats, len(scores), err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Unfiltered plans must stay byte-identical to the legacy entry points
// they deprecate — the pinning the refactor's wrappers stand on.
func TestPlanMatchesLegacyEntryPoints(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	c, q := f32World(t, 97, 31, 5, 3, 0)
	k := 9

	res, err := Execute(context.Background(), c, q, Plan{K: k, Precision: model.PrecisionF64})
	if err != nil || !reflect.DeepEqual(res.Items, Naive(c, q, k)) {
		t.Fatalf("naive plan diverged from Naive (err %v)", err)
	}
	res, err = pool.Execute(context.Background(), c, q, Plan{K: k})
	if err != nil || !reflect.DeepEqual(res.Items, NaiveF32(c, q, k)) {
		t.Fatalf("f32 plan diverged from NaiveF32 (err %v)", err)
	}

	cfg := UniformCascade(c.Tree.Depth(), 0.4)
	wantItems, wantStats, err := Cascade(c, q, cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	res, err = pool.Execute(context.Background(), c, q, Plan{Strategy: StrategyCascade, K: k, Cascade: &cfg})
	if err != nil || !reflect.DeepEqual(res.Items, wantItems) || !reflect.DeepEqual(res.Stats, wantStats) {
		t.Fatalf("cascade plan diverged (err %v)", err)
	}

	wantDiv, err := Diversified(c, q, k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err = pool.Execute(context.Background(), c, q, Plan{Strategy: StrategyDiversified, K: k, Diversify: &Diversify{MaxPerCategory: 2, CatDepth: 1}})
	if err != nil || !reflect.DeepEqual(res.Items, wantDiv) {
		t.Fatalf("diversified plan diverged (err %v)", err)
	}
}

// ExecuteBatch must hand every plan of a coalesced batch exactly its
// per-query Execute page, and reject plans the shared sweep cannot honor.
func TestExecuteBatchMatchesPerQuery(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	c, base := f32World(t, 131, 17, 4, 2, 0)
	rng := vecmath.NewRNG(977)
	qs := make([][]float64, 5)
	pls := make([]Plan, 5)
	for i := range qs {
		qs[i] = append([]float64(nil), base...)
		for j := range qs[i] {
			qs[i][j] += rng.NormFloat64() * 1e-3
		}
		pls[i] = Plan{K: 3 + i, Offset: i % 3}
	}
	for _, p := range []*Pool{nil, pool} {
		results, err := p.ExecuteBatch(context.Background(), c, qs, pls)
		if err != nil {
			t.Fatal(err)
		}
		for i := range results {
			want, err := p.Execute(context.Background(), c, qs[i], pls[i])
			if err != nil {
				t.Fatal(err)
			}
			if !samePage(want.Items, results[i].Items) {
				t.Fatalf("batch query %d diverged", i)
			}
		}
	}
	bad := append([]Plan(nil), pls...)
	bad[2].Filter = &Filter{ExcludeItems: []int32{0}}
	if _, err := pool.ExecuteBatch(context.Background(), c, qs, bad); err == nil {
		t.Fatal("filtered plan accepted into a shared batch sweep")
	}
	bad = append([]Plan(nil), pls...)
	bad[1].Precision = model.PrecisionF64
	if _, err := pool.ExecuteBatch(context.Background(), c, qs, bad); err == nil {
		t.Fatal("mixed-precision batch accepted")
	}
}

// Plan validation must reject malformed plans with descriptive errors and
// leave K-larger-than-catalog to heap semantics (the serve boundary owns
// that limit).
func TestPlanValidation(t *testing.T) {
	c, q := f32World(t, 151, 11, 3, 1, 0)
	for name, pl := range map[string]Plan{
		"zero k":            {K: 0},
		"negative k":        {K: -7},
		"negative offset":   {K: 5, Offset: -1},
		"k+offset overflow": {K: math.MaxInt64 / 2, Offset: math.MaxInt64/2 + 2},
		"negative workers":  {K: 5, MaxWorkers: -2},
		"cascade no cfg":    {Strategy: StrategyCascade, K: 5},
		"diversify no cfg":  {Strategy: StrategyDiversified, K: 5},
		"bad quota":         {Strategy: StrategyDiversified, K: 5, Diversify: &Diversify{MaxPerCategory: 0}},
		"bad cat depth":     {Strategy: StrategyDiversified, K: 5, Diversify: &Diversify{MaxPerCategory: 1, CatDepth: 99}},
		"unknown strategy":  {Strategy: Strategy(9), K: 5},
		"bad allow node":    {K: 5, Filter: &Filter{AllowNodes: []int32{int32(c.Tree.NumNodes())}}},
		"bad deny node":     {K: 5, Filter: &Filter{DenyNodes: []int32{-1}}},
		"bad exclude item":  {K: 5, Filter: &Filter{ExcludeItems: []int32{int32(c.NumItems())}}},
	} {
		if _, err := Execute(context.Background(), c, q, pl); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	res, err := Execute(context.Background(), c, q, Plan{K: c.NumItems() + 10})
	if err != nil {
		t.Fatalf("k beyond catalog must use heap semantics at this layer: %v", err)
	}
	if len(res.Items) != c.NumItems() {
		t.Fatalf("over-catalog k returned %d items", len(res.Items))
	}
	// everything-excluded filter yields an empty page, not an error
	res, err = Execute(context.Background(), c, q, Plan{K: 3, Filter: &Filter{DenyNodes: []int32{int32(c.Tree.Root())}}})
	if err != nil || len(res.Items) != 0 || res.Eligible != 0 {
		t.Fatalf("deny-all: items %d eligible %d err %v", len(res.Items), res.Eligible, err)
	}
}
