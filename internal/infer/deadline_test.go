package infer

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// deadlineWorld builds a catalog with many small shards so cooperative
// cancellation checks happen frequently relative to total sweep time.
func deadlineWorld(t testing.TB) (*model.Composed, []float64) {
	t.Helper()
	tree, err := taxonomy.Generate(taxonomy.GenConfig{
		CategoryLevels: []int{4, 16, 64},
		Items:          3000,
		Skew:           0.4,
	}, vecmath.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.New(tree, 5, model.Params{K: 16, TaxonomyLevels: 3, Alpha: 1, InitStd: 0.3}, vecmath.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	c := m.Compose()
	c.Index.SetShardItems(64) // ~47 shards: one check per 64 items
	q := make([]float64, 16)
	rng := vecmath.NewRNG(9)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	return c, q
}

// deadlinePlans covers every strategy × precision shape the executor runs.
func deadlinePlans(c *model.Composed) []Plan {
	cc := UniformCascade(c.Tree.Depth(), 1.0)
	return []Plan{
		{K: 10},
		{K: 10, Precision: model.PrecisionF64},
		{K: 10, Filter: &Filter{ExcludeItems: []int32{1, 2, 3}}},
		{K: 10, Strategy: StrategyCascade, Cascade: &cc},
		{K: 10, Strategy: StrategyDiversified, Diversify: &Diversify{MaxPerCategory: 2, CatDepth: 1}},
	}
}

// A context that is already dead must fail every plan shape with
// ErrDeadline and an empty result, on the serial and the pooled path.
func TestExecutePreCancelledReturnsErrDeadline(t *testing.T) {
	c, q := deadlineWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pool := NewPool(3)
	defer pool.Close()
	for _, p := range []*Pool{nil, pool} {
		for _, pl := range deadlinePlans(c) {
			res, err := p.Execute(ctx, c, q, pl)
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("strategy %v workers=%d: got err %v, want ErrDeadline", pl.Strategy, p.Workers(), err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("ErrDeadline should wrap the context cause, got %v", err)
			}
			if len(res.Items) != 0 {
				t.Fatalf("cancelled plan returned %d items, want none", len(res.Items))
			}
		}
	}
	if _, err := pool.ExecuteBatch(ctx, c, [][]float64{q, q}, []Plan{{K: 5}, {K: 5}}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("ExecuteBatch on dead context: got %v, want ErrDeadline", err)
	}
}

// A deadline firing mid-sweep must yield either the complete byte-exact
// ranking or ErrDeadline with no items — never a partial ranking. The
// cancel point is swept across the query's duration until both outcomes
// are observed.
func TestExecuteMidSweepDeadlineNoPartialRanking(t *testing.T) {
	c, q := deadlineWorld(t)
	pool := NewPool(2)
	defer pool.Close()
	for _, tc := range []struct {
		name string
		p    *Pool
	}{{"serial", nil}, {"pooled", pool}} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := tc.p.Execute(context.Background(), c, q, Plan{K: 10})
			if err != nil {
				t.Fatal(err)
			}
			sawCancel, sawComplete := false, false
			// sweep the cancellation point from "immediately" upward until
			// both outcomes have been seen; 2000 attempts at escalating
			// delays is orders of magnitude beyond what either side needs
			delay := time.Nanosecond
			for attempt := 0; attempt < 2000 && !(sawCancel && sawComplete); attempt++ {
				ctx, cancel := context.WithCancel(context.Background())
				timer := time.AfterFunc(delay, cancel)
				res, err := tc.p.Execute(ctx, c, q, Plan{K: 10})
				timer.Stop()
				cancel()
				switch {
				case err == nil:
					sawComplete = true
					delay /= 2
					if delay == 0 {
						delay = time.Nanosecond
					}
					if !reflect.DeepEqual(res.Items, want.Items) {
						t.Fatalf("completed ranking differs from uncancelled run")
					}
				case errors.Is(err, ErrDeadline):
					sawCancel = true
					delay = delay*3/2 + time.Nanosecond
					if len(res.Items) != 0 {
						t.Fatalf("cancelled run leaked %d items", len(res.Items))
					}
				default:
					t.Fatalf("unexpected error: %v", err)
				}
			}
			if !sawCancel || !sawComplete {
				t.Fatalf("outcome coverage incomplete: cancelled=%v complete=%v", sawCancel, sawComplete)
			}
		})
	}
}

// Cancelled queries must not strand pool workers or helper goroutines.
func TestExecuteDeadlineNoGoroutineLeak(t *testing.T) {
	c, q := deadlineWorld(t)
	pool := NewPool(4)
	defer pool.Close()
	// settle, then measure
	for i := 0; i < 3; i++ {
		if _, err := pool.Execute(context.Background(), c, q, Plan{K: 10}); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		if i%2 == 0 {
			cancel() // pre-cancelled: rejected at entry
		} else {
			time.AfterFunc(time.Duration(i%7)*time.Microsecond, cancel)
		}
		pool.Execute(ctx, c, q, Plan{K: 10})
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// the pool must still answer correctly after the cancellation storm
	want, err := (*Pool)(nil).Execute(context.Background(), c, q, Plan{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Execute(context.Background(), c, q, Plan{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Items, got.Items) {
		t.Fatal("pool ranking diverged after cancellation storm")
	}
}

// A deadline (as opposed to a cancellation) must surface the stdlib's
// DeadlineExceeded through the ErrDeadline wrapper.
func TestExecuteDeadlineWrapsDeadlineExceeded(t *testing.T) {
	c, q := deadlineWorld(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := Execute(ctx, c, q, Plan{K: 5})
	if !errors.Is(err, ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadline wrapping context.DeadlineExceeded", err)
	}
}
