package infer

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/model"
	"repro/internal/vecmath"
)

// ErrDeadline marks a plan whose context ended — deadline exceeded or
// cancelled — before its ranking completed. The executor checks the
// context cooperatively at shard-claim boundaries, so a cancelled sweep
// stops within one shard's worth of work and returns this error with an
// empty Result: callers never observe a partial ranking. Test with
// errors.Is(err, ErrDeadline); the context's own error (and cause) is
// wrapped alongside.
var ErrDeadline = errors.New("infer: context ended before the ranking completed")

// deadlineErr builds the error a cancelled plan returns, wrapping both the
// typed sentinel and the context's cause.
func deadlineErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrDeadline, context.Cause(ctx))
}

// canceled reports whether a dispatch's done channel has fired. A nil
// channel (plan with no deadline) never fires and costs one skipped
// select per shard claim — the reason deadline support is free on the
// uncontended sweep.
func canceled(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// Strategy selects a plan's ranking shape.
type Strategy uint8

const (
	// StrategyNaive is the exact full-catalog sweep (the default).
	StrategyNaive Strategy = iota
	// StrategyCascade is the §5.1 top-down beam over the taxonomy;
	// Plan.Cascade must carry the per-level keep fractions.
	StrategyCascade
	// StrategyDiversified caps how many items a single category may place
	// in the result; Plan.Diversify must carry the quota.
	StrategyDiversified
)

// String returns the wire spelling used by flags and HTTP parameters.
func (s Strategy) String() string {
	switch s {
	case StrategyNaive:
		return "naive"
	case StrategyCascade:
		return "cascade"
	case StrategyDiversified:
		return "diversified"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// ParseStrategy parses the wire spelling; "" means StrategyNaive.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "", "naive":
		return StrategyNaive, nil
	case "cascade":
		return StrategyCascade, nil
	case "diversified":
		return StrategyDiversified, nil
	default:
		return StrategyNaive, fmt.Errorf("infer: unknown strategy %q (want naive, cascade or diversified)", s)
	}
}

// ParseIDList parses a comma-separated list of non-negative ids — the
// wire spelling of category filter lists, shared by the HTTP layer and
// the CLIs. Whether an id names a real taxonomy node is checked later,
// by Plan.Validate against a snapshot.
func ParseIDList(s string) ([]int32, error) {
	parts := strings.Split(s, ",")
	out := make([]int32, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("infer: bad id %q in list", p)
		}
		out = append(out, int32(n))
	}
	return out, nil
}

// Diversify configures StrategyDiversified: at most MaxPerCategory items
// from any single category at taxonomy depth CatDepth (0 = the lowest
// category level) may appear in the result.
type Diversify struct {
	MaxPerCategory int
	CatDepth       int
}

// Plan is one fully specified recommendation query: what to rank
// (Strategy plus its config), over which items (Filter), how much of the
// ranking to return (K results after skipping Offset), and how to spend
// hardware doing it (Precision, MaxWorkers). A Plan is validated once and
// executed by the single Execute path; every legacy entry point of this
// package is now a thin wrapper that builds the equivalent plan.
type Plan struct {
	// Strategy picks the ranking shape; the zero value is the naive sweep.
	Strategy Strategy
	// Precision picks the scoring pipeline; model.PrecisionDefault
	// resolves to the two-stage f32 sweep. Rankings are byte-identical
	// either way.
	Precision model.Precision
	// K is the number of items returned (after filtering and Offset).
	K int
	// Offset skips the first Offset ranked items — pagination. Filters
	// and ranking happen first, so page boundaries are stable for a fixed
	// plan and snapshot.
	Offset int
	// MaxWorkers caps the query's share of the executing pool: 0 uses the
	// whole pool, 1 forces the serial sweep.
	MaxWorkers int
	// Cascade carries the §5.1 keep fractions; required for (and only
	// for) StrategyCascade.
	Cascade *CascadeConfig
	// Diversify carries the category quota; required for (and only for)
	// StrategyDiversified.
	Diversify *Diversify
	// Filter restricts the eligible items; nil passes the whole catalog.
	Filter *Filter
	// Pruned runs the naive sweep as a taxonomy-guided branch-and-bound
	// descent (prune.go): subtrees whose certified score bound cannot
	// reach the current k-th heap score are skipped. Rankings stay
	// byte-identical to the dense path at every precision; only the work
	// changes. Valid only with StrategyNaive — the other strategies have
	// no full-catalog sweep to prune.
	Pruned bool
}

// Validate checks the plan against a snapshot. It is deliberately
// permissive about K exceeding the catalog (the heap just returns fewer
// items) — strict request-shape limits belong to the serving boundary.
func (pl Plan) Validate(c *model.Composed) error {
	if pl.K <= 0 {
		return fmt.Errorf("infer: plan K must be positive, got %d", pl.K)
	}
	if pl.Offset < 0 {
		return fmt.Errorf("infer: plan Offset must be non-negative, got %d", pl.Offset)
	}
	if pl.K+pl.Offset < 0 {
		return fmt.Errorf("infer: plan K+Offset overflows (%d + %d)", pl.K, pl.Offset)
	}
	if pl.MaxWorkers < 0 {
		return fmt.Errorf("infer: plan MaxWorkers must be non-negative, got %d", pl.MaxWorkers)
	}
	if pl.Pruned && pl.Strategy != StrategyNaive {
		return fmt.Errorf("infer: pruned retrieval applies only to naive plans, got strategy %v", pl.Strategy)
	}
	switch pl.Strategy {
	case StrategyNaive:
	case StrategyCascade:
		if pl.Cascade == nil {
			return fmt.Errorf("infer: cascade plan needs a CascadeConfig")
		}
		if err := pl.Cascade.Validate(c.Tree.Depth()); err != nil {
			return err
		}
	case StrategyDiversified:
		if pl.Diversify == nil {
			return fmt.Errorf("infer: diversified plan needs a Diversify config")
		}
		if pl.Diversify.MaxPerCategory <= 0 {
			return errMaxPerCategory(pl.Diversify.MaxPerCategory)
		}
		// check the depth the executor will actually use: on a flat
		// taxonomy even the CatDepth=0 default resolves to an invalid
		// level, and a validated plan must not fail during execution
		if d := pl.diversifyDepth(c); d < 1 || d >= c.Tree.Depth() {
			return errCatDepth(d, c.Tree.Depth())
		}
	default:
		return fmt.Errorf("infer: unknown strategy %v", pl.Strategy)
	}
	return pl.Filter.validate(c)
}

// diversifyDepth resolves the quota level: CatDepth 0 means the lowest
// category level.
func (pl Plan) diversifyDepth(c *model.Composed) int {
	return DiversifyDepth(c, pl.Diversify.CatDepth)
}

// DiversifyDepth resolves a diversified request's quota level against a
// snapshot: catDepth 0 means the lowest category level. Serving layers
// use it to report which taxonomy node each returned item's quota was
// charged to — the annotation a scatter-gather router needs to re-apply
// the per-category quota merge across shard results.
func DiversifyDepth(c *model.Composed, catDepth int) int {
	if catDepth != 0 {
		return catDepth
	}
	return c.Tree.Depth() - 1
}

// heapSize is the collector capacity a plan needs: the K+Offset page,
// clamped to the catalog — a bounded heap can never retain more than
// NumItems entries, so the clamp is behavior-identical while keeping an
// absurd K or Offset from sizing a giant allocation.
func (pl Plan) heapSize(c *model.Composed) int {
	k := pl.K + pl.Offset
	if n := c.Index.NumItems(); k > n {
		k = n
	}
	return k
}

// Result is one executed plan's output.
type Result struct {
	// Items is the ranked page: up to K entries, best first, after the
	// filter and Offset were applied. The slice aliases the collector the
	// plan ran on (the caller's, for ExecuteInto).
	Items []vecmath.Scored
	// Stats reports the cascade's work; nil for other strategies.
	Stats *Stats
	// Eligible is how many catalog items survived the plan's filter
	// (NumItems for an unfiltered plan).
	Eligible int
}

// Execute validates and runs a plan against a snapshot using the pool's
// workers (a nil receiver executes serially). The returned ranking is
// byte-identical — order and tie-breaks included — for any precision,
// worker count and shard size. An error is either a plan validation
// failure or — when ctx carries a deadline or cancellation that fires
// mid-query — ErrDeadline; once a plan validates and its context holds,
// execution cannot fail. A cancelled plan returns an empty Result, never
// a partial ranking.
func (p *Pool) Execute(ctx context.Context, c *model.Composed, q []float64, pl Plan) (Result, error) {
	// validate before sizing the collector: a malformed K/Offset must
	// come back as an error, not a makeslice panic or a giant allocation
	if err := pl.Validate(c); err != nil {
		return Result{}, err
	}
	return p.execInto(ctx, c, q, pl, vecmath.NewTopKStream(pl.heapSize(c)))
}

// Execute runs a plan serially; it is (*Pool)(nil).Execute for callers
// without a pool.
func Execute(ctx context.Context, c *model.Composed, q []float64, pl Plan) (Result, error) {
	return (*Pool)(nil).Execute(ctx, c, q, pl)
}

// ExecuteInto is Execute with a caller-owned collector, the zero-alloc
// core for tight loops (evaluation sweeps a collector across every test
// user). The collector is re-armed internally to K+Offset; Result.Items
// aliases its storage and stays valid until the next Reset.
func (p *Pool) ExecuteInto(ctx context.Context, c *model.Composed, q []float64, pl Plan, st *vecmath.TopKStream) (Result, error) {
	if err := pl.Validate(c); err != nil {
		return Result{}, err
	}
	return p.execInto(ctx, c, q, pl, st)
}

// execInto runs an already-validated plan into an armed collector. The
// context's done channel is threaded into every engine and checked at
// shard-claim boundaries; a fired deadline abandons the sweep (the
// collector may hold partial state, which is discarded — the re-arm on
// the next use wipes it) and surfaces as ErrDeadline.
func (p *Pool) execInto(ctx context.Context, c *model.Composed, q []float64, pl Plan, st *vecmath.TopKStream) (Result, error) {
	done := ctx.Done()
	if canceled(done) {
		return Result{}, deadlineErr(ctx)
	}
	cf := compileFilter(c.Index, pl.Filter)
	defer releaseFilter(cf)
	var mask *vecmath.Bitset
	eligible := c.Index.NumItems()
	if cf != nil {
		mask, eligible = &cf.mask, cf.eligible
	}
	st.Reset(pl.heapSize(c))
	res := Result{Eligible: eligible}
	switch pl.Strategy {
	case StrategyCascade:
		stats, err := p.executeCascade(done, c, q, *pl.Cascade, pl.Precision, pl.MaxWorkers, cf, st)
		if err != nil {
			return Result{}, err
		}
		res.Stats = stats
	case StrategyDiversified:
		if err := p.executeDiversified(done, c, q, pl.Diversify.MaxPerCategory, pl.diversifyDepth(c), pl.Precision, pl.MaxWorkers, cf, st); err != nil {
			return Result{}, err
		}
	default:
		p.executeNaive(done, c, q, pl.Precision, pl.MaxWorkers, mask, eligible, st, pl.Pruned)
	}
	// one check decides: engines bail cooperatively but quietly, so a
	// ranking is returned iff the context still holds here — a cancelled
	// sweep can never leak the partial heap it stopped with
	if canceled(done) {
		return Result{}, deadlineErr(ctx)
	}
	res.Items = page(st.Ranked(), pl.Offset)
	return res, nil
}

// ExecuteInto runs a plan serially into a caller-owned collector.
func ExecuteInto(ctx context.Context, c *model.Composed, q []float64, pl Plan, st *vecmath.TopKStream) (Result, error) {
	return (*Pool)(nil).ExecuteInto(ctx, c, q, pl, st)
}

// page drops the first offset entries of a ranked slice; a past-the-end
// offset yields an empty (non-nil) page.
func page(ranked []vecmath.Scored, offset int) []vecmath.Scored {
	if offset >= len(ranked) {
		return ranked[len(ranked):]
	}
	return ranked[offset:]
}

// ExecuteBatch coalesces naive unfiltered plans into one shared
// multi-query sweep: each cache-resident shard of the item slab is read
// once and scored against every query. All plans must be StrategyNaive
// with a nil Filter and the same resolved Precision — the shared sweep is
// one pass at one visitation pattern, which is exactly what a filter
// changes; route filtered plans through Execute per query (the serving
// batcher sub-groups this way). Offsets may differ: each query just
// over-collects by its own offset. Returns one Result per plan. A ctx
// deadline firing mid-sweep fails the whole batch with ErrDeadline — the
// sweep is shared work, so there is no per-plan partial answer to save.
func (p *Pool) ExecuteBatch(ctx context.Context, c *model.Composed, qs [][]float64, pls []Plan) ([]Result, error) {
	if len(qs) != len(pls) {
		return nil, fmt.Errorf("infer: batch has %d queries but %d plans", len(qs), len(pls))
	}
	if len(qs) == 0 {
		return nil, nil
	}
	prec := pls[0].Precision.Resolve()
	for i := range pls {
		if pls[i].Strategy != StrategyNaive || !pls[i].Filter.Empty() || pls[i].Pruned {
			return nil, fmt.Errorf("infer: batch plan %d is not an unfiltered unpruned naive plan", i)
		}
		if pls[i].Precision.Resolve() != prec {
			return nil, fmt.Errorf("infer: batch plan %d resolves to precision %v, batch runs %v", i, pls[i].Precision.Resolve(), prec)
		}
		if err := pls[i].Validate(c); err != nil {
			return nil, err
		}
	}
	done := ctx.Done()
	if canceled(done) {
		return nil, deadlineErr(ctx)
	}
	outs := make([]*vecmath.TopKStream, len(qs))
	for i := range outs {
		outs[i] = vecmath.NewTopKStream(pls[i].heapSize(c))
	}
	p.executeMulti(done, c, qs, prec, 0, outs)
	if canceled(done) {
		return nil, deadlineErr(ctx)
	}
	results := make([]Result, len(qs))
	for i := range results {
		results[i] = Result{Items: page(outs[i].Ranked(), pls[i].Offset), Eligible: c.Index.NumItems()}
	}
	return results, nil
}
