package infer

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// Pool is a persistent worker pool for sharded parallel inference. The
// scoring index partitions the item-major slab into cache-sized shards
// (model.ScoringIndex.Shard); a query is fanned out to the pool, each
// participant claims shards off a shared atomic counter, sweeps them into
// its own bounded top-k heap, and the partial heaps are merged into the
// caller's collector. Because a bounded heap retains exactly the k best
// entries under the (score desc, ID asc) total order, the merged ranking
// is byte-identical to the serial sweep — order and tie-breaks included —
// for any shard size and worker count.
//
// The submitting goroutine always works too: a pool of n workers runs
// n-1 background goroutines and the caller claims shards alongside them,
// so Pool parallelism equals the requested worker count and a pool is
// never idle-waiting on itself. All methods are safe for concurrent use
// and fall back to the serial path when the pool is nil, sized 1, or the
// catalog has a single shard. Steady-state queries perform no heap
// allocation: tasks and scratch heaps are recycled via sync.Pool and
// per-worker state persists across queries.
//
// Queries enter through Execute/ExecuteInto/ExecuteBatch (plan.go); the
// strategy-specific methods below are the legacy pre-plan surface, kept
// as thin wrappers.
type Pool struct {
	workers   int
	tasks     chan task
	scratches sync.Pool // *scratch for submitting goroutines
	sweeps    sync.Pool // *sweepTask
	leaves    sync.Pool // *leafTask
	divs      sync.Pool // *divTask
	multis    sync.Pool // *multiTask
	prunes    sync.Pool // *pruneTask
	closeOnce sync.Once
}

// task is one fanned-out unit of query work; run executes the receiving
// participant's share and base exposes the completion group.
type task interface {
	run(sc *scratch)
	base() *taskBase
}

// taskBase carries the per-dispatch completion group shared by all task
// kinds.
type taskBase struct {
	wg sync.WaitGroup
}

func (b *taskBase) base() *taskBase { return b }

// scratch is the per-participant reusable state: one bounded heap for
// single-query sweeps, per-query heaps for batched sweeps, and per-category
// heaps for diversified sweeps — each in a float64 and a float32 variant,
// since a task sweeps exactly one precision. Background workers own one
// for life; submitting goroutines borrow one from the pool per dispatch.
type scratch struct {
	st      vecmath.TopKStream
	multi   []vecmath.TopKStream
	cats    []vecmath.TopKStream
	armed   []bool
	st32    vecmath.TopKStream32
	multi32 []vecmath.TopKStream32
	cats32  []vecmath.TopKStream32
	// the blocked batched sweeps address their per-worker heaps through
	// pointer slices (the wire format of the shard-sweep helpers) and an
	// active-query index list; both live here so steady-state batches
	// allocate nothing
	idx      []int
	multiPtr []*vecmath.TopKStream
	multi32P []*vecmath.TopKStream32
}

// NewPool starts a pool of the given total parallelism; workers <= 0 uses
// runtime.GOMAXPROCS(0). Call Close when done to release the background
// goroutines.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, tasks: make(chan task, workers*2)}
	p.scratches.New = func() any { return new(scratch) }
	for i := 1; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's total parallelism (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close shuts the background workers down. It must not race with
// in-flight queries; a nil pool is a no-op.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.closeOnce.Do(func() { close(p.tasks) })
}

func (p *Pool) worker() {
	sc := new(scratch)
	for t := range p.tasks {
		t.run(sc)
		t.base().wg.Done()
	}
}

// fanout caps the participants for a query: the pool size, the caller's
// per-request limit (maxWorkers, 0 = no limit), and the number of
// independent work parts all bound it. A result of 1 means "run serial".
func (p *Pool) fanout(maxWorkers, parts int) int {
	if p == nil {
		return 1
	}
	fan := p.workers
	if maxWorkers > 0 && maxWorkers < fan {
		fan = maxWorkers
	}
	if parts < fan {
		fan = parts
	}
	return fan
}

// dispatch hands the task to fan-1 background workers, runs the caller's
// share on a borrowed scratch, and waits for everyone.
func (p *Pool) dispatch(t task, fan int) {
	b := t.base()
	b.wg.Add(fan - 1)
	for i := 0; i < fan-1; i++ {
		p.tasks <- t
	}
	sc := p.scratches.Get().(*scratch)
	t.run(sc)
	p.scratches.Put(sc)
	b.wg.Wait()
}

// ---- single-query sharded sweep -----------------------------------------

// sweepTask is the fan-out state of one parallel catalog sweep:
// participants claim shard indices from next and merge their partial
// heaps into out. In f32 mode (out32 non-nil) the claimed shards are
// swept through the compact slab into per-worker f32 candidate heaps
// instead; the caller owns the rescore stage. A non-nil mask restricts
// the sweep to eligible items (filtered plans).
type sweepTask struct {
	taskBase
	ix    *model.ScoringIndex
	q     []float64
	k     int
	q32   []float32
	out32 *vecmath.TopKStream32
	// int8 mode (qi8 non-nil): the claimed shards are swept through the
	// quantized slab with the pre-quantized query codes into per-worker
	// float64 candidate heaps of budget k, merged into out.
	qi8       []int8
	qscale    float64
	sumQ      float64
	mask      *vecmath.Bitset
	done      <-chan struct{}
	numShards int32
	next      atomic.Int32
	mu        sync.Mutex
	out       *vecmath.TopKStream
}

func (t *sweepTask) run(sc *scratch) {
	if t.qi8 != nil {
		st := &sc.st
		st.Reset(t.k)
		var block [blockItems]float64
		for {
			if canceled(t.done) {
				break
			}
			s := int(t.next.Add(1)) - 1
			if s >= int(t.numShards) {
				break
			}
			lo, hi := t.ix.Shard(s)
			if t.mask == nil {
				sweepRangeI8Into(t.ix, t.qi8, t.qscale, t.sumQ, lo, hi, block[:], st)
			} else {
				sweepRangeI8MaskedInto(t.ix, t.qi8, t.qscale, t.sumQ, lo, hi, block[:], t.mask, st)
			}
		}
		if st.Len() > 0 {
			t.mu.Lock()
			t.out.Merge(st)
			t.mu.Unlock()
		}
		return
	}
	if t.out32 != nil {
		st := &sc.st32
		st.Reset(t.k)
		var block [blockItems]float32
		for {
			if canceled(t.done) {
				break
			}
			s := int(t.next.Add(1)) - 1
			if s >= int(t.numShards) {
				break
			}
			lo, hi := t.ix.Shard(s)
			if t.mask == nil {
				sweepRange32Into(t.ix, t.q32, lo, hi, block[:], st)
			} else {
				sweepRange32MaskedInto(t.ix, t.q32, lo, hi, block[:], t.mask, st)
			}
		}
		if st.Len() > 0 {
			t.mu.Lock()
			t.out32.Merge(st)
			t.mu.Unlock()
		}
		return
	}
	st := &sc.st
	st.Reset(t.k)
	var block [blockItems]float64
	for {
		if canceled(t.done) {
			break
		}
		s := int(t.next.Add(1)) - 1
		if s >= int(t.numShards) {
			break
		}
		lo, hi := t.ix.Shard(s)
		if t.mask == nil {
			sweepRangeInto(t.ix, t.q, lo, hi, block[:], st)
		} else {
			sweepRangeMaskedInto(t.ix, t.q, lo, hi, block[:], t.mask, st)
		}
	}
	if st.Len() > 0 {
		t.mu.Lock()
		t.out.Merge(st)
		t.mu.Unlock()
	}
}

func (p *Pool) getSweepTask() *sweepTask {
	t, _ := p.sweeps.Get().(*sweepTask)
	if t == nil {
		t = new(sweepTask)
	}
	return t
}

// NaiveInto is the sharded parallel counterpart of NaiveInto: it streams
// every item's score into the armed collector st using up to maxWorkers
// participants (0 = the whole pool). Results are byte-identical to the
// serial path; steady-state calls allocate nothing.
//
// Deprecated: build a Plan and call Execute/ExecuteInto.
func (p *Pool) NaiveInto(c *model.Composed, q []float64, st *vecmath.TopKStream, maxWorkers int) {
	p.executeNaive(nil, c, q, model.PrecisionF64, maxWorkers, nil, c.Index.NumItems(), st, false)
}

// Naive returns the top-k items by parallel full sweep — the drop-in
// multi-core replacement for Naive. maxWorkers caps the fan-out (0 = the
// whole pool).
//
// Deprecated: build a Plan and call Execute.
func (p *Pool) Naive(c *model.Composed, q []float64, k, maxWorkers int) []vecmath.Scored {
	st := vecmath.NewTopKStream(k)
	p.NaiveInto(c, q, st, maxWorkers)
	return st.Ranked()
}

// NaiveF32Into is the sharded two-stage pipeline: participants sweep f32
// shards into per-worker candidate heaps which merge into one k'
// candidate set — identical to the serial f32 sweep's, since a bounded
// heap's retained set is exactly the k' best under the f32 total order —
// and the submitting goroutine rescores it exactly. Escalation
// re-dispatches the sweep with a doubled budget; results are
// byte-identical to NaiveInto for any shard size and worker count.
//
// Deprecated: build a Plan with model.PrecisionF32 and call
// Execute/ExecuteInto.
func (p *Pool) NaiveF32Into(c *model.Composed, q []float64, st *vecmath.TopKStream, maxWorkers int) {
	p.executeNaive(nil, c, q, model.PrecisionF32, maxWorkers, nil, c.Index.NumItems(), st, false)
}

// NaiveF32 returns the exact top-k via the sharded two-stage pipeline.
//
// Deprecated: build a Plan with model.PrecisionF32 and call Execute.
func (p *Pool) NaiveF32(c *model.Composed, q []float64, k, maxWorkers int) []vecmath.Scored {
	st := vecmath.NewTopKStream(k)
	p.NaiveF32Into(c, q, st, maxWorkers)
	return st.Ranked()
}

// ---- cascaded inference: parallel leaf frontier -------------------------

// leafChunk is the unit of work when scoring a cascade's leaf frontier in
// parallel; the frontier is an arbitrary node subset, so work is claimed
// in index chunks rather than slab shards.
const leafChunk = 512

type leafTask struct {
	taskBase
	tree   *taxonomy.Tree
	ix     *model.ScoringIndex
	q      []float64
	k      int
	q32    []float32
	out32  *vecmath.TopKStream32
	leaves []int32
	done   <-chan struct{}
	next   atomic.Int32
	mu     sync.Mutex
	out    *vecmath.TopKStream
}

func (t *leafTask) run(sc *scratch) {
	if t.out32 != nil {
		st := &sc.st32
		st.Reset(t.k)
		t.eachChunk(func(leaf int32) {
			st.Push(t.tree.NodeItem(int(leaf)), t.ix.ScoreNode32(int(leaf), t.q32))
		})
		if st.Len() > 0 {
			t.mu.Lock()
			t.out32.Merge(st)
			t.mu.Unlock()
		}
		return
	}
	st := &sc.st
	st.Reset(t.k)
	t.eachChunk(func(leaf int32) {
		st.Push(t.tree.NodeItem(int(leaf)), t.ix.ScoreNode(int(leaf), t.q))
	})
	if st.Len() > 0 {
		t.mu.Lock()
		t.out.Merge(st)
		t.mu.Unlock()
	}
}

// eachChunk claims frontier chunks off the shared counter and visits
// every leaf of each claimed chunk.
func (t *leafTask) eachChunk(visit func(leaf int32)) {
	chunks := (len(t.leaves) + leafChunk - 1) / leafChunk
	for {
		if canceled(t.done) {
			return
		}
		ci := int(t.next.Add(1)) - 1
		if ci >= chunks {
			return
		}
		lo := ci * leafChunk
		hi := lo + leafChunk
		if hi > len(t.leaves) {
			hi = len(t.leaves)
		}
		for _, leaf := range t.leaves[lo:hi] {
			visit(leaf)
		}
	}
}

func (p *Pool) getLeafTask() *leafTask {
	t, _ := p.leaves.Get().(*leafTask)
	if t == nil {
		t = new(leafTask)
	}
	return t
}

// Cascade runs §5.1 top-down inference with the surviving leaf frontier
// scored across the pool. The beam walk itself stays serial — category
// levels are tiny compared to the catalog — but the frontier, which can
// approach catalog size at high keep fractions, is chunked over the
// workers. Ranking and stats match the serial Cascade exactly.
//
// Deprecated: build a Plan with StrategyCascade and call Execute.
func (p *Pool) Cascade(c *model.Composed, q []float64, cfg CascadeConfig, k, maxWorkers int) ([]vecmath.Scored, *Stats, error) {
	st := vecmath.NewTopKStream(k)
	stats, err := p.executeCascade(nil, c, q, cfg, model.PrecisionF64, maxWorkers, nil, st)
	if err != nil {
		return nil, nil, err
	}
	return st.Ranked(), stats, nil
}

// CascadeF32 is Pool.Cascade with the leaf frontier ranked through the
// two-stage pipeline: the frontier's f32 scores are gathered across the
// pool into one merged candidate heap, then rescored exactly by the
// submitting goroutine. Items, order and Stats match the serial Cascade.
//
// Deprecated: build a Plan with StrategyCascade and model.PrecisionF32
// and call Execute.
func (p *Pool) CascadeF32(c *model.Composed, q []float64, cfg CascadeConfig, k, maxWorkers int) ([]vecmath.Scored, *Stats, error) {
	st := vecmath.NewTopKStream(k)
	stats, err := p.executeCascade(nil, c, q, cfg, model.PrecisionF32, maxWorkers, nil, st)
	if err != nil {
		return nil, nil, err
	}
	return st.Ranked(), stats, nil
}

// ---- diversified inference: sharded per-category quota heaps ------------

type divTask struct {
	taskBase
	ix        *model.ScoringIndex
	q         []float64
	q32       []float32
	perCat    int
	catDepth  int
	mask      *vecmath.Bitset
	done      <-chan struct{}
	numShards int32
	next      atomic.Int32
	mu        sync.Mutex
	gcats     []vecmath.TopKStream
	gcats32   []vecmath.TopKStream32
	garmed    []bool
}

func (p *Pool) getDivTask() *divTask {
	t, _ := p.divs.Get().(*divTask)
	if t == nil {
		t = new(divTask)
	}
	return t
}

// armDiv sizes the shared f64 category heaps for a dispatch: width slots,
// perCat quota, all disarmed. The f32 heaps are left alone — run()
// dispatches on q32, and dropping them would throw away the pooled
// capacity a later f32 query reuses.
func (t *divTask) armDiv(width, perCat int) {
	if cap(t.gcats) < width {
		t.gcats = make([]vecmath.TopKStream, width)
	}
	t.gcats = t.gcats[:width]
	t.armGuards(width)
	t.perCat = perCat
}

// armDiv32 sizes the shared f32 candidate heaps for a dispatch.
func (t *divTask) armDiv32(width, perCat int) {
	if cap(t.gcats32) < width {
		t.gcats32 = make([]vecmath.TopKStream32, width)
	}
	t.gcats32 = t.gcats32[:width]
	t.armGuards(width)
	t.perCat = perCat
}

func (t *divTask) armGuards(width int) {
	if cap(t.garmed) < width {
		t.garmed = make([]bool, width)
	}
	t.garmed = t.garmed[:width]
	for i := range t.garmed {
		t.garmed[i] = false
	}
}

func (t *divTask) run(sc *scratch) {
	if t.q32 != nil {
		t.run32(sc)
		return
	}
	width := len(t.gcats)
	if cap(sc.cats) < width {
		sc.cats = make([]vecmath.TopKStream, width)
	}
	cats, armed := sc.cats[:width], sc.armedSlice(width)
	for {
		if canceled(t.done) {
			break
		}
		s := int(t.next.Add(1)) - 1
		if s >= int(t.numShards) {
			break
		}
		shardLo, shardHi := t.ix.Shard(s)
		t.sweepShard(shardLo, shardHi, cats, armed)
	}
	t.mu.Lock()
	for pos := range cats {
		if !armed[pos] {
			continue
		}
		if !t.garmed[pos] {
			t.gcats[pos].Reset(t.perCat)
			t.garmed[pos] = true
		}
		t.gcats[pos].Merge(&cats[pos])
	}
	t.mu.Unlock()
}

// sweepShard scores one claimed shard into the participant's per-category
// f64 heaps via the shared range sweep, honoring the task's mask.
func (t *divTask) sweepShard(shardLo, shardHi int, cats []vecmath.TopKStream, armed []bool) {
	diversifiedSweepRange(t.ix, t.q, t.mask, shardLo, shardHi, t.perCat, t.catDepth, cats, armed)
}

// run32 is the f32-mode divTask body: identical claim loop over the
// compact slab with per-worker per-category candidate heaps of the
// over-fetched budget, merged into the shared f32 category heaps.
func (t *divTask) run32(sc *scratch) {
	width := len(t.gcats32)
	if cap(sc.cats32) < width {
		sc.cats32 = make([]vecmath.TopKStream32, width)
	}
	cats, armed := sc.cats32[:width], sc.armedSlice(width)
	for {
		if canceled(t.done) {
			break
		}
		s := int(t.next.Add(1)) - 1
		if s >= int(t.numShards) {
			break
		}
		shardLo, shardHi := t.ix.Shard(s)
		t.sweepShard32(shardLo, shardHi, cats, armed)
	}
	t.mu.Lock()
	for pos := range cats {
		if !armed[pos] {
			continue
		}
		if !t.garmed[pos] {
			t.gcats32[pos].Reset(t.perCat)
			t.garmed[pos] = true
		}
		t.gcats32[pos].Merge(&cats[pos])
	}
	t.mu.Unlock()
}

// sweepShard32 is sweepShard over the compact f32 slab.
func (t *divTask) sweepShard32(shardLo, shardHi int, cats []vecmath.TopKStream32, armed []bool) {
	diversifiedSweepRange32(t.ix, t.q32, t.mask, shardLo, shardHi, t.perCat, t.catDepth, cats, armed)
}

// armedSlice returns the scratch's per-category armed flags, cleared and
// sized to width.
func (sc *scratch) armedSlice(width int) []bool {
	if cap(sc.armed) < width {
		sc.armed = make([]bool, width)
	}
	armed := sc.armed[:width]
	for i := range armed {
		armed[i] = false
	}
	return armed
}

// Diversified is the sharded parallel counterpart of Diversified: each
// participant keeps per-category quota heaps over its claimed shards, the
// per-category heaps are merged (a bounded-heap union preserves each
// category's exact quota top), and the final ranking is selected from the
// merged category heaps — identical to the serial result.
//
// Deprecated: build a Plan with StrategyDiversified and call Execute.
func (p *Pool) Diversified(c *model.Composed, q []float64, k, maxPerCategory, catDepth, maxWorkers int) ([]vecmath.Scored, error) {
	final := vecmath.NewTopKStream(k)
	if err := p.executeDiversified(nil, c, q, maxPerCategory, catDepth, model.PrecisionF64, maxWorkers, nil, final); err != nil {
		return nil, err
	}
	return final.Ranked(), nil
}

// DiversifiedF32 is the sharded two-stage Diversified: per-worker
// per-category f32 candidate heaps (over-fetched to perCat' = perCat +
// margin) merge into global category heaps, the submitting goroutine
// rescores every retained candidate exactly, and the per-category
// separation certificate of rescoreDiversified decides whether to
// escalate. Results are byte-identical to the serial Diversified.
//
// Deprecated: build a Plan with StrategyDiversified and
// model.PrecisionF32 and call Execute.
func (p *Pool) DiversifiedF32(c *model.Composed, q []float64, k, maxPerCategory, catDepth, maxWorkers int) ([]vecmath.Scored, error) {
	final := vecmath.NewTopKStream(k)
	if err := p.executeDiversified(nil, c, q, maxPerCategory, catDepth, model.PrecisionF32, maxWorkers, nil, final); err != nil {
		return nil, err
	}
	return final.Ranked(), nil
}

// ---- batched multi-query sweep ------------------------------------------

type multiTask struct {
	taskBase
	ix     *model.ScoringIndex
	qs     [][]float64
	qs32   [][]float32
	outs32 []*vecmath.TopKStream32
	// int8 mode (usI8 non-nil): the quantized queries and their code
	// parameters; outs then points at the batch's float64 candidate heaps
	// rather than final collectors.
	usI8      [][]int8
	qscalesI8 []float64
	sumQsI8   []float64
	done      <-chan struct{}
	numShards int32
	next      atomic.Int32
	mu        sync.Mutex
	outs      []*vecmath.TopKStream
}

func (p *Pool) getMultiTask() *multiTask {
	t, _ := p.multis.Get().(*multiTask)
	if t == nil {
		t = new(multiTask)
	}
	return t
}

func (t *multiTask) run(sc *scratch) {
	if t.usI8 != nil {
		t.runI8(sc)
		return
	}
	if t.outs32 != nil {
		t.run32(sc)
		return
	}
	b := len(t.qs)
	if cap(sc.multi) < b {
		sc.multi = make([]vecmath.TopKStream, b)
	}
	parts := sc.multi[:b]
	for i := range parts {
		parts[i].Reset(t.outs[i].K())
	}
	var block [blockItems]float64
	for {
		if canceled(t.done) {
			break
		}
		s := int(t.next.Add(1)) - 1
		if s >= int(t.numShards) {
			break
		}
		lo, hi := t.ix.Shard(s)
		// query-major within one cache-resident shard: the shard's factor
		// rows are loaded once and scored against every query in the batch
		for i, q := range t.qs {
			sweepRangeInto(t.ix, q, lo, hi, block[:], &parts[i])
		}
	}
	t.mu.Lock()
	for i := range parts {
		if parts[i].Len() > 0 {
			t.outs[i].Merge(&parts[i])
		}
	}
	t.mu.Unlock()
}

// run32 is the f32-mode multiTask body: a blocked sweep over the
// cache-resident compact shards — each shard's rows read once per qBlock
// query group — into per-worker per-query candidate heaps, merged into
// the shared per-query candidate sets.
func (t *multiTask) run32(sc *scratch) {
	b := len(t.qs32)
	if cap(sc.multi32) < b {
		sc.multi32 = make([]vecmath.TopKStream32, b)
	}
	if cap(sc.multi32P) < b {
		sc.multi32P = make([]*vecmath.TopKStream32, b)
	}
	if cap(sc.idx) < b {
		sc.idx = make([]int, 0, b)
	}
	parts, ptrs, active := sc.multi32[:b], sc.multi32P[:b], sc.idx[:0]
	items := t.ix.NumItems()
	for i := range parts {
		parts[i].Reset(t.outs32[i].K())
		ptrs[i] = &parts[i]
		// queries whose budget covers the catalog skip the f32 sweep; the
		// finish stage runs them through the f64 path directly
		if t.outs32[i].K() < items {
			active = append(active, i)
		}
	}
	sc.idx = active
	for {
		if canceled(t.done) {
			break
		}
		s := int(t.next.Add(1)) - 1
		if s >= int(t.numShards) {
			break
		}
		lo, hi := t.ix.Shard(s)
		sweepShard32Multi(t.ix, t.qs32, ptrs, active, lo, hi)
	}
	t.mu.Lock()
	for i := range parts {
		if parts[i].Len() > 0 {
			t.outs32[i].Merge(&parts[i])
		}
	}
	t.mu.Unlock()
}

// runI8 is the int8-mode multiTask body: the blocked sweep over the
// quantized shards into per-worker float64 candidate heaps, merged into
// the batch's shared candidate sets (t.outs, which point at candidate
// heaps in int8 mode — the rescore stage runs after the dispatch joins).
func (t *multiTask) runI8(sc *scratch) {
	b := len(t.usI8)
	if cap(sc.multi) < b {
		sc.multi = make([]vecmath.TopKStream, b)
	}
	if cap(sc.multiPtr) < b {
		sc.multiPtr = make([]*vecmath.TopKStream, b)
	}
	if cap(sc.idx) < b {
		sc.idx = make([]int, 0, b)
	}
	parts, ptrs, active := sc.multi[:b], sc.multiPtr[:b], sc.idx[:0]
	items := t.ix.NumItems()
	for i := range parts {
		parts[i].Reset(t.outs[i].K())
		ptrs[i] = &parts[i]
		if t.outs[i].K() < items {
			active = append(active, i)
		}
	}
	sc.idx = active
	for {
		if canceled(t.done) {
			break
		}
		s := int(t.next.Add(1)) - 1
		if s >= int(t.numShards) {
			break
		}
		lo, hi := t.ix.Shard(s)
		sweepShardI8Multi(t.ix, t.usI8, t.qscalesI8, t.sumQsI8, ptrs, active, lo, hi)
	}
	t.mu.Lock()
	for i := range parts {
		if parts[i].Len() > 0 {
			t.outs[i].Merge(&parts[i])
		}
	}
	t.mu.Unlock()
}

// MultiNaiveInto scores a batch of queries in one pass over the shared
// item slab: each cache-sized shard is swept once and scored against
// every query before moving on, so a coalesced batch of B requests reads
// the catalog's factors once instead of B times. Each query's collector
// receives exactly the ranking the serial single-query sweep produces.
//
// Deprecated: use ExecuteBatch.
func MultiNaiveInto(c *model.Composed, qs [][]float64, outs []*vecmath.TopKStream) {
	(*Pool)(nil).executeMulti(nil, c, qs, model.PrecisionF64, 1, outs)
}

// MultiNaiveInto fans the batched sweep across the pool: participants
// claim shards and score the whole batch against each claimed shard.
//
// Deprecated: use ExecuteBatch.
func (p *Pool) MultiNaiveInto(c *model.Composed, qs [][]float64, outs []*vecmath.TopKStream, maxWorkers int) {
	p.executeMulti(nil, c, qs, model.PrecisionF64, maxWorkers, outs)
}

// MultiNaiveF32Into fans the batched two-stage sweep across the pool:
// participants claim compact-slab shards and score the whole batch
// against each, the per-query candidate sets are merged, and the
// submitting goroutine rescores each query exactly. A query whose margin
// fails escalates alone through the serial pipeline; every collector ends
// up byte-identical to its serial single-query f64 ranking.
//
// Deprecated: use ExecuteBatch with model.PrecisionF32 plans.
func (p *Pool) MultiNaiveF32Into(c *model.Composed, qs [][]float64, outs []*vecmath.TopKStream, maxWorkers int) {
	p.executeMulti(nil, c, qs, model.PrecisionF32, maxWorkers, outs)
}
