package infer

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// Property: a pruned naive plan returns pages byte-identical to the
// brute-force oracle — and therefore to the unpruned plan — across
// {serial, Pool} × {f64, f32, int8}, shard sizes, worker counts, k,
// offsets, filters and every tie regime. The tie regimes double as the
// adversarial bound surface: with zeroed factors (tieRaw%4 != 0) every
// per-dimension envelope is exactly tight and every subtree bound sits
// within one bias step of the k-th score, so the engine must survive
// bounds that barely (or never) clear the prune threshold.
func TestQuickPrunedMatchesOracle(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	f := func(seed uint16, shardRaw, kRaw, sizeRaw, tieRaw uint8, fltRaw uint16) bool {
		c, q := f32World(t, uint64(seed)+811, shardRaw, kRaw, sizeRaw, tieRaw)
		var flt *Filter
		if fltRaw%3 != 0 { // mix unfiltered and filtered descents
			flt = randomFilter(c, fltRaw)
		}
		eligible := eligibleSet(c, flt)
		scores := make(map[int]float64)
		for item, ok := range eligible {
			if ok {
				scores[item] = c.Index.ScoreItem(item, q)
			}
		}
		k := 1 + int(kRaw)%12
		offset := int(fltRaw>>9) % 5
		want := rankEligible(scores, k, offset)
		pl := Plan{K: k, Offset: offset, Filter: flt, Pruned: true, MaxWorkers: int(shardRaw) % 5}
		return executeAll(t, pool, c, q, pl, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: when k reaches or exceeds the eligible catalog the pruned
// engine must take the dense fallback and still return the oracle page.
func TestQuickPrunedFallbackMatchesOracle(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	f := func(seed uint16, shardRaw, kRaw, sizeRaw, tieRaw uint8) bool {
		c, q := f32World(t, uint64(seed)+977, shardRaw, kRaw, sizeRaw, tieRaw)
		scores := make(map[int]float64)
		for item := 0; item < c.NumItems(); item++ {
			scores[item] = c.Index.ScoreItem(item, q)
		}
		for _, k := range []int{c.NumItems(), c.NumItems() + 3} {
			want := rankEligible(scores, k, 0)
			pl := Plan{K: k, Pruned: true}
			if !executeAll(t, pool, c, q, pl, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// prunedSkewedWorld builds a world where one level-1 subtree dominates by
// a wide bias margin, so the branch-and-bound descent provably discards
// the sibling subtrees once the candidate heap fills from the favored one.
func prunedSkewedWorld(t *testing.T) (*model.Composed, []float64) {
	t.Helper()
	rng := vecmath.NewRNG(4242)
	tree, err := taxonomy.Generate(taxonomy.GenConfig{
		CategoryLevels: []int{8, 64},
		Items:          4000,
		Skew:           0.3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.New(tree, 3, model.Params{
		K: 6, TaxonomyLevels: 3, Alpha: 1, InitStd: 0.05, UseBias: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Compose folds every level's offsets regardless of the trained band,
	// so a hand-set level-1 bias skews the whole subtree beneath it.
	fav := tree.Level(1)[0]
	for _, n := range tree.Level(1) {
		if n == fav {
			m.Bias.Row(int(n))[0] = 5
		} else {
			m.Bias.Row(int(n))[0] = -5
		}
	}
	c := m.Compose()
	q := make([]float64, 6)
	for i := range q {
		q[i] = rng.NormFloat64() * 0.1
	}
	return c, q
}

// On the skewed world the pruned engine must both match the dense page
// byte-for-byte and actually prune: subtree and item counters advance for
// every precision tier.
func TestPrunedSkewedWorldPrunesAndMatches(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	c, q := prunedSkewedWorld(t)
	for _, prec := range []model.Precision{model.PrecisionF64, model.PrecisionF32, model.PrecisionInt8} {
		for _, workers := range []int{0, 4} {
			dense := Plan{K: 10, Precision: prec, MaxWorkers: workers}
			pruned := dense
			pruned.Pruned = true
			want, err := pool.Execute(context.Background(), c, q, dense)
			if err != nil {
				t.Fatal(err)
			}
			before := PruneCounters()
			got, err := pool.Execute(context.Background(), c, q, pruned)
			if err != nil {
				t.Fatal(err)
			}
			after := PruneCounters()
			if !samePage(want.Items, got.Items) {
				t.Fatalf("pruned page diverged (prec=%v workers=%d):\nwant %v\ngot  %v",
					prec, workers, want.Items, got.Items)
			}
			if after.SubtreesPruned <= before.SubtreesPruned {
				t.Fatalf("no subtrees pruned on skewed world (prec=%v workers=%d)", prec, workers)
			}
			if after.ItemsPruned <= before.ItemsPruned {
				t.Fatalf("no items pruned on skewed world (prec=%v workers=%d)", prec, workers)
			}
			if after.BoundEvals <= before.BoundEvals {
				t.Fatalf("no bounds evaluated (prec=%v workers=%d)", prec, workers)
			}
		}
	}
}

// The dense fallback (k covers the catalog) must bump the fallback
// counter and leave the page identical to the dense sweep.
func TestPrunedFallbackCounter(t *testing.T) {
	c, q := f32World(t, 5150, 7, 3, 2, 0)
	k := c.NumItems() + 1
	want := Naive(c, q, k)
	before := PruneCounters()
	st := vecmath.NewTopKStream(k)
	var p *Pool
	p.execInto(context.Background(), c, q, Plan{K: k, Pruned: true}, st)
	if after := PruneCounters(); after.Fallbacks <= before.Fallbacks {
		t.Fatal("fallback counter did not advance")
	}
	if got := st.Ranked(); !samePage(want, got) {
		t.Fatalf("fallback page diverged:\nwant %v\ngot  %v", want, got)
	}
}

// Pruned is a naive-only knob: every other strategy must fail validation,
// and the multi-query batch path must refuse pruned plans.
func TestPrunedPlanValidation(t *testing.T) {
	c, q := f32World(t, 6006, 1, 2, 1, 0)
	cc := UniformCascade(c.Tree.Depth(), 0.5)
	for _, st := range []Strategy{StrategyCascade, StrategyDiversified} {
		pl := Plan{K: 3, Strategy: st, Pruned: true, Cascade: &cc,
			Diversify: &Diversify{MaxPerCategory: 1, CatDepth: 1}}
		if _, err := (*Pool)(nil).Execute(context.Background(), c, q, pl); err == nil {
			t.Fatalf("strategy %v accepted a pruned plan", st)
		}
	}
	pool := NewPool(2)
	defer pool.Close()
	if _, err := pool.ExecuteBatch(context.Background(), c, [][]float64{q}, []Plan{{K: 3, Pruned: true}}); err == nil {
		t.Fatal("ExecuteBatch accepted a pruned plan")
	}
}
