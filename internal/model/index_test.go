package model

import (
	"math"
	"testing"

	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

func indexWorld(t *testing.T, useBias bool) (*TF, *Composed) {
	t.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{3, 9, 27},
		Items:          240,
		Skew:           0.4,
	}, vecmath.NewRNG(17))
	p := Params{K: 6, TaxonomyLevels: 4, MarkovOrder: 1, Alpha: 1, InitStd: 0.3, UseBias: useBias}
	m, err := New(tree, 20, p, vecmath.NewRNG(18))
	if err != nil {
		t.Fatal(err)
	}
	return m, m.Compose()
}

func indexQuery(k int, seed uint64) []float64 {
	q := make([]float64, k)
	rng := vecmath.NewRNG(seed)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	return q
}

// effScore recomputes a node score straight from the composed matrices —
// the pre-index reference the slabs must reproduce exactly.
func effScore(c *Composed, q []float64, node int) float64 {
	s := vecmath.Dot(q, c.EffNode.Row(node))
	if c.P.UseBias {
		s += c.EffBias.Row(node)[0]
	}
	return s
}

func TestIndexMatchesEffectiveFactors(t *testing.T) {
	for _, useBias := range []bool{false, true} {
		_, c := indexWorld(t, useBias)
		q := indexQuery(c.K(), 3)
		ix := c.Index
		if ix.K() != c.K() || ix.NumItems() != c.NumItems() {
			t.Fatal("index shape mismatch")
		}
		for node := 0; node < c.Tree.NumNodes(); node++ {
			want := effScore(c, q, node)
			if got := ix.ScoreNode(node, q); math.Abs(got-want) > 1e-12 {
				t.Fatalf("useBias=%v node %d: ScoreNode %v want %v", useBias, node, got, want)
			}
		}
		for item := 0; item < c.NumItems(); item++ {
			want := effScore(c, q, c.Tree.ItemNode(item))
			if got := ix.ScoreItem(item, q); math.Abs(got-want) > 1e-12 {
				t.Fatalf("useBias=%v item %d: ScoreItem %v want %v", useBias, item, got, want)
			}
		}
	}
}

func TestIndexItemScoresIntoMatchesPerItem(t *testing.T) {
	for _, useBias := range []bool{false, true} {
		_, c := indexWorld(t, useBias)
		q := indexQuery(c.K(), 5)
		dst := make([]float64, c.NumItems())
		c.ItemScoresInto(q, dst)
		for item, got := range dst {
			want := effScore(c, q, c.Tree.ItemNode(item))
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("useBias=%v item %d: sweep %v want %v", useBias, item, got, want)
			}
		}
		// range sweep over an interior window agrees with the full sweep
		lo, hi := 7, c.NumItems()-7
		window := make([]float64, hi-lo)
		c.Index.ItemScoresRangeInto(q, lo, hi, window)
		for i, got := range window {
			if got != dst[lo+i] {
				t.Fatalf("range sweep item %d differs", lo+i)
			}
		}
	}
}

func TestIndexBiasIgnoredWithoutUseBias(t *testing.T) {
	m, _ := indexWorld(t, false)
	// poison the raw bias offsets: a bias-free model must not see them
	m.Bias.FillGaussian(vecmath.NewRNG(99), 1.0)
	c := m.Compose()
	q := indexQuery(c.K(), 7)
	for item := 0; item < c.NumItems(); item++ {
		want := vecmath.Dot(q, c.EffNode.Row(c.Tree.ItemNode(item)))
		if got := c.Index.ScoreItem(item, q); math.Abs(got-want) > 1e-12 {
			t.Fatalf("item %d: bias leaked into bias-free scoring", item)
		}
	}
}

func TestIndexItemCategory(t *testing.T) {
	_, c := indexWorld(t, false)
	tree := c.Tree
	for d := 0; d <= tree.Depth(); d++ {
		for item := 0; item < c.NumItems(); item++ {
			want := tree.AncestorAtDepth(tree.ItemNode(item), d)
			if got := c.Index.ItemCategory(item, d); got != want {
				t.Fatalf("depth %d item %d: ItemCategory %d want %d", d, item, got, want)
			}
		}
	}
}

func TestIndexLevelPos(t *testing.T) {
	_, c := indexWorld(t, false)
	tree := c.Tree
	for d := 0; d <= tree.Depth(); d++ {
		for i, node := range tree.Level(d) {
			if got := c.Index.LevelPos(int(node)); got != i {
				t.Fatalf("depth %d node %d: LevelPos %d want %d", d, node, got, i)
			}
		}
	}
}

func TestIndexFactorsDoNotAliasModel(t *testing.T) {
	m, c := indexWorld(t, false)
	before := append([]float64(nil), c.Index.ItemFactor(0)...)
	m.Node.FillGaussian(vecmath.NewRNG(123), 1.0)
	for i, v := range c.Index.ItemFactor(0) {
		if v != before[i] {
			t.Fatal("index factors alias mutable model storage")
		}
	}
}
