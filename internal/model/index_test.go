package model

import (
	"math"
	"testing"

	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

func indexWorld(t *testing.T, useBias bool) (*TF, *Composed) {
	t.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{3, 9, 27},
		Items:          240,
		Skew:           0.4,
	}, vecmath.NewRNG(17))
	p := Params{K: 6, TaxonomyLevels: 4, MarkovOrder: 1, Alpha: 1, InitStd: 0.3, UseBias: useBias}
	m, err := New(tree, 20, p, vecmath.NewRNG(18))
	if err != nil {
		t.Fatal(err)
	}
	return m, m.Compose()
}

func indexQuery(k int, seed uint64) []float64 {
	q := make([]float64, k)
	rng := vecmath.NewRNG(seed)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	return q
}

// effScore recomputes a node score straight from the composed matrices —
// the pre-index reference the slabs must reproduce exactly.
func effScore(c *Composed, q []float64, node int) float64 {
	s := vecmath.Dot(q, c.EffNode.Row(node))
	if c.P.UseBias {
		s += c.EffBias.Row(node)[0]
	}
	return s
}

func TestIndexMatchesEffectiveFactors(t *testing.T) {
	for _, useBias := range []bool{false, true} {
		_, c := indexWorld(t, useBias)
		q := indexQuery(c.K(), 3)
		ix := c.Index
		if ix.K() != c.K() || ix.NumItems() != c.NumItems() {
			t.Fatal("index shape mismatch")
		}
		for node := 0; node < c.Tree.NumNodes(); node++ {
			want := effScore(c, q, node)
			if got := ix.ScoreNode(node, q); math.Abs(got-want) > 1e-12 {
				t.Fatalf("useBias=%v node %d: ScoreNode %v want %v", useBias, node, got, want)
			}
		}
		for item := 0; item < c.NumItems(); item++ {
			want := effScore(c, q, c.Tree.ItemNode(item))
			if got := ix.ScoreItem(item, q); math.Abs(got-want) > 1e-12 {
				t.Fatalf("useBias=%v item %d: ScoreItem %v want %v", useBias, item, got, want)
			}
		}
	}
}

func TestIndexItemScoresIntoMatchesPerItem(t *testing.T) {
	for _, useBias := range []bool{false, true} {
		_, c := indexWorld(t, useBias)
		q := indexQuery(c.K(), 5)
		dst := make([]float64, c.NumItems())
		c.ItemScoresInto(q, dst)
		for item, got := range dst {
			want := effScore(c, q, c.Tree.ItemNode(item))
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("useBias=%v item %d: sweep %v want %v", useBias, item, got, want)
			}
		}
		// range sweep over an interior window agrees with the full sweep
		lo, hi := 7, c.NumItems()-7
		window := make([]float64, hi-lo)
		c.Index.ItemScoresRangeInto(q, lo, hi, window)
		for i, got := range window {
			if got != dst[lo+i] {
				t.Fatalf("range sweep item %d differs", lo+i)
			}
		}
	}
}

func TestIndexBiasIgnoredWithoutUseBias(t *testing.T) {
	m, _ := indexWorld(t, false)
	// poison the raw bias offsets: a bias-free model must not see them
	m.Bias.FillGaussian(vecmath.NewRNG(99), 1.0)
	c := m.Compose()
	q := indexQuery(c.K(), 7)
	for item := 0; item < c.NumItems(); item++ {
		want := vecmath.Dot(q, c.EffNode.Row(c.Tree.ItemNode(item)))
		if got := c.Index.ScoreItem(item, q); math.Abs(got-want) > 1e-12 {
			t.Fatalf("item %d: bias leaked into bias-free scoring", item)
		}
	}
}

func TestIndexItemCategory(t *testing.T) {
	_, c := indexWorld(t, false)
	tree := c.Tree
	for d := 0; d <= tree.Depth(); d++ {
		for item := 0; item < c.NumItems(); item++ {
			want := tree.AncestorAtDepth(tree.ItemNode(item), d)
			if got := c.Index.ItemCategory(item, d); got != want {
				t.Fatalf("depth %d item %d: ItemCategory %d want %d", d, item, got, want)
			}
		}
	}
}

func TestIndexLevelPos(t *testing.T) {
	_, c := indexWorld(t, false)
	tree := c.Tree
	for d := 0; d <= tree.Depth(); d++ {
		for i, node := range tree.Level(d) {
			if got := c.Index.LevelPos(int(node)); got != i {
				t.Fatalf("depth %d node %d: LevelPos %d want %d", d, node, got, i)
			}
		}
	}
}

func TestIndexFactorsDoNotAliasModel(t *testing.T) {
	m, c := indexWorld(t, false)
	before := append([]float64(nil), c.Index.ItemFactor(0)...)
	m.Node.FillGaussian(vecmath.NewRNG(123), 1.0)
	for i, v := range c.Index.ItemFactor(0) {
		if v != before[i] {
			t.Fatal("index factors alias mutable model storage")
		}
	}
}

// subtreeItems walks the tree and returns the item ids of node's leaf
// descendants — the reference MarkSubtree and ItemRange must agree with.
func subtreeItems(tree *taxonomy.Tree, node int) map[int]bool {
	out := make(map[int]bool)
	var walk func(n int)
	walk = func(n int) {
		if tree.IsLeaf(n) {
			out[tree.NodeItem(n)] = true
			return
		}
		for _, child := range tree.Children(n) {
			walk(int(child))
		}
	}
	walk(node)
	return out
}

func TestIndexItemRangeAndMarkSubtree(t *testing.T) {
	_, c := indexWorld(t, false)
	ix, tree := c.Index, c.Tree
	for node := 0; node < tree.NumNodes(); node++ {
		want := subtreeItems(tree, node)
		lo, hi, contiguous := ix.ItemRange(node)
		if len(want) == 0 {
			t.Fatalf("node %d has no leaf descendants", node)
		}
		for item := range want {
			if item < lo || item >= hi {
				t.Fatalf("node %d: item %d outside ItemRange [%d,%d)", node, item, lo, hi)
			}
		}
		if contiguous != (len(want) == hi-lo) {
			t.Fatalf("node %d: contiguous=%v but %d items span [%d,%d)", node, contiguous, len(want), lo, hi)
		}
		mask := vecmath.NewBitset(ix.NumItems())
		ix.MarkSubtree(mask, node, true)
		if mask.Count() != len(want) {
			t.Fatalf("node %d: MarkSubtree set %d bits, want %d", node, mask.Count(), len(want))
		}
		for item := 0; item < ix.NumItems(); item++ {
			if mask.Get(item) != want[item] {
				t.Fatalf("node %d: item %d marked %v, want %v", node, item, mask.Get(item), want[item])
			}
		}
		// clearing the subtree from a full mask leaves exactly the complement
		mask.Fill()
		ix.MarkSubtree(mask, node, false)
		if mask.Count() != ix.NumItems()-len(want) {
			t.Fatalf("node %d: clear left %d bits", node, mask.Count())
		}
	}
	// root covers the whole catalog
	if lo, hi, contiguous := ix.ItemRange(tree.Root()); lo != 0 || hi != ix.NumItems() || !contiguous {
		t.Fatalf("root range [%d,%d) contiguous=%v", lo, hi, contiguous)
	}
}

// A hand-built interleaved tree (leaves of different parents alternating
// in node-id order) must report non-contiguous subtrees and still mark
// exactly the right items through the ancestor-column fallback.
func TestIndexMarkSubtreeNonContiguous(t *testing.T) {
	// root 0; interiors 1, 2; leaves 3..6 alternating parents 1,2,1,2
	parents := []int{taxonomy.NoParent, 0, 0, 1, 2, 1, 2}
	tree, err := taxonomy.NewFromParents(parents)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(tree, 2, Params{K: 3, TaxonomyLevels: 2, Alpha: 1, InitStd: 0.1}, vecmath.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	ix := m.Compose().Index
	for _, node := range []int{1, 2} {
		if _, _, contiguous := ix.ItemRange(node); contiguous {
			t.Fatalf("interleaved subtree %d reported contiguous", node)
		}
		mask := vecmath.NewBitset(ix.NumItems())
		ix.MarkSubtree(mask, node, true)
		want := subtreeItems(tree, node)
		for item := 0; item < ix.NumItems(); item++ {
			if mask.Get(item) != want[item] {
				t.Fatalf("node %d: item %d marked %v, want %v", node, item, mask.Get(item), want[item])
			}
		}
	}
	// a leaf node is its own (contiguous) single-item subtree
	leafNode := tree.ItemNode(2)
	lo, hi, contiguous := ix.ItemRange(leafNode)
	if lo != 2 || hi != 3 || !contiguous {
		t.Fatalf("leaf subtree range [%d,%d) contiguous=%v", lo, hi, contiguous)
	}
}
