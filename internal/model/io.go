package model

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// errGobDecode marks failures of the gob layer itself, as opposed to
// semantic validation of a successfully decoded payload. Load uses the
// distinction to phrase its errors: only a gob failure means "this isn't
// (or no longer is) a model file"; a validation failure on a decoded
// payload is reported as what it is.
var errGobDecode = errors.New("gob decode failed")

// Model files start with a fixed magic and a format version so Load can
// tell a tfrec model from arbitrary bytes and a current file from one
// written by a future build, instead of surfacing a bare gob decode
// error. Files written before the header existed (raw gob) remain
// readable: Load falls back to a headerless decode when the magic is
// absent.
var fileMagic = [8]byte{'T', 'F', 'R', 'E', 'C', 'M', 'D', 'L'}

// fileVersion is the current on-disk format. Bump it when the persisted
// struct changes incompatibly; Load rejects newer versions with a clear
// error instead of a decode failure deep inside gob. Version history:
//
//	1 — magic + version header over the gob payload
//	2 — payload carries the snapshot's serving Precision, so a model
//	    validated for the two-stage f32 pipeline records that choice and
//	    round-trips it; v1 and legacy headerless files decode with
//	    PrecisionDefault
//	3 — Precision may record the quantized int8 tier, and every factor
//	    and bias value in the payload must be finite: a NaN/Inf row would
//	    quantize to a NaN/Inf scale/offset pair and poison scoring, so
//	    hostile values are rejected at load time rather than surfacing at
//	    score time (the finite check applies to older payloads too)
//	4 — flat memory-mappable layout (see format4.go): little-endian
//	    64-byte-aligned sections behind a checksummed offset table, with
//	    every serving structure (composed factors, f32/int8 tiers, DFS
//	    layout, prune envelopes) precomputed at save time so LoadFile can
//	    serve zero-copy from a mapping. Save writes v4; SaveGob still
//	    writes v3 for tooling that needs the gob form, and v1–v3 files
//	    keep loading through the gob path below
const fileVersion uint32 = 4

// gobFileVersion is the format SaveGob writes: the last gob-based layout.
const gobFileVersion uint32 = 3

// headerLen is the magic plus a big-endian uint32 version.
const headerLen = len(fileMagic) + 4

// persisted is the gob wire form of a TF model: hyper-parameters, the
// taxonomy's parent array, and the three factor matrices flattened.
type persisted struct {
	Params   Params
	Parents  []int
	NumUsers int
	User     []float64
	Node     []float64
	Next     []float64
	Bias     []float64
	// Precision is the serving precision recorded with the model (format
	// version 2); gob leaves it PrecisionDefault for older payloads.
	Precision Precision
}

// Save writes the model (including its taxonomy) to w in the current v4
// flat format: a Compose() pass plus both reduced-precision tiers run at
// save time, so everything a serving snapshot needs is laid out as
// checksummed aligned sections and load is O(1) in heap work. Use SaveGob
// for the legacy gob form.
func (m *TF) Save(w io.Writer) error {
	return saveV4(w, sectionsForSave(m, m.Compose()))
}

// SaveGob writes the model in the v3 gob format — the pre-mmap layout the
// v1–v3 fallback of Load still reads. The converter, benchmarks and
// format-migration tests use it; new files should use Save.
func (m *TF) SaveGob(w io.Writer) error {
	var header [headerLen]byte
	copy(header[:], fileMagic[:])
	binary.BigEndian.PutUint32(header[len(fileMagic):], gobFileVersion)
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("model: write header: %w", err)
	}
	p := persisted{
		Params:    m.P,
		Parents:   m.Tree.ParentArray(),
		NumUsers:  m.NumUsers(),
		User:      m.User.CompactData(),
		Node:      m.Node.CompactData(),
		Next:      m.Next.CompactData(),
		Bias:      m.Bias.CompactData(),
		Precision: m.Precision,
	}
	return gob.NewEncoder(w).Encode(&p)
}

// Load reads a model written by Save, rebuilding and revalidating the
// taxonomy. It accepts both current headered files and legacy headerless
// gob files; anything else fails with a "not a tfrec model file" error
// rather than a bare decode error, and files from a newer format version
// are rejected explicitly.
func Load(r io.Reader) (*TF, error) {
	header := make([]byte, headerLen)
	n, err := io.ReadFull(r, header)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, fmt.Errorf("model: read header: %w", err)
	}
	if n == headerLen && bytes.Equal(header[:len(fileMagic)], fileMagic[:]) {
		version := binary.BigEndian.Uint32(header[len(fileMagic):])
		if version > fileVersion {
			return nil, fmt.Errorf("model: file format version %d is newer than this build supports (max %d)", version, fileVersion)
		}
		if version == 4 {
			return loadV4Heap(r, header)
		}
		m, err := decodePersisted(r)
		switch {
		case errors.Is(err, errGobDecode):
			return nil, fmt.Errorf("model: corrupt or truncated model file (format version %d): %w", version, err)
		case err != nil:
			return nil, fmt.Errorf("model: %w", err)
		}
		return m, nil
	}
	// No magic: either a legacy headerless gob file or not a model file at
	// all. Re-feed the consumed prefix and let gob decide.
	m, err := decodePersisted(io.MultiReader(bytes.NewReader(header[:n]), r))
	switch {
	case errors.Is(err, errGobDecode):
		return nil, fmt.Errorf("model: not a tfrec model file (missing %q header and not a legacy gob model): %w", fileMagic, err)
	case err != nil:
		// the gob layer succeeded, so this is a real (legacy) model file
		// with an invalid payload — report the validation failure itself
		return nil, fmt.Errorf("model: %w", err)
	}
	return m, nil
}

// decodePersisted decodes the gob payload and rebuilds the model. Gob
// failures are wrapped in errGobDecode; every later error means the
// payload decoded but did not validate.
func decodePersisted(r io.Reader) (*TF, error) {
	var p persisted
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("%w: %v", errGobDecode, err)
	}
	tree, err := taxonomy.NewFromParents(p.Parents)
	if err != nil {
		return nil, fmt.Errorf("bad taxonomy in file: %w", err)
	}
	if p.NumUsers < 0 {
		return nil, fmt.Errorf("negative user count %d in file", p.NumUsers)
	}
	// MarkovOrder sizes the decay-weight table, which has no payload
	// backing it — bound it so a hostile file cannot demand a giant
	// allocation through a single varint. 2^20 previous transactions is
	// orders of magnitude past any real purchase history.
	const maxFileMarkovOrder = 1 << 20
	if p.Params.MarkovOrder > maxFileMarkovOrder {
		return nil, fmt.Errorf("markov order %d in file exceeds the sanity bound %d", p.Params.MarkovOrder, maxFileMarkovOrder)
	}
	// Check the payload's shape BEFORE building the model: New allocates
	// numUsers×K and numNodes×K matrices up front, so a hostile file
	// declaring a huge K or user count with a tiny payload must die on
	// this length comparison, not on a multi-gigabyte allocation. int64
	// math keeps an adversarial K from overflowing the expected sizes.
	k, numNodes := int64(p.Params.K), int64(len(p.Parents))
	for name, got := range map[string]struct{ have, want int64 }{
		"user": {int64(len(p.User)), int64(p.NumUsers) * k},
		"node": {int64(len(p.Node)), numNodes * k},
		"next": {int64(len(p.Next)), numNodes * k},
		"bias": {int64(len(p.Bias)), numNodes},
	} {
		if name == "bias" && got.have == 0 {
			continue // pre-bias files: zero-filled below
		}
		if got.have != got.want {
			return nil, fmt.Errorf("%s matrix size %d does not match structure %d", name, got.have, got.want)
		}
	}
	// Every scoring tier assumes finite factors: the int8 quantizer in
	// particular derives per-row scale/offset from the row's value range,
	// which a single NaN/Inf entry turns non-finite. Reject hostile
	// payloads here, where the file is the suspect, instead of letting
	// the poison surface in a scoring loop.
	for name, vals := range map[string][]float64{
		"user": p.User, "node": p.Node, "next": p.Next, "bias": p.Bias,
	} {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("non-finite value in %s matrix", name)
			}
		}
	}
	m, err := New(tree, p.NumUsers, p.Params, vecmath.NewRNG(0))
	if err != nil {
		return nil, err
	}
	if p.Precision > PrecisionInt8 {
		return nil, fmt.Errorf("unknown precision %d in file", p.Precision)
	}
	m.Precision = p.Precision
	if len(p.Bias) == 0 {
		// files written before the bias extension: biases stay zero
		p.Bias = make([]float64, m.Bias.Rows()*m.Bias.Cols())
	}
	for name, pair := range map[string]struct {
		dst *vecmath.Matrix
		src []float64
	}{
		"user": {m.User, p.User},
		"node": {m.Node, p.Node},
		"next": {m.Next, p.Next},
		"bias": {m.Bias, p.Bias},
	} {
		if len(pair.src) != pair.dst.Rows()*pair.dst.Cols() {
			return nil, fmt.Errorf("%s matrix size %d does not match structure %d", name, len(pair.src), pair.dst.Rows()*pair.dst.Cols())
		}
		pair.dst.SetCompactData(pair.src)
	}
	return m, nil
}
