package model

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// persisted is the gob wire form of a TF model: hyper-parameters, the
// taxonomy's parent array, and the three factor matrices flattened.
type persisted struct {
	Params   Params
	Parents  []int
	NumUsers int
	User     []float64
	Node     []float64
	Next     []float64
	Bias     []float64
}

// Save writes the model (including its taxonomy) to w in gob format.
func (m *TF) Save(w io.Writer) error {
	p := persisted{
		Params:   m.P,
		Parents:  m.Tree.ParentArray(),
		NumUsers: m.NumUsers(),
		User:     m.User.CompactData(),
		Node:     m.Node.CompactData(),
		Next:     m.Next.CompactData(),
		Bias:     m.Bias.CompactData(),
	}
	return gob.NewEncoder(w).Encode(&p)
}

// Load reads a model written by Save, rebuilding and revalidating the
// taxonomy.
func Load(r io.Reader) (*TF, error) {
	var p persisted
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("model: decode: %w", err)
	}
	tree, err := taxonomy.NewFromParents(p.Parents)
	if err != nil {
		return nil, fmt.Errorf("model: bad taxonomy in file: %w", err)
	}
	m, err := New(tree, p.NumUsers, p.Params, vecmath.NewRNG(0))
	if err != nil {
		return nil, err
	}
	if len(p.Bias) == 0 {
		// files written before the bias extension: biases stay zero
		p.Bias = make([]float64, m.Bias.Rows()*m.Bias.Cols())
	}
	for name, pair := range map[string]struct {
		dst *vecmath.Matrix
		src []float64
	}{
		"user": {m.User, p.User},
		"node": {m.Node, p.Node},
		"next": {m.Next, p.Next},
		"bias": {m.Bias, p.Bias},
	} {
		if len(pair.src) != pair.dst.Rows()*pair.dst.Cols() {
			return nil, fmt.Errorf("model: %s matrix size %d does not match structure %d", name, len(pair.src), pair.dst.Rows()*pair.dst.Cols())
		}
		pair.dst.SetCompactData(pair.src)
	}
	return m, nil
}
