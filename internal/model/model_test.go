package model

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

func testTree(t *testing.T) *taxonomy.Tree {
	t.Helper()
	return taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{3, 6, 12},
		Items:          60,
		Skew:           0.3,
	}, vecmath.NewRNG(5))
}

func newTF(t *testing.T, tree *taxonomy.Tree, p Params) *TF {
	t.Helper()
	m, err := New(tree, 40, p, vecmath.NewRNG(7))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{K: 0, TaxonomyLevels: 1},
		{K: 5, TaxonomyLevels: 0},
		{K: 5, TaxonomyLevels: 1, MarkovOrder: -1},
		{K: 5, TaxonomyLevels: 1, InitStd: -0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, p)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
}

func TestDecayWeights(t *testing.T) {
	p := Params{K: 4, TaxonomyLevels: 1, MarkovOrder: 3, Alpha: 2}
	w := p.DecayWeights()
	if len(w) != 3 {
		t.Fatalf("len = %d, want 3", len(w))
	}
	for n := 1; n <= 3; n++ {
		want := 2 * math.Exp(-float64(n)/3)
		if math.Abs(w[n-1]-want) > 1e-12 {
			t.Fatalf("w[%d] = %v, want %v", n-1, w[n-1], want)
		}
	}
	// strictly decreasing
	if !(w[0] > w[1] && w[1] > w[2]) {
		t.Fatalf("weights not decaying: %v", w)
	}
	if (Params{K: 1, TaxonomyLevels: 1}).DecayWeights() != nil {
		t.Fatal("order 0 should have nil weights")
	}
}

func TestItemFactorIsPathSum(t *testing.T) {
	tree := testTree(t)
	m := newTF(t, tree, Params{K: 8, TaxonomyLevels: 4, InitStd: 0.1, Alpha: 1})
	dst := make([]float64, 8)
	for item := 0; item < tree.NumItems(); item += 7 {
		m.ItemFactorInto(item, dst)
		want := make([]float64, 8)
		for _, node := range m.ItemPath(item) {
			vecmath.Add(want, m.Node.Row(int(node)))
		}
		for k := range dst {
			if dst[k] != want[k] {
				t.Fatalf("item %d factor mismatch", item)
			}
		}
	}
}

func TestUntrainedLevelsAreZero(t *testing.T) {
	tree := testTree(t) // depth 4: root + 3 cat levels + items
	// U=2: only item level and lowest category level trained
	m := newTF(t, tree, Params{K: 6, TaxonomyLevels: 2, InitStd: 0.1, Alpha: 1})
	for d := 0; d <= tree.Depth()-2; d++ {
		for _, node := range tree.Level(d) {
			if vecmath.Norm2(m.Node.Row(int(node))) != 0 {
				t.Fatalf("node %d at depth %d should have zero offset under U=2", node, d)
			}
			if vecmath.Norm2(m.Next.Row(int(node))) != 0 {
				t.Fatalf("next offset of node %d should be zero", node)
			}
		}
	}
	// trained levels are non-zero
	nz := 0
	for _, node := range tree.Level(tree.Depth()) {
		if vecmath.Norm2(m.Node.Row(int(node))) > 0 {
			nz++
		}
	}
	if nz == 0 {
		t.Fatal("leaf offsets should be initialized")
	}
}

func TestU1MatchesFlatMF(t *testing.T) {
	tree := testTree(t)
	m := newTF(t, tree, Params{K: 6, TaxonomyLevels: 1, InitStd: 0.1, Alpha: 1})
	dst := make([]float64, 6)
	for item := 0; item < tree.NumItems(); item++ {
		m.ItemFactorInto(item, dst)
		leaf := m.Node.Row(tree.ItemNode(item))
		for k := range dst {
			if dst[k] != leaf[k] {
				t.Fatalf("U=1 effective factor must equal the leaf offset alone")
			}
		}
	}
}

func TestScoreMatchesDotOfComposedFactor(t *testing.T) {
	tree := testTree(t)
	m := newTF(t, tree, Params{K: 5, TaxonomyLevels: 4, InitStd: 0.2, Alpha: 1})
	q := make([]float64, 5)
	for i := range q {
		q[i] = float64(i) - 2
	}
	f := make([]float64, 5)
	for item := 0; item < tree.NumItems(); item += 5 {
		m.ItemFactorInto(item, f)
		want := vecmath.Dot(q, f)
		if got := m.Score(q, item); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Score(%d) = %v, want %v", item, got, want)
		}
	}
}

func TestBuildQueryLongTermOnly(t *testing.T) {
	tree := testTree(t)
	m := newTF(t, tree, Params{K: 4, TaxonomyLevels: 2, MarkovOrder: 0, InitStd: 0.1, Alpha: 1})
	q := make([]float64, 4)
	m.BuildQueryInto(3, []dataset.Basket{{1, 2}}, q)
	u := m.User.Row(3)
	for k := range q {
		if q[k] != u[k] {
			t.Fatal("with MarkovOrder=0 the query must equal the user factor")
		}
	}
}

func TestBuildQueryAddsShortTerm(t *testing.T) {
	tree := testTree(t)
	m := newTF(t, tree, Params{K: 4, TaxonomyLevels: 2, MarkovOrder: 2, Alpha: 1, InitStd: 0.1})
	w := m.P.DecayWeights()
	prev := []dataset.Basket{{0, 1}, {2}}
	q := make([]float64, 4)
	m.BuildQueryInto(0, prev, q)

	want := make([]float64, 4)
	vecmath.Copy(want, m.User.Row(0))
	buf := make([]float64, 4)
	m.NextFactorInto(0, buf)
	vecmath.AddScaled(want, w[0]/2, buf)
	m.NextFactorInto(1, buf)
	vecmath.AddScaled(want, w[0]/2, buf)
	m.NextFactorInto(2, buf)
	vecmath.AddScaled(want, w[1], buf)

	for k := range q {
		if math.Abs(q[k]-want[k]) > 1e-12 {
			t.Fatalf("query[%d] = %v, want %v", k, q[k], want[k])
		}
	}
}

func TestBuildQueryIgnoresBasketsBeyondOrder(t *testing.T) {
	tree := testTree(t)
	m := newTF(t, tree, Params{K: 4, TaxonomyLevels: 1, MarkovOrder: 1, Alpha: 1, InitStd: 0.1})
	q1 := make([]float64, 4)
	q2 := make([]float64, 4)
	m.BuildQueryInto(0, []dataset.Basket{{1}}, q1)
	m.BuildQueryInto(0, []dataset.Basket{{1}, {5}, {9}}, q2)
	for k := range q1 {
		if q1[k] != q2[k] {
			t.Fatal("baskets beyond MarkovOrder must not affect the query")
		}
	}
}

func TestPrevBaskets(t *testing.T) {
	tree := testTree(t)
	m := newTF(t, tree, Params{K: 2, TaxonomyLevels: 1, MarkovOrder: 2, Alpha: 1})
	history := []dataset.Basket{{0}, {1}, {2}, {3}}
	prev := m.PrevBaskets(history, 3)
	if len(prev) != 2 || prev[0][0] != 2 || prev[1][0] != 1 {
		t.Fatalf("PrevBaskets = %v, want [[2] [1]]", prev)
	}
	if got := m.PrevBaskets(history, 0); got != nil {
		t.Fatalf("t=0 should have no context, got %v", got)
	}
	if got := m.PrevBaskets(history, 1); len(got) != 1 {
		t.Fatalf("t=1 should have one basket, got %v", got)
	}
}

func TestNodeFactorMatchesItemFactorAtLeaf(t *testing.T) {
	tree := testTree(t)
	m := newTF(t, tree, Params{K: 5, TaxonomyLevels: 4, InitStd: 0.1, Alpha: 1})
	a := make([]float64, 5)
	b := make([]float64, 5)
	item := 17
	m.ItemFactorInto(item, a)
	m.NodeFactorInto(tree.ItemNode(item), b)
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("NodeFactorInto at a leaf must equal ItemFactorInto")
		}
	}
}

func TestComposeMatchesDirectComposition(t *testing.T) {
	tree := testTree(t)
	m := newTF(t, tree, Params{K: 7, TaxonomyLevels: 4, MarkovOrder: 1, Alpha: 1, InitStd: 0.15})
	c := m.Compose()
	buf := make([]float64, 7)
	for node := 0; node < tree.NumNodes(); node++ {
		m.NodeFactorInto(node, buf)
		eff := c.EffNode.Row(node)
		for k := range buf {
			if math.Abs(buf[k]-eff[k]) > 1e-12 {
				t.Fatalf("node %d composed factor mismatch", node)
			}
		}
	}
	// next tree too
	for item := 0; item < tree.NumItems(); item += 11 {
		m.NextFactorInto(item, buf)
		eff := c.EffNext.Row(tree.ItemNode(item))
		for k := range buf {
			if math.Abs(buf[k]-eff[k]) > 1e-12 {
				t.Fatalf("item %d next factor mismatch", item)
			}
		}
	}
}

func TestComposedQueriesAndScoresMatchModel(t *testing.T) {
	tree := testTree(t)
	m := newTF(t, tree, Params{K: 6, TaxonomyLevels: 3, MarkovOrder: 2, Alpha: 0.7, InitStd: 0.1})
	c := m.Compose()
	prev := []dataset.Basket{{3, 4}, {10}}
	qm := make([]float64, 6)
	qc := make([]float64, 6)
	m.BuildQueryInto(5, prev, qm)
	c.BuildQueryInto(5, prev, qc)
	for k := range qm {
		if math.Abs(qm[k]-qc[k]) > 1e-12 {
			t.Fatal("composed query differs from model query")
		}
	}
	scores := make([]float64, tree.NumItems())
	c.ItemScoresInto(qc, scores)
	for item := 0; item < tree.NumItems(); item += 9 {
		if math.Abs(scores[item]-m.Score(qm, item)) > 1e-12 {
			t.Fatalf("item %d composed score mismatch", item)
		}
	}
}

func TestComposeIsSnapshot(t *testing.T) {
	tree := testTree(t)
	m := newTF(t, tree, Params{K: 3, TaxonomyLevels: 2, InitStd: 0.1, Alpha: 1})
	c := m.Compose()
	before := c.EffNode.Row(tree.ItemNode(0))[0]
	m.Node.Row(tree.ItemNode(0))[0] += 100
	if c.EffNode.Row(tree.ItemNode(0))[0] != before {
		t.Fatal("Compose must not alias model storage")
	}
}

func TestLevelScores(t *testing.T) {
	tree := testTree(t)
	m := newTF(t, tree, Params{K: 4, TaxonomyLevels: 4, InitStd: 0.1, Alpha: 1})
	c := m.Compose()
	q := []float64{1, 0, -1, 0.5}
	for d := 1; d <= tree.Depth(); d++ {
		scored := c.LevelScores(q, d)
		if len(scored) != len(tree.Level(d)) {
			t.Fatalf("depth %d: %d scores, want %d", d, len(scored), len(tree.Level(d)))
		}
		for _, s := range scored {
			if got := c.NodeScore(q, s.ID); got != s.Score {
				t.Fatal("LevelScores disagrees with NodeScore")
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tree := testTree(t)
	m := newTF(t, tree, Params{K: 5, TaxonomyLevels: 3, MarkovOrder: 1, Alpha: 0.9, InitStd: 0.1})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.P != m.P {
		t.Fatalf("params changed: %+v vs %+v", back.P, m.P)
	}
	if back.User.MaxAbsDiff(m.User) != 0 || back.Node.MaxAbsDiff(m.Node) != 0 || back.Next.MaxAbsDiff(m.Next) != 0 {
		t.Fatal("factor matrices changed in round trip")
	}
	if back.Tree.NumNodes() != tree.NumNodes() {
		t.Fatal("taxonomy changed in round trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	tree := testTree(t)
	if _, err := New(tree, 0, DefaultParams(), vecmath.NewRNG(1)); err == nil {
		t.Fatal("expected error for 0 users")
	}
	if _, err := New(tree, 10, Params{K: 0, TaxonomyLevels: 1}, vecmath.NewRNG(1)); err == nil {
		t.Fatal("expected error for bad params")
	}
}

func TestGrowUsers(t *testing.T) {
	tree := testTree(t)
	m := newTF(t, tree, Params{K: 4, TaxonomyLevels: 2, InitStd: 0.1, Alpha: 1})
	before := append([]float64(nil), m.User.Row(7)...)
	if err := m.GrowUsers(60, vecmath.NewRNG(9)); err != nil {
		t.Fatal(err)
	}
	if m.NumUsers() != 60 {
		t.Fatalf("NumUsers = %d, want 60", m.NumUsers())
	}
	for k, v := range before {
		if m.User.Row(7)[k] != v {
			t.Fatal("existing user factor changed during growth")
		}
	}
	if vecmath.Norm2(m.User.Row(55)) == 0 {
		t.Fatal("new user rows should be Gaussian-initialized")
	}
	// shrinking is rejected, same size is a no-op
	if err := m.GrowUsers(10, vecmath.NewRNG(9)); err == nil {
		t.Fatal("expected error for shrink")
	}
	if err := m.GrowUsers(60, vecmath.NewRNG(9)); err != nil {
		t.Fatalf("same-size grow should be a no-op: %v", err)
	}
}

func TestTrainedBandClamps(t *testing.T) {
	tree := testTree(t) // pathLen = 5
	m := newTF(t, tree, Params{K: 2, TaxonomyLevels: 99, InitStd: 0.1, Alpha: 1})
	if m.TrainedBand() != 5 {
		t.Fatalf("TrainedBand = %d, want clamp to 5", m.TrainedBand())
	}
}
