package model

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// fuzzSeedModel builds a tiny trained-shaped model and returns its
// current (v3) file bytes.
func fuzzSeedModel(tb testing.TB) []byte {
	return fuzzSeedModelAt(tb, PrecisionF32, func(*TF) {})
}

// fuzzSeedModelAt builds the seed model with an explicit recorded
// precision and a mutation hook applied before saving — the extra seeds
// (int8 precision byte, hostile non-finite payload values) ride it.
func fuzzSeedModelAt(tb testing.TB, prec Precision, mutate func(*TF)) []byte {
	tb.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{CategoryLevels: []int{2, 4}, Items: 12, Skew: 0}, vecmath.NewRNG(3))
	m, err := New(tree, 3, Params{K: 4, TaxonomyLevels: 3, MarkovOrder: 1, Alpha: 1, InitStd: 0.1, UseBias: true}, vecmath.NewRNG(4))
	if err != nil {
		tb.Fatal(err)
	}
	m.Precision = prec
	mutate(m)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoad drives the model file parser with mutated headers, versions
// and payloads. Load must never panic; whenever it accepts the input, the
// model must be internally consistent and round-trip through Save/Load.
//
// Run longer with: go test -run '^$' -fuzz '^FuzzLoad$' ./internal/model
func FuzzLoad(f *testing.F) {
	v3 := fuzzSeedModel(f)
	f.Add(v3) // current format
	// v3 with the int8 precision byte recorded — the newest accepted
	// precision value
	f.Add(fuzzSeedModelAt(f, PrecisionInt8, func(*TF) {}))
	// hostile payloads: a NaN factor and an Inf bias must be rejected at
	// load (they would quantize to non-finite scale/offset pairs), never
	// surface at score time
	f.Add(fuzzSeedModelAt(f, PrecisionInt8, func(m *TF) {
		m.Node.Row(1)[0] = math.NaN()
	}))
	f.Add(fuzzSeedModelAt(f, PrecisionF32, func(m *TF) {
		m.Bias.Row(0)[0] = math.Inf(1)
	}))
	// v1/v2 files: same gob payload under older version headers (the
	// Precision field gob-defaults on a v1 decode)
	v1 := append([]byte(nil), v3...)
	binary.BigEndian.PutUint32(v1[len(fileMagic):], 1)
	f.Add(v1)
	v2 := append([]byte(nil), v3...)
	binary.BigEndian.PutUint32(v2[len(fileMagic):], 2)
	f.Add(v2)
	// legacy headerless gob payload
	f.Add(append([]byte(nil), v3[headerLen:]...))
	// truncations: inside the header, just after it, and mid-payload
	f.Add(append([]byte(nil), v3[:headerLen-2]...))
	f.Add(append([]byte(nil), v3[:headerLen+3]...))
	f.Add(append([]byte(nil), v3[:len(v3)/2]...))
	// future version
	future := append([]byte(nil), v3...)
	binary.BigEndian.PutUint32(future[len(fileMagic):], 99)
	f.Add(future)
	// right magic, garbage payload; and plain garbage
	f.Add(append(append([]byte(nil), v3[:headerLen]...), []byte("not a gob stream")...))
	f.Add([]byte("TFRECMD?almost the magic"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(bytes.NewReader(data))
		if err != nil {
			if m != nil {
				t.Fatal("Load returned both a model and an error")
			}
			return
		}
		// accepted input: the decoded model must hold the invariants the
		// serving stack assumes
		if m.Tree == nil || m.Tree.NumItems() <= 0 {
			t.Fatal("accepted model has no taxonomy leaves")
		}
		if m.K() <= 0 || m.NumUsers() < 0 {
			t.Fatalf("accepted model has impossible shape: K=%d users=%d", m.K(), m.NumUsers())
		}
		if m.Precision > PrecisionInt8 {
			t.Fatalf("accepted model carries unknown precision %d", m.Precision)
		}
		if err := m.Tree.Validate(); err != nil {
			t.Fatalf("accepted model has inconsistent taxonomy: %v", err)
		}
		// round-trip: what Save writes, Load reads back identically shaped
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("re-save failed: %v", err)
		}
		m2, err := Load(&buf)
		if err != nil {
			t.Fatalf("re-load failed: %v", err)
		}
		if m2.K() != m.K() || m2.NumUsers() != m.NumUsers() ||
			m2.Tree.NumNodes() != m.Tree.NumNodes() || m2.Precision != m.Precision {
			t.Fatal("round-trip changed the model shape")
		}
	})
}
