package model

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"strings"
	"testing"

	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// fuzzSeedTF builds the tiny trained-shaped model every seed derives from.
func fuzzSeedTF(tb testing.TB, prec Precision, mutate func(*TF)) *TF {
	tb.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{CategoryLevels: []int{2, 4}, Items: 12, Skew: 0}, vecmath.NewRNG(3))
	m, err := New(tree, 3, Params{K: 4, TaxonomyLevels: 3, MarkovOrder: 1, Alpha: 1, InitStd: 0.1, UseBias: true}, vecmath.NewRNG(4))
	if err != nil {
		tb.Fatal(err)
	}
	m.Precision = prec
	mutate(m)
	return m
}

// fuzzSeedV4 returns the model's current (v4 flat) file bytes.
func fuzzSeedV4(tb testing.TB, prec Precision, mutate func(*TF)) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := fuzzSeedTF(tb, prec, mutate).Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzSeedGob returns the model's legacy (v3 gob) file bytes.
func fuzzSeedGob(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := fuzzSeedTF(tb, PrecisionF32, func(*TF) {}).SaveGob(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// patchV4Table copies a v4 file, applies patch to the idx-th section-table
// entry, and recomputes the table checksum so the corruption is reached by
// the deeper validation it targets rather than dying at the table CRC.
func patchV4Table(tb testing.TB, raw []byte, idx int, patch func(entry []byte)) []byte {
	tb.Helper()
	out := append([]byte(nil), raw...)
	count := binary.LittleEndian.Uint32(out[12:])
	if idx < 0 || uint32(idx) >= count {
		tb.Fatalf("entry index %d out of range (count %d)", idx, count)
	}
	table := out[headerV4Len : headerV4Len+uint64(count)*tableEntryV4Len]
	patch(table[idx*tableEntryV4Len:])
	binary.LittleEndian.PutUint32(out[24:], crc32.Checksum(table, castagnoli))
	return out
}

// v4SectionEntry locates the table entry for a section id.
func v4SectionEntry(tb testing.TB, raw []byte, id uint32) (idx int, off, length uint64) {
	tb.Helper()
	count := binary.LittleEndian.Uint32(raw[12:])
	for i := uint32(0); i < count; i++ {
		e := raw[headerV4Len+uint64(i)*tableEntryV4Len:]
		if binary.LittleEndian.Uint32(e[0:]) == id {
			return int(i), binary.LittleEndian.Uint64(e[8:]), binary.LittleEndian.Uint64(e[16:])
		}
	}
	tb.Fatalf("section id %d not found in table", id)
	return 0, 0, 0
}

// FuzzLoad drives the model file parser with mutated headers, versions
// and payloads across every format generation. Load must never panic or
// make a giant allocation; whenever it accepts the input, the model must
// be internally consistent and round-trip through Save/Load.
//
// Run longer with: go test -run '^$' -fuzz '^FuzzLoad$' ./internal/model
func FuzzLoad(f *testing.F) {
	v4 := fuzzSeedV4(f, PrecisionF32, func(*TF) {})
	f.Add(v4) // current flat format
	// the int8 precision byte recorded — the newest accepted precision
	f.Add(fuzzSeedV4(f, PrecisionInt8, func(*TF) {}))
	// hostile payloads: a NaN factor and an Inf bias must be rejected at
	// (heap) load, never surface at score time
	f.Add(fuzzSeedV4(f, PrecisionInt8, func(m *TF) {
		m.Node.Row(1)[0] = math.NaN()
	}))
	f.Add(fuzzSeedV4(f, PrecisionF32, func(m *TF) {
		m.Bias.Row(0)[0] = math.Inf(1)
	}))

	// v4 structural corruptions, one per defended invariant
	f.Add(append([]byte(nil), v4[:len(v4)-7]...)) // truncated slab
	f.Add(patchV4Table(f, v4, 5, func(e []byte) { // offset past EOF
		binary.LittleEndian.PutUint64(e[8:], alignUpV4(uint64(len(v4)))+sectionAlignV4)
	}))
	f.Add(patchV4Table(f, v4, 3, func(e []byte) { // misaligned section
		binary.LittleEndian.PutUint64(e[8:], binary.LittleEndian.Uint64(e[8:])+4)
	}))
	checksumBad := append([]byte(nil), v4...)
	checksumBad[len(checksumBad)-1] ^= 0x40 // flip a slab byte, keep the table
	f.Add(checksumBad)
	hostileCount := append([]byte(nil), v4...)
	binary.LittleEndian.PutUint32(hostileCount[12:], 0xFFFFFFFF)
	f.Add(hostileCount)
	hostileMeta := append([]byte(nil), v4...)
	_, metaOff, _ := v4SectionEntry(f, v4, secMeta)
	binary.LittleEndian.PutUint64(hostileMeta[metaOff+8:], 1<<40) // numItems
	f.Add(hostileMeta)

	// the v3 gob format, still read via the fallback path
	gobV3 := fuzzSeedGob(f)
	f.Add(gobV3)
	// v1/v2 files: same gob payload under older version headers (the
	// Precision field gob-defaults on a v1 decode)
	v1 := append([]byte(nil), gobV3...)
	binary.BigEndian.PutUint32(v1[len(fileMagic):], 1)
	f.Add(v1)
	v2 := append([]byte(nil), gobV3...)
	binary.BigEndian.PutUint32(v2[len(fileMagic):], 2)
	f.Add(v2)
	// legacy headerless gob payload
	f.Add(append([]byte(nil), gobV3[headerLen:]...))
	// truncations: inside the header, just after it, and mid-payload, for
	// both the flat and the gob generation
	f.Add(append([]byte(nil), v4[:headerLen-2]...))
	f.Add(append([]byte(nil), v4[:headerV4Len+3]...))
	f.Add(append([]byte(nil), v4[:len(v4)/2]...))
	f.Add(append([]byte(nil), gobV3[:headerLen+3]...))
	f.Add(append([]byte(nil), gobV3[:len(gobV3)/2]...))
	// future version
	future := append([]byte(nil), v4...)
	binary.BigEndian.PutUint32(future[len(fileMagic):], 99)
	f.Add(future)
	// right magic, garbage payload; and plain garbage
	f.Add(append(append([]byte(nil), gobV3[:headerLen]...), []byte("not a gob stream")...))
	f.Add([]byte("TFRECMD?almost the magic"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(bytes.NewReader(data))
		if err != nil {
			if m != nil {
				t.Fatal("Load returned both a model and an error")
			}
			return
		}
		// accepted input: the decoded model must hold the invariants the
		// serving stack assumes
		if m.Tree == nil || m.Tree.NumItems() <= 0 {
			t.Fatal("accepted model has no taxonomy leaves")
		}
		if m.K() <= 0 || m.NumUsers() < 0 {
			t.Fatalf("accepted model has impossible shape: K=%d users=%d", m.K(), m.NumUsers())
		}
		if m.Precision > PrecisionInt8 {
			t.Fatalf("accepted model carries unknown precision %d", m.Precision)
		}
		if err := m.Tree.Validate(); err != nil {
			t.Fatalf("accepted model has inconsistent taxonomy: %v", err)
		}
		// round-trip: what Save writes, Load reads back identically shaped
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("re-save failed: %v", err)
		}
		m2, err := Load(&buf)
		if err != nil {
			t.Fatalf("re-load failed: %v", err)
		}
		if m2.K() != m.K() || m2.NumUsers() != m.NumUsers() ||
			m2.Tree.NumNodes() != m.Tree.NumNodes() || m2.Precision != m.Precision {
			t.Fatal("round-trip changed the model shape")
		}
	})
}

// Each structural corruption class must produce a typed ErrFormat error
// carrying the long-standing "corrupt or truncated" phrasing — the
// deterministic counterpart of the fuzz seeds above.
func TestLoadV4TypedErrors(t *testing.T) {
	v4 := fuzzSeedV4(t, PrecisionF32, func(*TF) {})
	_, metaOff, _ := v4SectionEntry(t, v4, secMeta)

	cases := []struct {
		name   string
		mutate func() []byte
		detail string // substring the error must carry
	}{
		{"truncated slab", func() []byte {
			return v4[:len(v4)-7]
		}, "stream ended"},
		{"offset past EOF", func() []byte {
			return patchV4Table(t, v4, 5, func(e []byte) {
				binary.LittleEndian.PutUint64(e[8:], alignUpV4(uint64(len(v4)))+sectionAlignV4)
			})
		}, "past EOF"},
		{"misaligned section", func() []byte {
			return patchV4Table(t, v4, 3, func(e []byte) {
				binary.LittleEndian.PutUint64(e[8:], binary.LittleEndian.Uint64(e[8:])+4)
			})
		}, "misaligned"},
		{"section checksum mismatch", func() []byte {
			bad := append([]byte(nil), v4...)
			bad[len(bad)-1] ^= 0x40
			return bad
		}, "checksum mismatch"},
		{"table checksum mismatch", func() []byte {
			bad := append([]byte(nil), v4...)
			bad[headerV4Len] ^= 0x01 // first table byte, CRC left stale
			return bad
		}, "table checksum mismatch"},
		{"hostile section count", func() []byte {
			bad := append([]byte(nil), v4...)
			binary.LittleEndian.PutUint32(bad[12:], 0xFFFFFFFF)
			return bad
		}, "hostile section count"},
		{"hostile meta count", func() []byte {
			bad := append([]byte(nil), v4...)
			binary.LittleEndian.PutUint64(bad[metaOff+8:], 1<<40) // numItems
			return bad
		}, "out of range"},
		{"duplicate section", func() []byte {
			return patchV4Table(t, v4, 3, func(e []byte) {
				binary.LittleEndian.PutUint32(e[0:], secMeta)
			})
		}, "duplicate"},
		{"unknown section id", func() []byte {
			return patchV4Table(t, v4, 3, func(e []byte) {
				binary.LittleEndian.PutUint32(e[0:], 9999)
			})
		}, "unknown section id"},
		{"declared size mismatch", func() []byte {
			bad := append([]byte(nil), v4...)
			binary.LittleEndian.PutUint64(bad[16:], uint64(len(v4))+1)
			return bad
		}, "stream ended"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Load(bytes.NewReader(tc.mutate()))
			if err == nil {
				t.Fatal("corrupted file loaded without error")
			}
			if m != nil {
				t.Fatal("Load returned both a model and an error")
			}
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("error not typed as ErrFormat: %v", err)
			}
			if !strings.Contains(err.Error(), "corrupt or truncated") {
				t.Fatalf("error lost the standard phrasing: %v", err)
			}
			if !strings.Contains(err.Error(), tc.detail) {
				t.Fatalf("error %q does not mention %q", err, tc.detail)
			}
		})
	}
}
