package model

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// fuzzSeedModel builds a tiny trained-shaped model and returns its
// current (v2) file bytes.
func fuzzSeedModel(tb testing.TB) []byte {
	tb.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{CategoryLevels: []int{2, 4}, Items: 12, Skew: 0}, vecmath.NewRNG(3))
	m, err := New(tree, 3, Params{K: 4, TaxonomyLevels: 3, MarkovOrder: 1, Alpha: 1, InitStd: 0.1, UseBias: true}, vecmath.NewRNG(4))
	if err != nil {
		tb.Fatal(err)
	}
	m.Precision = PrecisionF32
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoad drives the model file parser with mutated headers, versions
// and payloads. Load must never panic; whenever it accepts the input, the
// model must be internally consistent and round-trip through Save/Load.
//
// Run longer with: go test -run '^$' -fuzz '^FuzzLoad$' ./internal/model
func FuzzLoad(f *testing.F) {
	v2 := fuzzSeedModel(f)
	f.Add(v2) // current format
	// v1 file: same gob payload under a version-1 header (the Precision
	// field gob-defaults on decode)
	v1 := append([]byte(nil), v2...)
	binary.BigEndian.PutUint32(v1[len(fileMagic):], 1)
	f.Add(v1)
	// legacy headerless gob payload
	f.Add(append([]byte(nil), v2[headerLen:]...))
	// truncations: inside the header, just after it, and mid-payload
	f.Add(append([]byte(nil), v2[:headerLen-2]...))
	f.Add(append([]byte(nil), v2[:headerLen+3]...))
	f.Add(append([]byte(nil), v2[:len(v2)/2]...))
	// future version
	future := append([]byte(nil), v2...)
	binary.BigEndian.PutUint32(future[len(fileMagic):], 99)
	f.Add(future)
	// right magic, garbage payload; and plain garbage
	f.Add(append(append([]byte(nil), v2[:headerLen]...), []byte("not a gob stream")...))
	f.Add([]byte("TFRECMD?almost the magic"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(bytes.NewReader(data))
		if err != nil {
			if m != nil {
				t.Fatal("Load returned both a model and an error")
			}
			return
		}
		// accepted input: the decoded model must hold the invariants the
		// serving stack assumes
		if m.Tree == nil || m.Tree.NumItems() <= 0 {
			t.Fatal("accepted model has no taxonomy leaves")
		}
		if m.K() <= 0 || m.NumUsers() < 0 {
			t.Fatalf("accepted model has impossible shape: K=%d users=%d", m.K(), m.NumUsers())
		}
		if m.Precision > PrecisionF64 {
			t.Fatalf("accepted model carries unknown precision %d", m.Precision)
		}
		if err := m.Tree.Validate(); err != nil {
			t.Fatalf("accepted model has inconsistent taxonomy: %v", err)
		}
		// round-trip: what Save writes, Load reads back identically shaped
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("re-save failed: %v", err)
		}
		m2, err := Load(&buf)
		if err != nil {
			t.Fatalf("re-load failed: %v", err)
		}
		if m2.K() != m.K() || m2.NumUsers() != m.NumUsers() ||
			m2.Tree.NumNodes() != m.Tree.NumNodes() || m2.Precision != m.Precision {
			t.Fatal("round-trip changed the model shape")
		}
	})
}
