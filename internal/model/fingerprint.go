package model

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Fingerprint returns a short hex id of the snapshot's model content —
// identical for identical model parameters however the snapshot was
// produced (composed in-process, loaded from a gob file, or served from
// a v4 memory mapping), and different with overwhelming probability for
// different trainings. A scatter-gather router compares shard
// fingerprints to refuse merging rankings computed on different models:
// per-process epoch counters detect that one shard reloaded, but only a
// content id says whether the shards agree NOW.
//
// The hash covers the model dimensions, the full item-bias slab, and a
// strided sample of item-factor and user-factor rows rather than every
// slab byte: any retraining perturbs essentially all factor entries, so
// the sample distinguishes trainings as reliably as a full pass while
// touching only a few hundred rows — which also keeps the first call on
// a memory-mapped snapshot from faulting the whole file resident. The
// result is computed once per snapshot and cached.
func (c *Composed) Fingerprint() string {
	c.fpOnce.Do(func() {
		c.fp = fmt.Sprintf("%016x", c.fingerprint())
	})
	return c.fp
}

// fingerprintSampleRows bounds how many rows of each factor matrix the
// fingerprint reads.
const fingerprintSampleRows = 256

func (c *Composed) fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeF64 := func(v float64) { writeU64(math.Float64bits(v)) }
	writeRows := func(rows int, row func(int) []float64) {
		stride := rows / fingerprintSampleRows
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < rows; i += stride {
			for _, v := range row(i) {
				writeF64(v)
			}
		}
	}

	ix := c.Index
	writeU64(uint64(ix.k))
	writeU64(uint64(ix.numItems))
	writeU64(uint64(len(ix.nodeBias)))
	writeU64(uint64(c.P.MarkovOrder))
	writeU64(uint64(c.User.Rows()))
	for _, b := range ix.itemBias {
		writeF64(b)
	}
	writeRows(ix.numItems, func(i int) []float64 {
		return ix.itemFactors[i*ix.k : (i+1)*ix.k]
	})
	writeRows(c.User.Rows(), c.User.Row)
	return h.Sum64()
}
