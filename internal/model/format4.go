package model

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"
)

// TFRECMDL v4 is the memory-mappable flat model format. After the shared
// 12-byte prefix (magic + big-endian format version, identical to v1–v3 so
// version sniffing never changes), everything is little-endian:
//
//	off 0   magic "TFRECMDL"
//	off 8   u32 BE  format version (4)
//	off 12  u32 LE  section count (bounded by maxSectionsV4)
//	off 16  u64 LE  total file size in bytes
//	off 24  u32 LE  CRC-32C of the section table bytes
//	off 28  u32 LE  reserved (0)
//	off 32  section table: count × 24-byte entries
//	        { u32 id, u32 CRC-32C of the section bytes, u64 off, u64 len }
//	then    sections, each starting at a 64-byte-aligned offset
//
// Sections are raw slabs in their in-memory layout: the taxonomy's flat
// arrays, the raw (trainable) factor matrices, and every precomputed
// serving structure the ScoringIndex otherwise derives at Compose() time —
// composed factors, folded biases, f32 and int8 mirrors with their code
// parameters, DFS layout tables, and subtree prune envelopes. A loader
// that can map the file wraps these bytes zero-copy; the heap loader reads
// them into one aligned buffer and wraps that. Lengths are exact (no
// padding inside a section; inter-section gaps are zero), every section
// length is derivable from the meta section alone, and every offset is
// 64-byte aligned, which makes the float64 casts legal and keeps slab rows
// cache-line aligned.
//
// Integrity model: the CRCs defend against corruption (torn writes,
// truncation, bit rot), not forgery — a file that validates is trusted to
// contain the precomputed structures a Compose() pass would have built.
// The heap path (Load → *TF) additionally re-checks raw factor finiteness
// for v3 parity, and the taxonomy layout is always structurally
// re-validated (taxonomy.NewFromLayout), so a corrupt file yields a typed
// error, never a panic or a giant allocation.

// Section ids. The id space is append-only: a layout change that breaks
// any existing section's meaning must bump the format version instead.
const (
	secMeta uint32 = iota + 1
	secTreeParent
	secTreeDepth
	secTreeChildOff
	secTreeChildList
	secTreeLevelOff
	secTreeLevelList
	secTreeItemNode
	secTreeNodeItem
	secRawUser
	secRawNode
	secRawNext
	secRawBias
	secEffNode
	secEffNext
	secEffBias
	secItemFactors
	secItemBias
	secItem32
	secItemBias32
	secNode32
	secNodeBias32
	secItemI8
	secItemScaleI8
	secItemOffsetI8
	secNodeI8
	secNodeScaleI8
	secNodeOffsetI8
	secItemCat
	secLevelPos
	secItemLo
	secItemHi
	secSubtreeLeaves
	secDFSItems
	secDFSLo
	secDFSHi
	secSubLo
	secSubHi
	secSubMaxBias
	secNodeBias
)

// sectionNamesV4 maps ids to the names tfrec-inspect prints.
var sectionNamesV4 = map[uint32]string{
	secMeta:          "meta",
	secTreeParent:    "tree.parent",
	secTreeDepth:     "tree.depth",
	secTreeChildOff:  "tree.childOff",
	secTreeChildList: "tree.childList",
	secTreeLevelOff:  "tree.levelOff",
	secTreeLevelList: "tree.levelList",
	secTreeItemNode:  "tree.itemNode",
	secTreeNodeItem:  "tree.nodeItem",
	secRawUser:       "raw.user",
	secRawNode:       "raw.node",
	secRawNext:       "raw.next",
	secRawBias:       "raw.bias",
	secEffNode:       "eff.node",
	secEffNext:       "eff.next",
	secEffBias:       "eff.bias",
	secItemFactors:   "index.itemFactors",
	secItemBias:      "index.itemBias",
	secItem32:        "index.item32",
	secItemBias32:    "index.itemBias32",
	secNode32:        "index.node32",
	secNodeBias32:    "index.nodeBias32",
	secItemI8:        "index.itemI8",
	secItemScaleI8:   "index.itemScaleI8",
	secItemOffsetI8:  "index.itemOffsetI8",
	secNodeI8:        "index.nodeI8",
	secNodeScaleI8:   "index.nodeScaleI8",
	secNodeOffsetI8:  "index.nodeOffsetI8",
	secItemCat:       "index.itemCat",
	secLevelPos:      "index.levelPos",
	secItemLo:        "index.itemLo",
	secItemHi:        "index.itemHi",
	secSubtreeLeaves: "index.subtreeLeaves",
	secDFSItems:      "index.dfsItems",
	secDFSLo:         "index.dfsLo",
	secDFSHi:         "index.dfsHi",
	secSubLo:         "index.subLo",
	secSubHi:         "index.subHi",
	secSubMaxBias:    "index.subMaxBias",
	secNodeBias:      "index.nodeBias",
}

const (
	// headerV4Len is the fixed header: the 12-byte prefix plus section
	// count, file size, table CRC, and a reserved word.
	headerV4Len = 32
	// tableEntryV4Len is one section-table entry: id, crc, off, len.
	tableEntryV4Len = 24
	// maxSectionsV4 bounds the declared section count so a hostile header
	// cannot demand a giant table allocation; the format defines 40 ids
	// and the id space is append-only within the version.
	maxSectionsV4 = 64
	// sectionAlignV4 is the required alignment of every section offset.
	sectionAlignV4 = 64
	// metaV4Len is the exact meta section size: 10 u64 + 12 f64 fields.
	metaV4Len = 22 * 8
	// maxFileBytesV4 caps the declared file size (64 TiB) so overflow-free
	// offset arithmetic stays trivially in range.
	maxFileBytesV4 = 1 << 46
)

// castagnoli is the CRC-32C table shared by the writer and both loaders.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crc32Update folds more bytes into a running CRC-32C.
func crc32Update(crc uint32, b []byte) uint32 {
	return crc32.Update(crc, castagnoli, b)
}

// hostLittle reports whether the host stores multi-byte values
// little-endian, the precondition for the zero-copy slab casts. Big-endian
// hosts fall back to an allocate-and-decode per section.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func alignUpV4(x uint64) uint64 {
	return (x + sectionAlignV4 - 1) &^ (sectionAlignV4 - 1)
}

// metaV4 is the decoded meta section: the model shape every other
// section's exact length derives from, plus the scalar hyper-parameters
// and the lazily-computed aggregates (magnitude bounds and quantization
// aggregates) that a Compose()+ensure pass would otherwise recompute.
type metaV4 struct {
	numUsers, numNodes, numItems, k uint64
	depth                           uint64
	taxonomyLevels, markovOrder     uint64
	root                            uint64
	flags                           uint64
	precision                       uint64
	alpha, initStd                  float64

	maxAbsItemFactor, maxAbsItemBias float64
	maxAbsNodeFactor, maxAbsNodeBias float64

	maxItemRowErrI8, maxItemScaleI8, maxAbsItemOffsetI8 float64
	maxNodeRowErrI8, maxNodeScaleI8, maxAbsNodeOffsetI8 float64
}

const (
	metaFlagUseBias      = 1 << 0
	metaFlagUniformDecay = 1 << 1
	metaFlagsKnown       = metaFlagUseBias | metaFlagUniformDecay
)

func (mt *metaV4) encode() []byte {
	out := make([]byte, metaV4Len)
	u := func(i int, v uint64) { binary.LittleEndian.PutUint64(out[i*8:], v) }
	f := func(i int, v float64) { u(i, math.Float64bits(v)) }
	u(0, mt.numUsers)
	u(1, mt.numNodes)
	u(2, mt.numItems)
	u(3, mt.k)
	u(4, mt.depth)
	u(5, mt.taxonomyLevels)
	u(6, mt.markovOrder)
	u(7, mt.root)
	u(8, mt.flags)
	u(9, mt.precision)
	f(10, mt.alpha)
	f(11, mt.initStd)
	f(12, mt.maxAbsItemFactor)
	f(13, mt.maxAbsItemBias)
	f(14, mt.maxAbsNodeFactor)
	f(15, mt.maxAbsNodeBias)
	f(16, mt.maxItemRowErrI8)
	f(17, mt.maxItemScaleI8)
	f(18, mt.maxAbsItemOffsetI8)
	f(19, mt.maxNodeRowErrI8)
	f(20, mt.maxNodeScaleI8)
	f(21, mt.maxAbsNodeOffsetI8)
	return out
}

func decodeMetaV4(b []byte) metaV4 {
	u := func(i int) uint64 { return binary.LittleEndian.Uint64(b[i*8:]) }
	f := func(i int) float64 { return math.Float64frombits(u(i)) }
	return metaV4{
		numUsers: u(0), numNodes: u(1), numItems: u(2), k: u(3),
		depth: u(4), taxonomyLevels: u(5), markovOrder: u(6),
		root: u(7), flags: u(8), precision: u(9),
		alpha: f(10), initStd: f(11),
		maxAbsItemFactor: f(12), maxAbsItemBias: f(13),
		maxAbsNodeFactor: f(14), maxAbsNodeBias: f(15),
		maxItemRowErrI8: f(16), maxItemScaleI8: f(17), maxAbsItemOffsetI8: f(18),
		maxNodeRowErrI8: f(19), maxNodeScaleI8: f(20), maxAbsNodeOffsetI8: f(21),
	}
}

// ---- slab <-> byte views -------------------------------------------------
//
// On little-endian hosts these are zero-copy reinterpretations (the
// callers guarantee 8-byte-aligned backing: 64-aligned section offsets in
// a page-aligned mapping or a uint64-backed heap buffer). Big-endian hosts
// pay an allocate-and-convert per slab, keeping the format portable.

func f64Bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	out := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func f32Bytes(s []float32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	out := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}

func i32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	out := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}

func i8Bytes(s []int8) []byte {
	if len(s) == 0 {
		return nil
	}
	// byte-wide: endianness-free reinterpretation on every host
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s))
}

func f64View(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func f32View(b []byte) []float32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func i32View(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func i8View(b []byte) []int8 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(&b[0])), len(b))
}

// ---- writer --------------------------------------------------------------

type sectionV4 struct {
	id   uint32
	data []byte
}

// saveV4 lays the sections out in id order with 64-byte-aligned offsets
// and writes header, table, and slabs sequentially. The section byte
// slices may alias live model memory; nothing is mutated.
func saveV4(w io.Writer, secs []sectionV4) error {
	count := len(secs)
	tableLen := uint64(count) * tableEntryV4Len
	off := alignUpV4(headerV4Len + tableLen)
	table := make([]byte, tableLen)
	fileSize := off // the file ends at the last section's end, unpadded
	for i, s := range secs {
		e := table[i*tableEntryV4Len:]
		binary.LittleEndian.PutUint32(e[0:], s.id)
		binary.LittleEndian.PutUint32(e[4:], crc32.Checksum(s.data, castagnoli))
		binary.LittleEndian.PutUint64(e[8:], off)
		binary.LittleEndian.PutUint64(e[16:], uint64(len(s.data)))
		fileSize = off + uint64(len(s.data))
		off = alignUpV4(fileSize)
	}

	header := make([]byte, headerV4Len)
	copy(header, fileMagic[:])
	binary.BigEndian.PutUint32(header[len(fileMagic):], 4)
	binary.LittleEndian.PutUint32(header[12:], uint32(count))
	binary.LittleEndian.PutUint64(header[16:], fileSize)
	binary.LittleEndian.PutUint32(header[24:], crc32.Checksum(table, castagnoli))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("model: write header: %w", err)
	}
	if _, err := w.Write(table); err != nil {
		return fmt.Errorf("model: write section table: %w", err)
	}
	var pad [sectionAlignV4]byte
	pos := headerV4Len + tableLen
	for _, s := range secs {
		if gap := alignUpV4(pos) - pos; gap > 0 {
			if _, err := w.Write(pad[:gap]); err != nil {
				return fmt.Errorf("model: write section padding: %w", err)
			}
			pos += gap
		}
		if _, err := w.Write(s.data); err != nil {
			return fmt.Errorf("model: write section %s: %w", sectionNamesV4[s.id], err)
		}
		pos += uint64(len(s.data))
	}
	return nil
}

// sectionsForSave assembles the full v4 section list from a model and its
// composed snapshot, forcing the lazy f32/int8 tiers and magnitude bounds
// so that every serving structure is present in the file and load time
// pays for none of them.
func sectionsForSave(m *TF, c *Composed) []sectionV4 {
	ix := c.Index
	ix.ensure32()
	ix.ensure8()
	parent, depth, childOff, childList, levelOff, levelList, itemNode, nodeItem, root := m.Tree.Layout()

	flags := uint64(0)
	if m.P.UseBias {
		flags |= metaFlagUseBias
	}
	if m.P.UniformDecay {
		flags |= metaFlagUniformDecay
	}
	mt := metaV4{
		numUsers:       uint64(m.NumUsers()),
		numNodes:       uint64(m.Tree.NumNodes()),
		numItems:       uint64(m.Tree.NumItems()),
		k:              uint64(m.P.K),
		depth:          uint64(m.Tree.Depth()),
		taxonomyLevels: uint64(m.P.TaxonomyLevels),
		markovOrder:    uint64(m.P.MarkovOrder),
		root:           uint64(root),
		flags:          flags,
		precision:      uint64(m.Precision),
		alpha:          m.P.Alpha,
		initStd:        m.P.InitStd,

		maxAbsItemFactor: ix.maxAbsItemFactor, maxAbsItemBias: ix.maxAbsItemBias,
		maxAbsNodeFactor: ix.maxAbsNodeFactor, maxAbsNodeBias: ix.maxAbsNodeBias,
		maxItemRowErrI8: ix.maxItemRowErrI8, maxItemScaleI8: ix.maxItemScaleI8,
		maxAbsItemOffsetI8: ix.maxAbsItemOffsetI8,
		maxNodeRowErrI8:    ix.maxNodeRowErrI8, maxNodeScaleI8: ix.maxNodeScaleI8,
		maxAbsNodeOffsetI8: ix.maxAbsNodeOffsetI8,
	}

	numItems := ix.numItems
	itemCat := make([]int32, 0, (m.Tree.Depth()+1)*numItems)
	for _, col := range ix.itemCat {
		itemCat = append(itemCat, col...)
	}

	return []sectionV4{
		{secMeta, mt.encode()},
		{secTreeParent, i32Bytes(parent)},
		{secTreeDepth, i32Bytes(depth)},
		{secTreeChildOff, i32Bytes(childOff)},
		{secTreeChildList, i32Bytes(childList)},
		{secTreeLevelOff, i32Bytes(levelOff)},
		{secTreeLevelList, i32Bytes(levelList)},
		{secTreeItemNode, i32Bytes(itemNode)},
		{secTreeNodeItem, i32Bytes(nodeItem)},
		{secRawUser, f64Bytes(m.User.CompactData())},
		{secRawNode, f64Bytes(m.Node.CompactData())},
		{secRawNext, f64Bytes(m.Next.CompactData())},
		{secRawBias, f64Bytes(m.Bias.CompactData())},
		{secEffNode, f64Bytes(c.EffNode.Data())},
		{secEffNext, f64Bytes(c.EffNext.Data())},
		{secEffBias, f64Bytes(c.EffBias.Data())},
		{secItemFactors, f64Bytes(ix.itemFactors)},
		{secItemBias, f64Bytes(ix.itemBias)},
		{secItem32, f32Bytes(ix.item32.Data())},
		{secItemBias32, f32Bytes(ix.itemBias32)},
		{secNode32, f32Bytes(ix.node32.Data())},
		{secNodeBias32, f32Bytes(ix.nodeBias32)},
		{secItemI8, i8Bytes(ix.itemI8.Data())},
		{secItemScaleI8, f64Bytes(ix.itemScaleI8)},
		{secItemOffsetI8, f64Bytes(ix.itemOffsetI8)},
		{secNodeI8, i8Bytes(ix.nodeI8.Data())},
		{secNodeScaleI8, f64Bytes(ix.nodeScaleI8)},
		{secNodeOffsetI8, f64Bytes(ix.nodeOffsetI8)},
		{secItemCat, i32Bytes(itemCat)},
		{secLevelPos, i32Bytes(ix.levelPos)},
		{secItemLo, i32Bytes(ix.itemLo)},
		{secItemHi, i32Bytes(ix.itemHi)},
		{secSubtreeLeaves, i32Bytes(ix.subtreeLeaves)},
		{secDFSItems, i32Bytes(ix.dfsItems)},
		{secDFSLo, i32Bytes(ix.dfsLo)},
		{secDFSHi, i32Bytes(ix.dfsHi)},
		{secSubLo, f64Bytes(ix.subLo)},
		{secSubHi, f64Bytes(ix.subHi)},
		{secSubMaxBias, f64Bytes(ix.subMaxBias)},
		{secNodeBias, f64Bytes(ix.nodeBias)},
	}
}
