package model

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

func index32World(t *testing.T, useBias bool) (*Composed, []float64) {
	t.Helper()
	tree, err := taxonomy.Generate(taxonomy.GenConfig{
		CategoryLevels: []int{4, 12},
		Items:          150,
		Skew:           0.4,
	}, vecmath.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	p := Params{K: 7, TaxonomyLevels: 3, Alpha: 1, InitStd: 0.3, UseBias: useBias}
	m, err := New(tree, 4, p, vecmath.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if useBias {
		for n := 0; n < tree.NumNodes(); n++ {
			m.Bias.Row(n)[0] = vecmath.NewRNG(uint64(n)).NormFloat64()
		}
	}
	q := make([]float64, p.K)
	rng := vecmath.NewRNG(9)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	return m.Compose(), q
}

// The f32 slabs must be the exact float32 rounding of the f64 slabs, with
// item leaf rows bit-identical to their node rows, and the blocked range
// sweep must agree bitwise with per-item ScoreItem32.
func TestIndex32SlabsMirrorF64(t *testing.T) {
	for _, useBias := range []bool{false, true} {
		c, q := index32World(t, useBias)
		ix := c.Index
		q32 := make([]float32, len(q))
		vecmath.Downconvert32(q32, q)
		for item := 0; item < ix.NumItems(); item++ {
			f64row := ix.ItemFactor(item)
			f32row := ix.ItemFactor32(item)
			for j := range f64row {
				if f32row[j] != float32(f64row[j]) {
					t.Fatalf("useBias=%v item %d dim %d: f32 slab %v != rounded %v", useBias, item, j, f32row[j], float32(f64row[j]))
				}
			}
			node := c.Tree.ItemNode(item)
			if got, want := ix.ScoreItem32(item, q32), ix.ScoreNode32(node, q32); got != want {
				t.Fatalf("useBias=%v item %d: item-slab score %v != node-slab score %v", useBias, item, got, want)
			}
		}
		dst := make([]float32, ix.NumItems())
		ix.ItemScoresRange32Into(q32, 0, ix.NumItems(), dst)
		for item := range dst {
			if want := ix.ScoreItem32(item, q32); dst[item] != want {
				t.Fatalf("blocked f32 sweep diverged at item %d: %v != %v", item, dst[item], want)
			}
		}
	}
}

// The certified error bound must actually dominate the observed |f32−f64|
// score differences — the property the two-stage pipeline's exactness
// proof stands on.
func TestIndex32ErrBoundDominates(t *testing.T) {
	for _, useBias := range []bool{false, true} {
		c, q := index32World(t, useBias)
		ix := c.Index
		q32 := make([]float32, len(q))
		vecmath.Downconvert32(q32, q)
		eps := ix.ItemErrBound32(q)
		if eps <= 0 {
			t.Fatalf("useBias=%v: non-positive error bound %v", useBias, eps)
		}
		var worst float64
		for item := 0; item < ix.NumItems(); item++ {
			d := math.Abs(float64(ix.ScoreItem32(item, q32)) - ix.ScoreItem(item, q))
			if d > worst {
				worst = d
			}
		}
		if worst > eps {
			t.Fatalf("useBias=%v: observed error %v exceeds certified bound %v", useBias, worst, eps)
		}
		nodeEps := ix.NodeErrBound32(q)
		for n := 0; n < c.Tree.NumNodes(); n++ {
			d := math.Abs(float64(ix.ScoreNode32(n, q32)) - ix.ScoreNode(n, q))
			if d > nodeEps {
				t.Fatalf("useBias=%v node %d: error %v exceeds node bound %v", useBias, n, d, nodeEps)
			}
		}
	}
}

// A file written with a version-1 header (the pre-precision format) must
// still load, coming back with PrecisionDefault; a v2 round-trip must
// preserve the recorded precision.
func TestLoadVersion1AndPrecisionRoundTrip(t *testing.T) {
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{CategoryLevels: []int{3}, Items: 20, Skew: 0}, vecmath.NewRNG(2))
	m, err := New(tree, 3, Params{K: 4, TaxonomyLevels: 2, Alpha: 1, InitStd: 0.1}, vecmath.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, prec := range []Precision{PrecisionF32, PrecisionInt8} {
		m.Precision = prec
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		if v := binary.BigEndian.Uint32(raw[len(fileMagic):headerLen]); v != fileVersion {
			t.Fatalf("written header version %d, want %d", v, fileVersion)
		}
		got, err := Load(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if got.Precision != prec {
			t.Fatalf("round-trip precision %v, want %v", got.Precision, prec)
		}
		// rewrite a gob file's header as older versions: the payload's
		// extra gob fields are ignored by construction, so these are
		// exactly the files older writers produced
		var gbuf bytes.Buffer
		if err := m.SaveGob(&gbuf); err != nil {
			t.Fatal(err)
		}
		graw := gbuf.Bytes()
		if v := binary.BigEndian.Uint32(graw[len(fileMagic):headerLen]); v != gobFileVersion {
			t.Fatalf("gob header version %d, want %d", v, gobFileVersion)
		}
		for _, v := range []uint32{1, 2} {
			old := append([]byte(nil), graw...)
			binary.BigEndian.PutUint32(old[len(fileMagic):], v)
			mOld, err := Load(bytes.NewReader(old))
			if err != nil {
				t.Fatalf("v%d file failed to load: %v", v, err)
			}
			if mOld.NumItems() != m.NumItems() {
				t.Fatalf("v%d load lost structure: %d items", v, mOld.NumItems())
			}
		}
	}
}

func TestPrecisionParseAndResolve(t *testing.T) {
	for s, want := range map[string]Precision{"": PrecisionDefault, "f32": PrecisionF32, "f64": PrecisionF64, "int8": PrecisionInt8} {
		got, err := ParsePrecision(s)
		if err != nil || got != want {
			t.Fatalf("ParsePrecision(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePrecision("f16"); err == nil {
		t.Fatal("expected error for unknown precision")
	}
	if PrecisionDefault.Resolve() != PrecisionF32 {
		t.Fatal("default must resolve to f32")
	}
	if PrecisionF64.Resolve() != PrecisionF64 {
		t.Fatal("explicit f64 must survive Resolve")
	}
	if PrecisionInt8.Resolve() != PrecisionInt8 {
		t.Fatal("explicit int8 must survive Resolve")
	}
}
