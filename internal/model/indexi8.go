package model

import (
	"math"

	"repro/internal/vecmath"
)

// The int8 quantized face of the scoring index. ensure8 materializes the
// quantized item and node slabs beside the f64/f32 ones on first int8
// use, and the accessors below mirror the f32 surface: per-row scoring,
// range sweeps, a blocked multi-query range sweep, and the certified
// error bound the two-stage pipeline's separation certificate charges.

// ensure8 quantizes both slabs and records the aggregates ErrBoundI8
// needs. Safe for concurrent first use; f64/f32-pinned deployments never
// pay the quantization pass or the extra ~12.5% slab memory.
func (ix *ScoringIndex) ensure8() {
	ix.i8Once.Do(func() {
		ix.ensureBounds()
		numNodes := len(ix.nodeBias)
		ix.nodeI8 = vecmath.NewMatrixI8(numNodes, ix.k)
		ix.nodeScaleI8 = make([]float64, numNodes)
		ix.nodeOffsetI8 = make([]float64, numNodes)
		ix.maxNodeRowErrI8, ix.maxNodeScaleI8, ix.maxAbsNodeOffsetI8 =
			ix.nodeI8.QuantizeFrom(ix.nodeFactors, ix.nodeScaleI8, ix.nodeOffsetI8)
		ix.itemI8 = vecmath.NewMatrixI8(ix.numItems, ix.k)
		ix.itemScaleI8 = make([]float64, ix.numItems)
		ix.itemOffsetI8 = make([]float64, ix.numItems)
		ix.maxItemRowErrI8, ix.maxItemScaleI8, ix.maxAbsItemOffsetI8 =
			ix.itemI8.QuantizeFrom(ix.itemFactors, ix.itemScaleI8, ix.itemOffsetI8)
	})
}

// ScoreItemI8 returns item's quantized-tier score against the quantized
// query (u, qscale, sumQ) — see vecmath.QuantizeQuery. The result is
// bitwise identical whether computed here or by any blocked int8 sweep.
func (ix *ScoringIndex) ScoreItemI8(item int, u []int8, qscale, sumQ float64) float64 {
	ix.ensure8()
	return vecmath.DotBiasI8(u, ix.itemI8.Row(item), ix.itemScaleI8[item], ix.itemOffsetI8[item], ix.itemBias[item], qscale, sumQ)
}

// ScoreNodeI8 is ScoreItemI8 for any taxonomy node over the node slab. A
// leaf node scores bitwise identically to its item (the rows and their
// quantization parameters are equal).
func (ix *ScoringIndex) ScoreNodeI8(node int, u []int8, qscale, sumQ float64) float64 {
	ix.ensure8()
	return vecmath.DotBiasI8(u, ix.nodeI8.Row(node), ix.nodeScaleI8[node], ix.nodeOffsetI8[node], ix.nodeBias[node], qscale, sumQ)
}

// ItemScoresRangeI8Into scores the contiguous item range [lo, hi) through
// the quantized slab into dst[:hi-lo] — the quarter-bandwidth sibling of
// ItemScoresRangeInto.
func (ix *ScoringIndex) ItemScoresRangeI8Into(u []int8, qscale, sumQ float64, lo, hi int, dst []float64) {
	ix.ensure8()
	k := ix.k
	vecmath.MatVecBiasI8(ix.itemI8.Data()[lo*k:hi*k], k, ix.itemScaleI8[lo:hi], ix.itemOffsetI8[lo:hi], ix.itemBias[lo:hi], u, qscale, sumQ, dst[:hi-lo])
}

// ItemScoresRangeI8MultiInto scores the range for a whole query group in
// one blocked pass: each 4-row block is scored against every query before
// the sweep advances, amortizing the slab reads across the group.
// dsts[qi][:hi-lo] receives query qi's scores.
func (ix *ScoringIndex) ItemScoresRangeI8MultiInto(us [][]int8, qscales, sumQs []float64, lo, hi int, dsts [][]float64) {
	ix.ensure8()
	k := ix.k
	vecmath.MatVecBiasI8Multi(ix.itemI8.Data()[lo*k:hi*k], k, ix.itemScaleI8[lo:hi], ix.itemOffsetI8[lo:hi], ix.itemBias[lo:hi], us, qscales, sumQs, dsts)
}

// ItemScoresRange32MultiInto is the f32 blocked multi-query range sweep —
// the same slab-read amortization for the f32 tier's batched pipeline.
func (ix *ScoringIndex) ItemScoresRange32MultiInto(qs32 [][]float32, lo, hi int, dsts [][]float32) {
	ix.ensure32()
	k := ix.k
	vecmath.MatVecBias32Multi(ix.item32.Data()[lo*k:hi*k], k, ix.itemBias32[lo:hi], qs32, dsts)
}

// ItemErrBoundI8 returns ε such that for every item,
// |ScoreItemI8(item, u, qscale, sumQ) − ScoreItem(item, q)| ≤ ε, where
// (u, qscale, sumQ, sumAbsQErr) came from vecmath.QuantizeQuery(u, q).
// A +Inf result means the tier cannot certify this index/query pair
// (non-finite quantization, or a factor dimensionality past the exact
// int32 dot range) and the caller must fall back to an exact sweep.
func (ix *ScoringIndex) ItemErrBoundI8(q []float64, sumAbsQErr float64) float64 {
	ix.ensure8()
	return ix.errBoundI8(q, sumAbsQErr, ix.maxItemRowErrI8, ix.maxItemScaleI8, ix.maxAbsItemOffsetI8, ix.maxAbsItemFactor, ix.maxAbsItemBias)
}

// NodeErrBoundI8 is ItemErrBoundI8 for ScoreNodeI8 over the node slab.
func (ix *ScoringIndex) NodeErrBoundI8(q []float64, sumAbsQErr float64) float64 {
	ix.ensure8()
	return ix.errBoundI8(q, sumAbsQErr, ix.maxNodeRowErrI8, ix.maxNodeScaleI8, ix.maxAbsNodeOffsetI8, ix.maxAbsNodeFactor, ix.maxAbsNodeBias)
}

// errBoundI8 bounds |int8-tier score − exact f64 score|. Writing the
// exact score as Σ q_j·x_j + bias and each row value as its
// reconstruction plus measured error, x_j = (scale·c_j + offset) + e_j,
// the difference decomposes into
//
//	Σ q_j·e_j                   ≤ Σ|q|·maxRowErr      (row quantization)
//	scale·Σ f_j·c_j             ≤ 127·maxScale·Σ|f|   (query quantization,
//	                                f_j = q_j − qscale·u_j, |c_j| ≤ 127)
//
// plus the float64 rounding of the short combine and of the sumQ
// accumulation — at most a small multiple of n·2⁻⁵³ relative to
// Σ|q|·(maxF + maxOffset) + maxB. We charge (n+8)·2⁻⁵⁰, an ≥8x slack
// that also absorbs the reconstruction-measurement rounding, plus a tiny
// absolute term for subnormals. The integer dot itself is exact, so no
// term grows with the accumulation — unless k exceeds the int32-exact
// range, in which case the bound is +Inf and nothing certifies.
func (ix *ScoringIndex) errBoundI8(q []float64, sumAbsQErr, maxRowErr, maxScale, maxAbsOffset, maxF, maxB float64) float64 {
	if ix.k > vecmath.MaxDotLenI8 {
		return math.Inf(1)
	}
	var sumAbs float64
	for _, v := range q {
		sumAbs += math.Abs(v)
	}
	const u = 1.0 / (1 << 50)
	slack := (float64(len(q)) + 8) * u * (sumAbs*(maxF+maxAbsOffset) + maxB)
	return sumAbs*maxRowErr + 127*maxScale*sumAbsQErr + slack + 1e-30
}
