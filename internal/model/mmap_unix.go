//go:build unix

package model

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared, so every replica of
// a model on one host serves from the same page-cache pages. The mapping
// outlives f's read offset; munmapFile releases it.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, fmt.Errorf("model: cannot map %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("model: mmap: %w", err)
	}
	return data, nil
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
