package model

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"unsafe"

	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// snapshotWorld builds a trained-shaped model with biases and writes its
// v4 file, returning the model and the file path.
func snapshotWorld(t *testing.T) (*TF, string) {
	t.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{CategoryLevels: []int{3, 7}, Items: 90, Skew: 0.3}, vecmath.NewRNG(11))
	m, err := New(tree, 5, Params{K: 6, TaxonomyLevels: 3, MarkovOrder: 2, Alpha: 1, InitStd: 0.25, UseBias: true}, vecmath.NewRNG(12))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < tree.NumNodes(); n++ {
		m.Bias.Row(n)[0] = vecmath.NewRNG(uint64(100 + n)).NormFloat64()
	}
	m.Precision = PrecisionInt8
	path := filepath.Join(t.TempDir(), "model.tfrec")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return m, path
}

// The mapped snapshot must score byte-identically to a Compose() pass at
// every precision tier — the property that makes mmap serving a pure
// startup optimization with zero behavioral surface.
func TestLoadFileMappedMatchesComposeBitwise(t *testing.T) {
	m, path := snapshotWorld(t)
	ref := m.Compose()
	refIx := ref.Index

	sn, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	if sn.Format != 4 {
		t.Fatalf("snapshot format %d, want 4", sn.Format)
	}
	ix := sn.Composed.Index
	if ix.NumItems() != refIx.NumItems() || ix.K() != refIx.K() {
		t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)", ix.NumItems(), ix.K(), refIx.NumItems(), refIx.K())
	}
	if sn.Composed.Precision != m.Precision {
		t.Fatalf("precision %v, want %v", sn.Composed.Precision, m.Precision)
	}

	k := ix.K()
	q := make([]float64, k)
	rng := vecmath.NewRNG(77)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	q32 := make([]float32, k)
	vecmath.Downconvert32(q32, q)
	qi := make([]int8, k)
	qscale, sumQ, sumAbsErr := vecmath.QuantizeQuery(qi, q)

	for item := 0; item < ix.NumItems(); item++ {
		if got, want := ix.ScoreItem(item, q), refIx.ScoreItem(item, q); got != want {
			t.Fatalf("f64 item %d: mapped %v != composed %v", item, got, want)
		}
		if got, want := ix.ScoreItem32(item, q32), refIx.ScoreItem32(item, q32); got != want {
			t.Fatalf("f32 item %d: mapped %v != composed %v", item, got, want)
		}
		got := ix.ScoreItemI8(item, qi, qscale, sumQ)
		want := refIx.ScoreItemI8(item, qi, qscale, sumQ)
		if got != want {
			t.Fatalf("int8 item %d: mapped %v != composed %v", item, got, want)
		}
	}
	for n := 0; n < sn.Composed.Tree.NumNodes(); n++ {
		if got, want := ix.ScoreNode(n, q), refIx.ScoreNode(n, q); got != want {
			t.Fatalf("f64 node %d: mapped %v != composed %v", n, got, want)
		}
		if got, want := ix.SubtreeBound(n, q), refIx.SubtreeBound(n, q); got != want {
			t.Fatalf("subtree bound node %d: mapped %v != composed %v", n, got, want)
		}
	}
	// the certified error bounds derive from persisted aggregates and must
	// reproduce exactly, or exactness certificates would drift across a
	// format round-trip
	if got, want := ix.ItemErrBound32(q), refIx.ItemErrBound32(q); got != want {
		t.Fatalf("f32 error bound: mapped %v != composed %v", got, want)
	}
	if got, want := ix.ItemErrBoundI8(q, sumAbsErr), refIx.ItemErrBoundI8(q, sumAbsErr); got != want {
		t.Fatalf("int8 error bound: mapped %v != composed %v", got, want)
	}
	if got, want := ix.ItemPruneBound(q), refIx.ItemPruneBound(q); got != want {
		t.Fatalf("item prune bound: mapped %v != composed %v", got, want)
	}

	// layout tables drive retrieval order; spot-check them too
	for n := 0; n < sn.Composed.Tree.NumNodes(); n++ {
		glo, ghi := ix.DFSSpan(n)
		wlo, whi := refIx.DFSSpan(n)
		if glo != wlo || ghi != whi {
			t.Fatalf("dfs span node %d: [%d,%d) vs [%d,%d)", n, glo, ghi, wlo, whi)
		}
	}
}

// TestMappedSlabsCacheLineAligned pins the layout property the SIMD
// kernels bank on: the mapped item slabs of a v4 file start on 64-byte
// boundaries (page-aligned mapping + 64-aligned section offsets), so the
// vector loads of the AVX2/NEON sweep bodies run at full cache-line
// granularity straight off the mapping. The asm tolerates any alignment
// (unaligned vector loads), so this is a performance property — but one
// the format advertises, so a regression should fail loudly here rather
// than as a silent slowdown.
func TestMappedSlabsCacheLineAligned(t *testing.T) {
	_, path := snapshotWorld(t)
	sn, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	if sn.Format != 4 {
		t.Fatalf("snapshot format %d, want 4", sn.Format)
	}
	ix := sn.Composed.Index
	if d := ix.item32.Data(); len(d) == 0 {
		t.Fatal("empty f32 item slab")
	} else if p := uintptr(unsafe.Pointer(&d[0])); p%64 != 0 {
		t.Errorf("f32 item slab base %#x not 64-byte aligned", p)
	}
	if d := ix.itemI8.Data(); len(d) == 0 {
		t.Fatal("empty int8 item slab")
	} else if p := uintptr(unsafe.Pointer(&d[0])); p%64 != 0 {
		t.Errorf("int8 item slab base %#x not 64-byte aligned", p)
	}
}

// A gob-era file must still load through LoadFile, heap-backed.
func TestLoadFileGobFallback(t *testing.T) {
	m, _ := snapshotWorld(t)
	path := filepath.Join(t.TempDir(), "legacy.tfrec")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SaveGob(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	sn, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	if sn.Format != int(gobFileVersion) {
		t.Fatalf("format %d, want %d", sn.Format, gobFileVersion)
	}
	if sn.Mapped {
		t.Fatal("gob fallback must not report a mapped snapshot")
	}
	ref := m.Compose()
	q := make([]float64, ref.K())
	q[0] = 1
	for item := 0; item < ref.NumItems(); item++ {
		if got, want := sn.Composed.Index.ScoreItem(item, q), ref.Index.ScoreItem(item, q); got != want {
			t.Fatalf("item %d: %v != %v", item, got, want)
		}
	}
}

// Close must be idempotent and safe to call concurrently with nothing
// in flight; a corrupted file must be rejected by LoadFile with the
// typed error and no leaked mapping.
func TestSnapshotCloseAndCorruptLoadFile(t *testing.T) {
	_, path := snapshotWorld(t)
	sn, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sn.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := sn.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x10 // slab corruption: section checksum must catch it
	bad := filepath.Join(t.TempDir(), "bad.tfrec")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Fatal("corrupted file loaded without error")
	} else if !errors.Is(err, ErrFormat) {
		t.Fatalf("corruption error not typed: %v", err)
	}
}

// Residency must answer for a mapped snapshot on platforms that support
// it, and a freshly checksummed-but-unmapped model should not be fully
// resident just from loading.
func TestSnapshotResidency(t *testing.T) {
	_, path := snapshotWorld(t)
	sn, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	if !sn.Mapped {
		t.Skip("mmap unavailable on this platform")
	}
	resident, total, err := sn.Residency()
	if err != nil {
		t.Skipf("residency unsupported: %v", err)
	}
	if total <= 0 || resident < 0 || resident > total {
		t.Fatalf("implausible residency %d/%d", resident, total)
	}
}

func TestInspectFile(t *testing.T) {
	m, path := snapshotWorld(t)

	info, err := InspectFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 4 || info.Legacy {
		t.Fatalf("v4 file inspected as version=%d legacy=%v", info.Version, info.Legacy)
	}
	if len(info.Sections) != len(sectionNamesV4) {
		t.Fatalf("%d sections, want %d", len(info.Sections), len(sectionNamesV4))
	}
	var sum uint64
	seenMeta := false
	for _, s := range info.Sections {
		if !s.Aligned {
			t.Fatalf("section %s at unaligned offset %d", s.Name, s.Offset)
		}
		if s.Name == "meta" {
			seenMeta = true
			if s.Len != metaV4Len {
				t.Fatalf("meta section length %d", s.Len)
			}
		}
		sum += s.Len
	}
	if !seenMeta {
		t.Fatal("meta section missing from inspection")
	}
	if sum > uint64(info.Size) {
		t.Fatalf("section payload %d exceeds file size %d", sum, info.Size)
	}

	gobPath := filepath.Join(t.TempDir(), "legacy.tfrec")
	f, err := os.Create(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SaveGob(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	ginfo, err := InspectFile(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	if ginfo.Version != gobFileVersion || ginfo.Legacy || ginfo.Sections != nil {
		t.Fatalf("gob file inspected as %+v", ginfo)
	}

	rawPath := filepath.Join(t.TempDir(), "prose.bin")
	if err := os.WriteFile(rawPath, []byte("no magic here, just prose padding out twelve bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	linfo, err := InspectFile(rawPath)
	if err != nil {
		t.Fatal(err)
	}
	if !linfo.Legacy {
		t.Fatal("headerless file not flagged legacy")
	}
}

// Loading a v4 file through the heap path (Load) must produce the same
// trainable model Save started from — raw factors bit-identical.
func TestLoadV4HeapRoundTrip(t *testing.T) {
	m, path := snapshotWorld(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if back.User.MaxAbsDiff(m.User) != 0 || back.Node.MaxAbsDiff(m.Node) != 0 ||
		back.Next.MaxAbsDiff(m.Next) != 0 || back.Bias.MaxAbsDiff(m.Bias) != 0 {
		t.Fatal("heap v4 round trip changed raw factors")
	}
	if back.Precision != m.Precision || back.P != m.P {
		t.Fatalf("metadata drift: precision %v/%v params %+v/%+v", back.Precision, m.Precision, back.P, m.P)
	}
	if math.Abs(float64(back.NumUsers()-m.NumUsers())) != 0 {
		t.Fatalf("user count drift: %d vs %d", back.NumUsers(), m.NumUsers())
	}
}
