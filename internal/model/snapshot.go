package model

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
)

// Snapshot is a servable model image plus the resources backing it. For a
// v4 file on a platform with mmap support the Composed snapshot's slabs
// are zero-copy views of a shared read-only mapping (Mapped reports
// true), and Close unmaps — so the caller must guarantee no request still
// touches the snapshot when it closes it (internal/serve refcounts
// exactly this). For v1–v3 files, or when mapping is unavailable, the
// snapshot is heap-backed and Close only releases the descriptor.
type Snapshot struct {
	// Composed is the servable snapshot; its slabs may alias the mapping.
	Composed *Composed
	// Format is the file format version the snapshot came from
	// (0 = legacy headerless gob).
	Format int
	// Mapped reports whether the slabs are zero-copy views of a file
	// mapping rather than heap memory.
	Mapped bool
	// Path is the file the snapshot was loaded from.
	Path string

	mapping   []byte
	closeFn   func() error
	closeOnce sync.Once
}

// Close releases the snapshot's backing resources (unmapping the file for
// a mapped snapshot). It is idempotent. After Close returns, no slab of
// the Composed snapshot may be touched.
func (s *Snapshot) Close() error {
	var err error
	s.closeOnce.Do(func() {
		if s.closeFn != nil {
			err = s.closeFn()
		}
	})
	return err
}

// LoadFile opens a model file for serving. v4 files are memory-mapped and
// wrapped zero-copy (no Compose() pass, no quantization pass — the file
// carries every precomputed tier, validated by checksum without faulting
// the mapping in); when mapping is unavailable the same flat image is
// served from one aligned heap buffer. v1–v3 and legacy gob files fall
// back to the Load + Compose path. Use Load when the trainable *TF is
// needed; LoadFile is the serving path.
func LoadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	var prefix [headerLen]byte
	n, err := io.ReadFull(f, prefix[:])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		f.Close()
		return nil, fmt.Errorf("model: read header: %w", err)
	}
	version := uint32(0)
	if n == headerLen && bytes.Equal(prefix[:len(fileMagic)], fileMagic[:]) {
		version = binary.BigEndian.Uint32(prefix[len(fileMagic):])
	}
	if version == 4 {
		return loadFileV4(f, path)
	}
	// v1–v3 / legacy gob: decode on the heap and compose.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("model: %w", err)
	}
	m, err := Load(bufio.NewReaderSize(f, 1<<20))
	f.Close()
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Composed: m.Compose(),
		Format:   int(version),
		Path:     path,
	}, nil
}

// loadFileV4 maps (or, failing that, reads) an open v4 file and builds the
// zero-copy snapshot. Checksums are verified by streaming reads of the
// file descriptor — through the page cache, not the mapping — so loading
// a multi-gigabyte model leaves resident memory flat.
func loadFileV4(f *os.File, path string) (*Snapshot, error) {
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("model: %w", err)
	}
	size := st.Size()
	if size < headerV4Len || size > maxFileBytesV4 {
		f.Close()
		return nil, v4err("file size %d out of range", size)
	}
	if data, merr := mmapFile(f, size); merr == nil {
		s, perr := parseV4(data, crcOverFile(f))
		if perr != nil {
			munmapFile(data)
			f.Close()
			return nil, perr
		}
		c, cerr := composedFromSections(s)
		if cerr != nil {
			munmapFile(data)
			f.Close()
			return nil, cerr
		}
		return &Snapshot{
			Composed: c,
			Format:   4,
			Mapped:   true,
			Path:     path,
			mapping:  data,
			closeFn: func() error {
				merr := munmapFile(data)
				if cerr := f.Close(); merr == nil {
					merr = cerr
				}
				return merr
			},
		}, nil
	}
	// no mmap on this platform: one aligned heap image, still zero-parse
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("model: %w", err)
	}
	data, err := readV4Body(bufio.NewReaderSize(f, 1<<20), nil)
	f.Close()
	if err != nil {
		return nil, err
	}
	s, err := parseV4(data, crcOverBytes(data))
	if err != nil {
		return nil, err
	}
	c, err := composedFromSections(s)
	if err != nil {
		return nil, err
	}
	return &Snapshot{Composed: c, Format: 4, Path: path}, nil
}

// crcOverFile checksums a byte range by streaming it from the descriptor
// in bounded chunks. The reads go through the page cache (shared,
// reclaimable) instead of faulting the mapping into process-resident
// memory — the difference between flat and full-model RSS at load time.
func crcOverFile(f *os.File) func(off, n uint64) (uint32, error) {
	buf := make([]byte, 1<<20)
	return func(off, n uint64) (uint32, error) {
		var crc uint32
		for n > 0 {
			chunk := uint64(len(buf))
			if chunk > n {
				chunk = n
			}
			m, err := f.ReadAt(buf[:chunk], int64(off))
			if err != nil {
				return 0, err
			}
			crc = crc32Update(crc, buf[:m])
			off += uint64(m)
			n -= uint64(m)
		}
		return crc, nil
	}
}

// SectionInfo describes one v4 section for inspection tooling.
type SectionInfo struct {
	ID      uint32
	Name    string
	Offset  uint64
	Len     uint64
	CRC     uint32
	Aligned bool // offset is 64-byte aligned as the format requires
}

// FileInfo is InspectFile's summary of a model file on disk.
type FileInfo struct {
	Path    string
	Size    int64
	Version uint32 // 0 for legacy headerless gob
	Legacy  bool   // no TFRECMDL header at all
	// Sections lists the v4 section table (nil for gob formats).
	Sections []SectionInfo
}

// InspectFile reads a model file's header — and, for v4, its section
// table — without loading the model. It validates only what it needs to
// walk the table safely; use LoadFile/Load for full checksum validation.
func InspectFile(path string) (*FileInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	info := &FileInfo{Path: path, Size: st.Size()}
	var prefix [headerLen]byte
	n, _ := io.ReadFull(f, prefix[:])
	if n < headerLen || !bytes.Equal(prefix[:len(fileMagic)], fileMagic[:]) {
		info.Legacy = true
		return info, nil
	}
	info.Version = binary.BigEndian.Uint32(prefix[len(fileMagic):])
	if info.Version != 4 {
		return info, nil
	}
	var rest [headerV4Len - headerLen]byte
	if _, err := io.ReadFull(f, rest[:]); err != nil {
		return nil, v4err("file shorter than the %d-byte header", headerV4Len)
	}
	count := binary.LittleEndian.Uint32(rest[0:])
	if count == 0 || count > maxSectionsV4 {
		return nil, v4err("hostile section count %d (max %d)", count, maxSectionsV4)
	}
	table := make([]byte, uint64(count)*tableEntryV4Len)
	if _, err := io.ReadFull(f, table); err != nil {
		return nil, v4err("section table extends past EOF")
	}
	info.Sections = make([]SectionInfo, count)
	for i := range info.Sections {
		e := table[i*tableEntryV4Len:]
		id := binary.LittleEndian.Uint32(e[0:])
		si := SectionInfo{
			ID:     id,
			Name:   sectionNamesV4[id],
			CRC:    binary.LittleEndian.Uint32(e[4:]),
			Offset: binary.LittleEndian.Uint64(e[8:]),
			Len:    binary.LittleEndian.Uint64(e[16:]),
		}
		if si.Name == "" {
			si.Name = fmt.Sprintf("unknown(%d)", id)
		}
		si.Aligned = si.Offset%sectionAlignV4 == 0
		info.Sections[i] = si
	}
	return info, nil
}
