// Package model defines the taxonomy-aware temporal latent factor model
// (TF) of Kanagal et al. (VLDB 2012) §3: per-user factors, per-taxonomy-
// node offset factors whose path sums form the effective item factors
// (Eq. 1), next-item offset factors for short-term dynamics, and the
// order-N Markov affinity score (Eq. 2–3).
//
// The plain matrix-factorization baselines are exact special cases:
// MF(B) == TF with TaxonomyLevels=1 and MarkovOrder=B; in particular
// MF(0) is classic BPR-MF and MF(1) is FPMC (§7.2).
package model

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// Params are the TF hyper-parameters. The two structural knobs carry the
// paper's names in comments: TaxonomyLevels is taxonomyUpdateLevels (U) and
// MarkovOrder is maxPrevtransactions (B/N).
type Params struct {
	// K is the factor dimensionality.
	K int
	// TaxonomyLevels (taxonomyUpdateLevels, U) is how many path levels
	// from the leaf upward carry trained offsets. U=1 uses only the item
	// level (plain latent factor model); U=4 on the paper's tree uses
	// item + three category levels.
	TaxonomyLevels int
	// MarkovOrder (maxPrevtransactions, B) is how many previous
	// transactions feed the short-term term of Eq. 3. 0 disables it.
	MarkovOrder int
	// Alpha scales the exponential-decay transaction weights
	// α_n = Alpha·e^(−n/N) of Eq. 3.
	Alpha float64
	// InitStd is the standard deviation of the Gaussian factor
	// initialization.
	InitStd float64
	// UseBias enables per-item popularity biases, which §2.1 of the paper
	// mentions but omits "for simplicity of exposition". Like the factors,
	// biases are composed over the taxonomy — every node carries a bias
	// offset and an item's bias is its path sum — so popular categories
	// lift their items (and new items inherit their category's
	// popularity). User biases are omitted: they cancel in the BPR pair
	// difference and are unidentifiable.
	UseBias bool
	// UniformDecay switches the Markov weights from the paper's
	// exponential decay to uniform α_n = Alpha/N — the ablation DESIGN.md
	// §6 calls out.
	UniformDecay bool
}

// DefaultParams returns sensible defaults: K=20, full taxonomy use is left
// to the caller (TaxonomyLevels=1 is plain MF).
func DefaultParams() Params {
	return Params{K: 20, TaxonomyLevels: 1, MarkovOrder: 0, Alpha: 1.0, InitStd: 0.01}
}

// Validate checks the parameter block.
func (p Params) Validate() error {
	if p.K <= 0 {
		return fmt.Errorf("model: K must be positive, got %d", p.K)
	}
	if p.TaxonomyLevels < 1 {
		return fmt.Errorf("model: TaxonomyLevels must be >= 1, got %d", p.TaxonomyLevels)
	}
	if p.MarkovOrder < 0 {
		return fmt.Errorf("model: MarkovOrder must be >= 0, got %d", p.MarkovOrder)
	}
	if p.InitStd < 0 {
		return fmt.Errorf("model: InitStd must be >= 0, got %v", p.InitStd)
	}
	return nil
}

// DecayWeights returns the Markov weights α_1..α_N of Eq. 3
// (α_n = Alpha·e^(−n/N), or Alpha/N with UniformDecay); index 0 holds α_1.
// Nil when MarkovOrder is 0.
func (p Params) DecayWeights() []float64 {
	if p.MarkovOrder == 0 {
		return nil
	}
	w := make([]float64, p.MarkovOrder)
	for n := 1; n <= p.MarkovOrder; n++ {
		if p.UniformDecay {
			w[n-1] = p.Alpha / float64(p.MarkovOrder)
		} else {
			w[n-1] = p.Alpha * math.Exp(-float64(n)/float64(p.MarkovOrder))
		}
	}
	return w
}

// TF is the model state Θ = {vU, wI, wI→•}. User rows are user factors;
// Node and Next rows are per-taxonomy-node offsets for the item and
// next-item factor trees respectively. Offsets outside the trained band
// (path positions >= TaxonomyLevels, counted from the leaf) are zero at
// initialization and never updated, so effective factors can always be
// composed by summing the full path to the root.
type TF struct {
	P    Params
	Tree *taxonomy.Tree

	// Precision is the serving precision preference persisted with the
	// model (file format v2): PrecisionDefault lets the server choose
	// (which resolves to the two-stage f32 pipeline). It does not affect
	// training, only how snapshots of this model are swept.
	Precision Precision

	User *vecmath.Matrix // numUsers x K
	Node *vecmath.Matrix // numNodes x K: item-offset factors wI
	Next *vecmath.Matrix // numNodes x K: next-item offsets wI→•
	// Bias is the per-node popularity bias offset (numNodes x 1); an
	// item's bias is its path sum. Zero-initialized and only trained when
	// P.UseBias is set, so it is inert otherwise.
	Bias *vecmath.Matrix

	// paths holds, for every item, the node ids on its path to the root
	// (leaf first), flattened with stride pathLen.
	paths   []int32
	pathLen int
	// trainedBand = min(TaxonomyLevels, pathLen): the number of leading
	// path positions whose offsets receive gradient updates.
	trainedBand int

	weights []float64 // cached DecayWeights
}

// New allocates and initializes a TF model for numUsers users over tree.
// Only offsets in the trained band get Gaussian initialization, which keeps
// untouched levels exactly zero (so e.g. TaxonomyLevels=1 is bit-for-bit a
// flat latent factor model).
func New(tree *taxonomy.Tree, numUsers int, p Params, rng *vecmath.RNG) (*TF, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if numUsers <= 0 {
		return nil, fmt.Errorf("model: numUsers must be positive, got %d", numUsers)
	}
	if !tree.IsUniformDepth() {
		return nil, fmt.Errorf("model: taxonomy must have uniform leaf depth for the additive composition of Eq. 1")
	}
	pathLen := tree.Depth() + 1
	band := p.TaxonomyLevels
	if band > pathLen {
		band = pathLen
	}
	// Factor matrices are row-padded to cache-line boundaries: the
	// multi-core trainer has goroutines updating adjacent rows
	// concurrently, and unpadded 8·K-byte rows would false-share lines.
	m := &TF{
		P:           p,
		Tree:        tree,
		User:        vecmath.NewMatrixPadded(numUsers, p.K),
		Node:        vecmath.NewMatrixPadded(tree.NumNodes(), p.K),
		Next:        vecmath.NewMatrixPadded(tree.NumNodes(), p.K),
		Bias:        vecmath.NewMatrixPadded(tree.NumNodes(), 1),
		pathLen:     pathLen,
		trainedBand: band,
		weights:     p.DecayWeights(),
	}
	m.User.FillGaussian(rng, p.InitStd)

	// Precompute item paths once; the SGD inner loop walks them millions
	// of times.
	m.paths = make([]int32, tree.NumItems()*pathLen)
	buf := make([]int32, 0, pathLen)
	for item := 0; item < tree.NumItems(); item++ {
		buf = m.Tree.PathToRoot(tree.ItemNode(item), buf[:0])
		copy(m.paths[item*pathLen:(item+1)*pathLen], buf)
	}

	// Gaussian-init only the trained band of the offset trees, in level
	// order so a fixed seed always yields the same model.
	minDepth := tree.Depth() - band + 1
	for d := minDepth; d <= tree.Depth(); d++ {
		if d < 0 {
			continue
		}
		for _, n := range tree.Level(d) {
			fillRowGaussian(m.Node.Row(int(n)), rng, p.InitStd)
			fillRowGaussian(m.Next.Row(int(n)), rng, p.InitStd)
		}
	}
	return m, nil
}

// TrainedNode reports whether node's offsets are inside the trained band
// (depths Depth()−TrainedBand+1 .. Depth()).
func (m *TF) TrainedNode(node int) bool {
	return m.Tree.DepthOf(node) >= m.Tree.Depth()-m.trainedBand+1
}

func fillRowGaussian(row []float64, rng *vecmath.RNG, std float64) {
	for i := range row {
		row[i] = rng.NormFloat64() * std
	}
}

// NumUsers returns the user count the model was built for.
func (m *TF) NumUsers() int { return m.User.Rows() }

// NumItems returns the item (leaf) count.
func (m *TF) NumItems() int { return m.Tree.NumItems() }

// K returns the factor dimensionality.
func (m *TF) K() int { return m.P.K }

// PathLen returns the item path length (tree depth + 1).
func (m *TF) PathLen() int { return m.pathLen }

// TrainedBand returns min(TaxonomyLevels, PathLen): how many leading path
// positions are updated by training.
func (m *TF) TrainedBand() int { return m.trainedBand }

// ItemPath returns item's full path to the root (leaf first) as a shared
// read-only slice.
func (m *TF) ItemPath(item int) []int32 {
	return m.paths[item*m.pathLen : (item+1)*m.pathLen]
}

// ItemFactorInto composes the effective item factor vI of Eq. 1 into dst:
// the sum of the node offsets along the item's path.
func (m *TF) ItemFactorInto(item int, dst []float64) {
	vecmath.Zero(dst)
	for _, node := range m.ItemPath(item) {
		vecmath.Add(dst, m.Node.Row(int(node)))
	}
}

// NextFactorInto composes the effective next-item factor vI→• into dst.
func (m *TF) NextFactorInto(item int, dst []float64) {
	vecmath.Zero(dst)
	for _, node := range m.ItemPath(item) {
		vecmath.Add(dst, m.Next.Row(int(node)))
	}
}

// NodeFactorInto composes the effective factor of any taxonomy node into
// dst by summing offsets from the node to the root (§5.1 uses these to
// rank categories).
func (m *TF) NodeFactorInto(node int, dst []float64) {
	vecmath.Zero(dst)
	cur := node
	for {
		vecmath.Add(dst, m.Node.Row(cur))
		if cur == m.Tree.Root() {
			return
		}
		cur = m.Tree.Parent(cur)
	}
}

// BuildQueryInto writes the user's query vector at a time step into q:
// q = vU_u + Σ_n (α_n/|B_{t−n}|)·Σ_{ℓ∈B_{t−n}} vI→•_ℓ, so that the Eq. 3
// score of any item j is simply ⟨q, vI_j⟩. prev lists the user's previous
// baskets most-recent first (prev[0] = B_{t−1}); entries beyond MarkovOrder
// are ignored, missing entries contribute nothing.
func (m *TF) BuildQueryInto(user int, prev []dataset.Basket, q []float64) {
	vecmath.Copy(q, m.User.Row(user))
	if m.P.MarkovOrder == 0 {
		return
	}
	buf := make([]float64, m.P.K)
	for n := 0; n < len(prev) && n < m.P.MarkovOrder; n++ {
		basket := prev[n]
		if len(basket) == 0 {
			continue
		}
		coef := m.weights[n] / float64(len(basket))
		for _, item := range basket {
			m.NextFactorInto(int(item), buf)
			vecmath.AddScaled(q, coef, buf)
		}
	}
}

// ItemBias returns the composed popularity bias of item (0 unless UseBias
// trained it).
func (m *TF) ItemBias(item int) float64 {
	var b float64
	for _, node := range m.ItemPath(item) {
		b += m.Bias.Row(int(node))[0]
	}
	return b
}

// Score returns the Eq. 3 affinity ⟨q, vI_item⟩ (plus the composed item
// bias when UseBias) for a prebuilt query.
func (m *TF) Score(q []float64, item int) float64 {
	var s float64
	for _, node := range m.ItemPath(item) {
		s += vecmath.Dot(q, m.Node.Row(int(node)))
	}
	if m.P.UseBias {
		s += m.ItemBias(item)
	}
	return s
}

// GrowUsers extends the model to newNumUsers, keeping every existing user
// factor and Gaussian-initializing the new rows. Items cold-start through
// the taxonomy (§1); users cold-start by arriving here and getting their
// factors fitted by a warm-start training pass over their transactions.
func (m *TF) GrowUsers(newNumUsers int, rng *vecmath.RNG) error {
	if newNumUsers < m.NumUsers() {
		return fmt.Errorf("model: cannot shrink users from %d to %d", m.NumUsers(), newNumUsers)
	}
	if newNumUsers == m.NumUsers() {
		return nil
	}
	grown := vecmath.NewMatrixPadded(newNumUsers, m.P.K)
	for u := 0; u < m.User.Rows(); u++ {
		vecmath.Copy(grown.Row(u), m.User.Row(u))
	}
	for u := m.User.Rows(); u < newNumUsers; u++ {
		fillRowGaussian(grown.Row(u), rng, m.P.InitStd)
	}
	m.User = grown
	return nil
}

// PrevBaskets collects up to MarkovOrder baskets preceding transaction t
// in history, most-recent first — the B_{t−1}..B_{t−N} context of Eq. 3.
func (m *TF) PrevBaskets(history []dataset.Basket, t int) []dataset.Basket {
	if m.P.MarkovOrder == 0 {
		return nil
	}
	var prev []dataset.Basket
	for n := 1; n <= m.P.MarkovOrder && t-n >= 0; n++ {
		prev = append(prev, history[t-n])
	}
	return prev
}
