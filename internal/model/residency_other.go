//go:build !linux

package model

import "errors"

// Residency is only implemented on linux (mincore); elsewhere it reports
// an error and tfrec-inspect omits the residency line.
func (s *Snapshot) Residency() (resident, total int, err error) {
	return 0, 0, errors.New("model: page residency unsupported on this platform")
}
