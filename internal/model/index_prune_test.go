package model

import (
	"math"
	"testing"

	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// TestSubtreeBoundDominatesScores is the pruning invariant: for every node
// with leaf descendants and every item in its subtree,
// ScoreItem(item, q) ≤ SubtreeBound(node, q) + ItemPruneBound(q).
func TestSubtreeBoundDominatesScores(t *testing.T) {
	for _, useBias := range []bool{false, true} {
		_, c := indexWorld(t, useBias)
		ix, tree := c.Index, c.Tree
		for _, seed := range []uint64{3, 11, 29} {
			q := indexQuery(c.K(), seed)
			eps := ix.ItemPruneBound(q)
			for node := 0; node < tree.NumNodes(); node++ {
				bound := ix.SubtreeBound(node, q)
				for item := range subtreeItems(tree, node) {
					if s := ix.ScoreItem(item, q); s > bound+eps {
						t.Fatalf("useBias=%v node %d item %d: score %v exceeds bound %v + eps %v",
							useBias, node, item, s, bound, eps)
					}
				}
			}
		}
	}
}

// TestSubtreeBoundLeafIsTight pins the leaf base case: a leaf's envelope
// is its own row, so its bound equals its score up to evaluation rounding.
func TestSubtreeBoundLeafIsTight(t *testing.T) {
	_, c := indexWorld(t, true)
	ix, tree := c.Index, c.Tree
	q := indexQuery(c.K(), 41)
	eps := ix.ItemPruneBound(q)
	for item := 0; item < c.NumItems(); item++ {
		leaf := tree.ItemNode(item)
		bound := ix.SubtreeBound(leaf, q)
		score := ix.ScoreItem(item, q)
		if math.Abs(bound-score) > eps {
			t.Fatalf("item %d: leaf bound %v differs from score %v beyond eps %v", item, bound, score, eps)
		}
	}
}

// TestSubtreeBoundMonotoneUpTree checks envelope nesting: a parent's bound
// dominates every child's bound (the parent envelope contains the child's
// and its max bias is at least the child's).
func TestSubtreeBoundMonotoneUpTree(t *testing.T) {
	_, c := indexWorld(t, true)
	ix, tree := c.Index, c.Tree
	q := indexQuery(c.K(), 13)
	eps := ix.ItemPruneBound(q)
	for d := tree.Depth(); d >= 1; d-- {
		for _, node := range tree.Level(d) {
			p := tree.Parent(int(node))
			if child, parent := ix.SubtreeBound(int(node), q), ix.SubtreeBound(p, q); child > parent+eps {
				t.Fatalf("node %d bound %v exceeds parent %d bound %v", node, child, p, parent)
			}
		}
	}
}

// An interleaved hand-built tree still gets valid envelopes: bounds are
// folded through the parent chain, not the item ranges, so non-contiguous
// subtrees dominate their items too.
func TestSubtreeBoundNonContiguousTree(t *testing.T) {
	parents := []int{taxonomy.NoParent, 0, 0, 1, 2, 1, 2}
	tree, err := taxonomy.NewFromParents(parents)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(tree, 2, Params{K: 3, TaxonomyLevels: 2, Alpha: 1, InitStd: 0.4, UseBias: true}, vecmath.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	ix := m.Compose().Index
	q := indexQuery(3, 9)
	eps := ix.ItemPruneBound(q)
	for node := 0; node < tree.NumNodes(); node++ {
		bound := ix.SubtreeBound(node, q)
		for item := range subtreeItems(tree, node) {
			if s := ix.ScoreItem(item, q); s > bound+eps {
				t.Fatalf("node %d item %d: score %v exceeds bound %v", node, item, s, bound)
			}
		}
	}
}

// TestItemPruneBoundScalesWithQuery pins the ε shape: zero only for the
// all-zero bias-free case, monotone in |q|, and finite for finite input.
func TestItemPruneBoundScalesWithQuery(t *testing.T) {
	_, c := indexWorld(t, true)
	ix := c.Index
	small := ix.ItemPruneBound([]float64{0.1, 0, 0, 0, 0, 0})
	big := ix.ItemPruneBound([]float64{100, 0, 0, 0, 0, 0})
	if !(small > 0) || !(big > small) {
		t.Fatalf("prune bound not positive-monotone: small=%v big=%v", small, big)
	}
	if inf := ix.ItemPruneBound([]float64{math.Inf(1), 0, 0, 0, 0, 0}); !math.IsInf(inf, 1) {
		t.Fatalf("infinite query should give +Inf eps, got %v", inf)
	}
}

// dfsLayoutCheck asserts the depth-first layout invariants on one tree:
// dfsItems is a permutation of the catalog, every node's span holds
// exactly its subtree's items, and child spans partition the parent's.
func dfsLayoutCheck(t *testing.T, tree *taxonomy.Tree, ix *ScoringIndex) {
	t.Helper()
	dfs := ix.DFSItems()
	if len(dfs) != ix.NumItems() {
		t.Fatalf("dfs order has %d entries, catalog %d", len(dfs), ix.NumItems())
	}
	seen := make(map[int32]bool, len(dfs))
	for _, it := range dfs {
		if seen[it] {
			t.Fatalf("item %d appears twice in DFS order", it)
		}
		seen[it] = true
	}
	for node := 0; node < tree.NumNodes(); node++ {
		lo, hi := ix.DFSSpan(node)
		want := subtreeItems(tree, node)
		if hi-lo != len(want) {
			t.Fatalf("node %d: span width %d, subtree has %d items", node, hi-lo, len(want))
		}
		for _, it := range dfs[lo:hi] {
			if !want[int(it)] {
				t.Fatalf("node %d: span holds item %d outside its subtree", node, it)
			}
		}
		pos := lo
		for _, ch := range tree.Children(node) {
			clo, chi := ix.DFSSpan(int(ch))
			if clo != pos {
				t.Fatalf("node %d child %d: span starts at %d, want %d", node, ch, clo, pos)
			}
			pos = chi
		}
		if len(tree.Children(node)) > 0 && pos != hi {
			t.Fatalf("node %d: child spans end at %d, parent span at %d", node, pos, hi)
		}
	}
	rlo, rhi := ix.DFSSpan(tree.Root())
	if rlo != 0 || rhi != ix.NumItems() {
		t.Fatalf("root span [%d,%d), want [0,%d)", rlo, rhi, ix.NumItems())
	}
}

// TestDFSLayout pins the depth-first layout on a generated world (whose
// interior item ranges interleave) and on a hand-built tree.
func TestDFSLayout(t *testing.T) {
	_, c := indexWorld(t, true)
	dfsLayoutCheck(t, c.Tree, c.Index)

	tree, err := taxonomy.NewFromParents([]int{taxonomy.NoParent, 0, 0, 1, 2, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(tree, 2, Params{K: 3, TaxonomyLevels: 2, Alpha: 1, InitStd: 0.4}, vecmath.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	dfsLayoutCheck(t, tree, m.Compose().Index)
}
