package model

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"

	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// ErrFormat marks structural failures of a TFRECMDL v4 file: truncation,
// checksum mismatches, misaligned or out-of-bounds sections, hostile
// counts. Callers can errors.Is against it; the wrapping message always
// carries the "corrupt or truncated" phrasing Load has used since v1.
var ErrFormat = errors.New("invalid TFRECMDL v4 structure")

func v4err(format string, args ...any) error {
	detail := fmt.Sprintf(format, args...)
	return fmt.Errorf("model: corrupt or truncated model file (format version 4): %w: %s", ErrFormat, detail)
}

// sectionsV4 is a parsed-and-verified v4 file: the decoded meta plus a
// byte view per section. Views alias the caller's buffer (heap or
// mapping); nothing has been copied.
type sectionsV4 struct {
	meta metaV4
	sec  map[uint32][]byte
}

// expectedSectionLens derives every section's exact byte length from the
// meta counts. All arithmetic is uint64 on operands already bounded by
// validateMetaV4, so no product can overflow.
func expectedSectionLens(mt metaV4) map[uint32]uint64 {
	n, it, u, k, d := mt.numNodes, mt.numItems, mt.numUsers, mt.k, mt.depth
	return map[uint32]uint64{
		secMeta:          metaV4Len,
		secTreeParent:    4 * n,
		secTreeDepth:     4 * n,
		secTreeChildOff:  4 * (n + 1),
		secTreeChildList: 4 * (n - 1),
		secTreeLevelOff:  4 * (d + 2),
		secTreeLevelList: 4 * n,
		secTreeItemNode:  4 * it,
		secTreeNodeItem:  4 * n,
		secRawUser:       8 * u * k,
		secRawNode:       8 * n * k,
		secRawNext:       8 * n * k,
		secRawBias:       8 * n,
		secEffNode:       8 * n * k,
		secEffNext:       8 * n * k,
		secEffBias:       8 * n,
		secItemFactors:   8 * it * k,
		secItemBias:      8 * it,
		secItem32:        4 * it * k,
		secItemBias32:    4 * it,
		secNode32:        4 * n * k,
		secNodeBias32:    4 * n,
		secItemI8:        it * k,
		secItemScaleI8:   8 * it,
		secItemOffsetI8:  8 * it,
		secNodeI8:        n * k,
		secNodeScaleI8:   8 * n,
		secNodeOffsetI8:  8 * n,
		secItemCat:       4 * (d + 1) * it,
		secLevelPos:      4 * n,
		secItemLo:        4 * n,
		secItemHi:        4 * n,
		secSubtreeLeaves: 4 * n,
		secDFSItems:      4 * it,
		secDFSLo:         4 * n,
		secDFSHi:         4 * n,
		secSubLo:         8 * n * k,
		secSubHi:         8 * n * k,
		secSubMaxBias:    8 * n,
		secNodeBias:      8 * n,
	}
}

// validateMetaV4 bounds every count before any count-derived allocation
// or multiplication happens. The bounds are generous for real models and
// tiny next to what a hostile 8-byte field could otherwise demand.
func validateMetaV4(mt metaV4) error {
	const (
		maxNodes = 1<<31 - 2 // node ids (and n+1 offsets) are int32
		maxUsers = 1 << 40
		maxK     = 1 << 20
		maxOrder = 1 << 20 // sizes the decay-weight table (no payload backing)
	)
	switch {
	case mt.numNodes == 0 || mt.numNodes > maxNodes:
		return v4err("node count %d out of range", mt.numNodes)
	case mt.numItems == 0 || mt.numItems > mt.numNodes:
		return v4err("item count %d out of range (nodes %d)", mt.numItems, mt.numNodes)
	case mt.numUsers == 0 || mt.numUsers > maxUsers:
		return v4err("user count %d out of range", mt.numUsers)
	case mt.k == 0 || mt.k > maxK:
		return v4err("factor dimensionality %d out of range", mt.k)
	case mt.depth >= mt.numNodes:
		return v4err("tree depth %d out of range (nodes %d)", mt.depth, mt.numNodes)
	case mt.taxonomyLevels == 0 || mt.taxonomyLevels > maxK:
		return v4err("taxonomy levels %d out of range", mt.taxonomyLevels)
	case mt.markovOrder > maxOrder:
		return v4err("markov order %d exceeds the sanity bound %d", mt.markovOrder, maxOrder)
	case mt.root >= mt.numNodes:
		return v4err("root %d out of range (nodes %d)", mt.root, mt.numNodes)
	case mt.flags&^uint64(metaFlagsKnown) != 0:
		return v4err("unknown flag bits %#x", mt.flags&^uint64(metaFlagsKnown))
	case mt.precision > uint64(PrecisionInt8):
		return v4err("unknown precision %d", mt.precision)
	case math.IsNaN(mt.alpha) || math.IsInf(mt.alpha, 0):
		return v4err("non-finite alpha")
	case math.IsNaN(mt.initStd) || math.IsInf(mt.initStd, 0) || mt.initStd < 0:
		return v4err("invalid init stddev")
	}
	return nil
}

// parseV4 validates a complete v4 file image and returns byte views of
// its sections. data must be the whole file (prefix included); crcOf
// computes the CRC-32C of the byte range [off, off+n) — the heap loader
// passes a closure over data itself, the mmap loader a closure that
// streams the range from the file descriptor so checksumming never
// faults the mapping into resident memory.
//
// Validation order is deliberate: header bounds, table checksum, entry
// geometry (alignment, EOF, duplicates), meta sanity, exact per-section
// lengths, then section checksums. Every count is bounded before it is
// used to size anything, so a hostile file dies on a comparison, not an
// allocation.
func parseV4(data []byte, crcOf func(off, n uint64) (uint32, error)) (*sectionsV4, error) {
	if len(data) < headerV4Len {
		return nil, v4err("file shorter than the %d-byte header", headerV4Len)
	}
	if !bytes.Equal(data[:len(fileMagic)], fileMagic[:]) {
		return nil, v4err("magic missing")
	}
	if v := binary.BigEndian.Uint32(data[len(fileMagic):]); v != 4 {
		return nil, v4err("version %d in a v4 parse", v)
	}
	count := binary.LittleEndian.Uint32(data[12:])
	fileSize := binary.LittleEndian.Uint64(data[16:])
	tableCRC := binary.LittleEndian.Uint32(data[24:])
	if count == 0 || count > maxSectionsV4 {
		return nil, v4err("hostile section count %d (max %d)", count, maxSectionsV4)
	}
	if fileSize != uint64(len(data)) {
		return nil, v4err("declared size %d, have %d bytes", fileSize, len(data))
	}
	if fileSize > maxFileBytesV4 {
		return nil, v4err("declared size %d exceeds the format bound", fileSize)
	}
	tableLen := uint64(count) * tableEntryV4Len
	if headerV4Len+tableLen > fileSize {
		return nil, v4err("section table extends past EOF")
	}
	table := data[headerV4Len : headerV4Len+tableLen]
	if got := crc32.Checksum(table, castagnoli); got != tableCRC {
		return nil, v4err("section table checksum mismatch (%08x != %08x)", got, tableCRC)
	}

	type entry struct {
		crc      uint32
		off, len uint64
	}
	entries := make(map[uint32]entry, count)
	for i := uint64(0); i < uint64(count); i++ {
		e := table[i*tableEntryV4Len:]
		id := binary.LittleEndian.Uint32(e[0:])
		ent := entry{
			crc: binary.LittleEndian.Uint32(e[4:]),
			off: binary.LittleEndian.Uint64(e[8:]),
			len: binary.LittleEndian.Uint64(e[16:]),
		}
		name, known := sectionNamesV4[id]
		if !known {
			return nil, v4err("unknown section id %d", id)
		}
		if _, dup := entries[id]; dup {
			return nil, v4err("duplicate section %s", name)
		}
		if ent.off%sectionAlignV4 != 0 {
			return nil, v4err("section %s misaligned at offset %d", name, ent.off)
		}
		if ent.off < headerV4Len+tableLen || ent.off > fileSize || ent.len > fileSize-ent.off {
			return nil, v4err("section %s [%d,+%d) extends past EOF (size %d)", name, ent.off, ent.len, fileSize)
		}
		entries[id] = ent
	}

	me, ok := entries[secMeta]
	if !ok {
		return nil, v4err("meta section missing")
	}
	if me.len != metaV4Len {
		return nil, v4err("meta section length %d, want %d", me.len, metaV4Len)
	}
	mt := decodeMetaV4(data[me.off : me.off+me.len])
	if err := validateMetaV4(mt); err != nil {
		return nil, err
	}
	want := expectedSectionLens(mt)
	if len(entries) != len(want) {
		return nil, v4err("%d sections, want %d", len(entries), len(want))
	}
	for id, wl := range want {
		ent, ok := entries[id]
		if !ok {
			return nil, v4err("section %s missing", sectionNamesV4[id])
		}
		if ent.len != wl {
			return nil, v4err("section %s length %d does not match structure %d", sectionNamesV4[id], ent.len, wl)
		}
	}
	out := &sectionsV4{meta: mt, sec: make(map[uint32][]byte, len(entries))}
	for id, ent := range entries {
		got, err := crcOf(ent.off, ent.len)
		if err != nil {
			return nil, v4err("checksum section %s: %v", sectionNamesV4[id], err)
		}
		if got != ent.crc {
			return nil, v4err("section %s checksum mismatch (%08x != %08x)", sectionNamesV4[id], got, ent.crc)
		}
		out.sec[id] = data[ent.off : ent.off+ent.len]
	}
	return out, nil
}

// crcOverBytes is the heap loader's checksummer: the whole file is already
// in one buffer, so ranges checksum directly.
func crcOverBytes(data []byte) func(off, n uint64) (uint32, error) {
	return func(off, n uint64) (uint32, error) {
		return crc32.Checksum(data[off:off+n], castagnoli), nil
	}
}

// paramsFromMeta reconstructs the hyper-parameter block.
func paramsFromMeta(mt metaV4) Params {
	return Params{
		K:              int(mt.k),
		TaxonomyLevels: int(mt.taxonomyLevels),
		MarkovOrder:    int(mt.markovOrder),
		Alpha:          mt.alpha,
		InitStd:        mt.initStd,
		UseBias:        mt.flags&metaFlagUseBias != 0,
		UniformDecay:   mt.flags&metaFlagUniformDecay != 0,
	}
}

// treeFromSections rebuilds the taxonomy zero-copy from the flat layout
// sections; NewFromLayout re-verifies every structural invariant.
func treeFromSections(s *sectionsV4) (*taxonomy.Tree, error) {
	tree, err := taxonomy.NewFromLayout(
		i32View(s.sec[secTreeParent]),
		i32View(s.sec[secTreeDepth]),
		i32View(s.sec[secTreeChildOff]),
		i32View(s.sec[secTreeChildList]),
		i32View(s.sec[secTreeLevelOff]),
		i32View(s.sec[secTreeLevelList]),
		i32View(s.sec[secTreeItemNode]),
		i32View(s.sec[secTreeNodeItem]),
		int32(s.meta.root),
	)
	if err != nil {
		return nil, v4err("bad taxonomy layout: %v", err)
	}
	if uint64(tree.NumItems()) != s.meta.numItems || uint64(tree.Depth()) != s.meta.depth {
		return nil, v4err("taxonomy shape (%d items, depth %d) contradicts meta (%d, %d)",
			tree.NumItems(), tree.Depth(), s.meta.numItems, s.meta.depth)
	}
	return tree, nil
}

// tfFromSections rebuilds a trainable *TF from the raw factor sections —
// the heap Load path, byte-compatible with what a v3 gob decode returned.
// The raw slabs get the same finiteness screen v3 introduced; the
// precomputed serving sections are ignored here (Compose rebuilds them).
func tfFromSections(s *sectionsV4) (*TF, error) {
	tree, err := treeFromSections(s)
	if err != nil {
		return nil, err
	}
	raws := map[string][]float64{
		"user": f64View(s.sec[secRawUser]),
		"node": f64View(s.sec[secRawNode]),
		"next": f64View(s.sec[secRawNext]),
		"bias": f64View(s.sec[secRawBias]),
	}
	for name, vals := range raws {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("model: non-finite value in %s matrix", name)
			}
		}
	}
	m, err := New(tree, int(s.meta.numUsers), paramsFromMeta(s.meta), vecmath.NewRNG(0))
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	m.Precision = Precision(s.meta.precision)
	m.User.SetCompactData(raws["user"])
	m.Node.SetCompactData(raws["node"])
	m.Next.SetCompactData(raws["next"])
	m.Bias.SetCompactData(raws["bias"])
	return m, nil
}

// composedFromSections wraps the precomputed serving sections in a
// Composed snapshot without a Compose() pass: every slab the ScoringIndex
// would build — composed factors, folded biases, both reduced-precision
// tiers, layout tables, prune envelopes — is a zero-copy view of the file
// image, and the lazy sync.Once builders are burned so no accessor ever
// recomputes (or mutates) anything. The caller owns the backing memory's
// lifetime (Snapshot ties it to the mapping).
func composedFromSections(s *sectionsV4) (*Composed, error) {
	tree, err := treeFromSections(s)
	if err != nil {
		return nil, err
	}
	mt := s.meta
	p := paramsFromMeta(mt)
	n, it, k := int(mt.numNodes), int(mt.numItems), int(mt.k)

	ix := &ScoringIndex{
		k:           k,
		numItems:    it,
		shardItems:  defaultShardItems(k),
		itemFactors: f64View(s.sec[secItemFactors]),
		itemBias:    f64View(s.sec[secItemBias]),
		nodeFactors: f64View(s.sec[secEffNode]),
		nodeBias:    f64View(s.sec[secNodeBias]),

		item32:     vecmath.Matrix32FromData(it, k, f32View(s.sec[secItem32])),
		itemBias32: f32View(s.sec[secItemBias32]),
		node32:     vecmath.Matrix32FromData(n, k, f32View(s.sec[secNode32])),
		nodeBias32: f32View(s.sec[secNodeBias32]),

		itemI8:       vecmath.MatrixI8FromData(it, k, i8View(s.sec[secItemI8])),
		itemScaleI8:  f64View(s.sec[secItemScaleI8]),
		itemOffsetI8: f64View(s.sec[secItemOffsetI8]),
		nodeI8:       vecmath.MatrixI8FromData(n, k, i8View(s.sec[secNodeI8])),
		nodeScaleI8:  f64View(s.sec[secNodeScaleI8]),
		nodeOffsetI8: f64View(s.sec[secNodeOffsetI8]),

		maxItemRowErrI8: mt.maxItemRowErrI8, maxItemScaleI8: mt.maxItemScaleI8,
		maxAbsItemOffsetI8: mt.maxAbsItemOffsetI8,
		maxNodeRowErrI8:    mt.maxNodeRowErrI8, maxNodeScaleI8: mt.maxNodeScaleI8,
		maxAbsNodeOffsetI8: mt.maxAbsNodeOffsetI8,

		maxAbsItemFactor: mt.maxAbsItemFactor, maxAbsItemBias: mt.maxAbsItemBias,
		maxAbsNodeFactor: mt.maxAbsNodeFactor, maxAbsNodeBias: mt.maxAbsNodeBias,

		levelPos:      i32View(s.sec[secLevelPos]),
		nodeDepth:     i32View(s.sec[secTreeDepth]),
		itemLo:        i32View(s.sec[secItemLo]),
		itemHi:        i32View(s.sec[secItemHi]),
		subtreeLeaves: i32View(s.sec[secSubtreeLeaves]),
		dfsItems:      i32View(s.sec[secDFSItems]),
		dfsLo:         i32View(s.sec[secDFSLo]),
		dfsHi:         i32View(s.sec[secDFSHi]),
		subLo:         f64View(s.sec[secSubLo]),
		subHi:         f64View(s.sec[secSubHi]),
		subMaxBias:    f64View(s.sec[secSubMaxBias]),
	}
	// the ancestor table is persisted flat; rebuild only the per-depth
	// slice headers (depth+1 of them — O(depth), not O(catalog))
	cat := i32View(s.sec[secItemCat])
	ix.itemCat = make([][]int32, int(mt.depth)+1)
	for d := range ix.itemCat {
		ix.itemCat[d] = cat[d*it : (d+1)*it : (d+1)*it]
	}
	// burn the lazy builders: every tier above is already materialized, and
	// an accidental ensure* pass would write into (possibly mapped,
	// read-only) memory
	ix.f32Once.Do(func() {})
	ix.i8Once.Do(func() {})
	ix.boundsOnce.Do(func() {})

	return &Composed{
		P:         p,
		Tree:      tree,
		User:      vecmath.MatrixFromCompact(int(mt.numUsers), k, f64View(s.sec[secRawUser])),
		EffNode:   vecmath.MatrixFromCompact(n, k, f64View(s.sec[secEffNode])),
		EffNext:   vecmath.MatrixFromCompact(n, k, f64View(s.sec[secEffNext])),
		EffBias:   vecmath.MatrixFromCompact(n, 1, f64View(s.sec[secEffBias])),
		Index:     ix,
		Precision: Precision(mt.precision),
		weights:   p.DecayWeights(),
	}, nil
}

// alignedBytes allocates a size-byte buffer backed by a []uint64, so the
// zero-copy float64 views over 64-aligned section offsets are themselves
// 8-byte aligned regardless of allocator behavior.
func alignedBytes(size uint64) []byte {
	if size == 0 {
		return nil
	}
	backing := make([]uint64, (size+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&backing[0])), size)
}

// readV4Body reads the remainder of a v4 stream after the 12-byte prefix
// has been consumed, returning the complete aligned file image. Growth is
// incremental and driven by bytes actually received, so a hostile header
// declaring a huge size dies with a truncation error after at most ~2x
// the real data, never on a giant up-front allocation.
func readV4Body(r io.Reader, prefix []byte) ([]byte, error) {
	rest := make([]byte, headerV4Len-len(prefix))
	if _, err := io.ReadFull(r, rest); err != nil {
		return nil, v4err("file shorter than the %d-byte header", headerV4Len)
	}
	header := append(append([]byte{}, prefix...), rest...)
	fileSize := binary.LittleEndian.Uint64(header[16:])
	if fileSize < headerV4Len || fileSize > maxFileBytesV4 {
		return nil, v4err("declared size %d out of range", fileSize)
	}
	const chunk = 1 << 20
	capNow := fileSize
	if capNow > chunk {
		capNow = chunk
	}
	buf := alignedBytes(capNow)
	n := uint64(copy(buf, header))
	for n < fileSize {
		if n == uint64(len(buf)) {
			grow := uint64(len(buf)) * 2
			if grow > fileSize {
				grow = fileSize
			}
			next := alignedBytes(grow)
			copy(next, buf)
			buf = next
		}
		m, err := r.Read(buf[n:])
		n += uint64(m)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("model: read model file: %w", err)
		}
	}
	if n < fileSize {
		return nil, v4err("declared size %d but stream ended after %d bytes", fileSize, n)
	}
	return buf[:fileSize], nil
}

// loadV4Heap is Load's v4 arm: read the whole stream into an aligned
// buffer, validate, and rebuild the trainable model from the raw sections.
func loadV4Heap(r io.Reader, prefix []byte) (*TF, error) {
	data, err := readV4Body(r, prefix)
	if err != nil {
		return nil, err
	}
	s, err := parseV4(data, crcOverBytes(data))
	if err != nil {
		return nil, err
	}
	return tfFromSections(s)
}
