package model

import (
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// ScoringIndex is the flattened serving view of a Composed snapshot: the
// effective factors laid out as contiguous row-major slabs so the hot
// scoring loops are branch-free sequential sweeps instead of
// tree-indirected Row lookups. Compose builds one per snapshot; it is
// immutable and safe for concurrent use.
//
// Two slabs are kept. The item-major slab orders the leaves by item id and
// backs the full-catalog sweep (ItemScoresInto, streaming top-k). The
// node-major slab orders every taxonomy node by node id and backs cascaded
// inference, which scores arbitrary per-level frontiers. The composed
// popularity bias is folded into a parallel array per slab — all zeros for
// models trained without UseBias — so scoring never branches on P.UseBias.
type ScoringIndex struct {
	k        int
	numItems int

	// shardItems is the item count per sweep shard (the last shard may be
	// short). Shards partition the item-major slab into cache-sized
	// contiguous ranges that the parallel inference pool sweeps
	// concurrently; scores are identical whichever shard an item lands in
	// because every row's dot product is computed independently.
	shardItems int

	itemFactors []float64 // numItems x k, item-major
	itemBias    []float64 // numItems

	nodeFactors []float64 // numNodes x k, node-major
	nodeBias    []float64 // numNodes

	// itemCat[d][i] is item i's ancestor node at taxonomy depth d
	// (itemCat[0] is all-root, itemCat[Depth] the leaf nodes themselves);
	// diversified ranking resolves category quotas through it without
	// walking parent pointers per item.
	itemCat [][]int32

	// levelPos[node] is the node's offset within its taxonomy level
	// (tree.Level(depth(node))); per-level dense tables are indexed by it.
	levelPos []int32
}

// buildIndex flattens the composed factor matrices for a taxonomy. Bias is
// folded only when useBias is set, matching the scoring semantics of
// Composed.NodeScore.
func buildIndex(tree *taxonomy.Tree, eff *vecmath.Matrix, effBias *vecmath.Matrix, useBias bool) *ScoringIndex {
	k := eff.Cols()
	numItems := tree.NumItems()
	numNodes := tree.NumNodes()
	ix := &ScoringIndex{
		k:           k,
		numItems:    numItems,
		itemFactors: make([]float64, numItems*k),
		itemBias:    make([]float64, numItems),
		nodeFactors: make([]float64, numNodes*k),
		nodeBias:    make([]float64, numNodes),
	}
	for node := 0; node < numNodes; node++ {
		copy(ix.nodeFactors[node*k:(node+1)*k], eff.Row(node))
		if useBias {
			ix.nodeBias[node] = effBias.Row(node)[0]
		}
	}
	for item := 0; item < numItems; item++ {
		node := tree.ItemNode(item)
		copy(ix.itemFactors[item*k:(item+1)*k], ix.nodeFactors[node*k:(node+1)*k])
		ix.itemBias[item] = ix.nodeBias[node]
	}
	ix.itemCat = make([][]int32, tree.Depth()+1)
	for d := range ix.itemCat {
		col := make([]int32, numItems)
		for item := 0; item < numItems; item++ {
			col[item] = int32(tree.AncestorAtDepth(tree.ItemNode(item), d))
		}
		ix.itemCat[d] = col
	}
	ix.levelPos = make([]int32, numNodes)
	for d := 0; d <= tree.Depth(); d++ {
		for i, node := range tree.Level(d) {
			ix.levelPos[node] = int32(i)
		}
	}
	ix.shardItems = defaultShardItems(k)
	return ix
}

// shardTargetBytes is the factor-slab footprint a sweep shard aims for:
// small enough that a shard's rows stay resident in a core's L2 while its
// worker streams through them, large enough that shard-claiming overhead
// (one atomic increment per shard) is noise.
const shardTargetBytes = 256 << 10

// defaultShardItems derives the per-shard item count from the factor
// dimensionality, rounded to a multiple of 64 rows so shard boundaries
// stay cache-line aligned for any k.
func defaultShardItems(k int) int {
	if k <= 0 {
		return 64
	}
	n := shardTargetBytes / (k * 8)
	n &^= 63
	if n < 64 {
		n = 64
	}
	return n
}

// ShardItems returns the current items-per-shard of the sweep partition.
func (ix *ScoringIndex) ShardItems() int { return ix.shardItems }

// SetShardItems overrides the sweep shard size — a tuning knob for
// hardware with unusual cache geometry and a lever for tests that need
// specific shard counts. Values below 1 are clamped to 1. It must be
// called before the index is shared across goroutines; the slabs remain
// immutable.
func (ix *ScoringIndex) SetShardItems(n int) {
	if n < 1 {
		n = 1
	}
	ix.shardItems = n
}

// NumShards returns how many shards partition the catalog (zero for an
// empty catalog).
func (ix *ScoringIndex) NumShards() int {
	return (ix.numItems + ix.shardItems - 1) / ix.shardItems
}

// Shard returns the item range [lo, hi) of shard s; the final shard is
// truncated at the catalog end.
func (ix *ScoringIndex) Shard(s int) (lo, hi int) {
	lo = s * ix.shardItems
	hi = lo + ix.shardItems
	if hi > ix.numItems {
		hi = ix.numItems
	}
	return lo, hi
}

// K returns the factor dimensionality.
func (ix *ScoringIndex) K() int { return ix.k }

// NumItems returns the leaf count.
func (ix *ScoringIndex) NumItems() int { return ix.numItems }

// ItemFactor returns item's effective factor as a read-only view into the
// item-major slab.
func (ix *ScoringIndex) ItemFactor(item int) []float64 {
	return ix.itemFactors[item*ix.k : (item+1)*ix.k : (item+1)*ix.k]
}

// ScoreItem returns item's affinity bias + ⟨q, vI_item⟩.
func (ix *ScoringIndex) ScoreItem(item int, q []float64) float64 {
	return vecmath.DotBias(q, ix.ItemFactor(item), ix.itemBias[item])
}

// ScoreNode returns the affinity of any taxonomy node (category or leaf).
func (ix *ScoringIndex) ScoreNode(node int, q []float64) float64 {
	return vecmath.DotBias(q, ix.nodeFactors[node*ix.k:(node+1)*ix.k:(node+1)*ix.k], ix.nodeBias[node])
}

// ItemScoresInto writes the affinity of every item into dst
// (len == NumItems) with one blocked matrix–vector sweep.
func (ix *ScoringIndex) ItemScoresInto(q, dst []float64) {
	vecmath.MatVecBias(ix.itemFactors, ix.k, ix.itemBias, q, dst)
}

// ItemScoresRangeInto scores the contiguous item range [lo, hi) into
// dst[:hi-lo]; the streaming top-k sweep uses it to score fixed-size blocks
// into a stack buffer.
func (ix *ScoringIndex) ItemScoresRangeInto(q []float64, lo, hi int, dst []float64) {
	vecmath.MatVecBias(ix.itemFactors[lo*ix.k:hi*ix.k], ix.k, ix.itemBias[lo:hi], q, dst[:hi-lo])
}

// ItemCategory returns item's ancestor node at the given taxonomy depth.
func (ix *ScoringIndex) ItemCategory(item, depth int) int {
	return int(ix.itemCat[depth][item])
}

// LevelPos returns node's offset within its taxonomy level, a dense key
// for per-level tables.
func (ix *ScoringIndex) LevelPos(node int) int {
	return int(ix.levelPos[node])
}
