package model

import (
	"math"
	"sync"

	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// ScoringIndex is the flattened serving view of a Composed snapshot: the
// effective factors laid out as contiguous row-major slabs so the hot
// scoring loops are branch-free sequential sweeps instead of
// tree-indirected Row lookups. Compose builds one per snapshot; it is
// immutable and safe for concurrent use.
//
// Two slabs are kept. The item-major slab orders the leaves by item id and
// backs the full-catalog sweep (ItemScoresInto, streaming top-k). The
// node-major slab orders every taxonomy node by node id and backs cascaded
// inference, which scores arbitrary per-level frontiers. The composed
// popularity bias is folded into a parallel array per slab — all zeros for
// models trained without UseBias — so scoring never branches on P.UseBias.
type ScoringIndex struct {
	k        int
	numItems int

	// shardItems is the item count per sweep shard (the last shard may be
	// short). Shards partition the item-major slab into cache-sized
	// contiguous ranges that the parallel inference pool sweeps
	// concurrently; scores are identical whichever shard an item lands in
	// because every row's dot product is computed independently.
	shardItems int

	itemFactors []float64 // numItems x k, item-major
	itemBias    []float64 // numItems

	nodeFactors []float64 // numNodes x k, node-major
	nodeBias    []float64 // numNodes

	// Compact float32 mirrors of the two slabs (biases folded the same
	// way), at half the bytes per row, built lazily on first f32 use so
	// f64-pinned deployments never pay the extra 50% slab memory. The
	// two-stage serving pipeline sweeps these and rescores its candidates
	// from the float64 slabs above; the float64 slabs stay authoritative
	// for training, the cascade beam walk and the exact rescore. The
	// item-major f64 rows are exact copies of their leaf node rows and
	// float64→float32 rounding is deterministic, so a leaf scores
	// bit-identically through either f32 slab — exactly as the float64
	// slabs relate.
	f32Once    sync.Once
	item32     *vecmath.Matrix32 // numItems x k
	itemBias32 []float32         // numItems
	node32     *vecmath.Matrix32 // numNodes x k
	nodeBias32 []float32         // numNodes

	// Quantized int8 mirrors of the two slabs — the tier below f32 at a
	// quarter of its bytes per row — with per-row affine code parameters
	// and the slab-wide aggregates ErrBoundI8 charges. Like the f32
	// mirrors they are built lazily on first int8 use; the f64 slabs stay
	// authoritative for the exact rescore. Item rows are exact copies of
	// their leaf node rows and per-row quantization is a deterministic
	// function of the row's values, so a leaf quantizes identically
	// through either slab — the same relation the f32 mirrors keep.
	i8Once       sync.Once
	itemI8       *vecmath.MatrixI8 // numItems x k
	itemScaleI8  []float64         // numItems
	itemOffsetI8 []float64         // numItems
	nodeI8       *vecmath.MatrixI8 // numNodes x k
	nodeScaleI8  []float64         // numNodes
	nodeOffsetI8 []float64         // numNodes

	maxItemRowErrI8, maxItemScaleI8, maxAbsItemOffsetI8 float64
	maxNodeRowErrI8, maxNodeScaleI8, maxAbsNodeOffsetI8 float64

	// Magnitude bounds of the float64 slabs, shared by both reduced-
	// precision tiers' certified error bounds (ensureBounds).
	boundsOnce                       sync.Once
	maxAbsItemFactor, maxAbsItemBias float64
	maxAbsNodeFactor, maxAbsNodeBias float64

	// itemCat[d][i] is item i's ancestor node at taxonomy depth d
	// (itemCat[0] is all-root, itemCat[Depth] the leaf nodes themselves);
	// diversified ranking resolves category quotas through it without
	// walking parent pointers per item.
	itemCat [][]int32

	// levelPos[node] is the node's offset within its taxonomy level
	// (tree.Level(depth(node))); per-level dense tables are indexed by it.
	levelPos []int32

	// nodeDepth[node] is the node's taxonomy depth (root = 0); the
	// subtree-mask fallback uses it to pick the itemCat column to scan.
	nodeDepth []int32

	// itemLo/itemHi bound the item ids of node's leaf descendants:
	// every leaf under node has an item id in [itemLo, itemHi), and
	// subtreeLeaves counts them. When subtreeLeaves == itemHi − itemLo the
	// subtree's leaves exactly fill the range and a taxonomy filter over
	// the node becomes two word-aligned mask operations instead of a
	// catalog scan. Interior nodes of generated taxonomies usually do NOT
	// fill their range — item ids interleave across sibling subtrees — which
	// is what the depth-first layout below exists to repair.
	itemLo, itemHi []int32
	subtreeLeaves  []int32

	// dfsItems lists every item id in depth-first taxonomy order and
	// dfsLo/dfsHi give each node's span into it, so EVERY subtree — however
	// interleaved its raw item ids — is one contiguous run of dfsItems.
	// Child spans partition their parent's span in child order by
	// construction, the invariant the branch-and-bound engine needs to
	// visit each item exactly once while descending.
	dfsItems     []int32 // numItems
	dfsLo, dfsHi []int32 // numNodes

	// Per-subtree score envelopes for branch-and-bound retrieval, built
	// eagerly at Compose() time like the item ranges. subLo/subHi hold, per
	// node and factor dimension, the exact coordinate-wise minimum/maximum
	// over the item rows of the node's subtree (a leaf's envelope is its own
	// row; an interior node's is the fold of its children's — comparisons
	// only, so no rounding enters the envelope itself). subMaxBias holds the
	// maximum folded bias over the subtree's items. SubtreeBound turns an
	// envelope into a query-specific upper bound on every item score under
	// the node; nodes with empty subtrees keep the identity envelope
	// (+Inf/−Inf) and must not be bounded — the pruned engine never visits
	// them because their DFS span is empty.
	subLo, subHi []float64 // numNodes x k
	subMaxBias   []float64 // numNodes
}

// buildIndex flattens the composed factor matrices for a taxonomy. Bias is
// folded only when useBias is set, matching the scoring semantics of
// Composed.NodeScore.
func buildIndex(tree *taxonomy.Tree, eff *vecmath.Matrix, effBias *vecmath.Matrix, useBias bool) *ScoringIndex {
	k := eff.Cols()
	numItems := tree.NumItems()
	numNodes := tree.NumNodes()
	ix := &ScoringIndex{
		k:           k,
		numItems:    numItems,
		itemFactors: make([]float64, numItems*k),
		itemBias:    make([]float64, numItems),
		nodeFactors: make([]float64, numNodes*k),
		nodeBias:    make([]float64, numNodes),
	}
	for node := 0; node < numNodes; node++ {
		copy(ix.nodeFactors[node*k:(node+1)*k], eff.Row(node))
		if useBias {
			ix.nodeBias[node] = effBias.Row(node)[0]
		}
	}
	for item := 0; item < numItems; item++ {
		node := tree.ItemNode(item)
		copy(ix.itemFactors[item*k:(item+1)*k], ix.nodeFactors[node*k:(node+1)*k])
		ix.itemBias[item] = ix.nodeBias[node]
	}
	ix.itemCat = make([][]int32, tree.Depth()+1)
	for d := range ix.itemCat {
		col := make([]int32, numItems)
		for item := 0; item < numItems; item++ {
			col[item] = int32(tree.AncestorAtDepth(tree.ItemNode(item), d))
		}
		ix.itemCat[d] = col
	}
	ix.levelPos = make([]int32, numNodes)
	ix.nodeDepth = make([]int32, numNodes)
	for d := 0; d <= tree.Depth(); d++ {
		for i, node := range tree.Level(d) {
			ix.levelPos[node] = int32(i)
			ix.nodeDepth[node] = int32(d)
		}
	}
	// subtree item bounds, accumulated leaves-up: a leaf spans exactly its
	// own item id; an interior node spans the union of its children.
	ix.itemLo = make([]int32, numNodes)
	ix.itemHi = make([]int32, numNodes)
	ix.subtreeLeaves = make([]int32, numNodes)
	for node := range ix.itemLo {
		ix.itemLo[node] = int32(numItems)
	}
	for item := 0; item < numItems; item++ {
		node := tree.ItemNode(item)
		ix.itemLo[node] = int32(item)
		ix.itemHi[node] = int32(item + 1)
		ix.subtreeLeaves[node] = 1
	}
	for d := tree.Depth(); d >= 1; d-- {
		for _, node := range tree.Level(d) {
			p := tree.Parent(int(node))
			if ix.itemLo[node] < ix.itemLo[p] {
				ix.itemLo[p] = ix.itemLo[node]
			}
			if ix.itemHi[node] > ix.itemHi[p] {
				ix.itemHi[p] = ix.itemHi[node]
			}
			ix.subtreeLeaves[p] += ix.subtreeLeaves[node]
		}
	}
	// depth-first item layout, assigned top-down: the root spans the whole
	// catalog and each node hands its children consecutive sub-spans sized
	// by their leaf counts — the order a recursive DFS would visit them in,
	// without the recursion. A leaf's width-1 span then pins its item into
	// dfsItems, making every subtree a contiguous run even when raw item
	// ids interleave across siblings.
	ix.dfsItems = make([]int32, numItems)
	ix.dfsLo = make([]int32, numNodes)
	ix.dfsHi = make([]int32, numNodes)
	root := tree.Root()
	ix.dfsHi[root] = ix.subtreeLeaves[root]
	for d := 0; d < tree.Depth(); d++ {
		for _, node := range tree.Level(d) {
			pos := ix.dfsLo[node]
			for _, ch := range tree.Children(int(node)) {
				ix.dfsLo[ch] = pos
				pos += ix.subtreeLeaves[ch]
				ix.dfsHi[ch] = pos
			}
		}
	}
	for item := 0; item < numItems; item++ {
		ix.dfsItems[ix.dfsLo[tree.ItemNode(item)]] = int32(item)
	}
	// per-subtree score envelopes, accumulated leaves-up exactly like the
	// item ranges above: seed each leaf node with its own item row and bias,
	// then fold children into parents with coordinate-wise min/max. Only
	// comparisons are involved, so each envelope is the exact coordinate-wise
	// min/max over the subtree's item rows.
	ix.subLo = make([]float64, numNodes*k)
	ix.subHi = make([]float64, numNodes*k)
	ix.subMaxBias = make([]float64, numNodes)
	for i := range ix.subLo {
		ix.subLo[i] = math.Inf(1)
		ix.subHi[i] = math.Inf(-1)
	}
	for node := range ix.subMaxBias {
		ix.subMaxBias[node] = math.Inf(-1)
	}
	for item := 0; item < numItems; item++ {
		node := tree.ItemNode(item)
		copy(ix.subLo[node*k:(node+1)*k], ix.itemFactors[item*k:(item+1)*k])
		copy(ix.subHi[node*k:(node+1)*k], ix.itemFactors[item*k:(item+1)*k])
		ix.subMaxBias[node] = ix.itemBias[item]
	}
	for d := tree.Depth(); d >= 1; d-- {
		for _, lvlNode := range tree.Level(d) {
			node := int(lvlNode)
			p := tree.Parent(node)
			cLo := ix.subLo[node*k : (node+1)*k]
			cHi := ix.subHi[node*k : (node+1)*k]
			pLo := ix.subLo[p*k : (p+1)*k]
			pHi := ix.subHi[p*k : (p+1)*k]
			for j := 0; j < k; j++ {
				if cLo[j] < pLo[j] {
					pLo[j] = cLo[j]
				}
				if cHi[j] > pHi[j] {
					pHi[j] = cHi[j]
				}
			}
			if ix.subMaxBias[node] > ix.subMaxBias[p] {
				ix.subMaxBias[p] = ix.subMaxBias[node]
			}
		}
	}
	ix.shardItems = defaultShardItems(k)
	return ix
}

// ensure32 materializes the compact float32 slabs and the magnitude
// bounds on first use; every f32 accessor funnels through it, so the
// conversion cost (and the extra memory) is paid only by snapshots that
// actually sweep f32. Safe for concurrent first use.
func (ix *ScoringIndex) ensure32() {
	ix.f32Once.Do(func() {
		ix.node32 = vecmath.NewMatrix32(len(ix.nodeBias), ix.k)
		ix.node32.SetFrom(ix.nodeFactors)
		ix.nodeBias32 = make([]float32, len(ix.nodeBias))
		vecmath.Downconvert32(ix.nodeBias32, ix.nodeBias)
		// the f64 item rows are exact copies of their leaf node rows, so
		// rounding them directly yields bitwise the same f32 rows as
		// copying from node32
		ix.item32 = vecmath.NewMatrix32(ix.numItems, ix.k)
		ix.item32.SetFrom(ix.itemFactors)
		ix.itemBias32 = make([]float32, ix.numItems)
		vecmath.Downconvert32(ix.itemBias32, ix.itemBias)
		ix.ensureBounds()
	})
}

// ensureBounds records the f64 slab magnitude bounds on first use by
// either reduced-precision tier; both certified error bounds need them.
func (ix *ScoringIndex) ensureBounds() {
	ix.boundsOnce.Do(func() {
		ix.maxAbsItemFactor = vecmath.MaxAbs(ix.itemFactors)
		ix.maxAbsItemBias = vecmath.MaxAbs(ix.itemBias)
		ix.maxAbsNodeFactor = vecmath.MaxAbs(ix.nodeFactors)
		ix.maxAbsNodeBias = vecmath.MaxAbs(ix.nodeBias)
	})
}

// shardTargetBytes is the factor-slab footprint a sweep shard aims for:
// small enough that a shard's rows stay resident in a core's L2 while its
// worker streams through them, large enough that shard-claiming overhead
// (one atomic increment per shard) is noise.
const shardTargetBytes = 256 << 10

// defaultShardItems derives the per-shard item count from the factor
// dimensionality, rounded to a multiple of 64 rows so shard boundaries
// stay cache-line aligned for any k. Sizing uses the 4-byte float32 rows
// the default sweep streams, so compact slabs double the items per shard;
// a float64 sweep over the same partition reads 2x the target bytes per
// shard, still L2-resident on current cores.
func defaultShardItems(k int) int {
	if k <= 0 {
		return 64
	}
	n := shardTargetBytes / (k * 4)
	n &^= 63
	if n < 64 {
		n = 64
	}
	return n
}

// ShardItems returns the current items-per-shard of the sweep partition.
func (ix *ScoringIndex) ShardItems() int { return ix.shardItems }

// SetShardItems overrides the sweep shard size — a tuning knob for
// hardware with unusual cache geometry and a lever for tests that need
// specific shard counts. Values below 1 are clamped to 1. It must be
// called before the index is shared across goroutines; the slabs remain
// immutable.
func (ix *ScoringIndex) SetShardItems(n int) {
	if n < 1 {
		n = 1
	}
	ix.shardItems = n
}

// NumShards returns how many shards partition the catalog (zero for an
// empty catalog).
func (ix *ScoringIndex) NumShards() int {
	return (ix.numItems + ix.shardItems - 1) / ix.shardItems
}

// Shard returns the item range [lo, hi) of shard s; the final shard is
// truncated at the catalog end.
func (ix *ScoringIndex) Shard(s int) (lo, hi int) {
	lo = s * ix.shardItems
	hi = lo + ix.shardItems
	if hi > ix.numItems {
		hi = ix.numItems
	}
	return lo, hi
}

// K returns the factor dimensionality.
func (ix *ScoringIndex) K() int { return ix.k }

// NumItems returns the leaf count.
func (ix *ScoringIndex) NumItems() int { return ix.numItems }

// ItemFactor returns item's effective factor as a read-only view into the
// item-major slab.
func (ix *ScoringIndex) ItemFactor(item int) []float64 {
	return ix.itemFactors[item*ix.k : (item+1)*ix.k : (item+1)*ix.k]
}

// ScoreItem returns item's affinity bias + ⟨q, vI_item⟩.
func (ix *ScoringIndex) ScoreItem(item int, q []float64) float64 {
	return vecmath.DotBias(q, ix.ItemFactor(item), ix.itemBias[item])
}

// ScoreNode returns the affinity of any taxonomy node (category or leaf).
func (ix *ScoringIndex) ScoreNode(node int, q []float64) float64 {
	return vecmath.DotBias(q, ix.nodeFactors[node*ix.k:(node+1)*ix.k:(node+1)*ix.k], ix.nodeBias[node])
}

// ItemScoresInto writes the affinity of every item into dst
// (len == NumItems) with one blocked matrix–vector sweep.
func (ix *ScoringIndex) ItemScoresInto(q, dst []float64) {
	vecmath.MatVecBias(ix.itemFactors, ix.k, ix.itemBias, q, dst)
}

// ItemScoresRangeInto scores the contiguous item range [lo, hi) into
// dst[:hi-lo]; the streaming top-k sweep uses it to score fixed-size blocks
// into a stack buffer.
func (ix *ScoringIndex) ItemScoresRangeInto(q []float64, lo, hi int, dst []float64) {
	vecmath.MatVecBias(ix.itemFactors[lo*ix.k:hi*ix.k], ix.k, ix.itemBias[lo:hi], q, dst[:hi-lo])
}

// ItemFactor32 returns item's compact float32 factor as a read-only view
// into the item-major f32 slab.
func (ix *ScoringIndex) ItemFactor32(item int) []float32 {
	ix.ensure32()
	return ix.item32.Row(item)
}

// ScoreItem32 returns the float32 affinity bias32 + ⟨q32, vI_item⟩,
// accumulated entirely in float32.
func (ix *ScoringIndex) ScoreItem32(item int, q32 []float32) float32 {
	ix.ensure32()
	return vecmath.DotBias32(q32, ix.item32.Row(item), ix.itemBias32[item])
}

// ScoreNode32 returns the float32 affinity of any taxonomy node.
func (ix *ScoringIndex) ScoreNode32(node int, q32 []float32) float32 {
	ix.ensure32()
	return vecmath.DotBias32(q32, ix.node32.Row(node), ix.nodeBias32[node])
}

// ItemScoresRange32Into scores the contiguous item range [lo, hi) through
// the compact f32 slab into dst[:hi-lo] — the bandwidth-halved twin of
// ItemScoresRangeInto.
func (ix *ScoringIndex) ItemScoresRange32Into(q32 []float32, lo, hi int, dst []float32) {
	ix.ensure32()
	k := ix.k
	vecmath.MatVecBias32(ix.item32.Data()[lo*k:hi*k], k, ix.itemBias32[lo:hi], q32, dst[:hi-lo])
}

// ItemErrBound32 returns ε such that for every item,
// |float64(ScoreItem32(item, f32(q))) − ScoreItem(item, q)| ≤ ε.
// The two-stage pipeline uses it to certify that its candidate boundary
// separates: any item outside the f32 candidate heap scores at most
// τ32 + ε in exact arithmetic.
func (ix *ScoringIndex) ItemErrBound32(q []float64) float64 {
	ix.ensure32()
	return errBound32(q, ix.maxAbsItemFactor, ix.maxAbsItemBias)
}

// NodeErrBound32 is ItemErrBound32 for ScoreNode32 over the node slab.
func (ix *ScoringIndex) NodeErrBound32(q []float64) float64 {
	ix.ensure32()
	return errBound32(q, ix.maxAbsNodeFactor, ix.maxAbsNodeBias)
}

// errBound32 bounds the absolute difference between a score computed by
// the f32 pipeline (f32-rounded factors, query and bias, f32-accumulated
// n-term dot) and the exact f64 score, for any row whose factor entries
// are ≤ maxF and bias ≤ maxB in magnitude. The true error is at most
// ~(n+3)·2⁻²⁴·(Σ|q_i|·maxF + maxB): one rounding of each operand plus the
// standard γ_{n+1} accumulation bound. We charge 2⁻²³ per step — a ≥2x
// slack that also absorbs the (1+u)² cross terms — plus a tiny absolute
// term covering subnormal conversions, whose error is absolute, not
// relative.
func errBound32(q []float64, maxF, maxB float64) float64 {
	var sumAbs float64
	for _, v := range q {
		sumAbs += math.Abs(v)
	}
	const u = 1.0 / (1 << 23)
	return (float64(len(q))+4)*u*(sumAbs*maxF+maxB) + 1e-30
}

// ItemRange returns the item-id bounds [lo, hi) of node's leaf
// descendants and whether those leaves exactly fill the range. Contiguous
// subtrees let a category filter resolve to a single range operation on
// the item-major layout; non-contiguous ones fall back to an
// ancestor-column scan (or, in the pruned engine, to a DFSSpan gather).
func (ix *ScoringIndex) ItemRange(node int) (lo, hi int, contiguous bool) {
	lo, hi = int(ix.itemLo[node]), int(ix.itemHi[node])
	return lo, hi, int(ix.subtreeLeaves[node]) == hi-lo
}

// DFSSpan returns node's span [lo, hi) into the depth-first item order
// (see DFSItems). Unlike ItemRange, the span is contiguous for EVERY node:
// hi−lo always equals the subtree's leaf count, and the spans of a node's
// children partition its own span in child order. An empty span (lo == hi)
// marks a node with no leaf descendants.
func (ix *ScoringIndex) DFSSpan(node int) (lo, hi int) {
	return int(ix.dfsLo[node]), int(ix.dfsHi[node])
}

// DFSItems returns the catalog's item ids in depth-first taxonomy order as
// a shared read-only slice: dfsItems[DFSSpan(node)] is exactly the item
// set of node's subtree, for every node. The branch-and-bound engine
// gather-scores through it when a subtree's raw item ids interleave with
// its siblings'.
func (ix *ScoringIndex) DFSItems() []int32 { return ix.dfsItems }

// SubtreeBound returns an upper bound on ScoreItem(item, q) over every
// item in node's subtree: the maximum folded bias under the node plus, per
// factor dimension, the larger of q_j times the envelope's min and max.
// Since score = bias + Σ_j q_j·v_j and v_j ∈ [subLo_j, subHi_j] for every
// subtree item row, each term is bounded by max(q_j·subLo_j, q_j·subHi_j)
// in real arithmetic; the floating-point evaluation here and the item
// scores both round, which ItemPruneBound's ε absorbs. Callers must only
// pass nodes with at least one leaf descendant (empty subtrees keep the
// ±Inf identity envelope).
func (ix *ScoringIndex) SubtreeBound(node int, q []float64) float64 {
	lo := ix.subLo[node*ix.k : (node+1)*ix.k : (node+1)*ix.k]
	hi := ix.subHi[node*ix.k : (node+1)*ix.k : (node+1)*ix.k]
	b := ix.subMaxBias[node]
	for j, qj := range q {
		a, c := qj*lo[j], qj*hi[j]
		if a > c {
			b += a
		} else {
			b += c
		}
	}
	return b
}

// ItemPruneBound returns ε such that for every item and every node whose
// subtree contains it, ScoreItem(item, q) ≤ SubtreeBound(node, q) + ε. The
// bound dominates in real arithmetic (see SubtreeBound); ε covers the
// float64 rounding of both the n-term score and the n-term bound
// evaluation: each is within the standard γ_{n+1} accumulation error of
// its real value, so their computed difference is within ~2(n+2)·2⁻⁵³ of
// the real (non-negative) gap. We charge 2⁻⁵⁰ per step — 4x slack — plus a
// tiny absolute term for subnormals. The branch-and-bound engine prunes a
// subtree only when its bound plus the serving tier's total ε is strictly
// below the current k-th heap score, so no pruned item could have entered
// the heap.
func (ix *ScoringIndex) ItemPruneBound(q []float64) float64 {
	ix.ensureBounds()
	var sumAbs float64
	for _, v := range q {
		sumAbs += math.Abs(v)
	}
	const u = 1.0 / (1 << 50)
	return (float64(len(q))+4)*u*(sumAbs*ix.maxAbsItemFactor+ix.maxAbsItemBias) + 1e-300
}

// MarkSubtree sets (value = true) or clears the mask bit of every item in
// node's subtree. This is the item-major resolution step of taxonomy
// allow/deny filters: contiguous subtrees become one word-aligned range
// write; the rest scan the node's depth column of the ancestor table.
func (ix *ScoringIndex) MarkSubtree(mask *vecmath.Bitset, node int, value bool) {
	if lo, hi, contiguous := ix.ItemRange(node); contiguous {
		if value {
			mask.SetRange(lo, hi)
		} else {
			mask.UnsetRange(lo, hi)
		}
		return
	}
	col := ix.itemCat[ix.nodeDepth[node]]
	for item, ancestor := range col {
		if int(ancestor) != node {
			continue
		}
		if value {
			mask.Set(item)
		} else {
			mask.Unset(item)
		}
	}
}

// ItemCategory returns item's ancestor node at the given taxonomy depth.
func (ix *ScoringIndex) ItemCategory(item, depth int) int {
	return int(ix.itemCat[depth][item])
}

// LevelPos returns node's offset within its taxonomy level, a dense key
// for per-level tables.
func (ix *ScoringIndex) LevelPos(node int) int {
	return int(ix.levelPos[node])
}
