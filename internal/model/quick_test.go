package model

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// Property: for arbitrary trees and parameters, the composed snapshot
// agrees with direct path-sum scoring on every item and arbitrary queries.
func TestQuickComposedMatchesDirect(t *testing.T) {
	f := func(seed uint16, kRaw, uRaw, bRaw uint8) bool {
		rng := vecmath.NewRNG(uint64(seed) + 1)
		top := 2 + int(uRaw)%3
		tree, err := taxonomy.Generate(taxonomy.GenConfig{
			CategoryLevels: []int{top, top * 2},
			Items:          top*2 + 10 + int(kRaw)%40,
			Skew:           0.3,
		}, rng)
		if err != nil {
			return false
		}
		p := Params{
			K:              1 + int(kRaw)%6,
			TaxonomyLevels: 1 + int(uRaw)%4,
			MarkovOrder:    int(bRaw) % 3,
			Alpha:          1,
			InitStd:        0.2,
			UseBias:        bRaw%2 == 0,
		}
		m, err := New(tree, 5, p, rng)
		if err != nil {
			return false
		}
		// random biases so UseBias matters
		for n := 0; n < tree.NumNodes(); n++ {
			if m.TrainedNode(n) {
				m.Bias.Row(n)[0] = rng.NormFloat64() * 0.1
			}
		}
		c := m.Compose()
		prev := []dataset.Basket{{0}, {int32(tree.NumItems() - 1)}}
		qm := make([]float64, p.K)
		qc := make([]float64, p.K)
		m.BuildQueryInto(2, prev, qm)
		c.BuildQueryInto(2, prev, qc)
		for k := range qm {
			if diff(qm[k], qc[k]) > 1e-9 {
				return false
			}
		}
		scores := make([]float64, tree.NumItems())
		c.ItemScoresInto(qc, scores)
		for item := 0; item < tree.NumItems(); item += 3 {
			if diff(scores[item], m.Score(qm, item)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Property: save/load round-trips arbitrary models bit-exactly.
func TestQuickSaveLoadRoundTrip(t *testing.T) {
	f := func(seed uint16, kRaw, uRaw uint8) bool {
		rng := vecmath.NewRNG(uint64(seed) + 7)
		tree, err := taxonomy.Generate(taxonomy.GenConfig{
			CategoryLevels: []int{2, 5},
			Items:          20,
		}, rng)
		if err != nil {
			return false
		}
		p := Params{K: 1 + int(kRaw)%5, TaxonomyLevels: 1 + int(uRaw)%4, Alpha: 1, InitStd: 0.3, UseBias: true}
		m, err := New(tree, 4, p, rng)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			return false
		}
		back, err := Load(&buf)
		if err != nil {
			return false
		}
		return back.User.MaxAbsDiff(m.User) == 0 &&
			back.Node.MaxAbsDiff(m.Node) == 0 &&
			back.Next.MaxAbsDiff(m.Next) == 0 &&
			back.Bias.MaxAbsDiff(m.Bias) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
