package model

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// The quantized tier's internal consistency: per-item ScoreItemI8, the
// blocked range sweep, and the blocked multi-query sweep must agree
// bitwise, and a leaf node must score bitwise identically to its item
// (equal rows quantize to equal codes and parameters).
func TestIndexI8SweepsAgreeBitwise(t *testing.T) {
	for _, useBias := range []bool{false, true} {
		c, q := index32World(t, useBias)
		ix := c.Index
		u := make([]int8, len(q))
		qscale, sumQ, _ := vecmath.QuantizeQuery(u, q)

		dst := make([]float64, ix.NumItems())
		ix.ItemScoresRangeI8Into(u, qscale, sumQ, 0, ix.NumItems(), dst)
		multi := [][]float64{make([]float64, ix.NumItems()), make([]float64, ix.NumItems())}
		ix.ItemScoresRangeI8MultiInto([][]int8{u, u}, []float64{qscale, qscale}, []float64{sumQ, sumQ}, 0, ix.NumItems(), multi)

		for item := 0; item < ix.NumItems(); item++ {
			want := ix.ScoreItemI8(item, u, qscale, sumQ)
			if dst[item] != want {
				t.Fatalf("useBias=%v item %d: range sweep %v != ScoreItemI8 %v", useBias, item, dst[item], want)
			}
			if multi[0][item] != want || multi[1][item] != want {
				t.Fatalf("useBias=%v item %d: multi sweep %v/%v != ScoreItemI8 %v", useBias, item, multi[0][item], multi[1][item], want)
			}
			node := c.Tree.ItemNode(item)
			if got := ix.ScoreNodeI8(node, u, qscale, sumQ); got != want {
				t.Fatalf("useBias=%v item %d: node-slab score %v != item-slab score %v", useBias, item, got, want)
			}
		}
	}
}

// The certified error bound must dominate the observed |int8−f64| score
// differences on both slabs — the property the two-stage pipeline's
// exactness proof stands on.
func TestIndexI8ErrBoundDominates(t *testing.T) {
	for _, useBias := range []bool{false, true} {
		c, q := index32World(t, useBias)
		ix := c.Index
		u := make([]int8, len(q))
		qscale, sumQ, sumAbsErr := vecmath.QuantizeQuery(u, q)

		eps := ix.ItemErrBoundI8(q, sumAbsErr)
		if math.IsInf(eps, 0) || math.IsNaN(eps) {
			t.Fatalf("useBias=%v: finite world produced non-finite item bound %v", useBias, eps)
		}
		for item := 0; item < ix.NumItems(); item++ {
			d := math.Abs(ix.ScoreItemI8(item, u, qscale, sumQ) - ix.ScoreItem(item, q))
			if d > eps {
				t.Fatalf("useBias=%v item %d: |i8−f64| = %v exceeds certified bound %v", useBias, item, d, eps)
			}
		}
		epsN := ix.NodeErrBoundI8(q, sumAbsErr)
		for node := 0; node < c.Tree.NumNodes(); node++ {
			d := math.Abs(ix.ScoreNodeI8(node, u, qscale, sumQ) - ix.ScoreNode(node, q))
			if d > epsN {
				t.Fatalf("useBias=%v node %d: |i8−f64| = %v exceeds certified bound %v", useBias, node, d, epsN)
			}
		}
	}
}

// Hostile payloads with NaN/Inf factor values must die at Load — the
// int8 quantizer derives per-row codes from the value range, which a
// single poisoned entry turns non-finite.
func TestLoadRejectsNonFiniteFactors(t *testing.T) {
	for _, poison := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		tree := taxonomy.MustGenerate(taxonomy.GenConfig{CategoryLevels: []int{3}, Items: 20, Skew: 0}, vecmath.NewRNG(2))
		m, err := New(tree, 3, Params{K: 4, TaxonomyLevels: 2, Alpha: 1, InitStd: 0.1}, vecmath.NewRNG(3))
		if err != nil {
			t.Fatal(err)
		}
		m.Node.Row(1)[0] = poison
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatalf("poison %v: Load accepted a non-finite node matrix", poison)
		} else if !strings.Contains(err.Error(), "non-finite") {
			t.Fatalf("poison %v: unhelpful error %v", poison, err)
		}
	}
}
