package model

import (
	"sync"

	"repro/internal/dataset"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// Composed is an immutable snapshot of a TF model with all path sums
// materialized: EffNode.Row(n) is the effective factor of taxonomy node n
// (offsets summed from n to the root, Eq. 1) and EffNext the same for the
// next-item tree. Inference and evaluation run off a Composed snapshot so
// each of the millions of per-item scores is a single dot product instead
// of a path walk. Build one with (*TF).Compose after training.
type Composed struct {
	P       Params
	Tree    *taxonomy.Tree
	User    *vecmath.Matrix
	EffNode *vecmath.Matrix
	EffNext *vecmath.Matrix
	// EffBias is the composed per-node popularity bias (numNodes x 1);
	// all zero unless the model trained with UseBias.
	EffBias *vecmath.Matrix
	// Index is the flattened scoring view of EffNode/EffBias — contiguous
	// item-major and node-major slabs with the bias folded in. All scoring
	// methods of Composed run off it; infer and serve use it directly.
	Index *ScoringIndex
	// Precision is the serving precision preference inherited from the
	// model (file format v2); serve resolves it when neither the request
	// nor the server configuration chooses one.
	Precision Precision
	weights   []float64

	// fp caches Fingerprint(): a content id computed lazily on first use
	// (the strided slab hash would otherwise tax mmap-load startup).
	fpOnce sync.Once
	fp     string
}

// Compose materializes the effective factors by a single top-down pass:
// eff(node) = eff(parent) + offset(node), then flattens them into the
// scoring index. It does not mutate the model and the snapshot does not
// alias model rows.
func (m *TF) Compose() *Composed {
	c := &Composed{
		P:         m.P,
		Tree:      m.Tree,
		User:      m.User.Clone(),
		EffNode:   composeTree(m.Tree, m.Node),
		EffNext:   composeTree(m.Tree, m.Next),
		EffBias:   composeTree(m.Tree, m.Bias),
		Precision: m.Precision,
		weights:   m.P.DecayWeights(),
	}
	c.Index = buildIndex(m.Tree, c.EffNode, c.EffBias, m.P.UseBias)
	return c
}

func composeTree(tree *taxonomy.Tree, offsets *vecmath.Matrix) *vecmath.Matrix {
	eff := vecmath.NewMatrix(offsets.Rows(), offsets.Cols())
	root := tree.Root()
	vecmath.Copy(eff.Row(root), offsets.Row(root))
	// level order guarantees parents are composed before children
	for d := 1; d <= tree.Depth(); d++ {
		for _, node := range tree.Level(d) {
			n := int(node)
			row := eff.Row(n)
			vecmath.Copy(row, eff.Row(tree.Parent(n)))
			vecmath.Add(row, offsets.Row(n))
		}
	}
	return eff
}

// K returns the factor dimensionality.
func (c *Composed) K() int { return c.P.K }

// NumItems returns the item count.
func (c *Composed) NumItems() int { return c.Tree.NumItems() }

// ItemFactor returns the effective factor of item as a read-only view.
func (c *Composed) ItemFactor(item int) []float64 {
	return c.Index.ItemFactor(item)
}

// BuildQueryInto mirrors (*TF).BuildQueryInto against the snapshot.
func (c *Composed) BuildQueryInto(user int, prev []dataset.Basket, q []float64) {
	vecmath.Copy(q, c.User.Row(user))
	c.addShortTerm(prev, q)
}

// BuildSessionQueryInto builds a query for an anonymous session: no user
// factor, only the short-term Markov term driven by the session's recent
// baskets (most recent first). With MarkovOrder 0 the query is zero and
// ranking degenerates to the bias/popularity order.
func (c *Composed) BuildSessionQueryInto(prev []dataset.Basket, q []float64) {
	vecmath.Zero(q)
	c.addShortTerm(prev, q)
}

func (c *Composed) addShortTerm(prev []dataset.Basket, q []float64) {
	if c.P.MarkovOrder == 0 {
		return
	}
	for n := 0; n < len(prev) && n < c.P.MarkovOrder; n++ {
		basket := prev[n]
		if len(basket) == 0 {
			continue
		}
		coef := c.weights[n] / float64(len(basket))
		for _, item := range basket {
			vecmath.AddScaled(q, coef, c.EffNext.Row(c.Tree.ItemNode(int(item))))
		}
	}
}

// ItemScoresInto writes the full affinity (⟨q, vI_j⟩ plus composed bias)
// for every item j into dst (len == NumItems) with one blocked sweep over
// the scoring index.
func (c *Composed) ItemScoresInto(q []float64, dst []float64) {
	c.Index.ItemScoresInto(q, dst)
}

// NodeScore returns ⟨q, eff(node)⟩ (plus the node's composed bias when
// UseBias) for any taxonomy node; cascaded inference and category-level
// metrics rank these.
func (c *Composed) NodeScore(q []float64, node int) float64 {
	return c.Index.ScoreNode(node, q)
}

// LevelScores returns the scored nodes of taxonomy depth d, unsorted.
func (c *Composed) LevelScores(q []float64, d int) []vecmath.Scored {
	level := c.Tree.Level(d)
	out := make([]vecmath.Scored, len(level))
	for i, node := range level {
		out[i] = vecmath.Scored{ID: int(node), Score: c.Index.ScoreNode(int(node), q)}
	}
	return out
}

// PrevBaskets mirrors (*TF).PrevBaskets for the snapshot.
func (c *Composed) PrevBaskets(history []dataset.Basket, t int) []dataset.Basket {
	if c.P.MarkovOrder == 0 {
		return nil
	}
	var prev []dataset.Basket
	for n := 1; n <= c.P.MarkovOrder && t-n >= 0; n++ {
		prev = append(prev, history[t-n])
	}
	return prev
}
