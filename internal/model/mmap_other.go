//go:build !unix

package model

import (
	"errors"
	"os"
)

var errNoMmap = errors.New("model: memory mapping unsupported on this platform")

func mmapFile(f *os.File, size int64) ([]byte, error) { return nil, errNoMmap }

func munmapFile(data []byte) error { return nil }
