//go:build linux

package model

import (
	"errors"
	"os"
	"syscall"
	"unsafe"
)

// Residency reports how many pages of a mapped snapshot are currently
// resident in memory (faulted in or shared from the page cache) out of
// the mapping's total — the mapped-vs-heap answer tfrec-inspect prints.
// It errors for snapshots that are not memory-mapped.
func (s *Snapshot) Residency() (resident, total int, err error) {
	if !s.Mapped || len(s.mapping) == 0 {
		return 0, 0, errors.New("model: snapshot is not memory-mapped")
	}
	page := os.Getpagesize()
	total = (len(s.mapping) + page - 1) / page
	vec := make([]byte, total)
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(&s.mapping[0])),
		uintptr(len(s.mapping)),
		uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return 0, 0, errno
	}
	for _, v := range vec {
		if v&1 != 0 {
			resident++
		}
	}
	return resident, total, nil
}
