package model

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"strings"
	"testing"

	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

func savedModel(t *testing.T) (*TF, []byte) {
	t.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{CategoryLevels: []int{2, 5}, Items: 25}, vecmath.NewRNG(9))
	m, err := New(tree, 4, Params{K: 3, TaxonomyLevels: 2, Alpha: 1, InitStd: 0.3, UseBias: true}, vecmath.NewRNG(10))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return m, buf.Bytes()
}

func TestSaveWritesVersionedHeader(t *testing.T) {
	_, raw := savedModel(t)
	if len(raw) < headerLen {
		t.Fatalf("file shorter than header: %d bytes", len(raw))
	}
	if !bytes.Equal(raw[:len(fileMagic)], fileMagic[:]) {
		t.Fatalf("file does not start with magic: %q", raw[:len(fileMagic)])
	}
	if v := binary.BigEndian.Uint32(raw[len(fileMagic):headerLen]); v != fileVersion {
		t.Fatalf("header version %d, want %d", v, fileVersion)
	}
	m, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumItems() != 25 {
		t.Fatalf("round trip lost items: %d", m.NumItems())
	}
}

func TestLoadLegacyHeaderlessFile(t *testing.T) {
	m, _ := savedModel(t)
	// a pre-header file is the bare gob payload
	legacy := persisted{
		Params:   m.P,
		Parents:  m.Tree.ParentArray(),
		NumUsers: m.NumUsers(),
		User:     m.User.CompactData(),
		Node:     m.Node.CompactData(),
		Next:     m.Next.CompactData(),
		Bias:     m.Bias.CompactData(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&legacy); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("legacy load: %v", err)
	}
	if back.User.MaxAbsDiff(m.User) != 0 || back.Node.MaxAbsDiff(m.Node) != 0 {
		t.Fatal("legacy round trip corrupted factors")
	}
}

func TestLoadRejectsGarbageClearly(t *testing.T) {
	for _, garbage := range [][]byte{
		[]byte("definitely not a model file, just some prose that goes on"),
		[]byte("x"),
		{},
	} {
		_, err := Load(bytes.NewReader(garbage))
		if err == nil {
			t.Fatalf("garbage %q: expected error", garbage)
		}
		if !strings.Contains(err.Error(), "not a tfrec model file") {
			t.Fatalf("garbage %q: unhelpful error: %v", garbage, err)
		}
	}
}

func TestLoadRejectsNewerVersion(t *testing.T) {
	_, raw := savedModel(t)
	future := append([]byte(nil), raw...)
	binary.BigEndian.PutUint32(future[len(fileMagic):], fileVersion+7)
	_, err := Load(bytes.NewReader(future))
	if err == nil {
		t.Fatal("expected version error")
	}
	if !strings.Contains(err.Error(), "newer") {
		t.Fatalf("unhelpful version error: %v", err)
	}
}

func TestLoadTruncatedFileFailsWithContext(t *testing.T) {
	_, raw := savedModel(t)
	for _, cut := range []int{headerLen, headerLen + 5, len(raw) / 2, len(raw) - 3} {
		_, err := Load(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("cut at %d: expected error", cut)
		}
		if !strings.Contains(err.Error(), "corrupt or truncated") {
			t.Fatalf("cut at %d: unhelpful error: %v", cut, err)
		}
	}
	// truncating inside the header cannot be told from garbage, but must
	// still fail cleanly
	if _, err := Load(bytes.NewReader(raw[:4])); err == nil {
		t.Fatal("header-truncated file: expected error")
	}
}

// Semantic validation failures must be reported as such, not mislabeled
// as "not a model file" (legacy) or "corrupt or truncated" (headered).
func TestLoadReportsValidationErrorsAccurately(t *testing.T) {
	m, _ := savedModel(t)
	bad := persisted{
		Params:   m.P,
		Parents:  m.Tree.ParentArray(),
		NumUsers: m.NumUsers(),
		User:     m.User.CompactData()[:3], // wrong size
		Node:     m.Node.CompactData(),
		Next:     m.Next.CompactData(),
		Bias:     m.Bias.CompactData(),
	}
	// legacy (headerless) form
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&bad); err != nil {
		t.Fatal(err)
	}
	legacyBytes := append([]byte(nil), buf.Bytes()...)
	_, err := Load(bytes.NewReader(legacyBytes))
	if err == nil {
		t.Fatal("expected validation error")
	}
	if strings.Contains(err.Error(), "not a tfrec model file") {
		t.Fatalf("legacy validation failure mislabeled: %v", err)
	}
	if !strings.Contains(err.Error(), "matrix size") {
		t.Fatalf("validation detail lost: %v", err)
	}
	// headered form (the gob layout, so the last gob format version)
	var hbuf bytes.Buffer
	var header [headerLen]byte
	copy(header[:], fileMagic[:])
	binary.BigEndian.PutUint32(header[len(fileMagic):], gobFileVersion)
	hbuf.Write(header[:])
	hbuf.Write(legacyBytes)
	_, err = Load(&hbuf)
	if err == nil {
		t.Fatal("expected validation error")
	}
	if strings.Contains(err.Error(), "corrupt or truncated") {
		t.Fatalf("headered validation failure mislabeled: %v", err)
	}
	if !strings.Contains(err.Error(), "matrix size") {
		t.Fatalf("validation detail lost: %v", err)
	}
}
