package model

import "fmt"

// Precision selects the scoring data path a query sweeps. It is threaded
// from the CLIs through serve requests down to infer: PrecisionF32 runs
// the two-stage pipeline (compact float32 slab sweep into an over-fetched
// candidate heap, then an exact float64 rescore of the candidates), which
// halves sweep bandwidth while producing rankings byte-identical to the
// pure float64 path; PrecisionF64 forces the pure float64 sweep.
//
// The zero value PrecisionDefault means "no explicit choice" and resolves
// to PrecisionF32 — the serving default — unless an outer layer (server
// option, model file) supplies one.
type Precision uint8

const (
	// PrecisionDefault defers the choice to the surrounding configuration
	// (request → server → model file), bottoming out at PrecisionF32.
	PrecisionDefault Precision = iota
	// PrecisionF32 is the two-stage exact pipeline: f32 slab sweep with
	// k' over-fetch, then f64 rescore of the candidates.
	PrecisionF32
	// PrecisionF64 is the pure float64 sweep.
	PrecisionF64
	// PrecisionInt8 is the two-stage pipeline over the quantized int8
	// slabs — a quarter of the f32 sweep bandwidth, with a larger
	// over-fetch and the same exact-rescore certificate, so rankings stay
	// byte-identical to the f64 path.
	PrecisionInt8
)

// Resolve maps PrecisionDefault to the build default, PrecisionF32.
func (p Precision) Resolve() Precision {
	if p == PrecisionDefault {
		return PrecisionF32
	}
	return p
}

// String returns the wire spelling used by flags and the HTTP knob.
func (p Precision) String() string {
	switch p {
	case PrecisionF32:
		return "f32"
	case PrecisionF64:
		return "f64"
	case PrecisionInt8:
		return "int8"
	default:
		return "default"
	}
}

// ParsePrecision parses the wire spelling: "f32", "f64", "int8", or ""
// (default).
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "":
		return PrecisionDefault, nil
	case "f32":
		return PrecisionF32, nil
	case "f64":
		return PrecisionF64, nil
	case "int8":
		return PrecisionInt8, nil
	default:
		return PrecisionDefault, fmt.Errorf("model: unknown precision %q (want f32, f64 or int8)", s)
	}
}
