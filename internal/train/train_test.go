package train

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/synth"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// testWorkload builds a small taxonomy + synthetic log shared by the
// trainer tests.
func testWorkload(t *testing.T) (*taxonomy.Tree, *dataset.Dataset) {
	t.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{3, 9, 27},
		Items:          300,
		Skew:           0.4,
	}, vecmath.NewRNG(21))
	cfg := synth.DefaultConfig()
	cfg.Users = 300
	cfg.MeanTxns = 5
	d, _, err := synth.Generate(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tree, d
}

func newModel(t *testing.T, tree *taxonomy.Tree, users int, p model.Params) *model.TF {
	t.Helper()
	m, err := model.New(tree, users, p, vecmath.NewRNG(31))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// heldOutPairAccuracy measures, over the users' last transactions, how
// often the model scores a bought item above a random unbought item — a
// cheap stand-in for AUC used to verify training actually learns.
func heldOutPairAccuracy(m *model.TF, d *dataset.Dataset) float64 {
	rng := vecmath.NewRNG(99)
	q := make([]float64, m.K())
	correct, total := 0, 0
	for u := range d.Users {
		baskets := d.Users[u].Baskets
		if len(baskets) < 2 {
			continue
		}
		t := len(baskets) - 1
		m.BuildQueryInto(u, m.PrevBaskets(baskets, t), q)
		for _, pos := range baskets[t] {
			neg := int32(rng.Intn(d.NumItems))
			for baskets[t].Contains(neg) {
				neg = int32(rng.Intn(d.NumItems))
			}
			if m.Score(q, int(pos)) > m.Score(q, int(neg)) {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

func TestTrainImprovesRanking(t *testing.T) {
	tree, d := testWorkload(t)
	m := newModel(t, tree, d.NumUsers(), model.Params{K: 8, TaxonomyLevels: 4, InitStd: 0.01, Alpha: 1})
	before := heldOutPairAccuracy(m, d)
	cfg := DefaultConfig()
	cfg.Epochs = 15
	if _, err := Train(m, d, cfg); err != nil {
		t.Fatal(err)
	}
	after := heldOutPairAccuracy(m, d)
	if after < before+0.15 || after < 0.7 {
		t.Fatalf("training barely helped: %.3f -> %.3f", before, after)
	}
}

func TestTrainLogLikelihoodClimbs(t *testing.T) {
	tree, d := testWorkload(t)
	m := newModel(t, tree, d.NumUsers(), model.Params{K: 8, TaxonomyLevels: 4, InitStd: 0.01, Alpha: 1})
	cfg := DefaultConfig()
	cfg.Epochs = 10
	stats, err := Train(m, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.AvgLogLik) != 10 || len(stats.EpochTime) != 10 {
		t.Fatalf("stats lengths wrong: %d %d", len(stats.AvgLogLik), len(stats.EpochTime))
	}
	first, last := stats.AvgLogLik[0], stats.AvgLogLik[9]
	if last <= first {
		t.Fatalf("log-likelihood did not climb: %v -> %v", first, last)
	}
	if stats.Samples != int64(10*d.NumPurchases()) {
		t.Fatalf("Samples = %d, want %d", stats.Samples, 10*d.NumPurchases())
	}
}

func TestTrainSerialDeterminism(t *testing.T) {
	tree, d := testWorkload(t)
	run := func() *model.TF {
		m := newModel(t, tree, d.NumUsers(), model.Params{K: 6, TaxonomyLevels: 3, MarkovOrder: 1, Alpha: 1, InitStd: 0.01})
		cfg := DefaultConfig()
		cfg.Epochs = 3
		if _, err := Train(m, d, cfg); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.Node.MaxAbsDiff(b.Node) != 0 || a.User.MaxAbsDiff(b.User) != 0 || a.Next.MaxAbsDiff(b.Next) != 0 {
		t.Fatal("serial training must be deterministic for a fixed seed")
	}
}

func TestTrainParallelLearns(t *testing.T) {
	tree, d := testWorkload(t)
	m := newModel(t, tree, d.NumUsers(), model.Params{K: 8, TaxonomyLevels: 4, InitStd: 0.01, Alpha: 1})
	cfg := DefaultConfig()
	cfg.Epochs = 15
	cfg.Workers = 4
	if _, err := Train(m, d, cfg); err != nil {
		t.Fatal(err)
	}
	if acc := heldOutPairAccuracy(m, d); acc < 0.7 {
		t.Fatalf("parallel training reached only %.3f pair accuracy", acc)
	}
}

func TestTrainParallelWithCacheLearns(t *testing.T) {
	tree, d := testWorkload(t)
	m := newModel(t, tree, d.NumUsers(), model.Params{K: 8, TaxonomyLevels: 4, InitStd: 0.01, Alpha: 1})
	cfg := DefaultConfig()
	cfg.Epochs = 15
	cfg.Workers = 4
	cfg.CacheThreshold = 0.1
	if _, err := Train(m, d, cfg); err != nil {
		t.Fatal(err)
	}
	if acc := heldOutPairAccuracy(m, d); acc < 0.7 {
		t.Fatalf("cached parallel training reached only %.3f pair accuracy", acc)
	}
}

func TestTrainMarkovModelLearns(t *testing.T) {
	tree, d := testWorkload(t)
	m := newModel(t, tree, d.NumUsers(), model.Params{K: 8, TaxonomyLevels: 4, MarkovOrder: 1, Alpha: 1, InitStd: 0.01})
	cfg := DefaultConfig()
	cfg.Epochs = 15
	if _, err := Train(m, d, cfg); err != nil {
		t.Fatal(err)
	}
	if acc := heldOutPairAccuracy(m, d); acc < 0.7 {
		t.Fatalf("markov model reached only %.3f pair accuracy", acc)
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	tree, d := testWorkload(t)
	m := newModel(t, tree, d.NumUsers(), model.Params{K: 4, TaxonomyLevels: 1, InitStd: 0.01, Alpha: 1})
	bad := []Config{
		{Epochs: 0, LearnRate: 0.1},
		{Epochs: 1, LearnRate: 0},
		{Epochs: 1, LearnRate: 0.1, SiblingMix: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Train(m, d, cfg); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
	// mismatched dataset
	other := &dataset.Dataset{NumItems: 5, Users: []dataset.History{{Baskets: []dataset.Basket{{1}}}}}
	if _, err := Train(m, other, DefaultConfig()); err == nil {
		t.Error("expected item-count mismatch error")
	}
	empty := &dataset.Dataset{NumItems: d.NumItems, Users: make([]dataset.History, d.NumUsers())}
	if _, err := Train(m, empty, DefaultConfig()); err == nil {
		t.Error("expected empty-dataset error")
	}
}

func TestLearnRateDecaySchedule(t *testing.T) {
	cfg := Config{LearnRate: 0.1, LearnRateDecay: 1}
	if r := epochRate(cfg, 0); r != 0.1 {
		t.Fatalf("epoch 0 rate = %v", r)
	}
	if r := epochRate(cfg, 4); r != 0.02 {
		t.Fatalf("epoch 4 rate = %v, want 0.02", r)
	}
	cfg.LearnRateDecay = 0
	if r := epochRate(cfg, 100); r != 0.1 {
		t.Fatalf("no-decay rate = %v", r)
	}
}

func TestSearchLambdaPicksBest(t *testing.T) {
	tree, d := testWorkload(t)
	split := d.Split(dataset.DefaultSplitConfig())
	build := func() (*model.TF, error) {
		return model.New(tree, d.NumUsers(), model.Params{K: 6, TaxonomyLevels: 3, InitStd: 0.01, Alpha: 1}, vecmath.NewRNG(31))
	}
	cfg := DefaultConfig()
	cfg.Epochs = 5
	lambdas := []float64{0.001, 10.0} // 10.0 will crush the factors
	score := func(m *model.TF) float64 { return heldOutPairAccuracy(m, split.Validation) }
	best, scores, err := SearchLambda(lambdas, build, split.Train, cfg, score)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("scores = %v", scores)
	}
	if best != 0.001 {
		t.Fatalf("SearchLambda picked %v (scores %v); λ=10 should be hopeless", best, scores)
	}
	if _, _, err := SearchLambda(nil, build, split.Train, cfg, score); err == nil {
		t.Fatal("expected error for empty candidate list")
	}
}

func TestMeanEpochTime(t *testing.T) {
	s := &Stats{EpochTime: nil}
	if s.MeanEpochTime() != 0 {
		t.Fatal("empty stats should have zero mean epoch time")
	}
}

func TestTrainOnEpochEarlyStop(t *testing.T) {
	tree, d := testWorkload(t)
	m := newModel(t, tree, d.NumUsers(), model.Params{K: 4, TaxonomyLevels: 2, InitStd: 0.01, Alpha: 1})
	cfg := DefaultConfig()
	cfg.Epochs = 50
	calls := 0
	cfg.OnEpoch = func(epoch int, ll float64) bool {
		calls++
		return epoch >= 4 // stop after 5 epochs
	}
	stats, err := Train(m, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Fatalf("callback ran %d times, want 5", calls)
	}
	if len(stats.AvgLogLik) != 5 {
		t.Fatalf("recorded %d epochs, want 5", len(stats.AvgLogLik))
	}
	// parallel path honours it too
	m2 := newModel(t, tree, d.NumUsers(), model.Params{K: 4, TaxonomyLevels: 2, InitStd: 0.01, Alpha: 1})
	cfg.Workers = 4
	calls = 0
	stats2, err := Train(m2, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats2.AvgLogLik) != 5 || calls != 5 {
		t.Fatalf("parallel early stop broken: %d epochs, %d calls", len(stats2.AvgLogLik), calls)
	}
}

func TestTrainDetectsDivergence(t *testing.T) {
	tree, d := testWorkload(t)
	m := newModel(t, tree, d.NumUsers(), model.Params{K: 8, TaxonomyLevels: 4, InitStd: 0.1, Alpha: 1})
	cfg := DefaultConfig()
	cfg.Epochs = 8
	cfg.LearnRate = 1e6 // guaranteed blow-up
	cfg.Lambda = 0
	if _, err := Train(m, d, cfg); err == nil {
		t.Fatal("expected divergence error for an absurd learning rate")
	}
}

func TestTrainForceLockedMatchesQuality(t *testing.T) {
	tree, d := testWorkload(t)
	m := newModel(t, tree, d.NumUsers(), model.Params{K: 8, TaxonomyLevels: 4, InitStd: 0.01, Alpha: 1})
	cfg := DefaultConfig()
	cfg.Epochs = 15
	cfg.ForceLocked = true // 1 worker through the locked path
	if _, err := Train(m, d, cfg); err != nil {
		t.Fatal(err)
	}
	if acc := heldOutPairAccuracy(m, d); acc < 0.7 {
		t.Fatalf("locked single-worker training reached only %.3f", acc)
	}
}

func TestTrainWithBiasAndEffectiveReg(t *testing.T) {
	tree, d := testWorkload(t)
	m := newModel(t, tree, d.NumUsers(), model.Params{K: 8, TaxonomyLevels: 4, InitStd: 0.01, Alpha: 1, UseBias: true})
	cfg := DefaultConfig()
	cfg.Epochs = 15
	cfg.RegularizeEffective = true
	if _, err := Train(m, d, cfg); err != nil {
		t.Fatal(err)
	}
	if acc := heldOutPairAccuracy(m, d); acc < 0.7 {
		t.Fatalf("bias+effective-reg training reached only %.3f", acc)
	}
	// biases actually moved
	var norm float64
	for node := 0; node < tree.NumNodes(); node++ {
		norm += m.Bias.Row(node)[0] * m.Bias.Row(node)[0]
	}
	if norm == 0 {
		t.Fatal("UseBias training left all biases at zero")
	}
}
