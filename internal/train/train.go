// Package train orchestrates BPR-SGD training of TF models (Kanagal et
// al., VLDB 2012 §4, §6.1): epoch loops over uniformly sampled positive
// events, mixing of random-negative steps with sibling-based training, and
// the multi-core execution model — shared factor matrices behind per-row
// locks, with optional per-worker caches for the hot interior-taxonomy
// rows.
package train

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/bpr"
	"repro/internal/dataset"
	"repro/internal/factors"
	"repro/internal/model"
	"repro/internal/vecmath"
)

// Config are the training hyper-parameters.
type Config struct {
	// Epochs is the number of passes; each epoch draws SamplesPerEpoch
	// uniform samples (with replacement, as in §2.2).
	Epochs int
	// SamplesPerEpoch defaults to the number of positive events (one
	// nominal pass over the non-zero entries).
	SamplesPerEpoch int
	// LearnRate is ε of Eq. 7.
	LearnRate float64
	// LearnRateDecay shrinks ε per epoch: ε_e = LearnRate/(1+decay·e).
	LearnRateDecay float64
	// Lambda is the regularization constant λ.
	Lambda float64
	// SiblingMix is the probability that a sample additionally runs the
	// §4.2 sibling-based pass after its random-negative step ("we mix
	// random sampling with sibling-based training"); 0 disables sibling
	// training (the paper's "no sibling" ablation of Fig. 7d).
	SiblingMix float64
	// Workers is the goroutine count; <=1 uses the deterministic
	// single-threaded path with no locks.
	Workers int
	// CacheThreshold, when > 0, enables the §6.1 per-worker caches on the
	// interior-taxonomy rows with the given reconciliation threshold
	// (the paper's experiments use 0.1). Ignored on the serial path.
	CacheThreshold float64
	// ForceLocked routes even Workers <= 1 through the locked parallel
	// machinery. Training is normally fastest on the lock-free serial
	// path, but scaling measurements (Figure 8) need the 1-thread
	// baseline to pay the same synchronization costs as the n-thread
	// runs.
	ForceLocked bool
	// RegularizeEffective selects the paper's literal Eq. 6 shrinkage
	// (regularize offsets by the effective factor) instead of the default
	// offset-wise Gaussian prior; see bpr.StepConfig and DESIGN.md §6.
	RegularizeEffective bool
	// OnEpoch, when set, runs after every epoch with the epoch index and
	// its mean ln σ(x); returning true stops training early (all caches
	// are already flushed at the epoch barrier). Use it for early stopping
	// on a validation metric or for checkpointing.
	OnEpoch func(epoch int, avgLogLik float64) (stop bool)
	// Seed makes runs reproducible; every worker derives its own stream.
	Seed uint64
}

// DefaultConfig returns the settings the experiment harness uses before
// any cross-validation: 30 nominal epochs, ε=0.05, λ=0.01, an even
// sibling/random mix, single-threaded.
func DefaultConfig() Config {
	return Config{
		Epochs:     30,
		LearnRate:  0.05,
		Lambda:     0.01,
		SiblingMix: 0.5,
		Workers:    1,
		Seed:       1,
	}
}

// Stats reports per-epoch measurements of a training run.
type Stats struct {
	// Samples is the total number of SGD samples drawn.
	Samples int64
	// EpochTime holds the wall-clock duration of each epoch; Figure 8(a)
	// plots its mean against the worker count.
	EpochTime []time.Duration
	// AvgLogLik is the mean ln σ(x) of the samples of each epoch (before
	// their updates); it should climb toward 0 as ranking improves.
	AvgLogLik []float64
}

// MeanEpochTime returns the average epoch duration.
func (s *Stats) MeanEpochTime() time.Duration {
	if len(s.EpochTime) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range s.EpochTime {
		total += d
	}
	return total / time.Duration(len(s.EpochTime))
}

// Train fits the model to the dataset's positive events in place and
// returns per-epoch statistics. With Workers <= 1 the run is fully
// deterministic given Config.Seed.
func Train(m *model.TF, data *dataset.Dataset, cfg Config) (*Stats, error) {
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("train: Epochs must be positive, got %d", cfg.Epochs)
	}
	if cfg.LearnRate <= 0 {
		return nil, fmt.Errorf("train: LearnRate must be positive, got %v", cfg.LearnRate)
	}
	if cfg.SiblingMix < 0 || cfg.SiblingMix > 1 {
		return nil, fmt.Errorf("train: SiblingMix must be in [0,1], got %v", cfg.SiblingMix)
	}
	if data.NumItems != m.NumItems() {
		return nil, fmt.Errorf("train: dataset has %d items, model %d", data.NumItems, m.NumItems())
	}
	if data.NumUsers() > m.NumUsers() {
		return nil, fmt.Errorf("train: dataset has %d users, model only %d", data.NumUsers(), m.NumUsers())
	}
	events := data.Events()
	if len(events) == 0 {
		return nil, fmt.Errorf("train: dataset has no purchase events")
	}
	samples := cfg.SamplesPerEpoch
	if samples <= 0 {
		samples = len(events)
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}

	stats := &Stats{}
	if workers == 1 && !cfg.ForceLocked {
		trainSerial(m, data, events, cfg, samples, stats)
	} else {
		trainParallel(m, data, events, cfg, samples, workers, stats)
	}
	// Divergence guard: an oversized learning rate drives σ into
	// saturation and the factors to ±Inf/NaN; surface that as an error
	// instead of handing back a silently poisoned model.
	for e, ll := range stats.AvgLogLik {
		if math.IsNaN(ll) || math.IsInf(ll, 0) {
			return stats, fmt.Errorf("train: diverged at epoch %d (log-likelihood %v); lower LearnRate or raise Lambda", e, ll)
		}
	}
	return stats, nil
}

// epochRate returns the learning rate for epoch e under the decay
// schedule.
func epochRate(cfg Config, e int) float64 {
	return cfg.LearnRate / (1 + cfg.LearnRateDecay*float64(e))
}

// runSamples executes n SGD samples on one stepper and returns the summed
// log-likelihood of the random-negative steps. It is the shared inner loop
// of both execution modes: every sample takes a plain BPR step, and with
// probability siblingMix also runs the sibling fine-tuning pass on the
// same positive.
func runSamples(st *bpr.Stepper, m *model.TF, data *dataset.Dataset, events []dataset.Event, rng *vecmath.RNG, siblingMix float64, n int) float64 {
	var ll float64
	for s := 0; s < n; s++ {
		ev := events[rng.Intn(len(events))]
		u, t, i := int(ev.User), int(ev.Txn), int(ev.Item)
		history := data.Users[u].Baskets
		prev := m.PrevBaskets(history, t)
		j := st.SampleNegative(history[t])
		ll += st.Step(u, i, j, prev)
		if siblingMix > 0 && rng.Float64() < siblingMix {
			st.SiblingPass(u, i, prev)
		}
	}
	return ll
}

// stepConfig translates the trainer's knobs into a per-step config.
func stepConfig(cfg Config) bpr.StepConfig {
	return bpr.StepConfig{
		LearnRate:           cfg.LearnRate,
		Lambda:              cfg.Lambda,
		RegularizeEffective: cfg.RegularizeEffective,
	}
}

func trainSerial(m *model.TF, data *dataset.Dataset, events []dataset.Event, cfg Config, samples int, stats *Stats) {
	rng := vecmath.NewRNG(cfg.Seed)
	st := bpr.NewStepper(m, bpr.PlainStores(m), stepConfig(cfg), rng.Split())
	for e := 0; e < cfg.Epochs; e++ {
		st.SetLearnRate(epochRate(cfg, e))
		start := time.Now()
		ll := runSamples(st, m, data, events, rng, cfg.SiblingMix, samples)
		stats.EpochTime = append(stats.EpochTime, time.Since(start))
		stats.AvgLogLik = append(stats.AvgLogLik, ll/float64(samples))
		stats.Samples += int64(samples)
		if cfg.OnEpoch != nil && cfg.OnEpoch(e, ll/float64(samples)) {
			return
		}
	}
}

// trainParallel runs a persistent worker pool: each worker goroutine
// allocates its own stepper, RNG and (optionally) hot-row caches — in its
// own goroutine so the hot per-worker state lands in separate heap spans
// rather than adjacent allocations that false-share cache lines. Epochs
// are dispatched over channels; caches flush at every epoch barrier.
func trainParallel(m *model.TF, data *dataset.Dataset, events []dataset.Event, cfg Config, samples, workers int, stats *Stats) {
	userStore := factors.NewLocked(m.User)
	nodeStore := factors.NewLocked(m.Node)
	nextStore := factors.NewLocked(m.Next)
	biasStore := factors.NewLocked(m.Bias)

	hotLimit := 0
	if cfg.CacheThreshold > 0 {
		hotLimit = m.Tree.InteriorPrefixLen()
	}

	type epochJob struct {
		rate float64
		n    int
	}
	jobs := make([]chan epochJob, workers)
	done := make(chan float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		jobs[w] = make(chan epochJob)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// deterministic per-worker stream, derived without sharing
			// state with other workers
			rng := vecmath.NewRNG(cfg.Seed + 0x9e3779b97f4a7c15*uint64(w+1))
			stores := bpr.Stores{User: userStore, Node: nodeStore, Next: nextStore, Bias: biasStore}
			if hotLimit > 0 {
				stores.Node = factors.NewCached(nodeStore, hotLimit, cfg.CacheThreshold)
				stores.Next = factors.NewCached(nextStore, hotLimit, cfg.CacheThreshold)
				stores.Bias = factors.NewCached(biasStore, hotLimit, cfg.CacheThreshold)
			}
			st := bpr.NewStepper(m, stores, stepConfig(cfg), rng.Split())
			for job := range jobs[w] {
				st.SetLearnRate(job.rate)
				ll := runSamples(st, m, data, events, rng, cfg.SiblingMix, job.n)
				st.Flush()
				done <- ll
			}
		}(w)
	}

	for e := 0; e < cfg.Epochs; e++ {
		rate := epochRate(cfg, e)
		start := time.Now()
		for w := 0; w < workers; w++ {
			n := samples / workers
			if w == 0 {
				n += samples % workers
			}
			jobs[w] <- epochJob{rate: rate, n: n}
		}
		var ll float64
		for w := 0; w < workers; w++ {
			ll += <-done
		}
		stats.EpochTime = append(stats.EpochTime, time.Since(start))
		stats.AvgLogLik = append(stats.AvgLogLik, ll/float64(samples))
		stats.Samples += int64(samples)
		if cfg.OnEpoch != nil && cfg.OnEpoch(e, ll/float64(samples)) {
			break
		}
	}
	for w := 0; w < workers; w++ {
		close(jobs[w])
	}
	wg.Wait()
}

// SearchLambda performs the paper's exhaustive cross-validation over λ
// (§2.2): it trains one fresh model per candidate with build() supplying
// identically initialized models, scores each with score (higher is
// better, e.g. validation AUC), and returns the winning λ alongside all
// scores.
func SearchLambda(lambdas []float64, build func() (*model.TF, error), data *dataset.Dataset, cfg Config, score func(*model.TF) float64) (float64, []float64, error) {
	if len(lambdas) == 0 {
		return 0, nil, fmt.Errorf("train: no lambda candidates")
	}
	scores := make([]float64, len(lambdas))
	bestIdx := 0
	for idx, lam := range lambdas {
		m, err := build()
		if err != nil {
			return 0, nil, fmt.Errorf("train: build model for lambda %v: %w", lam, err)
		}
		c := cfg
		c.Lambda = lam
		if _, err := Train(m, data, c); err != nil {
			return 0, nil, err
		}
		scores[idx] = score(m)
		if scores[idx] > scores[bestIdx] {
			bestIdx = idx
		}
	}
	return lambdas[bestIdx], scores, nil
}
