package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/train"
	"repro/internal/vecmath"
)

// rngFor builds the deterministic RNG every harness component derives
// from.
func rngFor(seed uint64) *vecmath.RNG { return vecmath.NewRNG(seed) }

// discardIfNil normalizes an optional output writer.
func discardIfNil(w io.Writer) io.Writer {
	if w == nil {
		return io.Discard
	}
	return w
}

// newTable starts an aligned text table on w.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// sysSpec names a system under comparison: the paper's TF(U, B) notation,
// with U=1 rendering as MF(B).
type sysSpec struct {
	U, B       int
	SiblingMix float64 // -1 = use scale default for TF, 0 for MF
}

// label renders the paper's system name.
func (s sysSpec) label() string {
	if s.U <= 1 {
		return fmt.Sprintf("MF(%d)", s.B)
	}
	return fmt.Sprintf("TF(%d,%d)", s.U, s.B)
}

// trainAndEval trains one system at dimensionality k on the workload and
// returns its evaluation. Training is single-threaded (deterministic);
// evaluation parallelizes over users.
func trainAndEval(w *Workload, sc Scale, spec sysSpec, k int) (eval.Result, *model.TF, error) {
	m, _, err := trainModel(w, sc, spec, k)
	if err != nil {
		return eval.Result{}, nil, err
	}
	res := eval.Evaluate(m.Compose(), w.History, w.Split.Test, eval.DefaultConfig())
	return res, m, nil
}

// trainModel builds and fits one system on the full observed history
// (train plus the validation carve-out): the paper carves T transactions
// only to cross-validate hyper-parameters, then all pre-test transactions
// are training data.
func trainModel(w *Workload, sc Scale, spec sysSpec, k int) (*model.TF, *train.Stats, error) {
	u := spec.U
	if u > w.MaxU() {
		u = w.MaxU()
	}
	p := model.Params{K: k, TaxonomyLevels: u, MarkovOrder: spec.B, Alpha: 1.0, InitStd: 0.01}
	m, err := model.New(w.Tree, w.Log.NumUsers(), p, rngFor(sc.Seed+11))
	if err != nil {
		return nil, nil, err
	}
	cfg := sc.TrainConfig()
	switch {
	case spec.SiblingMix >= 0:
		cfg.SiblingMix = spec.SiblingMix
	case u <= 1:
		// plain MF has no taxonomy knowledge: no sibling training
		cfg.SiblingMix = 0
	}
	stats, err := train.Train(m, w.History, cfg)
	if err != nil {
		return nil, nil, err
	}
	return m, stats, nil
}
