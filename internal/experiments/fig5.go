package experiments

import (
	"fmt"
	"io"

	"repro/internal/dataset"
)

// Fig5Result carries the dataset-characteristics measurements of
// Figure 5: the three histograms and the headline sparsity number.
type Fig5Result struct {
	Stats *dataset.Stats
	// Users / Items / Purchases summarize the generated log.
	Users, Items, Purchases int
}

// RunFig5 reproduces Figure 5(a–c): the distinct-items-per-user histogram
// of the train split, the new-items-per-user histogram of the test split,
// and the item-popularity histogram.
func RunFig5(out io.Writer, sc Scale) (*Fig5Result, error) {
	out = discardIfNil(out)
	w, err := BuildWorkload(sc, 0.5)
	if err != nil {
		return nil, err
	}
	stats := dataset.ComputeStats(w.Split, 50)
	res := &Fig5Result{
		Stats:     stats,
		Users:     w.Log.NumUsers(),
		Items:     w.Log.NumItems,
		Purchases: w.Log.NumPurchases(),
	}

	fmt.Fprintf(out, "Figure 5 — dataset characteristics (%s scale)\n", sc.Name)
	fmt.Fprintf(out, "users=%d items=%d purchases=%d avg purchases/user (train)=%.2f\n\n",
		res.Users, res.Items, res.Purchases, stats.AvgPurchasesPerUser)

	tw := newTable(out)
	fmt.Fprintln(tw, "bucket\t(a) distinct items/user\t(b) new items/user\t(c) item popularity")
	for _, b := range []int{0, 1, 2, 3, 4, 5, 10, 20, 50} {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\n",
			b,
			bucketRange(stats.DistinctItemsPerUser, b),
			bucketRange(stats.NewItemsPerUser, b),
			bucketRange(stats.ItemPopularity, b))
	}
	tw.Flush()
	return res, nil
}

// bucketRange sums the histogram between the previous canonical bucket and
// b inclusive, matching the coarse buckets the rendered table prints.
func bucketRange(h *dataset.Histogram, b int) int {
	edges := []int{0, 1, 2, 3, 4, 5, 10, 20, 50}
	lo := 0
	for i, e := range edges {
		if e == b && i > 0 {
			lo = edges[i-1] + 1
		}
	}
	if b == 0 {
		lo = 0
	}
	total := 0
	for v := lo; v <= b && v < len(h.Counts); v++ {
		total += h.Counts[v]
	}
	return total
}
