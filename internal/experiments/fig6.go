package experiments

import (
	"fmt"
	"io"

	"repro/internal/eval"
)

// Fig6Result carries the long-term-model comparison of Figure 6(a–d):
// MF(0) versus TF(U,0) across factor dimensionalities, at both the product
// and category level.
type Fig6Result struct {
	Factors []int
	MF      []eval.Result
	TF      []eval.Result
}

// BestAUC returns the best product-level AUC of each system and the K at
// which it occurs.
func (r *Fig6Result) BestAUC() (mfAUC float64, mfK int, tfAUC float64, tfK int) {
	for i, k := range r.Factors {
		if r.MF[i].AUC > mfAUC {
			mfAUC, mfK = r.MF[i].AUC, k
		}
		if r.TF[i].AUC > tfAUC {
			tfAUC, tfK = r.TF[i].AUC, k
		}
	}
	return
}

// RunFig6 reproduces Figures 6(a)–(d): TF(4,0) against MF(0) over the
// factor sweep, reporting product-level AUC (6a) and meanRank (6b) for
// both systems and category-level AUC (6c) and meanRank (6d) for TF.
func RunFig6(out io.Writer, sc Scale) (*Fig6Result, error) {
	return runFig6Sweep(out, sc, 0, "Figure 6(a–d) — TF(U,0) vs MF(0)")
}

// RunFig6e reproduces Figure 6(e): TF(4,1) against MF(1) (FPMC, the
// state-of-the-art next-basket recommender of Rendle et al.).
func RunFig6e(out io.Writer, sc Scale) (*Fig6Result, error) {
	return runFig6Sweep(out, sc, 1, "Figure 6(e) — TF(U,1) vs MF(1)=FPMC")
}

func runFig6Sweep(out io.Writer, sc Scale, markov int, title string) (*Fig6Result, error) {
	out = discardIfNil(out)
	w, err := BuildWorkload(sc, 0.5)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Factors: sc.FactorSweep}
	for _, k := range sc.FactorSweep {
		mf, _, err := trainAndEval(w, sc, sysSpec{U: 1, B: markov, SiblingMix: -1}, k)
		if err != nil {
			return nil, err
		}
		tf, _, err := trainAndEval(w, sc, sysSpec{U: w.MaxU(), B: markov, SiblingMix: -1}, k)
		if err != nil {
			return nil, err
		}
		res.MF = append(res.MF, mf)
		res.TF = append(res.TF, tf)
	}

	fmt.Fprintf(out, "%s (%s scale, U=%d)\n", title, sc.Name, w.MaxU())
	tw := newTable(out)
	fmt.Fprintln(tw, "K\tMF AUC\tTF AUC\tMF meanRank\tTF meanRank\tTF catAUC\tTF catMeanRank")
	for i, k := range res.Factors {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.1f\t%.1f\t%.4f\t%.2f\n",
			k, res.MF[i].AUC, res.TF[i].AUC,
			res.MF[i].MeanRank, res.TF[i].MeanRank,
			res.TF[i].CatAUC, res.TF[i].CatMeanRank)
	}
	tw.Flush()
	mfA, mfK, tfA, tfK := res.BestAUC()
	fmt.Fprintf(out, "best: MF %.4f @K=%d, TF %.4f @K=%d\n\n", mfA, mfK, tfA, tfK)
	return res, nil
}
