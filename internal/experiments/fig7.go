package experiments

import (
	"fmt"
	"io"

	"repro/internal/tsne"
	"repro/internal/vecmath"
)

// Fig7aResult carries Figure 7(a): AUC as the number of taxonomy levels
// grows from MF(0) (U=1) to the full tree.
type Fig7aResult struct {
	Levels []int
	AUC    []float64
}

// RunFig7a reproduces Figure 7(a): MF(0), TF(2,0), TF(3,0), TF(4,0) at the
// scale's fixed K.
func RunFig7a(out io.Writer, sc Scale) (*Fig7aResult, error) {
	out = discardIfNil(out)
	w, err := BuildWorkload(sc, 0.5)
	if err != nil {
		return nil, err
	}
	res := &Fig7aResult{}
	for u := 1; u <= w.MaxU(); u++ {
		r, _, err := trainAndEval(w, sc, sysSpec{U: u, B: 0, SiblingMix: -1}, sc.FixedK)
		if err != nil {
			return nil, err
		}
		res.Levels = append(res.Levels, u)
		res.AUC = append(res.AUC, r.AUC)
	}
	fmt.Fprintf(out, "Figure 7(a) — effect of taxonomy levels (%s scale, K=%d)\n", sc.Name, sc.FixedK)
	tw := newTable(out)
	fmt.Fprintln(tw, "system\tAUC")
	for i, u := range res.Levels {
		fmt.Fprintf(tw, "%s\t%.4f\n", sysSpec{U: u}.label(), res.AUC[i])
	}
	tw.Flush()
	fmt.Fprintln(out)
	return res, nil
}

// Fig7bResult carries Figure 7(b): the sparsity study across µ.
type Fig7bResult struct {
	Mu []float64
	MF []float64
	TF []float64
}

// Gap returns TF−MF AUC at each µ.
func (r *Fig7bResult) Gap() []float64 {
	out := make([]float64, len(r.Mu))
	for i := range r.Mu {
		out[i] = r.TF[i] - r.MF[i]
	}
	return out
}

// RunFig7b reproduces Figure 7(b): MF(0) vs TF(4,0) on splits of growing
// density µ ∈ {0.25, 0.50, 0.75}.
func RunFig7b(out io.Writer, sc Scale) (*Fig7bResult, error) {
	out = discardIfNil(out)
	res := &Fig7bResult{Mu: []float64{0.25, 0.50, 0.75}}
	for _, mu := range res.Mu {
		w, err := BuildWorkload(sc, mu)
		if err != nil {
			return nil, err
		}
		mf, _, err := trainAndEval(w, sc, sysSpec{U: 1, B: 0, SiblingMix: -1}, sc.FixedK)
		if err != nil {
			return nil, err
		}
		tf, _, err := trainAndEval(w, sc, sysSpec{U: w.MaxU(), B: 0, SiblingMix: -1}, sc.FixedK)
		if err != nil {
			return nil, err
		}
		res.MF = append(res.MF, mf.AUC)
		res.TF = append(res.TF, tf.AUC)
	}
	fmt.Fprintf(out, "Figure 7(b) — sparsity study (%s scale, K=%d)\n", sc.Name, sc.FixedK)
	tw := newTable(out)
	fmt.Fprintln(tw, "mu\tMF AUC\tTF AUC\tTF-MF gap")
	for i, mu := range res.Mu {
		fmt.Fprintf(tw, "%.2f\t%.4f\t%.4f\t%+.4f\n", mu, res.MF[i], res.TF[i], res.TF[i]-res.MF[i])
	}
	tw.Flush()
	fmt.Fprintln(out)
	return res, nil
}

// Fig7cResult carries Figure 7(c): cold-start (new item) accuracy.
type Fig7cResult struct {
	Factors   []int
	MFCold    []float64
	TFCold    []float64
	ColdCount []int
}

// RunFig7c reproduces Figure 7(c): the ranking quality of items absent
// from training. MF places them randomly; TF ranks them through their
// category factors.
func RunFig7c(out io.Writer, sc Scale) (*Fig7cResult, error) {
	out = discardIfNil(out)
	w, err := BuildWorkload(sc, 0.5)
	if err != nil {
		return nil, err
	}
	res := &Fig7cResult{Factors: sc.FactorSweep}
	for _, k := range sc.FactorSweep {
		mf, _, err := trainAndEval(w, sc, sysSpec{U: 1, B: 0, SiblingMix: -1}, k)
		if err != nil {
			return nil, err
		}
		tf, _, err := trainAndEval(w, sc, sysSpec{U: w.MaxU(), B: 0, SiblingMix: -1}, k)
		if err != nil {
			return nil, err
		}
		res.MFCold = append(res.MFCold, mf.ColdAUC)
		res.TFCold = append(res.TFCold, tf.ColdAUC)
		res.ColdCount = append(res.ColdCount, tf.ColdCount)
	}
	fmt.Fprintf(out, "Figure 7(c) — cold-start (new-item) AUC (%s scale)\n", sc.Name)
	tw := newTable(out)
	fmt.Fprintln(tw, "K\tMF coldAUC\tTF coldAUC\tcold positives")
	for i, k := range res.Factors {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%d\n", k, res.MFCold[i], res.TFCold[i], res.ColdCount[i])
	}
	tw.Flush()
	fmt.Fprintln(out)
	return res, nil
}

// Fig7dResult carries Figure 7(d): sibling-based training on vs off.
type Fig7dResult struct {
	Factors    []int
	WithSib    []float64
	WithoutSib []float64
}

// RunFig7d reproduces Figure 7(d): TF(4,0) trained with the sibling-based
// scheme against pure random-negative sampling.
func RunFig7d(out io.Writer, sc Scale) (*Fig7dResult, error) {
	out = discardIfNil(out)
	w, err := BuildWorkload(sc, 0.5)
	if err != nil {
		return nil, err
	}
	res := &Fig7dResult{Factors: sc.FactorSweep}
	for _, k := range sc.FactorSweep {
		with, _, err := trainAndEval(w, sc, sysSpec{U: w.MaxU(), B: 0, SiblingMix: sc.SiblingMix}, k)
		if err != nil {
			return nil, err
		}
		without, _, err := trainAndEval(w, sc, sysSpec{U: w.MaxU(), B: 0, SiblingMix: 0}, k)
		if err != nil {
			return nil, err
		}
		res.WithSib = append(res.WithSib, with.AUC)
		res.WithoutSib = append(res.WithoutSib, without.AUC)
	}
	fmt.Fprintf(out, "Figure 7(d) — sibling-based training (%s scale)\n", sc.Name)
	tw := newTable(out)
	fmt.Fprintln(tw, "K\tsibling AUC\tno-sibling AUC\tgain")
	for i, k := range res.Factors {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%+.4f\n", k, res.WithSib[i], res.WithoutSib[i], res.WithSib[i]-res.WithoutSib[i])
	}
	tw.Flush()
	fmt.Fprintln(out)
	return res, nil
}

// Fig7eResult carries Figure 7(e): the 2-D projection of the learned
// upper-taxonomy factors and the clustering statistics that quantify it.
type Fig7eResult struct {
	// RawStats measures clustering in the original K-dim factor space;
	// ProjStats in the 2-D embedding actually plotted by the paper.
	RawStats  tsne.ClusterStats
	ProjStats tsne.ClusterStats
	// Embedding rows align with Nodes (upper-level taxonomy nodes).
	Nodes     []int32
	Embedding *vecmath.Matrix
	// Method is "tsne" or "pca" (tsne for small node counts).
	Method string
}

// RunFig7e reproduces Figure 7(e): train TF(4,0), embed the effective
// factors of the top three taxonomy levels in 2-D, and measure how tightly
// children cluster around their parents.
func RunFig7e(out io.Writer, sc Scale) (*Fig7eResult, error) {
	out = discardIfNil(out)
	w, err := BuildWorkload(sc, 0.5)
	if err != nil {
		return nil, err
	}
	m, _, err := trainModel(w, sc, sysSpec{U: w.MaxU(), B: 0, SiblingMix: -1}, sc.FixedK)
	if err != nil {
		return nil, err
	}
	c := m.Compose()

	maxDepth := 3
	if maxDepth > w.Tree.Depth()-1 {
		maxDepth = w.Tree.Depth() - 1
	}
	var nodes []int32
	for d := 1; d <= maxDepth; d++ {
		nodes = append(nodes, w.Tree.Level(d)...)
	}
	gathered := tsne.GatherRows(c.EffNode, nodes)

	res := &Fig7eResult{Nodes: nodes}
	res.RawStats, err = tsne.HierarchyClustering(w.Tree, c.EffNode, 1, maxDepth, rngFor(sc.Seed+31))
	if err != nil {
		return nil, err
	}

	if len(nodes) <= 2500 {
		res.Method = "tsne"
		cfg := tsne.DefaultConfig()
		if p := float64(len(nodes)) / 4; p < cfg.Perplexity {
			cfg.Perplexity = p
		}
		res.Embedding, err = tsne.TSNE(gathered, cfg)
	} else {
		res.Method = "pca"
		res.Embedding = tsne.PCA(gathered, rngFor(sc.Seed+37))
	}
	if err != nil {
		return nil, err
	}

	// scatter the embedding back into a node-indexed matrix for the
	// hierarchy metric
	proj := vecmath.NewMatrix(w.Tree.NumNodes(), 2)
	for i, node := range nodes {
		vecmath.Copy(proj.Row(int(node)), res.Embedding.Row(i))
	}
	res.ProjStats, err = tsne.HierarchyClustering(w.Tree, proj, 1, maxDepth, rngFor(sc.Seed+41))
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(out, "Figure 7(e) — factor clustering by taxonomy (%s scale, %s embedding, %d nodes)\n",
		sc.Name, res.Method, len(nodes))
	tw := newTable(out)
	fmt.Fprintln(tw, "space\tchild-parent dist\trandom-pair dist\tratio (lower = clustered)")
	fmt.Fprintf(tw, "factor (K=%d)\t%.4f\t%.4f\t%.3f\n", sc.FixedK, res.RawStats.ChildParentDist, res.RawStats.RandomPairDist, res.RawStats.Ratio())
	fmt.Fprintf(tw, "2-D embedding\t%.4f\t%.4f\t%.3f\n", res.ProjStats.ChildParentDist, res.ProjStats.RandomPairDist, res.ProjStats.Ratio())
	tw.Flush()
	fmt.Fprintln(out)
	return res, nil
}

// Fig7fResult carries Figure 7(f): AUC versus Markov order.
type Fig7fResult struct {
	Orders []int
	AUC    []float64
}

// RunFig7f reproduces Figure 7(f): TF(4,B) for B ∈ {0..3}; the synthetic
// log carries genuine first- and second-order category dynamics, so AUC
// should improve as B grows (the claim of the figure's caption).
func RunFig7f(out io.Writer, sc Scale) (*Fig7fResult, error) {
	out = discardIfNil(out)
	w, err := BuildWorkload(sc, 0.5)
	if err != nil {
		return nil, err
	}
	res := &Fig7fResult{}
	for b := 0; b <= 3; b++ {
		r, _, err := trainAndEval(w, sc, sysSpec{U: w.MaxU(), B: b, SiblingMix: -1}, sc.FixedK)
		if err != nil {
			return nil, err
		}
		res.Orders = append(res.Orders, b)
		res.AUC = append(res.AUC, r.AUC)
	}
	fmt.Fprintf(out, "Figure 7(f) — effect of Markov order (%s scale, K=%d)\n", sc.Name, sc.FixedK)
	tw := newTable(out)
	fmt.Fprintln(tw, "system\tAUC")
	for i, b := range res.Orders {
		fmt.Fprintf(tw, "TF(%d,%d)\t%.4f\n", w.MaxU(), b, res.AUC[i])
	}
	tw.Flush()
	fmt.Fprintln(out)
	return res, nil
}
