package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner regenerates one figure of the paper at the given scale, writing
// its table to out.
type Runner func(out io.Writer, sc Scale) error

// Registry maps figure ids (as used by `tfrec-exp -fig`) to runners.
// RunFig6 covers panels 6a–6d from a single sweep; RunFig8ab covers both
// thread-scaling panels.
func Registry() map[string]Runner {
	wrap := func(f func(io.Writer, Scale) error) Runner { return f }
	return map[string]Runner{
		"5":   wrap(func(w io.Writer, sc Scale) error { _, err := RunFig5(w, sc); return err }),
		"6ad": wrap(func(w io.Writer, sc Scale) error { _, err := RunFig6(w, sc); return err }),
		"6e":  wrap(func(w io.Writer, sc Scale) error { _, err := RunFig6e(w, sc); return err }),
		"7a":  wrap(func(w io.Writer, sc Scale) error { _, err := RunFig7a(w, sc); return err }),
		"7b":  wrap(func(w io.Writer, sc Scale) error { _, err := RunFig7b(w, sc); return err }),
		"7c":  wrap(func(w io.Writer, sc Scale) error { _, err := RunFig7c(w, sc); return err }),
		"7d":  wrap(func(w io.Writer, sc Scale) error { _, err := RunFig7d(w, sc); return err }),
		"7e":  wrap(func(w io.Writer, sc Scale) error { _, err := RunFig7e(w, sc); return err }),
		"7f":  wrap(func(w io.Writer, sc Scale) error { _, err := RunFig7f(w, sc); return err }),
		"8ab": wrap(func(w io.Writer, sc Scale) error { _, err := RunFig8ab(w, sc, nil); return err }),
		"8c":  wrap(func(w io.Writer, sc Scale) error { _, err := RunFig8c(w, sc); return err }),
		"8d":  wrap(func(w io.Writer, sc Scale) error { _, err := RunFig8d(w, sc); return err }),
	}
}

// FigureIDs returns the registry keys in stable order.
func FigureIDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every figure in order, stopping at the first error.
func RunAll(out io.Writer, sc Scale) error {
	reg := Registry()
	for _, id := range FigureIDs() {
		if err := reg[id](out, sc); err != nil {
			return fmt.Errorf("experiments: figure %s: %w", id, err)
		}
	}
	return nil
}
