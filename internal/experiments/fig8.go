package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/train"
)

// Fig8abResult carries the parallel-training measurements of Figures 8(a)
// and 8(b): wall-clock time per epoch and speedup versus thread count for
// MF(0), TF(4,0) without caching, and TF(4,0) with the §6.1 caches.
type Fig8abResult struct {
	Threads []int
	// EpochTime[system][i] is the mean epoch duration at Threads[i];
	// systems are indexed by the Systems labels.
	Systems   []string
	EpochTime [][]time.Duration
	Speedup   [][]float64
}

// RunFig8ab reproduces Figures 8(a,b). threads may be nil, defaulting to
// {1, 2, 4, 8, 16, 32, 48} (the paper sweeps 1..50 on a 12-core box; we
// likewise oversubscribe past the physical cores).
func RunFig8ab(out io.Writer, sc Scale, threads []int) (*Fig8abResult, error) {
	out = discardIfNil(out)
	if len(threads) == 0 {
		threads = []int{1, 2, 4, 8, 16, 32, 48}
	}
	w, err := BuildWorkload(sc, 0.5)
	if err != nil {
		return nil, err
	}
	type system struct {
		label string
		u     int
		cache float64
	}
	systems := []system{
		{"MF(0)", 1, 0},
		{fmt.Sprintf("TF(%d,0) no caching", w.MaxU()), w.MaxU(), 0},
		{fmt.Sprintf("TF(%d,0) caching th=0.1", w.MaxU()), w.MaxU(), 0.1},
	}
	// The paper's epoch is "a fixed number of iterations for both models";
	// pinning the sample count also keeps epochs long enough to measure at
	// small scales.
	samplesPerEpoch := w.History.NumPurchases()
	if samplesPerEpoch < 100_000 {
		samplesPerEpoch = 100_000
	}
	res := &Fig8abResult{Threads: threads}
	for _, sys := range systems {
		res.Systems = append(res.Systems, sys.label)
		var times []time.Duration
		for _, th := range threads {
			p := model.Params{K: sc.FixedK, TaxonomyLevels: sys.u, MarkovOrder: 0, Alpha: 1, InitStd: 0.01}
			m, err := model.New(w.Tree, w.Log.NumUsers(), p, rngFor(sc.Seed+51))
			if err != nil {
				return nil, err
			}
			cfg := sc.TrainConfig()
			cfg.Epochs = 3
			cfg.SamplesPerEpoch = samplesPerEpoch
			cfg.Workers = th
			cfg.CacheThreshold = sys.cache
			// the 1-thread baseline must pay the same locking costs as
			// the n-thread runs for the speedup curve to mean anything
			cfg.ForceLocked = true
			if sys.u == 1 {
				cfg.SiblingMix = 0
			}
			stats, err := train.Train(m, w.History, cfg)
			if err != nil {
				return nil, err
			}
			times = append(times, stats.MeanEpochTime())
		}
		speedups := make([]float64, len(threads))
		for i := range threads {
			if times[i] > 0 {
				speedups[i] = float64(times[0]) / float64(times[i])
			}
		}
		res.EpochTime = append(res.EpochTime, times)
		res.Speedup = append(res.Speedup, speedups)
	}

	fmt.Fprintf(out, "Figure 8(a,b) — parallel training (%s scale, K=%d, %d samples/epoch)\n",
		sc.Name, sc.FixedK, samplesPerEpoch)
	tw := newTable(out)
	fmt.Fprint(tw, "threads")
	for _, s := range res.Systems {
		fmt.Fprintf(tw, "\t%s time\tspeedup", s)
	}
	fmt.Fprintln(tw)
	for i, th := range threads {
		fmt.Fprintf(tw, "%d", th)
		for s := range res.Systems {
			fmt.Fprintf(tw, "\t%v\t%.2f", res.EpochTime[s][i].Round(time.Microsecond), res.Speedup[s][i])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(out)
	return res, nil
}

// Fig8cdResult carries a cascaded-inference trade-off curve: for each keep
// percentage, the AUC ratio against naive inference and the wall-time
// ratio.
type Fig8cdResult struct {
	KeepPct   []int
	AccRatio  []float64
	TimeRatio []float64
	NaiveAUC  float64
}

// RunFig8c reproduces Figure 8(c): all of k1, k2, k3 grow together from
// 5% to 100%.
func RunFig8c(out io.Writer, sc Scale) (*Fig8cdResult, error) {
	return runCascadeTradeoff(out, sc, false, "Figure 8(c) — cascaded inference, sweeping all k_i")
}

// RunFig8d reproduces Figure 8(d): k1 = k2 = 100% and only the lowest
// category level's k3 grows, giving the monotone accuracy curve the paper
// notes.
func RunFig8d(out io.Writer, sc Scale) (*Fig8cdResult, error) {
	return runCascadeTradeoff(out, sc, true, "Figure 8(d) — cascaded inference, sweeping k3 only")
}

// cascadeUserAUC walks every test user once, producing the mean
// PrunedAUC of the first test transaction under the given scorer
// plus the wall time of the production ranking path. scoreFn fills dst
// with item scores for the user's query (−Inf marks items the cascade
// pruned away) and is used only for accuracy; rankFn is the production
// top-k call (naive scan or cascade) and is what the time ratio measures —
// the paper's Figure 8(c,d) compares inference cost, not metric
// bookkeeping.
func cascadeUserAUC(c *model.Composed, history, test *dataset.Dataset,
	scoreFn func(q, dst []float64), rankFn func(q []float64)) (float64, time.Duration) {
	q := make([]float64, c.K())
	scores := make([]float64, c.NumItems())
	var aucSum float64
	var elapsed time.Duration
	users := 0
	for u := 0; u < test.NumUsers(); u++ {
		baskets := test.Users[u].Baskets
		if len(baskets) == 0 {
			continue
		}
		seq := history.Users[u].Baskets
		c.BuildQueryInto(u, c.PrevBaskets(seq, len(seq)), q)
		start := time.Now()
		rankFn(q)
		elapsed += time.Since(start)
		scoreFn(q, scores)
		aucSum += eval.PrunedAUC(scores, baskets[0])
		users++
	}
	if users == 0 {
		return 0, elapsed
	}
	return aucSum / float64(users), elapsed
}

func runCascadeTradeoff(out io.Writer, sc Scale, leafOnly bool, title string) (*Fig8cdResult, error) {
	out = discardIfNil(out)
	w, err := BuildWorkload(sc, 0.5)
	if err != nil {
		return nil, err
	}
	m, _, err := trainModel(w, sc, sysSpec{U: w.MaxU(), B: 0, SiblingMix: -1}, sc.FixedK)
	if err != nil {
		return nil, err
	}
	c := m.Compose()

	const topK = 10
	naiveAUC, naiveTime := cascadeUserAUC(c, w.History, w.Split.Test,
		func(q, dst []float64) { c.ItemScoresInto(q, dst) },
		func(q []float64) { infer.Naive(c, q, topK) })

	res := &Fig8cdResult{NaiveAUC: naiveAUC}
	for _, pct := range []int{5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		f := float64(pct) / 100
		cfg := infer.UniformCascade(w.Tree.Depth(), 1.0)
		if leafOnly {
			cfg.KeepFrac[len(cfg.KeepFrac)-1] = f
		} else {
			for i := range cfg.KeepFrac {
				cfg.KeepFrac[i] = f
			}
		}
		if err := cfg.Validate(w.Tree.Depth()); err != nil {
			return nil, err
		}
		auc, elapsed := cascadeUserAUC(c, w.History, w.Split.Test,
			func(q, dst []float64) {
				s, _, err := infer.CascadeScores(c, q, cfg)
				if err != nil {
					panic(err) // validated above
				}
				copy(dst, s)
			},
			func(q []float64) {
				if _, _, err := infer.Cascade(c, q, cfg, topK); err != nil {
					panic(err)
				}
			})

		res.KeepPct = append(res.KeepPct, pct)
		acc := 0.0
		if naiveAUC > 0 {
			acc = auc / naiveAUC
		}
		res.AccRatio = append(res.AccRatio, acc)
		res.TimeRatio = append(res.TimeRatio, float64(elapsed)/float64(naiveTime))
	}

	fmt.Fprintf(out, "%s (%s scale, naive AUC %.4f, naive time %v)\n", title, sc.Name, naiveAUC, naiveTime.Round(time.Millisecond))
	tw := newTable(out)
	fmt.Fprintln(tw, "K%\taccuracy ratio\ttime ratio")
	for i, pct := range res.KeepPct {
		fmt.Fprintf(tw, "%d\t%.4f\t%.3f\n", pct, res.AccRatio[i], res.TimeRatio[i])
	}
	tw.Flush()
	fmt.Fprintln(out)
	return res, nil
}
