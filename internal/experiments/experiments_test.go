package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The experiment tests are the reproduction assertions: at tiny scale,
// with fixed seeds and deterministic serial training, each figure's
// qualitative claim must hold. Absolute numbers differ from the paper
// (synthetic substrate); orderings must not.

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", "paper"} {
		sc, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.Name != name {
			t.Fatalf("name mismatch: %s vs %s", sc.Name, name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("expected error for unknown scale")
	}
}

func TestBuildWorkload(t *testing.T) {
	w, err := BuildWorkload(Tiny(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if w.Tree.Depth() != 4 {
		t.Fatalf("depth = %d, want 4 (three category levels)", w.Tree.Depth())
	}
	if w.MaxU() != 4 {
		t.Fatalf("MaxU = %d, want 4", w.MaxU())
	}
	if w.History.NumPurchases() == 0 || w.Split.Test.NumPurchases() == 0 {
		t.Fatal("workload has empty sides")
	}
}

func TestFig5(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunFig5(&buf, Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AvgPurchasesPerUser <= 0 {
		t.Fatal("no purchases recorded")
	}
	if res.Stats.DistinctItemsPerUser.Total() != res.Users {
		t.Fatal("histogram total mismatch")
	}
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Fatal("missing table header")
	}
}

func TestFig6TFBeatsMF(t *testing.T) {
	res, err := RunFig6(nil, Tiny())
	if err != nil {
		t.Fatal(err)
	}
	mfBest, _, tfBest, _ := res.BestAUC()
	if tfBest <= mfBest {
		t.Fatalf("Fig6a shape violated: TF best AUC %.4f <= MF best %.4f", tfBest, mfBest)
	}
	// Fig 6b: TF's mean rank should be substantially better (lower)
	for i := range res.Factors {
		if res.TF[i].MeanRank >= res.MF[i].MeanRank {
			t.Fatalf("Fig6b shape violated at K=%d: TF rank %.1f >= MF rank %.1f",
				res.Factors[i], res.TF[i].MeanRank, res.MF[i].MeanRank)
		}
	}
	// Fig 6c/6d: category-level metrics exist and are strong
	for i := range res.Factors {
		if res.TF[i].CatAUC < res.TF[i].AUC-0.05 {
			t.Fatalf("Fig6c: category AUC %.4f unexpectedly below product AUC %.4f",
				res.TF[i].CatAUC, res.TF[i].AUC)
		}
		if res.TF[i].CatMeanRank <= 0 {
			t.Fatal("Fig6d: category mean rank missing")
		}
	}
}

func TestFig6eTFBeatsFPMC(t *testing.T) {
	res, err := RunFig6e(nil, Tiny())
	if err != nil {
		t.Fatal(err)
	}
	mfBest, _, tfBest, _ := res.BestAUC()
	if tfBest <= mfBest {
		t.Fatalf("Fig6e shape violated: TF(4,1) best %.4f <= FPMC best %.4f", tfBest, mfBest)
	}
}

func TestFig7aMoreLevelsHelp(t *testing.T) {
	res, err := RunFig7a(nil, Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AUC) != 4 {
		t.Fatalf("expected 4 systems, got %d", len(res.AUC))
	}
	first, last := res.AUC[0], res.AUC[len(res.AUC)-1]
	if last <= first {
		t.Fatalf("Fig7a shape violated: TF(4,0) %.4f <= MF(0) %.4f", last, first)
	}
}

func TestFig7bSparsityGap(t *testing.T) {
	res, err := RunFig7b(nil, Tiny())
	if err != nil {
		t.Fatal(err)
	}
	gaps := res.Gap()
	for i, g := range gaps {
		if g <= 0 {
			t.Fatalf("TF must beat MF at every mu; gap[%d] = %v", i, g)
		}
	}
	// the benefit must be largest on the sparsest split
	if gaps[0] <= gaps[len(gaps)-1] {
		t.Fatalf("Fig7b shape violated: sparse gap %.4f <= dense gap %.4f", gaps[0], gaps[len(gaps)-1])
	}
}

func TestFig7cColdStart(t *testing.T) {
	res, err := RunFig7c(nil, Tiny())
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range res.Factors {
		if res.ColdCount[i] == 0 {
			t.Fatalf("K=%d: no cold positives; the experiment is vacuous", k)
		}
		if res.TFCold[i] <= res.MFCold[i] {
			t.Fatalf("Fig7c shape violated at K=%d: TF cold %.4f <= MF cold %.4f",
				k, res.TFCold[i], res.MFCold[i])
		}
	}
}

func TestFig7dSiblingHelps(t *testing.T) {
	res, err := RunFig7d(nil, Tiny())
	if err != nil {
		t.Fatal(err)
	}
	var withSum, withoutSum float64
	for i := range res.Factors {
		withSum += res.WithSib[i]
		withoutSum += res.WithoutSib[i]
	}
	if withSum <= withoutSum {
		t.Fatalf("Fig7d shape violated: sibling mean %.4f <= no-sibling %.4f",
			withSum/float64(len(res.Factors)), withoutSum/float64(len(res.Factors)))
	}
}

func TestFig7eFactorsCluster(t *testing.T) {
	res, err := RunFig7e(nil, Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.RawStats.Ratio() >= 1 {
		t.Fatalf("factor space not clustered by taxonomy: ratio %.3f", res.RawStats.Ratio())
	}
	if res.Embedding.Rows() != len(res.Nodes) {
		t.Fatal("embedding row count mismatch")
	}
	if res.Method != "tsne" {
		t.Fatalf("tiny scale should use t-SNE, got %s", res.Method)
	}
}

func TestFig7fMarkovOrderHelps(t *testing.T) {
	res, err := RunFig7f(nil, Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AUC) != 4 {
		t.Fatalf("want orders 0..3, got %v", res.Orders)
	}
	if res.AUC[1] <= res.AUC[0] {
		t.Fatalf("Fig7f shape violated: TF(4,1) %.4f <= TF(4,0) %.4f", res.AUC[1], res.AUC[0])
	}
	best := res.AUC[0]
	for _, a := range res.AUC[1:] {
		if a > best {
			best = a
		}
	}
	if best != max3(res.AUC[1], res.AUC[2], res.AUC[3]) {
		t.Fatal("higher orders should hold the best AUC")
	}
}

func max3(a, b, c float64) float64 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return m
}

func TestFig8abRunsAndMeasures(t *testing.T) {
	res, err := RunFig8ab(nil, Tiny(), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Systems) != 3 {
		t.Fatalf("want 3 systems, got %v", res.Systems)
	}
	for s := range res.Systems {
		if len(res.EpochTime[s]) != 3 {
			t.Fatal("missing measurements")
		}
		for _, d := range res.EpochTime[s] {
			if d <= 0 {
				t.Fatal("non-positive epoch time")
			}
		}
		if res.Speedup[s][0] != 1 {
			t.Fatalf("speedup at 1 thread must be 1, got %v", res.Speedup[s][0])
		}
	}
}

func TestFig8cTradeoffShape(t *testing.T) {
	res, err := RunFig8c(nil, Tiny())
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.KeepPct) - 1
	if res.KeepPct[last] != 100 {
		t.Fatal("sweep must end at 100%")
	}
	// at 100% the cascade is exact
	if res.AccRatio[last] < 0.999 || res.AccRatio[last] > 1.001 {
		t.Fatalf("accuracy ratio at k=100%% is %.4f, want 1", res.AccRatio[last])
	}
	// pruning must reduce accuracy at the smallest keep
	if res.AccRatio[0] >= res.AccRatio[last] {
		t.Fatalf("no trade-off visible: %.4f at 5%% vs %.4f at 100%%", res.AccRatio[0], res.AccRatio[last])
	}
}

func TestFig8dMonotoneAccuracy(t *testing.T) {
	res, err := RunFig8d(nil, Tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Holding upper levels at 100%, accuracy grows with k3: candidates are
	// only added. The PrunedAUC convention allows a newly admitted
	// negative to overtake an already-ranked positive, so tolerate tiny
	// dips (the paper's own Figure 8(c) curve is non-monotone; 8(d) is
	// monotone up to measurement noise).
	const tol = 0.01
	for i := 1; i < len(res.AccRatio); i++ {
		if res.AccRatio[i] < res.AccRatio[i-1]-tol {
			t.Fatalf("Fig8d monotonicity violated at %d%%: %.4f -> %.4f",
				res.KeepPct[i], res.AccRatio[i-1], res.AccRatio[i])
		}
	}
	if res.AccRatio[len(res.AccRatio)-1] < 0.999 {
		t.Fatal("k3=100% must recover naive accuracy")
	}
	// and it must rise substantially overall
	if res.AccRatio[0] > res.AccRatio[len(res.AccRatio)-1]-0.2 {
		t.Fatalf("no growth across the sweep: %.4f -> %.4f", res.AccRatio[0], res.AccRatio[len(res.AccRatio)-1])
	}
}

func TestRegistryCoversAllFigures(t *testing.T) {
	ids := FigureIDs()
	want := []string{"5", "6ad", "6e", "7a", "7b", "7c", "7d", "7e", "7f", "8ab", "8c", "8d"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d figures, want %d: %v", len(ids), len(want), ids)
	}
	reg := Registry()
	for _, id := range want {
		if reg[id] == nil {
			t.Fatalf("missing figure %s", id)
		}
	}
}
