// Package experiments regenerates every figure of the evaluation section
// (§7) of Kanagal et al. (VLDB 2012). Each RunFigX function builds the
// workload, trains the systems under comparison, prints the figure's
// series as an aligned text table, and returns a result struct the
// benchmark harness asserts shape properties on. DESIGN.md carries the
// per-figure index; EXPERIMENTS.md records paper-vs-measured outcomes.
package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/synth"
	"repro/internal/taxonomy"
	"repro/internal/train"
)

// Scale bundles every size-dependent knob of the harness so the same
// experiment code runs from CI-sized to paper-sized.
type Scale struct {
	// Name identifies the preset (tiny/small/medium/paper).
	Name string
	// Taxonomy is the tree shape; all presets keep the paper's three
	// category levels so TF(4,·) is meaningful.
	Taxonomy taxonomy.GenConfig
	// Users / MeanTxns parameterize the synthetic log.
	Users    int
	MeanTxns float64
	// Epochs is the per-model training budget.
	Epochs int
	// FactorSweep is the K axis of Figures 6(a–e), 7(c), 7(d).
	FactorSweep []int
	// FixedK is the dimensionality for single-K figures (7a, 7e, 7f, 8).
	FixedK int
	// LearnRate / Lambda / SiblingMix are the training defaults; Figure
	// 7(d) overrides SiblingMix.
	LearnRate  float64
	Lambda     float64
	SiblingMix float64
	// Seed drives taxonomy generation, the synthetic log and training.
	Seed uint64
}

// Tiny is the unit-test and benchmark scale: seconds per figure.
func Tiny() Scale {
	return Scale{
		Name:        "tiny",
		Taxonomy:    taxonomy.GenConfig{CategoryLevels: []int{3, 9, 24}, Items: 240, Skew: 0.4},
		Users:       350,
		MeanTxns:    6,
		Epochs:      12,
		FactorSweep: []int{8, 16},
		FixedK:      8,
		LearnRate:   0.05,
		Lambda:      0.005,
		SiblingMix:  0.5,
		Seed:        42,
	}
}

// Small is the default scale of the exp CLI: minutes for the full set.
func Small() Scale {
	return Scale{
		Name:        "small",
		Taxonomy:    taxonomy.GenConfig{CategoryLevels: []int{6, 24, 96}, Items: 2400, Skew: 0.5},
		Users:       2000,
		MeanTxns:    6,
		Epochs:      25,
		FactorSweep: []int{10, 20, 30, 40, 50},
		FixedK:      20,
		LearnRate:   0.05,
		Lambda:      0.005,
		SiblingMix:  0.5,
		Seed:        42,
	}
}

// Medium approaches the paper's relative sparsity; tens of minutes.
func Medium() Scale {
	return Scale{
		Name:        "medium",
		Taxonomy:    taxonomy.GenConfig{CategoryLevels: []int{12, 72, 480}, Items: 30000, Skew: 0.6},
		Users:       20000,
		MeanTxns:    6,
		Epochs:      30,
		FactorSweep: []int{10, 20, 30, 40, 50},
		FixedK:      20,
		LearnRate:   0.05,
		Lambda:      0.005,
		SiblingMix:  0.5,
		Seed:        42,
	}
}

// Paper is the full published scale (1M users, 1.5M products). It needs
// several GB of memory and hours of CPU; it exists so the reproduction is
// honest about what the full run would be, not as a default.
func Paper() Scale {
	return Scale{
		Name:        "paper",
		Taxonomy:    taxonomy.PaperShape(1),
		Users:       1000000,
		MeanTxns:    4,
		Epochs:      30,
		FactorSweep: []int{10, 20, 30, 40, 50},
		FixedK:      20,
		LearnRate:   0.05,
		Lambda:      0.005,
		SiblingMix:  0.5,
		Seed:        42,
	}
}

// ByName resolves a preset name.
func ByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny(), nil
	case "small":
		return Small(), nil
	case "medium":
		return Medium(), nil
	case "paper":
		return Paper(), nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (want tiny|small|medium|paper)", name)
}

// TrainConfig returns the scale's base training configuration; callers
// override SiblingMix/Workers per experiment.
func (sc Scale) TrainConfig() train.Config {
	return train.Config{
		Epochs:     sc.Epochs,
		LearnRate:  sc.LearnRate,
		Lambda:     sc.Lambda,
		SiblingMix: sc.SiblingMix,
		Workers:    1,
		Seed:       sc.Seed + 1,
	}
}

// SynthConfig returns the generator settings for the scale.
func (sc Scale) SynthConfig() synth.Config {
	cfg := synth.DefaultConfig()
	cfg.Users = sc.Users
	cfg.MeanTxns = sc.MeanTxns
	cfg.Seed = sc.Seed + 2
	return cfg
}

// Workload is the generated world every figure runs against: taxonomy,
// full log, ground truth, and the µ-split with its merged history side.
type Workload struct {
	Tree    *taxonomy.Tree
	Log     *dataset.Dataset
	Truth   *synth.GroundTruth
	Split   dataset.Split
	History *dataset.Dataset // train + validation, the observed context
}

// BuildWorkload generates the synthetic world for a scale at the given
// train fraction µ (the paper's default is 0.5).
func BuildWorkload(sc Scale, mu float64) (*Workload, error) {
	tree, err := taxonomy.Generate(sc.Taxonomy, rngFor(sc.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: taxonomy: %w", err)
	}
	log, truth, err := synth.Generate(tree, sc.SynthConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: synth: %w", err)
	}
	splitCfg := dataset.DefaultSplitConfig()
	splitCfg.Mu = mu
	splitCfg.Seed = sc.Seed + 3
	split := log.Split(splitCfg)
	return &Workload{
		Tree:    tree,
		Log:     log,
		Truth:   truth,
		Split:   split,
		History: dataset.Concat(split.Train, split.Validation),
	}, nil
}

// MaxU returns the paper's "4": the number of taxonomy levels available
// from the item level up to (and excluding) the root.
func (w *Workload) MaxU() int { return w.Tree.Depth() }
