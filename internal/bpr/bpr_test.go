package bpr

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

func testTree(t *testing.T) *taxonomy.Tree {
	t.Helper()
	return taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{3, 6},
		Items:          24,
		Skew:           0,
	}, vecmath.NewRNG(2))
}

func newModel(t *testing.T, tree *taxonomy.Tree, p model.Params) *model.TF {
	t.Helper()
	m, err := model.New(tree, 10, p, vecmath.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// pairScore computes x = s(i) − s(j) directly from the model, the quantity
// the BPR step pushes upward.
func pairScore(m *model.TF, u, i, j int, prev []dataset.Basket) float64 {
	q := make([]float64, m.K())
	m.BuildQueryInto(u, prev, q)
	return m.Score(q, i) - m.Score(q, j)
}

// TestStepGradientNumerically is the core correctness test for the
// hand-rolled SGD: with λ=0 the parameter movement divided by ε must equal
// the true gradient of ln σ(x) at the pre-step point, because Step
// computes every coefficient before writing. The true gradient is
// estimated by central finite differences on the model's own scoring path.
func TestStepGradientNumerically(t *testing.T) {
	tree := testTree(t)
	p := model.Params{K: 4, TaxonomyLevels: 3, MarkovOrder: 2, Alpha: 0.8, InitStd: 0.3}
	m := newModel(t, tree, p)

	u, i, j := 2, 5, 17
	prev := []dataset.Basket{{3, 7}, {11}}

	logLik := func() float64 {
		return vecmath.LogSigmoid(pairScore(m, u, i, j, prev))
	}

	// snapshot, then one exact step
	userBefore := m.User.Clone()
	nodeBefore := m.Node.Clone()
	nextBefore := m.Next.Clone()
	const eps = 1e-4
	st := NewStepper(m, PlainStores(m), StepConfig{LearnRate: eps, Lambda: 0}, vecmath.NewRNG(4))
	st.Step(u, i, j, prev)

	userAfter := m.User.Clone()
	nodeAfter := m.Node.Clone()
	nextAfter := m.Next.Clone()

	// restore to the pre-step point for finite differencing
	copy(m.User.Data(), userBefore.Data())
	copy(m.Node.Data(), nodeBefore.Data())
	copy(m.Next.Data(), nextBefore.Data())

	// Frozen rows (outside the trained band) must not move even though the
	// objective has nonzero gradient there — that is what
	// taxonomyUpdateLevels < full depth means.
	check := func(name string, before, after *vecmath.Matrix, live *vecmath.Matrix, nodeIndexed bool) {
		const h = 1e-6
		for row := 0; row < live.Rows(); row++ {
			frozen := nodeIndexed && !m.TrainedNode(row)
			liveRow := live.Row(row)
			beforeRow, afterRow := before.Row(row), after.Row(row)
			for k := range liveRow {
				analytic := (afterRow[k] - beforeRow[k]) / eps
				if frozen {
					if analytic != 0 {
						t.Fatalf("%s[%d][%d]: frozen parameter moved by %v", name, row, k, analytic*eps)
					}
					continue
				}
				orig := liveRow[k]
				liveRow[k] = orig + h
				up := logLik()
				liveRow[k] = orig - h
				down := logLik()
				liveRow[k] = orig
				numeric := (up - down) / (2 * h)
				if math.Abs(analytic-numeric) > 1e-4*(1+math.Abs(numeric)) {
					t.Fatalf("%s[%d][%d]: analytic %v vs numeric %v", name, row, k, analytic, numeric)
				}
			}
		}
	}
	check("user", userBefore, userAfter, m.User, false)
	check("node", nodeBefore, nodeAfter, m.Node, true)
	check("next", nextBefore, nextAfter, m.Next, true)
}

func TestStepIncreasesPairScore(t *testing.T) {
	tree := testTree(t)
	m := newModel(t, tree, model.Params{K: 6, TaxonomyLevels: 3, MarkovOrder: 1, Alpha: 1, InitStd: 0.1})
	u, i, j := 1, 3, 20
	prev := []dataset.Basket{{8}}
	st := NewStepper(m, PlainStores(m), StepConfig{LearnRate: 0.1, Lambda: 0}, vecmath.NewRNG(5))
	before := pairScore(m, u, i, j, prev)
	for step := 0; step < 20; step++ {
		st.Step(u, i, j, prev)
	}
	after := pairScore(m, u, i, j, prev)
	if after <= before {
		t.Fatalf("pair score did not increase: %v -> %v", before, after)
	}
}

func TestStepLogLikelihoodImproves(t *testing.T) {
	tree := testTree(t)
	m := newModel(t, tree, model.Params{K: 4, TaxonomyLevels: 2, InitStd: 0.1, Alpha: 1})
	st := NewStepper(m, PlainStores(m), StepConfig{LearnRate: 0.1, Lambda: 0.001}, vecmath.NewRNG(6))
	first := st.Step(0, 1, 2, nil)
	var last float64
	for s := 0; s < 50; s++ {
		last = st.Step(0, 1, 2, nil)
	}
	if last <= first {
		t.Fatalf("ln sigma did not improve: %v -> %v", first, last)
	}
}

func TestRegularizationShrinksFactors(t *testing.T) {
	tree := testTree(t)
	m := newModel(t, tree, model.Params{K: 4, TaxonomyLevels: 2, InitStd: 0.5, Alpha: 1})
	// λ large, and alternate (i,j) so ranking gradients roughly cancel
	st := NewStepper(m, PlainStores(m), StepConfig{LearnRate: 0.05, Lambda: 1.0}, vecmath.NewRNG(7))
	norm0 := vecmath.Norm2(m.Node.Data())
	for s := 0; s < 200; s++ {
		st.Step(0, 1, 2, nil)
		st.Step(0, 2, 1, nil)
	}
	norm1 := vecmath.Norm2(m.Node.Data())
	if norm1 >= norm0 {
		t.Fatalf("regularization failed to shrink offsets: %v -> %v", norm0, norm1)
	}
}

func TestStepOnlyTouchesInvolvedRows(t *testing.T) {
	tree := testTree(t)
	m := newModel(t, tree, model.Params{K: 4, TaxonomyLevels: 3, MarkovOrder: 1, Alpha: 1, InitStd: 0.2})
	u, i, j := 0, 2, 9
	prev := []dataset.Basket{{4}}
	nodeBefore := m.Node.Clone()
	userBefore := m.User.Clone()
	nextBefore := m.Next.Clone()
	st := NewStepper(m, PlainStores(m), StepConfig{LearnRate: 0.1, Lambda: 0.01}, vecmath.NewRNG(8))
	st.Step(u, i, j, prev)

	involvedNode := map[int]bool{}
	band := m.TrainedBand()
	for _, it := range []int{i, j} {
		for mIdx := 0; mIdx < band; mIdx++ {
			involvedNode[int(m.ItemPath(it)[mIdx])] = true
		}
	}
	for node := 0; node < tree.NumNodes(); node++ {
		changed := rowDiff(m.Node, nodeBefore, node) > 0
		if changed && !involvedNode[node] {
			t.Fatalf("node %d changed but is not on either path band", node)
		}
	}
	involvedNext := map[int]bool{}
	for mIdx := 0; mIdx < band; mIdx++ {
		involvedNext[int(m.ItemPath(4)[mIdx])] = true
	}
	for node := 0; node < tree.NumNodes(); node++ {
		if rowDiff(m.Next, nextBefore, node) > 0 && !involvedNext[node] {
			t.Fatalf("next offset %d changed unexpectedly", node)
		}
	}
	for user := 0; user < m.NumUsers(); user++ {
		if rowDiff(m.User, userBefore, user) > 0 && user != u {
			t.Fatalf("user %d changed but only %d was trained", user, u)
		}
	}
}

func rowDiff(a, b *vecmath.Matrix, row int) float64 {
	var d float64
	ra, rb := a.Row(row), b.Row(row)
	for k := range ra {
		d += math.Abs(ra[k] - rb[k])
	}
	return d
}

func TestSampleNegativeAvoidsBasket(t *testing.T) {
	tree := testTree(t)
	m := newModel(t, tree, model.Params{K: 2, TaxonomyLevels: 1, InitStd: 0.1, Alpha: 1})
	st := NewStepper(m, PlainStores(m), StepConfig{LearnRate: 0.1}, vecmath.NewRNG(9))
	basket := dataset.Basket{0, 1, 2, 3}
	for trial := 0; trial < 500; trial++ {
		j := st.SampleNegative(basket)
		if basket.Contains(int32(j)) {
			t.Fatalf("negative %d is in the basket", j)
		}
		if j < 0 || j >= m.NumItems() {
			t.Fatalf("negative %d out of range", j)
		}
	}
}

func TestSiblingPassMovesOnlySiblingOffsets(t *testing.T) {
	tree := testTree(t)
	m := newModel(t, tree, model.Params{K: 4, TaxonomyLevels: 3, InitStd: 0.2, Alpha: 1})
	i := 7
	nodeBefore := m.Node.Clone()
	st := NewStepper(m, PlainStores(m), StepConfig{LearnRate: 0.1, Lambda: 0}, vecmath.NewRNG(10))
	st.SiblingPass(0, i, nil)

	// changed nodes must be an ancestor of i (positive side) or a sibling
	// of one of those ancestors (negative side)
	allowed := map[int]bool{}
	band := m.TrainedBand()
	path := m.ItemPath(i)
	for mIdx := 0; mIdx < band; mIdx++ {
		a := int(path[mIdx])
		if a == tree.Root() {
			break
		}
		for _, sib := range tree.Children(tree.Parent(a)) {
			allowed[int(sib)] = true
		}
	}
	for node := 0; node < tree.NumNodes(); node++ {
		if rowDiff(m.Node, nodeBefore, node) > 0 && !allowed[node] {
			t.Fatalf("node %d changed but is neither ancestor nor ancestor-sibling", node)
		}
	}
}

func TestSiblingPassImprovesAncestorContrast(t *testing.T) {
	tree := testTree(t)
	m := newModel(t, tree, model.Params{K: 4, TaxonomyLevels: 3, InitStd: 0.1, Alpha: 1})
	u, i := 0, 7
	q := make([]float64, m.K())
	st := NewStepper(m, PlainStores(m), StepConfig{LearnRate: 0.05, Lambda: 0}, vecmath.NewRNG(11))
	// mean score of i's leaf-category ancestor against its siblings
	contrast := func() float64 {
		m.BuildQueryInto(u, nil, q)
		a := int(m.ItemPath(i)[1]) // leaf-category ancestor
		var buf, sibBuf = make([]float64, m.K()), make([]float64, m.K())
		m.NodeFactorInto(a, buf)
		var worst float64
		n := 0
		for _, sib := range tree.Children(tree.Parent(a)) {
			if int(sib) == a {
				continue
			}
			m.NodeFactorInto(int(sib), sibBuf)
			worst += vecmath.Dot(q, buf) - vecmath.Dot(q, sibBuf)
			n++
		}
		return worst / float64(n)
	}
	before := contrast()
	for s := 0; s < 200; s++ {
		st.SiblingPass(u, i, nil)
	}
	after := contrast()
	if after <= before {
		t.Fatalf("sibling training did not raise ancestor contrast: %v -> %v", before, after)
	}
}

func TestSharedAncestorGradientsCancel(t *testing.T) {
	tree := testTree(t)
	m := newModel(t, tree, model.Params{K: 3, TaxonomyLevels: 3, InitStd: 0.2, Alpha: 1})
	// find two items sharing their leaf-category parent
	var i, j int = -1, -1
	for a := 0; a < m.NumItems() && i < 0; a++ {
		for b := a + 1; b < m.NumItems(); b++ {
			if m.ItemPath(a)[1] == m.ItemPath(b)[1] {
				i, j = a, b
				break
			}
		}
	}
	if i < 0 {
		t.Skip("no item pair shares a parent in this tree")
	}
	shared := int(m.ItemPath(i)[1])
	before := m.Node.Clone()
	st := NewStepper(m, PlainStores(m), StepConfig{LearnRate: 0.1, Lambda: 0}, vecmath.NewRNG(12))
	st.Step(0, i, j, nil)
	if d := rowDiff(m.Node, before, shared); d > 1e-12 {
		t.Fatalf("shared ancestor moved by %v; gradients must cancel", d)
	}
	// but the leaves themselves moved
	if rowDiff(m.Node, before, int(m.ItemPath(i)[0])) == 0 {
		t.Fatal("positive leaf did not move")
	}
}

func TestU1NeverTouchesInteriorNodes(t *testing.T) {
	tree := testTree(t)
	m := newModel(t, tree, model.Params{K: 4, TaxonomyLevels: 1, MarkovOrder: 1, Alpha: 1, InitStd: 0.2})
	st := NewStepper(m, PlainStores(m), StepConfig{LearnRate: 0.1, Lambda: 0.01}, vecmath.NewRNG(13))
	rng := vecmath.NewRNG(14)
	for s := 0; s < 200; s++ {
		i := rng.Intn(m.NumItems())
		j := st.SampleNegative(dataset.Basket{int32(i)})
		st.Step(rng.Intn(m.NumUsers()), i, j, []dataset.Basket{{int32(rng.Intn(m.NumItems()))}})
	}
	for d := 0; d < tree.Depth(); d++ {
		for _, node := range tree.Level(d) {
			if vecmath.Norm2(m.Node.Row(int(node))) != 0 || vecmath.Norm2(m.Next.Row(int(node))) != 0 {
				t.Fatalf("interior node %d trained under U=1 (plain MF must stay flat)", node)
			}
		}
	}
}

func TestStepperDeterminism(t *testing.T) {
	tree := testTree(t)
	run := func() *model.TF {
		m := newModel(t, tree, model.Params{K: 4, TaxonomyLevels: 3, MarkovOrder: 1, Alpha: 1, InitStd: 0.1})
		st := NewStepper(m, PlainStores(m), StepConfig{LearnRate: 0.05, Lambda: 0.01}, vecmath.NewRNG(15))
		for s := 0; s < 100; s++ {
			st.Step(s%m.NumUsers(), s%m.NumItems(), (s*7+1)%m.NumItems(), nil)
			st.SiblingPass(s%m.NumUsers(), s%m.NumItems(), nil)
		}
		return m
	}
	a, b := run(), run()
	if a.Node.MaxAbsDiff(b.Node) != 0 || a.User.MaxAbsDiff(b.User) != 0 {
		t.Fatal("identical seeds must produce identical models")
	}
}
