package bpr

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/vecmath"
)

// TestBiasGradientNumerically repeats the finite-difference check with
// UseBias enabled, covering the bias update path end to end.
func TestBiasGradientNumerically(t *testing.T) {
	tree := testTree(t)
	p := model.Params{K: 3, TaxonomyLevels: 3, MarkovOrder: 1, Alpha: 0.8, InitStd: 0.3, UseBias: true}
	m := newModel(t, tree, p)
	// give biases nonzero values so shrinkage terms would show up if the
	// test config had lambda != 0
	rng := vecmath.NewRNG(99)
	for node := 0; node < tree.NumNodes(); node++ {
		m.Bias.Row(node)[0] = 0.2 * rng.NormFloat64()
	}

	u, i, j := 1, 3, 19
	prev := []dataset.Basket{{5}}
	logLik := func() float64 {
		return vecmath.LogSigmoid(pairScore(m, u, i, j, prev))
	}

	biasBefore := m.Bias.Clone()
	userBefore := m.User.Clone()
	nodeBefore := m.Node.Clone()
	nextBefore := m.Next.Clone()
	const eps = 1e-4
	st := NewStepper(m, PlainStores(m), StepConfig{LearnRate: eps, Lambda: 0}, vecmath.NewRNG(4))
	st.Step(u, i, j, prev)
	biasAfter := m.Bias.Clone()
	// restore the whole pre-step point: the finite difference must probe
	// the same state the analytic gradient was computed at
	m.Bias.CopyRowsFrom(biasBefore)
	m.User.CopyRowsFrom(userBefore)
	m.Node.CopyRowsFrom(nodeBefore)
	m.Next.CopyRowsFrom(nextBefore)

	const h = 1e-6
	for node := 0; node < tree.NumNodes(); node++ {
		analytic := (biasAfter.Row(node)[0] - biasBefore.Row(node)[0]) / eps
		if !m.TrainedNode(node) {
			if analytic != 0 {
				t.Fatalf("frozen bias %d moved", node)
			}
			continue
		}
		orig := m.Bias.Row(node)[0]
		m.Bias.Row(node)[0] = orig + h
		up := logLik()
		m.Bias.Row(node)[0] = orig - h
		down := logLik()
		m.Bias.Row(node)[0] = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(analytic-numeric) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("bias[%d]: analytic %v vs numeric %v", node, analytic, numeric)
		}
	}
}

func TestBiasDisabledStaysZero(t *testing.T) {
	tree := testTree(t)
	m := newModel(t, tree, model.Params{K: 4, TaxonomyLevels: 3, InitStd: 0.1, Alpha: 1})
	st := NewStepper(m, PlainStores(m), StepConfig{LearnRate: 0.1, Lambda: 0.01}, vecmath.NewRNG(5))
	for s := 0; s < 100; s++ {
		st.Step(s%m.NumUsers(), s%m.NumItems(), (s*3+1)%m.NumItems(), nil)
		st.SiblingPass(s%m.NumUsers(), s%m.NumItems(), nil)
	}
	for node := 0; node < tree.NumNodes(); node++ {
		if m.Bias.Row(node)[0] != 0 {
			t.Fatalf("bias %d trained despite UseBias=false", node)
		}
	}
}

func TestBiasLearnsPopularity(t *testing.T) {
	tree := testTree(t)
	m := newModel(t, tree, model.Params{K: 4, TaxonomyLevels: 3, InitStd: 0.01, Alpha: 1, UseBias: true})
	st := NewStepper(m, PlainStores(m), StepConfig{LearnRate: 0.1, Lambda: 0.001}, vecmath.NewRNG(6))
	// item 0 is bought by everyone; random negatives elsewhere
	rng := vecmath.NewRNG(7)
	for s := 0; s < 1500; s++ {
		u := rng.Intn(m.NumUsers())
		j := 1 + rng.Intn(m.NumItems()-1)
		st.Step(u, 0, j, nil)
	}
	popular := m.ItemBias(0)
	var others float64
	for it := 1; it < m.NumItems(); it++ {
		others += m.ItemBias(it)
	}
	others /= float64(m.NumItems() - 1)
	if popular <= others {
		t.Fatalf("popular item bias %v should exceed mean %v", popular, others)
	}
}

func TestBiasSharesThroughCategory(t *testing.T) {
	tree := testTree(t)
	m := newModel(t, tree, model.Params{K: 4, TaxonomyLevels: 3, InitStd: 0.01, Alpha: 1, UseBias: true})
	st := NewStepper(m, PlainStores(m), StepConfig{LearnRate: 0.1, Lambda: 0.001}, vecmath.NewRNG(8))
	// buy only item 0; its never-bought category sibling should still gain
	// bias over items in other categories, via the shared category offset
	var sibling int = -1
	for it := 1; it < m.NumItems(); it++ {
		if m.ItemPath(it)[1] == m.ItemPath(0)[1] {
			sibling = it
			break
		}
	}
	if sibling < 0 {
		t.Skip("item 0 has no category sibling")
	}
	var outsider int = -1
	for it := 1; it < m.NumItems(); it++ {
		if m.ItemPath(it)[2] != m.ItemPath(0)[2] {
			outsider = it
			break
		}
	}
	rng := vecmath.NewRNG(9)
	for s := 0; s < 1000; s++ {
		j := outsider
		if rng.Float64() < 0.5 {
			j = 1 + rng.Intn(m.NumItems()-1)
		}
		if j == 0 || j == sibling {
			continue
		}
		st.Step(rng.Intn(m.NumUsers()), 0, j, nil)
	}
	if m.ItemBias(sibling) <= m.ItemBias(outsider) {
		t.Fatalf("sibling bias %v should exceed outsider %v via category sharing",
			m.ItemBias(sibling), m.ItemBias(outsider))
	}
}

func TestUniformDecayWeights(t *testing.T) {
	p := model.Params{K: 2, TaxonomyLevels: 1, MarkovOrder: 4, Alpha: 2, UniformDecay: true}
	w := p.DecayWeights()
	for n, v := range w {
		if math.Abs(v-0.5) > 1e-12 {
			t.Fatalf("uniform weight[%d] = %v, want 0.5", n, v)
		}
	}
}

func TestRegularizeEffectiveShrinksToo(t *testing.T) {
	tree := testTree(t)
	m := newModel(t, tree, model.Params{K: 4, TaxonomyLevels: 3, InitStd: 0.5, Alpha: 1})
	st := NewStepper(m, PlainStores(m), StepConfig{LearnRate: 0.05, Lambda: 1.0, RegularizeEffective: true}, vecmath.NewRNG(10))
	norm0 := vecmath.Norm2(m.Node.Data())
	for s := 0; s < 200; s++ {
		st.Step(0, 1, 2, nil)
		st.Step(0, 2, 1, nil)
	}
	norm1 := vecmath.Norm2(m.Node.Data())
	if norm1 >= norm0 {
		t.Fatalf("effective regularization failed to shrink: %v -> %v", norm0, norm1)
	}
}

// With lambda=0 both regularization modes must produce identical steps —
// the modes differ only in the shrinkage term.
func TestRegularizationModesAgreeAtLambdaZero(t *testing.T) {
	tree := testTree(t)
	build := func(regEff bool) *model.TF {
		m := newModel(t, tree, model.Params{K: 4, TaxonomyLevels: 3, InitStd: 0.2, Alpha: 1})
		st := NewStepper(m, PlainStores(m), StepConfig{LearnRate: 0.05, Lambda: 0, RegularizeEffective: regEff}, vecmath.NewRNG(11))
		for s := 0; s < 50; s++ {
			st.Step(s%m.NumUsers(), s%m.NumItems(), (s*5+2)%m.NumItems(), nil)
		}
		return m
	}
	a, b := build(false), build(true)
	if d := a.Node.MaxAbsDiff(b.Node); d > 1e-12 {
		t.Fatalf("modes diverge at lambda=0 by %v", d)
	}
}
