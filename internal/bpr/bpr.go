// Package bpr implements Bayesian Personalized Ranking SGD over the TF
// model (Kanagal et al., VLDB 2012 §4): the per-sample gradient step of
// Eq. 6–7, uniform negative sampling, and the paper's sibling-based
// training scheme (§4.2).
//
// Two deliberate corrections/clarifications versus the paper's text, both
// documented in DESIGN.md: the sign of ∂L/∂vI_i follows the actual
// derivative of Eq. 3 (the printed minus is a typo), and the Gaussian
// prior (regularization) is applied to each taxonomy *offset* — which is
// precisely the prior that shrinks children toward their parents.
package bpr

import (
	"repro/internal/dataset"
	"repro/internal/factors"
	"repro/internal/model"
	"repro/internal/vecmath"
)

// StepConfig carries the SGD hyper-parameters of one gradient step.
type StepConfig struct {
	// LearnRate is ε in Eq. 7.
	LearnRate float64
	// Lambda is the regularization constant λ of Eq. 5.
	Lambda float64
	// RegularizeEffective switches the taxonomy offsets from offset-wise
	// shrinkage (w ← w + ε(c·q − λw), the Gaussian prior on offsets that
	// pulls children toward parents) to the paper's literal Eq. 6 reading,
	// which shrinks every offset on a path by the *effective* factor:
	// w ← w + ε(c·q − λ·vI). DESIGN.md §6 lists this as an ablation; the
	// default (false) is the principled interpretation.
	RegularizeEffective bool
}

// Stores bundles the three factor views a worker reads and updates. In
// single-threaded training these are factors.Plain over the model's own
// matrices; in parallel training they are Locked/Cached views over the
// same storage.
type Stores struct {
	User factors.View
	Node factors.View
	Next factors.View
	// Bias guards the per-node popularity biases (1-column rows); only
	// touched when the model's UseBias is set.
	Bias factors.View
}

// PlainStores returns direct (unlocked) views over the model's matrices.
func PlainStores(m *model.TF) Stores {
	return Stores{
		User: factors.Plain{M: m.User},
		Node: factors.Plain{M: m.Node},
		Next: factors.Plain{M: m.Next},
		Bias: factors.Plain{M: m.Bias},
	}
}

// Stepper executes BPR-SGD steps. It owns scratch buffers, so every
// worker goroutine must have its own Stepper (sharing the underlying
// factor storage through its Stores).
type Stepper struct {
	m   *model.TF
	st  Stores
	cfg StepConfig
	rng *vecmath.RNG

	weights []float64 // decay weights α_n
	// scratch buffers, all of length K
	q, vi, vj, diff, buf []float64
	// one and bbuf are 1-element scratch for the scalar bias updates
	one, bbuf []float64
}

// NewStepper builds a worker-local stepper over the model's structure
// (paths, hyper-parameters) with row access via st.
//
// The scratch buffers are carved out of one padded arena: every buffer is
// separated by a full cache line from its neighbours and from the arena
// edges, so concurrently running steppers never false-share scratch even
// when their arenas are adjacent on the heap — with sub-microsecond SGD
// steps that sharing would dominate the epoch time.
func NewStepper(m *model.TF, st Stores, cfg StepConfig, rng *vecmath.RNG) *Stepper {
	k := m.K()
	const pad = 8 // 8 float64s = 64 bytes
	arena := make([]float64, pad+5*(k+pad))
	carve := func(i int) []float64 {
		start := pad + i*(k+pad)
		return arena[start : start+k : start+k]
	}
	return &Stepper{
		m:       m,
		st:      st,
		cfg:     cfg,
		rng:     rng,
		weights: m.P.DecayWeights(),
		q:       carve(0),
		vi:      carve(1),
		vj:      carve(2),
		diff:    carve(3),
		buf:     carve(4),
		one:     []float64{1},
		bbuf:    make([]float64, 1),
	}
}

// pathBias sums the bias offsets along item's path through the view.
func (s *Stepper) pathBias(item int) float64 {
	var b float64
	for _, node := range s.m.ItemPath(item) {
		s.st.Bias.ReadInto(int(node), s.bbuf)
		b += s.bbuf[0]
	}
	return b
}

// SetLearnRate updates ε (used by per-epoch decay schedules).
func (s *Stepper) SetLearnRate(eps float64) { s.cfg.LearnRate = eps }

// composeItemInto sums the node offsets along item's path through the
// view, producing the effective factor of Eq. 1.
func (s *Stepper) composeItemInto(view factors.View, item int, dst []float64) {
	vecmath.Zero(dst)
	for _, node := range s.m.ItemPath(item) {
		view.ReadInto(int(node), s.buf)
		vecmath.Add(dst, s.buf)
	}
}

// buildQuery assembles q = vU_u + Σ_n (α_n/|B_{t−n}|) Σ_ℓ vI→•_ℓ through
// the views; prev[0] is B_{t−1}.
func (s *Stepper) buildQuery(user int, prev []dataset.Basket) {
	s.st.User.ReadInto(user, s.q)
	order := s.m.P.MarkovOrder
	for n := 0; n < len(prev) && n < order; n++ {
		basket := prev[n]
		if len(basket) == 0 {
			continue
		}
		coef := s.weights[n] / float64(len(basket))
		for _, item := range basket {
			for _, node := range s.m.ItemPath(int(item)) {
				s.st.Next.ReadInto(int(node), s.buf)
				vecmath.AddScaled(s.q, coef, s.buf)
			}
		}
	}
}

// Step performs one SGD update for the tuple (u, i, j) with short-term
// context prev (most-recent basket first), following Eq. 6–7:
//
//	x  = s(i) − s(j) = ⟨q, vI_i − vI_j⟩
//	c  = 1 − σ(x)
//	vU      += ε(c·(vI_i − vI_j) − λ·vU)
//	wI_p^m(i) += ε(c·q − λ·wI_p^m(i))        for m in the trained band
//	wI_p^m(j) −= ε(c·q + λ·wI_p^m(j))
//	wI→•_p^m(ℓ) += ε(c·coef_ℓ·(vI_i − vI_j) − λ·w)   for ℓ in prev baskets
//
// It returns ln σ(x), the sample's log-likelihood before the update, for
// convergence monitoring.
func (s *Stepper) Step(u, i, j int, prev []dataset.Basket) float64 {
	s.buildQuery(u, prev)
	s.composeItemInto(s.st.Node, i, s.vi)
	s.composeItemInto(s.st.Node, j, s.vj)
	for k := range s.diff {
		s.diff[k] = s.vi[k] - s.vj[k]
	}
	x := vecmath.Dot(s.q, s.diff)
	useBias := s.m.P.UseBias
	if useBias {
		x += s.pathBias(i) - s.pathBias(j)
	}
	c := 1 - vecmath.Sigmoid(x)

	eps, lam := s.cfg.LearnRate, s.cfg.Lambda
	scale := 1 - eps*lam

	// user factor
	s.st.User.ApplyStep(u, scale, eps*c, s.diff)

	// item-offset factors along both paths (trained band only)
	band := s.m.TrainedBand()
	pi, pj := s.m.ItemPath(i), s.m.ItemPath(j)
	if s.cfg.RegularizeEffective {
		// ablation: shrink each offset by the effective factor instead of
		// by itself (two ApplySteps per node: gradient, then shrinkage)
		for mIdx := 0; mIdx < band; mIdx++ {
			ni, nj := int(pi[mIdx]), int(pj[mIdx])
			s.st.Node.ApplyStep(ni, 1, eps*c, s.q)
			s.st.Node.ApplyStep(ni, 1, -eps*lam, s.vi)
			s.st.Node.ApplyStep(nj, 1, -eps*c, s.q)
			s.st.Node.ApplyStep(nj, 1, -eps*lam, s.vj)
		}
	} else {
		for mIdx := 0; mIdx < band; mIdx++ {
			s.st.Node.ApplyStep(int(pi[mIdx]), scale, eps*c, s.q)
			s.st.Node.ApplyStep(int(pj[mIdx]), scale, -eps*c, s.q)
		}
	}
	if useBias {
		for mIdx := 0; mIdx < band; mIdx++ {
			s.st.Bias.ApplyStep(int(pi[mIdx]), scale, eps*c, s.one)
			s.st.Bias.ApplyStep(int(pj[mIdx]), scale, -eps*c, s.one)
		}
	}

	// next-item offsets for every item in the Markov context
	s.updateNext(c, prev)
	return vecmath.LogSigmoid(x)
}

// updateNext applies the ∂L/∂vI→•_ℓ updates for all context items using
// diff = vI_i − vI_j already in s.diff.
func (s *Stepper) updateNext(c float64, prev []dataset.Basket) {
	order := s.m.P.MarkovOrder
	if order == 0 {
		return
	}
	eps, lam := s.cfg.LearnRate, s.cfg.Lambda
	scale := 1 - eps*lam
	band := s.m.TrainedBand()
	for n := 0; n < len(prev) && n < order; n++ {
		basket := prev[n]
		if len(basket) == 0 {
			continue
		}
		coef := s.weights[n] / float64(len(basket))
		for _, item := range basket {
			path := s.m.ItemPath(int(item))
			for mIdx := 0; mIdx < band; mIdx++ {
				s.st.Next.ApplyStep(int(path[mIdx]), scale, eps*c*coef, s.diff)
			}
		}
	}
}

// SampleNegative draws a uniform item not contained in basket. It panics
// if the model has fewer than 2 items; if the basket covers the whole
// catalog it returns a uniform item after bounded attempts.
func (s *Stepper) SampleNegative(basket dataset.Basket) int {
	n := s.m.NumItems()
	for attempt := 0; attempt < 32; attempt++ {
		j := s.rng.Intn(n)
		if !basket.Contains(int32(j)) {
			return j
		}
	}
	return s.rng.Intn(n)
}

// SiblingPass runs the §4.2 sibling-based training for a positive item i:
// for every trained level m, it contrasts i's ancestor a = p^m(i) against
// one uniformly chosen sibling b. Because a and b share all higher
// ancestors, the gradients on the shared part of the two paths cancel
// exactly, so the net update touches only the two sibling offsets (plus
// the user and next-item factors):
//
//	x = ⟨q, w_a − w_b⟩,  c = 1 − σ(x)
//	w_a += ε(c·q − λ·w_a);  w_b −= ε(c·q + λ·w_b)
//
// It returns the summed log-likelihood of the level steps.
func (s *Stepper) SiblingPass(u, i int, prev []dataset.Basket) float64 {
	s.buildQuery(u, prev)
	tree := s.m.Tree
	band := s.m.TrainedBand()
	path := s.m.ItemPath(i)
	eps, lam := s.cfg.LearnRate, s.cfg.Lambda
	scale := 1 - eps*lam
	var ll float64

	for mIdx := 0; mIdx < band; mIdx++ {
		a := int(path[mIdx])
		if a == tree.Root() {
			break
		}
		sibs := tree.Children(tree.Parent(a))
		if len(sibs) < 2 {
			continue
		}
		b := a
		for attempt := 0; attempt < 16 && b == a; attempt++ {
			b = int(sibs[s.rng.Intn(len(sibs))])
		}
		if b == a {
			continue
		}
		s.st.Node.ReadInto(a, s.vi)
		s.st.Node.ReadInto(b, s.vj)
		for k := range s.diff {
			s.diff[k] = s.vi[k] - s.vj[k]
		}
		x := vecmath.Dot(s.q, s.diff)
		useBias := s.m.P.UseBias
		if useBias {
			// shared ancestors cancel, so only the sibling offsets differ
			s.st.Bias.ReadInto(a, s.bbuf)
			x += s.bbuf[0]
			s.st.Bias.ReadInto(b, s.bbuf)
			x -= s.bbuf[0]
		}
		c := 1 - vecmath.Sigmoid(x)

		s.st.User.ApplyStep(u, scale, eps*c, s.diff)
		s.st.Node.ApplyStep(a, scale, eps*c, s.q)
		s.st.Node.ApplyStep(b, scale, -eps*c, s.q)
		if useBias {
			s.st.Bias.ApplyStep(a, scale, eps*c, s.one)
			s.st.Bias.ApplyStep(b, scale, -eps*c, s.one)
		}
		s.updateNext(c, prev)
		ll += vecmath.LogSigmoid(x)
	}
	return ll
}

// Flush publishes any cached factor state (no-op for plain/locked views).
func (s *Stepper) Flush() {
	s.st.User.Flush()
	s.st.Node.Flush()
	s.st.Next.Flush()
	s.st.Bias.Flush()
}
