// Package factors provides the shared-state machinery of the paper's
// multi-core SGD (§6.1): factor matrices guarded by per-row locks, and the
// per-thread caching heuristic for "hot" rows. Interior taxonomy nodes are
// updated ~1000x more often than leaf items (the paper's tree has ~1.8k
// interior nodes over 1.5M leaves), so under high thread counts the row
// locks of the upper levels become the bottleneck; each worker therefore
// keeps a local copy of the hot rows and reconciles with the global matrix
// only when its accumulated delta exceeds a threshold.
package factors

import (
	"sync"

	"repro/internal/vecmath"
)

// View is row-level access to a factor matrix as seen by one SGD worker.
// Implementations differ only in their concurrency discipline:
//
//   - Plain: direct access, single-threaded training.
//   - Locked: every read/update takes the row's mutex.
//   - Cached: Locked for cold rows; lock-free local copies with threshold
//     reconciliation for hot rows (the paper's caching heuristic).
type View interface {
	// ReadInto copies row into dst.
	ReadInto(row int, dst []float64)
	// ApplyStep sets row = scale*row + coef*vec — the shape of every BPR
	// update (scale carries the regularization decay 1−ελ, coef the
	// gradient coefficient ε·c).
	ApplyStep(row int, scale, coef float64, vec []float64)
	// Flush publishes any locally cached state to the shared matrix.
	Flush()
}

// Plain is an unlocked View for single-threaded training; it reads and
// writes the matrix directly.
type Plain struct {
	M *vecmath.Matrix
}

// ReadInto implements View.
func (p Plain) ReadInto(row int, dst []float64) {
	copy(dst, p.M.Row(row))
}

// ApplyStep implements View.
func (p Plain) ApplyStep(row int, scale, coef float64, vec []float64) {
	applyStep(p.M.Row(row), scale, coef, vec)
}

// Flush implements View (no-op).
func (p Plain) Flush() {}

func applyStep(row []float64, scale, coef float64, vec []float64) {
	for k := range row {
		row[k] = scale*row[k] + coef*vec[k]
	}
}

// paddedMutex occupies a full cache line so that locks of adjacent rows
// never share one; with sub-microsecond SGD steps, false sharing across an
// unpadded mutex array costs more than the actual critical sections.
type paddedMutex struct {
	sync.Mutex
	_ [56]byte
}

// Locked guards a matrix with one mutex per row, the discipline of the
// paper's C++ implementation. A single Locked value is shared by all
// workers.
type Locked struct {
	M     *vecmath.Matrix
	locks []paddedMutex
}

// NewLocked wraps m with per-row locks.
func NewLocked(m *vecmath.Matrix) *Locked {
	return &Locked{M: m, locks: make([]paddedMutex, m.Rows())}
}

// ReadInto implements View.
func (s *Locked) ReadInto(row int, dst []float64) {
	s.locks[row].Lock()
	copy(dst, s.M.Row(row))
	s.locks[row].Unlock()
}

// ApplyStep implements View.
func (s *Locked) ApplyStep(row int, scale, coef float64, vec []float64) {
	s.locks[row].Lock()
	applyStep(s.M.Row(row), scale, coef, vec)
	s.locks[row].Unlock()
}

// Flush implements View (no-op; writes are immediate).
func (s *Locked) Flush() {}

// addLocked adds delta into row under the lock and refreshes snap with the
// post-update global value.
func (s *Locked) addLocked(row int, delta, snap []float64) {
	s.locks[row].Lock()
	r := s.M.Row(row)
	vecmath.Add(r, delta)
	copy(snap, r)
	s.locks[row].Unlock()
}

// Cached is one worker's view of a Locked matrix with the §6.1 caching
// heuristic applied to rows < hotLimit (the taxonomy generator places
// interior nodes in a contiguous low-id prefix). For a hot row the worker
// keeps a private copy (snapshot + accumulated delta); reads and updates
// touch no locks, and the delta is folded into the global matrix — and the
// snapshot refreshed — once its max-norm exceeds Threshold.
//
// The reconciliation makes hot-row state eventually consistent rather than
// sequentially consistent, which is exactly the trade the paper makes;
// Threshold=0 degenerates to write-through (flush after every update).
type Cached struct {
	base      *Locked
	hotLimit  int
	threshold float64
	snap      *vecmath.Matrix // last observed global value per hot row
	delta     *vecmath.Matrix // local updates not yet published
	dirty     []bool
}

// NewCached builds a worker-private cached view over base. Rows with id <
// hotLimit are cached; threshold is the reconciliation bound on the
// delta's max-norm.
func NewCached(base *Locked, hotLimit int, threshold float64) *Cached {
	if hotLimit > base.M.Rows() {
		hotLimit = base.M.Rows()
	}
	c := &Cached{
		base:      base,
		hotLimit:  hotLimit,
		threshold: threshold,
		snap:      vecmath.NewMatrix(hotLimit, base.M.Cols()),
		delta:     vecmath.NewMatrix(hotLimit, base.M.Cols()),
		dirty:     make([]bool, hotLimit),
	}
	for row := 0; row < hotLimit; row++ {
		base.ReadInto(row, c.snap.Row(row))
	}
	return c
}

// ReadInto implements View. Hot rows read the local copy
// (snapshot + pending delta) without locking.
func (c *Cached) ReadInto(row int, dst []float64) {
	if row >= c.hotLimit {
		c.base.ReadInto(row, dst)
		return
	}
	snap, delta := c.snap.Row(row), c.delta.Row(row)
	for k := range dst {
		dst[k] = snap[k] + delta[k]
	}
}

// ApplyStep implements View. For hot rows the update lands in the local
// delta: local' = scale*(snap+delta) + coef*vec, hence
// delta' = scale*delta + (scale−1)*snap + coef*vec.
func (c *Cached) ApplyStep(row int, scale, coef float64, vec []float64) {
	if row >= c.hotLimit {
		c.base.ApplyStep(row, scale, coef, vec)
		return
	}
	snap, delta := c.snap.Row(row), c.delta.Row(row)
	maxAbs := 0.0
	for k := range delta {
		delta[k] = scale*delta[k] + (scale-1)*snap[k] + coef*vec[k]
		if a := abs(delta[k]); a > maxAbs {
			maxAbs = a
		}
	}
	c.dirty[row] = true
	if maxAbs > c.threshold {
		c.flushRow(row)
	}
}

func (c *Cached) flushRow(row int) {
	c.base.addLocked(row, c.delta.Row(row), c.snap.Row(row))
	vecmath.Zero(c.delta.Row(row))
	c.dirty[row] = false
}

// Flush implements View: publish every dirty hot row. Call at the end of
// each epoch (and before evaluation) so no updates are stranded in caches.
func (c *Cached) Flush() {
	for row := 0; row < c.hotLimit; row++ {
		if c.dirty[row] {
			c.flushRow(row)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
