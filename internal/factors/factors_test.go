package factors

import (
	"math"
	"sync"
	"testing"

	"repro/internal/vecmath"
)

func TestPlainReadWrite(t *testing.T) {
	m := vecmath.NewMatrix(3, 2)
	v := Plain{M: m}
	v.ApplyStep(1, 1, 2, []float64{1, 3})
	dst := make([]float64, 2)
	v.ReadInto(1, dst)
	if dst[0] != 2 || dst[1] != 6 {
		t.Fatalf("ReadInto = %v, want [2 6]", dst)
	}
	v.Flush() // no-op must not panic
}

func TestApplyStepShape(t *testing.T) {
	m := vecmath.NewMatrix(1, 3)
	copy(m.Row(0), []float64{1, 2, 3})
	Plain{M: m}.ApplyStep(0, 0.5, 2, []float64{1, 1, 1})
	want := []float64{2.5, 3, 3.5}
	for k, w := range want {
		if math.Abs(m.Row(0)[k]-w) > 1e-12 {
			t.Fatalf("row = %v, want %v", m.Row(0), want)
		}
	}
}

func TestLockedMatchesPlainSequentially(t *testing.T) {
	rng := vecmath.NewRNG(1)
	mp := vecmath.NewMatrix(10, 4)
	mp.FillGaussian(rng, 1)
	ml := mp.Clone()
	p := Plain{M: mp}
	l := NewLocked(ml)
	vec := []float64{0.1, -0.2, 0.3, -0.4}
	for i := 0; i < 100; i++ {
		row := i % 10
		p.ApplyStep(row, 0.99, 0.05, vec)
		l.ApplyStep(row, 0.99, 0.05, vec)
	}
	if d := mp.MaxAbsDiff(ml); d > 1e-12 {
		t.Fatalf("locked diverged from plain by %v", d)
	}
}

func TestLockedConcurrentUpdatesAllLand(t *testing.T) {
	m := vecmath.NewMatrix(4, 2)
	l := NewLocked(m)
	const workers, updates = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			vec := []float64{1, 1}
			for i := 0; i < updates; i++ {
				l.ApplyStep(i%4, 1, 1, vec)
			}
		}()
	}
	wg.Wait()
	var total float64
	for r := 0; r < 4; r++ {
		total += m.Row(r)[0]
	}
	if total != workers*updates {
		t.Fatalf("total = %v, want %d (updates lost)", total, workers*updates)
	}
}

func TestCachedColdRowsPassThrough(t *testing.T) {
	m := vecmath.NewMatrix(10, 2)
	l := NewLocked(m)
	c := NewCached(l, 3, 0.5)
	c.ApplyStep(7, 1, 1, []float64{2, 2})
	dst := make([]float64, 2)
	l.ReadInto(7, dst)
	if dst[0] != 2 {
		t.Fatal("cold-row update must write through immediately")
	}
}

func TestCachedHotRowDefersUntilThreshold(t *testing.T) {
	m := vecmath.NewMatrix(4, 2)
	l := NewLocked(m)
	c := NewCached(l, 4, 1.0)
	// small update stays local
	c.ApplyStep(0, 1, 1, []float64{0.3, 0.3})
	global := make([]float64, 2)
	l.ReadInto(0, global)
	if global[0] != 0 {
		t.Fatal("small delta must not be published yet")
	}
	// the worker's own view includes the pending delta
	local := make([]float64, 2)
	c.ReadInto(0, local)
	if math.Abs(local[0]-0.3) > 1e-12 {
		t.Fatalf("local view = %v, want 0.3", local[0])
	}
	// pushing past the threshold publishes
	c.ApplyStep(0, 1, 1, []float64{0.8, 0.8})
	l.ReadInto(0, global)
	if math.Abs(global[0]-1.1) > 1e-12 {
		t.Fatalf("global = %v, want 1.1 after reconcile", global[0])
	}
}

func TestCachedFlushPublishesEverything(t *testing.T) {
	m := vecmath.NewMatrix(3, 2)
	l := NewLocked(m)
	c := NewCached(l, 3, 100) // huge threshold: nothing auto-flushes
	c.ApplyStep(0, 1, 1, []float64{1, 0})
	c.ApplyStep(2, 1, 1, []float64{0, 5})
	c.Flush()
	dst := make([]float64, 2)
	l.ReadInto(0, dst)
	if dst[0] != 1 {
		t.Fatal("row 0 not flushed")
	}
	l.ReadInto(2, dst)
	if dst[1] != 5 {
		t.Fatal("row 2 not flushed")
	}
	// second flush is a no-op
	c.Flush()
	l.ReadInto(0, dst)
	if dst[0] != 1 {
		t.Fatal("double flush corrupted state")
	}
}

func TestCachedZeroThresholdIsWriteThrough(t *testing.T) {
	m := vecmath.NewMatrix(2, 2)
	l := NewLocked(m)
	c := NewCached(l, 2, 0)
	c.ApplyStep(0, 1, 1, []float64{0.001, 0})
	dst := make([]float64, 2)
	l.ReadInto(0, dst)
	if dst[0] != 0.001 {
		t.Fatal("threshold 0 must write through on every update")
	}
}

func TestCachedEquivalentToLockedAfterFlush(t *testing.T) {
	// single worker: cached and locked must agree exactly once flushed,
	// regardless of threshold, because scale/coef algebra is identity-
	// preserving: local' = scale*local + coef*vec telescopes.
	rng := vecmath.NewRNG(3)
	mA := vecmath.NewMatrix(6, 3)
	mA.FillGaussian(rng, 1)
	mB := mA.Clone()
	lA := NewLocked(mA)
	cache := NewCached(lA, 4, 0.7)
	lB := NewLocked(mB)
	vec := make([]float64, 3)
	r2 := vecmath.NewRNG(4)
	for i := 0; i < 500; i++ {
		row := r2.Intn(6)
		for k := range vec {
			vec[k] = r2.NormFloat64()
		}
		scale := 1 - 0.01*r2.Float64()
		coef := 0.05 * r2.NormFloat64()
		cache.ApplyStep(row, scale, coef, vec)
		lB.ApplyStep(row, scale, coef, vec)
	}
	cache.Flush()
	if d := mA.MaxAbsDiff(mB); d > 1e-9 {
		t.Fatalf("cached view diverged from direct by %v", d)
	}
}

func TestCachedConcurrentWorkersConvergeOnFlush(t *testing.T) {
	// Additive-only updates (scale=1): with concurrent cached workers the
	// total mass must be conserved after all flushes.
	m := vecmath.NewMatrix(4, 1)
	l := NewLocked(m)
	const workers, updates = 6, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c := NewCached(l, 4, 0.9)
			rng := vecmath.NewRNG(seed)
			for i := 0; i < updates; i++ {
				c.ApplyStep(rng.Intn(4), 1, 1, []float64{0.25})
			}
			c.Flush()
		}(uint64(w + 1))
	}
	wg.Wait()
	var total float64
	for r := 0; r < 4; r++ {
		total += m.Row(r)[0]
	}
	want := float64(workers*updates) * 0.25
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("mass %v, want %v (cache lost or duplicated updates)", total, want)
	}
}

func TestCachedHotLimitClamp(t *testing.T) {
	m := vecmath.NewMatrix(3, 1)
	l := NewLocked(m)
	c := NewCached(l, 100, 0.1) // hotLimit > rows must clamp, not panic
	c.ApplyStep(2, 1, 1, []float64{1})
	c.Flush()
	dst := make([]float64, 1)
	l.ReadInto(2, dst)
	if dst[0] != 1 {
		t.Fatal("clamped cache lost the update")
	}
}
