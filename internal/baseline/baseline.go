// Package baseline provides the comparison systems of the paper's
// evaluation (§7.2) and related work (§8):
//
//   - MF(B): the plain BPR latent factor model with a B-step Markov term,
//     constructed as the exact TF special case taxonomyUpdateLevels=1.
//     MF(0) is classic BPR-MF ("SVD++" in the paper's naming); MF(1) is
//     FPMC (Rendle et al., WWW 2010), the state of the art the paper
//     compares against.
//   - Popularity: rank items by global train-set purchase count — the
//     sanity floor every personalized model must clear.
//   - Cooccurrence: an association-rule stand-in that scores items by how
//     often they followed the user's recent purchases in train
//     (§8 discusses Apriori-style mining as the classical alternative).
package baseline

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// MFParams returns the TF parameter block that makes the model an exact
// MF(B): one taxonomy level (items only) and a B-step Markov chain.
func MFParams(k, b int) model.Params {
	return model.Params{K: k, TaxonomyLevels: 1, MarkovOrder: b, Alpha: 1.0, InitStd: 0.01}
}

// NewMF builds an MF(B) model over the taxonomy's items. The taxonomy is
// still carried for item identity, but no interior node is ever trained.
func NewMF(tree *taxonomy.Tree, numUsers, k, b int, rng *vecmath.RNG) (*model.TF, error) {
	return model.New(tree, numUsers, MFParams(k, b), rng)
}

// Popularity scores every item by its train purchase count (log-damped so
// AUC ties are rare among the tail).
type Popularity struct {
	scores []float64
}

// NewPopularity builds the ranker from the training log.
func NewPopularity(train *dataset.Dataset) *Popularity {
	freq := train.ItemFrequencies()
	scores := make([]float64, len(freq))
	for i, f := range freq {
		scores[i] = math.Log1p(float64(f))
	}
	return &Popularity{scores: scores}
}

// NumItems implements eval.FlatScorer.
func (p *Popularity) NumItems() int { return len(p.scores) }

// UserScores implements eval.FlatScorer; popularity ignores the user and
// context entirely.
func (p *Popularity) UserScores(_ int, _ []dataset.Basket, dst []float64) {
	copy(dst, p.scores)
}

// Cooccurrence scores item j for a user by the co-purchase counts between
// j and the items of the user's recent baskets (those within the window).
// It is the purely count-based, memory-heavy alternative to factor models:
// exact where data exists, useless in the sparse tail — which is the
// contrast the paper draws with association-rule mining.
type Cooccurrence struct {
	numItems int
	window   int
	// next[a][b] counts how often b was bought within window transactions
	// after a.
	next  map[int32]map[int32]float64
	prior []float64 // popularity fallback, scaled small, to break ties
}

// NewCooccurrence builds the co-purchase table from train: for every
// ordered pair (a in B_t, b in B_{t'}) with t < t' <= t+window, the count
// of (a→b) is incremented.
func NewCooccurrence(train *dataset.Dataset, window int) *Cooccurrence {
	if window < 1 {
		window = 1
	}
	co := &Cooccurrence{
		numItems: train.NumItems,
		window:   window,
		next:     make(map[int32]map[int32]float64),
		prior:    make([]float64, train.NumItems),
	}
	for i, f := range train.ItemFrequencies() {
		co.prior[i] = 1e-6 * math.Log1p(float64(f))
	}
	for u := range train.Users {
		baskets := train.Users[u].Baskets
		for t := 0; t < len(baskets); t++ {
			for dt := 1; dt <= window && t+dt < len(baskets); dt++ {
				for _, a := range baskets[t] {
					succ := co.next[a]
					if succ == nil {
						succ = make(map[int32]float64)
						co.next[a] = succ
					}
					for _, b := range baskets[t+dt] {
						succ[b]++
					}
				}
			}
		}
	}
	return co
}

// NumItems implements eval.FlatScorer.
func (c *Cooccurrence) NumItems() int { return c.numItems }

// UserScores implements eval.FlatScorer: sum of co-purchase counts from
// the context items (within the window) to each candidate, with a tiny
// popularity prior breaking the all-zero ties of unseen pairs.
func (c *Cooccurrence) UserScores(_ int, context []dataset.Basket, dst []float64) {
	copy(dst, c.prior)
	for n := 0; n < len(context) && n < c.window; n++ {
		for _, a := range context[n] {
			for b, cnt := range c.next[a] {
				dst[b] += cnt
			}
		}
	}
}

// PairCount returns the raw co-purchase count for (a then b); tests use it.
func (c *Cooccurrence) PairCount(a, b int32) float64 {
	return c.next[a][b]
}
