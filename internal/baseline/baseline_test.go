package baseline

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/synth"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

func world(t *testing.T) (*taxonomy.Tree, dataset.Split) {
	t.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{3, 9, 27},
		Items:          300,
		Skew:           0.4,
	}, vecmath.NewRNG(41))
	cfg := synth.DefaultConfig()
	cfg.Users = 400
	d, _, err := synth.Generate(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tree, d.Split(dataset.DefaultSplitConfig())
}

func TestMFParamsIsFlat(t *testing.T) {
	p := MFParams(16, 2)
	if p.TaxonomyLevels != 1 {
		t.Fatalf("TaxonomyLevels = %d, want 1", p.TaxonomyLevels)
	}
	if p.MarkovOrder != 2 || p.K != 16 {
		t.Fatalf("params = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewMFNeverTrainsInterior(t *testing.T) {
	tree, split := world(t)
	m, err := NewMF(tree, split.Train.NumUsers(), 8, 0, vecmath.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.TrainedBand() != 1 {
		t.Fatalf("TrainedBand = %d, want 1", m.TrainedBand())
	}
	for d := 0; d < tree.Depth(); d++ {
		for _, node := range tree.Level(d) {
			if vecmath.Norm2(m.Node.Row(int(node))) != 0 {
				t.Fatal("interior node initialized under MF")
			}
		}
	}
}

func TestPopularityBeatsNothingButIsAboveChance(t *testing.T) {
	_, split := world(t)
	pop := NewPopularity(split.Train)
	res := eval.EvaluateFlat(pop, split.Train, split.Test, eval.DefaultConfig(), 0)
	if res.Users == 0 {
		t.Fatal("no users evaluated")
	}
	// popularity is a real signal on Zipf data: should clear 0.5
	if res.AUC < 0.52 {
		t.Fatalf("popularity AUC = %v, want > 0.52", res.AUC)
	}
}

func TestPopularityIsUserIndependent(t *testing.T) {
	_, split := world(t)
	pop := NewPopularity(split.Train)
	a := make([]float64, pop.NumItems())
	b := make([]float64, pop.NumItems())
	pop.UserScores(0, nil, a)
	pop.UserScores(7, []dataset.Basket{{1, 2}}, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("popularity must ignore user and context")
		}
	}
}

func TestCooccurrenceCounts(t *testing.T) {
	d := &dataset.Dataset{NumItems: 6, Users: []dataset.History{
		{Baskets: []dataset.Basket{{0}, {1}, {2}}},
		{Baskets: []dataset.Basket{{0}, {1}}},
	}}
	co := NewCooccurrence(d, 1)
	if got := co.PairCount(0, 1); got != 2 {
		t.Fatalf("count(0->1) = %v, want 2", got)
	}
	if got := co.PairCount(1, 2); got != 1 {
		t.Fatalf("count(1->2) = %v, want 1", got)
	}
	if got := co.PairCount(0, 2); got != 0 {
		t.Fatalf("window 1 must not see 0->2, got %v", got)
	}
	co2 := NewCooccurrence(d, 2)
	if got := co2.PairCount(0, 2); got != 1 {
		t.Fatalf("window 2 count(0->2) = %v, want 1", got)
	}
}

func TestCooccurrenceScoring(t *testing.T) {
	d := &dataset.Dataset{NumItems: 5, Users: []dataset.History{
		{Baskets: []dataset.Basket{{0}, {1}}},
		{Baskets: []dataset.Basket{{0}, {1}}},
		{Baskets: []dataset.Basket{{0}, {3}}},
	}}
	co := NewCooccurrence(d, 1)
	scores := make([]float64, 5)
	co.UserScores(0, []dataset.Basket{{0}}, scores)
	if !(scores[1] > scores[3] && scores[3] > scores[2]) {
		t.Fatalf("scores = %v: want 1 > 3 > others after seeing 0", scores)
	}
}

func TestCooccurrencePredictsChainedCategories(t *testing.T) {
	_, split := world(t)
	co := NewCooccurrence(split.Train, 2)
	res := eval.EvaluateFlat(co, split.Train, split.Test, eval.DefaultConfig(), 2)
	if res.Users == 0 {
		t.Fatal("no users evaluated")
	}
	// item-level co-occurrence on sparse data is weak but should not be
	// actively harmful
	if res.AUC < 0.45 {
		t.Fatalf("co-occurrence AUC = %v, suspiciously bad", res.AUC)
	}
}

func TestEvaluateFlatColdMetrics(t *testing.T) {
	_, split := world(t)
	pop := NewPopularity(split.Train)
	res := eval.EvaluateFlat(pop, split.Train, split.Test, eval.DefaultConfig(), 0)
	// cold items have zero train frequency: popularity ranks them at the
	// bottom, so cold AUC must be poor (near 0) — and certainly below the
	// overall AUC
	if res.ColdCount > 0 && res.ColdAUC > res.AUC {
		t.Fatalf("popularity cold AUC %v should not beat overall %v", res.ColdAUC, res.AUC)
	}
}
