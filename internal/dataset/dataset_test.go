package dataset

import (
	"testing"

	"repro/internal/vecmath"
)

// mkDataset builds a small deterministic dataset: user u has u+1
// transactions; transaction t of user u holds items {u, u+t+1} (mod items).
func mkDataset(users, items int) *Dataset {
	d := &Dataset{NumItems: items, Users: make([]History, users)}
	for u := 0; u < users; u++ {
		for t := 0; t <= u; t++ {
			b := Basket{int32(u % items), int32((u + t + 1) % items)}
			d.Users[u].Baskets = append(d.Users[u].Baskets, b)
		}
	}
	return d
}

func TestBasketContains(t *testing.T) {
	b := Basket{1, 5, 9}
	if !b.Contains(5) || b.Contains(2) {
		t.Fatal("Contains wrong")
	}
}

func TestHistoryCounts(t *testing.T) {
	h := History{Baskets: []Basket{{1, 2}, {2, 3}, {1}}}
	if got := h.NumPurchases(); got != 5 {
		t.Fatalf("NumPurchases = %d, want 5", got)
	}
	if got := h.DistinctItems(); got != 3 {
		t.Fatalf("DistinctItems = %d, want 3", got)
	}
}

func TestDatasetAggregates(t *testing.T) {
	d := mkDataset(4, 10)
	if d.NumUsers() != 4 {
		t.Fatalf("NumUsers = %d", d.NumUsers())
	}
	if got := d.NumTransactions(); got != 1+2+3+4 {
		t.Fatalf("NumTransactions = %d, want 10", got)
	}
	if got := d.NumPurchases(); got != 20 {
		t.Fatalf("NumPurchases = %d, want 20", got)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesBadData(t *testing.T) {
	d := &Dataset{NumItems: 3, Users: []History{{Baskets: []Basket{{5}}}}}
	if err := d.Validate(); err == nil {
		t.Fatal("expected out-of-range error")
	}
	d2 := &Dataset{NumItems: 3, Users: []History{{Baskets: []Basket{{}}}}}
	if err := d2.Validate(); err == nil {
		t.Fatal("expected empty-basket error")
	}
}

func TestEventsFlattening(t *testing.T) {
	d := mkDataset(3, 10)
	ev := d.Events()
	if len(ev) != d.NumPurchases() {
		t.Fatalf("Events len = %d, want %d", len(ev), d.NumPurchases())
	}
	// spot-check ordering: first events belong to user 0
	if ev[0].User != 0 || ev[0].Txn != 0 {
		t.Fatalf("first event = %+v", ev[0])
	}
	// all events reference existing baskets
	for _, e := range ev {
		b := d.Users[e.User].Baskets[e.Txn]
		if !b.Contains(e.Item) {
			t.Fatalf("event %+v not in basket %v", e, b)
		}
	}
}

func TestItemFrequenciesMatchEvents(t *testing.T) {
	d := mkDataset(5, 7)
	freq := d.ItemFrequencies()
	total := 0
	for _, f := range freq {
		total += f
	}
	if total != d.NumPurchases() {
		t.Fatalf("frequency mass %d != purchases %d", total, d.NumPurchases())
	}
}

func TestSplitPartitionsTransactions(t *testing.T) {
	d := mkDataset(50, 20)
	s := d.Split(SplitConfig{Mu: 0.5, Sigma: 0.05, ValidationT: 1, Seed: 3, KeepRepeats: true})
	for u := range d.Users {
		n := len(d.Users[u].Baskets)
		got := len(s.Train.Users[u].Baskets) + len(s.Validation.Users[u].Baskets) + len(s.Test.Users[u].Baskets)
		if got != n {
			t.Fatalf("user %d: split has %d baskets, want %d", u, got, n)
		}
	}
}

func TestSplitValidationTakesTrainTail(t *testing.T) {
	d := mkDataset(30, 20)
	s := d.Split(SplitConfig{Mu: 0.5, Sigma: 0, ValidationT: 1, Seed: 1, KeepRepeats: true})
	for u := range d.Users {
		v := len(s.Validation.Users[u].Baskets)
		if len(d.Users[u].Baskets) >= 2 && len(s.Train.Users[u].Baskets)+v > 0 && v == 0 {
			t.Fatalf("user %d: expected a validation basket", u)
		}
		if v > 1 {
			t.Fatalf("user %d: validation got %d baskets, want <= 1", u, v)
		}
	}
}

func TestSplitRemovesRepeats(t *testing.T) {
	// user buys item 1 in every transaction plus one unique item
	d := &Dataset{NumItems: 10, Users: []History{{
		Baskets: []Basket{{1, 2}, {1, 3}, {1, 4}, {1, 5}},
	}}}
	s := d.Split(SplitConfig{Mu: 0.5, Sigma: 0, ValidationT: 0, Seed: 1})
	for _, b := range s.Test.Users[0].Baskets {
		if b.Contains(1) {
			t.Fatalf("repeat item survived in test: %v", b)
		}
	}
	// the unique items must survive
	found := 0
	for _, b := range s.Test.Users[0].Baskets {
		found += len(b)
	}
	if found == 0 {
		t.Fatal("repeat removal deleted everything")
	}
}

func TestSplitMuControlsTrainShare(t *testing.T) {
	d := mkDataset(400, 50)
	sparse := d.Split(SplitConfig{Mu: 0.25, Sigma: 0.05, Seed: 7, KeepRepeats: true})
	dense := d.Split(SplitConfig{Mu: 0.75, Sigma: 0.05, Seed: 7, KeepRepeats: true})
	if sparse.Train.NumTransactions() >= dense.Train.NumTransactions() {
		t.Fatalf("mu=0.25 train (%d txns) should be smaller than mu=0.75 (%d)",
			sparse.Train.NumTransactions(), dense.Train.NumTransactions())
	}
}

func TestSplitDeterministicAcrossRuns(t *testing.T) {
	d := mkDataset(40, 20)
	a := d.Split(DefaultSplitConfig())
	b := d.Split(DefaultSplitConfig())
	if a.Train.NumPurchases() != b.Train.NumPurchases() || a.Test.NumPurchases() != b.Test.NumPurchases() {
		t.Fatal("same seed must give the same split")
	}
}

func TestSplitDoesNotAliasSource(t *testing.T) {
	d := mkDataset(5, 10)
	s := d.Split(SplitConfig{Mu: 1.0, Sigma: 0, Seed: 1, KeepRepeats: true})
	s.Train.Users[4].Baskets[0][0] = 99
	if d.Users[4].Baskets[0][0] == 99 {
		t.Fatal("split must deep-copy baskets")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(5)
	for _, v := range []int{0, 1, 1, 3, 99, -2} {
		h.Observe(v)
	}
	if h.Counts[1] != 2 {
		t.Fatalf("bucket 1 = %d, want 2", h.Counts[1])
	}
	if h.Counts[5] != 1 {
		t.Fatalf("clamp bucket = %d, want 1", h.Counts[5])
	}
	if h.Counts[0] != 2 { // 0 and -2
		t.Fatalf("bucket 0 = %d, want 2", h.Counts[0])
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d, want 6", h.Total())
	}
}

func TestComputeStats(t *testing.T) {
	d := mkDataset(100, 30)
	s := d.Split(DefaultSplitConfig())
	st := ComputeStats(s, 50)
	if st.DistinctItemsPerUser.Total() != 100 {
		t.Fatalf("distinct-items histogram total = %d, want 100", st.DistinctItemsPerUser.Total())
	}
	if st.NewItemsPerUser.Total() != 100 {
		t.Fatalf("new-items histogram total = %d, want 100", st.NewItemsPerUser.Total())
	}
	if st.AvgPurchasesPerUser <= 0 {
		t.Fatalf("AvgPurchasesPerUser = %v", st.AvgPurchasesPerUser)
	}
}

func TestTopPopularItems(t *testing.T) {
	d := &Dataset{NumItems: 5, Users: []History{
		{Baskets: []Basket{{0, 1}, {1}}},
		{Baskets: []Basket{{1, 2}}},
	}}
	top := d.TopPopularItems(2)
	if top[0] != 1 || top[1] != 0 {
		t.Fatalf("TopPopularItems = %v, want [1 0]", top)
	}
	all := d.TopPopularItems(100)
	if len(all) != 5 {
		t.Fatalf("oversized k should clamp, got %d", len(all))
	}
}

func TestSeenInTrainAndGlobalSet(t *testing.T) {
	d := mkDataset(3, 10)
	sets := d.SeenInTrain()
	if len(sets) != 3 {
		t.Fatalf("SeenInTrain len = %d", len(sets))
	}
	global := d.GlobalItemSet()
	for _, set := range sets {
		for it := range set {
			if _, ok := global[it]; !ok {
				t.Fatalf("item %d missing from global set", it)
			}
		}
	}
}

// Property: for any random dataset and any mu, the split never invents or
// loses purchase events when KeepRepeats is on.
func TestSplitMassConservationProperty(t *testing.T) {
	rng := vecmath.NewRNG(11)
	for trial := 0; trial < 30; trial++ {
		users := 1 + rng.Intn(40)
		items := 2 + rng.Intn(50)
		d := &Dataset{NumItems: items, Users: make([]History, users)}
		for u := 0; u < users; u++ {
			txns := rng.Intn(8)
			for tn := 0; tn < txns; tn++ {
				sz := 1 + rng.Intn(4)
				b := make(Basket, sz)
				for i := range b {
					b[i] = int32(rng.Intn(items))
				}
				d.Users[u].Baskets = append(d.Users[u].Baskets, b)
			}
		}
		mu := rng.Float64()
		s := d.Split(SplitConfig{Mu: mu, Sigma: 0.1, ValidationT: 1, Seed: uint64(trial), KeepRepeats: true})
		got := s.Train.NumPurchases() + s.Validation.NumPurchases() + s.Test.NumPurchases()
		if got != d.NumPurchases() {
			t.Fatalf("trial %d: mass %d != %d", trial, got, d.NumPurchases())
		}
	}
}
