// Package dataset holds purchase logs — per-user ordered sequences of
// transactions (baskets of item ids) — and implements the evaluation
// protocol of Kanagal et al. (VLDB 2012) §7.1: per-user µ-split into train
// and test, T-transaction cross-validation carve-out, repeat-purchase
// removal from test, and the dataset statistics of Figure 5.
package dataset

import (
	"fmt"
	"sort"

	"repro/internal/vecmath"
)

// Basket is one transaction: the set of items bought at a single time step.
type Basket []int32

// Contains reports whether the basket holds item.
func (b Basket) Contains(item int32) bool {
	for _, it := range b {
		if it == item {
			return true
		}
	}
	return false
}

// Clone returns a copy of the basket.
func (b Basket) Clone() Basket {
	c := make(Basket, len(b))
	copy(c, b)
	return c
}

// History is one user's purchase log: baskets in time order. The paper
// keeps only the transaction sequence, not wall-clock timestamps.
type History struct {
	Baskets []Basket
}

// NumPurchases returns the total number of (item, transaction) purchase
// events in the history.
func (h *History) NumPurchases() int {
	n := 0
	for _, b := range h.Baskets {
		n += len(b)
	}
	return n
}

// DistinctItems returns the number of distinct items in the history.
func (h *History) DistinctItems() int {
	seen := make(map[int32]struct{})
	for _, b := range h.Baskets {
		for _, it := range b {
			seen[it] = struct{}{}
		}
	}
	return len(seen)
}

// ItemSet returns the set of items appearing anywhere in the history.
func (h *History) ItemSet() map[int32]struct{} {
	set := make(map[int32]struct{})
	for _, b := range h.Baskets {
		for _, it := range b {
			set[it] = struct{}{}
		}
	}
	return set
}

// Dataset is a complete purchase log over NumItems items.
type Dataset struct {
	NumItems int
	Users    []History
}

// NumUsers returns the number of users.
func (d *Dataset) NumUsers() int { return len(d.Users) }

// NumPurchases returns the total purchase events across all users.
func (d *Dataset) NumPurchases() int {
	n := 0
	for i := range d.Users {
		n += d.Users[i].NumPurchases()
	}
	return n
}

// NumTransactions returns the total basket count across all users.
func (d *Dataset) NumTransactions() int {
	n := 0
	for i := range d.Users {
		n += len(d.Users[i].Baskets)
	}
	return n
}

// Validate checks that all item ids are within [0, NumItems) and that no
// basket is empty.
func (d *Dataset) Validate() error {
	for u := range d.Users {
		for t, b := range d.Users[u].Baskets {
			if len(b) == 0 {
				return fmt.Errorf("dataset: user %d transaction %d is empty", u, t)
			}
			for _, it := range b {
				if it < 0 || int(it) >= d.NumItems {
					return fmt.Errorf("dataset: user %d transaction %d has out-of-range item %d", u, t, it)
				}
			}
		}
	}
	return nil
}

// Event is a single positive training example: user u bought Item in
// transaction Txn. BPR sampling draws events uniformly, so the flat event
// list is the unit of an epoch.
type Event struct {
	User int32
	Txn  int32
	Item int32
}

// Events flattens the dataset into its positive purchase events, ordered
// by user then transaction then position.
func (d *Dataset) Events() []Event {
	out := make([]Event, 0, d.NumPurchases())
	for u := range d.Users {
		for t, b := range d.Users[u].Baskets {
			for _, it := range b {
				out = append(out, Event{User: int32(u), Txn: int32(t), Item: it})
			}
		}
	}
	return out
}

// ItemFrequencies returns, for each item, the number of purchase events it
// appears in (Figure 5(c)'s popularity counts).
func (d *Dataset) ItemFrequencies() []int {
	freq := make([]int, d.NumItems)
	for u := range d.Users {
		for _, b := range d.Users[u].Baskets {
			for _, it := range b {
				freq[it]++
			}
		}
	}
	return freq
}

// SeenInTrain returns per-user sets of items observed anywhere in the
// dataset; evaluation uses this to drop repeat purchases from test
// transactions and to identify cold-start items.
func (d *Dataset) SeenInTrain() []map[int32]struct{} {
	sets := make([]map[int32]struct{}, len(d.Users))
	for u := range d.Users {
		sets[u] = d.Users[u].ItemSet()
	}
	return sets
}

// GlobalItemSet returns the set of items purchased by any user.
func (d *Dataset) GlobalItemSet() map[int32]struct{} {
	set := make(map[int32]struct{})
	for u := range d.Users {
		for _, b := range d.Users[u].Baskets {
			for _, it := range b {
				set[it] = struct{}{}
			}
		}
	}
	return set
}

// SplitConfig parameterizes the paper's train/test protocol.
type SplitConfig struct {
	// Mu is the mean fraction of each user's transactions assigned to
	// train; the paper uses 0.25 (sparse), 0.50 (default), 0.75 (dense).
	Mu float64
	// Sigma is the standard deviation of the per-user split fraction; the
	// paper uses 0.05.
	Sigma float64
	// ValidationT carves the last T train transactions per user into the
	// validation set (paper: T=1).
	ValidationT int
	// Seed drives the per-user Gaussian split draws.
	Seed uint64
	// KeepRepeats, when false (the paper's protocol), removes items from
	// test baskets that the user already bought in train.
	KeepRepeats bool
}

// DefaultSplitConfig mirrors the paper: µ=0.5, σ=0.05, T=1, repeats
// removed.
func DefaultSplitConfig() SplitConfig {
	return SplitConfig{Mu: 0.5, Sigma: 0.05, ValidationT: 1, Seed: 1}
}

// Split is the outcome of the µ-split protocol. Train, Validation and Test
// all share the parent's NumItems and user indexing; users whose test side
// is empty simply have no baskets there.
type Split struct {
	Train      *Dataset
	Validation *Dataset
	Test       *Dataset
}

// Split applies the protocol of §7.1. For each user: draw a fraction f ~
// N(µ, σ) clipped to [0,1]; the first round(f·n) transactions go to train,
// the rest to test; the last ValidationT train transactions move to
// validation; repeat purchases (items present in the user's train part)
// are removed from test baskets, and emptied baskets are dropped.
func (d *Dataset) Split(cfg SplitConfig) Split {
	rng := vecmath.NewRNG(cfg.Seed)
	train := &Dataset{NumItems: d.NumItems, Users: make([]History, len(d.Users))}
	valid := &Dataset{NumItems: d.NumItems, Users: make([]History, len(d.Users))}
	test := &Dataset{NumItems: d.NumItems, Users: make([]History, len(d.Users))}

	for u := range d.Users {
		baskets := d.Users[u].Baskets
		n := len(baskets)
		if n == 0 {
			continue
		}
		f := cfg.Mu + cfg.Sigma*rng.NormFloat64()
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		cut := int(f*float64(n) + 0.5)
		if cut > n {
			cut = n
		}
		trainPart := baskets[:cut]
		testPart := baskets[cut:]

		// carve validation off the train tail
		v := cfg.ValidationT
		if v > len(trainPart) {
			v = len(trainPart)
		}
		validPart := trainPart[len(trainPart)-v:]
		trainPart = trainPart[:len(trainPart)-v]

		train.Users[u].Baskets = cloneBaskets(trainPart)
		valid.Users[u].Baskets = cloneBaskets(validPart)

		if cfg.KeepRepeats {
			test.Users[u].Baskets = cloneBaskets(testPart)
			continue
		}
		seen := make(map[int32]struct{})
		for _, b := range trainPart {
			for _, it := range b {
				seen[it] = struct{}{}
			}
		}
		for _, b := range testPart {
			var nb Basket
			for _, it := range b {
				if _, ok := seen[it]; !ok {
					nb = append(nb, it)
				}
			}
			if len(nb) > 0 {
				test.Users[u].Baskets = append(test.Users[u].Baskets, nb)
			}
		}
	}
	return Split{Train: train, Validation: valid, Test: test}
}

// Concat returns a dataset whose per-user histories are a's baskets
// followed by b's — evaluation merges the train and validation splits this
// way to form the full observed context. Both inputs must have the same
// user count and item space; baskets are deep-copied.
func Concat(a, b *Dataset) *Dataset {
	if a.NumItems != b.NumItems || len(a.Users) != len(b.Users) {
		panic("dataset: Concat requires matching shapes")
	}
	out := &Dataset{NumItems: a.NumItems, Users: make([]History, len(a.Users))}
	for u := range a.Users {
		baskets := make([]Basket, 0, len(a.Users[u].Baskets)+len(b.Users[u].Baskets))
		for _, bk := range a.Users[u].Baskets {
			baskets = append(baskets, bk.Clone())
		}
		for _, bk := range b.Users[u].Baskets {
			baskets = append(baskets, bk.Clone())
		}
		out.Users[u].Baskets = baskets
	}
	return out
}

func cloneBaskets(bs []Basket) []Basket {
	if len(bs) == 0 {
		return nil
	}
	out := make([]Basket, len(bs))
	for i, b := range bs {
		out[i] = b.Clone()
	}
	return out
}

// Histogram is a simple integer-bucket histogram: Counts[v] is the number
// of observations equal to v, with everything >= len(Counts)-1 clamped into
// the last bucket.
type Histogram struct {
	Counts []int
}

// NewHistogram builds a histogram with buckets 0..maxBucket (inclusive;
// larger observations clamp into maxBucket).
func NewHistogram(maxBucket int) *Histogram {
	return &Histogram{Counts: make([]int, maxBucket+1)}
}

// Observe adds one observation of value v.
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.Counts) {
		v = len(h.Counts) - 1
	}
	h.Counts[v]++
}

// Total returns the number of observations.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Stats bundles the three dataset characteristics plotted in Figure 5.
type Stats struct {
	// DistinctItemsPerUser: Figure 5(a), computed over the train split.
	DistinctItemsPerUser *Histogram
	// NewItemsPerUser: Figure 5(b), distinct test items not seen in the
	// user's train history.
	NewItemsPerUser *Histogram
	// ItemPopularity: Figure 5(c), distribution of per-item purchase
	// counts in train.
	ItemPopularity *Histogram
	// AvgPurchasesPerUser is the headline sparsity number (paper: 2.3).
	AvgPurchasesPerUser float64
}

// ComputeStats reproduces the Figure-5 measurements for a split, clamping
// histograms at maxBucket (the paper plots 0..50).
func ComputeStats(s Split, maxBucket int) *Stats {
	st := &Stats{
		DistinctItemsPerUser: NewHistogram(maxBucket),
		NewItemsPerUser:      NewHistogram(maxBucket),
		ItemPopularity:       NewHistogram(maxBucket),
	}
	for u := range s.Train.Users {
		st.DistinctItemsPerUser.Observe(s.Train.Users[u].DistinctItems())
	}
	for u := range s.Test.Users {
		trainSet := s.Train.Users[u].ItemSet()
		newItems := make(map[int32]struct{})
		for _, b := range s.Test.Users[u].Baskets {
			for _, it := range b {
				if _, ok := trainSet[it]; !ok {
					newItems[it] = struct{}{}
				}
			}
		}
		st.NewItemsPerUser.Observe(len(newItems))
	}
	for _, f := range s.Train.ItemFrequencies() {
		if f > 0 {
			st.ItemPopularity.Observe(f)
		}
	}
	if n := s.Train.NumUsers(); n > 0 {
		st.AvgPurchasesPerUser = float64(s.Train.NumPurchases()) / float64(n)
	}
	return st
}

// TopPopularItems returns the ids of the k most purchased items in the
// dataset, most popular first (ties by lower id).
func (d *Dataset) TopPopularItems(k int) []int {
	freq := d.ItemFrequencies()
	ids := make([]int, d.NumItems)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		fa, fb := freq[ids[a]], freq[ids[b]]
		if fa != fb {
			return fa > fb
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}
