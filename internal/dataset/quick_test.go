package dataset

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vecmath"
)

// randomDataset derives an arbitrary small dataset from quick-generated
// values.
func randomDataset(seed uint32, usersRaw, itemsRaw uint8) *Dataset {
	rng := vecmath.NewRNG(uint64(seed))
	users := 1 + int(usersRaw)%30
	items := 2 + int(itemsRaw)%60
	d := &Dataset{NumItems: items, Users: make([]History, users)}
	for u := 0; u < users; u++ {
		for tn := rng.Intn(6); tn > 0; tn-- {
			b := make(Basket, 1+rng.Intn(3))
			for i := range b {
				b[i] = int32(rng.Intn(items))
			}
			d.Users[u].Baskets = append(d.Users[u].Baskets, b)
		}
	}
	return d
}

// Property: TSV round trip preserves every basket exactly.
func TestQuickTSVRoundTrip(t *testing.T) {
	f := func(seed uint32, usersRaw, itemsRaw uint8) bool {
		d := randomDataset(seed, usersRaw, itemsRaw)
		var buf bytes.Buffer
		if err := d.WriteTSV(&buf); err != nil {
			return false
		}
		back, err := ReadTSV(&buf)
		if err != nil {
			return false
		}
		if back.NumPurchases() != d.NumPurchases() || back.NumUsers() != d.NumUsers() {
			return false
		}
		for u := range d.Users {
			if len(back.Users[u].Baskets) != len(d.Users[u].Baskets) {
				return false
			}
			for tn := range d.Users[u].Baskets {
				a, b := d.Users[u].Baskets[tn], back.Users[u].Baskets[tn]
				if len(a) != len(b) {
					return false
				}
				for i := range a {
					if a[i] != b[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: ReadTSV never panics on arbitrary garbage.
func TestQuickReadTSVNeverPanics(t *testing.T) {
	f := func(junk string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ReadTSV(strings.NewReader(junk))
		_, _ = ReadTSV(strings.NewReader("purchases 3 5\n" + junk))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: splits partition transactions (KeepRepeats) and never invent
// items; without KeepRepeats the test side only shrinks.
func TestQuickSplitInvariants(t *testing.T) {
	f := func(seed uint32, usersRaw, itemsRaw uint8, muRaw uint8) bool {
		d := randomDataset(seed, usersRaw, itemsRaw)
		mu := float64(muRaw%101) / 100
		cfgKeep := SplitConfig{Mu: mu, Sigma: 0.05, ValidationT: 1, Seed: uint64(seed), KeepRepeats: true}
		s := d.Split(cfgKeep)
		if s.Train.NumPurchases()+s.Validation.NumPurchases()+s.Test.NumPurchases() != d.NumPurchases() {
			return false
		}
		cfgDrop := cfgKeep
		cfgDrop.KeepRepeats = false
		s2 := d.Split(cfgDrop)
		if s2.Test.NumPurchases() > s.Test.NumPurchases() {
			return false
		}
		// no repeat survives
		for u := range s2.Test.Users {
			seen := s2.Train.Users[u].ItemSet()
			for _, b := range s2.Test.Users[u].Baskets {
				for _, it := range b {
					if _, dup := seen[it]; dup {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Concat preserves order and mass.
func TestQuickConcat(t *testing.T) {
	f := func(seed uint32, usersRaw, itemsRaw uint8) bool {
		d := randomDataset(seed, usersRaw, itemsRaw)
		s := d.Split(SplitConfig{Mu: 0.5, Sigma: 0.1, ValidationT: 1, Seed: uint64(seed), KeepRepeats: true})
		merged := Concat(s.Train, s.Validation)
		if merged.NumPurchases() != s.Train.NumPurchases()+s.Validation.NumPurchases() {
			return false
		}
		for u := range merged.Users {
			if len(merged.Users[u].Baskets) != len(s.Train.Users[u].Baskets)+len(s.Validation.Users[u].Baskets) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
