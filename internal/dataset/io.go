package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTSV serializes the dataset as a header line
// "purchases <numUsers> <numItems>" followed by one
// "<user>\t<txn>\t<item>" line per purchase event, ordered by user and
// transaction. The format is the on-disk interchange between tfrec-gen,
// tfrec-train and tfrec-recommend.
func (d *Dataset) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "purchases %d %d\n", d.NumUsers(), d.NumItems); err != nil {
		return err
	}
	for u := range d.Users {
		for t, b := range d.Users[u].Baskets {
			for _, it := range b {
				if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\n", u, t, it); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadTSV parses the format produced by WriteTSV. Transactions may appear
// in any order; they are reassembled per user by transaction index.
// Transaction indices must form a contiguous 0..k-1 range per user.
func ReadTSV(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("dataset: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 3 || header[0] != "purchases" {
		return nil, fmt.Errorf("dataset: bad header %q", sc.Text())
	}
	numUsers, err1 := strconv.Atoi(header[1])
	numItems, err2 := strconv.Atoi(header[2])
	if err1 != nil || err2 != nil || numUsers < 0 || numItems <= 0 {
		return nil, fmt.Errorf("dataset: bad header %q", sc.Text())
	}
	// map[user]map[txn]Basket accumulated, then flattened
	perUser := make([]map[int]Basket, numUsers)
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != 3 {
			return nil, fmt.Errorf("dataset: line %d: want 3 tab-separated fields, got %q", line, text)
		}
		u, err1 := strconv.Atoi(fields[0])
		t, err2 := strconv.Atoi(fields[1])
		it, err3 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("dataset: line %d: bad numbers in %q", line, text)
		}
		if u < 0 || u >= numUsers {
			return nil, fmt.Errorf("dataset: line %d: user %d out of range", line, u)
		}
		if it < 0 || it >= numItems {
			return nil, fmt.Errorf("dataset: line %d: item %d out of range", line, it)
		}
		if t < 0 {
			return nil, fmt.Errorf("dataset: line %d: negative transaction %d", line, t)
		}
		if perUser[u] == nil {
			perUser[u] = make(map[int]Basket)
		}
		perUser[u][t] = append(perUser[u][t], int32(it))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	d := &Dataset{NumItems: numItems, Users: make([]History, numUsers)}
	for u, txns := range perUser {
		if txns == nil {
			continue
		}
		baskets := make([]Basket, len(txns))
		for t, b := range txns {
			if t >= len(txns) {
				return nil, fmt.Errorf("dataset: user %d: transaction ids not contiguous (saw %d with %d txns)", u, t, len(txns))
			}
			baskets[t] = b
		}
		d.Users[u].Baskets = baskets
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
