package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestTSVRoundTrip(t *testing.T) {
	d := mkDataset(6, 12)
	var buf bytes.Buffer
	if err := d.WriteTSV(&buf); err != nil {
		t.Fatalf("WriteTSV: %v", err)
	}
	back, err := ReadTSV(&buf)
	if err != nil {
		t.Fatalf("ReadTSV: %v", err)
	}
	if back.NumItems != d.NumItems || back.NumUsers() != d.NumUsers() {
		t.Fatal("round trip changed shape")
	}
	if back.NumPurchases() != d.NumPurchases() {
		t.Fatalf("purchases %d != %d", back.NumPurchases(), d.NumPurchases())
	}
	for u := range d.Users {
		if len(back.Users[u].Baskets) != len(d.Users[u].Baskets) {
			t.Fatalf("user %d basket count changed", u)
		}
		for tn, b := range d.Users[u].Baskets {
			got := back.Users[u].Baskets[tn]
			if len(got) != len(b) {
				t.Fatalf("user %d txn %d length changed", u, tn)
			}
			for i := range b {
				if got[i] != b[i] {
					t.Fatalf("user %d txn %d item %d: %d != %d", u, tn, i, got[i], b[i])
				}
			}
		}
	}
}

func TestReadTSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"wrong 1 1\n",
		"purchases x 1\n",
		"purchases 1 0\n",
		"purchases 1 5\nnot a line\n",
		"purchases 1 5\n0\t0\tbad\n",
		"purchases 1 5\n5\t0\t0\n",  // user out of range
		"purchases 1 5\n0\t0\t9\n",  // item out of range
		"purchases 1 5\n0\t-1\t0\n", // negative txn
		"purchases 1 5\n0\t5\t0\n",  // non-contiguous txn ids
		"purchases 1 5\n0 0 0\n",    // spaces, not tabs
	}
	for _, c := range cases {
		if _, err := ReadTSV(strings.NewReader(c)); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestReadTSVSkipsBlankLines(t *testing.T) {
	in := "purchases 2 4\n0\t0\t1\n\n1\t0\t2\n"
	d, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadTSV: %v", err)
	}
	if d.NumPurchases() != 2 {
		t.Fatalf("purchases = %d, want 2", d.NumPurchases())
	}
}

func TestReadTSVUserWithNoPurchases(t *testing.T) {
	in := "purchases 3 4\n0\t0\t1\n2\t0\t2\n"
	d, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadTSV: %v", err)
	}
	if len(d.Users[1].Baskets) != 0 {
		t.Fatal("user 1 should have no baskets")
	}
}
