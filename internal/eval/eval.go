// Package eval implements the paper's evaluation protocol (§7.3): AUC and
// average meanRank over each user's first T test transactions, category-
// level variants of both, and the cold-start (new-item) measurements of
// Figure 7(c). Users are partitioned across goroutines, the single-machine
// equivalent of the paper's Hadoop-sharded evaluation (§6.2).
package eval

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/model"
)

// Config controls an evaluation run.
type Config struct {
	// T is how many leading test transactions per user are scored
	// (paper: T=1).
	T int
	// CategoryDepth is the taxonomy depth at which category-level metrics
	// are computed; 1 is the top level (23 categories in the paper).
	CategoryDepth int
	// Workers is the parallelism; <=0 uses GOMAXPROCS.
	Workers int
}

// DefaultConfig mirrors the paper: T=1, top-level categories.
func DefaultConfig() Config {
	return Config{T: 1, CategoryDepth: 1}
}

// Result aggregates the metrics over all evaluated users. AUC-like values
// are means of per-user values; Cold metrics are aggregated per positive
// event because cold items are rare.
type Result struct {
	// AUC is the paper's item-level area under the ROC curve.
	AUC float64
	// MeanRank is the average (over users) of the mean 1-based rank of
	// test items among all items.
	MeanRank float64
	// CatAUC and CatMeanRank are the same metrics computed over the
	// taxonomy level CategoryDepth (Figures 6(c), 6(d)).
	CatAUC      float64
	CatMeanRank float64
	// ColdAUC is the AUC restricted to test items that never appear in
	// the training data — the paper's "new items" (Figure 7(c)).
	ColdAUC float64
	// ColdCount is how many cold positive events contributed.
	ColdCount int
	// Users is the number of users with at least one scored transaction.
	Users int
	// Positives is the total number of scored positive events.
	Positives int
}

// PairMetrics computes the AUC and mean rank of the positives within
// scores. AUC follows the paper's definition
//
//	1/(|T||X\T|) Σ_{x∈T, y∈X\T} δ(r(x) < r(y))
//
// with score ties counted as half (mid-rank convention). The mean rank is
// the average 1-based mid-rank of the positives among all items.
func PairMetrics(scores []float64, positives []int32) (auc, meanRank float64) {
	if len(positives) == 0 || len(scores) <= len(positives) {
		return 0, 0
	}
	isPos := make(map[int32]struct{}, len(positives))
	for _, p := range positives {
		isPos[p] = struct{}{}
	}
	nNeg := len(scores) - len(isPos)
	var aucSum, rankSum float64
	for _, p := range positives {
		sp := scores[p]
		var below, ties int
		var higherAll, tiesAll int
		for id, s := range scores {
			if s > sp {
				higherAll++
			} else if s == sp && int32(id) != p {
				tiesAll++
			}
			if _, ok := isPos[int32(id)]; ok {
				continue
			}
			if s < sp {
				below++
			} else if s == sp {
				ties++
			}
		}
		aucSum += (float64(below) + 0.5*float64(ties)) / float64(nNeg)
		rankSum += 1 + float64(higherAll) + 0.5*float64(tiesAll)
	}
	n := float64(len(positives))
	return aucSum / n, rankSum / n
}

// PrunedAUC scores a pruned ranking (cascaded inference): entries at −Inf
// are "unranked" — items the beam never scored. The convention follows the
// paper's Figure 8(c,d) accuracy ratio:
//
//   - an unranked positive earns zero credit (the system failed to surface
//     it at all);
//   - unranked negatives sit at the bottom of the ranking, strictly below
//     every ranked item (they are exactly what the cascade pruned away).
//
// At 100% keep this coincides with PairMetrics' AUC. As the candidate set
// grows the metric is monotone in the unranked-positive term and nearly
// monotone overall (a newly admitted negative can overtake a ranked
// positive), which is why the paper reports a monotone curve for the
// leaf-only sweep of Figure 8(d) but a non-monotone one when all levels
// move (Figure 8(c)).
func PrunedAUC(scores []float64, positives []int32) float64 {
	if len(positives) == 0 || len(scores) <= len(positives) {
		return 0
	}
	isPos := make(map[int32]struct{}, len(positives))
	for _, p := range positives {
		isPos[p] = struct{}{}
	}
	nNeg := len(scores) - len(isPos)
	var aucSum float64
	for _, p := range positives {
		sp := scores[p]
		if math.IsInf(sp, -1) {
			continue // unranked positive: zero credit
		}
		var below, ties int
		for id, s := range scores {
			if _, ok := isPos[int32(id)]; ok {
				continue
			}
			if s < sp || math.IsInf(s, -1) {
				below++ // pruned negatives rank at the bottom
			} else if s == sp {
				ties++
			}
		}
		aucSum += (float64(below) + 0.5*float64(ties)) / float64(nNeg)
	}
	return aucSum / float64(len(positives))
}

// aucOfPositive computes the AUC contribution of a single positive item
// against all non-positive items.
func aucOfPositive(scores []float64, pos int32, isPos map[int32]struct{}) float64 {
	sp := scores[pos]
	var below, ties, nNeg int
	for id, s := range scores {
		if _, ok := isPos[int32(id)]; ok {
			continue
		}
		nNeg++
		if s < sp {
			below++
		} else if s == sp {
			ties++
		}
	}
	if nNeg == 0 {
		return 0
	}
	return (float64(below) + 0.5*float64(ties)) / float64(nNeg)
}

// userAccum carries one worker's partial sums.
type userAccum struct {
	aucSum, rankSum       float64
	catAUCSum, catRankSum float64
	coldAUCSum            float64
	coldCount             int
	users                 int
	positives             int
}

// Evaluate scores the model snapshot against the test split. history
// supplies each user's observed transactions (train plus validation),
// which seed the Markov context and define which items count as cold.
func Evaluate(c *model.Composed, history, test *dataset.Dataset, cfg Config) Result {
	if cfg.T <= 0 {
		cfg.T = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > test.NumUsers() {
		workers = test.NumUsers()
	}
	if workers < 1 {
		workers = 1
	}
	trainSet := history.GlobalItemSet()

	accs := make([]userAccum, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			evalUsers(c, history, test, cfg, trainSet, w, workers, &accs[w])
		}(w)
	}
	wg.Wait()

	var total userAccum
	for _, a := range accs {
		total.aucSum += a.aucSum
		total.rankSum += a.rankSum
		total.catAUCSum += a.catAUCSum
		total.catRankSum += a.catRankSum
		total.coldAUCSum += a.coldAUCSum
		total.coldCount += a.coldCount
		total.users += a.users
		total.positives += a.positives
	}
	res := Result{Users: total.users, Positives: total.positives, ColdCount: total.coldCount}
	if total.users > 0 {
		res.AUC = total.aucSum / float64(total.users)
		res.MeanRank = total.rankSum / float64(total.users)
		res.CatAUC = total.catAUCSum / float64(total.users)
		res.CatMeanRank = total.catRankSum / float64(total.users)
	}
	if total.coldCount > 0 {
		res.ColdAUC = total.coldAUCSum / float64(total.coldCount)
	}
	return res
}

// evalUsers processes the users assigned to worker w (strided partition).
func evalUsers(c *model.Composed, history, test *dataset.Dataset, cfg Config, trainSet map[int32]struct{}, w, stride int, acc *userAccum) {
	k := c.K()
	q := make([]float64, k)
	scores := make([]float64, c.NumItems())
	catLevel := c.Tree.Level(cfg.CategoryDepth)
	catScores := make([]float64, len(catLevel))
	catPos := make(map[int32]struct{})

	for u := w; u < test.NumUsers(); u += stride {
		testBaskets := test.Users[u].Baskets
		if len(testBaskets) == 0 {
			continue
		}
		seq := history.Users[u].Baskets
		var userAUC, userRank, userCatAUC, userCatRank float64
		scored := 0
		for t := 0; t < len(testBaskets) && t < cfg.T; t++ {
			// context = full observed history plus earlier test baskets
			full := append(append([]dataset.Basket{}, seq...), testBaskets[:t]...)
			c.BuildQueryInto(u, c.PrevBaskets(full, len(full)), q)
			c.ItemScoresInto(q, scores)

			positives := testBaskets[t]
			auc, rank := PairMetrics(scores, positives)
			userAUC += auc
			userRank += rank
			scored++
			acc.positives += len(positives)

			// category level
			for i, node := range catLevel {
				catScores[i] = c.NodeScore(q, int(node))
			}
			clear(catPos)
			for _, p := range positives {
				cat := c.Tree.AncestorAtDepth(c.Tree.ItemNode(int(p)), cfg.CategoryDepth)
				catPos[int32(indexOf(catLevel, int32(cat)))] = struct{}{}
			}
			cp := make([]int32, 0, len(catPos))
			for idx := range catPos {
				cp = append(cp, idx)
			}
			ca, cr := PairMetrics(catScores, cp)
			userCatAUC += ca
			userCatRank += cr

			// cold positives
			isPos := make(map[int32]struct{}, len(positives))
			for _, p := range positives {
				isPos[p] = struct{}{}
			}
			for _, p := range positives {
				if _, seen := trainSet[p]; seen {
					continue
				}
				acc.coldAUCSum += aucOfPositive(scores, p, isPos)
				acc.coldCount++
			}
		}
		if scored == 0 {
			continue
		}
		acc.users++
		acc.aucSum += userAUC / float64(scored)
		acc.rankSum += userRank / float64(scored)
		acc.catAUCSum += userCatAUC / float64(scored)
		acc.catRankSum += userCatRank / float64(scored)
	}
}

func indexOf(level []int32, node int32) int {
	for i, n := range level {
		if n == node {
			return i
		}
	}
	return -1
}

// NaNGuard returns 0 for NaN inputs; harness code uses it when averaging
// optional metrics.
func NaNGuard(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	return x
}
