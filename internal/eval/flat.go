package eval

import (
	"runtime"
	"sync"

	"repro/internal/dataset"
)

// FlatScorer is the minimal interface a non-taxonomy ranker must satisfy
// to be evaluated at the item level (popularity and co-occurrence
// baselines). Context is the user's previous baskets, most-recent first.
type FlatScorer interface {
	NumItems() int
	UserScores(user int, context []dataset.Basket, dst []float64)
}

// FlatResult holds the item-level metrics a FlatScorer supports (no
// category-level metrics: flat scorers have no taxonomy factors).
type FlatResult struct {
	AUC       float64
	MeanRank  float64
	ColdAUC   float64
	ColdCount int
	Users     int
	Positives int
}

// EvaluateFlat runs the paper's item-level protocol over any FlatScorer:
// per user, the first T test transactions are scored with the full
// observed history as context. contextLen bounds how many previous baskets
// are passed (use the model's Markov order, or 0 for none).
func EvaluateFlat(s FlatScorer, history, test *dataset.Dataset, cfg Config, contextLen int) FlatResult {
	if cfg.T <= 0 {
		cfg.T = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > test.NumUsers() {
		workers = test.NumUsers()
	}
	if workers < 1 {
		workers = 1
	}
	trainSet := history.GlobalItemSet()

	accs := make([]userAccum, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := &accs[w]
			scores := make([]float64, s.NumItems())
			for u := w; u < test.NumUsers(); u += workers {
				testBaskets := test.Users[u].Baskets
				if len(testBaskets) == 0 {
					continue
				}
				seq := history.Users[u].Baskets
				var userAUC, userRank float64
				scored := 0
				for t := 0; t < len(testBaskets) && t < cfg.T; t++ {
					full := append(append([]dataset.Basket{}, seq...), testBaskets[:t]...)
					context := recentBaskets(full, contextLen)
					s.UserScores(u, context, scores)
					positives := testBaskets[t]
					auc, rank := PairMetrics(scores, positives)
					userAUC += auc
					userRank += rank
					scored++
					acc.positives += len(positives)

					isPos := make(map[int32]struct{}, len(positives))
					for _, p := range positives {
						isPos[p] = struct{}{}
					}
					for _, p := range positives {
						if _, seen := trainSet[p]; seen {
							continue
						}
						acc.coldAUCSum += aucOfPositive(scores, p, isPos)
						acc.coldCount++
					}
				}
				if scored == 0 {
					continue
				}
				acc.users++
				acc.aucSum += userAUC / float64(scored)
				acc.rankSum += userRank / float64(scored)
			}
		}(w)
	}
	wg.Wait()

	var total userAccum
	for _, a := range accs {
		total.aucSum += a.aucSum
		total.rankSum += a.rankSum
		total.coldAUCSum += a.coldAUCSum
		total.coldCount += a.coldCount
		total.users += a.users
		total.positives += a.positives
	}
	res := FlatResult{Users: total.users, Positives: total.positives, ColdCount: total.coldCount}
	if total.users > 0 {
		res.AUC = total.aucSum / float64(total.users)
		res.MeanRank = total.rankSum / float64(total.users)
	}
	if total.coldCount > 0 {
		res.ColdAUC = total.coldAUCSum / float64(total.coldCount)
	}
	return res
}

// recentBaskets returns up to n trailing baskets of seq, most-recent
// first.
func recentBaskets(seq []dataset.Basket, n int) []dataset.Basket {
	if n <= 0 {
		return nil
	}
	var out []dataset.Basket
	for i := len(seq) - 1; i >= 0 && len(out) < n; i-- {
		out = append(out, seq[i])
	}
	return out
}
