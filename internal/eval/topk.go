package eval

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/vecmath"
)

// TopKResult carries the cut-off ranking metrics at a fixed k. The paper
// reports AUC and meanRank; production recommenders are judged at a cut,
// so the library also provides the standard trio.
type TopKResult struct {
	K int
	// Precision is |top-k ∩ positives| / k, averaged over users.
	Precision float64
	// Recall is |top-k ∩ positives| / |positives|, averaged over users.
	Recall float64
	// HitRate is the fraction of users with at least one positive in the
	// top-k.
	HitRate float64
	// NDCG is the normalized discounted cumulative gain at k (binary
	// relevance), averaged over users.
	NDCG float64
	// Users is how many users contributed.
	Users int
}

// EvaluateTopK computes precision/recall/hit-rate at cut k over each
// user's first test transaction, using the same context protocol as
// Evaluate.
func EvaluateTopK(c *model.Composed, history, test *dataset.Dataset, k int) (TopKResult, error) {
	if k <= 0 {
		return TopKResult{}, fmt.Errorf("eval: k must be positive, got %d", k)
	}
	res := TopKResult{K: k}
	q := make([]float64, c.K())
	st := vecmath.NewTopKStream(k)
	for u := 0; u < test.NumUsers(); u++ {
		baskets := test.Users[u].Baskets
		if len(baskets) == 0 {
			continue
		}
		seq := history.Users[u].Baskets
		c.BuildQueryInto(u, c.PrevBaskets(seq, len(seq)), q)
		// stream the index sweep straight into a reused bounded heap
		// instead of materializing a catalog-sized score array per user
		st.Reset(k)
		infer.NaiveInto(c, q, st)
		top := st.Ranked()

		positives := baskets[0]
		hits := 0
		var dcg float64
		for rank, t := range top {
			if positives.Contains(int32(t.ID)) {
				hits++
				dcg += 1 / log2(float64(rank+2))
			}
		}
		var idcg float64
		ideal := len(positives)
		if ideal > k {
			ideal = k
		}
		for rank := 0; rank < ideal; rank++ {
			idcg += 1 / log2(float64(rank+2))
		}
		res.Precision += float64(hits) / float64(k)
		res.Recall += float64(hits) / float64(len(positives))
		if idcg > 0 {
			res.NDCG += dcg / idcg
		}
		if hits > 0 {
			res.HitRate++
		}
		res.Users++
	}
	if res.Users > 0 {
		n := float64(res.Users)
		res.Precision /= n
		res.Recall /= n
		res.HitRate /= n
		res.NDCG /= n
	}
	return res, nil
}

func log2(x float64) float64 { return math.Log2(x) }
