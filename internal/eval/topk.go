package eval

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/vecmath"
)

// TopKResult carries the cut-off ranking metrics at a fixed k. The paper
// reports AUC and meanRank; production recommenders are judged at a cut,
// so the library also provides the standard trio.
type TopKResult struct {
	K int
	// Precision is |top-k ∩ positives| / k, averaged over users.
	Precision float64
	// Recall is |top-k ∩ positives| / |positives|, averaged over users.
	Recall float64
	// HitRate is the fraction of users with at least one positive in the
	// top-k.
	HitRate float64
	// NDCG is the normalized discounted cumulative gain at k (binary
	// relevance), averaged over users.
	NDCG float64
	// Users is how many users contributed.
	Users int
}

// EvaluateTopK computes precision/recall/hit-rate at cut k over each
// user's first test transaction, using the same context protocol as
// Evaluate. It runs single-threaded; EvaluateTopKWorkers shards users
// over goroutines for large test sets.
func EvaluateTopK(c *model.Composed, history, test *dataset.Dataset, k int) (TopKResult, error) {
	return EvaluateTopKWorkers(c, history, test, k, 1)
}

// EvaluateTopKWorkers is EvaluateTopK partitioned over workers goroutines
// (<= 0 uses GOMAXPROCS), mirroring the §6.2 user-sharded evaluation.
// Each worker owns a query buffer and a bounded top-k heap and evaluates
// an interleaved user slice; per-worker partial sums are reduced in
// worker order, so the result is deterministic for a given worker count.
func EvaluateTopKWorkers(c *model.Composed, history, test *dataset.Dataset, k, workers int) (TopKResult, error) {
	return EvaluateTopKPrecision(c, history, test, k, workers, model.PrecisionF64)
}

// EvaluateTopKPrecision is EvaluateTopKWorkers with an explicit scoring
// precision: model.PrecisionF32 sweeps each user's query through the
// two-stage compact-slab pipeline. Metrics are identical either way —
// the f32 pipeline's rankings are byte-identical — so the knob only
// moves evaluation throughput.
func EvaluateTopKPrecision(c *model.Composed, history, test *dataset.Dataset, k, workers int, prec model.Precision) (TopKResult, error) {
	return EvaluateTopKPlan(c, history, test, workers, infer.Plan{K: k, Precision: prec.Resolve(), MaxWorkers: 1})
}

// EvaluateTopKPlan is the fully general entry point: the caller supplies
// the per-user plan (precision, pruned retrieval, filters) and the
// evaluator shards users over workers goroutines, running one copy of the
// plan per user. Plan.K must be positive; MaxWorkers should stay 1 —
// users are already sharded over goroutines here, so the per-query sweep
// stays serial. Every ranking-equivalent plan (any precision, pruned or
// dense) yields identical metrics; the choice only moves throughput.
func EvaluateTopKPlan(c *model.Composed, history, test *dataset.Dataset, workers int, pl infer.Plan) (TopKResult, error) {
	k := pl.K
	if k <= 0 {
		return TopKResult{}, fmt.Errorf("eval: k must be positive, got %d", k)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > test.NumUsers() {
		workers = test.NumUsers()
	}
	if workers < 1 {
		workers = 1
	}
	partials := make([]TopKResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := &partials[w]
			part.K = k
			q := make([]float64, c.K())
			st := vecmath.NewTopKStream(k)
			for u := w; u < test.NumUsers(); u += workers {
				evaluateTopKUser(c, history, test, u, k, q, st, pl, part)
			}
		}(w)
	}
	wg.Wait()
	res := TopKResult{K: k}
	for _, part := range partials {
		res.Precision += part.Precision
		res.Recall += part.Recall
		res.HitRate += part.HitRate
		res.NDCG += part.NDCG
		res.Users += part.Users
	}
	if res.Users > 0 {
		n := float64(res.Users)
		res.Precision /= n
		res.Recall /= n
		res.HitRate /= n
		res.NDCG /= n
	}
	return res, nil
}

// evaluateTopKUser scores one user's first test transaction into part,
// accumulating unnormalized metric sums.
func evaluateTopKUser(c *model.Composed, history, test *dataset.Dataset, u, k int, q []float64, st *vecmath.TopKStream, pl infer.Plan, part *TopKResult) {
	baskets := test.Users[u].Baskets
	if len(baskets) == 0 {
		return
	}
	seq := history.Users[u].Baskets
	c.BuildQueryInto(u, c.PrevBaskets(seq, len(seq)), q)
	// run the plan into a reused bounded heap instead of materializing a
	// catalog-sized score array per user
	res, err := infer.ExecuteInto(context.Background(), c, q, pl, st)
	if err != nil {
		// the plan is constant and k was validated above; nothing per-user
		// can fail here
		panic(err)
	}
	top := res.Items

	positives := baskets[0]
	hits := 0
	var dcg float64
	for rank, t := range top {
		if positives.Contains(int32(t.ID)) {
			hits++
			dcg += 1 / log2(float64(rank+2))
		}
	}
	var idcg float64
	ideal := len(positives)
	if ideal > k {
		ideal = k
	}
	for rank := 0; rank < ideal; rank++ {
		idcg += 1 / log2(float64(rank+2))
	}
	part.Precision += float64(hits) / float64(k)
	part.Recall += float64(hits) / float64(len(positives))
	if idcg > 0 {
		part.NDCG += dcg / idcg
	}
	if hits > 0 {
		part.HitRate++
	}
	part.Users++
}

func log2(x float64) float64 { return math.Log2(x) }
