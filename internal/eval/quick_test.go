package eval

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/vecmath"
)

// Property: AUC and PrunedAUC always land in [0,1] for arbitrary finite
// score vectors and positive sets.
func TestQuickMetricBounds(t *testing.T) {
	f := func(seed uint32, nRaw, pRaw uint8) bool {
		rng := vecmath.NewRNG(uint64(seed))
		n := 3 + int(nRaw)%200
		nPos := 1 + int(pRaw)%(n/2)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		perm := rng.Perm(n)
		pos := make([]int32, nPos)
		for i := range pos {
			pos[i] = int32(perm[i])
		}
		auc, rank := PairMetrics(scores, pos)
		if auc < 0 || auc > 1 || rank < 1 || rank > float64(n) {
			return false
		}
		// prune a random subset and check PrunedAUC bounds
		pruned := make([]float64, n)
		copy(pruned, scores)
		for i := range pruned {
			if rng.Float64() < 0.4 {
				pruned[i] = math.Inf(-1)
			}
		}
		pa := PrunedAUC(pruned, pos)
		return pa >= 0 && pa <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: complementing the ranking (negating scores) complements the
// AUC: auc(s) + auc(-s) == 1 when there are no ties.
func TestQuickAUCComplement(t *testing.T) {
	f := func(seed uint32) bool {
		rng := vecmath.NewRNG(uint64(seed))
		n := 50
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.NormFloat64() // ties have probability ~0
		}
		pos := []int32{int32(rng.Intn(n))}
		aucA, _ := PairMetrics(scores, pos)
		neg := make([]float64, n)
		for i, s := range scores {
			neg[i] = -s
		}
		aucB, _ := PairMetrics(neg, pos)
		return math.Abs(aucA+aucB-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: PrunedAUC is monotone in the candidate set when pruning only
// removes negatives BELOW the positives (the common cascade case): adding
// such candidates back never lowers the metric… and in full generality
// the metric never exceeds the fully ranked AUC by more than the pruned
// negatives' mass.
func TestQuickPrunedAUCNeverExceedsFullByMuch(t *testing.T) {
	f := func(seed uint32) bool {
		rng := vecmath.NewRNG(uint64(seed))
		n := 80
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		pos := []int32{int32(rng.Intn(n))}
		full, _ := PairMetrics(scores, pos)
		pruned := make([]float64, n)
		copy(pruned, scores)
		prunedCount := 0
		for i := range pruned {
			if int32(i) != pos[0] && rng.Float64() < 0.3 {
				pruned[i] = math.Inf(-1)
				prunedCount++
			}
		}
		pa := PrunedAUC(pruned, pos)
		// each pruned negative can add at most 1/nNeg of credit
		slack := float64(prunedCount) / float64(n-1)
		return pa <= full+slack+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
