package eval

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/train"
	"repro/internal/vecmath"
)

func TestPairMetricsPerfectRanking(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.2, 0.8, 0.3}
	auc, rank := PairMetrics(scores, []int32{1, 3})
	if auc != 1 {
		t.Fatalf("AUC = %v, want 1 for perfectly ranked positives", auc)
	}
	if rank != 1.5 {
		t.Fatalf("mean rank = %v, want 1.5", rank)
	}
}

func TestPairMetricsWorstRanking(t *testing.T) {
	scores := []float64{0.9, 0.1, 0.8, 0.7}
	auc, rank := PairMetrics(scores, []int32{1})
	if auc != 0 {
		t.Fatalf("AUC = %v, want 0", auc)
	}
	if rank != 4 {
		t.Fatalf("rank = %v, want 4", rank)
	}
}

func TestPairMetricsRandomScoresNearHalf(t *testing.T) {
	rng := vecmath.NewRNG(7)
	n := 2000
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	var total float64
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		auc, _ := PairMetrics(scores, []int32{int32(rng.Intn(n))})
		total += auc
	}
	mean := total / trials
	if math.Abs(mean-0.5) > 0.1 {
		t.Fatalf("random AUC = %v, want ~0.5", mean)
	}
}

func TestPairMetricsTiesCountHalf(t *testing.T) {
	scores := []float64{1, 1, 1, 1}
	auc, rank := PairMetrics(scores, []int32{0})
	if auc != 0.5 {
		t.Fatalf("all-tied AUC = %v, want 0.5", auc)
	}
	if rank != 2.5 {
		t.Fatalf("all-tied rank = %v, want 2.5 (mid of 1..4)", rank)
	}
}

func TestPairMetricsEmptyPositives(t *testing.T) {
	auc, rank := PairMetrics([]float64{1, 2}, nil)
	if auc != 0 || rank != 0 {
		t.Fatalf("empty positives should yield zeros, got %v %v", auc, rank)
	}
}

func TestPairMetricsAUCInvariantToMonotoneTransform(t *testing.T) {
	rng := vecmath.NewRNG(9)
	scores := make([]float64, 100)
	for i := range scores {
		scores[i] = rng.NormFloat64()
	}
	pos := []int32{3, 50, 99}
	auc1, _ := PairMetrics(scores, pos)
	scaled := make([]float64, len(scores))
	for i, s := range scores {
		scaled[i] = 3*s + 7
	}
	auc2, _ := PairMetrics(scaled, pos)
	if math.Abs(auc1-auc2) > 1e-12 {
		t.Fatalf("AUC not invariant to affine transform: %v vs %v", auc1, auc2)
	}
}

// buildTrainedWorld trains a small TF model on a deterministic dataset
// where user u strongly prefers category u%nCats, then returns everything
// the evaluator needs.
func buildTrainedWorld(t *testing.T) (*model.Composed, *dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{3, 6},
		Items:          120,
		Skew:           0,
	}, vecmath.NewRNG(17))

	nItems := tree.NumItems()
	users := 60
	hist := &dataset.Dataset{NumItems: nItems, Users: make([]dataset.History, users)}
	test := &dataset.Dataset{NumItems: nItems, Users: make([]dataset.History, users)}
	// items are distributed over 6 leaf categories (depth 2); user u buys
	// items of category u%6: train on some, test on others
	leafCats := tree.Level(tree.Depth() - 1)
	catItems := make([][]int32, len(leafCats))
	for ci, cat := range leafCats {
		for _, leaf := range tree.Children(int(cat)) {
			catItems[ci] = append(catItems[ci], int32(tree.NodeItem(int(leaf))))
		}
	}
	for u := 0; u < users; u++ {
		items := catItems[u%len(catItems)]
		for k := 0; k+1 < len(items) && k < 8; k += 2 {
			hist.Users[u].Baskets = append(hist.Users[u].Baskets, dataset.Basket{items[k]})
		}
		test.Users[u].Baskets = []dataset.Basket{{items[1]}, {items[3]}}
	}

	m, err := model.New(tree, users, model.Params{K: 8, TaxonomyLevels: 3, InitStd: 0.01, Alpha: 1}, vecmath.NewRNG(23))
	if err != nil {
		t.Fatal(err)
	}
	cfg := train.DefaultConfig()
	cfg.Epochs = 40
	if _, err := train.Train(m, hist, cfg); err != nil {
		t.Fatal(err)
	}
	return m.Compose(), hist, test
}

func TestEvaluateTrainedModelBeatsRandom(t *testing.T) {
	c, hist, test := buildTrainedWorld(t)
	res := Evaluate(c, hist, test, DefaultConfig())
	if res.Users != 60 {
		t.Fatalf("Users = %d, want 60", res.Users)
	}
	if res.AUC < 0.7 {
		t.Fatalf("trained AUC = %v, want > 0.7", res.AUC)
	}
	if res.CatAUC < 0.7 {
		t.Fatalf("category AUC = %v, want > 0.7", res.CatAUC)
	}
	if res.MeanRank <= 0 || res.MeanRank > float64(test.NumItems) {
		t.Fatalf("MeanRank = %v out of range", res.MeanRank)
	}
	if res.CatMeanRank <= 0 || res.CatMeanRank > 3 {
		t.Fatalf("CatMeanRank = %v, want small (3 top categories)", res.CatMeanRank)
	}
}

func TestEvaluateUntrainedModelNearChance(t *testing.T) {
	_, hist, test := buildTrainedWorld(t)
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{3, 6},
		Items:          120,
		Skew:           0,
	}, vecmath.NewRNG(17))
	m, err := model.New(tree, 60, model.Params{K: 8, TaxonomyLevels: 1, InitStd: 0.01, Alpha: 1}, vecmath.NewRNG(29))
	if err != nil {
		t.Fatal(err)
	}
	res := Evaluate(m.Compose(), hist, test, DefaultConfig())
	if math.Abs(res.AUC-0.5) > 0.12 {
		t.Fatalf("untrained AUC = %v, want ~0.5", res.AUC)
	}
}

func TestEvaluateParallelMatchesSerial(t *testing.T) {
	c, hist, test := buildTrainedWorld(t)
	serial := Evaluate(c, hist, test, Config{T: 1, CategoryDepth: 1, Workers: 1})
	parallel := Evaluate(c, hist, test, Config{T: 1, CategoryDepth: 1, Workers: 8})
	if math.Abs(serial.AUC-parallel.AUC) > 1e-12 ||
		math.Abs(serial.MeanRank-parallel.MeanRank) > 1e-12 ||
		serial.Users != parallel.Users {
		t.Fatalf("parallel evaluation differs: %+v vs %+v", serial, parallel)
	}
}

func TestEvaluateColdItems(t *testing.T) {
	c, hist, test := buildTrainedWorld(t)
	// make one test positive cold by ensuring it never appears in history:
	// find an item absent from every history basket
	seen := hist.GlobalItemSet()
	var cold int32 = -1
	for it := 0; it < hist.NumItems; it++ {
		if _, ok := seen[int32(it)]; !ok {
			cold = int32(it)
			break
		}
	}
	if cold < 0 {
		t.Skip("no cold item available")
	}
	test.Users[0].Baskets[0] = dataset.Basket{cold}
	res := Evaluate(c, hist, test, DefaultConfig())
	if res.ColdCount == 0 {
		t.Fatal("cold positive not detected")
	}
	if res.ColdAUC < 0 || res.ColdAUC > 1 {
		t.Fatalf("ColdAUC = %v out of [0,1]", res.ColdAUC)
	}
}

func TestEvaluateEmptyTest(t *testing.T) {
	c, hist, _ := buildTrainedWorld(t)
	empty := &dataset.Dataset{NumItems: hist.NumItems, Users: make([]dataset.History, hist.NumUsers())}
	res := Evaluate(c, hist, empty, DefaultConfig())
	if res.Users != 0 || res.AUC != 0 {
		t.Fatalf("empty test should produce zero result, got %+v", res)
	}
}

func TestEvaluateTGreaterThanOne(t *testing.T) {
	c, hist, test := buildTrainedWorld(t)
	res1 := Evaluate(c, hist, test, Config{T: 1, CategoryDepth: 1})
	res2 := Evaluate(c, hist, test, Config{T: 2, CategoryDepth: 1})
	if res2.Positives <= res1.Positives {
		t.Fatalf("T=2 should score more positives: %d vs %d", res2.Positives, res1.Positives)
	}
}

func TestPrunedAUCMatchesPairMetricsWhenComplete(t *testing.T) {
	rng := vecmath.NewRNG(13)
	scores := make([]float64, 300)
	for i := range scores {
		scores[i] = rng.NormFloat64()
	}
	pos := []int32{5, 77, 240}
	full, _ := PairMetrics(scores, pos)
	pruned := PrunedAUC(scores, pos)
	if math.Abs(full-pruned) > 1e-12 {
		t.Fatalf("complete ranking: PrunedAUC %v != PairMetrics %v", pruned, full)
	}
}

func TestPrunedAUCUnrankedPositiveGetsZero(t *testing.T) {
	scores := []float64{math.Inf(-1), 1, 2, 3}
	if got := PrunedAUC(scores, []int32{0}); got != 0 {
		t.Fatalf("unranked positive AUC = %v, want 0", got)
	}
}

func TestPrunedAUCUnrankedNegativesRankBottom(t *testing.T) {
	// positive ranked, all negatives pruned: full credit
	scores := []float64{5, math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	if got := PrunedAUC(scores, []int32{0}); got != 1 {
		t.Fatalf("AUC = %v, want 1 when every negative was pruned", got)
	}
	// one ranked negative above the positive: 2/3 of negatives below
	scores2 := []float64{5, 9, math.Inf(-1), math.Inf(-1)}
	if got := PrunedAUC(scores2, []int32{0}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("AUC = %v, want 2/3", got)
	}
}

func TestNaNGuard(t *testing.T) {
	if NaNGuard(math.NaN()) != 0 {
		t.Fatal("NaN should map to 0")
	}
	if NaNGuard(1.5) != 1.5 {
		t.Fatal("finite values must pass through")
	}
}
