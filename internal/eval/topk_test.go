package eval

import (
	"repro/internal/infer"
	"repro/internal/model"
	"testing"
)

func TestEvaluateTopKPerfectAndEmpty(t *testing.T) {
	c, hist, test := buildTrainedWorld(t)
	res, err := EvaluateTopK(c, hist, test, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Users == 0 {
		t.Fatal("no users evaluated")
	}
	if res.Precision < 0 || res.Precision > 1 || res.Recall < 0 || res.Recall > 1 || res.HitRate < 0 || res.HitRate > 1 {
		t.Fatalf("metrics out of [0,1]: %+v", res)
	}
	// the trained world is easy: some hits must land
	if res.HitRate == 0 {
		t.Fatal("trained model should hit at least occasionally in top-10")
	}
	if _, err := EvaluateTopK(c, hist, test, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestEvaluateTopKMonotoneInK(t *testing.T) {
	c, hist, test := buildTrainedWorld(t)
	small, err := EvaluateTopK(c, hist, test, 5)
	if err != nil {
		t.Fatal(err)
	}
	big, err := EvaluateTopK(c, hist, test, 50)
	if err != nil {
		t.Fatal(err)
	}
	if big.Recall < small.Recall {
		t.Fatalf("recall must grow with k: %v -> %v", small.Recall, big.Recall)
	}
	if big.HitRate < small.HitRate {
		t.Fatalf("hit rate must grow with k: %v -> %v", small.HitRate, big.HitRate)
	}
}

func TestEvaluateTopKWorkersMatchesSerial(t *testing.T) {
	c, hist, test := buildTrainedWorld(t)
	want, err := EvaluateTopK(c, hist, test, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 7} {
		got, err := EvaluateTopKWorkers(c, hist, test, 10, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.Users != want.Users || got.K != want.K {
			t.Fatalf("workers=%d: users/k mismatch: %+v vs %+v", workers, got, want)
		}
		// per-user contributions are identical; only the float reduction
		// order differs across worker counts
		const tol = 1e-12
		if diffAbs(got.Precision, want.Precision) > tol || diffAbs(got.Recall, want.Recall) > tol ||
			diffAbs(got.HitRate, want.HitRate) > tol || diffAbs(got.NDCG, want.NDCG) > tol {
			t.Fatalf("workers=%d: metrics diverged: %+v vs %+v", workers, got, want)
		}
	}
}

// Pruned retrieval is ranking-identical to the dense sweep, so every
// metric must match EXACTLY (same per-user pages, same reduction order).
func TestEvaluateTopKPlanPrunedMatchesDense(t *testing.T) {
	c, hist, test := buildTrainedWorld(t)
	for _, prec := range []model.Precision{model.PrecisionF64, model.PrecisionF32, model.PrecisionInt8} {
		dense := infer.Plan{K: 10, Precision: prec, MaxWorkers: 1}
		pruned := dense
		pruned.Pruned = true
		want, err := EvaluateTopKPlan(c, hist, test, 3, dense)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvaluateTopKPlan(c, hist, test, 3, pruned)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("prec %v: pruned metrics diverged: %+v vs %+v", prec, got, want)
		}
	}
	if _, err := EvaluateTopKPlan(c, hist, test, 1, infer.Plan{}); err == nil {
		t.Fatal("expected error for k=0 plan")
	}
}

func diffAbs(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
