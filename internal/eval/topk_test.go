package eval

import (
	"testing"
)

func TestEvaluateTopKPerfectAndEmpty(t *testing.T) {
	c, hist, test := buildTrainedWorld(t)
	res, err := EvaluateTopK(c, hist, test, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Users == 0 {
		t.Fatal("no users evaluated")
	}
	if res.Precision < 0 || res.Precision > 1 || res.Recall < 0 || res.Recall > 1 || res.HitRate < 0 || res.HitRate > 1 {
		t.Fatalf("metrics out of [0,1]: %+v", res)
	}
	// the trained world is easy: some hits must land
	if res.HitRate == 0 {
		t.Fatal("trained model should hit at least occasionally in top-10")
	}
	if _, err := EvaluateTopK(c, hist, test, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestEvaluateTopKMonotoneInK(t *testing.T) {
	c, hist, test := buildTrainedWorld(t)
	small, err := EvaluateTopK(c, hist, test, 5)
	if err != nil {
		t.Fatal(err)
	}
	big, err := EvaluateTopK(c, hist, test, 50)
	if err != nil {
		t.Fatal(err)
	}
	if big.Recall < small.Recall {
		t.Fatalf("recall must grow with k: %v -> %v", small.Recall, big.Recall)
	}
	if big.HitRate < small.HitRate {
		t.Fatalf("hit rate must grow with k: %v -> %v", small.HitRate, big.HitRate)
	}
}
