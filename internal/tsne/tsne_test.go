package tsne

import (
	"math"
	"testing"

	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// threeClusters builds n points in d dims forming three well-separated
// Gaussian blobs; returns the points and their cluster labels.
func threeClusters(n, d int, seed uint64) (*vecmath.Matrix, []int) {
	rng := vecmath.NewRNG(seed)
	centers := vecmath.NewMatrix(3, d)
	for c := 0; c < 3; c++ {
		for k := 0; k < d; k++ {
			centers.Row(c)[k] = 10 * rng.NormFloat64()
		}
	}
	x := vecmath.NewMatrix(n, d)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		labels[i] = c
		for k := 0; k < d; k++ {
			x.Row(i)[k] = centers.Row(c)[k] + 0.3*rng.NormFloat64()
		}
	}
	return x, labels
}

// separation computes mean within-cluster distance over mean
// between-cluster distance in the embedding; small is good.
func separation(y *vecmath.Matrix, labels []int) float64 {
	var within, between float64
	var nw, nb int
	for i := 0; i < y.Rows(); i++ {
		for j := i + 1; j < y.Rows(); j++ {
			d := vecmath.Dist2(y.Row(i), y.Row(j))
			if labels[i] == labels[j] {
				within += d
				nw++
			} else {
				between += d
				nb++
			}
		}
	}
	return (within / float64(nw)) / (between / float64(nb))
}

func TestPCASeparatesClusters(t *testing.T) {
	x, labels := threeClusters(90, 10, 3)
	y := PCA(x, vecmath.NewRNG(5))
	if y.Rows() != 90 || y.Cols() != 2 {
		t.Fatalf("PCA shape %dx%d", y.Rows(), y.Cols())
	}
	if s := separation(y, labels); s > 0.3 {
		t.Fatalf("PCA separation ratio %v, want < 0.3", s)
	}
}

func TestPCADeterministic(t *testing.T) {
	x, _ := threeClusters(60, 8, 4)
	a := PCA(x, vecmath.NewRNG(9))
	b := PCA(x, vecmath.NewRNG(9))
	if a.MaxAbsDiff(b) != 0 {
		t.Fatal("PCA must be deterministic for fixed seed")
	}
}

func TestPCAPreservesVarianceOrdering(t *testing.T) {
	// data with dominant variance along dim 0
	rng := vecmath.NewRNG(6)
	x := vecmath.NewMatrix(200, 3)
	for i := 0; i < 200; i++ {
		x.Row(i)[0] = 10 * rng.NormFloat64()
		x.Row(i)[1] = 1 * rng.NormFloat64()
		x.Row(i)[2] = 0.1 * rng.NormFloat64()
	}
	y := PCA(x, vecmath.NewRNG(7))
	var v0, v1 float64
	for i := 0; i < y.Rows(); i++ {
		v0 += y.Row(i)[0] * y.Row(i)[0]
		v1 += y.Row(i)[1] * y.Row(i)[1]
	}
	if v0 <= v1 {
		t.Fatalf("first component variance %v should exceed second %v", v0, v1)
	}
}

func TestTSNESeparatesClusters(t *testing.T) {
	x, labels := threeClusters(60, 8, 8)
	cfg := DefaultConfig()
	cfg.Iters = 200
	y, err := TSNE(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if y.Rows() != 60 || y.Cols() != 2 {
		t.Fatalf("TSNE shape %dx%d", y.Rows(), y.Cols())
	}
	if s := separation(y, labels); s > 0.5 {
		t.Fatalf("t-SNE separation ratio %v, want < 0.5", s)
	}
	for _, v := range y.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("embedding contains non-finite values")
		}
	}
}

func TestTSNERejectsBadConfig(t *testing.T) {
	x, _ := threeClusters(30, 4, 2)
	cases := []Config{
		{Perplexity: 0, Iters: 10, LearnRate: 100},
		{Perplexity: 100, Iters: 10, LearnRate: 100}, // >= n
		{Perplexity: 5, Iters: 0, LearnRate: 100},
	}
	for i, cfg := range cases {
		if _, err := TSNE(x, cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	tiny := vecmath.NewMatrix(3, 2)
	if _, err := TSNE(tiny, DefaultConfig()); err == nil {
		t.Error("expected error for too few points")
	}
}

func TestHierarchyClusteringDetectsStructure(t *testing.T) {
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{4, 16, 64},
		Items:          128,
		Skew:           0,
	}, vecmath.NewRNG(11))
	// construct vectors that genuinely follow the hierarchy: each node =
	// parent + small noise
	rng := vecmath.NewRNG(13)
	vectors := vecmath.NewMatrix(tree.NumNodes(), 6)
	for d := 1; d <= tree.Depth(); d++ {
		for _, node := range tree.Level(d) {
			row := vectors.Row(int(node))
			vecmath.Copy(row, vectors.Row(tree.Parent(int(node))))
			for k := range row {
				row[k] += 0.3 * rng.NormFloat64()
			}
		}
	}
	// root-level spread
	for _, node := range tree.Level(1) {
		for k := 0; k < 6; k++ {
			vectors.Row(int(node))[k] += 5 * rng.NormFloat64()
		}
	}
	// recompose children after moving level-1 (simulate spread clusters)
	for d := 2; d <= tree.Depth(); d++ {
		for _, node := range tree.Level(d) {
			row := vectors.Row(int(node))
			parent := vectors.Row(tree.Parent(int(node)))
			for k := range row {
				row[k] = parent[k] + 0.3*rng.NormFloat64()
			}
		}
	}
	stats, err := HierarchyClustering(tree, vectors, 1, 3, vecmath.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ratio() > 0.5 {
		t.Fatalf("clustering ratio %v, want well below 1 for hierarchical vectors", stats.Ratio())
	}
	// shuffled vectors must show no clustering
	flat := vecmath.NewMatrix(tree.NumNodes(), 6)
	flat.FillGaussian(vecmath.NewRNG(19), 1)
	nostats, err := HierarchyClustering(tree, flat, 1, 3, vecmath.NewRNG(23))
	if err != nil {
		t.Fatal(err)
	}
	if nostats.Ratio() < 0.8 {
		t.Fatalf("random vectors show ratio %v; metric is broken", nostats.Ratio())
	}
}

func TestHierarchyClusteringValidation(t *testing.T) {
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{2, 4},
		Items:          8,
	}, vecmath.NewRNG(1))
	v := vecmath.NewMatrix(tree.NumNodes(), 2)
	if _, err := HierarchyClustering(tree, v, 0, 2, vecmath.NewRNG(1)); err == nil {
		t.Error("minDepth 0 must be rejected")
	}
	if _, err := HierarchyClustering(tree, v, 2, 1, vecmath.NewRNG(1)); err == nil {
		t.Error("inverted range must be rejected")
	}
	if _, err := HierarchyClustering(tree, v, 1, 99, vecmath.NewRNG(1)); err == nil {
		t.Error("out-of-range maxDepth must be rejected")
	}
}

func TestGatherRows(t *testing.T) {
	src := vecmath.NewMatrix(5, 2)
	for i := 0; i < 5; i++ {
		src.Row(i)[0] = float64(i)
	}
	out := GatherRows(src, []int32{4, 0, 2})
	if out.Rows() != 3 || out.Row(0)[0] != 4 || out.Row(1)[0] != 0 || out.Row(2)[0] != 2 {
		t.Fatalf("GatherRows wrong: %+v", out.Data())
	}
}
