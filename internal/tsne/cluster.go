package tsne

import (
	"fmt"

	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// ClusterStats quantifies what Figure 7(e) shows visually: learned factors
// of taxonomy nodes sit near their ancestors. ChildParentDist is the mean
// distance between a node's vector and its parent's; RandomPairDist is the
// mean distance between random node pairs of the same level set. A ratio
// well below 1 means the taxonomy clusters the latent space.
type ClusterStats struct {
	ChildParentDist float64
	RandomPairDist  float64
	Pairs           int
}

// Ratio returns ChildParentDist / RandomPairDist (0 when degenerate).
func (s ClusterStats) Ratio() float64 {
	if s.RandomPairDist == 0 {
		return 0
	}
	return s.ChildParentDist / s.RandomPairDist
}

// HierarchyClustering measures the clustering of vectors (indexed by
// taxonomy node id) over the nodes of depths [minDepth, maxDepth]: each
// child-parent edge contributes to ChildParentDist, and an equal number of
// random same-range pairs to RandomPairDist.
func HierarchyClustering(tree *taxonomy.Tree, vectors *vecmath.Matrix, minDepth, maxDepth int, rng *vecmath.RNG) (ClusterStats, error) {
	if minDepth < 1 || maxDepth > tree.Depth() || minDepth > maxDepth {
		return ClusterStats{}, fmt.Errorf("tsne: bad depth range [%d,%d] for tree depth %d", minDepth, maxDepth, tree.Depth())
	}
	var nodes []int32
	for d := minDepth; d <= maxDepth; d++ {
		nodes = append(nodes, tree.Level(d)...)
	}
	if len(nodes) < 2 {
		return ClusterStats{}, fmt.Errorf("tsne: not enough nodes in range")
	}
	var stats ClusterStats
	for _, node := range nodes {
		parent := tree.Parent(int(node))
		if parent == taxonomy.NoParent || tree.DepthOf(parent) < minDepth {
			continue
		}
		stats.ChildParentDist += vecmath.Dist2(vectors.Row(int(node)), vectors.Row(parent))
		a, b := nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))]
		for a == b {
			b = nodes[rng.Intn(len(nodes))]
		}
		stats.RandomPairDist += vecmath.Dist2(vectors.Row(int(a)), vectors.Row(int(b)))
		stats.Pairs++
	}
	if stats.Pairs == 0 {
		return ClusterStats{}, fmt.Errorf("tsne: no child-parent edges inside depth range")
	}
	stats.ChildParentDist /= float64(stats.Pairs)
	stats.RandomPairDist /= float64(stats.Pairs)
	return stats, nil
}

// GatherRows copies the given node ids' rows of src into a compact matrix
// (row i = src row of ids[i]); the embedding functions operate on the
// compacted form.
func GatherRows(src *vecmath.Matrix, ids []int32) *vecmath.Matrix {
	out := vecmath.NewMatrix(len(ids), src.Cols())
	for i, id := range ids {
		vecmath.Copy(out.Row(i), src.Row(int(id)))
	}
	return out
}
