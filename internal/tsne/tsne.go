// Package tsne provides the dimensionality-reduction tooling behind
// Figure 7(e) of Kanagal et al. (VLDB 2012): a 2-D projection of the
// learned taxonomy factors showing items clustered around their ancestors.
// It implements exact t-SNE (van der Maaten's O(N²) formulation — the
// figure plots only the upper ~1.8k taxonomy nodes, well within exact
// range), PCA by power iteration as the fast alternative, and a
// quantitative clustering statistic so the reproduction can assert the
// figure's claim instead of eyeballing a plot.
package tsne

import (
	"fmt"
	"math"

	"repro/internal/vecmath"
)

// PCA projects the rows of x (n x d) onto their top-2 principal
// components using power iteration with deflation, returning an n x 2
// matrix. It is deterministic given rng.
func PCA(x *vecmath.Matrix, rng *vecmath.RNG) *vecmath.Matrix {
	n, d := x.Rows(), x.Cols()
	// center
	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		vecmath.Add(mean, x.Row(i))
	}
	vecmath.Scale(mean, 1/float64(n))
	centered := vecmath.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		row := centered.Row(i)
		vecmath.Copy(row, x.Row(i))
		vecmath.Sub(row, mean)
	}

	components := make([][]float64, 0, 2)
	for c := 0; c < 2 && c < d; c++ {
		v := powerIteration(centered, components, rng)
		components = append(components, v)
	}

	out := vecmath.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		for c, comp := range components {
			out.Row(i)[c] = vecmath.Dot(centered.Row(i), comp)
		}
	}
	return out
}

// powerIteration finds the dominant eigenvector of centeredᵀ·centered,
// orthogonal to the given previous components (deflation by projection).
func powerIteration(centered *vecmath.Matrix, prev [][]float64, rng *vecmath.RNG) []float64 {
	n, d := centered.Rows(), centered.Cols()
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	tmp := make([]float64, n)
	next := make([]float64, d)
	for iter := 0; iter < 200; iter++ {
		// next = Cᵀ(Cv)
		for i := 0; i < n; i++ {
			tmp[i] = vecmath.Dot(centered.Row(i), v)
		}
		vecmath.Zero(next)
		for i := 0; i < n; i++ {
			vecmath.AddScaled(next, tmp[i], centered.Row(i))
		}
		// deflate against previous components
		for _, p := range prev {
			vecmath.AddScaled(next, -vecmath.Dot(next, p), p)
		}
		norm := vecmath.Norm2(next)
		if norm == 0 {
			break
		}
		vecmath.Scale(next, 1/norm)
		delta := vecmath.Dist2(next, v)
		copy(v, next)
		if delta < 1e-10 {
			break
		}
	}
	return append([]float64(nil), v...)
}

// Config controls the exact t-SNE run.
type Config struct {
	// Perplexity is the effective neighbor count; typical 5–50.
	Perplexity float64
	// Iters is the number of gradient iterations.
	Iters int
	// LearnRate is the gradient step size.
	LearnRate float64
	// Seed drives the PCA-free random initialization.
	Seed uint64
}

// DefaultConfig mirrors common t-SNE settings scaled for ~1–2k points.
func DefaultConfig() Config {
	return Config{Perplexity: 20, Iters: 300, LearnRate: 100, Seed: 7}
}

// TSNE embeds the rows of x (n x d) into 2-D with exact t-SNE. It is
// O(n²) per iteration; callers should subsample above a few thousand rows.
func TSNE(x *vecmath.Matrix, cfg Config) (*vecmath.Matrix, error) {
	n := x.Rows()
	if n < 5 {
		return nil, fmt.Errorf("tsne: need at least 5 points, got %d", n)
	}
	if cfg.Perplexity <= 0 || cfg.Perplexity >= float64(n) {
		return nil, fmt.Errorf("tsne: perplexity %v out of range for %d points", cfg.Perplexity, n)
	}
	if cfg.Iters <= 0 {
		return nil, fmt.Errorf("tsne: Iters must be positive")
	}
	rng := vecmath.NewRNG(cfg.Seed)

	p := highDimAffinities(x, cfg.Perplexity)

	// init embedding from a small Gaussian
	y := vecmath.NewMatrix(n, 2)
	y.FillGaussian(rng, 1e-2)
	vel := vecmath.NewMatrix(n, 2)
	grad := vecmath.NewMatrix(n, 2)
	qnum := vecmath.NewMatrix(n, n) // student-t numerators

	for iter := 0; iter < cfg.Iters; iter++ {
		// early exaggeration for the first quarter of the run
		exag := 1.0
		if iter < cfg.Iters/4 {
			exag = 4.0
		}
		momentum := 0.5
		if iter >= cfg.Iters/4 {
			momentum = 0.8
		}

		// q_ij numerators and normalizer
		var sumQ float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := sqDist2D(y.Row(i), y.Row(j))
				num := 1 / (1 + d)
				qnum.Row(i)[j] = num
				qnum.Row(j)[i] = num
				sumQ += 2 * num
			}
		}
		if sumQ == 0 {
			sumQ = 1e-12
		}

		for i := 0; i < n; i++ {
			gi := grad.Row(i)
			gi[0], gi[1] = 0, 0
			yi := y.Row(i)
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				num := qnum.Row(i)[j]
				q := num / sumQ
				coef := 4 * (exag*p.Row(i)[j] - q) * num
				yj := y.Row(j)
				gi[0] += coef * (yi[0] - yj[0])
				gi[1] += coef * (yi[1] - yj[1])
			}
		}
		for i := 0; i < n; i++ {
			vi, gi, yi := vel.Row(i), grad.Row(i), y.Row(i)
			for k := 0; k < 2; k++ {
				vi[k] = momentum*vi[k] - cfg.LearnRate*gi[k]
				yi[k] += vi[k]
			}
		}
	}
	return y, nil
}

// highDimAffinities builds the symmetrized conditional probabilities
// p_ij with per-point bandwidths found by binary search on the target
// perplexity.
func highDimAffinities(x *vecmath.Matrix, perplexity float64) *vecmath.Matrix {
	n := x.Rows()
	d2 := vecmath.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dd := sqDist(x.Row(i), x.Row(j))
			d2.Row(i)[j] = dd
			d2.Row(j)[i] = dd
		}
	}
	target := math.Log(perplexity)
	p := vecmath.NewMatrix(n, n)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		beta := 1.0
		betaMin, betaMax := math.Inf(-1), math.Inf(1)
		for attempt := 0; attempt < 50; attempt++ {
			var sum float64
			for j := 0; j < n; j++ {
				if j == i {
					row[j] = 0
					continue
				}
				row[j] = math.Exp(-d2.Row(i)[j] * beta)
				sum += row[j]
			}
			if sum == 0 {
				sum = 1e-12
			}
			// entropy H = log(sum) + beta * E[d²]
			var ed float64
			for j := 0; j < n; j++ {
				if j != i && row[j] > 0 {
					ed += d2.Row(i)[j] * row[j]
				}
			}
			h := math.Log(sum) + beta*ed/sum
			diff := h - target
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 {
				betaMin = beta
				if math.IsInf(betaMax, 1) {
					beta *= 2
				} else {
					beta = (beta + betaMax) / 2
				}
			} else {
				betaMax = beta
				if math.IsInf(betaMin, -1) {
					beta /= 2
				} else {
					beta = (beta + betaMin) / 2
				}
			}
		}
		var sum float64
		for j := 0; j < n; j++ {
			sum += row[j]
		}
		if sum == 0 {
			sum = 1e-12
		}
		for j := 0; j < n; j++ {
			p.Row(i)[j] = row[j] / sum
		}
	}
	// symmetrize and normalize to sum 1
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (p.Row(i)[j] + p.Row(j)[i]) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			p.Row(i)[j] = v
			p.Row(j)[i] = v
		}
		p.Row(i)[i] = 0
	}
	return p
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func sqDist2D(a, b []float64) float64 {
	d0 := a[0] - b[0]
	d1 := a[1] - b[1]
	return d0*d0 + d1*d1
}
