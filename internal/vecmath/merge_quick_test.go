package vecmath

import (
	"reflect"
	"testing"
	"testing/quick"
)

// Property: streaming an input through per-shard bounded heaps and merging
// the retained sets into one final heap yields exactly the ranking of a
// single serial stream — for arbitrary partitions, k, input sizes and
// heavy tie collisions (scores are quantized so equal scores are common
// and the lower-ID tie-break is exercised constantly).
func TestQuickPartitionedMergeMatchesSerial(t *testing.T) {
	f := func(seed uint16, sizeRaw, shardRaw, kRaw, quantRaw uint8) bool {
		rng := NewRNG(uint64(seed) + 3)
		n := 1 + int(sizeRaw) + int(shardRaw)
		quant := 1 + int(quantRaw)%12 // few distinct scores -> many ties
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(quant)) / 4
		}
		ks := []int{0, 1, 1 + int(kRaw)%n, n, n + 3}
		shardSize := 1 + int(shardRaw)%n
		for _, k := range ks {
			serial := NewTopKStream(k)
			for id, s := range scores {
				serial.Push(id, s)
			}
			final := NewTopKStream(k)
			part := NewTopKStream(k)
			for lo := 0; lo < n; lo += shardSize {
				hi := lo + shardSize
				if hi > n {
					hi = n
				}
				part.Reset(k)
				for id := lo; id < hi; id++ {
					part.Push(id, scores[id])
				}
				final.Merge(part)
			}
			if !reflect.DeepEqual(serial.Ranked(), final.Ranked()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
