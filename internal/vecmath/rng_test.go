package vecmath

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream tracked parent %d/100 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(5)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(21)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestZipfHeavyHead(t *testing.T) {
	r := NewRNG(23)
	z := NewZipf(r, 1000, 1.0)
	const draws = 50000
	counts := make([]int, 1000)
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	// rank 0 must be drawn far more often than rank 500
	if counts[0] < 20*counts[500]+1 {
		t.Fatalf("zipf head not heavy: c0=%d c500=%d", counts[0], counts[500])
	}
	// monotone-ish decay over the head
	if counts[0] < counts[10] {
		t.Fatalf("zipf not decaying: c0=%d c10=%d", counts[0], counts[10])
	}
}

func TestZipfCoversRange(t *testing.T) {
	r := NewRNG(29)
	z := NewZipf(r, 5, 0.5)
	seen := make(map[int]bool)
	for i := 0; i < 5000; i++ {
		v := z.Draw()
		if v < 0 || v >= 5 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("zipf with s=0.5 should reach all outcomes, saw %d", len(seen))
	}
}
