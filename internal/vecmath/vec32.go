package vecmath

import "fmt"

// float32 counterparts of the scoring kernels. The serving data path
// sweeps compact float32 slabs (half the bytes of the float64 slabs, so
// half the memory bandwidth per catalog scan) and recovers exactness by
// rescoring a small candidate set with the float64 kernels; see
// internal/infer. Each kernel accumulates in the exact same fixed
// pairwise order as its float64 twin, so a float32 score is bitwise
// identical whether computed item-at-a-time (DotBias32) or in a blocked
// sweep (MatVecBias32) — the property the sharded candidate collection
// relies on. Training stays entirely on the float64 kernels.

// Dot32 returns the inner product of a and b, accumulated in float32.
// It panics if the lengths differ.
func Dot32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: Dot32 length mismatch %d vs %d", len(a), len(b)))
	}
	var s float32
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// DotBias32 returns bias + ⟨a, b⟩ accumulated in float32, in the same
// four-way pairwise-tree order as a MatVecBias32 row: each group of four
// products reduces as (p0+p1) + (p2+p3) before joining the accumulator,
// then a two-way and a single tail. The wider groups buy instruction-level
// parallelism in the blocked sweep; what matters for correctness is only
// that both f32 kernels share the order exactly, keeping scores bitwise
// identical however they are computed. It panics if the lengths differ.
func DotBias32(a, b []float32, bias float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: DotBias32 length mismatch %d vs %d", len(a), len(b)))
	}
	s := bias
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += (a[i]*b[i] + a[i+1]*b[i+1]) + (a[i+2]*b[i+2] + a[i+3]*b[i+3])
	}
	if i+2 <= len(a) {
		s += a[i]*b[i] + a[i+1]*b[i+1]
		i += 2
	}
	if i < len(a) {
		s += a[i] * b[i]
	}
	return s
}

// MatVecBias32 computes dst[r] = bias[r] + ⟨q, factors[r*k : (r+1)*k]⟩
// over a contiguous row-major float32 slab — the compact-slab twin of
// MatVecBias, with the same 4-row blocking and the same per-row
// four-way pairwise-tree accumulation order as DotBias32, so blocked and
// row-at-a-time scores stay bitwise identical. It panics when the slab
// size is not len(dst)*k or the bias length differs from dst.
func MatVecBias32(factors []float32, k int, bias, q, dst []float32) {
	rows := len(dst)
	if len(factors) != rows*k {
		panic(fmt.Sprintf("vecmath: MatVecBias32 slab %d != rows %d * k %d", len(factors), rows, k))
	}
	if len(bias) != rows {
		panic(fmt.Sprintf("vecmath: MatVecBias32 bias length %d != rows %d", len(bias), rows))
	}
	if len(q) != k {
		panic(fmt.Sprintf("vecmath: MatVecBias32 query length %d != k %d", len(q), k))
	}
	r := 0
	for ; r+4 <= rows; r += 4 {
		r0 := factors[r*k:][:len(q)]
		r1 := factors[(r+1)*k:][:len(q)]
		r2 := factors[(r+2)*k:][:len(q)]
		r3 := factors[(r+3)*k:][:len(q)]
		s0, s1, s2, s3 := bias[r], bias[r+1], bias[r+2], bias[r+3]
		i := 0
		for ; i+4 <= len(q); i += 4 {
			qa, qb, qc, qd := q[i], q[i+1], q[i+2], q[i+3]
			s0 += (qa*r0[i] + qb*r0[i+1]) + (qc*r0[i+2] + qd*r0[i+3])
			s1 += (qa*r1[i] + qb*r1[i+1]) + (qc*r1[i+2] + qd*r1[i+3])
			s2 += (qa*r2[i] + qb*r2[i+1]) + (qc*r2[i+2] + qd*r2[i+3])
			s3 += (qa*r3[i] + qb*r3[i+1]) + (qc*r3[i+2] + qd*r3[i+3])
		}
		if i+2 <= len(q) {
			qa, qb := q[i], q[i+1]
			s0 += qa*r0[i] + qb*r0[i+1]
			s1 += qa*r1[i] + qb*r1[i+1]
			s2 += qa*r2[i] + qb*r2[i+1]
			s3 += qa*r3[i] + qb*r3[i+1]
			i += 2
		}
		if i < len(q) {
			qa := q[i]
			s0 += qa * r0[i]
			s1 += qa * r1[i]
			s2 += qa * r2[i]
			s3 += qa * r3[i]
		}
		dst[r], dst[r+1], dst[r+2], dst[r+3] = s0, s1, s2, s3
	}
	for ; r < rows; r++ {
		dst[r] = DotBias32(q, factors[r*k:(r+1)*k], bias[r])
	}
}

// MatVecBias32Multi is the cache-blocked multi-query form of
// MatVecBias32: each 4-row block of the slab is scored against every
// query of the group before the sweep advances, so a group of B queries
// reads the slab bytes once instead of B times — the bandwidth win of the
// batched serving sweep. dsts[qi][r] receives query qi's score of row r.
// The per-(row, query) inner loop is MatVecBias32's statement for
// statement (the same four-way pairwise-tree order), so every score is
// bitwise identical to the single-query kernels'. It panics on any shape
// mismatch, including a query group larger than the dst group.
func MatVecBias32Multi(factors []float32, k int, bias []float32, qs [][]float32, dsts [][]float32) {
	rows := len(bias)
	if len(factors) != rows*k {
		panic(fmt.Sprintf("vecmath: MatVecBias32Multi slab %d != rows %d * k %d", len(factors), rows, k))
	}
	if len(qs) > len(dsts) {
		panic(fmt.Sprintf("vecmath: MatVecBias32Multi %d queries but %d dst buffers", len(qs), len(dsts)))
	}
	r := 0
	for ; r+4 <= rows; r += 4 {
		for qi, q := range qs {
			if len(q) != k {
				panic(fmt.Sprintf("vecmath: MatVecBias32Multi query %d length %d != k %d", qi, len(q), k))
			}
			r0 := factors[r*k:][:len(q)]
			r1 := factors[(r+1)*k:][:len(q)]
			r2 := factors[(r+2)*k:][:len(q)]
			r3 := factors[(r+3)*k:][:len(q)]
			s0, s1, s2, s3 := bias[r], bias[r+1], bias[r+2], bias[r+3]
			i := 0
			for ; i+4 <= len(q); i += 4 {
				qa, qb, qc, qd := q[i], q[i+1], q[i+2], q[i+3]
				s0 += (qa*r0[i] + qb*r0[i+1]) + (qc*r0[i+2] + qd*r0[i+3])
				s1 += (qa*r1[i] + qb*r1[i+1]) + (qc*r1[i+2] + qd*r1[i+3])
				s2 += (qa*r2[i] + qb*r2[i+1]) + (qc*r2[i+2] + qd*r2[i+3])
				s3 += (qa*r3[i] + qb*r3[i+1]) + (qc*r3[i+2] + qd*r3[i+3])
			}
			if i+2 <= len(q) {
				qa, qb := q[i], q[i+1]
				s0 += qa*r0[i] + qb*r0[i+1]
				s1 += qa*r1[i] + qb*r1[i+1]
				s2 += qa*r2[i] + qb*r2[i+1]
				s3 += qa*r3[i] + qb*r3[i+1]
				i += 2
			}
			if i < len(q) {
				qa := q[i]
				s0 += qa * r0[i]
				s1 += qa * r1[i]
				s2 += qa * r2[i]
				s3 += qa * r3[i]
			}
			dst := dsts[qi]
			dst[r], dst[r+1], dst[r+2], dst[r+3] = s0, s1, s2, s3
		}
	}
	for ; r < rows; r++ {
		row := factors[r*k : (r+1)*k]
		for qi, q := range qs {
			dsts[qi][r] = DotBias32(q, row, bias[r])
		}
	}
}

// Downconvert32 fills dst with src rounded to float32 (round to nearest
// even, the hardware conversion). It panics if the lengths differ.
func Downconvert32(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vecmath: Downconvert32 length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// Matrix32 is a dense compact row-major float32 matrix — the storage of
// the scoring index's compact slabs. Unlike Matrix it carries no row
// padding: slabs are immutable after construction and consumed by
// streaming sweeps, where padding would waste exactly the bandwidth the
// type exists to save.
type Matrix32 struct {
	rows, cols int
	data       []float32
}

// NewMatrix32 allocates a rows x cols float32 matrix of zeros.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vecmath: NewMatrix32 negative dimension %dx%d", rows, cols))
	}
	return &Matrix32{rows: rows, cols: cols, data: make([]float32, rows*cols)}
}

// Matrix32FromData wraps an externally owned compact row-major slice as a
// rows x cols matrix view without copying (the mmap'd-slab counterpart of
// NewMatrix32). It panics if the slice length is not rows*cols.
func Matrix32FromData(rows, cols int, data []float32) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vecmath: Matrix32FromData negative dimension %dx%d", rows, cols))
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("vecmath: Matrix32FromData length %d, want %d (%dx%d)", len(data), rows*cols, rows, cols))
	}
	return &Matrix32{rows: rows, cols: cols, data: data}
}

// Rows returns the number of rows.
func (m *Matrix32) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix32) Cols() int { return m.cols }

// Row returns row i as a capacity-clipped slice view.
func (m *Matrix32) Row(i int) []float32 {
	start := i * m.cols
	return m.data[start : start+m.cols : start+m.cols]
}

// Data returns the flat row-major backing slice.
func (m *Matrix32) Data() []float32 { return m.data }

// SetFrom rounds a compact row-major float64 slice into the matrix. It
// panics if the length is not Rows*Cols — checked here explicitly so the
// message names the matrix shape, not Downconvert32's view of it.
func (m *Matrix32) SetFrom(src []float64) {
	if len(src) != m.rows*m.cols {
		panic(fmt.Sprintf("vecmath: Matrix32.SetFrom length %d, want %d (%dx%d)", len(src), m.rows*m.cols, m.rows, m.cols))
	}
	Downconvert32(m.data, src)
}

// MaxAbs returns the largest absolute value in v (0 for an empty slice).
// The scoring index uses it to bound slab magnitudes for the certified
// float32 error bound.
func MaxAbs(v []float64) float64 {
	var max float64
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		if x > max {
			max = x
		}
	}
	return max
}
