package vecmath

import "fmt"

// float32 counterparts of the scoring kernels. The serving data path
// sweeps compact float32 slabs (half the bytes of the float64 slabs, so
// half the memory bandwidth per catalog scan) and recovers exactness by
// rescoring a small candidate set with the float64 kernels; see
// internal/infer. Training stays entirely on the float64 kernels.
//
// Every f32 kernel accumulates in one fixed, lane-friendly order — the
// 8-lane tree documented on DotBias32 — so a score is bitwise identical
// whether computed item-at-a-time, in a blocked sweep, in the blocked
// multi-query sweep, by the pure-Go reference, or by the AVX2/NEON
// assembly bodies that vectorize the 8-lane head verbatim (one rounded
// multiply and one rounded add per element; see kernels.go for the
// dispatch rules). Products are forced through an explicit float32
// conversion so no compiler may fuse them into an FMA: the reference
// kernels therefore produce the same bits on every architecture, and the
// asm arms are checked against them by the differential suite.

// Dot32 returns the inner product of a and b, accumulated sequentially
// in float32. It is not order-pinned to the sweep kernels — nothing
// compares its result bitwise against theirs — and panics if the lengths
// differ.
func Dot32(a, b []float32) float32 {
	if len(a) != len(b) {
		panicLen("Dot32", len(a), len(b))
	}
	var s float32
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// DotBias32 returns bias + ⟨a, b⟩ accumulated in the fixed 8-lane tree
// order every f32 kernel shares:
//
//	n8 := len(a) &^ 7
//	l[j] += fl32(a[i+j] · b[i+j])   for i = 0, 8, …, n8−8 and j = 0..7
//	t := ((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))
//	s := bias + t                    (skipped entirely when n8 == 0)
//	s += fl32(a[i] · b[i])           for i = n8 .. len(a)−1
//
// with every multiply and add individually rounded (fl32 is an explicit
// float32 conversion, which forbids FMA fusion). The eight independent
// lanes are what the vector units want — AVX2 holds them in one YMM
// register, NEON in two quadword registers — while the fixed reduction
// tree keeps the result one specific bit pattern that the blocked sweep,
// the per-row gather and both dispatch arms all reproduce exactly. It
// panics if the lengths differ.
func DotBias32(a, b []float32, bias float32) float32 {
	if len(a) != len(b) {
		panicLen("DotBias32", len(a), len(b))
	}
	return dotBias32(a, b, bias)
}

// dotBias32 is DotBias32 without the length check, for kernels that
// validated shapes up front.
func dotBias32(a, b []float32, bias float32) float32 {
	s := bias
	i := 0
	if n8 := len(a) &^ 7; n8 > 0 {
		if simdActive {
			s += dotLanes32SIMD(&a[0], &b[0], n8)
		} else {
			s += dotLanes32Ref(a, b, n8)
		}
		i = n8
	}
	for ; i < len(a); i++ {
		s += float32(a[i] * b[i])
	}
	return s
}

// DotBias32Ref is the pure-Go reference implementation of DotBias32,
// exported so benchmarks can pit the dispatch arms against each other on
// any machine. Its result is bitwise identical to DotBias32's for every
// input. It panics if the lengths differ.
func DotBias32Ref(a, b []float32, bias float32) float32 {
	if len(a) != len(b) {
		panicLen("DotBias32Ref", len(a), len(b))
	}
	s := bias
	i := 0
	if n8 := len(a) &^ 7; n8 > 0 {
		s += dotLanes32Ref(a, b, n8)
		i = n8
	}
	for ; i < len(a); i++ {
		s += float32(a[i] * b[i])
	}
	return s
}

// dotLanes32Ref is the pure-Go reference for the 8-lane head: the
// semantic definition the asm kernels must match bit for bit. n must be
// a positive multiple of 8, n ≤ len(a) = len(b).
func dotLanes32Ref(a, b []float32, n int) float32 {
	var l0, l1, l2, l3, l4, l5, l6, l7 float32
	for i := 0; i < n; i += 8 {
		x := a[i : i+8 : i+8]
		y := b[i : i+8 : i+8]
		l0 += float32(x[0] * y[0])
		l1 += float32(x[1] * y[1])
		l2 += float32(x[2] * y[2])
		l3 += float32(x[3] * y[3])
		l4 += float32(x[4] * y[4])
		l5 += float32(x[5] * y[5])
		l6 += float32(x[6] * y[6])
		l7 += float32(x[7] * y[7])
	}
	return ((l0 + l1) + (l2 + l3)) + ((l4 + l5) + (l6 + l7))
}

// MatVecBias32 computes dst[r] = bias[r] + ⟨q, factors[r*k : (r+1)*k]⟩
// over a contiguous row-major float32 slab — the compact-slab twin of
// MatVecBias. Rows are processed four at a time with the query loads
// shared across the block, each row accumulating in DotBias32's fixed
// 8-lane tree, so blocked and row-at-a-time scores stay bitwise
// identical. It panics when the slab size is not len(dst)*k or the bias
// length differs from dst.
func MatVecBias32(factors []float32, k int, bias, q, dst []float32) {
	rows := len(dst)
	if len(factors) != rows*k {
		panicSlab("MatVecBias32", len(factors), rows, k)
	}
	if len(bias) != rows {
		panicLen("MatVecBias32 bias", len(bias), rows)
	}
	if len(q) != k {
		panicQueryLen("MatVecBias32", len(q), k)
	}
	n8 := k &^ 7
	r := 0
	if simdActive && n8 > 0 {
		var out [4]float32
		for ; r+4 <= rows; r += 4 {
			dot4Lanes32SIMD(&factors[r*k], k, &q[0], n8, &out)
			s0 := bias[r] + out[0]
			s1 := bias[r+1] + out[1]
			s2 := bias[r+2] + out[2]
			s3 := bias[r+3] + out[3]
			if n8 < k {
				r0 := factors[r*k:][:k]
				r1 := factors[(r+1)*k:][:k]
				r2 := factors[(r+2)*k:][:k]
				r3 := factors[(r+3)*k:][:k]
				for i := n8; i < k; i++ {
					qa := q[i]
					s0 += float32(qa * r0[i])
					s1 += float32(qa * r1[i])
					s2 += float32(qa * r2[i])
					s3 += float32(qa * r3[i])
				}
			}
			dst[r], dst[r+1], dst[r+2], dst[r+3] = s0, s1, s2, s3
		}
	}
	for ; r < rows; r++ {
		dst[r] = dotBias32(q, factors[r*k:(r+1)*k], bias[r])
	}
}

// MatVecBias32Multi is the cache-blocked multi-query form of
// MatVecBias32: each 4-row block of the slab is scored against every
// query of the group before the sweep advances, so a group of B queries
// reads the slab bytes once instead of B times — the bandwidth win of the
// batched serving sweep. dsts[qi][r] receives query qi's score of row r.
// Every (row, query) score accumulates in DotBias32's fixed 8-lane tree,
// so it is bitwise identical to the single-query kernels'. It panics on
// any shape mismatch, including a query group larger than the dst group.
func MatVecBias32Multi(factors []float32, k int, bias []float32, qs [][]float32, dsts [][]float32) {
	rows := len(bias)
	if len(factors) != rows*k {
		panicSlab("MatVecBias32Multi", len(factors), rows, k)
	}
	if len(qs) > len(dsts) {
		panic(fmt.Sprintf("vecmath: MatVecBias32Multi %d queries but %d dst buffers", len(qs), len(dsts)))
	}
	for qi, q := range qs {
		if len(q) != k {
			panic(fmt.Sprintf("vecmath: MatVecBias32Multi query %d length %d != k %d", qi, len(q), k))
		}
	}
	n8 := k &^ 7
	r := 0
	if simdActive && n8 > 0 {
		var out [4]float32
		for ; r+4 <= rows; r += 4 {
			for qi, q := range qs {
				dot4Lanes32SIMD(&factors[r*k], k, &q[0], n8, &out)
				s0 := bias[r] + out[0]
				s1 := bias[r+1] + out[1]
				s2 := bias[r+2] + out[2]
				s3 := bias[r+3] + out[3]
				if n8 < k {
					r0 := factors[r*k:][:k]
					r1 := factors[(r+1)*k:][:k]
					r2 := factors[(r+2)*k:][:k]
					r3 := factors[(r+3)*k:][:k]
					for i := n8; i < k; i++ {
						qa := q[i]
						s0 += float32(qa * r0[i])
						s1 += float32(qa * r1[i])
						s2 += float32(qa * r2[i])
						s3 += float32(qa * r3[i])
					}
				}
				dst := dsts[qi]
				dst[r], dst[r+1], dst[r+2], dst[r+3] = s0, s1, s2, s3
			}
		}
	} else {
		for ; r+4 <= rows; r += 4 {
			for qi, q := range qs {
				dst := dsts[qi]
				dst[r] = dotBias32(q, factors[r*k:][:k], bias[r])
				dst[r+1] = dotBias32(q, factors[(r+1)*k:][:k], bias[r+1])
				dst[r+2] = dotBias32(q, factors[(r+2)*k:][:k], bias[r+2])
				dst[r+3] = dotBias32(q, factors[(r+3)*k:][:k], bias[r+3])
			}
		}
	}
	for ; r < rows; r++ {
		row := factors[r*k : (r+1)*k]
		for qi, q := range qs {
			dsts[qi][r] = dotBias32(q, row, bias[r])
		}
	}
}

// Downconvert32 fills dst with src rounded to float32 (round to nearest
// even, the hardware conversion). It panics if the lengths differ.
func Downconvert32(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panicLen("Downconvert32", len(dst), len(src))
	}
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// Matrix32 is a dense compact row-major float32 matrix — the storage of
// the scoring index's compact slabs. Unlike Matrix it carries no row
// padding: slabs are immutable after construction and consumed by
// streaming sweeps, where padding would waste exactly the bandwidth the
// type exists to save.
type Matrix32 struct {
	rows, cols int
	data       []float32
}

// NewMatrix32 allocates a rows x cols float32 matrix of zeros.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vecmath: NewMatrix32 negative dimension %dx%d", rows, cols))
	}
	return &Matrix32{rows: rows, cols: cols, data: make([]float32, rows*cols)}
}

// Matrix32FromData wraps an externally owned compact row-major slice as a
// rows x cols matrix view without copying (the mmap'd-slab counterpart of
// NewMatrix32). It panics if the slice length is not rows*cols.
func Matrix32FromData(rows, cols int, data []float32) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vecmath: Matrix32FromData negative dimension %dx%d", rows, cols))
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("vecmath: Matrix32FromData length %d, want %d (%dx%d)", len(data), rows*cols, rows, cols))
	}
	return &Matrix32{rows: rows, cols: cols, data: data}
}

// Rows returns the number of rows.
func (m *Matrix32) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix32) Cols() int { return m.cols }

// Row returns row i as a capacity-clipped slice view.
func (m *Matrix32) Row(i int) []float32 {
	start := i * m.cols
	return m.data[start : start+m.cols : start+m.cols]
}

// Data returns the flat row-major backing slice.
func (m *Matrix32) Data() []float32 { return m.data }

// SetFrom rounds a compact row-major float64 slice into the matrix. It
// panics if the length is not Rows*Cols — checked here explicitly so the
// message names the matrix shape, not Downconvert32's view of it.
func (m *Matrix32) SetFrom(src []float64) {
	if len(src) != m.rows*m.cols {
		panic(fmt.Sprintf("vecmath: Matrix32.SetFrom length %d, want %d (%dx%d)", len(src), m.rows*m.cols, m.rows, m.cols))
	}
	Downconvert32(m.data, src)
}

// MaxAbs returns the largest absolute value in v (0 for an empty slice).
// The scoring index uses it to bound slab magnitudes for the certified
// float32 error bound.
func MaxAbs(v []float64) float64 {
	var max float64
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		if x > max {
			max = x
		}
	}
	return max
}
