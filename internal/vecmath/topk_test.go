package vecmath

import (
	"sort"
	"testing"
)

func TestTopKBasic(t *testing.T) {
	items := []Scored{{0, 1.0}, {1, 3.0}, {2, 2.0}, {3, 5.0}, {4, 4.0}}
	got := TopK(items, 3)
	want := []int{3, 4, 1}
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, w := range want {
		if got[i].ID != w {
			t.Fatalf("TopK order = %v, want ids %v", got, want)
		}
	}
}

func TestTopKZeroAndOversized(t *testing.T) {
	items := []Scored{{0, 1}, {1, 2}}
	if got := TopK(items, 0); got != nil {
		t.Fatalf("TopK k=0 = %v, want nil", got)
	}
	got := TopK(items, 10)
	if len(got) != 2 || got[0].ID != 1 {
		t.Fatalf("TopK oversized = %v", got)
	}
}

func TestTopKDoesNotMutateInput(t *testing.T) {
	items := []Scored{{0, 3}, {1, 1}, {2, 2}}
	TopK(items, 2)
	if items[0].ID != 0 || items[1].ID != 1 || items[2].ID != 2 {
		t.Fatalf("input mutated: %v", items)
	}
}

func TestTopKTieBreakDeterministic(t *testing.T) {
	items := []Scored{{5, 1.0}, {2, 1.0}, {9, 1.0}, {1, 1.0}}
	got := TopK(items, 2)
	if got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("tie-break should prefer lower id: %v", got)
	}
}

func TestTopKMatchesFullSortProperty(t *testing.T) {
	rng := NewRNG(31)
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(n)
		items := make([]Scored, n)
		for i := range items {
			// small integer scores force plenty of ties
			items[i] = Scored{ID: i, Score: float64(rng.Intn(10))}
		}
		got := TopK(items, k)
		full := make([]Scored, n)
		copy(full, items)
		sort.Slice(full, func(i, j int) bool { return scoredLess(full[j], full[i]) })
		for i := 0; i < k; i++ {
			if got[i] != full[i] {
				t.Fatalf("trial %d: TopK[%d] = %v, full sort %v", trial, i, got[i], full[i])
			}
		}
	}
}

func TestRankOf(t *testing.T) {
	scores := []float64{0.5, 0.9, 0.1, 0.7}
	cases := map[int]int{1: 1, 3: 2, 0: 3, 2: 4}
	for target, want := range cases {
		if got := RankOf(scores, target); got != want {
			t.Fatalf("RankOf(%d) = %d, want %d", target, got, want)
		}
	}
}

func TestRankOfTies(t *testing.T) {
	scores := []float64{1, 1, 1}
	if got := RankOf(scores, 0); got != 1 {
		t.Fatalf("tie rank for id 0 = %d, want 1", got)
	}
	if got := RankOf(scores, 2); got != 3 {
		t.Fatalf("tie rank for id 2 = %d, want 3", got)
	}
}
