package vecmath

import (
	"math"
	"testing"
)

// The f32 kernels must agree bitwise between the row-at-a-time and
// blocked forms for every row count around the 4-row blocking boundary,
// and must track the f64 kernels within float32 round-off.
func TestMatVecBias32MatchesDotBias32(t *testing.T) {
	rng := NewRNG(42)
	for _, rows := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 64, 65} {
		for _, k := range []int{1, 2, 3, 5, 8, 20} {
			factors := make([]float32, rows*k)
			bias := make([]float32, rows)
			q := make([]float32, k)
			for i := range factors {
				factors[i] = float32(rng.NormFloat64())
			}
			for i := range bias {
				bias[i] = float32(rng.NormFloat64())
			}
			for i := range q {
				q[i] = float32(rng.NormFloat64())
			}
			dst := make([]float32, rows)
			MatVecBias32(factors, k, bias, q, dst)
			for r := 0; r < rows; r++ {
				want := DotBias32(q, factors[r*k:(r+1)*k], bias[r])
				if dst[r] != want {
					t.Fatalf("rows=%d k=%d row %d: blocked %v != rowwise %v", rows, k, r, dst[r], want)
				}
			}
		}
	}
}

func TestDotBias32TracksFloat64(t *testing.T) {
	rng := NewRNG(7)
	const k = 20
	a64 := make([]float64, k)
	b64 := make([]float64, k)
	a32 := make([]float32, k)
	b32 := make([]float32, k)
	for i := range a64 {
		a64[i] = rng.NormFloat64()
		b64[i] = rng.NormFloat64()
	}
	Downconvert32(a32, a64)
	Downconvert32(b32, b64)
	bias := 0.75
	got := float64(DotBias32(a32, b32, float32(bias)))
	want := DotBias(a64, b64, bias)
	// generous bound: (k+4) rounding steps at f32 precision on O(1) terms
	var sumAbs float64
	for i := range a64 {
		sumAbs += math.Abs(a64[i] * b64[i])
	}
	limit := float64(k+4) / (1 << 23) * (sumAbs + math.Abs(bias))
	if d := math.Abs(got - want); d > limit {
		t.Fatalf("f32 dot drifted %v from f64 (limit %v)", d, limit)
	}
}

func TestDot32AndPanics(t *testing.T) {
	if got := Dot32([]float32{1, 2, 3}, []float32{4, 5, 6}); got != 32 {
		t.Fatalf("Dot32 = %v, want 32", got)
	}
	for name, fn := range map[string]func(){
		"Dot32":     func() { Dot32([]float32{1}, []float32{1, 2}) },
		"DotBias32": func() { DotBias32([]float32{1}, []float32{1, 2}, 0) },
		"MatVecBias32": func() {
			MatVecBias32(make([]float32, 3), 2, make([]float32, 1), make([]float32, 2), make([]float32, 1))
		},
		"Downconvert32": func() { Downconvert32(make([]float32, 1), make([]float64, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestMatrix32(t *testing.T) {
	m := NewMatrix32(3, 2)
	if m.Rows() != 3 || m.Cols() != 2 || len(m.Data()) != 6 {
		t.Fatalf("bad shape %dx%d data %d", m.Rows(), m.Cols(), len(m.Data()))
	}
	m.SetFrom([]float64{1, 2, 3, 4, 5, 6})
	if r := m.Row(1); r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	// Row views must be capacity-clipped: an append cannot bleed into the
	// next row.
	r := m.Row(0)
	_ = append(r, 99)
	if m.Row(1)[0] != 3 {
		t.Fatal("append through a Row view corrupted the next row")
	}
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs(nil); got != 0 {
		t.Fatalf("MaxAbs(nil) = %v", got)
	}
	if got := MaxAbs([]float64{-3, 2, 0.5}); got != 3 {
		t.Fatalf("MaxAbs = %v, want 3", got)
	}
}
