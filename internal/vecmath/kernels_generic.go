//go:build purego || (!amd64 && !arm64)

package vecmath

import "runtime"

// Generic dispatch arm: a `purego` build, or an architecture without asm
// kernels. simdActive is a constant false so the compiler folds every
// dispatch branch away and the wrappers compile to exactly the reference
// kernels.

const (
	simdActive = false
	simdImpl   = implGeneric
)

func simdFeatures() []string { return nil }

func simdDisabled() string {
	// this file only builds on amd64/arm64 under the purego tag; on any
	// other architecture there is no SIMD arm to disable
	if runtime.GOARCH == "amd64" || runtime.GOARCH == "arm64" {
		return "purego build"
	}
	return ""
}

// Unreachable stubs: the wrappers reference the SIMD entry points behind
// `if simdActive`, which is constant-false here, so these bodies are
// eliminated — they exist only to satisfy the type checker.

func dotI8SIMD(a, b *int8, n int) int32 { panic("vecmath: SIMD kernel on generic build") }

func dot4I8SIMD(f *int8, stride int, u *int8, n int, out *[4]int32) {
	panic("vecmath: SIMD kernel on generic build")
}

func dotLanes32SIMD(a, b *float32, n int) float32 {
	panic("vecmath: SIMD kernel on generic build")
}

func dot4Lanes32SIMD(f *float32, stride int, q *float32, n int, out *[4]float32) {
	panic("vecmath: SIMD kernel on generic build")
}
