package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDotBasic(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotEmpty(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestDotSymmetryProperty(t *testing.T) {
	f := func(raw []float64) bool {
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		x, y := Dot(a, b), Dot(b, a)
		// extreme quick-generated inputs can overflow to NaN; NaN==NaN is
		// still "symmetric" for our purposes
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDotLinearityProperty(t *testing.T) {
	rng := NewRNG(7)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(16)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			c[i] = rng.NormFloat64()
		}
		alpha := rng.NormFloat64()
		// <a, alpha*b + c> == alpha*<a,b> + <a,c>
		bc := make([]float64, n)
		copy(bc, c)
		AddScaled(bc, alpha, b)
		lhs := Dot(a, bc)
		rhs := alpha*Dot(a, b) + Dot(a, c)
		if !almostEqual(lhs, rhs, 1e-9*(1+math.Abs(lhs))) {
			t.Fatalf("linearity violated: %v vs %v", lhs, rhs)
		}
	}
}

func TestAddScaled(t *testing.T) {
	dst := []float64{1, 1, 1}
	AddScaled(dst, 2, []float64{1, 2, 3})
	want := []float64{3, 5, 7}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AddScaled = %v, want %v", dst, want)
		}
	}
}

func TestAddSubInverseProperty(t *testing.T) {
	rng := NewRNG(11)
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(32)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		orig := make([]float64, n)
		copy(orig, a)
		Add(a, b)
		Sub(a, b)
		for i := range a {
			if !almostEqual(a[i], orig[i], 1e-12) {
				t.Fatalf("Add then Sub not identity at %d: %v vs %v", i, a[i], orig[i])
			}
		}
	}
}

func TestScaleZero(t *testing.T) {
	v := []float64{1, -2, 3}
	Scale(v, 0)
	for _, x := range v {
		if x != 0 {
			t.Fatalf("Scale(v,0) left %v", v)
		}
	}
	v2 := []float64{1, -2, 3}
	Zero(v2)
	for _, x := range v2 {
		if x != 0 {
			t.Fatalf("Zero left %v", v2)
		}
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := SqNorm2([]float64{3, 4}); !almostEqual(got, 25, 1e-12) {
		t.Fatalf("SqNorm2 = %v, want 25", got)
	}
}

func TestDist2(t *testing.T) {
	if got := Dist2([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Dist2 = %v, want 5", got)
	}
}

func TestSigmoidProperties(t *testing.T) {
	if got := Sigmoid(0); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("Sigmoid(0) = %v, want 0.5", got)
	}
	// symmetry: sigma(-x) = 1 - sigma(x)
	for _, x := range []float64{0.1, 1, 5, 20, 100, 700} {
		if s := Sigmoid(x) + Sigmoid(-x); !almostEqual(s, 1, 1e-12) {
			t.Fatalf("sigmoid symmetry broken at %v: sum = %v", x, s)
		}
	}
	// monotone increasing
	prev := -1.0
	for x := -30.0; x <= 30.0; x += 0.5 {
		s := Sigmoid(x)
		if s < prev {
			t.Fatalf("sigmoid not monotone at %v", x)
		}
		prev = s
	}
	// no overflow at extremes
	if s := Sigmoid(1e9); s != 1 {
		t.Fatalf("Sigmoid(1e9) = %v, want 1", s)
	}
	if s := Sigmoid(-1e9); s != 0 {
		t.Fatalf("Sigmoid(-1e9) = %v, want 0", s)
	}
}

func TestLogSigmoidMatchesLogOfSigmoid(t *testing.T) {
	for _, x := range []float64{-5, -1, -0.1, 0, 0.1, 1, 5} {
		want := math.Log(Sigmoid(x))
		if got := LogSigmoid(x); !almostEqual(got, want, 1e-10) {
			t.Fatalf("LogSigmoid(%v) = %v, want %v", x, got, want)
		}
	}
	// stable for very negative x where Sigmoid underflows
	if got := LogSigmoid(-800); !almostEqual(got, -800, 1e-9) {
		t.Fatalf("LogSigmoid(-800) = %v, want ~-800", got)
	}
}

func TestMatrixRowsAreViews(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Row(1)[2] = 42
	if m.Data()[1*4+2] != 42 {
		t.Fatal("Row must be a view over the backing array")
	}
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Row(0)[0] = 1
	c := m.Clone()
	c.Row(0)[0] = 99
	if m.Row(0)[0] != 1 {
		t.Fatal("Clone must be a deep copy")
	}
	if d := m.MaxAbsDiff(c); !almostEqual(d, 98, 1e-12) {
		t.Fatalf("MaxAbsDiff = %v, want 98", d)
	}
}

func TestMatrixFillGaussianStats(t *testing.T) {
	m := NewMatrix(200, 50)
	m.FillGaussian(NewRNG(3), 0.1)
	var sum, sq float64
	for _, v := range m.Data() {
		sum += v
		sq += v * v
	}
	n := float64(len(m.Data()))
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean) > 0.005 {
		t.Fatalf("gaussian fill mean = %v, want ~0", mean)
	}
	if math.Abs(std-0.1) > 0.01 {
		t.Fatalf("gaussian fill std = %v, want ~0.1", std)
	}
}
