package vecmath

import (
	"math"
	"testing"
)

// The int8 kernels must agree bitwise between the row-at-a-time form, the
// blocked single-query sweep, and the blocked multi-query sweep — across
// the 4-row blocking boundary, the odd-k remainder, the widened fast
// path, and both of its fallbacks (query groups past widenGroup, factor
// dims past widenK).
func TestMatVecBiasI8MatchesDotBiasI8(t *testing.T) {
	rng := NewRNG(42)
	for _, rows := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 64, 65} {
		for _, k := range []int{1, 2, 3, 5, 8, 20, widenK + 7} {
			factors := make([]int8, rows*k)
			scale := make([]float64, rows)
			offset := make([]float64, rows)
			bias := make([]float64, rows)
			for i := range factors {
				factors[i] = int8(rng.Uint64()%255) - 127
			}
			for i := range bias {
				scale[i] = math.Abs(rng.NormFloat64()) * 0.01
				offset[i] = rng.NormFloat64()
				bias[i] = rng.NormFloat64()
			}
			u := make([]int8, k)
			for i := range u {
				u[i] = int8(rng.Uint64()%255) - 127
			}
			qscale := math.Abs(rng.NormFloat64()) * 0.01
			sumQ := rng.NormFloat64()

			dst := make([]float64, rows)
			MatVecBiasI8(factors, k, scale, offset, bias, u, qscale, sumQ, dst)
			for r := 0; r < rows; r++ {
				want := DotBiasI8(u, factors[r*k:(r+1)*k], scale[r], offset[r], bias[r], qscale, sumQ)
				if dst[r] != want {
					t.Fatalf("rows=%d k=%d row %d: blocked %v != rowwise %v", rows, k, r, dst[r], want)
				}
			}

			// group sizes 1 and 3 take the widened fast path (for k within
			// widenK), widenGroup is its boundary, widenGroup+1 forces the
			// integer fallback; all must reproduce dst bitwise
			for _, group := range []int{1, 3, widenGroup, widenGroup + 1} {
				us := make([][]int8, group)
				qscales := make([]float64, group)
				sumQs := make([]float64, group)
				dsts := make([][]float64, group)
				for g := range us {
					us[g] = u
					qscales[g] = qscale
					sumQs[g] = sumQ
					dsts[g] = make([]float64, rows)
				}
				MatVecBiasI8Multi(factors, k, scale, offset, bias, us, qscales, sumQs, dsts)
				for g := range dsts {
					for r := 0; r < rows; r++ {
						if dsts[g][r] != dst[r] {
							t.Fatalf("rows=%d k=%d group=%d query %d row %d: multi %v != single %v",
								rows, k, group, g, r, dsts[g][r], dst[r])
						}
					}
				}
			}
		}
	}
}

// Quantization round-trip property: every encoded value must reconstruct
// within the advertised per-row maxErr, and maxErr itself must stay within
// half a code step (plus float slop) — the bound ErrBoundI8 charges per
// row is the measured one, so both directions matter.
func TestQuantizeRowRoundTrip(t *testing.T) {
	rng := NewRNG(7)
	rows := [][]float64{
		{},
		{3.25},
		{-1, -1, -1, -1},          // constant row: exact through offset
		{0, 0, 0},                 // zero row
		{1e300, -1e300, 5e299},    // huge magnitudes must not overflow
		{1e-300, 2e-300, -3e-300}, // denormal-adjacent scales
	}
	for i := 0; i < 50; i++ {
		n := 1 + int(rng.Uint64()%70)
		row := make([]float64, n)
		mag := math.Pow(10, float64(int(rng.Uint64()%7))-3)
		for j := range row {
			row[j] = rng.NormFloat64() * mag
		}
		rows = append(rows, row)
	}
	for _, src := range rows {
		dst := make([]int8, len(src))
		scale, offset, maxErr := QuantizeRow(dst, src)
		var worst float64
		for j, v := range src {
			if dst[j] > 127 || dst[j] < -127 {
				t.Fatalf("row %v: code %d outside the symmetric range", src, dst[j])
			}
			e := math.Abs(v - (scale*float64(dst[j]) + offset))
			if e > worst {
				worst = e
			}
			if e > maxErr {
				t.Fatalf("row %v elem %d: reconstruction error %v exceeds advertised maxErr %v", src, j, e, maxErr)
			}
		}
		if worst != maxErr {
			t.Fatalf("row %v: advertised maxErr %v is not the measured maximum %v", src, maxErr, worst)
		}
		// half a code step, with slack for the rounded reconstruction
		// expression; degenerate rows advertise whatever error is true
		if scale > 0 {
			limit := scale/2*(1+1e-9) + 1e-12*math.Abs(offset)
			if maxErr > limit {
				t.Fatalf("row %v: maxErr %v exceeds half a code step %v", src, maxErr, limit)
			}
		}
	}
}

// The symmetric query code must reconstruct within the advertised total
// absolute error, report the exact Σq, and encode zero queries exactly.
func TestQuantizeQueryRoundTrip(t *testing.T) {
	rng := NewRNG(11)
	for i := 0; i < 50; i++ {
		n := 1 + int(rng.Uint64()%70)
		q := make([]float64, n)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		dst := make([]int8, n)
		qscale, sumQ, sumAbsErr := QuantizeQuery(dst, q)
		var wantSum, total float64
		for j, v := range q {
			wantSum += v
			total += math.Abs(v - qscale*float64(dst[j]))
		}
		if sumQ != wantSum {
			t.Fatalf("sumQ %v != running float64 sum %v", sumQ, wantSum)
		}
		if total > sumAbsErr*(1+1e-12)+1e-300 {
			t.Fatalf("measured total error %v exceeds advertised %v", total, sumAbsErr)
		}
		if limit := float64(n) * qscale / 2 * (1 + 1e-9); sumAbsErr > limit {
			t.Fatalf("sumAbsErr %v exceeds n·qscale/2 = %v", sumAbsErr, limit)
		}
	}
	dst := make([]int8, 3)
	if qscale, sumQ, sumAbsErr := QuantizeQuery(dst, []float64{0, 0, 0}); qscale != 0 || sumQ != 0 || sumAbsErr != 0 {
		t.Fatalf("zero query encoded as %v/%v/%v, want exact zeros", qscale, sumQ, sumAbsErr)
	}
}

// DotI8 is exact int32 arithmetic; spot-check values and the documented
// MaxDotLenI8 worst case staying inside int32.
func TestDotI8(t *testing.T) {
	if got := DotI8([]int8{1, -2, 3}, []int8{4, 5, -6}); got != 4-10-18 {
		t.Fatalf("DotI8 = %d, want %d", got, 4-10-18)
	}
	if worst := int64(MaxDotLenI8) * 127 * 127; worst > math.MaxInt32 {
		t.Fatalf("MaxDotLenI8 worst case %d overflows int32", worst)
	}
	a := make([]int8, MaxDotLenI8)
	for i := range a {
		a[i] = 127
	}
	if got := DotI8(a, a); int64(got) != int64(MaxDotLenI8)*127*127 {
		t.Fatalf("saturated dot = %d, want %d", got, int64(MaxDotLenI8)*127*127)
	}
}

// Every int8 entry point must reject shape mismatches loudly — the
// quantized slabs are byte-dense, so a silent mis-stride would read
// garbage scores, not crash.
func TestI8Panics(t *testing.T) {
	for name, fn := range map[string]func(){
		"DotI8":         func() { DotI8([]int8{1}, []int8{1, 2}) },
		"DotBiasI8":     func() { DotBiasI8([]int8{1}, []int8{1, 2}, 1, 0, 0, 1, 0) },
		"QuantizeRow":   func() { QuantizeRow(make([]int8, 1), make([]float64, 2)) },
		"QuantizeQuery": func() { QuantizeQuery(make([]int8, 1), make([]float64, 2)) },
		"MatVecBiasI8 slab": func() {
			MatVecBiasI8(make([]int8, 3), 2, make([]float64, 2), make([]float64, 2), make([]float64, 2), make([]int8, 2), 1, 0, make([]float64, 2))
		},
		"MatVecBiasI8 params": func() {
			MatVecBiasI8(make([]int8, 4), 2, make([]float64, 1), make([]float64, 2), make([]float64, 2), make([]int8, 2), 1, 0, make([]float64, 2))
		},
		"MatVecBiasI8 query": func() {
			MatVecBiasI8(make([]int8, 4), 2, make([]float64, 2), make([]float64, 2), make([]float64, 2), make([]int8, 3), 1, 0, make([]float64, 2))
		},
		"MatVecBiasI8Multi slab": func() {
			MatVecBiasI8Multi(make([]int8, 3), 2, make([]float64, 2), make([]float64, 2), make([]float64, 2),
				[][]int8{make([]int8, 2)}, []float64{1}, []float64{0}, [][]float64{make([]float64, 2)})
		},
		"MatVecBiasI8Multi group": func() {
			MatVecBiasI8Multi(make([]int8, 4), 2, make([]float64, 2), make([]float64, 2), make([]float64, 2),
				[][]int8{make([]int8, 2)}, []float64{1, 2}, []float64{0}, [][]float64{make([]float64, 2)})
		},
		"MatVecBiasI8Multi query": func() {
			MatVecBiasI8Multi(make([]int8, 4), 2, make([]float64, 2), make([]float64, 2), make([]float64, 2),
				[][]int8{make([]int8, 3)}, []float64{1}, []float64{0}, [][]float64{make([]float64, 2)})
		},
		"NewMatrixI8":         func() { NewMatrixI8(-1, 2) },
		"QuantizeFrom slab":   func() { NewMatrixI8(2, 2).QuantizeFrom(make([]float64, 3), make([]float64, 2), make([]float64, 2)) },
		"QuantizeFrom params": func() { NewMatrixI8(2, 2).QuantizeFrom(make([]float64, 4), make([]float64, 1), make([]float64, 2)) },
		"Matrix32 SetFrom":    func() { NewMatrix32(2, 2).SetFrom(make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on shape mismatch", name)
				}
			}()
			fn()
		}()
	}
}

// MatrixI8 shape accessors and the capacity-clipped Row views, mirroring
// the Matrix32 contract.
func TestMatrixI8(t *testing.T) {
	m := NewMatrixI8(3, 2)
	if m.Rows() != 3 || m.Cols() != 2 || len(m.Data()) != 6 {
		t.Fatalf("bad shape %dx%d data %d", m.Rows(), m.Cols(), len(m.Data()))
	}
	src := []float64{1, 2, 3, 4, 5, 6}
	scale := make([]float64, 3)
	offset := make([]float64, 3)
	maxErr, maxScale, maxAbsOffset := m.QuantizeFrom(src, scale, offset)
	for r := 0; r < 3; r++ {
		for c := 0; c < 2; c++ {
			got := scale[r]*float64(m.Row(r)[c]) + offset[r]
			if e := math.Abs(got - src[r*2+c]); e > maxErr {
				t.Fatalf("row %d col %d reconstructs to %v (err %v > slab maxErr %v)", r, c, got, e, maxErr)
			}
		}
		if scale[r] > maxScale {
			t.Fatalf("row %d scale %v exceeds reported maxScale %v", r, scale[r], maxScale)
		}
		if math.Abs(offset[r]) > maxAbsOffset {
			t.Fatalf("row %d |offset| %v exceeds reported maxAbsOffset %v", r, math.Abs(offset[r]), maxAbsOffset)
		}
	}
	r := m.Row(0)
	_ = append(r, 99)
	if m.Row(1)[0] != m.Row(1)[0] || len(m.Row(1)) != 2 {
		t.Fatal("Row view shape broken")
	}
	// capacity-clipped: the append above must not bleed into row 1
	want := m.Row(1)[0]
	_ = append(m.Row(0), 99)
	if m.Row(1)[0] != want {
		t.Fatal("append through a Row view corrupted the next row")
	}
}
