//go:build !purego

#include "textflag.h"

// NEON int8 dot kernels. Each 16-byte chunk is sign-extend-multiplied
// into int16 products (SMULL/SMULL2) and pair-accumulated into int32
// lanes (SADALP; products are ≤ 127², so the int16 products and their
// pair sums never saturate). int32 addition wraps mod 2³² and is
// therefore associative, so any lane split returns the bit-identical
// integer the pure-Go reference computes, for every input including
// lengths past MaxDotLenI8.
//
// The Go assembler has no SMULL/SADALP vector mnemonics, so those
// instructions are WORD-encoded; every encoding below was produced and
// cross-checked with llvm-mc (the disassembly is in the comment).

// func dotI8SIMD(a, b *int8, n int) int32
// n must be a positive multiple of 8.
TEXT ·dotI8SIMD(SB), NOSPLIT, $0-28
	MOVD a+0(FP), R0
	MOVD b+8(FP), R1
	MOVD n+16(FP), R2
	VEOR V4.B16, V4.B16, V4.B16
	VEOR V5.B16, V5.B16, V5.B16

loop16:
	CMP    $16, R2
	BLT    tail8
	VLD1.P 16(R0), [V0.B16]
	VLD1.P 16(R1), [V1.B16]
	WORD   $0x0E21C002 // smull  v2.8h, v0.8b, v1.8b
	WORD   $0x4E606844 // sadalp v4.4s, v2.8h
	WORD   $0x4E21C003 // smull2 v3.8h, v0.16b, v1.16b
	WORD   $0x4E606865 // sadalp v5.4s, v3.8h
	SUB    $16, R2, R2
	B      loop16

tail8:
	// remaining 8-element chunk (R2 is now 0 or 8)
	CBZ  R2, reduce
	VLD1 (R0), [V0.B8]
	VLD1 (R1), [V1.B8]
	WORD $0x0E21C002 // smull  v2.8h, v0.8b, v1.8b
	WORD $0x4E606844 // sadalp v4.4s, v2.8h

reduce:
	VADD  V5.S4, V4.S4, V4.S4
	VADDV V4.S4, V4
	VMOV  V4.S[0], R3
	MOVW  R3, ret+24(FP)
	RET

// func dot4I8SIMD(f *int8, stride int, u *int8, n int, out *[4]int32)
// Dots of u against the four rows at f, f+stride, f+2·stride,
// f+3·stride (stride in elements = bytes for int8). n must be a
// positive multiple of 8 with n ≤ stride.
TEXT ·dot4I8SIMD(SB), NOSPLIT, $0-40
	MOVD f+0(FP), R5
	MOVD stride+8(FP), R9
	MOVD u+16(FP), R2
	MOVD n+24(FP), R3
	MOVD out+32(FP), R4
	ADD  R9, R5, R6
	ADD  R9, R6, R7
	ADD  R9, R7, R8
	VEOR V16.B16, V16.B16, V16.B16
	VEOR V17.B16, V17.B16, V17.B16
	VEOR V18.B16, V18.B16, V18.B16
	VEOR V19.B16, V19.B16, V19.B16

loop16:
	CMP    $16, R3
	BLT    tail8
	VLD1.P 16(R2), [V0.B16]
	VLD1.P 16(R5), [V1.B16]
	WORD   $0x0E20C022 // smull  v2.8h, v1.8b, v0.8b
	WORD   $0x4E606850 // sadalp v16.4s, v2.8h
	WORD   $0x4E20C023 // smull2 v3.8h, v1.16b, v0.16b
	WORD   $0x4E606870 // sadalp v16.4s, v3.8h
	VLD1.P 16(R6), [V1.B16]
	WORD   $0x0E20C022 // smull  v2.8h, v1.8b, v0.8b
	WORD   $0x4E606851 // sadalp v17.4s, v2.8h
	WORD   $0x4E20C023 // smull2 v3.8h, v1.16b, v0.16b
	WORD   $0x4E606871 // sadalp v17.4s, v3.8h
	VLD1.P 16(R7), [V1.B16]
	WORD   $0x0E20C022 // smull  v2.8h, v1.8b, v0.8b
	WORD   $0x4E606852 // sadalp v18.4s, v2.8h
	WORD   $0x4E20C023 // smull2 v3.8h, v1.16b, v0.16b
	WORD   $0x4E606872 // sadalp v18.4s, v3.8h
	VLD1.P 16(R8), [V1.B16]
	WORD   $0x0E20C022 // smull  v2.8h, v1.8b, v0.8b
	WORD   $0x4E606853 // sadalp v19.4s, v2.8h
	WORD   $0x4E20C023 // smull2 v3.8h, v1.16b, v0.16b
	WORD   $0x4E606873 // sadalp v19.4s, v3.8h
	SUB    $16, R3, R3
	B      loop16

tail8:
	// remaining 8-element chunk (R3 is now 0 or 8)
	CBZ  R3, reduce
	VLD1 (R2), [V0.B8]
	VLD1 (R5), [V1.B8]
	WORD $0x0E20C022 // smull  v2.8h, v1.8b, v0.8b
	WORD $0x4E606850 // sadalp v16.4s, v2.8h
	VLD1 (R6), [V1.B8]
	WORD $0x0E20C022 // smull  v2.8h, v1.8b, v0.8b
	WORD $0x4E606851 // sadalp v17.4s, v2.8h
	VLD1 (R7), [V1.B8]
	WORD $0x0E20C022 // smull  v2.8h, v1.8b, v0.8b
	WORD $0x4E606852 // sadalp v18.4s, v2.8h
	VLD1 (R8), [V1.B8]
	WORD $0x0E20C022 // smull  v2.8h, v1.8b, v0.8b
	WORD $0x4E606853 // sadalp v19.4s, v2.8h

reduce:
	VADDV V16.S4, V16
	VADDV V17.S4, V17
	VADDV V18.S4, V18
	VADDV V19.S4, V19
	VMOV  V16.S[0], R9
	VMOV  V17.S[0], R10
	VMOV  V18.S[0], R11
	VMOV  V19.S[0], R12
	MOVW  R9, (R4)
	MOVW  R10, 4(R4)
	MOVW  R11, 8(R4)
	MOVW  R12, 12(R4)
	RET
