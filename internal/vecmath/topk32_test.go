package vecmath

import (
	"reflect"
	"testing"
	"testing/quick"
)

// Property: a TopKStream32 retains exactly the k best pushed entries
// under (score desc, lower-ID-first), matching a full sort — and merging
// split sub-streams reproduces the single-stream retained set exactly,
// the contract the sharded f32 candidate collection stands on.
func TestQuickTopKStream32MatchesSortAndMerge(t *testing.T) {
	f := func(seed uint16, kRaw, nRaw, splitRaw, tieRaw uint8) bool {
		rng := NewRNG(uint64(seed) + 3)
		n := 1 + int(nRaw)
		k := 1 + int(kRaw)%40
		items := make([]Scored32, n)
		for i := range items {
			s := float32(rng.NormFloat64())
			if tieRaw%2 == 0 {
				// coarse quantization forces heavy score ties
				s = float32(rng.Intn(3))
			}
			items[i] = Scored32{ID: i, Score: s}
		}
		st := NewTopKStream32(k)
		for _, it := range items {
			st.Push(it.ID, it.Score)
		}
		want := append([]Scored32(nil), items...)
		ref := NewTopKStream32(n)
		for _, it := range want {
			ref.Push(it.ID, it.Score)
		}
		full := append([]Scored32(nil), ref.Ranked()...)
		if len(full) > k {
			full = full[:k]
		}
		if !reflect.DeepEqual(append([]Scored32(nil), st.Ranked()...), full) {
			return false
		}
		// split-and-merge must retain the same set
		split := 1 + int(splitRaw)%n
		a, b := NewTopKStream32(k), NewTopKStream32(k)
		for _, it := range items[:split] {
			a.Push(it.ID, it.Score)
		}
		for _, it := range items[split:] {
			b.Push(it.ID, it.Score)
		}
		a.Merge(b)
		return reflect.DeepEqual(a.Ranked(), st.Ranked())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTopKStream32Threshold(t *testing.T) {
	st := NewTopKStream32(2)
	if _, full := st.Threshold(); full {
		t.Fatal("empty collector reported full")
	}
	st.Push(1, 5)
	st.Push(2, 3)
	th, full := st.Threshold()
	if !full || th != 3 {
		t.Fatalf("Threshold = %v,%v want 3,true", th, full)
	}
	st.Push(3, 4)
	if th, _ := st.Threshold(); th != 4 {
		t.Fatalf("after push Threshold = %v, want 4", th)
	}
	zero := NewTopKStream32(0)
	if _, full := zero.Threshold(); !full {
		t.Fatal("k=0 collector must report full")
	}
	zero.Push(1, 10)
	if zero.Len() != 0 {
		t.Fatal("k=0 collector accepted an entry")
	}
}

func TestTopKStream32ResetRecycles(t *testing.T) {
	st := NewTopKStream32(4)
	for i := 0; i < 10; i++ {
		st.Push(i, float32(i))
	}
	st.Reset(2)
	if st.Len() != 0 || st.K() != 2 {
		t.Fatalf("Reset left len=%d k=%d", st.Len(), st.K())
	}
	st.Push(7, 1)
	if got := st.Ranked(); len(got) != 1 || got[0].ID != 7 {
		t.Fatalf("after Reset: %v", got)
	}
}
