package vecmath

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via SplitMix64). Each trainer worker owns one RNG so
// multi-threaded runs stay reproducible given (seed, worker id), and the
// hot sampling loop avoids the locking inside math/rand's global source.
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
	// cached second Gaussian from the Box-Muller pair
	gauss    float64
	hasGauss bool
}

// splitMix64 advances x and returns the next SplitMix64 output. It is used
// only to expand a 64-bit seed into xoshiro state.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitMix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split returns a new RNG derived from r's seed stream; use it to hand
// independent generators to worker goroutines.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("vecmath: Intn n <= 0")
	}
	// Lemire's multiply-shift rejection method: unbiased and division-free
	// in the common case.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal draw (Box-Muller, polar form).
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p uniformly at random in place.
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Zipf draws integers in [0, n) with probability proportional to
// 1/(rank+1)^s using inverse-CDF over a precomputed table. Build one with
// NewZipf; draws are O(log n).
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n outcomes with exponent s > 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("vecmath: NewZipf n <= 0")
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Draw returns the next Zipf-distributed integer in [0, n).
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
