package vecmath

import "fmt"

// The hot kernel wrappers must stay inlinable: a fmt.Sprintf call inside
// a wrapper's panic branch drags the whole formatting machinery into the
// function body and pushes it past the inliner's budget, so the happy
// path pays for an error message that never renders. These helpers move
// the formatting out of line — the wrapper keeps a two-instruction
// compare-and-branch to a call that never returns, and the inliner sees
// a leaf cheap enough to keep.

// panicLen reports a length mismatch between two kernel operands. It
// never returns.
func panicLen(op string, a, b int) {
	panic(fmt.Sprintf("vecmath: %s length mismatch %d vs %d", op, a, b))
}

// panicSlab reports a factor slab whose size is not rows*k. It never
// returns.
func panicSlab(op string, slab, rows, k int) {
	panic(fmt.Sprintf("vecmath: %s slab %d != rows %d * k %d", op, slab, rows, k))
}

// panicQueryLen reports a query vector whose length is not the factor
// dimensionality k. It never returns.
func panicQueryLen(op string, q, k int) {
	panic(fmt.Sprintf("vecmath: %s query length %d != k %d", op, q, k))
}
