// Package vecmath provides the small dense linear-algebra kernel used by
// the TF recommender: float64 vectors stored as plain slices, flat row-major
// matrices, a deterministic pseudo-random number generator, and top-k
// selection. Everything is stdlib-only and allocation-conscious: the SGD
// inner loop calls Dot and AddScaled millions of times per epoch.
package vecmath

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
// It panics if the lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// DotBias returns bias + ⟨a, b⟩, the fused affinity kernel of the scoring
// index: folding the composed popularity bias into the accumulator keeps
// the per-item scoring loop branch-free (bias is simply zero for models
// trained without UseBias). It accumulates in the exact same two-way
// pairwise order as a MatVecBias row, so a score computed one item at a
// time is bitwise identical to the same score from a blocked sweep. It
// panics if the lengths differ.
func DotBias(a, b []float64, bias float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: DotBias length mismatch %d vs %d", len(a), len(b)))
	}
	s := bias
	i := 0
	for ; i+2 <= len(a); i += 2 {
		s += a[i]*b[i] + a[i+1]*b[i+1]
	}
	if i < len(a) {
		s += a[i] * b[i]
	}
	return s
}

// MatVecBias computes dst[r] = bias[r] + ⟨q, factors[r*k : (r+1)*k]⟩ for
// every row r of a contiguous row-major factor slab. It is the blocked
// matrix–vector sweep at the heart of index-backed scoring: rows are
// processed four at a time so the loads of q are shared across rows and
// the four accumulators pipeline independently. It panics when the slab
// size is not len(dst)*k or the bias length differs from dst.
func MatVecBias(factors []float64, k int, bias, q, dst []float64) {
	rows := len(dst)
	if len(factors) != rows*k {
		panic(fmt.Sprintf("vecmath: MatVecBias slab %d != rows %d * k %d", len(factors), rows, k))
	}
	if len(bias) != rows {
		panic(fmt.Sprintf("vecmath: MatVecBias bias length %d != rows %d", len(bias), rows))
	}
	if len(q) != k {
		panic(fmt.Sprintf("vecmath: MatVecBias query length %d != k %d", len(q), k))
	}
	r := 0
	for ; r+4 <= rows; r += 4 {
		// re-slicing each row to len(q) lets the compiler drop the bounds
		// checks inside the shared-q inner loop
		r0 := factors[r*k:][:len(q)]
		r1 := factors[(r+1)*k:][:len(q)]
		r2 := factors[(r+2)*k:][:len(q)]
		r3 := factors[(r+3)*k:][:len(q)]
		s0, s1, s2, s3 := bias[r], bias[r+1], bias[r+2], bias[r+3]
		i := 0
		for ; i+2 <= len(q); i += 2 {
			qa, qb := q[i], q[i+1]
			s0 += qa*r0[i] + qb*r0[i+1]
			s1 += qa*r1[i] + qb*r1[i+1]
			s2 += qa*r2[i] + qb*r2[i+1]
			s3 += qa*r3[i] + qb*r3[i+1]
		}
		if i < len(q) {
			qa := q[i]
			s0 += qa * r0[i]
			s1 += qa * r1[i]
			s2 += qa * r2[i]
			s3 += qa * r3[i]
		}
		dst[r], dst[r+1], dst[r+2], dst[r+3] = s0, s1, s2, s3
	}
	for ; r < rows; r++ {
		dst[r] = DotBias(q, factors[r*k:(r+1)*k], bias[r])
	}
}

// AddScaled sets dst = dst + alpha*src (the BLAS axpy operation).
// It panics if the lengths differ.
func AddScaled(dst []float64, alpha float64, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vecmath: AddScaled length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, sv := range src {
		dst[i] += alpha * sv
	}
}

// Add sets dst = dst + src.
func Add(dst, src []float64) {
	AddScaled(dst, 1, src)
}

// Sub sets dst = dst - src.
func Sub(dst, src []float64) {
	AddScaled(dst, -1, src)
}

// Scale multiplies every element of v by alpha in place.
func Scale(v []float64, alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Zero sets every element of v to zero.
func Zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// Copy copies src into dst and panics if the lengths differ.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vecmath: Copy length mismatch %d vs %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Norm2 returns the Euclidean (L2) norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// SqNorm2 returns the squared Euclidean norm of v.
func SqNorm2(v []float64) float64 {
	return Dot(v, v)
}

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: Dist2 length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Sigmoid returns 1/(1+e^-x), computed in a numerically stable form for
// large |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// LogSigmoid returns ln(sigmoid(x)) without overflow for large negative x.
func LogSigmoid(x float64) float64 {
	if x >= 0 {
		return -math.Log1p(math.Exp(-x))
	}
	return x - math.Log1p(math.Exp(x))
}

// Matrix is a dense row-major matrix of float64. Rows are returned as
// sub-slices of the flat backing array, so mutating a row mutates the
// matrix. The zero value is an empty matrix; use NewMatrix to allocate.
//
// A matrix may carry a row stride larger than its column count
// (NewMatrixPadded): the pad keeps every row on its own cache lines so
// goroutines updating different rows concurrently never false-share. The
// SGD trainer's factor matrices are padded; padding is invisible through
// Row but visible as zero gaps through Data.
type Matrix struct {
	rows, cols, stride int
	data               []float64
}

// NewMatrix allocates a rows x cols matrix of zeros with compact rows.
func NewMatrix(rows, cols int) *Matrix {
	return newMatrixStride(rows, cols, cols)
}

// NewMatrixPadded allocates a rows x cols matrix whose row stride is
// rounded up to a 64-byte multiple, preventing false sharing between
// concurrent row writers.
func NewMatrixPadded(rows, cols int) *Matrix {
	return newMatrixStride(rows, cols, (cols+7)&^7)
}

func newMatrixStride(rows, cols, stride int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vecmath: NewMatrix negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, stride: stride, data: make([]float64, rows*stride)}
}

// MatrixFromCompact wraps an externally owned compact row-major slice as a
// rows x cols matrix view without copying. The caller keeps ownership of
// the backing memory (it may be a mmap'd file section); mutating the
// matrix mutates that memory. It panics if the slice length is not
// rows*cols.
func MatrixFromCompact(rows, cols int, data []float64) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vecmath: MatrixFromCompact negative dimension %dx%d", rows, cols))
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("vecmath: MatrixFromCompact length %d, want %d (%dx%d)", len(data), rows*cols, rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, stride: cols, data: data}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Row returns row i as a mutable slice view of exactly Cols elements
// (padding, if any, is excluded and capacity-clipped).
func (m *Matrix) Row(i int) []float64 {
	start := i * m.stride
	return m.data[start : start+m.cols : start+m.cols]
}

// Data returns the flat backing slice, including any row padding.
func (m *Matrix) Data() []float64 { return m.data }

// Padded reports whether rows carry alignment padding.
func (m *Matrix) Padded() bool { return m.stride != m.cols }

// Clone returns a deep copy of the matrix (same stride).
func (m *Matrix) Clone() *Matrix {
	c := newMatrixStride(m.rows, m.cols, m.stride)
	copy(c.data, m.data)
	return c
}

// CopyRowsFrom copies the row contents (not padding) of src, which must
// have the same rows x cols shape; strides may differ. Model
// serialization uses it to move between compact and padded layouts.
func (m *Matrix) CopyRowsFrom(src *Matrix) {
	if m.rows != src.rows || m.cols != src.cols {
		panic("vecmath: CopyRowsFrom shape mismatch")
	}
	for i := 0; i < m.rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// CompactData returns the row-major contents without padding; when the
// matrix is compact this is the backing slice itself.
func (m *Matrix) CompactData() []float64 {
	if !m.Padded() {
		return m.data
	}
	out := make([]float64, m.rows*m.cols)
	for i := 0; i < m.rows; i++ {
		copy(out[i*m.cols:(i+1)*m.cols], m.Row(i))
	}
	return out
}

// SetCompactData fills the matrix's rows from a compact row-major slice.
func (m *Matrix) SetCompactData(src []float64) {
	if len(src) != m.rows*m.cols {
		panic(fmt.Sprintf("vecmath: SetCompactData length %d, want %d", len(src), m.rows*m.cols))
	}
	for i := 0; i < m.rows; i++ {
		copy(m.Row(i), src[i*m.cols:(i+1)*m.cols])
	}
}

// FillGaussian fills the matrix rows with independent N(0, stddev^2) draws
// from rng; padding stays zero and the draw sequence is independent of the
// stride.
func (m *Matrix) FillGaussian(rng *RNG, stddev float64) {
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for k := range row {
			row[k] = rng.NormFloat64() * stddev
		}
	}
}

// MaxAbsDiff returns the largest absolute elementwise difference between m
// and other (row contents only). It panics on shape mismatch.
func (m *Matrix) MaxAbsDiff(other *Matrix) float64 {
	if m.rows != other.rows || m.cols != other.cols {
		panic("vecmath: MaxAbsDiff shape mismatch")
	}
	var max float64
	for i := 0; i < m.rows; i++ {
		ra, rb := m.Row(i), other.Row(i)
		for k := range ra {
			d := math.Abs(ra[k] - rb[k])
			if d > max {
				max = d
			}
		}
	}
	return max
}
