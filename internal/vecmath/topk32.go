package vecmath

import (
	"math"
	"slices"
)

// Scored32 pairs an integer id with a float32 score — the candidate
// currency of the two-stage f32 scoring pipeline.
type Scored32 struct {
	ID    int
	Score float32
}

// TopKStream32 is the float32 counterpart of TopKStream: a bounded
// min-heap retaining the k best (id, score) pairs pushed so far under the
// (score desc, lower-ID-first) total order. The f32 sweep collects its
// over-fetched candidate set through one; the retained set of a bounded
// heap is exactly the k best of everything pushed, so merging per-shard
// collectors yields the identical candidate set as one serial stream —
// the same property TopKStream.Merge documents.
type TopKStream32 struct {
	h []Scored32
	k int
}

// NewTopKStream32 returns a collector retaining the k best pushed entries.
func NewTopKStream32(k int) *TopKStream32 {
	return &TopKStream32{h: make([]Scored32, 0, k), k: k}
}

// Reset empties the collector and re-arms it for k entries, growing the
// backing array only when k exceeds its capacity.
func (t *TopKStream32) Reset(k int) {
	if k > cap(t.h) {
		t.h = make([]Scored32, 0, k)
	}
	t.h = t.h[:0]
	t.k = k
}

// Push offers one entry; when full, entries not beating the current k-th
// best are dropped without heap movement.
func (t *TopKStream32) Push(id int, score float32) {
	if t.k <= 0 {
		return
	}
	it := Scored32{ID: id, Score: score}
	if len(t.h) < t.k {
		t.h = append(t.h, it)
		siftUp32(t.h, len(t.h)-1)
		return
	}
	if scoredLess32(t.h[0], it) {
		t.h[0] = it
		siftDown32(t.h, 0)
	}
}

// Len returns how many entries are currently retained.
func (t *TopKStream32) Len() int { return len(t.h) }

// K returns the retention capacity the collector was armed with.
func (t *TopKStream32) K() int { return t.k }

// Merge offers every entry retained by other to this collector.
func (t *TopKStream32) Merge(other *TopKStream32) {
	for _, e := range other.h {
		t.Push(e.ID, e.Score)
	}
}

// Threshold returns the score an entry must strictly beat (or tie with a
// lower ID) to enter a full collector, and whether the collector is full.
// The rescore stage reads it as τ: every item NOT retained has f32 score
// ≤ τ under the total order. A k<=0 collector reports full at +Inf.
func (t *TopKStream32) Threshold() (float32, bool) {
	if t.k <= 0 {
		return float32(math.Inf(1)), true
	}
	if len(t.h) < t.k {
		return 0, false
	}
	return t.h[0].Score, true
}

// Entries returns the retained set in unspecified (heap) order, aliasing
// the collector's storage. The rescore stage consumes it directly — the
// exact float64 rescore re-ranks, so candidate order is irrelevant.
func (t *TopKStream32) Entries() []Scored32 { return t.h }

// Ranked sorts the retained entries into descending order and returns
// them, aliasing the collector's storage.
func (t *TopKStream32) Ranked() []Scored32 {
	slices.SortFunc(t.h, func(a, b Scored32) int {
		switch {
		case scoredLess32(b, a):
			return -1
		case scoredLess32(a, b):
			return 1
		default:
			return 0
		}
	})
	return t.h
}

// scoredLess32 reports whether a ranks strictly below b (lower score, or
// equal score with higher ID) — the same total order as scoredLess.
func scoredLess32(a, b Scored32) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

func siftUp32(h []Scored32, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !scoredLess32(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown32(h []Scored32, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && scoredLess32(h[l], h[smallest]) {
			smallest = l
		}
		if r < n && scoredLess32(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}
