package vecmath

import "runtime"

// Runtime kernel dispatch. The hot sweep kernels (the int8 and float32
// tiers) each have two implementations: a pure-Go reference that defines
// the semantics bit for bit, and — on amd64 with AVX2 and on arm64 with
// NEON — a hand-written assembly body for the vectorizable head of the
// loop. Selection happens once at package init:
//
//   - amd64: CPUID must report AVX2 with OS-enabled YMM state
//     (OSXSAVE + XCR0[2:1] = 11), else generic.
//   - arm64: NEON (AdvSIMD) is architecturally baseline, so the asm
//     kernels are always eligible.
//   - every other GOARCH, a `purego` build, or TFREC_NOSIMD=1 in the
//     environment: the generic reference kernels.
//
// The dispatch is bitwise-invisible by construction. The int8 kernels
// accumulate in exact integer arithmetic (int32 lanes; wraparound is
// mod-2³² and therefore associative), so ANY vectorization returns the
// identical integer and the shared float64 combine seals byte identity.
// The f32 kernels are pinned to the fixed 8-lane accumulation tree
// documented on DotBias32; the asm replicates that tree with one rounded
// multiply and one rounded add per element and the exact same reduction
// order, which the differential suite in kernels_diff_test.go re-proves
// against the reference on every supported machine. The float64 kernels
// have no asm arm — training and the exact rescore stay on the reference
// implementations everywhere.

// Implementation names reported by Kernels.
const (
	implGeneric = "generic"
	implAVX2    = "avx2"
	implNEON    = "neon"
)

// KernelSet describes the active kernel dispatch: the architecture, the
// CPU features that were detected, why SIMD is off (when it is), and the
// implementation serving each (tier, op) pair. It is surfaced by
// `tfrec-inspect -cpu` and as `inference.kernels` in /v1/stats, and
// recorded by tfrec-benchgate so baselines from different dispatch arms
// are never compared.
type KernelSet struct {
	// Arch is runtime.GOARCH.
	Arch string `json:"arch"`
	// Features lists the detected SIMD feature sets ("avx2", "neon"),
	// whether or not they are in use.
	Features []string `json:"features,omitempty"`
	// Disabled names the reason dispatch fell back to the generic
	// kernels despite a usable feature ("TFREC_NOSIMD=1", "purego
	// build"); empty when SIMD is active or simply unavailable.
	Disabled string `json:"disabled,omitempty"`
	// Ops maps each kernel op to its active implementation:
	// "avx2", "neon" or "generic".
	Ops map[string]string `json:"ops"`
}

// Kernels returns the active kernel dispatch table.
func Kernels() KernelSet {
	simd := implGeneric
	if simdActive {
		simd = simdImpl
	}
	return KernelSet{
		Arch:     runtime.GOARCH,
		Features: simdFeatures(),
		Disabled: simdDisabled(),
		Ops: map[string]string{
			"dot_i8":           simd,
			"matvec_i8":        simd,
			"matvec_i8_multi":  simd,
			"dot_f32":          simd,
			"matvec_f32":       simd,
			"matvec_f32_multi": simd,
			"dot_f64":          implGeneric,
			"matvec_f64":       implGeneric,
		},
	}
}

// KernelsID is the compact one-line identity of the dispatch arm, e.g.
// "amd64/avx2" or "arm64/generic". Benchmark baselines record it: raw
// timings measured under different kernel sets are not comparable.
func KernelsID() string {
	simd := implGeneric
	if simdActive {
		simd = simdImpl
	}
	return runtime.GOARCH + "/" + simd
}

// SIMDEnabled reports whether the assembly kernels are active. The
// BenchmarkKernel* micro-benchmarks self-skip their SIMD variants when
// it is false.
func SIMDEnabled() bool { return simdActive }
