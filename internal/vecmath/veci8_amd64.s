//go:build !purego

#include "textflag.h"

// AVX2 int8 dot kernels. Each int8 pair is sign-extended to int16
// (VPMOVSXBW), multiplied and pairwise-summed into int32 lanes
// (VPMADDWD; the products are ≤ 127² so the int16→int32 pair sum cannot
// saturate — this is why VPMADDUBSW, which saturates, is never used),
// and accumulated with VPADDD. int32 addition wraps mod 2³² and is
// therefore associative, so any lane split and any reduction order
// returns the bit-identical integer the pure-Go reference computes,
// for every input including lengths past MaxDotLenI8.

// func dotI8SIMD(a, b *int8, n int) int32
// n must be a positive multiple of 8.
TEXT ·dotI8SIMD(SB), NOSPLIT, $0-28
	MOVQ  a+0(FP), SI
	MOVQ  b+8(FP), DX
	MOVQ  n+16(FP), CX
	VPXOR Y0, Y0, Y0

	CMPQ CX, $32
	JL   blk16

loop32:
	VPMOVSXBW (SI), Y1
	VPMOVSXBW (DX), Y2
	VPMADDWD  Y2, Y1, Y1
	VPADDD    Y1, Y0, Y0
	VPMOVSXBW 16(SI), Y2
	VPMOVSXBW 16(DX), Y3
	VPMADDWD  Y3, Y2, Y2
	VPADDD    Y2, Y0, Y0
	ADDQ      $32, SI
	ADDQ      $32, DX
	SUBQ      $32, CX
	CMPQ      CX, $32
	JGE       loop32

blk16:
	CMPQ      CX, $16
	JL        reduce
	VPMOVSXBW (SI), Y1
	VPMOVSXBW (DX), Y2
	VPMADDWD  Y2, Y1, Y1
	VPADDD    Y1, Y0, Y0
	ADDQ      $16, SI
	ADDQ      $16, DX
	SUBQ      $16, CX

reduce:
	// fold the high YMM half into XMM before any VEX-128 op can zero it
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0

	// remaining 8-element chunk (CX is now 0 or 8)
	CMPQ      CX, $8
	JL        hsum
	VPMOVSXBW (SI), X1
	VPMOVSXBW (DX), X2
	VPMADDWD  X2, X1, X1
	VPADDD    X1, X0, X0

hsum:
	VPSHUFD $0xEE, X0, X1
	VPADDD  X1, X0, X0
	VPSHUFD $0x55, X0, X1
	VPADDD  X1, X0, X0
	VZEROUPPER
	MOVL    X0, AX
	MOVL    AX, ret+24(FP)
	RET

// func dot4I8SIMD(f *int8, stride int, u *int8, n int, out *[4]int32)
// Dots of u against the four rows at f, f+stride, f+2·stride,
// f+3·stride (stride in elements = bytes for int8). n must be a
// positive multiple of 8 with n ≤ stride.
TEXT ·dot4I8SIMD(SB), NOSPLIT, $0-40
	MOVQ  f+0(FP), R8
	MOVQ  stride+8(FP), BX
	MOVQ  u+16(FP), SI
	MOVQ  n+24(FP), CX
	LEAQ  (R8)(BX*1), R9
	LEAQ  (R9)(BX*1), R10
	LEAQ  (R10)(BX*1), R11
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3

	CMPQ CX, $16
	JL   reduce4

loop16:
	VPMOVSXBW (SI), Y4
	VPMOVSXBW (R8), Y5
	VPMADDWD  Y4, Y5, Y5
	VPADDD    Y5, Y0, Y0
	VPMOVSXBW (R9), Y5
	VPMADDWD  Y4, Y5, Y5
	VPADDD    Y5, Y1, Y1
	VPMOVSXBW (R10), Y5
	VPMADDWD  Y4, Y5, Y5
	VPADDD    Y5, Y2, Y2
	VPMOVSXBW (R11), Y5
	VPMADDWD  Y4, Y5, Y5
	VPADDD    Y5, Y3, Y3
	ADDQ      $16, SI
	ADDQ      $16, R8
	ADDQ      $16, R9
	ADDQ      $16, R10
	ADDQ      $16, R11
	SUBQ      $16, CX
	CMPQ      CX, $16
	JGE       loop16

reduce4:
	VEXTRACTI128 $1, Y0, X4
	VPADDD       X4, X0, X0
	VEXTRACTI128 $1, Y1, X4
	VPADDD       X4, X1, X1
	VEXTRACTI128 $1, Y2, X4
	VPADDD       X4, X2, X2
	VEXTRACTI128 $1, Y3, X4
	VPADDD       X4, X3, X3

	// remaining 8-element chunk (CX is now 0 or 8)
	CMPQ      CX, $8
	JL        hsum4
	VPMOVSXBW (SI), X4
	VPMOVSXBW (R8), X5
	VPMADDWD  X4, X5, X5
	VPADDD    X5, X0, X0
	VPMOVSXBW (R9), X5
	VPMADDWD  X4, X5, X5
	VPADDD    X5, X1, X1
	VPMOVSXBW (R10), X5
	VPMADDWD  X4, X5, X5
	VPADDD    X5, X2, X2
	VPMOVSXBW (R11), X5
	VPMADDWD  X4, X5, X5
	VPADDD    X5, X3, X3

hsum4:
	// [a0+a1, a2+a3, b0+b1, b2+b3] etc., then one more fold to
	// [Σa, Σb, Σc, Σd]
	VPHADDD X1, X0, X0
	VPHADDD X3, X2, X2
	VPHADDD X2, X0, X0
	MOVQ    out+32(FP), DI
	VMOVDQU X0, (DI)
	VZEROUPPER
	RET
