package vecmath

import "sort"

// Scored pairs an integer id with a float score; the inference code ranks
// items, categories and taxonomy nodes as Scored slices.
type Scored struct {
	ID    int
	Score float64
}

// TopK returns the k highest-scoring entries of items in descending score
// order. Ties break toward the lower ID so results are deterministic.
// If k >= len(items) the whole input is returned sorted. The input slice is
// not modified.
func TopK(items []Scored, k int) []Scored {
	if k <= 0 {
		return nil
	}
	if k >= len(items) {
		out := make([]Scored, len(items))
		copy(out, items)
		sortScoredDesc(out)
		return out
	}
	// Bounded min-heap of size k over the scores seen so far.
	h := make([]Scored, 0, k)
	for _, it := range items {
		if len(h) < k {
			h = append(h, it)
			siftUp(h, len(h)-1)
			continue
		}
		if scoredLess(h[0], it) {
			h[0] = it
			siftDown(h, 0)
		}
	}
	sortScoredDesc(h)
	return h
}

// scoredLess reports whether a ranks strictly below b (lower score, or equal
// score with higher ID).
func scoredLess(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

func sortScoredDesc(s []Scored) {
	sort.Slice(s, func(i, j int) bool { return scoredLess(s[j], s[i]) })
}

func siftUp(h []Scored, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !scoredLess(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown(h []Scored, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && scoredLess(h[l], h[smallest]) {
			smallest = l
		}
		if r < n && scoredLess(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// RankOf returns the 1-based rank of target within scores: 1 + the number
// of entries with a strictly higher score, counting ties conservatively
// (an equal score placed before target counts against it only by ID order).
// This matches the paper's r(x) numerical rank used in the AUC and
// meanRank metrics.
func RankOf(scores []float64, target int) int {
	t := scores[target]
	rank := 1
	for id, s := range scores {
		if s > t || (s == t && id < target) {
			rank++
		}
	}
	return rank
}
