package vecmath

import (
	"math"
	"slices"
)

// Scored pairs an integer id with a float score; the inference code ranks
// items, categories and taxonomy nodes as Scored slices.
type Scored struct {
	ID    int
	Score float64
}

// TopK returns the k highest-scoring entries of items in descending score
// order. Ties break toward the lower ID so results are deterministic.
// If k >= len(items) the whole input is returned sorted. The input slice is
// not modified.
func TopK(items []Scored, k int) []Scored {
	if k <= 0 {
		return nil
	}
	if k >= len(items) {
		out := make([]Scored, len(items))
		copy(out, items)
		sortScoredDesc(out)
		return out
	}
	// Bounded min-heap of size k over the scores seen so far.
	h := make([]Scored, 0, k)
	for _, it := range items {
		if len(h) < k {
			h = append(h, it)
			siftUp(h, len(h)-1)
			continue
		}
		if scoredLess(h[0], it) {
			h[0] = it
			siftDown(h, 0)
		}
	}
	sortScoredDesc(h)
	return h
}

// TopKStream is a bounded min-heap that consumes (id, score) pairs one at
// a time and retains the k best seen so far — the streaming counterpart of
// TopK for producers that never materialize a full []Scored. Obtain one
// with NewTopKStream, or arm a zero value with Reset; recycle across
// queries with Reset. Tie-breaking matches TopK exactly (equal scores rank
// by lower ID), so a stream over the same pairs yields the same ranking.
type TopKStream struct {
	h []Scored
	k int
}

// NewTopKStream returns a collector retaining the k best pushed entries.
func NewTopKStream(k int) *TopKStream {
	return &TopKStream{h: make([]Scored, 0, k), k: k}
}

// Reset empties the collector and re-arms it for k entries, growing the
// backing array only when k exceeds its capacity.
func (t *TopKStream) Reset(k int) {
	if k > cap(t.h) {
		t.h = make([]Scored, 0, k)
	}
	t.h = t.h[:0]
	t.k = k
}

// Push offers one entry. When the collector is full the entry is compared
// against the current k-th best and dropped without heap movement unless it
// ranks above it.
func (t *TopKStream) Push(id int, score float64) {
	if t.k <= 0 {
		return
	}
	it := Scored{ID: id, Score: score}
	if len(t.h) < t.k {
		t.h = append(t.h, it)
		siftUp(t.h, len(t.h)-1)
		return
	}
	if scoredLess(t.h[0], it) {
		t.h[0] = it
		siftDown(t.h, 0)
	}
}

// Len returns how many entries are currently retained.
func (t *TopKStream) Len() int { return len(t.h) }

// K returns the retention capacity the collector was armed with.
func (t *TopKStream) K() int { return t.k }

// Merge offers every entry retained by other to this collector. Because
// the retained set of a bounded heap is exactly the k best of everything
// pushed (under the score-then-lower-ID total order), merging the
// per-shard collectors of a partitioned sweep into one final collector
// yields the identical top-k — ranking, order and tie-breaks — as one
// serial stream over the whole input; the sharded inference path relies
// on this.
func (t *TopKStream) Merge(other *TopKStream) {
	for _, e := range other.h {
		t.Push(e.ID, e.Score)
	}
}

// Entries returns the retained set in unspecified (heap) order, aliasing
// the collector's storage — the float64 counterpart of
// TopKStream32.Entries, consumed by the int8 pipeline's exact rescore
// (candidate order is irrelevant there).
func (t *TopKStream) Entries() []Scored { return t.h }

// Threshold returns the score an entry must strictly beat (or tie with a
// lower ID) to enter a full collector, and whether the collector is full.
// Producers can use it to skip work for entries that cannot qualify. A
// k<=0 collector reports full at +Inf: nothing can ever enter it.
func (t *TopKStream) Threshold() (float64, bool) {
	if t.k <= 0 {
		return math.Inf(1), true
	}
	if len(t.h) < t.k {
		return 0, false
	}
	return t.h[0].Score, true
}

// Ranked sorts the retained entries into descending order and returns them.
// The returned slice aliases the collector's storage: it stays valid until
// the next Reset, and the collector must be Reset before reuse.
func (t *TopKStream) Ranked() []Scored {
	sortScoredDesc(t.h)
	return t.h
}

// scoredLess reports whether a ranks strictly below b (lower score, or equal
// score with higher ID).
func scoredLess(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

func sortScoredDesc(s []Scored) {
	slices.SortFunc(s, func(a, b Scored) int {
		switch {
		case scoredLess(b, a):
			return -1
		case scoredLess(a, b):
			return 1
		default:
			return 0
		}
	})
}

func siftUp(h []Scored, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !scoredLess(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown(h []Scored, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && scoredLess(h[l], h[smallest]) {
			smallest = l
		}
		if r < n && scoredLess(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// RankOf returns the 1-based rank of target within scores: 1 + the number
// of entries with a strictly higher score, counting ties conservatively
// (an equal score placed before target counts against it only by ID order).
// This matches the paper's r(x) numerical rank used in the AUC and
// meanRank metrics.
func RankOf(scores []float64, target int) int {
	t := scores[target]
	rank := 1
	for id, s := range scores {
		if s > t || (s == t && id < target) {
			rank++
		}
	}
	return rank
}
