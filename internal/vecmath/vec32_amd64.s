//go:build !purego

#include "textflag.h"

// AVX2 float32 kernels: the vector head of the fixed 8-lane accumulation
// tree documented on DotBias32. One YMM register holds the eight lane
// accumulators; each 8-element group contributes exactly one rounded
// multiply (VMULPS) and one rounded add (VADDPS) per element — never an
// FMA, which would skip the intermediate rounding and change the bits.
// The reduction replicates the reference tree step for step:
//
//	VHADDPS(low, high) → [l0+l1, l2+l3, l4+l5, l6+l7]
//	VHADDPS again      → [(l0+l1)+(l2+l3), (l4+l5)+(l6+l7), …]
//	final VADDSS       → ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))
//
// Every HADDPS lane addition is a single IEEE float32 add, so each tree
// node rounds exactly once, in the reference order.

// func dotLanes32SIMD(a, b *float32, n int) float32
// n must be a positive multiple of 8.
TEXT ·dotLanes32SIMD(SB), NOSPLIT, $0-28
	MOVQ   a+0(FP), SI
	MOVQ   b+8(FP), DX
	MOVQ   n+16(FP), CX
	VXORPS Y0, Y0, Y0

loop8:
	VMOVUPS (SI), Y1
	VMOVUPS (DX), Y2
	VMULPS  Y2, Y1, Y1
	VADDPS  Y1, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DX
	SUBQ    $8, CX
	JNZ     loop8

	VEXTRACTF128 $1, Y0, X1
	VHADDPS      X1, X0, X0
	VHADDPS      X0, X0, X0
	VMOVSHDUP    X0, X1
	VADDSS       X1, X0, X0
	VZEROUPPER
	MOVSS        X0, ret+24(FP)
	RET

// func dot4Lanes32SIMD(f *float32, stride int, q *float32, n int, out *[4]float32)
// The 8-lane tree of q against the four rows at f, f+stride, f+2·stride,
// f+3·stride (stride in float32 elements), sharing the query loads.
// n must be a positive multiple of 8 with n ≤ stride.
TEXT ·dot4Lanes32SIMD(SB), NOSPLIT, $0-40
	MOVQ   f+0(FP), R8
	MOVQ   stride+8(FP), BX
	MOVQ   q+16(FP), SI
	MOVQ   n+24(FP), CX
	SHLQ   $2, BX
	LEAQ   (R8)(BX*1), R9
	LEAQ   (R9)(BX*1), R10
	LEAQ   (R10)(BX*1), R11
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

loop8x4:
	VMOVUPS (SI), Y4
	VMOVUPS (R8), Y5
	VMULPS  Y4, Y5, Y5
	VADDPS  Y5, Y0, Y0
	VMOVUPS (R9), Y5
	VMULPS  Y4, Y5, Y5
	VADDPS  Y5, Y1, Y1
	VMOVUPS (R10), Y5
	VMULPS  Y4, Y5, Y5
	VADDPS  Y5, Y2, Y2
	VMOVUPS (R11), Y5
	VMULPS  Y4, Y5, Y5
	VADDPS  Y5, Y3, Y3
	ADDQ    $32, SI
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, R10
	ADDQ    $32, R11
	SUBQ    $8, CX
	JNZ     loop8x4

	// per-row first tree level: [l0+l1, l2+l3, l4+l5, l6+l7]
	VEXTRACTF128 $1, Y0, X4
	VHADDPS      X4, X0, X0
	VEXTRACTF128 $1, Y1, X4
	VHADDPS      X4, X1, X1
	VEXTRACTF128 $1, Y2, X4
	VHADDPS      X4, X2, X2
	VEXTRACTF128 $1, Y3, X4
	VHADDPS      X4, X3, X3

	// second level pairs rows: [t0lo, t0hi, t1lo, t1hi] …
	VHADDPS X1, X0, X0
	VHADDPS X3, X2, X2

	// third level: [tree0, tree1, tree2, tree3]
	VHADDPS X2, X0, X0
	MOVQ    out+32(FP), DI
	VMOVUPS X0, (DI)
	VZEROUPPER
	RET
