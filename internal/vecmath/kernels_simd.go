//go:build (amd64 || arm64) && !purego

package vecmath

import "os"

// Assembly entry points shared by the amd64 (AVX2) and arm64 (NEON)
// dispatch arms. Every function takes raw base pointers plus an element
// count so the wrappers stay allocation-free, and every declaration is
// go:noescape: the asm bodies only load through the pointers (and store
// through out), never retain them, so escape analysis keeps caller
// buffers — including the stack-allocated [4] accumulator arrays of the
// blocked wrappers — off the heap, preserving the zero-allocs-per-query
// invariant.

// dotI8SIMD returns Σ a[i]·b[i] over the first n elements, accumulated
// in int32 lanes and reduced with integer adds. n must be a positive
// multiple of 8. Integer accumulation is mod-2³² associative, so the
// result is bit-identical to the reference kernel for every input,
// including lengths past MaxDotLenI8 where both wrap identically.
//
//go:noescape
func dotI8SIMD(a, b *int8, n int) int32

// dot4I8SIMD computes the int8 dots of the query u against four
// consecutive slab rows at f, f+stride, f+2·stride and f+3·stride,
// writing the four int32 sums to out. n must be a positive multiple of 8
// with n ≤ stride.
//
//go:noescape
func dot4I8SIMD(f *int8, stride int, u *int8, n int, out *[4]int32)

// dotLanes32SIMD is the vector head of the f32 kernels: the fixed
// 8-lane accumulation tree over the first n elements (one rounded
// multiply and one rounded add per element, lanes reduced as
// ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))), bitwise identical to
// dotLanes32Ref. n must be a positive multiple of 8.
//
//go:noescape
func dotLanes32SIMD(a, b *float32, n int) float32

// dot4Lanes32SIMD is dotLanes32SIMD over four consecutive slab rows at
// stride, sharing the query loads, writing the four tree sums to out.
// n must be a positive multiple of 8 with n ≤ stride.
//
//go:noescape
func dot4Lanes32SIMD(f *float32, stride int, q *float32, n int, out *[4]float32)

// noSIMDEnv reports whether the TFREC_NOSIMD escape hatch is set: any
// non-empty value except "0" forces the generic kernels, for debugging
// and for the CI leg that keeps the fallback path covered.
func noSIMDEnv() bool {
	v := os.Getenv("TFREC_NOSIMD")
	return v != "" && v != "0"
}
