//go:build !purego

package vecmath

// amd64 dispatch arm: the AVX2 kernels in vec32_amd64.s / veci8_amd64.s,
// eligible when CPUID reports AVX2 and the OS has enabled YMM state.

const simdImpl = implAVX2

var (
	hasAVX2    bool
	simdOffEnv bool
	simdActive bool
)

func init() {
	hasAVX2 = detectAVX2()
	simdOffEnv = noSIMDEnv()
	simdActive = hasAVX2 && !simdOffEnv
}

func simdFeatures() []string {
	if hasAVX2 {
		return []string{"avx2"}
	}
	return nil
}

func simdDisabled() string {
	if hasAVX2 && simdOffEnv {
		return "TFREC_NOSIMD"
	}
	return ""
}

// cpuid executes CPUID with the given leaf/subleaf (cpu_amd64.s).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (cpu_amd64.s). Only call when CPUID.1:ECX.OSXSAVE
// is set, or the instruction faults.
func xgetbv() (eax, edx uint32)

// detectAVX2 performs the full architectural check for usable AVX2: the
// feature bit alone is not enough — the OS must have opted in to saving
// YMM state (OSXSAVE set and XCR0 bits 1..2 = 11), else executing a VEX
// 256-bit instruction faults.
func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
	)
	if ecx1&cpuidOSXSAVE == 0 || ecx1&cpuidAVX == 0 {
		return false
	}
	if xcr0, _ := xgetbv(); xcr0&0x6 != 0x6 { // XMM and YMM state enabled
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const cpuidAVX2 = 1 << 5
	return ebx7&cpuidAVX2 != 0
}
