//go:build !purego

package vecmath

// arm64 dispatch arm: the NEON kernels in vec32_arm64.s / veci8_arm64.s.
// AdvSIMD is architecturally baseline on AArch64 (linux/arm64 binaries
// may assume it, as the Go runtime itself does), so no feature probe is
// needed — only the TFREC_NOSIMD escape hatch can turn the asm off.

const simdImpl = implNEON

var (
	simdOffEnv bool
	simdActive bool
)

func init() {
	simdOffEnv = noSIMDEnv()
	simdActive = !simdOffEnv
}

func simdFeatures() []string { return []string{"neon"} }

func simdDisabled() string {
	if simdOffEnv {
		return "TFREC_NOSIMD"
	}
	return ""
}
