//go:build !purego

#include "textflag.h"

// NEON float32 kernels: the vector head of the fixed 8-lane accumulation
// tree documented on DotBias32. Lanes 0–3 live in one quad register and
// lanes 4–7 in a second; each 8-element group contributes exactly one
// rounded multiply (FMUL) and one rounded add (FADD) per element — never
// an FMLA, which would skip the intermediate rounding and change the
// bits. The reduction replicates the reference tree step for step:
//
//	FADDP(lo, hi)   → [l0+l1, l2+l3, l4+l5, l6+l7]
//	FADDP again     → [(l0+l1)+(l2+l3), (l4+l5)+(l6+l7), …]
//	scalar FADDP    → ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))
//
// Every FADDP lane addition is a single IEEE float32 add, so each tree
// node rounds exactly once, in the reference order.
//
// The Go assembler has no vector FMUL/FADD/FADDP mnemonics, so those
// instructions are WORD-encoded; every encoding below was produced and
// cross-checked with llvm-mc (the disassembly is in the comment).

// func dotLanes32SIMD(a, b *float32, n int) float32
// n must be a positive multiple of 8.
TEXT ·dotLanes32SIMD(SB), NOSPLIT, $0-28
	MOVD a+0(FP), R0
	MOVD b+8(FP), R1
	MOVD n+16(FP), R2
	VEOR V4.B16, V4.B16, V4.B16
	VEOR V5.B16, V5.B16, V5.B16

loop8:
	VLD1.P 32(R0), [V0.S4, V1.S4]
	VLD1.P 32(R1), [V2.S4, V3.S4]
	WORD   $0x6E22DC00 // fmul v0.4s, v0.4s, v2.4s
	WORD   $0x4E20D484 // fadd v4.4s, v4.4s, v0.4s
	WORD   $0x6E23DC21 // fmul v1.4s, v1.4s, v3.4s
	WORD   $0x4E21D4A5 // fadd v5.4s, v5.4s, v1.4s
	SUBS   $8, R2, R2
	BNE    loop8

	WORD  $0x6E25D484 // faddp v4.4s, v4.4s, v5.4s
	WORD  $0x6E24D484 // faddp v4.4s, v4.4s, v4.4s
	WORD  $0x7E30D880 // faddp s0, v4.2s
	FMOVS F0, ret+24(FP)
	RET

// func dot4Lanes32SIMD(f *float32, stride int, q *float32, n int, out *[4]float32)
// The 8-lane tree of q against the four rows at f, f+stride, f+2·stride,
// f+3·stride (stride in float32 elements), sharing the query loads.
// n must be a positive multiple of 8 with n ≤ stride.
TEXT ·dot4Lanes32SIMD(SB), NOSPLIT, $0-40
	MOVD f+0(FP), R5
	MOVD stride+8(FP), R9
	MOVD q+16(FP), R2
	MOVD n+24(FP), R3
	MOVD out+32(FP), R4
	LSL  $2, R9, R9
	ADD  R9, R5, R6
	ADD  R9, R6, R7
	ADD  R9, R7, R8
	VEOR V16.B16, V16.B16, V16.B16
	VEOR V17.B16, V17.B16, V17.B16
	VEOR V18.B16, V18.B16, V18.B16
	VEOR V19.B16, V19.B16, V19.B16
	VEOR V20.B16, V20.B16, V20.B16
	VEOR V21.B16, V21.B16, V21.B16
	VEOR V22.B16, V22.B16, V22.B16
	VEOR V23.B16, V23.B16, V23.B16

loop8x4:
	VLD1.P 32(R2), [V0.S4, V1.S4]
	VLD1.P 32(R5), [V2.S4, V3.S4]
	WORD   $0x6E20DC42 // fmul v2.4s, v2.4s, v0.4s
	WORD   $0x4E22D610 // fadd v16.4s, v16.4s, v2.4s
	WORD   $0x6E21DC63 // fmul v3.4s, v3.4s, v1.4s
	WORD   $0x4E23D631 // fadd v17.4s, v17.4s, v3.4s
	VLD1.P 32(R6), [V2.S4, V3.S4]
	WORD   $0x6E20DC42 // fmul v2.4s, v2.4s, v0.4s
	WORD   $0x4E22D652 // fadd v18.4s, v18.4s, v2.4s
	WORD   $0x6E21DC63 // fmul v3.4s, v3.4s, v1.4s
	WORD   $0x4E23D673 // fadd v19.4s, v19.4s, v3.4s
	VLD1.P 32(R7), [V2.S4, V3.S4]
	WORD   $0x6E20DC42 // fmul v2.4s, v2.4s, v0.4s
	WORD   $0x4E22D694 // fadd v20.4s, v20.4s, v2.4s
	WORD   $0x6E21DC63 // fmul v3.4s, v3.4s, v1.4s
	WORD   $0x4E23D6B5 // fadd v21.4s, v21.4s, v3.4s
	VLD1.P 32(R8), [V2.S4, V3.S4]
	WORD   $0x6E20DC42 // fmul v2.4s, v2.4s, v0.4s
	WORD   $0x4E22D6D6 // fadd v22.4s, v22.4s, v2.4s
	WORD   $0x6E21DC63 // fmul v3.4s, v3.4s, v1.4s
	WORD   $0x4E23D6F7 // fadd v23.4s, v23.4s, v3.4s
	SUBS   $8, R3, R3
	BNE    loop8x4

	// per-row first tree level: [l0+l1, l2+l3, l4+l5, l6+l7]
	WORD $0x6E31D610 // faddp v16.4s, v16.4s, v17.4s
	WORD $0x6E33D652 // faddp v18.4s, v18.4s, v19.4s
	WORD $0x6E35D694 // faddp v20.4s, v20.4s, v21.4s
	WORD $0x6E37D6D6 // faddp v22.4s, v22.4s, v23.4s

	// second level pairs rows: [t0lo, t0hi, t1lo, t1hi] …
	WORD $0x6E32D610 // faddp v16.4s, v16.4s, v18.4s
	WORD $0x6E36D694 // faddp v20.4s, v20.4s, v22.4s

	// third level: [tree0, tree1, tree2, tree3]
	WORD $0x6E34D610 // faddp v16.4s, v16.4s, v20.4s
	VST1 [V16.S4], (R4)
	RET
